package uwpos

import (
	"context"
	"math/rand"

	"uwpos/internal/engine"
)

// BatchOutcome is one trial of a concurrent localization batch.
type BatchOutcome struct {
	// Trial is the trial index (LocateN) or scenario index (Batch).
	Trial int
	// Outcome is the round result; nil when Err is set.
	Outcome *RoundOutcome
	// Err reports a failed build or round.
	Err error
}

// BatchOptions tunes concurrent execution.
type BatchOptions struct {
	// Workers bounds concurrent rounds (0 = GOMAXPROCS). Results are
	// identical for every worker count.
	Workers int
	// OnResult, when non-nil, receives each outcome as soon as its round
	// completes — in completion order, which is arbitrary under
	// parallelism (Outcome.Trial identifies the trial). Calls are
	// serialized on the caller's goroutine, so the callback needs no
	// locking; it should not block for long, as it stalls result
	// delivery. The returned slice is unchanged; streaming consumers
	// (live dashboards, online aggregation over huge batches) read from
	// the callback and may ignore the slice.
	OnResult func(BatchOutcome)
}

// runBatch fans trials across the engine, streaming outcomes to OnResult
// when set.
func runBatch(ctx context.Context, cfg engine.Config, n int, opt BatchOptions, fn func(trial int, rng *rand.Rand) BatchOutcome) ([]BatchOutcome, error) {
	if opt.OnResult == nil {
		return engine.Run(ctx, cfg, n, fn)
	}
	out := make([]BatchOutcome, n)
	err := engine.Stream(ctx, cfg, n, fn, func(trial int, r BatchOutcome) {
		out[trial] = r
		opt.OnResult(r)
	})
	return out, err
}

// LocateN runs n independent rounds of this system's configuration
// concurrently and returns the outcomes in trial order.
//
// Each trial re-instantiates the deployment with a private RNG derived
// from the system seed and the trial index (internal/engine's seeding
// contract), so trial t observes the same simulated round whether the
// batch runs on one worker or sixty-four — and the same round it would
// observe in any other batch sized past t with the same seed. This is the
// bulk-evaluation entry point: CDFs over round realizations, soak runs,
// regression sweeps.
func (s *System) LocateN(ctx context.Context, n int, opt BatchOptions) ([]BatchOutcome, error) {
	cfg := engine.Config{Seed: s.cfg.Seed, Workers: opt.Workers}
	return runBatch(ctx, cfg, n, opt, func(trial int, _ *rand.Rand) BatchOutcome {
		trialCfg := s.cfg
		trialCfg.Seed = engine.TrialSeed(s.cfg.Seed, trial)
		sys, err := NewSystem(trialCfg)
		if err != nil {
			return BatchOutcome{Trial: trial, Err: err}
		}
		out, err := sys.Locate(ctx)
		return BatchOutcome{Trial: trial, Outcome: out, Err: err}
	})
}

// Batch builds and runs one round of every scenario concurrently,
// returning outcomes in input order. Scenarios are independent: each uses
// its own seed (defaulted like NewSystem) and nothing is shared between
// trials, so any mix of environments, group sizes and fault patterns can
// run in one call.
func Batch(ctx context.Context, scenarios []SystemConfig, opt BatchOptions) ([]BatchOutcome, error) {
	if len(scenarios) == 0 {
		return nil, ConfigError{Field: "Scenarios", Reason: "empty batch"}
	}
	cfg := engine.Config{Workers: opt.Workers}
	return runBatch(ctx, cfg, len(scenarios), opt, func(i int, _ *rand.Rand) BatchOutcome {
		sys, err := NewSystem(scenarios[i])
		if err != nil {
			return BatchOutcome{Trial: i, Err: err}
		}
		out, err := sys.Locate(ctx)
		return BatchOutcome{Trial: i, Outcome: out, Err: err}
	})
}
