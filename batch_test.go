package uwpos

import (
	"context"
	"testing"
)

func batchConfig(seed int64) SystemConfig {
	return SystemConfig{
		Env: Dock(),
		Divers: []Diver{
			{Pos: Vec3{X: 0, Y: 0, Z: 2}},
			{Pos: Vec3{X: 6, Y: 1.5, Z: 2.5}},
			{Pos: Vec3{X: 13, Y: -5, Z: 1.5}},
		},
		Seed: seed,
	}
}

func TestLocateNDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full system rounds are expensive")
	}
	run := func(workers int) []BatchOutcome {
		sys, err := NewSystem(batchConfig(9))
		if err != nil {
			t.Fatal(err)
		}
		out, err := sys.LocateN(context.Background(), 3, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(3)
	if len(serial) != 3 || len(parallel) != 3 {
		t.Fatalf("lengths %d/%d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("trial %d error mismatch: %v vs %v", i, a.Err, b.Err)
		}
		if a.Err != nil {
			continue
		}
		for d := range a.Outcome.Result.Positions {
			pa, pb := a.Outcome.Result.Positions[d].Pos, b.Outcome.Result.Positions[d].Pos
			if pa != pb {
				t.Fatalf("trial %d device %d: %v vs %v", i, d, pa, pb)
			}
		}
	}
	// Distinct trials must see distinct simulated rounds.
	if len(serial) > 1 && serial[0].Err == nil && serial[1].Err == nil {
		same := true
		for d := range serial[0].Outcome.Result.Positions {
			if serial[0].Outcome.Result.Positions[d].Pos != serial[1].Outcome.Result.Positions[d].Pos {
				same = false
			}
		}
		if same {
			t.Error("trials 0 and 1 produced identical rounds (seeding broken)")
		}
	}
}

func TestBatchRunsMixedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full system rounds are expensive")
	}
	scenarios := []SystemConfig{
		batchConfig(3),
		{Env: Dock()}, // invalid: too few divers
		batchConfig(4),
	}
	out, err := Batch(context.Background(), scenarios, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d outcomes", len(out))
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Errorf("valid scenarios failed: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Error("invalid scenario did not surface its error")
	}
	if out[0].Outcome == nil || len(out[0].Outcome.Result.Positions) != 3 {
		t.Error("scenario 0 outcome malformed")
	}
}

func TestBatchEmpty(t *testing.T) {
	if _, err := Batch(context.Background(), nil, BatchOptions{}); err == nil {
		t.Error("empty batch should error")
	}
}

// TestLocateNOnResultStreams: the OnResult callback must observe every
// outcome exactly once, serialized, as rounds complete — and the returned
// slice must be unchanged by the streaming path.
func TestLocateNOnResultStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("full system rounds are expensive")
	}
	sys, err := NewSystem(batchConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	out, err := sys.LocateN(context.Background(), 3, BatchOptions{
		Workers: 3,
		OnResult: func(o BatchOutcome) {
			seen[o.Trial]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(seen) != 3 {
		t.Fatalf("returned %d outcomes, callback saw %d trials", len(out), len(seen))
	}
	for trial, n := range seen {
		if n != 1 {
			t.Errorf("trial %d delivered %d times", trial, n)
		}
	}
	// Streamed and collected results are the same trials.
	for i, o := range out {
		if o.Trial != i {
			t.Errorf("slot %d holds trial %d", i, o.Trial)
		}
	}
}
