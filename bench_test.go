// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs its experiment at reduced trial counts
// (the full-fidelity tables come from cmd/uwbench) and reports the
// figure's headline statistic as a custom metric, so `go test -bench=.`
// doubles as a regression harness for the reproduced results.
package uwpos_test

import (
	"math"
	"runtime"
	"testing"

	"uwpos/internal/experiments"
	"uwpos/internal/stats"
)

func benchOpt(b *testing.B, samples int) experiments.Options {
	b.Helper()
	return experiments.Options{Seed: 1, Samples: samples, Quick: true}
}

// BenchmarkEngineSerial vs BenchmarkEngineParallel run the identical
// engine workload at 1 worker vs GOMAXPROCS workers, so the bench
// trajectory tracks the worker-pool speedup over time. The two produce
// byte-identical experiment results by the engine's seeding contract —
// only the wall clock may differ.
func benchEngineWorkload(b *testing.B, workers int) {
	b.Helper()
	opt := experiments.Options{Seed: 1, Samples: 60, Workers: workers}
	var last []float64
	for i := 0; i < b.N; i++ {
		last, _ = experiments.Fig06a(opt)
	}
	b.ReportMetric(last[4], "m-2Derr@e1d=1.0")
}

func BenchmarkEngineSerial(b *testing.B)   { benchEngineWorkload(b, 1) }
func BenchmarkEngineParallel(b *testing.B) { benchEngineWorkload(b, runtime.GOMAXPROCS(0)) }

func BenchmarkFig06a(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		last, _ = experiments.Fig06a(benchOpt(b, 40))
	}
	b.ReportMetric(last[4], "m-2Derr@e1d=1.0")
}

func BenchmarkFig06b(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		last, _ = experiments.Fig06b(benchOpt(b, 40))
	}
	b.ReportMetric(last[0]-last[len(last)-1], "m-gainN3toN8")
}

func BenchmarkFig06c(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		last, _ = experiments.Fig06c(benchOpt(b, 40))
	}
	b.ReportMetric(last[len(last)-1], "m-2Derr@20deg")
}

func BenchmarkFig06d(b *testing.B) {
	var last []float64
	for i := 0; i < b.N; i++ {
		last, _ = experiments.Fig06d(benchOpt(b, 40))
	}
	b.ReportMetric(last[3], "m-2Derr@3drops")
}

func BenchmarkFig11a(b *testing.B) {
	var out map[float64][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig11a(benchOpt(b, 4))
	}
	b.ReportMetric(stats.Median(out[10]), "m-median@10m")
}

func BenchmarkFig11b(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig11b(benchOpt(b, 4))
	}
	b.ReportMetric(stats.Percentile(out["ours-dual-mic"], 95), "m-95th-dualmic")
}

func BenchmarkFig12a(b *testing.B) {
	var ours experiments.DetectionCounts
	for i := 0; i < b.N; i++ {
		ours, _, _ = experiments.Fig12a(benchOpt(b, 12))
	}
	b.ReportMetric(ours.FNRatio, "FN-ratio-ours")
}

func BenchmarkFig12b(b *testing.B) {
	var out map[string]map[float64][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig12b(benchOpt(b, 4))
	}
	b.ReportMetric(stats.Mean(out["ours-dual-mic"][10]), "m-mean-ours@10m")
}

func BenchmarkFig13a(b *testing.B) {
	var out map[float64][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig13a(benchOpt(b, 4))
	}
	b.ReportMetric(stats.Median(out[5]), "m-median@5mdepth")
}

func BenchmarkFig13b(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig13b(benchOpt(b, 20))
	}
	b.ReportMetric(stats.Mean(out["watch"]), "m-meanerr-watch")
}

func BenchmarkFig14a(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig14a(benchOpt(b, 4))
	}
	var worst float64
	for _, es := range out {
		if m := stats.Median(es); !math.IsNaN(m) && m > worst {
			worst = m
		}
	}
	b.ReportMetric(worst, "m-worst-orientation-median")
}

func BenchmarkFig14b(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig14b(benchOpt(b, 4))
	}
	var worst float64
	for _, es := range out {
		if m := stats.Median(es); !math.IsNaN(m) && m > worst {
			worst = m
		}
	}
	b.ReportMetric(worst, "m-worst-pair-median")
}

func BenchmarkFig15(b *testing.B) {
	var out map[float64][]experiments.Fig15Point
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig15(benchOpt(b, 6))
	}
	var errs []float64
	for _, pts := range out {
		for _, p := range pts {
			errs = append(errs, math.Abs(p.EstimatedM-p.TrueM))
		}
	}
	b.ReportMetric(stats.Median(errs), "m-median-moving")
}

func BenchmarkFig16(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean, _ = experiments.Fig16(benchOpt(b, 100))
	}
	b.ReportMetric(mean, "deg-mean-pointing")
}

func BenchmarkFig18(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig18(benchOpt(b, 2))
	}
	b.ReportMetric(stats.Median(out["dock/all"]), "m-median-dock")
}

func BenchmarkFig19a(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig19a(benchOpt(b, 2))
	}
	b.ReportMetric(stats.Percentile(out["with"], 95), "m-95th-withdetection")
}

func BenchmarkFig19b(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig19b(benchOpt(b, 2))
	}
	b.ReportMetric(stats.Median(out["full"]), "m-median-full")
}

func BenchmarkFig20(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig20(benchOpt(b, 2))
	}
	var all []float64
	for _, es := range out {
		all = append(all, es...)
	}
	b.ReportMetric(stats.Median(all), "m-median-mobility")
}

func BenchmarkFig22(b *testing.B) {
	var out map[float64][]float64
	for i := 0; i < b.N; i++ {
		pts, _ := experiments.Fig22(benchOpt(b, 1))
		out = map[float64][]float64{}
		for d, ps := range pts {
			for _, p := range ps {
				if !math.IsInf(p.SNRDB, 0) {
					out[d] = append(out[d], p.SNRDB)
				}
			}
		}
	}
	b.ReportMetric(stats.Mean(out[10]), "dB-meanSNR@10m")
}

func BenchmarkProtocolRTT(b *testing.B) {
	var out map[int]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.RTT(experiments.Options{Seed: 1, Samples: 1})
	}
	b.ReportMetric(out[5], "s-roundtime-N5")
}

func BenchmarkFlipping(b *testing.B) {
	var single, triple float64
	for i := 0; i < b.N; i++ {
		single, triple, _ = experiments.Flipping(benchOpt(b, 3))
	}
	b.ReportMetric(single, "acc-single-voter")
	b.ReportMetric(triple, "acc-three-voters")
}

func BenchmarkBattery(b *testing.B) {
	var tab *stats.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.Battery(experiments.Options{})
	}
	if len(tab.Rows) != 2 {
		b.Fatal("battery table malformed")
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Headline(benchOpt(b, 2))
	}
}

func BenchmarkAblationBandWindow(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.AblationBandWindow(benchOpt(b, 10))
	}
	b.ReportMetric(stats.Median(out["hann"]), "m-median-hann")
	b.ReportMetric(stats.Median(out["rectangular"]), "m-median-rect")
}

func BenchmarkAblationPrefilter(b *testing.B) {
	var rates map[string]float64
	for i := 0; i < b.N; i++ {
		rates, _ = experiments.AblationPrefilter(benchOpt(b, 16))
	}
	b.ReportMetric(rates["with prefilter"]-rates["without prefilter"], "detect-rate-gain")
}

func BenchmarkAblationRestarts(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.AblationRestarts(benchOpt(b, 40))
	}
	b.ReportMetric(stats.Median(out["restarts=2"])-stats.Median(out["restarts=0"]), "m-stress-gain")
}

func BenchmarkAblationReportBack(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.AblationReportBack(benchOpt(b, 2))
	}
	b.ReportMetric(stats.Median(out["full comm"])-stats.Median(out["lossless"]), "m-comm-cost")
}

// BenchmarkAblationOutlierGate compares Algorithm 1 with and without the
// unique-realizability gate called out in DESIGN.md: the gate prevents
// drops that would make the topology ambiguous.
func BenchmarkAblationOutlierGate(b *testing.B) {
	var out map[string][]float64
	for i := 0; i < b.N; i++ {
		out, _ = experiments.Fig19a(benchOpt(b, 2))
	}
	with := stats.Percentile(out["with"], 95)
	without := stats.Percentile(out["without"], 95)
	b.ReportMetric(without-with, "m-tail-reduction")
}
