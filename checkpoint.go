package uwpos

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint captures a System's complete mutable state between rounds.
// A simulated deployment is a pure function of its SystemConfig plus the
// position of its random stream — devices, audio and channel state are
// rebuilt every round — so the checkpoint is just the seed (identifying
// the stream) and the draw cursor (identifying the position in it). The
// invariant: a System rebuilt from the same config and restored to a
// checkpoint taken after round k produces rounds k+1..n byte-identical
// to the uninterrupted run. uwposd builds its crash-safe session
// snapshots on this.
type Checkpoint struct {
	// Seed is the effective simulation seed (after defaulting).
	Seed int64
	// RNGDraws is the number of raw random values drawn so far.
	RNGDraws uint64
}

// Checkpoint returns the system's current state cursor. It fails only
// for systems driven by an external RNG (not constructible through the
// public API, but internal trial engines do it); callers holding a
// NewSystem-built System can rely on it succeeding.
func (s *System) Checkpoint() (Checkpoint, error) {
	draws, ok := s.network.RNGDraws()
	if !ok {
		return Checkpoint{}, fmt.Errorf("uwpos: system's RNG position is not observable")
	}
	return Checkpoint{Seed: s.cfg.Seed, RNGDraws: draws}, nil
}

// RestoreCheckpoint fast-forwards a freshly built System to a
// checkpoint previously taken from a System with the identical
// SystemConfig. It validates the seed and refuses to move backwards (a
// System that has already run rounds past the checkpoint cannot rewind;
// rebuild it instead). The fast-forward replays raw RNG draws — tens of
// milliseconds for a typical session history — and honours ctx so a
// restore-on-boot path can be deadline-bounded.
func (s *System) RestoreCheckpoint(ctx context.Context, cp Checkpoint) error {
	if cp.Seed != s.cfg.Seed {
		return ConfigError{Field: "Seed", Reason: fmt.Sprintf(
			"checkpoint from seed %d cannot restore a system seeded %d", cp.Seed, s.cfg.Seed)}
	}
	return s.network.AdvanceRNG(ctx, cp.RNGDraws)
}

// groupTrackerCodecVersion tags the public GroupTracker wire format
// (wrapping internal/track's own versioned blob).
const groupTrackerCodecVersion = 1

// MarshalBinary encodes the tracker's complete state: the last-round
// clock, the seeded flag and every per-diver filter, bit-exact. Part of
// the uwposd session snapshot format.
func (g *GroupTracker) MarshalBinary() ([]byte, error) {
	inner, err := g.inner.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+8+1+len(inner))
	b = append(b, groupTrackerCodecVersion)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(g.lastT))
	var flags byte
	if g.seeded {
		flags |= 1
	}
	b = append(b, flags)
	return append(b, inner...), nil
}

// UnmarshalBinary replaces the tracker's state with an encoded one. A
// failed decode leaves the tracker unchanged.
func (g *GroupTracker) UnmarshalBinary(data []byte) error {
	if len(data) < 1+8+1 {
		return fmt.Errorf("uwpos: tracker blob truncated at %d bytes", len(data))
	}
	if data[0] != groupTrackerCodecVersion {
		return fmt.Errorf("uwpos: unknown tracker codec version %d", data[0])
	}
	lastT := math.Float64frombits(binary.LittleEndian.Uint64(data[1:]))
	seeded := data[9]&1 != 0
	inner := NewGroupTracker(TrackerConfig{}).inner
	if err := inner.UnmarshalBinary(data[10:]); err != nil {
		return err
	}
	g.inner, g.lastT, g.seeded = inner, lastT, seeded
	return nil
}
