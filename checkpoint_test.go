package uwpos

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func checkpointTestConfig(seed int64) SystemConfig {
	return SystemConfig{
		Env: Pool(),
		Divers: []Diver{
			{Pos: Vec3{X: 0, Y: 0, Z: 1.5}},
			{Pos: Vec3{X: 5, Y: 1, Z: 2.0}},
			{Pos: Vec3{X: 8, Y: -3, Z: 1.0}},
		},
		Seed: seed,
	}
}

// locateJSON runs one round and serializes the outcome; RoundOutcome is
// NaN-free (weights mark missing links), so JSON is byte-comparable.
func locateJSON(t *testing.T, ctx context.Context, sys *System) []byte {
	t.Helper()
	out, err := sys.Locate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestCheckpointRestoreReplay is the public-API statement of the
// crash-safety invariant: checkpoint after round k, rebuild from config,
// restore, and the remaining rounds serialize byte-identically.
func TestCheckpointRestoreReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	ctx := context.Background()
	for _, seed := range []int64{1, 7} {
		sys, err := NewSystem(checkpointTestConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		locateJSON(t, ctx, sys) // round 1 (discarded: pre-checkpoint history)
		cp, err := sys.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if cp.RNGDraws == 0 {
			t.Fatal("round consumed no RNG draws")
		}
		want := [][]byte{locateJSON(t, ctx, sys), locateJSON(t, ctx, sys)}

		re, err := NewSystem(checkpointTestConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := re.RestoreCheckpoint(ctx, cp); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got := locateJSON(t, ctx, re); string(got) != string(w) {
				t.Errorf("seed %d: round %d after restore differs from uninterrupted run", seed, i+2)
			}
		}
	}
}

func TestCheckpointSeedMismatch(t *testing.T) {
	sys, err := NewSystem(checkpointTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	err = sys.RestoreCheckpoint(context.Background(), Checkpoint{Seed: 4, RNGDraws: 10})
	var ce ConfigError
	if err == nil || !errors.As(err, &ce) || ce.Field != "Seed" {
		t.Fatalf("want ConfigError{Field: Seed} on seed mismatch, got %v", err)
	}
}

func TestGroupTrackerBinaryRoundTrip(t *testing.T) {
	g := NewGroupTracker(TrackerConfig{})
	res := &Result{Positions: []Position{
		{Device: 0, Pos: Vec3{X: 0, Y: 0, Z: 1}},
		{Device: 1, Pos: Vec3{X: 4, Y: 2, Z: 2}},
		{Device: 2, Pos: Vec3{X: 7, Y: -1, Z: 1.5}},
	}}
	for r := 0; r < 4; r++ {
		if err := g.AddRound(float64(r)*10, res); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	re := NewGroupTracker(TrackerConfig{})
	if err := re.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	// Out-of-order protection state must survive: a round before lastT
	// is rejected by the restored tracker too.
	if err := re.AddRound(5, res); err == nil {
		t.Error("restored tracker accepted an out-of-order round")
	}
	// Identical further rounds keep the two bit-equal.
	if err := g.AddRound(40, res); err != nil {
		t.Fatal(err)
	}
	if err := re.AddRound(40, res); err != nil {
		t.Fatal(err)
	}
	pa, pb := g.PositionsAt(55), re.PositionsAt(55)
	if len(pa) != len(pb) {
		t.Fatalf("tracked sets differ: %d vs %d", len(pa), len(pb))
	}
	for id, p := range pa {
		if pb[id] != p {
			t.Errorf("device %d diverged: %v vs %v", id, p, pb[id])
		}
		if g.UncertaintyOf(id) != re.UncertaintyOf(id) {
			t.Errorf("device %d uncertainty diverged", id)
		}
	}
	// Corruption leaves the tracker untouched.
	bad := append([]byte{}, blob...)
	bad[0] = 99
	if err := re.UnmarshalBinary(bad); err == nil {
		t.Error("unknown version accepted")
	}
	if re.PositionsAt(55)[1] != pa[1] {
		t.Error("failed decode mutated tracker state")
	}
}
