// Command uwbench regenerates the paper's tables and figures and prints
// them as text tables with the paper's reported shape alongside.
//
// Usage:
//
//	uwbench [-experiment all|fig06a|fig06b|...|headline] [-samples N] [-seed S] [-quick] [-workers W]
//
// Monte-Carlo trials fan out across -workers goroutines (default
// GOMAXPROCS) on the internal/engine trial runner; per-trial seeding makes
// the output byte-identical for every worker count.
//
// Experiment IDs match the figure/table numbering of the paper (see
// DESIGN.md §4 for the index).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"uwpos/internal/experiments"
	"uwpos/internal/stats"
)

type runner func(experiments.Options) *stats.Table

func registry() map[string]runner {
	return map[string]runner{
		"fig06a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06a(o); return t },
		"fig06b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06b(o); return t },
		"fig06c": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06c(o); return t },
		"fig06d": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06d(o); return t },
		"fig11a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11a(o); return t },
		"fig11b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11b(o); return t },
		"fig12a": func(o experiments.Options) *stats.Table { _, _, t := experiments.Fig12a(o); return t },
		"fig12b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig12b(o); return t },
		"fig13a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13a(o); return t },
		"fig13b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13b(o); return t },
		"fig14a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14a(o); return t },
		"fig14b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14b(o); return t },
		"fig15":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig15(o); return t },
		"fig16":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig16(o); return t },
		"fig18":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig18(o); return t },
		"fig19a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19a(o); return t },
		"fig19b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19b(o); return t },
		"fig19b-4dev": func(o experiments.Options) *stats.Table {
			_, t := experiments.FourDevices(o)
			return t
		},
		"fig20": func(o experiments.Options) *stats.Table { _, t := experiments.Fig20(o); return t },
		"fig22": func(o experiments.Options) *stats.Table { _, t := experiments.Fig22(o); return t },
		"rtt":   func(o experiments.Options) *stats.Table { _, t := experiments.RTT(o); return t },
		"flipping": func(o experiments.Options) *stats.Table {
			_, _, t := experiments.Flipping(o)
			return t
		},
		"battery":  func(o experiments.Options) *stats.Table { return experiments.Battery(o) },
		"headline": experiments.Headline,
		"ablation-bandwindow": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationBandWindow(o)
			return t
		},
		"ablation-prefilter": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationPrefilter(o)
			return t
		},
		"ablation-restarts": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationRestarts(o)
			return t
		},
		"ablation-reportback": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationReportBack(o)
			return t
		},
	}
}

// order fixes a stable printing order mirroring the paper's flow.
var order = []string{
	"fig06a", "fig06b", "fig06c", "fig06d",
	"fig11a", "fig11b", "fig12a", "fig12b",
	"fig13a", "fig13b", "fig14a", "fig14b",
	"fig15", "fig16", "fig22",
	"fig18", "fig19a", "fig19b", "fig19b-4dev", "fig20",
	"rtt", "flipping", "battery",
	"ablation-bandwindow", "ablation-prefilter", "ablation-restarts", "ablation-reportback",
	"headline",
}

func main() {
	var (
		exp     = flag.String("experiment", "all", "experiment id (or 'all', 'list')")
		samples = flag.Int("samples", 0, "override per-point sample count (0 = defaults)")
		seed    = flag.Int64("seed", 1, "random seed")
		quick   = flag.Bool("quick", false, "divide heavy sample counts by 4")
		workers = flag.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	reg := registry()
	if *exp == "list" {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	opt := experiments.Options{Seed: *seed, Samples: *samples, Quick: *quick, Workers: *workers}
	run := func(id string) {
		fn, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -experiment list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table := fn(opt)
		fmt.Print(table.Format())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *exp == "all" {
		for _, id := range order {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}
