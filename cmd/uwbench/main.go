// Command uwbench regenerates the paper's tables and figures and prints
// them as text tables with the paper's reported shape alongside.
//
// Usage:
//
//	uwbench [-experiment all|fig06a|fig06b|...|headline] [-samples N] [-seed S] [-quick] [-workers W]
//	        [-progress] [-out bench.json] [-baseline BENCH_baseline.json]
//	        [-shard i/n] [-merge a.json,b.json,...] [-resume] [-checkpoint file] [-checkpoint-every N]
//
// Monte-Carlo trials fan out across -workers goroutines (default
// GOMAXPROCS) on the internal/engine trial runner; per-trial seeding makes
// the output byte-identical for every worker count. Trial results stream
// into online aggregators (internal/stats) as they complete, so result
// memory stays bounded at any -samples value; -progress taps the same
// stream for a live trials/sec + running-median line on stderr.
//
// Distributed sweeps: -shard i/n runs only the i-th contiguous slice of
// every experiment's trial sequence and writes the mergeable partial state
// to -out instead of tables; -merge folds the n shard files back together
// and renders the final tables, byte-identical to a single-process run at
// any shard and worker count. Long runs checkpoint their partial state
// periodically (atomic tmp+fsync+rename snapshots); -resume picks up after
// a preemption from the last snapshot.
//
// -out writes a structured JSON record of every table plus wall-clock
// timings (the CI benchmark artifact); -baseline compares those timings
// against a previous -out file and exits non-zero on >25% regressions.
//
// Experiment IDs match the figure/table numbering of the paper (see
// DESIGN.md §4 for the index).
package main

import (
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"uwpos/internal/experiments"
	"uwpos/internal/stats"
)

type runner func(experiments.Options) *stats.Table

func registry() map[string]runner {
	return map[string]runner{
		"fig06a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06a(o); return t },
		"fig06b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06b(o); return t },
		"fig06c": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06c(o); return t },
		"fig06d": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06d(o); return t },
		"fig11a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11a(o); return t },
		"fig11b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11b(o); return t },
		"fig12a": func(o experiments.Options) *stats.Table { _, _, t := experiments.Fig12a(o); return t },
		"fig12b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig12b(o); return t },
		"fig13a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13a(o); return t },
		"fig13b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13b(o); return t },
		"fig14a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14a(o); return t },
		"fig14b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14b(o); return t },
		"fig15":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig15(o); return t },
		"fig16":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig16(o); return t },
		"fig18":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig18(o); return t },
		"fig19a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19a(o); return t },
		"fig19b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19b(o); return t },
		"fig19b-4dev": func(o experiments.Options) *stats.Table {
			_, t := experiments.FourDevices(o)
			return t
		},
		"fig20": func(o experiments.Options) *stats.Table { _, t := experiments.Fig20(o); return t },
		"fig22": func(o experiments.Options) *stats.Table { _, t := experiments.Fig22(o); return t },
		"rtt":   func(o experiments.Options) *stats.Table { _, t := experiments.RTT(o); return t },
		"flipping": func(o experiments.Options) *stats.Table {
			_, _, t := experiments.Flipping(o)
			return t
		},
		"battery":   func(o experiments.Options) *stats.Table { return experiments.Battery(o) },
		"streaming": func(o experiments.Options) *stats.Table { return experiments.Streaming(o) },
		"ingest":    func(o experiments.Options) *stats.Table { return experiments.Ingest(o) },
		// "service" is a load test of the uwposd serving stack: its table
		// reports wall-clock latencies, so it stays out of the
		// deterministic "all" ordering and the baseline timing gate.
		"service":  func(o experiments.Options) *stats.Table { return experiments.Service(o) },
		"headline": experiments.Headline,
		"ablation-bandwindow": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationBandWindow(o)
			return t
		},
		"ablation-prefilter": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationPrefilter(o)
			return t
		},
		"ablation-restarts": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationRestarts(o)
			return t
		},
		"ablation-reportback": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationReportBack(o)
			return t
		},
	}
}

// order fixes a stable printing order mirroring the paper's flow.
var order = []string{
	"fig06a", "fig06b", "fig06c", "fig06d",
	"fig11a", "fig11b", "fig12a", "fig12b",
	"fig13a", "fig13b", "fig14a", "fig14b",
	"fig15", "fig16", "fig22",
	"fig18", "fig19a", "fig19b", "fig19b-4dev", "fig20",
	"rtt", "flipping", "battery", "streaming", "ingest",
	"ablation-bandwindow", "ablation-prefilter", "ablation-restarts", "ablation-reportback",
	"headline",
}

// parseExperimentIDs expands an -experiment value into experiment ids.
// Empty entries ("a,,b", trailing commas) are skipped; duplicates are an
// error — a duplicated id in a sweep invocation is almost always a typo
// for a different experiment, and running it twice would double-count its
// timings in -out.
func parseExperimentIDs(spec string) ([]string, error) {
	if spec == "all" {
		return append([]string(nil), order...), nil
	}
	seen := make(map[string]bool)
	var ids []string
	for _, raw := range strings.Split(spec, ",") {
		id := strings.TrimSpace(raw)
		if id == "" {
			continue
		}
		if seen[id] {
			return nil, fmt.Errorf("experiment %q listed more than once in -experiment", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("-experiment %q names no experiments", spec)
	}
	return ids, nil
}

// parseShard parses "-shard i/n".
func parseShard(s string) (experiments.ShardSpec, error) {
	var spec experiments.ShardSpec
	idx := strings.IndexByte(s, '/')
	if idx < 0 {
		return spec, fmt.Errorf("-shard %q: want i/n (e.g. 2/4)", s)
	}
	i, err := strconv.Atoi(s[:idx])
	if err != nil {
		return spec, fmt.Errorf("-shard %q: bad index: %v", s, err)
	}
	n, err := strconv.Atoi(s[idx+1:])
	if err != nil {
		return spec, fmt.Errorf("-shard %q: bad count: %v", s, err)
	}
	if n < 1 {
		return spec, fmt.Errorf("-shard %q: shard count must be >= 1", s)
	}
	spec = experiments.ShardSpec{Index: i, Count: n}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("-shard %q: %v", s, err)
	}
	return spec, nil
}

// progressMeter renders the live stderr line from Options.Progress
// callbacks: streamed result count, results/sec and the running median of
// the current experiment's headline scalar (a fixed-memory sketch, so the
// line stays O(1) however many trials stream past).
type progressMeter struct {
	out       io.Writer
	id        string
	start     time.Time
	count     int64
	sk        *stats.Sketch
	lastPrint time.Time
	lineLen   int // width of the in-place line on screen (0 = clean)
}

func (p *progressMeter) reset(id string) {
	p.id = id
	p.start = time.Now()
	p.count = 0
	p.sk = stats.NewSketch()
	p.lastPrint = time.Time{} // new experiment: print immediately, not after a stale throttle
}

func (p *progressMeter) observe(v float64) {
	p.count++
	p.sk.Add(v)
	if time.Since(p.lastPrint) < 200*time.Millisecond {
		return
	}
	p.lastPrint = time.Now()
	rate := float64(p.count) / time.Since(p.start).Seconds()
	line := fmt.Sprintf("%s: %d results  %.1f/s  running median %.3f",
		p.id, p.count, rate, p.sk.Quantile(50))
	// Pad to the previous line's width so a shrinking line leaves no tail.
	pad := p.lineLen - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(p.out, "\r%s%s", line, strings.Repeat(" ", pad))
	p.lineLen = len(line)
}

// clear wipes the in-place line so the finished table prints clean.
func (p *progressMeter) clear() {
	if p.lineLen > 0 {
		fmt.Fprintf(p.out, "\r%s\r", strings.Repeat(" ", p.lineLen))
		p.lineLen = 0
	}
}

// benchTable is one experiment's record in the -out JSON file.
type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Paper   string     `json:"paper,omitempty"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   string     `json:"notes,omitempty"`
	Seconds float64    `json:"seconds"`
	Results int64      `json:"results,omitempty"`
}

// benchFile is the -out / -baseline schema.
type benchFile struct {
	Schema      int          `json:"schema"`
	Seed        int64        `json:"seed"`
	Samples     int          `json:"samples"`
	Quick       bool         `json:"quick"`
	Workers     int          `json:"workers"`
	Experiments []benchTable `json:"experiments"`
}

// shardEntry is one experiment's mergeable accumulator state, as carried
// by shard and checkpoint files (base64 of the experiments.Partial codec).
type shardEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Partial string  `json:"partial"`
}

// shardFile is what a -shard run writes to -out and what -merge reads.
// Workers is deliberately absent: shard results are byte-identical at any
// worker count, so shards of one sweep may use different worker counts.
type shardFile struct {
	Schema      int                   `json:"schema"`
	Seed        int64                 `json:"seed"`
	Samples     int                   `json:"samples"`
	Quick       bool                  `json:"quick"`
	Shard       experiments.ShardSpec `json:"shard"`
	Experiments []shardEntry          `json:"experiments"`
}

// checkpointFile is the periodic -checkpoint snapshot: everything a
// preempted run needs to continue. Completed carries already-printed
// tables (plain runs), Partials carries finished shard state (shard
// runs), Current the in-progress experiment's accumulator.
type checkpointFile struct {
	Schema    int                   `json:"schema"`
	Seed      int64                 `json:"seed"`
	Samples   int                   `json:"samples"`
	Quick     bool                  `json:"quick"`
	Shard     experiments.ShardSpec `json:"shard"`
	Completed []benchTable          `json:"completed,omitempty"`
	Partials  []shardEntry          `json:"partials,omitempty"`
	Current   *shardEntry           `json:"current,omitempty"`
}

// atomicWrite lands data at path via the store.go crash-safety pattern:
// write a sibling tmp file, fsync it, rename over the final name. A crash
// mid-write leaves the previous snapshot intact.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func encodePartial(id string, p *experiments.Partial, secs float64) (shardEntry, error) {
	blob, err := p.MarshalBinary()
	if err != nil {
		return shardEntry{}, fmt.Errorf("%s: encode partial: %w", id, err)
	}
	return shardEntry{ID: id, Seconds: secs, Partial: base64.StdEncoding.EncodeToString(blob)}, nil
}

func decodePartial(e shardEntry) (*experiments.Partial, error) {
	blob, err := base64.StdEncoding.DecodeString(e.Partial)
	if err != nil {
		return nil, fmt.Errorf("%s: decode partial: %w", e.ID, err)
	}
	p := experiments.NewPartial()
	if err := p.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return p, nil
}

func tableOf(bt benchTable) *stats.Table {
	return &stats.Table{ID: bt.ID, Title: bt.Title, Paper: bt.Paper, Header: bt.Header, Rows: bt.Rows, Notes: bt.Notes}
}

// Baseline-comparison gates. A run fails only when an experiment is >25%
// slower than the baseline predicts AND at least a quarter second slower,
// so sub-second noise on shared CI runners does not flap the gate. The
// prediction is machine-speed normalized: the baseline was recorded on
// whatever box last regenerated it, so each experiment's expected time is
// base × (median cur/base ratio across experiments with ≥50 ms baselines).
// A uniformly slower runner shifts every ratio equally and trips nothing;
// a single experiment regressing stands out from the median and fails.
const (
	regressionFactor   = 1.25
	regressionFloorSec = 0.25
	calibrationFloor   = 0.05 // baselines below this are too noisy to calibrate on
)

// speedRatio estimates the current machine's speed relative to the
// baseline machine as the median per-experiment cur/base timing ratio.
// Falls back to 1 when nothing is measurable.
func speedRatio(cur benchFile, baseByID map[string]benchTable) float64 {
	var ratios []float64
	for _, e := range cur.Experiments {
		if b, found := baseByID[e.ID]; found && b.Seconds >= calibrationFloor && e.Seconds > 0 {
			ratios = append(ratios, e.Seconds/b.Seconds)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// compareBaseline reports timing regressions of cur vs a previous -out
// file. It returns false when any experiment regressed, or when an
// experiment present in the baseline was not run at all (a silently
// shrunken gate is itself a failure).
func compareBaseline(w io.Writer, cur benchFile, baselinePath string) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	// Timings are only comparable for the same workload: -quick and
	// -samples change trial counts non-uniformly per experiment, -seed
	// changes scenario draws, -workers changes parallel wall time. A
	// mismatch means the baseline needs regenerating, not a comparison.
	if cur.Quick != base.Quick || cur.Samples != base.Samples ||
		cur.Seed != base.Seed || cur.Workers != base.Workers {
		return false, fmt.Errorf(
			"baseline %s was recorded with quick=%v samples=%d seed=%d workers=%d; this run used quick=%v samples=%d seed=%d workers=%d — regenerate the baseline with matching flags",
			baselinePath, base.Quick, base.Samples, base.Seed, base.Workers,
			cur.Quick, cur.Samples, cur.Seed, cur.Workers)
	}
	baseByID := make(map[string]benchTable, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}
	scale := speedRatio(cur, baseByID)
	ok := true
	fmt.Fprintf(w, "== benchmark comparison vs %s (machine speed ratio %.2fx) ==\n", baselinePath, scale)
	fmt.Fprintf(w, "%-22s %10s %12s %10s %8s\n", "experiment", "base (s)", "expected (s)", "now (s)", "delta")
	covered := make(map[string]bool, len(cur.Experiments))
	for _, e := range cur.Experiments {
		covered[e.ID] = true
		b, found := baseByID[e.ID]
		if !found || b.Seconds <= 0 {
			fmt.Fprintf(w, "%-22s %10s %12s %10.2f %8s\n", e.ID, "-", "-", e.Seconds, "new")
			continue
		}
		expected := b.Seconds * scale
		delta := (e.Seconds - expected) / expected * 100
		mark := ""
		if e.Seconds > expected*regressionFactor && e.Seconds-expected > regressionFloorSec {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-22s %10.2f %12.2f %10.2f %+7.1f%%%s\n", e.ID, b.Seconds, expected, e.Seconds, delta, mark)
	}
	for _, b := range base.Experiments {
		if !covered[b.ID] {
			fmt.Fprintf(w, "%-22s %10.2f %12s %10s %8s  MISSING FROM RUN\n", b.ID, b.Seconds, "-", "-", "")
			ok = false
		}
	}
	return ok, nil
}

// runMerge folds shard files back into final tables (and optionally a
// benchFile at outPath). Shards must agree on workload flags and form a
// complete 0..n-1 index set; partials fold in shard-index order, which is
// what makes the merged tables byte-identical to a single-process run.
func runMerge(paths []string, outPath string, workers int, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, format+"\n", args...)
		return 1
	}
	if len(paths) == 0 {
		return fail("-merge: no shard files given")
	}
	shards := make([]shardFile, 0, len(paths))
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return fail("-merge: %v", err)
		}
		var sf shardFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return fail("-merge: parse %s: %v", path, err)
		}
		if sf.Schema != 1 {
			return fail("-merge: %s: unsupported shard schema %d", path, sf.Schema)
		}
		shards = append(shards, sf)
	}
	first := shards[0]
	count := first.Shard.Count
	if count < 1 {
		count = 1
	}
	if len(shards) != count {
		return fail("-merge: shard count is %d but %d files were given", count, len(shards))
	}
	sort.SliceStable(shards, func(i, j int) bool { return shards[i].Shard.Index < shards[j].Shard.Index })
	for i, sf := range shards {
		if sf.Seed != first.Seed || sf.Samples != first.Samples || sf.Quick != first.Quick || sf.Shard.Count != first.Shard.Count {
			return fail("-merge: shard %d was run with seed=%d samples=%d quick=%v count=%d; shard 0 used seed=%d samples=%d quick=%v count=%d — shards of one sweep must share workload flags",
				sf.Shard.Index, sf.Seed, sf.Samples, sf.Quick, sf.Shard.Count,
				first.Seed, first.Samples, first.Quick, first.Shard.Count)
		}
		if sf.Shard.Index != i {
			return fail("-merge: need each shard index 0..%d exactly once, found index %d in position %d", count-1, sf.Shard.Index, i)
		}
		if len(sf.Experiments) != len(first.Experiments) {
			return fail("-merge: shard %d ran %d experiments, shard 0 ran %d", i, len(sf.Experiments), len(first.Experiments))
		}
		for ei := range sf.Experiments {
			if sf.Experiments[ei].ID != first.Experiments[ei].ID {
				return fail("-merge: shard %d experiment %d is %q, shard 0 has %q", i, ei, sf.Experiments[ei].ID, first.Experiments[ei].ID)
			}
		}
	}
	opt := experiments.Options{Seed: first.Seed, Samples: first.Samples, Quick: first.Quick, Workers: workers}
	record := benchFile{Schema: 1, Seed: first.Seed, Samples: first.Samples, Quick: first.Quick, Workers: workers}
	for ei, e := range first.Experiments {
		merged := experiments.NewPartial()
		var secs float64
		for si := range shards {
			entry := shards[si].Experiments[ei]
			p, err := decodePartial(entry)
			if err != nil {
				return fail("-merge: shard %d: %v", si, err)
			}
			merged.Merge(p)
			secs += entry.Seconds
		}
		table, err := experiments.RenderPartial(e.ID, opt, merged)
		if err != nil {
			return fail("-merge: %v", err)
		}
		fmt.Fprint(stdout, table.Format())
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", e.ID, secs)
		record.Experiments = append(record.Experiments, benchTable{
			ID: table.ID, Title: table.Title, Paper: table.Paper,
			Header: table.Header, Rows: table.Rows, Notes: table.Notes,
			Seconds: secs,
		})
	}
	if outPath != "" {
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			return fail("%v", err)
		}
		if err := atomicWrite(outPath, append(blob, '\n')); err != nil {
			return fail("%v", err)
		}
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the whole CLI behind an exit code, so deferred cleanup (CPU
// profile flush, checkpoint removal) runs on every path — main's os.Exit
// would skip it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uwbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("experiment", "all", "experiment id (or 'all', 'list', comma-separated ids)")
		samples   = fs.Int("samples", 0, "override per-point sample count (0 = defaults)")
		seed      = fs.Int64("seed", 1, "random seed")
		quick     = fs.Bool("quick", false, "divide heavy sample counts by 4")
		workers   = fs.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS); results are identical for any value")
		progress  = fs.Bool("progress", false, "live stderr line: streamed results, results/sec, running median")
		out       = fs.String("out", "", "write tables + timings as JSON to this file (CI artifact); with -shard, the mergeable shard blob")
		baseline  = fs.String("baseline", "", "compare timings against a previous -out file; exit 1 on >25% regression")
		profile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		svcAddr   = fs.String("service-addr", "", "live uwposd address for -experiment service (empty = in-process server)")
		shardFlag = fs.String("shard", "", "run slice i/n of every experiment's trials and write mergeable state to -out (e.g. -shard 2/4)")
		mergeFlag = fs.String("merge", "", "comma-separated shard files to fold into final tables (no trials are run)")
		resume    = fs.Bool("resume", false, "continue from the checkpoint file if present")
		ckptPath  = fs.String("checkpoint", "", "checkpoint file for crash recovery (default: <out>.ckpt when -out is set)")
		ckptEvery = fs.Int("checkpoint-every", 256, "checkpoint after every N delivered trials (0 disables)")
		dieAfter  = fs.Int("die-after", 0, "test hook: simulate preemption by exiting with code 7 after N delivered trials")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *mergeFlag != "" {
		if *shardFlag != "" || *resume {
			fmt.Fprintln(stderr, "-merge runs no trials; it cannot combine with -shard or -resume")
			return 2
		}
		var paths []string
		for _, raw := range strings.Split(*mergeFlag, ",") {
			if p := strings.TrimSpace(raw); p != "" {
				paths = append(paths, p)
			}
		}
		// Duplicate files are caught downstream as duplicate shard indices.
		return runMerge(paths, *out, *workers, stdout, stderr)
	}

	reg := registry()
	if *exp == "list" {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintln(stdout, strings.Join(ids, "\n"))
		return 0
	}

	ids, err := parseExperimentIDs(*exp)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			fmt.Fprintf(stderr, "unknown experiment %q (try -experiment list)\n", id)
			return 2
		}
	}

	var spec experiments.ShardSpec
	shardMode := *shardFlag != ""
	if shardMode {
		spec, err = parseShard(*shardFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *out == "" {
			fmt.Fprintln(stderr, "-shard writes mergeable state, not tables: it requires -out")
			return 2
		}
		if *baseline != "" {
			fmt.Fprintln(stderr, "-baseline compares full-run timings; it cannot combine with -shard")
			return 2
		}
		if *exp == "all" {
			kept := ids[:0]
			for _, id := range ids {
				if experiments.CanShard(id) {
					kept = append(kept, id)
				} else {
					fmt.Fprintf(stderr, "note: %s is not shardable (live-pipeline experiment); skipping in shard mode\n", id)
				}
			}
			ids = kept
		} else {
			for _, id := range ids {
				if !experiments.CanShard(id) {
					fmt.Fprintf(stderr, "experiment %q cannot run sharded (live-pipeline experiment)\n", id)
					return 2
				}
			}
		}
	}

	ckPath := *ckptPath
	if ckPath == "" && *out != "" {
		ckPath = *out + ".ckpt"
	}
	ckActive := ckPath != "" && *ckptEvery > 0

	var ck checkpointFile
	resumed := false
	if *resume {
		if ckPath == "" {
			fmt.Fprintln(stderr, "-resume needs a checkpoint location: pass -checkpoint or -out")
			return 2
		}
		raw, err := os.ReadFile(ckPath)
		switch {
		case err == nil:
			if err := json.Unmarshal(raw, &ck); err != nil {
				fmt.Fprintf(stderr, "resume: parse %s: %v\n", ckPath, err)
				return 1
			}
			if ck.Schema != 1 {
				fmt.Fprintf(stderr, "resume: %s has unsupported schema %d\n", ckPath, ck.Schema)
				return 1
			}
			if ck.Seed != *seed || ck.Samples != *samples || ck.Quick != *quick || ck.Shard != spec {
				fmt.Fprintf(stderr, "resume: %s was written by a run with seed=%d samples=%d quick=%v shard=%d/%d; this run's flags differ — delete it or rerun with matching flags\n",
					ckPath, ck.Seed, ck.Samples, ck.Quick, ck.Shard.Index, ck.Shard.Count)
				return 2
			}
			resumed = true
		case os.IsNotExist(err):
			// Nothing to resume: run from scratch (idempotent relaunch).
		default:
			fmt.Fprintf(stderr, "resume: %v\n", err)
			return 1
		}
	}

	opt := experiments.Options{Seed: *seed, Samples: *samples, Quick: *quick, Workers: *workers, ServiceAddr: *svcAddr}
	var meter *progressMeter
	if *progress {
		meter = &progressMeter{out: stderr}
		opt.Progress = meter.observe
	}
	record := benchFile{Schema: 1, Seed: *seed, Samples: *samples, Quick: *quick, Workers: *workers}

	completed := append([]benchTable(nil), ck.Completed...)
	partials := append([]shardEntry(nil), ck.Partials...)
	doneIDs := make(map[string]bool)
	// Replay the checkpoint's finished experiments: tables print exactly
	// as the first run printed them, shard entries carry over as-is.
	for _, bt := range completed {
		doneIDs[bt.ID] = true
		fmt.Fprint(stdout, tableOf(bt).Format())
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", bt.ID, bt.Seconds)
		record.Experiments = append(record.Experiments, bt)
	}
	for _, e := range partials {
		doneIDs[e.ID] = true
	}

	writeCkpt := func(current *shardEntry) {
		snap := checkpointFile{
			Schema: 1, Seed: *seed, Samples: *samples, Quick: *quick, Shard: spec,
			Completed: completed, Partials: partials, Current: current,
		}
		blob, err := json.Marshal(snap)
		if err == nil {
			err = atomicWrite(ckPath, blob)
		}
		if err != nil {
			fmt.Fprintf(stderr, "checkpoint %s: %v\n", ckPath, err)
		}
	}

	delivered := 0
	runSplit := func(id string) int {
		p := experiments.NewPartial()
		var preSecs float64
		if resumed && ck.Current != nil && ck.Current.ID == id {
			restored, err := decodePartial(*ck.Current)
			if err != nil {
				fmt.Fprintf(stderr, "resume: %v\n", err)
				return 1
			}
			p = restored
			preSecs = ck.Current.Seconds
		}
		if meter != nil {
			meter.reset(id)
		}
		o := opt
		o.Shard = spec
		start := time.Now()
		if ckActive || *dieAfter > 0 {
			ticks := 0
			o.Checkpoint = func() {
				ticks++
				delivered++
				if ckActive && ticks%*ckptEvery == 0 {
					entry, err := encodePartial(id, p, preSecs+time.Since(start).Seconds())
					if err != nil {
						fmt.Fprintln(stderr, err)
						return
					}
					writeCkpt(&entry)
				}
				if *dieAfter > 0 && delivered >= *dieAfter {
					// Simulated preemption: die hard, exactly like a kill
					// -9 — only periodic snapshots survive, which is what
					// -resume must recover from.
					os.Exit(7)
				}
			}
		}
		if err := experiments.Accumulate(id, o, p); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		secs := preSecs + time.Since(start).Seconds()
		var results int64
		if meter != nil {
			results = meter.count
			meter.clear()
		}
		if shardMode {
			entry, err := encodePartial(id, p, secs)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			partials = append(partials, entry)
			fmt.Fprintf(stderr, "%s: shard %d/%d accumulated in %.1fs\n", id, spec.Index, spec.Count, secs)
		} else {
			table, err := experiments.RenderPartial(id, opt, p)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			fmt.Fprint(stdout, table.Format())
			fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", id, secs)
			bt := benchTable{
				ID: table.ID, Title: table.Title, Paper: table.Paper,
				Header: table.Header, Rows: table.Rows, Notes: table.Notes,
				Seconds: secs, Results: results,
			}
			completed = append(completed, bt)
			record.Experiments = append(record.Experiments, bt)
		}
		if ckActive {
			writeCkpt(nil)
		}
		return 0
	}

	runWhole := func(id string) int {
		fn := reg[id]
		if meter != nil {
			meter.reset(id)
		}
		start := time.Now()
		table := fn(opt)
		secs := time.Since(start).Seconds()
		var results int64
		if meter != nil {
			results = meter.count
			meter.clear()
		}
		fmt.Fprint(stdout, table.Format())
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", id, secs)
		bt := benchTable{
			ID: table.ID, Title: table.Title, Paper: table.Paper,
			Header: table.Header, Rows: table.Rows, Notes: table.Notes,
			Seconds: secs, Results: results,
		}
		completed = append(completed, bt)
		record.Experiments = append(record.Experiments, bt)
		if ckActive {
			writeCkpt(nil)
		}
		return 0
	}

	for _, id := range ids {
		if doneIDs[id] {
			continue
		}
		var code int
		if shardMode || experiments.CanShard(id) {
			code = runSplit(id)
		} else {
			// Live-pipeline experiments have no mergeable state; they run
			// whole (and restart from scratch if a resume interrupted one).
			code = runWhole(id)
		}
		if code != 0 {
			return code
		}
	}

	if *out != "" {
		var blob []byte
		var err error
		if shardMode {
			blob, err = json.MarshalIndent(shardFile{
				Schema: 1, Seed: *seed, Samples: *samples, Quick: *quick,
				Shard: spec, Experiments: partials,
			}, "", "  ")
		} else {
			blob, err = json.MarshalIndent(record, "", "  ")
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := atomicWrite(*out, append(blob, '\n')); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if ckActive {
		os.Remove(ckPath) // run finished; a later -resume should start fresh
	}
	if *baseline != "" {
		ok, err := compareBaseline(stdout, record, *baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if !ok {
			fmt.Fprintln(stderr, "benchmark gate failed: regression vs baseline (>25% and >0.25s over speed-normalized expectation) or baseline experiment missing from run")
			return 1
		}
	}
	return 0
}
