// Command uwbench regenerates the paper's tables and figures and prints
// them as text tables with the paper's reported shape alongside.
//
// Usage:
//
//	uwbench [-experiment all|fig06a|fig06b|...|headline] [-samples N] [-seed S] [-quick] [-workers W]
//	        [-progress] [-out bench.json] [-baseline BENCH_baseline.json]
//
// Monte-Carlo trials fan out across -workers goroutines (default
// GOMAXPROCS) on the internal/engine trial runner; per-trial seeding makes
// the output byte-identical for every worker count. Trial results stream
// into online aggregators (internal/stats) as they complete, so result
// memory stays bounded at any -samples value; -progress taps the same
// stream for a live trials/sec + running-median line on stderr.
//
// -out writes a structured JSON record of every table plus wall-clock
// timings (the CI benchmark artifact); -baseline compares those timings
// against a previous -out file and exits non-zero on >25% regressions.
//
// Experiment IDs match the figure/table numbering of the paper (see
// DESIGN.md §4 for the index).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"uwpos/internal/experiments"
	"uwpos/internal/stats"
)

type runner func(experiments.Options) *stats.Table

func registry() map[string]runner {
	return map[string]runner{
		"fig06a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06a(o); return t },
		"fig06b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06b(o); return t },
		"fig06c": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06c(o); return t },
		"fig06d": func(o experiments.Options) *stats.Table { _, t := experiments.Fig06d(o); return t },
		"fig11a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11a(o); return t },
		"fig11b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig11b(o); return t },
		"fig12a": func(o experiments.Options) *stats.Table { _, _, t := experiments.Fig12a(o); return t },
		"fig12b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig12b(o); return t },
		"fig13a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13a(o); return t },
		"fig13b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig13b(o); return t },
		"fig14a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14a(o); return t },
		"fig14b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig14b(o); return t },
		"fig15":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig15(o); return t },
		"fig16":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig16(o); return t },
		"fig18":  func(o experiments.Options) *stats.Table { _, t := experiments.Fig18(o); return t },
		"fig19a": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19a(o); return t },
		"fig19b": func(o experiments.Options) *stats.Table { _, t := experiments.Fig19b(o); return t },
		"fig19b-4dev": func(o experiments.Options) *stats.Table {
			_, t := experiments.FourDevices(o)
			return t
		},
		"fig20": func(o experiments.Options) *stats.Table { _, t := experiments.Fig20(o); return t },
		"fig22": func(o experiments.Options) *stats.Table { _, t := experiments.Fig22(o); return t },
		"rtt":   func(o experiments.Options) *stats.Table { _, t := experiments.RTT(o); return t },
		"flipping": func(o experiments.Options) *stats.Table {
			_, _, t := experiments.Flipping(o)
			return t
		},
		"battery":   func(o experiments.Options) *stats.Table { return experiments.Battery(o) },
		"streaming": func(o experiments.Options) *stats.Table { return experiments.Streaming(o) },
		"ingest":    func(o experiments.Options) *stats.Table { return experiments.Ingest(o) },
		// "service" is a load test of the uwposd serving stack: its table
		// reports wall-clock latencies, so it stays out of the
		// deterministic "all" ordering and the baseline timing gate.
		"service":  func(o experiments.Options) *stats.Table { return experiments.Service(o) },
		"headline": experiments.Headline,
		"ablation-bandwindow": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationBandWindow(o)
			return t
		},
		"ablation-prefilter": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationPrefilter(o)
			return t
		},
		"ablation-restarts": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationRestarts(o)
			return t
		},
		"ablation-reportback": func(o experiments.Options) *stats.Table {
			_, t := experiments.AblationReportBack(o)
			return t
		},
	}
}

// order fixes a stable printing order mirroring the paper's flow.
var order = []string{
	"fig06a", "fig06b", "fig06c", "fig06d",
	"fig11a", "fig11b", "fig12a", "fig12b",
	"fig13a", "fig13b", "fig14a", "fig14b",
	"fig15", "fig16", "fig22",
	"fig18", "fig19a", "fig19b", "fig19b-4dev", "fig20",
	"rtt", "flipping", "battery", "streaming", "ingest",
	"ablation-bandwindow", "ablation-prefilter", "ablation-restarts", "ablation-reportback",
	"headline",
}

// progressMeter renders the live stderr line from Options.Progress
// callbacks: streamed result count, results/sec and the running median of
// the current experiment's headline scalar (a fixed-memory sketch, so the
// line stays O(1) however many trials stream past).
type progressMeter struct {
	id        string
	start     time.Time
	count     int64
	sk        *stats.Sketch
	lastPrint time.Time
	lineLen   int // width of the in-place line on screen (0 = clean)
}

func (p *progressMeter) reset(id string) {
	p.id = id
	p.start = time.Now()
	p.count = 0
	p.sk = stats.NewSketch()
	p.lastPrint = time.Time{} // new experiment: print immediately, not after a stale throttle
}

func (p *progressMeter) observe(v float64) {
	p.count++
	p.sk.Add(v)
	if time.Since(p.lastPrint) < 200*time.Millisecond {
		return
	}
	p.lastPrint = time.Now()
	rate := float64(p.count) / time.Since(p.start).Seconds()
	line := fmt.Sprintf("%s: %d results  %.1f/s  running median %.3f",
		p.id, p.count, rate, p.sk.Quantile(50))
	// Pad to the previous line's width so a shrinking line leaves no tail.
	pad := p.lineLen - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(os.Stderr, "\r%s%s", line, strings.Repeat(" ", pad))
	p.lineLen = len(line)
}

// clear wipes the in-place line so the finished table prints clean.
func (p *progressMeter) clear() {
	if p.lineLen > 0 {
		fmt.Fprintf(os.Stderr, "\r%s\r", strings.Repeat(" ", p.lineLen))
		p.lineLen = 0
	}
}

// benchTable is one experiment's record in the -out JSON file.
type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Paper   string     `json:"paper,omitempty"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
	Notes   string     `json:"notes,omitempty"`
	Seconds float64    `json:"seconds"`
	Results int64      `json:"results,omitempty"`
}

// benchFile is the -out / -baseline schema.
type benchFile struct {
	Schema      int          `json:"schema"`
	Seed        int64        `json:"seed"`
	Samples     int          `json:"samples"`
	Quick       bool         `json:"quick"`
	Workers     int          `json:"workers"`
	Experiments []benchTable `json:"experiments"`
}

// Baseline-comparison gates. A run fails only when an experiment is >25%
// slower than the baseline predicts AND at least a quarter second slower,
// so sub-second noise on shared CI runners does not flap the gate. The
// prediction is machine-speed normalized: the baseline was recorded on
// whatever box last regenerated it, so each experiment's expected time is
// base × (median cur/base ratio across experiments with ≥50 ms baselines).
// A uniformly slower runner shifts every ratio equally and trips nothing;
// a single experiment regressing stands out from the median and fails.
const (
	regressionFactor   = 1.25
	regressionFloorSec = 0.25
	calibrationFloor   = 0.05 // baselines below this are too noisy to calibrate on
)

// speedRatio estimates the current machine's speed relative to the
// baseline machine as the median per-experiment cur/base timing ratio.
// Falls back to 1 when nothing is measurable.
func speedRatio(cur benchFile, baseByID map[string]benchTable) float64 {
	var ratios []float64
	for _, e := range cur.Experiments {
		if b, found := baseByID[e.ID]; found && b.Seconds >= calibrationFloor && e.Seconds > 0 {
			ratios = append(ratios, e.Seconds/b.Seconds)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	return ratios[len(ratios)/2]
}

// compareBaseline reports timing regressions of cur vs a previous -out
// file. It returns false when any experiment regressed, or when an
// experiment present in the baseline was not run at all (a silently
// shrunken gate is itself a failure).
func compareBaseline(cur benchFile, baselinePath string) (bool, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return false, fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	// Timings are only comparable for the same workload: -quick and
	// -samples change trial counts non-uniformly per experiment, -seed
	// changes scenario draws, -workers changes parallel wall time. A
	// mismatch means the baseline needs regenerating, not a comparison.
	if cur.Quick != base.Quick || cur.Samples != base.Samples ||
		cur.Seed != base.Seed || cur.Workers != base.Workers {
		return false, fmt.Errorf(
			"baseline %s was recorded with quick=%v samples=%d seed=%d workers=%d; this run used quick=%v samples=%d seed=%d workers=%d — regenerate the baseline with matching flags",
			baselinePath, base.Quick, base.Samples, base.Seed, base.Workers,
			cur.Quick, cur.Samples, cur.Seed, cur.Workers)
	}
	baseByID := make(map[string]benchTable, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}
	scale := speedRatio(cur, baseByID)
	ok := true
	fmt.Printf("== benchmark comparison vs %s (machine speed ratio %.2fx) ==\n", baselinePath, scale)
	fmt.Printf("%-22s %10s %12s %10s %8s\n", "experiment", "base (s)", "expected (s)", "now (s)", "delta")
	covered := make(map[string]bool, len(cur.Experiments))
	for _, e := range cur.Experiments {
		covered[e.ID] = true
		b, found := baseByID[e.ID]
		if !found || b.Seconds <= 0 {
			fmt.Printf("%-22s %10s %12s %10.2f %8s\n", e.ID, "-", "-", e.Seconds, "new")
			continue
		}
		expected := b.Seconds * scale
		delta := (e.Seconds - expected) / expected * 100
		mark := ""
		if e.Seconds > expected*regressionFactor && e.Seconds-expected > regressionFloorSec {
			mark = "  REGRESSION"
			ok = false
		}
		fmt.Printf("%-22s %10.2f %12.2f %10.2f %+7.1f%%%s\n", e.ID, b.Seconds, expected, e.Seconds, delta, mark)
	}
	for _, b := range base.Experiments {
		if !covered[b.ID] {
			fmt.Printf("%-22s %10.2f %12s %10s %8s  MISSING FROM RUN\n", b.ID, b.Seconds, "-", "-", "")
			ok = false
		}
	}
	return ok, nil
}

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment id (or 'all', 'list')")
		samples  = flag.Int("samples", 0, "override per-point sample count (0 = defaults)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "divide heavy sample counts by 4")
		workers  = flag.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS); results are identical for any value")
		progress = flag.Bool("progress", false, "live stderr line: streamed results, results/sec, running median")
		out      = flag.String("out", "", "write tables + timings as JSON to this file (CI artifact)")
		baseline = flag.String("baseline", "", "compare timings against a previous -out file; exit 1 on >25% regression")
		profile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
		svcAddr  = flag.String("service-addr", "", "live uwposd address for -experiment service (empty = in-process server)")
	)
	flag.Parse()

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	reg := registry()
	if *exp == "list" {
		ids := make([]string, 0, len(reg))
		for id := range reg {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	opt := experiments.Options{Seed: *seed, Samples: *samples, Quick: *quick, Workers: *workers, ServiceAddr: *svcAddr}
	var meter *progressMeter
	if *progress {
		meter = &progressMeter{}
		opt.Progress = meter.observe
	}
	record := benchFile{Schema: 1, Seed: *seed, Samples: *samples, Quick: *quick, Workers: *workers}
	run := func(id string) {
		fn, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -experiment list)\n", id)
			os.Exit(2)
		}
		if meter != nil {
			meter.reset(id)
		}
		start := time.Now()
		table := fn(opt)
		secs := time.Since(start).Seconds()
		var results int64
		if meter != nil {
			results = meter.count
			meter.clear()
		}
		fmt.Print(table.Format())
		fmt.Printf("(%s in %.1fs)\n\n", id, secs)
		record.Experiments = append(record.Experiments, benchTable{
			ID: table.ID, Title: table.Title, Paper: table.Paper,
			Header: table.Header, Rows: table.Rows, Notes: table.Notes,
			Seconds: secs, Results: results,
		})
	}
	if *exp == "all" {
		for _, id := range order {
			run(id)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id))
		}
	}

	if *out != "" {
		blob, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		ok, err := compareBaseline(record, *baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "benchmark gate failed: regression vs baseline (>25% and >0.25s over speed-normalized expectation) or baseline experiment missing from run")
			os.Exit(1)
		}
	}
}
