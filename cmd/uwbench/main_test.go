package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// stripTimings removes the wall-clock suffix from "(id in 1.2s)" lines so
// outputs compare across runs, the same normalization the CI smoke uses.
var timingRe = regexp.MustCompile(` in [0-9.]+s\)`)

func stripTimings(s string) string { return timingRe.ReplaceAllString(s, ")") }

// TestProfileWrittenOnFailurePath: the CPU profile must be flushed and the
// file closed even when the run fails. The old main called os.Exit from
// inside the function that owned the deferred StopCPUProfile, so every
// error path (and every successful -out path) left a truncated, unreadable
// profile.
func TestProfileWrittenOnFailurePath(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-cpuprofile", prof, "-experiment", "no-such-experiment"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	// A flushed pprof profile is a gzip stream; a skipped StopCPUProfile
	// leaves an empty or headerless file.
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("profile is not a flushed gzip stream (%d bytes, header % x)", len(raw), raw[:min(2, len(raw))])
	}
}

func TestParseExperimentIDs(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr string
	}{
		{in: "fig06a", want: []string{"fig06a"}},
		{in: "fig06a,battery", want: []string{"fig06a", "battery"}},
		{in: "fig06a,,battery", want: []string{"fig06a", "battery"}}, // empty entry skipped
		{in: "fig06a,battery,", want: []string{"fig06a", "battery"}}, // trailing comma skipped
		{in: " fig06a , battery ", want: []string{"fig06a", "battery"}},
		{in: "fig06a,battery,fig06a", wantErr: "more than once"},
		{in: ",,,", wantErr: "names no experiments"},
		{in: "", wantErr: "names no experiments"},
	}
	for _, c := range cases {
		got, err := parseExperimentIDs(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parseExperimentIDs(%q) err = %v, want substring %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseExperimentIDs(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseExperimentIDs(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if ids, err := parseExperimentIDs("all"); err != nil || len(ids) != len(order) {
		t.Errorf(`parseExperimentIDs("all") = %d ids, %v; want the full order (%d)`, len(ids), err, len(order))
	}
}

func TestParseShard(t *testing.T) {
	spec, err := parseShard("2/4")
	if err != nil || spec.Index != 2 || spec.Count != 4 {
		t.Errorf("parseShard(2/4) = %+v, %v", spec, err)
	}
	for _, bad := range []string{"", "3", "a/4", "1/b", "4/4", "-1/4", "0/0"} {
		if _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-experiment", "fig06a,bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown experiment "bogus"`) {
		t.Errorf("stderr = %q, want unknown-experiment message", stderr.String())
	}
}

// TestShardMergeMatchesFullRun drives the real CLI surface in-process:
// two shards at different worker counts, emitted to disk, merged — the
// merged tables must be byte-identical to the single-process run.
func TestShardMergeMatchesFullRun(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-experiment", "fig06a,fig13b", "-seed", "5", "-samples", "8"}

	var full, mergeOut, stderr bytes.Buffer
	if code := run(append([]string{"-workers", "1"}, base...), &full, &stderr); code != 0 {
		t.Fatalf("full run: exit %d, stderr: %s", code, stderr.String())
	}

	paths := make([]string, 2)
	for s := 0; s < 2; s++ {
		paths[s] = filepath.Join(dir, "shard_"+string(rune('0'+s))+".json")
		args := append([]string{"-workers", string(rune('0' + s*3 + 1)), "-shard", string(rune('0'+s)) + "/2", "-out", paths[s]}, base...)
		var out bytes.Buffer
		stderr.Reset()
		if code := run(args, &out, &stderr); code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", s, code, stderr.String())
		}
		if out.Len() != 0 {
			t.Errorf("shard %d wrote tables to stdout: %q", s, out.String())
		}
	}

	recordPath := filepath.Join(dir, "merged.json")
	stderr.Reset()
	if code := run([]string{"-merge", strings.Join(paths, ","), "-out", recordPath}, &mergeOut, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got, want := stripTimings(mergeOut.String()), stripTimings(full.String()); got != want {
		t.Errorf("merged output differs from full run\n got: %s\nwant: %s", got, want)
	}

	raw, err := os.ReadFile(recordPath)
	if err != nil {
		t.Fatalf("merge -out: %v", err)
	}
	var record benchFile
	if err := json.Unmarshal(raw, &record); err != nil {
		t.Fatalf("merge -out parse: %v", err)
	}
	if len(record.Experiments) != 2 || record.Experiments[0].ID != "fig06a" || record.Seed != 5 {
		t.Errorf("merge record unexpected: seed=%d ids=%v", record.Seed, record.Experiments)
	}
}

// TestMergeRejectsMismatchedShards: shards from different sweeps (wrong
// seed, missing index, duplicate index) must be refused, not silently
// folded into a wrong table.
func TestMergeRejectsMismatchedShards(t *testing.T) {
	dir := t.TempDir()
	emit := func(name string, seed string, spec string) string {
		path := filepath.Join(dir, name)
		var out, stderr bytes.Buffer
		args := []string{"-experiment", "fig13b", "-seed", seed, "-samples", "4", "-shard", spec, "-out", path}
		if code := run(args, &out, &stderr); code != 0 {
			t.Fatalf("emit %s: exit %d, stderr: %s", name, code, stderr.String())
		}
		return path
	}
	s0 := emit("s0.json", "5", "0/2")
	s1 := emit("s1.json", "5", "1/2")
	s1badSeed := emit("s1_seed.json", "6", "1/2")

	cases := []struct{ name, files, wantErr string }{
		{"seed mismatch", s0 + "," + s1badSeed, "workload flags"},
		{"missing shard", s0, "2 but 1 files"},
		{"duplicate index", s0 + "," + s0, "exactly once"},
		{"ok", s0 + "," + s1, ""},
	}
	for _, c := range cases {
		var out, stderr bytes.Buffer
		code := run([]string{"-merge", c.files}, &out, &stderr)
		if c.wantErr == "" {
			if code != 0 {
				t.Errorf("%s: exit %d, stderr: %s", c.name, code, stderr.String())
			}
			continue
		}
		if code == 0 || !strings.Contains(stderr.String(), c.wantErr) {
			t.Errorf("%s: exit %d, stderr %q; want failure mentioning %q", c.name, code, stderr.String(), c.wantErr)
		}
	}
}

// TestResumeRejectsMismatchedCheckpoint: a checkpoint recorded under
// different workload flags must not be silently replayed.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	blob, _ := json.Marshal(checkpointFile{Schema: 1, Seed: 99, Samples: 8})
	if err := os.WriteFile(ckpt, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, stderr bytes.Buffer
	code := run([]string{"-experiment", "fig13b", "-seed", "5", "-samples", "8", "-checkpoint", ckpt, "-resume"}, &out, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "flags differ") {
		t.Errorf("exit %d, stderr %q; want 2 with flag-mismatch message", code, stderr.String())
	}
	// A missing checkpoint is not an error: -resume is an idempotent
	// relaunch wrapper, the first launch simply starts from scratch.
	out.Reset()
	stderr.Reset()
	code = run([]string{"-experiment", "fig13b", "-seed", "5", "-samples", "4", "-checkpoint", filepath.Join(dir, "absent.ckpt"), "-resume"}, &out, &stderr)
	if code != 0 {
		t.Errorf("fresh -resume run: exit %d, stderr: %s", code, stderr.String())
	}
}

// TestCheckpointedRunMatchesPlainRun: enabling checkpointing must not
// change the printed tables, and a completed run must clear its
// checkpoint so a later -resume starts fresh.
func TestCheckpointedRunMatchesPlainRun(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	base := []string{"-experiment", "fig06a,battery", "-seed", "7", "-samples", "8"}

	var plain, ckRun, stderr bytes.Buffer
	if code := run(base, &plain, &stderr); code != 0 {
		t.Fatalf("plain: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run(append([]string{"-checkpoint", ckpt, "-checkpoint-every", "8"}, base...), &ckRun, &stderr); code != 0 {
		t.Fatalf("checkpointed: exit %d, stderr: %s", code, stderr.String())
	}
	if got, want := stripTimings(ckRun.String()), stripTimings(plain.String()); got != want {
		t.Errorf("checkpointed run output differs from plain run\n got: %s\nwant: %s", got, want)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s survived a successful run (err=%v)", ckpt, err)
	}
}
