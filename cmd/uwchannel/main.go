// Command uwchannel inspects the simulated underwater channel: eigenray
// tables, delay spread and band SNR between two points in an environment —
// the quickest way to understand why a deployment behaves as it does.
//
// Usage:
//
//	uwchannel [-env dock] [-range 20] [-depth-tx 2.5] [-depth-rx 2.5] [-order 3]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"uwpos/internal/channel"
	"uwpos/internal/geom"
)

func main() {
	var (
		envName = flag.String("env", "dock", "environment preset")
		rangeM  = flag.Float64("range", 20, "horizontal range (m)")
		depthTx = flag.Float64("depth-tx", 2.5, "transmitter depth (m)")
		depthRx = flag.Float64("depth-rx", 2.5, "receiver depth (m)")
		order   = flag.Int("order", 3, "max reflections per boundary")
	)
	flag.Parse()

	env, err := channel.ByName(*envName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwchannel:", err)
		os.Exit(1)
	}
	tx := geom.Vec3{X: 0, Y: 0, Z: *depthTx}
	rx := geom.Vec3{X: *rangeM, Y: 0, Z: *depthRx}
	c := env.SoundSpeed((*depthTx + *depthRx) / 2)
	fmt.Printf("%s: depth %.1f m, c = %.1f m/s, ambient noise RMS %.4f\n",
		env.Name, env.BottomDepthM, c, env.AmbientNoiseRMS)
	fmt.Printf("link: %.1f m horizontal, depths %.1f → %.1f m\n\n", *rangeM, *depthTx, *depthRx)

	taps := env.ImpulseResponse(tx, rx, channel.ImpulseOptions{MaxOrder: *order})
	if len(taps) == 0 {
		fmt.Println("no eigenrays (all below the amplitude floor)")
		return
	}
	direct := taps[0].DelaySec
	fmt.Println("eigenrays (S = surface bounces, B = bottom bounces):")
	fmt.Println("  S B   delay(ms)  excess(ms)  excess(m)  rel.level(dB)")
	ref := math.Abs(taps[0].Amplitude)
	var spread float64
	for _, tap := range taps {
		level := 20 * math.Log10(math.Abs(tap.Amplitude)/ref)
		excess := tap.DelaySec - direct
		if math.Abs(tap.Amplitude) > 0.05*ref {
			spread = excess
		}
		fmt.Printf("  %d %d  %9.3f  %10.3f  %9.2f  %13.1f\n",
			tap.Surface, tap.Bottom, tap.DelaySec*1000, excess*1000, excess*c, level)
	}
	fmt.Printf("\nsignificant delay spread (taps within 26 dB of direct): %.1f ms (%.1f m)\n",
		spread*1000, spread*c)
	fmt.Printf("one 44.1 kHz sample = %.1f cm of range; the ranging symbol is %.1f ms\n",
		100*c/44100, 1920.0/44.1)
}
