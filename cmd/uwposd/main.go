// Command uwposd is the resident positioning service: a long-running
// daemon that hosts concurrent ranging/localization sessions over an
// HTTP+JSON API. Each session wraps one simulated dive-group deployment;
// rounds within a session are serialized, sessions run concurrently under
// a process-wide execution bound, and idle sessions are TTL-evicted.
//
// Usage:
//
//	uwposd [-listen :8089] [-max-sessions 8192] [-max-rounds N]
//	       [-session-ttl 10m] [-round-timeout 2m]
//
// API (see internal/service):
//
//	POST   /v1/sessions              {"env":"dock","divers":[{"x":0,"y":0,"z":2},...],"seed":5}
//	POST   /v1/sessions/{id}/rounds  {"timeout_ms":30000}
//	GET    /v1/sessions/{id}/track?at_sec=42
//	DELETE /v1/sessions/{id}
//	GET    /v1/healthz
//	GET    /v1/statz
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uwpos/internal/service"
)

func main() {
	var (
		listen       = flag.String("listen", ":8089", "listen address")
		maxSessions  = flag.Int("max-sessions", 0, "session registry cap (0 = default 8192)")
		maxRounds    = flag.Int("max-rounds", 0, "concurrent round executions (0 = GOMAXPROCS)")
		sessionTTL   = flag.Duration("session-ttl", 0, "idle session eviction (0 = default 10m, <0 = never)")
		roundTimeout = flag.Duration("round-timeout", 0, "default per-round deadline (0 = default 2m, <0 = none)")
	)
	flag.Parse()

	srv := service.NewServer(service.Config{
		MaxSessions:         *maxSessions,
		MaxConcurrentRounds: *maxRounds,
		SessionTTL:          *sessionTTL,
		RoundTimeout:        *roundTimeout,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("uwposd: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("uwposd: serving on %s", ln.Addr())
	fmt.Printf("listening on %s\n", ln.Addr()) // parseable by smoke scripts

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("uwposd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("uwposd: shutdown: %v", err)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("uwposd: %v", err)
		}
	}
}
