// Command uwposd is the resident positioning service: a long-running
// daemon that hosts concurrent ranging/localization sessions over an
// HTTP+JSON API. Each session wraps one simulated dive-group deployment;
// rounds within a session are serialized, sessions run concurrently under
// a process-wide execution bound, and idle sessions are TTL-evicted.
//
// Usage:
//
//	uwposd [-listen :8089] [-max-sessions 8192] [-max-rounds N]
//	       [-session-ttl 10m] [-round-timeout 2m] [-state-dir DIR]
//
// API (see internal/service):
//
//	POST   /v1/sessions              {"env":"dock","divers":[{"x":0,"y":0,"z":2},...],"seed":5}
//	POST   /v1/sessions/{id}/rounds  {"timeout_ms":30000}
//	GET    /v1/sessions/{id}/track?at_sec=42
//	DELETE /v1/sessions/{id}
//	GET    /v1/healthz
//	GET    /v1/statz
//
// With -state-dir the daemon is crash-safe: every committed round
// snapshots its session to the directory (atomic rename, checksummed),
// boot restores all decodable snapshots (quarantining corrupt ones),
// and a restored session replays byte-identical to the uninterrupted
// run. SIGINT/SIGTERM drain in-flight requests, then checkpoint every
// live session before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uwpos/internal/service"
)

func main() {
	var (
		listen       = flag.String("listen", ":8089", "listen address")
		maxSessions  = flag.Int("max-sessions", 0, "session registry cap (0 = default 8192)")
		maxRounds    = flag.Int("max-rounds", 0, "concurrent round executions (0 = GOMAXPROCS)")
		sessionTTL   = flag.Duration("session-ttl", 0, "idle session eviction (0 = default 10m, <0 = never)")
		roundTimeout = flag.Duration("round-timeout", 0, "default per-round deadline (0 = default 2m, <0 = none)")
		stateDir     = flag.String("state-dir", "", "session snapshot directory (empty = no durability)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on connection drain at shutdown")
	)
	flag.Parse()

	bootCtx, bootCancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	srv, err := service.NewServer(bootCtx, service.Config{
		MaxSessions:         *maxSessions,
		MaxConcurrentRounds: *maxRounds,
		SessionTTL:          *sessionTTL,
		RoundTimeout:        *roundTimeout,
		StateDir:            *stateDir,
	})
	bootCancel()
	if err != nil {
		log.Fatalf("uwposd: %v", err)
	}
	defer srv.Close()
	if *stateDir != "" {
		st := srv.Stats()
		log.Printf("uwposd: state dir %s: restored %d sessions, quarantined %d snapshots",
			*stateDir, st.Sessions.Restored, persistQuarantined(st))
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("uwposd: %v", err)
	}
	// Slow-client bounds: a stalled header, a dribbling body, or a parked
	// idle connection must not pin a goroutine forever. Write timeouts
	// stay off — round responses legitimately take up to RoundTimeout.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("uwposd: serving on %s", ln.Addr())
	fmt.Printf("listening on %s\n", ln.Addr()) // parseable by smoke scripts

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("uwposd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("uwposd: shutdown: %v", err)
		}
		// In-flight rounds are done (or abandoned at the drain bound):
		// make every session's last committed round durable.
		if saved, failed := srv.CheckpointAll(); saved+failed > 0 {
			log.Printf("uwposd: checkpointed %d sessions (%d failed)", saved, failed)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("uwposd: %v", err)
		}
	}
}

func persistQuarantined(st service.Statz) int64 {
	if st.Persistence == nil {
		return 0
	}
	return st.Persistence.Quarantined
}
