// Command uwrange benchmarks two-device acoustic ranging over a sweep of
// separations, printing per-distance error statistics and a CDF.
//
// Usage:
//
//	uwrange [-env dock] [-dists 10,20,35] [-trials 20] [-depth 2.5] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uwpos"
	"uwpos/internal/stats"
)

func main() {
	var (
		envName = flag.String("env", "dock", "environment preset")
		dists   = flag.String("dists", "10,20,35", "comma-separated separations in metres")
		trials  = flag.Int("trials", 20, "exchanges per distance")
		depthM  = flag.Float64("depth", 2.5, "device depth in metres")
		seed    = flag.Int64("seed", 1, "random seed")
		timeout = flag.Duration("timeout", 0, "per-exchange deadline (0 = none)")
	)
	flag.Parse()

	env, err := uwpos.EnvironmentByName(*envName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwrange:", err)
		os.Exit(1)
	}
	fmt.Printf("two-way dual-mic ranging, %s environment, depth %.1f m, %d trials/distance\n\n",
		env.Name, *depthM, *trials)
	fmt.Println("dist(m)  detected  median(m)  95th(m)  CDF(≤0.5m)  CDF(≤1.0m)")
	for _, ds := range strings.Split(*dists, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(ds), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uwrange:", err)
			os.Exit(1)
		}
		var errs []float64
		detected := 0
		for t := 0; t < *trials; t++ {
			ctx, cancel := context.Background(), func() {}
			if *timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, *timeout)
			}
			out, err := uwpos.RangeBetween(ctx, uwpos.RangeConfig{
				Env:         env,
				SeparationM: d,
				DepthAM:     *depthM,
				DepthBM:     *depthM,
				Seed:        *seed + int64(t)*887,
			})
			cancel()
			if err != nil {
				continue
			}
			detected++
			e := out.EstimatedM - out.TrueM
			if e < 0 {
				e = -e
			}
			errs = append(errs, e)
		}
		fmt.Printf("%7.1f  %4d/%-4d %9s  %7s  %10s  %10s\n",
			d, detected, *trials,
			stats.F(stats.Median(errs)), stats.F(stats.Percentile(errs, 95)),
			stats.F(stats.CDFAt(errs, 0.5)), stats.F(stats.CDFAt(errs, 1.0)))
	}
}
