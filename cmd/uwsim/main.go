// Command uwsim runs one simulated dive-group localization round and
// prints the estimated versus true positions.
//
// Usage:
//
//	uwsim [-env dock] [-n 5] [-seed 1] [-occlude 0-1] [-drop 2-4] [-move 2] [-pointing-err 5]
//
// The leader is device 0 and points at device 1. Device positions follow
// the paper's Fig. 17 testbed layout, truncated/extended to -n devices.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"uwpos"
)

var layout = []uwpos.Vec3{
	{X: 0, Y: 0, Z: 2.0},
	{X: 6, Y: 1.5, Z: 2.5},
	{X: 13, Y: -5, Z: 1.5},
	{X: 10, Y: 8, Z: 3.5},
	{X: 20, Y: 2, Z: 2.5},
	{X: 16, Y: -9, Z: 3.0},
	{X: 24, Y: 6, Z: 2.0},
	{X: 4, Y: -11, Z: 1.8},
}

func parsePair(s string) ([2]int, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 2 {
		return [2]int{}, fmt.Errorf("want A-B, got %q", s)
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return [2]int{}, err
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return [2]int{}, err
	}
	return [2]int{a, b}, nil
}

func main() {
	var (
		envName  = flag.String("env", "dock", "environment: pool, dock, viewpoint, boathouse")
		n        = flag.Int("n", 5, "number of divers (3-8)")
		seed     = flag.Int64("seed", 1, "random seed")
		occlude  = flag.String("occlude", "", "occluded link as A-B (direct path blocked)")
		drop     = flag.String("drop", "", "dropped link as A-B (no acoustic path)")
		move     = flag.Int("move", -1, "device id to set in motion (~0.3 m/s)")
		pointErr = flag.Float64("pointing-err", 0, "leader pointing error in degrees")
	)
	flag.Parse()

	env, err := uwpos.EnvironmentByName(*envName)
	if err != nil {
		fatal(err)
	}
	if *n < 3 || *n > len(layout) {
		fatal(fmt.Errorf("n must be 3..%d", len(layout)))
	}
	cfg := uwpos.SystemConfig{
		Env:              env,
		Seed:             *seed,
		PointingErrorRad: *pointErr * math.Pi / 180,
	}
	for i := 0; i < *n; i++ {
		d := uwpos.Diver{Pos: layout[i]}
		if d.Pos.Z > env.BottomDepthM-0.5 {
			d.Pos.Z = env.BottomDepthM - 0.5
		}
		if i == *move {
			d.Velocity = uwpos.Vec3{X: 0.2, Y: 0.2}
		}
		cfg.Divers = append(cfg.Divers, d)
	}
	if *occlude != "" {
		p, err := parsePair(*occlude)
		if err != nil {
			fatal(err)
		}
		cfg.OccludedLinks = append(cfg.OccludedLinks, p)
	}
	if *drop != "" {
		p, err := parsePair(*drop)
		if err != nil {
			fatal(err)
		}
		cfg.DroppedLinks = append(cfg.DroppedLinks, p)
	}

	sys, err := uwpos.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("running one localization round: %d divers, %s environment, seed %d\n",
		*n, env.Name, *seed)
	out, err := sys.Locate(context.Background())
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nprotocol latency: %.2f s\n", out.LatencySec)
	fmt.Printf("residual stress: %.2f m", out.Result.ResidualStress)
	if len(out.Result.DroppedLinks) > 0 {
		fmt.Printf(" (outlier links dropped: %v)", out.Result.DroppedLinks)
	}
	fmt.Println()

	fmt.Println("\ndevice   estimated (x, y, depth)        true (rel. leader)            err2D")
	for i, p := range out.Result.Positions {
		truth := cfg.Divers[i].Pos.Sub(cfg.Divers[0].Pos)
		truth.Z = cfg.Divers[i].Pos.Z
		tag := ""
		switch i {
		case 0:
			tag = " (leader)"
		case 1:
			tag = " (pointed)"
		}
		fmt.Printf("%4d%-10s (%6.2f, %6.2f, %5.2f)   (%6.2f, %6.2f, %5.2f)   %5.2f m\n",
			i, tag, p.Pos.X, p.Pos.Y, p.Pos.Z, truth.X, truth.Y, truth.Z, out.Err2D[i])
	}

	fmt.Println("\npairwise distances (estimated / true):")
	for i := 0; i < *n; i++ {
		for j := i + 1; j < *n; j++ {
			td := cfg.Divers[i].Pos.Dist(cfg.Divers[j].Pos)
			if out.Weights[i][j] > 0 {
				fmt.Printf("  %d-%d: %6.2f / %6.2f m\n", i, j, out.Distances[i][j], td)
			} else {
				fmt.Printf("  %d-%d:   lost / %6.2f m\n", i, j, td)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uwsim:", err)
	os.Exit(1)
}
