package uwpos

import (
	"errors"
	"fmt"
)

// The public API reports failures as typed errors so concurrent callers —
// in particular the uwposd session service — can branch on failure class
// with errors.Is/errors.As instead of matching message strings, and map
// each class to a transport-level outcome (HTTP status, degraded response,
// retry).
var (
	// ErrNotDetected reports that an acoustic exchange completed without a
	// detectable arrival — a soft, scenario-dependent failure (out of
	// range, severe multipath). Callers serving live sessions should treat
	// it as degraded conditions, not a fault.
	ErrNotDetected = errors.New("uwpos: exchange not detected")

	// ErrTooFewDivers reports a deployment below the three-device minimum
	// the topology solve needs (§2.1; with two devices only pairwise
	// ranging is defined — use RangeBetween).
	ErrTooFewDivers = errors.New("uwpos: need at least 3 divers")

	// ErrRoundOutOfOrder reports a tracker fix whose timestamp precedes an
	// already-consumed round.
	ErrRoundOutOfOrder = errors.New("uwpos: round out of order")

	// ErrDeviceIndexGap reports a localization result whose device indices
	// do not form the contiguous set 0..N-1 (a missing, duplicated or
	// out-of-range device entry).
	ErrDeviceIndexGap = errors.New("uwpos: device indices not contiguous")
)

// ConfigError reports an invalid configuration field. It is returned by
// constructors and entry points for caller mistakes (as opposed to
// scenario-dependent runtime failures), so services can map it to a 4xx
// response with the offending field named.
type ConfigError struct {
	// Field names the configuration field, e.g. "Env" or "Divers".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e ConfigError) Error() string {
	return fmt.Sprintf("uwpos: config %s: %s", e.Field, e.Reason)
}

// configErrf builds a ConfigError with a formatted reason.
func configErrf(field, format string, args ...any) error {
	return ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
