package uwpos

import (
	"context"
	"errors"
	"testing"
)

// The service layer branches on error class with errors.Is/As to pick HTTP
// status codes; these tests pin the public error contract it relies on.

func TestConfigErrorAs(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		field string
	}{
		{"nil env system", func() error {
			_, err := NewSystem(SystemConfig{})
			return err
		}(), "Env"},
		{"nil env range", func() error {
			_, err := RangeBetween(context.Background(), RangeConfig{SeparationM: 10})
			return err
		}(), "Env"},
		{"non-positive separation", func() error {
			_, err := RangeBetween(context.Background(), RangeConfig{Env: Dock()})
			return err
		}(), "SeparationM"},
		{"empty tracker round", NewGroupTracker(TrackerConfig{}).AddRound(0, nil), "Result"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("expected error")
			}
			var ce ConfigError
			if !errors.As(tc.err, &ce) {
				t.Fatalf("not a ConfigError: %v", tc.err)
			}
			if ce.Field != tc.field {
				t.Errorf("field %q, want %q (%v)", ce.Field, tc.field, tc.err)
			}
		})
	}
}

func TestErrTooFewDivers(t *testing.T) {
	_, err := NewSystem(SystemConfig{Env: Dock(), Divers: []Diver{{}, {}}})
	if !errors.Is(err, ErrTooFewDivers) {
		t.Errorf("want ErrTooFewDivers, got %v", err)
	}
}

func TestErrNotDetected(t *testing.T) {
	// 500 m in a shallow dock is far beyond acoustic reach: both the new
	// and the deprecated entry points must report the sentinel.
	_, err := RangeBetween(context.Background(), RangeConfig{Env: Dock(), SeparationM: 500, Seed: 3})
	if !errors.Is(err, ErrNotDetected) {
		t.Errorf("RangeBetween: want ErrNotDetected, got %v", err)
	}
	_, _, err = RangeBetweenPositional(Dock(), 500, 2.5, 2.5, 3)
	if !errors.Is(err, ErrNotDetected) {
		t.Errorf("RangeBetweenPositional: want ErrNotDetected, got %v", err)
	}
}

func TestRangeBetweenCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RangeBetween(ctx, RangeConfig{Env: Dock(), SeparationM: 10, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func trackerRound(devices ...int) *Result {
	res := &Result{}
	for _, d := range devices {
		res.Positions = append(res.Positions, Position{Device: d, Pos: Vec3{X: float64(d)}})
	}
	return res
}

func TestAddRoundOutOfOrder(t *testing.T) {
	g := NewGroupTracker(TrackerConfig{})
	if err := g.AddRound(10, trackerRound(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	err := g.AddRound(5, trackerRound(0, 1, 2))
	if !errors.Is(err, ErrRoundOutOfOrder) {
		t.Fatalf("want ErrRoundOutOfOrder, got %v", err)
	}
	// The bad round must not have advanced the clock: t=10 is still legal.
	if err := g.AddRound(10, trackerRound(0, 1, 2)); err != nil {
		t.Errorf("equal timestamp after rejected round: %v", err)
	}
}

func TestAddRoundDeviceIndexGap(t *testing.T) {
	cases := []struct {
		name string
		res  *Result
	}{
		{"out of range", trackerRound(0, 1, 3)},
		{"duplicate", trackerRound(0, 1, 1)},
		{"negative", trackerRound(-1, 0, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGroupTracker(TrackerConfig{})
			err := g.AddRound(0, tc.res)
			if !errors.Is(err, ErrDeviceIndexGap) {
				t.Fatalf("want ErrDeviceIndexGap, got %v", err)
			}
			// A rejected first round leaves the tracker unseeded: any
			// timestamp (even negative) must still be accepted.
			if err := g.AddRound(-5, trackerRound(0, 1, 2)); err != nil {
				t.Errorf("tracker state mutated by rejected round: %v", err)
			}
		})
	}
}
