// Batch: run many simulated rounds concurrently with deterministic
// results — the same positions come back no matter how many workers run.
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"

	"uwpos"
)

func main() {
	cfg := uwpos.SystemConfig{
		Env: uwpos.Dock(),
		Divers: []uwpos.Diver{
			{Pos: uwpos.Vec3{X: 0, Y: 0, Z: 2.0}},   // leader
			{Pos: uwpos.Vec3{X: 6, Y: 1.5, Z: 2.5}}, // pointed buddy
			{Pos: uwpos.Vec3{X: 13, Y: -5, Z: 1.5}},
		},
		Seed: 42,
	}
	sys, err := uwpos.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Four independent round realizations of the same deployment, fanned
	// across the worker pool. Trial t derives its RNG from (Seed, t), so
	// this prints the same numbers at any worker count.
	outs, err := sys.LocateN(context.Background(), 4, uwpos.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outs {
		if o.Err != nil {
			fmt.Printf("round %d: %v\n", o.Trial, o.Err)
			continue
		}
		fmt.Printf("round %d: latency %.2f s, diver 2 at (%.2f, %.2f, %.2f)\n",
			o.Trial, o.Outcome.LatencySec,
			o.Outcome.Result.Positions[2].Pos.X,
			o.Outcome.Result.Positions[2].Pos.Y,
			o.Outcome.Result.Positions[2].Pos.Z)
	}

	// Mixed scenarios in one call: different sites, one bad config.
	pool := cfg
	pool.Env = uwpos.Pool()
	for i := range pool.Divers {
		pool.Divers[i].Pos.Z = 1.0 // the pool is only 2.5 m deep
	}
	bad := uwpos.SystemConfig{Env: uwpos.Dock()} // too few divers
	mixed, err := uwpos.Batch(context.Background(), []uwpos.SystemConfig{cfg, pool, bad}, uwpos.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range mixed {
		if o.Err != nil {
			fmt.Printf("scenario %d: error: %v\n", o.Trial, o.Err)
			continue
		}
		fmt.Printf("scenario %d: diver 1 2D err %.2f m\n", o.Trial, o.Outcome.Err2D[1])
	}
}
