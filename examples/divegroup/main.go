// Divegroup: the scenarios the paper's intro motivates — silt-out
// conditions where a diver is occluded and another is out of range.
// Demonstrates outlier detection (Algorithm 1) and missing-link topology.
//
//	go run ./examples/divegroup
package main

import (
	"context"
	"fmt"
	"log"

	"uwpos"
)

func main() {
	divers := []uwpos.Diver{
		{Pos: uwpos.Vec3{X: 0, Y: 0, Z: 1.5}},   // leader / instructor
		{Pos: uwpos.Vec3{X: 6, Y: 1.5, Z: 1.5}}, // visible buddy
		{Pos: uwpos.Vec3{X: 13, Y: -5, Z: 1.5}},
		{Pos: uwpos.Vec3{X: 10, Y: 8, Z: 3.5}},
		{Pos: uwpos.Vec3{X: 20, Y: 2, Z: 2.5}},
	}

	fmt.Println("--- clean baseline round ---")
	run(uwpos.SystemConfig{Env: uwpos.Dock(), Divers: divers, Seed: 7})

	fmt.Println("\n--- a silt cloud occludes the leader↔buddy direct path ---")
	fmt.Println("(severe multipath inflates that link; Algorithm 1 must drop it)")
	run(uwpos.SystemConfig{
		Env: uwpos.Dock(), Divers: divers, Seed: 7,
		OccludedLinks: [][2]int{{0, 1}},
	})

	fmt.Println("\n--- diver 2 and diver 4 cannot hear each other at all ---")
	fmt.Println("(the topology solve works with the missing link)")
	run(uwpos.SystemConfig{
		Env: uwpos.Dock(), Divers: divers, Seed: 7,
		DroppedLinks: [][2]int{{2, 4}},
	})
}

func run(cfg uwpos.SystemConfig) {
	sys, err := uwpos.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Locate(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, e := range out.Err2D {
		if e > worst {
			worst = e
		}
	}
	fmt.Printf("residual stress %.2f m, worst 2D error %.2f m\n",
		out.Result.ResidualStress, worst)
	if len(out.Result.DroppedLinks) > 0 {
		fmt.Printf("outlier links dropped by Algorithm 1: %v\n", out.Result.DroppedLinks)
	}
	for _, p := range out.Result.Positions {
		fmt.Printf("  diver %d at (%.1f, %.1f, %.1f), err %.2f m\n",
			p.Device, p.Pos.X, p.Pos.Y, p.Pos.Z, out.Err2D[p.Device])
	}
}
