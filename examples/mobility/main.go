// Mobility: track a swimming diver across repeated localization rounds —
// the §3.2 mobility study as an application loop.
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"

	"uwpos"
)

func main() {
	// Diver 2 swims at ~0.3 m/s; everyone else holds position. Each
	// Locate() is an independent user-initiated round, as the paper
	// recommends (no continuous acoustic tracking, §5).
	base := []uwpos.Diver{
		{Pos: uwpos.Vec3{X: 0, Y: 0, Z: 2.0}},
		{Pos: uwpos.Vec3{X: 6, Y: 1.5, Z: 2.5}},
		{Pos: uwpos.Vec3{X: 12, Y: -4, Z: 1.5}},
		{Pos: uwpos.Vec3{X: 10, Y: 8, Z: 3.5}},
		{Pos: uwpos.Vec3{X: 20, Y: 2, Z: 2.5}},
	}
	tracker := uwpos.NewGroupTracker(uwpos.TrackerConfig{})
	fmt.Println("round  diver2 true x(m)  raw fix x(m)  tracked x(m)  vel est(m/s)  2D err(m)")
	for round := 0; round < 5; round++ {
		divers := make([]uwpos.Diver, len(base))
		copy(divers, base)
		// The swimmer has progressed ~2.4 m per round (8 s of swimming
		// between user-initiated rounds), and keeps moving mid-round.
		divers[2].Pos.X = base[2].Pos.X + 2.4*float64(round)
		divers[2].Velocity = uwpos.Vec3{X: 0.3}
		sys, err := uwpos.NewSystem(uwpos.SystemConfig{
			Env: uwpos.Dock(), Divers: divers, Seed: int64(1000 + round),
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := sys.Locate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		tRound := 8.0 * float64(round)
		if err := tracker.AddRound(tRound, out.Result); err != nil {
			log.Fatal(err)
		}
		est := out.Result.Positions[2].Pos
		smoothed := tracker.PositionsAt(tRound)[2]
		fmt.Printf("%5d  %16.2f  %12.2f  %12.2f  %12.2f  %8.2f\n",
			round, divers[2].Pos.X, est.X, smoothed.X,
			tracker.VelocityOf(2).Norm(), out.Err2D[2])
	}
	fmt.Println("\nthe tracker (a §5 future-work extension) fuses rounds into a")
	fmt.Println("position+velocity track without continuous acoustic transmission.")
}
