// Protocol: what the distributed timestamp protocol does on the wire —
// including a device that cannot hear the leader and synchronizes off a
// peer's slot (§2.3).
//
//	go run ./examples/protocol
package main

import (
	"context"
	"fmt"
	"log"

	"uwpos"
)

func main() {
	divers := []uwpos.Diver{
		{Pos: uwpos.Vec3{X: 0, Y: 0, Z: 2.0}},   // 0: leader
		{Pos: uwpos.Vec3{X: 6, Y: 1.5, Z: 2.5}}, // 1: pointed
		{Pos: uwpos.Vec3{X: 13, Y: -5, Z: 1.5}}, // 2
		{Pos: uwpos.Vec3{X: 10, Y: 8, Z: 3.5}},  // 3
		{Pos: uwpos.Vec3{X: 20, Y: 2, Z: 2.5}},  // 4: will lose the leader link
	}

	fmt.Println("=== all devices hear the leader ===")
	show(uwpos.SystemConfig{Env: uwpos.Dock(), Divers: divers, Seed: 3})

	fmt.Println("\n=== device 4 cannot hear the leader (out of range) ===")
	fmt.Println("it synchronizes off the first peer slot it hears; the leader")
	fmt.Println("recovers the 0-4 distance through one-way + helper arithmetic")
	show(uwpos.SystemConfig{
		Env: uwpos.Dock(), Divers: divers, Seed: 3,
		DroppedLinks: [][2]int{{0, 4}},
	})
}

func show(cfg uwpos.SystemConfig) {
	sys, err := uwpos.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Locate(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	n := len(cfg.Divers)
	fmt.Printf("protocol latency: %.2f s (paper: Δ0 + (N−1)·Δ1 = %.2f s for N=%d)\n",
		out.LatencySec, 0.6+float64(n-1)*0.32, n)
	fmt.Println("resolved pairwise distances (m):")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			truth := cfg.Divers[i].Pos.Dist(cfg.Divers[j].Pos)
			if out.Weights[i][j] > 0 {
				fmt.Printf("  %d-%d: %6.2f (true %6.2f)\n", i, j, out.Distances[i][j], truth)
			} else {
				fmt.Printf("  %d-%d:   lost (true %6.2f)\n", i, j, truth)
			}
		}
	}
}
