// Quickstart: localize a five-diver group in a lake with one call.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"uwpos"
)

func main() {
	// The leader (device 0) points at the nearest diver (device 1); the
	// rest can be anywhere in acoustic range, even out of sight.
	sys, err := uwpos.NewSystem(uwpos.SystemConfig{
		Env: uwpos.Dock(),
		Divers: []uwpos.Diver{
			{Pos: uwpos.Vec3{X: 0, Y: 0, Z: 2.0}},   // leader
			{Pos: uwpos.Vec3{X: 6, Y: 1.5, Z: 2.5}}, // pointed buddy
			{Pos: uwpos.Vec3{X: 13, Y: -5, Z: 1.5}},
			{Pos: uwpos.Vec3{X: 10, Y: 8, Z: 3.5}},
			{Pos: uwpos.Vec3{X: 20, Y: 2, Z: 2.5}},
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One round: acoustic protocol, ranging, report-back, localization.
	out, err := sys.Locate(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol round took %.2f s\n", out.LatencySec)
	for _, p := range out.Result.Positions {
		fmt.Printf("diver %d: x=%6.2f m  y=%6.2f m  depth=%5.2f m  (2D err %.2f m)\n",
			p.Device, p.Pos.X, p.Pos.Y, p.Pos.Z, out.Err2D[p.Device])
	}
}
