// Ranging: pairwise acoustic distance measurement at increasing
// separations — the primitive everything else builds on (§2.2).
//
//	go run ./examples/ranging
package main

import (
	"context"
	"fmt"
	"math"

	"uwpos"
)

func main() {
	env := uwpos.Dock()
	fmt.Printf("two-way dual-microphone ranging in the %s environment\n\n", env.Name)
	fmt.Println("true(m)   estimated(m)   error(m)")
	for _, d := range []float64{5, 10, 15, 20, 30, 40} {
		var errs []float64
		var lastEst, lastTrue float64
		for trial := int64(0); trial < 5; trial++ {
			// The context-aware entry point: a dive-computer app would put
			// a deadline here; the batch example accepts the default.
			out, err := uwpos.RangeBetween(context.Background(), uwpos.RangeConfig{
				Env: env, SeparationM: d, DepthAM: 2.5, DepthBM: 2.5, Seed: 100 + trial*31,
			})
			if err != nil {
				continue
			}
			errs = append(errs, math.Abs(out.EstimatedM-out.TrueM))
			lastEst, lastTrue = out.EstimatedM, out.TrueM
		}
		if len(errs) == 0 {
			fmt.Printf("%7.1f   (no detection)\n", d)
			continue
		}
		var mean float64
		for _, e := range errs {
			mean += e
		}
		mean /= float64(len(errs))
		fmt.Printf("%7.1f   %12.2f   %8.2f   (mean of %d trials; last %.2f/%.2f)\n",
			d, lastEst, mean, len(errs), lastEst, lastTrue)
	}
	fmt.Println("\nsound travels ~1480 m/s here; one 44.1 kHz sample ≈ 3.4 cm of range.")
}
