// Serve: the positioning service end to end in one process — start the
// session API on a loopback port, drive a session through it with plain
// HTTP (create → rounds → track → delete), and shut down. This is exactly
// what `uwposd` serves; here the client and server share a process so the
// example terminates on its own.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"uwpos/internal/service"
)

func main() {
	srv, err := service.NewServer(context.Background(), service.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("service up at %s\n\n", ts.URL)

	// Create a 4-diver session at the dock site.
	spec := map[string]any{
		"env": "dock",
		"divers": []map[string]any{
			{"x": 0, "y": 0, "z": 2},
			{"x": 7, "y": 1, "z": 2.5},
			{"x": 13, "y": -5, "z": 1.5},
			{"x": 10, "y": 8, "z": 3.5},
		},
		"seed": 11,
	}
	var created struct {
		ID      string `json:"id"`
		Devices int    `json:"devices"`
	}
	post(ts.URL+"/v1/sessions", spec, &created)
	fmt.Printf("session %s: %d devices\n", created.ID, created.Devices)

	// Run three rounds; the session clock advances 10 s per round.
	for i := 0; i < 3; i++ {
		var round struct {
			Round     int     `json:"round"`
			AtSec     float64 `json:"at_sec"`
			Degraded  bool    `json:"degraded"`
			StressM   float64 `json:"residual_stress_m"`
			ElapsedMS float64 `json:"elapsed_ms"`
		}
		post(ts.URL+"/v1/sessions/"+created.ID+"/rounds", map[string]any{}, &round)
		fmt.Printf("round %d at t=%gs: stress %.2f m, degraded=%v, %.0f ms\n",
			round.Round, round.AtSec, round.StressM, round.Degraded, round.ElapsedMS)
	}

	// Extrapolate the track 5 s past the last fix.
	var track struct {
		AtSec     float64 `json:"at_sec"`
		Rounds    int     `json:"rounds"`
		Positions []struct {
			Device      int     `json:"device"`
			X           float64 `json:"x"`
			Y           float64 `json:"y"`
			Z           float64 `json:"z"`
			ConfidenceM float64 `json:"confidence_m"`
		} `json:"positions"`
	}
	get(ts.URL+"/v1/sessions/"+created.ID+"/track?at_sec=25", &track)
	fmt.Printf("\ntrack at t=%gs after %d rounds:\n", track.AtSec, track.Rounds)
	for _, p := range track.Positions {
		fmt.Printf("  diver %d: (%6.2f, %6.2f) depth %.1f m  ±%.2f m\n",
			p.Device, p.X, p.Y, p.Z, p.ConfidenceM)
	}

	// Tear down and show the service counters.
	del(ts.URL + "/v1/sessions/" + created.ID)
	var statz struct {
		Rounds struct {
			Total    int64 `json:"total"`
			Degraded int64 `json:"degraded"`
			Failed   int64 `json:"failed"`
		} `json:"rounds"`
		LatencyMS map[string]struct {
			P50 float64 `json:"p50"`
			P99 float64 `json:"p99"`
		} `json:"latency_ms"`
	}
	get(ts.URL+"/v1/statz", &statz)
	fmt.Printf("\nstatz: %d rounds (%d degraded, %d failed), round p50 %.0f ms p99 %.0f ms\n",
		statz.Rounds.Total, statz.Rounds.Degraded, statz.Rounds.Failed,
		statz.LatencyMS["round_e2e"].P50, statz.LatencyMS["round_e2e"].P99)
}

func post(url string, body, out any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func del(url string) {
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}
