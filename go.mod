module uwpos

go 1.24
