// Package audio models the low-level audio path of a smart device: a
// speaker output stream and one microphone input stream per mic, each
// driven by its own converter clock with an unknown stream-start time and a
// ppm-scale sampling-rate error.
//
// This reproduces the paper's appendix ("Low-level audio timing", Fig. 21):
// the OS fills both buffers independently, so a device never knows the wall
// time of a buffer index — it can only (a) measure the speaker↔mic index
// offset once with a self-calibration signal and (b) schedule replies by
// pure index arithmetic, n₂ = m₂ + (n₁ − m₁) + fs·t_reply.
//
// The simulation layer is the only code that knows absolute time; devices
// must work exclusively through index arithmetic, exactly like the Android
// implementation works through OpenSL ES buffer callbacks.
package audio

import (
	"fmt"
	"iter"
	"math"

	"uwpos/internal/dsp"
)

// Config describes one device's audio clocks.
type Config struct {
	SampleRate   float64 // nominal fs shared by both converters (44.1 kHz)
	SpeakerSkew  float64 // α: true speaker rate is fs/(1−α); |α| ≪ 1
	MicSkew      float64 // β: true microphone rate is fs/(1−β)
	SpeakerStart float64 // absolute time of speaker-stream sample 0 (sim-only knowledge)
	MicStart     float64 // absolute time of microphone-stream sample 0 (sim-only knowledge)
	NumMics      int     // microphone count (2 for phones, 3 for the watch)
	Duration     float64 // seconds of stream to allocate
}

// Stack is the audio-path state of one device.
type Stack struct {
	cfg     Config
	speaker []float64   // speaker output stream (device-writable)
	mics    [][]float64 // microphone input streams (channel-writable)

	calibrated  bool
	indexOffset int // Δn = n₁ − m₁ measured at self-calibration
}

// NewStack allocates the streams. Mic streams share one converter clock
// (they are channels of the same ADC) but have distinct spatial positions,
// which the device layer tracks.
//
// Stream buffers come zeroed from the shared internal/dsp scratch pool —
// they are by far the largest per-trial allocation (seconds of audio ×
// (1 + NumMics) streams × devices), so under the parallel trial engine a
// steady-state worker reuses the same slabs round after round. Call
// Release once the round's receiver processing is done to hand them back;
// a dropped stack merely costs a future allocation.
func NewStack(cfg Config) (*Stack, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("audio: sample rate %g must be positive", cfg.SampleRate)
	}
	if cfg.NumMics <= 0 {
		return nil, fmt.Errorf("audio: need at least one microphone")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("audio: duration %g must be positive", cfg.Duration)
	}
	if math.Abs(cfg.SpeakerSkew) > 0.01 || math.Abs(cfg.MicSkew) > 0.01 {
		return nil, fmt.Errorf("audio: clock skew beyond 1%% is not a ppm model")
	}
	n := int(cfg.Duration*cfg.SampleRate) + 1
	s := &Stack{
		cfg:     cfg,
		speaker: dsp.GetF64(n),
		mics:    make([][]float64, cfg.NumMics),
	}
	for i := range s.mics {
		s.mics[i] = dsp.GetF64(n)
	}
	return s, nil
}

// Release returns the stream buffers to the shared scratch pool. The
// stack must not be used afterwards (stream accessors return nil and
// StreamLen reports 0). Safe to call more than once.
func (s *Stack) Release() {
	if s.speaker == nil {
		return
	}
	dsp.PutF64(s.speaker)
	s.speaker = nil
	for i, m := range s.mics {
		dsp.PutF64(m)
		s.mics[i] = nil
	}
}

// SampleRate returns the nominal sample rate.
func (s *Stack) SampleRate() float64 { return s.cfg.SampleRate }

// NumMics returns the microphone count.
func (s *Stack) NumMics() int { return len(s.mics) }

// StreamLen returns the allocated stream length in samples.
func (s *Stack) StreamLen() int { return len(s.speaker) }

// SpeakerRate returns the true speaker converter rate fs/(1−α).
func (s *Stack) SpeakerRate() float64 { return s.cfg.SampleRate / (1 - s.cfg.SpeakerSkew) }

// MicRate returns the true microphone converter rate fs/(1−β).
func (s *Stack) MicRate() float64 { return s.cfg.SampleRate / (1 - s.cfg.MicSkew) }

// SpeakerIndexToTime maps a speaker-stream index to absolute time.
// Simulation-side only: devices never call this.
func (s *Stack) SpeakerIndexToTime(n float64) float64 {
	return s.cfg.SpeakerStart + n/s.SpeakerRate()
}

// TimeToSpeakerIndex is the inverse of SpeakerIndexToTime.
func (s *Stack) TimeToSpeakerIndex(t float64) float64 {
	return (t - s.cfg.SpeakerStart) * s.SpeakerRate()
}

// MicIndexToTime maps a microphone-stream index to absolute time.
// Simulation-side only.
func (s *Stack) MicIndexToTime(m float64) float64 {
	return s.cfg.MicStart + m/s.MicRate()
}

// TimeToMicIndex is the inverse of MicIndexToTime.
func (s *Stack) TimeToMicIndex(t float64) float64 {
	return (t - s.cfg.MicStart) * s.MicRate()
}

// WriteSpeaker writes wave into the speaker stream starting at index n,
// clipping to the allocated range. This is the "write audio samples to a
// future speaker buffer" primitive of the OpenSL ES layer. It returns the
// number of samples written.
func (s *Stack) WriteSpeaker(n int, wave []float64) int {
	if n < 0 {
		wave = wave[min(-n, len(wave)):]
		n = 0
	}
	written := 0
	for i, v := range wave {
		idx := n + i
		if idx >= len(s.speaker) {
			break
		}
		s.speaker[idx] += v
		written++
	}
	return written
}

// Speaker returns the full speaker stream (simulation-side: the channel
// reads this to propagate sound into the water).
func (s *Stack) Speaker() []float64 { return s.speaker }

// Mic returns the i-th microphone stream. The channel adds arrivals into
// it; the device's receiver pipeline reads it.
func (s *Stack) Mic(i int) []float64 { return s.mics[i] }

// MicChunks iterates over mic i's stream in successive chunk-sample
// sub-slices (the last may be shorter) — the shape in which the OS
// actually delivers audio to the receiver (OpenSL ES buffer callbacks),
// and the natural feed for the streaming detection pipeline. The yielded
// slices alias the live stream; treat them as read-only. A released
// stack or non-positive chunk yields nothing.
func (s *Stack) MicChunks(i, chunk int) iter.Seq[[]float64] {
	return s.MicChunksRange(i, 0, s.StreamLen(), chunk)
}

// MicChunksRange is MicChunks restricted to the half-open sample window
// [from, to) — the shape in which the receiver replays a bounded stretch
// of the stream into an ingest pipeline (the calibration window, or the
// post-transmission tail a baseline scans). Bounds are clipped to the
// stream; an empty or inverted window yields nothing.
func (s *Stack) MicChunksRange(i, from, to, chunk int) iter.Seq[[]float64] {
	return func(yield func([]float64) bool) {
		if chunk <= 0 {
			return
		}
		stream := s.Mic(i)
		if to > len(stream) {
			to = len(stream)
		}
		if from < 0 {
			from = 0
		}
		for off := from; off < to; off += chunk {
			end := off + chunk
			if end > to {
				end = to
			}
			if !yield(stream[off:end]) {
				return
			}
		}
	}
}

// Calibrate stores the measured speaker↔mic index offset Δn = n₁ − m₁,
// where the device wrote its calibration signal at speaker index n₁ and
// detected it at microphone index m₁. After calibration the device can
// schedule precisely timed replies.
func (s *Stack) Calibrate(n1, m1 int) {
	s.indexOffset = n1 - m1
	s.calibrated = true
}

// Calibrated reports whether Calibrate has been called.
func (s *Stack) Calibrated() bool { return s.calibrated }

// IndexOffset returns the calibrated Δn (0 before calibration).
func (s *Stack) IndexOffset() int { return s.indexOffset }

// ReplyIndex computes the speaker index n₂ at which to write a reply so
// that it leaves the device t_reply seconds after the triggering signal
// arrived at mic index m₂ (Eq. 4 of the paper):
//
//	n₂ = m₂ + Δn + fs·t_reply
//
// It panics if the stack has not been calibrated — replying blind is a
// protocol-breaking programmer error.
func (s *Stack) ReplyIndex(m2 int, tReply float64) int {
	if !s.calibrated {
		panic("audio: ReplyIndex before calibration")
	}
	return m2 + s.indexOffset + int(math.Round(s.cfg.SampleRate*tReply))
}

// ReplyTimingError returns the difference t_reply − t⁰_reply that the
// index arithmetic incurs from clock skew (Eq. 6 of the paper):
//
//	err = −α·t⁰ + (m₂ − m₁)(β − α)/fs
//
// Useful for analytical studies of protocol timing budgets.
func (s *Stack) ReplyTimingError(tReply0 float64, m2, m1 int) float64 {
	alpha, beta := s.cfg.SpeakerSkew, s.cfg.MicSkew
	return -alpha*tReply0 + float64(m2-m1)*(beta-alpha)/s.cfg.SampleRate
}
