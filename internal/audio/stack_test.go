package audio

import (
	"math"
	"testing"
	"testing/quick"
)

func defaultCfg() Config {
	return Config{
		SampleRate: 44100,
		NumMics:    2,
		Duration:   2,
	}
}

func TestNewStackValidation(t *testing.T) {
	bad := []Config{
		{},
		{SampleRate: 44100, NumMics: 0, Duration: 1},
		{SampleRate: 44100, NumMics: 2, Duration: 0},
		{SampleRate: 44100, NumMics: 2, Duration: 1, SpeakerSkew: 0.5},
		{SampleRate: 44100, NumMics: 2, Duration: 1, MicSkew: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewStack(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	s, err := NewStack(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumMics() != 2 {
		t.Errorf("NumMics = %d", s.NumMics())
	}
	if s.StreamLen() != 2*44100+1 {
		t.Errorf("StreamLen = %d", s.StreamLen())
	}
}

func TestClockRates(t *testing.T) {
	cfg := defaultCfg()
	cfg.SpeakerSkew = 50e-6 // 50 ppm fast... fs/(1-α) > fs
	cfg.MicSkew = -20e-6
	s, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.SpeakerRate() <= cfg.SampleRate {
		t.Error("positive α should raise the true speaker rate")
	}
	if s.MicRate() >= cfg.SampleRate {
		t.Error("negative β should lower the true mic rate")
	}
}

func TestIndexTimeRoundTrip(t *testing.T) {
	f := func(skewPPM int16, startMs uint16, idx uint16) bool {
		cfg := defaultCfg()
		cfg.SpeakerSkew = float64(skewPPM%200) * 1e-6
		cfg.MicSkew = float64(skewPPM%77) * 1e-6
		cfg.SpeakerStart = float64(startMs) / 1000
		cfg.MicStart = float64(startMs)/1000 + 0.013
		s, err := NewStack(cfg)
		if err != nil {
			return false
		}
		n := float64(idx)
		tn := s.SpeakerIndexToTime(n)
		if math.Abs(s.TimeToSpeakerIndex(tn)-n) > 1e-6 {
			return false
		}
		tm := s.MicIndexToTime(n)
		return math.Abs(s.TimeToMicIndex(tm)-n) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteSpeakerClipping(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	wave := []float64{1, 2, 3, 4}
	// Negative start clips the head.
	if n := s.WriteSpeaker(-2, wave); n != 2 {
		t.Errorf("wrote %d, want 2", n)
	}
	if s.Speaker()[0] != 3 || s.Speaker()[1] != 4 {
		t.Errorf("head clip wrong: %v", s.Speaker()[:3])
	}
	// Past-the-end clips the tail.
	last := s.StreamLen() - 2
	if n := s.WriteSpeaker(last, wave); n != 2 {
		t.Errorf("wrote %d at tail, want 2", n)
	}
	// Writes are additive (mixing).
	s.WriteSpeaker(0, []float64{10, 10})
	if s.Speaker()[0] != 13 {
		t.Errorf("additive write: got %g", s.Speaker()[0])
	}
}

func TestCalibrationAndReplyIndex(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	if s.Calibrated() {
		t.Error("fresh stack must be uncalibrated")
	}
	s.Calibrate(1000, 400) // Δn = 600
	if !s.Calibrated() || s.IndexOffset() != 600 {
		t.Fatalf("offset = %d", s.IndexOffset())
	}
	// Reply 100 ms after detection at mic index 5000:
	// n2 = 5000 + 600 + 4410 = 10010.
	if got := s.ReplyIndex(5000, 0.1); got != 10010 {
		t.Errorf("ReplyIndex = %d, want 10010", got)
	}
}

func TestReplyIndexPanicsUncalibrated(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ReplyIndex(100, 0.1)
}

func TestReplyTimingErrorEquation(t *testing.T) {
	cfg := defaultCfg()
	cfg.SpeakerSkew = 40e-6 // α
	cfg.MicSkew = 10e-6     // β
	s, _ := NewStack(cfg)
	// Eq. 6: err = −α·t⁰ + (m2−m1)(β−α)/fs.
	got := s.ReplyTimingError(0.5, 50000, 2000)
	want := -40e-6*0.5 + 48000*(10e-6-40e-6)/44100
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("timing error %g, want %g", got, want)
	}
	// Zero skew: no error.
	s2, _ := NewStack(defaultCfg())
	if e := s2.ReplyTimingError(1.0, 90000, 0); e != 0 {
		t.Errorf("zero-skew error %g", e)
	}
}

// TestEndToEndReplyTiming verifies the core self-synchronization claim: a
// device that calibrates Δn and schedules by index arithmetic achieves the
// desired reply interval in *absolute* time to within the Eq. 6 error, even
// though its two streams started at different unknown times and run at
// skewed rates.
func TestEndToEndReplyTiming(t *testing.T) {
	cfg := defaultCfg()
	cfg.SpeakerStart = 0.850 // OS opened streams at arbitrary offsets
	cfg.MicStart = 0.321
	cfg.SpeakerSkew = 30e-6
	cfg.MicSkew = -15e-6
	cfg.Duration = 5
	s, _ := NewStack(cfg)

	// Self-calibration: device writes the calibration signal at n1. It
	// reaches its own mic after delta2 (speaker→mic acoustic path, ~0).
	const n1 = 7000
	delta2 := 0.0001
	tPlay := s.SpeakerIndexToTime(float64(n1))
	m1 := int(math.Round(s.TimeToMicIndex(tPlay + delta2)))
	s.Calibrate(n1, m1)

	// A remote signal arrives at absolute time tArr -> mic index m2.
	tArr := 2.0
	m2 := int(math.Round(s.TimeToMicIndex(tArr)))

	// Device schedules a reply t_reply later by index arithmetic alone.
	const tReply = 0.320
	n2 := s.ReplyIndex(m2, tReply)

	// When does that reply actually reach its own mic? (t_reply is defined
	// mic-to-mic in the paper: arrival of remote signal to arrival of own.)
	tOut := s.SpeakerIndexToTime(float64(n2)) + delta2
	actual := tOut - tArr

	// Eq. 6 bound plus a sample of quantization slack.
	bound := math.Abs(s.ReplyTimingError(tReply, m2, m1)) + 2.5/cfg.SampleRate
	if math.Abs(actual-tReply) > bound {
		t.Errorf("reply interval %g, want %g ± %g", actual, tReply, bound)
	}
	// Sanity: with these skews the error is microseconds, not samples.
	if math.Abs(actual-tReply) > 0.001 {
		t.Errorf("reply interval error %g s implausibly large", math.Abs(actual-tReply))
	}
}

func TestMicStreamsIndependent(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	s.Mic(0)[100] = 1
	if s.Mic(1)[100] != 0 {
		t.Error("mic streams must be independent")
	}
}

// TestPooledStackReuseNoAliasing simulates consecutive trials on one
// worker: a released stack's buffers return to the pool and the next
// stack reuses them, but the new trial must observe fully zeroed streams —
// no samples bleeding across trials.
func TestPooledStackReuseNoAliasing(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		s, err := NewStack(defaultCfg())
		if err != nil {
			t.Fatal(err)
		}
		for _, stream := range [][]float64{s.Speaker(), s.Mic(0), s.Mic(1)} {
			for i, v := range stream {
				if v != 0 {
					t.Fatalf("trial %d: reused buffer dirty at %d (%g)", trial, i, v)
				}
			}
		}
		// Leave trial residue everywhere before handing buffers back.
		for _, stream := range [][]float64{s.Speaker(), s.Mic(0), s.Mic(1)} {
			for i := range stream {
				stream[i] = float64(trial + 1)
			}
		}
		s.Release()
	}
}

// TestConcurrentStacksShareNothing: two live stacks (concurrent trials on
// different workers) must never alias buffers even though both draw from
// the shared pool.
func TestConcurrentStacksShareNothing(t *testing.T) {
	a, _ := NewStack(defaultCfg())
	b, _ := NewStack(defaultCfg())
	a.Speaker()[7] = 42
	a.Mic(0)[7] = 43
	a.Mic(1)[7] = 44
	if b.Speaker()[7] != 0 || b.Mic(0)[7] != 0 || b.Mic(1)[7] != 0 {
		t.Error("live stacks alias pooled buffers")
	}
	a.Release()
	b.Release()
}

func TestReleaseIdempotentAndInert(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	s.Release()
	s.Release() // double release must be safe (and must not double-pool)
	if s.StreamLen() != 0 {
		t.Errorf("released stack StreamLen = %d", s.StreamLen())
	}
	if s.Speaker() != nil || s.Mic(0) != nil {
		t.Error("released stack should expose no streams")
	}
	// A double release must not have put the same buffer in the pool
	// twice: two fresh stacks must still be independent.
	a, _ := NewStack(defaultCfg())
	b, _ := NewStack(defaultCfg())
	a.Speaker()[3] = 9
	if b.Speaker()[3] != 0 {
		t.Error("double release caused buffer sharing")
	}
	a.Release()
	b.Release()
}

func TestMicChunksCoversStream(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	defer s.Release()
	mic := s.Mic(0)
	for i := range mic {
		mic[i] = float64(i)
	}
	for _, chunk := range []int{1, 7, 1024, len(mic), len(mic) + 5} {
		var got []float64
		n := 0
		for c := range s.MicChunks(0, chunk) {
			if len(c) > chunk {
				t.Fatalf("chunk %d: yielded %d samples", chunk, len(c))
			}
			got = append(got, c...)
			n++
		}
		if len(got) != len(mic) {
			t.Fatalf("chunk %d: reassembled %d samples, want %d", chunk, len(got), len(mic))
		}
		for i, v := range got {
			if v != mic[i] {
				t.Fatalf("chunk %d: sample %d = %g, want %g", chunk, i, v, mic[i])
			}
		}
		if want := (len(mic) + chunk - 1) / chunk; n != want {
			t.Fatalf("chunk %d: %d chunks, want %d", chunk, n, want)
		}
	}
	// Early break must stop cleanly; bad chunk sizes yield nothing.
	for c := range s.MicChunks(0, 4096) {
		_ = c
		break
	}
	for range s.MicChunks(0, 0) {
		t.Fatal("chunk 0 must yield nothing")
	}
	released, _ := NewStack(defaultCfg())
	released.Release()
	for range released.MicChunks(0, 1024) {
		t.Fatal("released stack must yield nothing")
	}
}

func TestMicChunksRangeWindow(t *testing.T) {
	s, _ := NewStack(defaultCfg())
	defer s.Release()
	mic := s.Mic(0)
	for i := range mic {
		mic[i] = float64(i)
	}
	reassemble := func(from, to, chunk int) []float64 {
		var got []float64
		for c := range s.MicChunksRange(0, from, to, chunk) {
			if len(c) > chunk {
				t.Fatalf("[%d,%d) chunk %d: yielded %d samples", from, to, chunk, len(c))
			}
			got = append(got, c...)
		}
		return got
	}
	cases := []struct{ from, to int }{
		{0, len(mic)},             // full stream: must equal MicChunks
		{1000, 5000},              // interior window
		{-50, 300},                // clipped start
		{len(mic) - 100, 1 << 30}, // clipped end
	}
	for _, tc := range cases {
		for _, chunk := range []int{1, 511, 4096, 1 << 30} {
			got := reassemble(tc.from, tc.to, chunk)
			from, to := tc.from, tc.to
			if from < 0 {
				from = 0
			}
			if to > len(mic) {
				to = len(mic)
			}
			if len(got) != to-from {
				t.Fatalf("[%d,%d) chunk %d: %d samples, want %d", tc.from, tc.to, chunk, len(got), to-from)
			}
			for i, v := range got {
				if v != mic[from+i] {
					t.Fatalf("[%d,%d) chunk %d: sample %d = %g, want %g", tc.from, tc.to, chunk, i, v, mic[from+i])
				}
			}
		}
	}
	// Degenerate windows and chunk sizes yield nothing.
	if got := reassemble(5000, 1000, 64); got != nil {
		t.Fatal("inverted window must yield nothing")
	}
	if got := reassemble(100, 200, 0); got != nil {
		t.Fatal("chunk 0 must yield nothing")
	}
	// Early break stops cleanly.
	for range s.MicChunksRange(0, 0, 10000, 128) {
		break
	}
}
