package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
)

func TestSoundSpeedWilson(t *testing.T) {
	// At T=0, S=35, D=0 Wilson's equation gives exactly 1449.
	if c := SoundSpeed(0, 35, 0); math.Abs(c-1449) > 1e-9 {
		t.Errorf("c(0,35,0) = %g, want 1449", c)
	}
	// Warmer water is faster.
	if SoundSpeed(20, 35, 0) <= SoundSpeed(5, 35, 0) {
		t.Error("sound speed should increase with temperature")
	}
	// Deeper water is faster.
	if SoundSpeed(10, 35, 100) <= SoundSpeed(10, 35, 0) {
		t.Error("sound speed should increase with depth")
	}
	// Saltier water is faster.
	if SoundSpeed(10, 35, 0) <= SoundSpeed(10, 5, 0) {
		t.Error("sound speed should increase with salinity")
	}
	// Typical fresh lake water ~15°C: around 1465-1475 m/s.
	c := SoundSpeed(15, 0.3, 2)
	if c < 1400 || c > 1500 {
		t.Errorf("lake sound speed %g outside plausible range", c)
	}
}

func TestThorpAbsorptionMonotoneInBand(t *testing.T) {
	prev := 0.0
	for f := 500.0; f <= 20000; f *= 2 {
		a := ThorpAbsorptionDBPerKm(f)
		if a <= prev {
			t.Errorf("absorption not increasing at %g Hz: %g <= %g", f, a, prev)
		}
		prev = a
	}
	// Band-centre value should be well under 1 dB/km.
	if a := ThorpAbsorptionDBPerKm(3000); a > 1 {
		t.Errorf("3 kHz absorption %g dB/km unexpectedly high", a)
	}
}

func TestEnvironmentPresets(t *testing.T) {
	for _, name := range Presets() {
		env, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := env.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if env.Name != name {
			t.Errorf("preset %q reports name %q", name, env.Name)
		}
	}
	if _, err := ByName("atlantis"); err == nil {
		t.Error("unknown environment should error")
	}
}

func TestEnvironmentValidateRejects(t *testing.T) {
	bad := []*Environment{
		{BottomDepthM: 0},
		{BottomDepthM: 5, SurfaceLoss: 1.5},
		{BottomDepthM: 5, BottomLoss: -0.1},
		{BottomDepthM: 5, AmbientNoiseRMS: -1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestImpulseResponseDirectFirst(t *testing.T) {
	env := Dock()
	tx := geom.Vec3{X: 0, Y: 0, Z: 2.5}
	rx := geom.Vec3{X: 20, Y: 0, Z: 2.5}
	taps := env.ImpulseResponse(tx, rx, ImpulseOptions{})
	if len(taps) == 0 {
		t.Fatal("no taps")
	}
	if !taps[0].IsDirect() {
		t.Fatalf("first tap is not direct: %+v", taps[0])
	}
	// Direct delay should match distance / c.
	c := env.SoundSpeed(2.5)
	want := 20.0 / c
	if math.Abs(taps[0].DelaySec-want) > 1e-9 {
		t.Errorf("direct delay %g, want %g", taps[0].DelaySec, want)
	}
	// Direct tap should be the strongest.
	for _, tap := range taps[1:] {
		if math.Abs(tap.Amplitude) >= math.Abs(taps[0].Amplitude) {
			t.Errorf("reflection %+v stronger than direct", tap)
		}
	}
	// Delays must be sorted.
	for i := 1; i < len(taps); i++ {
		if taps[i].DelaySec < taps[i-1].DelaySec {
			t.Fatal("taps not sorted by delay")
		}
	}
}

func TestImpulseResponseSurfaceFlipsSign(t *testing.T) {
	env := Dock()
	tx := geom.Vec3{X: 0, Y: 0, Z: 1}
	rx := geom.Vec3{X: 10, Y: 0, Z: 1}
	taps := env.ImpulseResponse(tx, rx, ImpulseOptions{MaxOrder: 1})
	foundSurface := false
	for _, tap := range taps {
		if tap.Surface == 1 && tap.Bottom == 0 {
			foundSurface = true
			if tap.Amplitude >= 0 {
				t.Errorf("single surface bounce should be negative, got %g", tap.Amplitude)
			}
			// Path length must exceed the direct path.
			if tap.DelaySec <= taps[0].DelaySec {
				t.Error("surface bounce arrived before direct")
			}
		}
	}
	if !foundSurface {
		t.Fatal("no surface-only tap found")
	}
}

func TestImpulseResponseOcclusion(t *testing.T) {
	env := Dock()
	tx := geom.Vec3{X: 0, Y: 0, Z: 1.5}
	rx := geom.Vec3{X: 15, Y: 0, Z: 1.5}
	clear := env.ImpulseResponse(tx, rx, ImpulseOptions{})
	occ := env.ImpulseResponse(tx, rx, ImpulseOptions{DirectAttenuated: 0.05})
	if math.Abs(occ[0].Amplitude) > math.Abs(clear[0].Amplitude)*0.06 {
		t.Error("occlusion did not attenuate the direct path")
	}
	// With a strong occlusion the direct tap should no longer dominate.
	var maxAmp float64
	for _, tap := range occ {
		if a := math.Abs(tap.Amplitude); a > maxAmp {
			maxAmp = a
		}
	}
	if maxAmp == math.Abs(occ[0].Amplitude) {
		t.Error("expected a reflection to dominate under occlusion")
	}
}

func TestImpulseResponseShallowWaterDenser(t *testing.T) {
	// Shallow environments produce more significant taps within the same
	// delay spread window (the paper's viewpoint site).
	deep := Dock()
	shallow := Viewpoint()
	tx := geom.Vec3{X: 0, Y: 0, Z: 0.7}
	rx := geom.Vec3{X: 15, Y: 0, Z: 0.7}
	dt := deep.ImpulseResponse(tx, geom.Vec3{X: 15, Y: 0, Z: 4}, ImpulseOptions{MaxOrder: 3})
	st := shallow.ImpulseResponse(tx, rx, ImpulseOptions{MaxOrder: 3})
	// Count taps within 10 ms of the direct arrival.
	count := func(taps []Tap) int {
		n := 0
		for _, tap := range taps {
			if tap.DelaySec-taps[0].DelaySec < 0.010 && math.Abs(tap.Amplitude) > 0.001 {
				n++
			}
		}
		return n
	}
	if count(st) <= count(dt) {
		t.Errorf("shallow water (%d taps) should be denser than deep (%d)", count(st), count(dt))
	}
}

func TestTapHelpers(t *testing.T) {
	tap := Tap{DelaySec: 0.01, Amplitude: 0.5}
	if !tap.IsDirect() {
		t.Error("no-bounce tap should be direct")
	}
	if got := tap.PathLen(1500); math.Abs(got-15) > 1e-12 {
		t.Errorf("PathLen = %g", got)
	}
	if (Tap{Surface: 1}).IsDirect() {
		t.Error("bounced tap cannot be direct")
	}
}

func TestRenderPlacesDelayedCopy(t *testing.T) {
	const fs = 44100.0
	wave := []float64{1, 2, 3}
	dst := make([]float64, 2000)
	delay := 500.0 / fs // exactly 500 samples
	Render(dst, wave, []Tap{{DelaySec: delay, Amplitude: 2}}, 100, fs)
	// Peak of first sample's kernel lands at 100+500.
	if math.Abs(dst[600]-2) > 0.05 {
		t.Errorf("dst[600] = %g, want ~2", dst[600])
	}
	if math.Abs(dst[601]-4) > 0.1 {
		t.Errorf("dst[601] = %g, want ~4", dst[601])
	}
	// Energy far away must be negligible.
	if math.Abs(dst[1500]) > 1e-9 {
		t.Error("energy leaked far from the tap")
	}
}

func TestRenderFractionalDelaySubSample(t *testing.T) {
	// Two renders 0.4 samples apart: the cross-correlation peak between
	// them, parabolically interpolated, must sit at ~0.4 samples.
	const fs = 44100.0
	rng := rand.New(rand.NewSource(4))
	raw := make([]float64, 512)
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	// Band-limit with a 9-sample moving average so the fractional-delay
	// kernel operates well inside its accurate band.
	wave := make([]float64, len(raw))
	for i := 4; i < len(raw)-4; i++ {
		var s float64
		for k := -4; k <= 4; k++ {
			s += raw[i+k]
		}
		wave[i] = s / 9
	}
	a := make([]float64, 1024)
	b := make([]float64, 1024)
	Render(a, wave, []Tap{{DelaySec: 300 / fs, Amplitude: 1}}, 0, fs)
	Render(b, wave, []Tap{{DelaySec: 300.4 / fs, Amplitude: 1}}, 0, fs)
	// Correlation of b against a at integer lags −2..2.
	corr := func(lag int) float64 {
		var s float64
		for i := 300; i < 900; i++ {
			if i+lag >= 0 && i+lag < len(b) {
				s += a[i] * b[i+lag]
			}
		}
		return s
	}
	rm, r0, rp := corr(1), corr(0), corr(-1) // b lags a, so peak near lag 0/-1
	// Parabolic vertex offset relative to lag 0 measured on the reversed
	// axis gives the sub-sample delay of b relative to a.
	den := rm - 2*r0 + rp
	if den == 0 {
		t.Fatal("flat correlation")
	}
	shift := -0.5 * (rm - rp) / den
	if math.Abs(shift-0.4) > 0.1 {
		t.Errorf("fractional shift %g, want 0.4", shift)
	}
}

func TestRenderFastMatchesRenderForIntegerDelays(t *testing.T) {
	const fs = 44100.0
	rng := rand.New(rand.NewSource(5))
	wave := make([]float64, 256)
	for i := range wave {
		wave[i] = rng.NormFloat64()
	}
	taps := []Tap{{DelaySec: 100 / fs, Amplitude: 0.7}, {DelaySec: 350 / fs, Amplitude: -0.3}}
	a := make([]float64, 2048)
	b := make([]float64, 2048)
	Render(a, wave, taps, 10, fs)
	RenderFast(b, wave, taps, 10, fs)
	// Compare energy and peak alignment (sinc kernel ripples slightly).
	var ea, eb float64
	for i := range a {
		ea += a[i] * a[i]
		eb += b[i] * b[i]
	}
	if math.Abs(ea-eb) > 0.02*eb {
		t.Errorf("energy mismatch %g vs %g", ea, eb)
	}
}

func TestAddNoiseStatistics(t *testing.T) {
	env := Boathouse()
	rng := rand.New(rand.NewSource(7))
	dst := make([]float64, 44100)
	env.AddNoise(dst, 44100, rng)
	var e float64
	for _, v := range dst {
		e += v * v
	}
	rms := math.Sqrt(e / float64(len(dst)))
	// RMS should be at least the ambient level (impulses only add).
	if rms < env.AmbientNoiseRMS*0.9 {
		t.Errorf("noise RMS %g below ambient %g", rms, env.AmbientNoiseRMS)
	}
	// Impulsive bursts should create outliers well above Gaussian range.
	var maxAbs float64
	for _, v := range dst {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs < 6*env.AmbientNoiseRMS {
		t.Errorf("no impulsive outliers: max %g vs ambient %g", maxAbs, env.AmbientNoiseRMS)
	}
}

func TestScatterAddsTail(t *testing.T) {
	env := Dock()
	tx := geom.Vec3{X: 0, Y: 0, Z: 2}
	rx := geom.Vec3{X: 10, Y: 0, Z: 3}
	base := env.ImpulseResponse(tx, rx, ImpulseOptions{MaxOrder: 2})
	rng := rand.New(rand.NewSource(9))
	withTail := env.WithScatter(base, rng)
	if len(withTail) <= len(base) {
		t.Errorf("scatter added no taps: %d vs %d", len(withTail), len(base))
	}
	for i := 1; i < len(withTail); i++ {
		if withTail[i].DelaySec < withTail[i-1].DelaySec {
			t.Fatal("scattered taps not sorted")
		}
	}
	// Direct tap must remain first and unmodified.
	if !withTail[0].IsDirect() || withTail[0].Amplitude != base[0].Amplitude {
		t.Error("scatter altered the direct tap")
	}
}

func TestDirectDelayProperty(t *testing.T) {
	env := Dock()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tx := geom.Vec3{X: rng.Float64() * 40, Y: rng.Float64() * 40, Z: rng.Float64() * 8}
		rx := geom.Vec3{X: rng.Float64() * 40, Y: rng.Float64() * 40, Z: rng.Float64() * 8}
		d := env.DirectDelay(tx, rx)
		// Distance recovered from delay must match geometry within float eps.
		c := env.SoundSpeed((tx.Z + rx.Z) / 2)
		return math.Abs(d*c-tx.Dist(rx)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoissonMeanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const lambda = 4.0
	var sum int
	const trials = 2000
	for i := 0; i < trials; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-lambda) > 0.2 {
		t.Errorf("poisson mean %g, want ~%g", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}
