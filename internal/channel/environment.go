package channel

import "fmt"

// Environment describes a water body and its acoustic character. The four
// presets correspond to the paper's evaluation sites (Fig. 10).
type Environment struct {
	Name string

	// Geometry.
	BottomDepthM float64 // water column depth (m); surface is z = 0
	ExtentM      float64 // usable horizontal extent (m), for placement checks

	// Water properties (Wilson's equation inputs).
	TempC       float64
	SalinityPPT float64

	// Boundary interaction per bounce.
	SurfaceLoss float64 // |reflection coefficient| at the surface (sign is −1)
	BottomLoss  float64 // reflection coefficient magnitude at the bottom

	// Noise character.
	AmbientNoiseRMS  float64 // Gaussian noise RMS relative to unit-amplitude TX at 1 m
	ImpulseRatePerS  float64 // Poisson rate of impulsive events (bubbles, snapping)
	ImpulseAmplitude float64 // peak amplitude of impulsive bursts

	// Scattering: fraction of bounce energy diffused into a dense tail.
	ScatterSpreadMs float64 // exponential delay-spread constant of the tail
	ScatterLevel    float64 // tail amplitude relative to its parent tap

	// SurfaceJitterMs is the 1σ random delay modulation per surface
	// bounce caused by waves (applied per transmission, shared across a
	// receiver's microphones). Outdoor sites have rougher surfaces.
	SurfaceJitterMs float64

	// FadeSigmaDBAt45m is the 1σ log-normal fade on the direct ray at a
	// 45 m range (refraction, shadowing by wave troughs, suspended
	// matter). It scales linearly with range — negligible at dive-buddy
	// distances, decisive at the 35–45 m edge where the paper's error
	// tail lives.
	FadeSigmaDBAt45m float64
}

// SoundSpeed returns the speed of sound for this environment at the given
// depth.
func (e *Environment) SoundSpeed(depthM float64) float64 {
	return SoundSpeed(e.TempC, e.SalinityPPT, depthM)
}

// Validate sanity-checks the environment.
func (e *Environment) Validate() error {
	switch {
	case e.BottomDepthM <= 0:
		return fmt.Errorf("channel: bottom depth %g must be positive", e.BottomDepthM)
	case e.SurfaceLoss < 0 || e.SurfaceLoss > 1:
		return fmt.Errorf("channel: surface loss %g out of [0,1]", e.SurfaceLoss)
	case e.BottomLoss < 0 || e.BottomLoss > 1:
		return fmt.Errorf("channel: bottom loss %g out of [0,1]", e.BottomLoss)
	case e.AmbientNoiseRMS < 0:
		return fmt.Errorf("channel: negative noise RMS")
	}
	return nil
}

// Pool returns the indoor swimming-pool environment: shallow (1–2.5 m),
// quiet, hard boundaries that reflect strongly.
func Pool() *Environment {
	return &Environment{
		Name:             "pool",
		BottomDepthM:     2.5,
		ExtentM:          23,
		TempC:            27,
		SalinityPPT:      0.5,
		SurfaceLoss:      0.95,
		BottomLoss:       0.85, // tiled bottom, highly reflective
		AmbientNoiseRMS:  0.0015,
		ImpulseRatePerS:  0.5,
		ImpulseAmplitude: 0.02,
		ScatterSpreadMs:  4,
		ScatterLevel:     0.25,
		SurfaceJitterMs:  0.05, // indoor pool: near-flat surface
		FadeSigmaDBAt45m: 0.5,
	}
}

// Dock returns the outdoor lake-dock environment: 9 m deep, ~50 m extent,
// moderate boat traffic and soft sediment bottom.
func Dock() *Environment {
	return &Environment{
		Name:             "dock",
		BottomDepthM:     9,
		ExtentM:          50,
		TempC:            15,
		SalinityPPT:      0.3,
		SurfaceLoss:      0.9,
		BottomLoss:       0.45, // mud/sediment absorbs
		AmbientNoiseRMS:  0.004,
		ImpulseRatePerS:  2,
		ImpulseAmplitude: 0.05,
		ScatterSpreadMs:  8,
		ScatterLevel:     0.35,
		SurfaceJitterMs:  0.30, // boat wakes and wind chop
		FadeSigmaDBAt45m: 6.0,
	}
}

// Viewpoint returns the park-waterfront environment: very shallow
// (1–1.5 m) so surface and bottom multipath arrive almost with the direct
// path.
func Viewpoint() *Environment {
	return &Environment{
		Name:             "viewpoint",
		BottomDepthM:     1.5,
		ExtentM:          40,
		TempC:            14,
		SalinityPPT:      0.3,
		SurfaceLoss:      0.9,
		BottomLoss:       0.6,
		AmbientNoiseRMS:  0.003,
		ImpulseRatePerS:  1.5,
		ImpulseAmplitude: 0.04,
		ScatterSpreadMs:  6,
		ScatterLevel:     0.4,
		SurfaceJitterMs:  0.25,
		FadeSigmaDBAt45m: 5.0,
	}
}

// Boathouse returns the busy fishing-dock environment: 5 m deep, people
// fishing and kayaking nearby — the noisiest site.
func Boathouse() *Environment {
	return &Environment{
		Name:             "boathouse",
		BottomDepthM:     5,
		ExtentM:          30,
		TempC:            16,
		SalinityPPT:      0.3,
		SurfaceLoss:      0.88,
		BottomLoss:       0.5,
		AmbientNoiseRMS:  0.006,
		ImpulseRatePerS:  4,
		ImpulseAmplitude: 0.08,
		ScatterSpreadMs:  8,
		ScatterLevel:     0.4,
		SurfaceJitterMs:  0.35, // the busiest surface: kayaks, casts
		FadeSigmaDBAt45m: 6.5,
	}
}

// ByName returns the preset environment with the given name, or an error.
func ByName(name string) (*Environment, error) {
	switch name {
	case "pool":
		return Pool(), nil
	case "dock":
		return Dock(), nil
	case "viewpoint":
		return Viewpoint(), nil
	case "boathouse":
		return Boathouse(), nil
	}
	return nil, fmt.Errorf("channel: unknown environment %q (want pool, dock, viewpoint or boathouse)", name)
}

// Presets lists all built-in environment names.
func Presets() []string { return []string{"pool", "dock", "viewpoint", "boathouse"} }
