package channel

import (
	"math"
	"math/rand"
	"sort"

	"uwpos/internal/dsp"
	"uwpos/internal/geom"
)

// Tap is one arrival of the channel impulse response.
type Tap struct {
	DelaySec  float64 // propagation delay in seconds
	Amplitude float64 // signed linear amplitude (surface bounces flip sign)
	Surface   int     // number of surface reflections on this eigenray
	Bottom    int     // number of bottom reflections on this eigenray
}

// PathLen returns the unfolded ray length in metres given the sound speed.
func (t Tap) PathLen(c float64) float64 { return t.DelaySec * c }

// IsDirect reports whether the tap is the line-of-sight arrival.
func (t Tap) IsDirect() bool { return t.Surface == 0 && t.Bottom == 0 }

// ImpulseOptions tunes impulse-response synthesis.
type ImpulseOptions struct {
	MaxOrder         int     // maximum reflection order per boundary (default 3)
	DirectAttenuated float64 // extra linear gain on the direct ray (1 = clear; <1 models occlusion)
	// OccludeShallow, when true, applies DirectAttenuated to every
	// eigenray that never touches the bottom (direct and surface-only
	// bounces): the paper's "thick solid sheet" hangs in the upper water
	// column, so only bottom-interacting paths sneak underneath — which
	// is precisely what turns an occlusion into a +several-metre distance
	// outlier rather than a mere SNR loss (§3.2, Fig. 19a).
	OccludeShallow bool
	RefAmplitude   float64 // amplitude of the direct ray at 1 m (default 1)
}

func (o *ImpulseOptions) defaults() {
	if o.MaxOrder <= 0 {
		o.MaxOrder = 3
	}
	if o.DirectAttenuated == 0 {
		o.DirectAttenuated = 1
	}
	if o.RefAmplitude == 0 {
		o.RefAmplitude = 1
	}
}

// ImpulseResponse constructs the eigenray tap set between tx and rx using
// the method of images for an isovelocity waveguide bounded by the water
// surface (pressure-release, reflection coefficient −SurfaceLoss) and the
// bottom (coefficient +BottomLoss). For each image order m ≥ 0 the four
// classical vertical unfoldings are
//
//	d₁ = 2hm + (z_r − z_s)        m surface + m bottom bounces
//	d₂ = 2hm + (z_r + z_s)        m+? — surface-first family
//	d₃ = 2h(m+1) − (z_r + z_s)    bottom-first family
//	d₄ = 2h(m+1) − (z_r − z_s)    closing the order
//
// Amplitudes follow 1/L spherical spreading with Thorp absorption at the
// band centre, times the per-bounce boundary coefficients.
func (e *Environment) ImpulseResponse(tx, rx geom.Vec3, opts ImpulseOptions) []Tap {
	opts.defaults()
	h := e.BottomDepthM
	r := tx.HorizontalDist(rx)
	zs, zr := clamp(tx.Z, 0, h), clamp(rx.Z, 0, h)
	cMid := e.SoundSpeed((zs + zr) / 2)
	absDBPerM := ThorpAbsorptionDBPerKm(3000) / 1000

	var taps []Tap
	add := func(dz float64, surf, bot int) {
		l := math.Hypot(r, dz)
		if l < 0.1 {
			l = 0.1 // avoid the singularity for co-located devices
		}
		amp := opts.RefAmplitude / l
		amp *= math.Pow(10, -absDBPerM*l/20)
		amp *= math.Pow(e.SurfaceLoss, float64(surf)) * math.Pow(e.BottomLoss, float64(bot))
		if surf%2 == 1 {
			amp = -amp // pressure-release surface flips polarity
		}
		if surf == 0 && bot == 0 {
			amp *= opts.DirectAttenuated
		} else if opts.OccludeShallow && bot == 0 {
			amp *= opts.DirectAttenuated // sheet also blocks surface-only rays
		}
		if math.Abs(amp) < 1e-6 {
			return
		}
		taps = append(taps, Tap{DelaySec: l / cMid, Amplitude: amp, Surface: surf, Bottom: bot})
	}

	for m := 0; m <= opts.MaxOrder; m++ {
		hm := 2 * h * float64(m)
		add(hm+(zr-zs), m, m)
		add(hm+(zr+zs), m+1, m)
		add(2*h*float64(m+1)-(zr+zs), m, m+1)
		add(2*h*float64(m+1)-(zr-zs), m+1, m+1)
	}
	sort.Slice(taps, func(i, j int) bool { return taps[i].DelaySec < taps[j].DelaySec })
	return taps
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DirectDelay returns the line-of-sight propagation delay in seconds.
func (e *Environment) DirectDelay(tx, rx geom.Vec3) float64 {
	c := e.SoundSpeed((tx.Z + rx.Z) / 2)
	return tx.Dist(rx) / c
}

// scatterTaps appends a diffuse exponential tail after each boundary tap,
// modelling rough-surface scattering and suspended-particle reverberation.
// The tail density and level come from the environment.
func (e *Environment) scatterTaps(taps []Tap, rng *rand.Rand) []Tap {
	if e.ScatterLevel <= 0 || e.ScatterSpreadMs <= 0 || rng == nil {
		return taps
	}
	spread := e.ScatterSpreadMs / 1000
	out := taps
	for _, t := range taps {
		if t.IsDirect() {
			continue
		}
		// A handful of diffuse arrivals per specular bounce.
		n := 2 + rng.Intn(3)
		for k := 0; k < n; k++ {
			extra := rng.ExpFloat64() * spread
			amp := t.Amplitude * e.ScatterLevel * math.Exp(-extra/spread) * (0.5 + rng.Float64())
			out = append(out, Tap{
				DelaySec:  t.DelaySec + extra,
				Amplitude: amp,
				Surface:   t.Surface,
				Bottom:    t.Bottom,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DelaySec < out[j].DelaySec })
	return out
}

// Render adds the waveform wave, transmitted at sample index txStart of the
// destination timeline, into dst through the given taps at sample rate fs.
// Fractional tap delays are realized with a 33-tap windowed-sinc kernel, so
// sub-sample timing (needed by the 16 cm dual-mic geometry, ~4.7 samples
// apart at most) is preserved. Samples beyond len(dst) are dropped.
func Render(dst, wave []float64, taps []Tap, txStart int, fs float64) {
	const kernelTaps = 33
	half := kernelTaps / 2
	for _, tap := range taps {
		delay := tap.DelaySec * fs
		whole := int(math.Floor(delay))
		frac := delay - float64(whole)
		kern := dsp.FractionalDelayTaps(frac, kernelTaps)
		base := txStart + whole - half
		for i, v := range wave {
			if v == 0 {
				continue
			}
			sv := v * tap.Amplitude
			for k, kv := range kern {
				idx := base + i + k
				if idx < 0 || idx >= len(dst) {
					continue
				}
				dst[idx] += sv * kv
			}
		}
	}
}

// RenderFast is Render with nearest-sample tap placement; ~30× faster and
// adequate when sub-sample timing is irrelevant (e.g. noise-floor studies).
func RenderFast(dst, wave []float64, taps []Tap, txStart int, fs float64) {
	for _, tap := range taps {
		shift := txStart + int(math.Round(tap.DelaySec*fs))
		for i, v := range wave {
			idx := shift + i
			if idx < 0 || idx >= len(dst) {
				continue
			}
			dst[idx] += v * tap.Amplitude
		}
	}
}

// AddNoise fills dst with the environment's ambient Gaussian noise plus
// Poisson-arriving impulsive bursts (bubbles, snapping shrimp, paddle
// strikes). The impulses are short decaying 2–4 kHz oscillations — exactly
// the "spiky noise" that defeats plain cross-correlation detection (§2.2.1).
func (e *Environment) AddNoise(dst []float64, fs float64, rng *rand.Rand) {
	for i := range dst {
		dst[i] += e.AmbientNoiseRMS * rng.NormFloat64()
	}
	if e.ImpulseRatePerS <= 0 || e.ImpulseAmplitude <= 0 {
		return
	}
	dur := float64(len(dst)) / fs
	n := poisson(rng, e.ImpulseRatePerS*dur)
	for k := 0; k < n; k++ {
		at := rng.Intn(len(dst))
		f := 2000 + 2000*rng.Float64()
		amp := e.ImpulseAmplitude * (0.5 + rng.Float64())
		decay := fs * (0.5e-3 + 2e-3*rng.Float64()) // 0.5–2.5 ms bursts
		for i := 0; i < int(4*decay); i++ {
			idx := at + i
			if idx >= len(dst) {
				break
			}
			t := float64(i)
			dst[idx] += amp * math.Exp(-t/decay) * math.Sin(2*math.Pi*f*t/fs)
		}
	}
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method is fine for the small rates involved.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// WithScatter returns the impulse response with the environment's diffuse
// scattering tail appended (deterministic given rng).
func (e *Environment) WithScatter(taps []Tap, rng *rand.Rand) []Tap {
	return e.scatterTaps(taps, rng)
}

// SurfaceJitter is a per-transmission draw of wave-induced delay and gain
// modulation, keyed by eigenray family (surface, bottom bounce counts).
// Drawing once per transmission/receiver and applying it to every
// microphone keeps the dual-mic geometry coherent, as the real 16 cm
// baseline would be under a common wave field.
type SurfaceJitter map[[2]int]jitterDraw

type jitterDraw struct {
	delaySec float64
	gain     float64
}

// DrawSurfaceJitter samples the channel's random state for one
// transmission over a link of the given range: wave-induced delay/gain
// modulation per surface family, plus a log-normal fade on the direct ray
// whose σ grows linearly with range (refraction and shadowing — the
// paper's long tail at 35–45 m).
func (e *Environment) DrawSurfaceJitter(rng *rand.Rand, maxOrder int, rangeM float64) SurfaceJitter {
	if rng == nil || (e.SurfaceJitterMs <= 0 && e.FadeSigmaDBAt45m <= 0) {
		return nil
	}
	sigma := e.SurfaceJitterMs / 1000
	out := make(SurfaceJitter)
	for s := 0; s <= maxOrder+1; s++ {
		for b := 0; b <= maxOrder+1; b++ {
			if s == 0 {
				continue // waves only touch surface-interacting rays
			}
			out[[2]int{s, b}] = jitterDraw{
				delaySec: sigma * math.Sqrt(float64(s)) * rng.NormFloat64(),
				gain:     clamp(1+0.25*float64(s)*rng.NormFloat64(), 0.3, 1.7),
			}
		}
	}
	if e.FadeSigmaDBAt45m > 0 && rangeM > 0 {
		sigmaDB := e.FadeSigmaDBAt45m * rangeM / 45
		fade := math.Pow(10, sigmaDB*rng.NormFloat64()/20)
		out[[2]int{0, 0}] = jitterDraw{gain: clamp(fade, 0.05, 3)}
	}
	return out
}

// Apply perturbs the given taps in place according to the draw and
// re-sorts them by delay. Direct rays are untouched.
func (j SurfaceJitter) Apply(taps []Tap) []Tap {
	if j == nil {
		return taps
	}
	for i := range taps {
		d, ok := j[[2]int{taps[i].Surface, taps[i].Bottom}]
		if !ok {
			continue
		}
		taps[i].DelaySec += d.delaySec
		if taps[i].DelaySec < 0 {
			taps[i].DelaySec = 0
		}
		taps[i].Amplitude *= d.gain
	}
	sort.Slice(taps, func(a, b int) bool { return taps[a].DelaySec < taps[b].DelaySec })
	return taps
}
