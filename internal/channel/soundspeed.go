// Package channel models the underwater acoustic channel: sound speed,
// image-method multipath, absorption and spreading loss, ambient and
// impulsive noise, and occlusions — the substrate that stands in for the
// paper's pools, docks and lakes (§3, Fig. 10).
package channel

// SoundSpeed returns the underwater speed of sound in m/s from Wilson's
// equation as quoted in §2 of the paper:
//
//	c = 1449 + 4.6·T − 0.055·T² + 0.0003·T³ + 1.39·(S−35) + 0.017·D
//
// with T the temperature in °C, S the salinity in parts per thousand and
// D the depth in metres.
func SoundSpeed(tempC, salinityPPT, depthM float64) float64 {
	t := tempC
	return 1449 + 4.6*t - 0.055*t*t + 0.0003*t*t*t + 1.39*(salinityPPT-35) + 0.017*depthM
}

// ThorpAbsorptionDBPerKm returns the seawater absorption coefficient in
// dB/km at frequency f (Hz) using Thorp's empirical formula. In the
// device's 1–5 kHz band this is a fraction of a dB per km — negligible at
// dive-group ranges but included for physical completeness.
func ThorpAbsorptionDBPerKm(fHz float64) float64 {
	f2 := (fHz / 1000) * (fHz / 1000) // kHz²
	return 0.11*f2/(1+f2) + 44*f2/(4100+f2) + 2.75e-4*f2 + 0.003
}
