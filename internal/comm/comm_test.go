package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestEncodeDecodeClean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 8, 64, 200} {
		bits := randBits(r, n)
		coded := Encode(bits)
		if len(coded) != CodedLen(n) {
			t.Fatalf("n=%d: coded length %d, want %d", n, len(coded), CodedLen(n))
		}
		got, err := Decode(coded, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
}

func TestCodeRateIsTwoThirds(t *testing.T) {
	// Asymptotically 3 coded bits per 2 payload bits.
	n := 1000
	ratio := float64(CodedLen(n)) / float64(n)
	if ratio < 1.45 || ratio > 1.60 {
		t.Errorf("rate ratio %g, want ~1.5", ratio)
	}
}

func TestDecodeCorrectsBitErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	bits := randBits(r, 120)
	coded := Encode(bits)
	// Flip 3 well-separated coded bits: within the code's correction power.
	for _, pos := range []int{10, 70, 140} {
		coded[pos] ^= 1
	}
	got, err := Decode(coded, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestDecodeCorrectsErrorsProperty(t *testing.T) {
	// Random single-burst-free sparse errors (≤2% BER) decode perfectly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := randBits(r, 100)
		coded := Encode(bits)
		flips := 1 + r.Intn(3)
		for k := 0; k < flips; k++ {
			// Spread flips at least 30 positions apart.
			pos := (k*len(coded)/flips + r.Intn(10)) % len(coded)
			coded[pos] ^= 1
		}
		got, err := Decode(coded, 100)
		if err != nil {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeShortStream(t *testing.T) {
	if _, err := Decode([]byte{1, 0, 1}, 100); err == nil {
		t.Error("short stream should error")
	}
}

func TestReportPackUnpack(t *testing.T) {
	const n = 5
	r := &Report{
		DeviceID:    2,
		DepthM:      7.4,
		OffsetsSamp: []float64{100, 250.4, math.NaN(), 1850, 0},
	}
	r.OffsetsSamp[2] = math.NaN() // own slot
	bits, err := r.PackBits(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != PayloadBits(n) {
		t.Fatalf("payload %d bits, want %d", len(bits), PayloadBits(n))
	}
	got, err := UnpackBits(bits, 2, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DepthM-7.4) > DepthResolutionM/2 {
		t.Errorf("depth %g, want 7.4±0.1", got.DepthM)
	}
	for j, want := range []float64{100, 250.4, math.NaN(), 1850, 0} {
		gotV := got.OffsetsSamp[j]
		if j == 2 {
			if !math.IsNaN(gotV) {
				t.Errorf("own offset should be NaN")
			}
			continue
		}
		if math.IsNaN(want) != math.IsNaN(gotV) {
			t.Errorf("offset %d NaN mismatch", j)
			continue
		}
		if !math.IsNaN(want) && math.Abs(gotV-want) > TimestampScale {
			t.Errorf("offset %d = %g, want %g±%d", j, gotV, want, TimestampScale)
		}
	}
}

func TestReportPackRejects(t *testing.T) {
	r := &Report{DeviceID: 0, DepthM: 55, OffsetsSamp: []float64{math.NaN(), 0, 0}}
	if _, err := r.PackBits(3); err == nil {
		t.Error("over-depth should error")
	}
	r.DepthM = 5
	r.OffsetsSamp = []float64{math.NaN(), 0}
	if _, err := r.PackBits(3); err == nil {
		t.Error("wrong offsets length should error")
	}
	r.OffsetsSamp = []float64{math.NaN(), 99999, 0}
	if _, err := r.PackBits(3); err == nil {
		t.Error("out-of-range offset should error")
	}
	if _, err := UnpackBits([]byte{1, 0}, 0, 3); err == nil {
		t.Error("wrong bit count should error")
	}
}

func TestPaperPayloadSize(t *testing.T) {
	// §2.4: 10(N−1)+8 bits; we add N heard-flag bits and a CRC-8.
	for _, n := range []int{4, 6, 8} {
		want := 10*(n-1) + 8 + n + 8
		if got := PayloadBits(n); got != want {
			t.Errorf("N=%d payload %d bits, want %d", n, got, want)
		}
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	const n = 5
	r := &Report{DeviceID: 1, DepthM: 4.2, OffsetsSamp: make([]float64, n)}
	for j := range r.OffsetsSamp {
		r.OffsetsSamp[j] = float64(50 * j)
	}
	r.OffsetsSamp[1] = math.NaN()
	bits, err := r.PackBits(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnpackBits(bits, 1, n); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	// Any single flipped bit must be caught.
	for i := range bits {
		bits[i] ^= 1
		if _, err := UnpackBits(bits, 1, n); err == nil {
			t.Fatalf("flip at %d not detected", i)
		}
		bits[i] ^= 1
	}
}

func TestModemTones(t *testing.T) {
	m := NewModem(5, 44100)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	prevHigh := 0.0
	for id := 0; id < 5; id++ {
		f0, f1 := m.Tones(id)
		if f0 >= f1 {
			t.Errorf("device %d tones misordered", id)
		}
		if f0 <= prevHigh {
			t.Errorf("device %d band overlaps previous", id)
		}
		if f0 < m.BandLowHz || f1 > m.BandHighHz {
			t.Errorf("device %d tones out of band", id)
		}
		prevHigh = f1
	}
}

func TestModemValidateRejects(t *testing.T) {
	m := NewModem(1, 44100)
	if err := m.Validate(); err == nil {
		t.Error("group of 1 should fail")
	}
	m = NewModem(5, 44100)
	m.BitRate = 0
	if err := m.Validate(); err == nil {
		t.Error("zero bit rate should fail")
	}
	// 40 devices in 4 kHz: 33 Hz tone separation < 100 bps.
	m = NewModem(40, 44100)
	if err := m.Validate(); err == nil {
		t.Error("overcrowded band should fail")
	}
}

func TestModemRoundTripClean(t *testing.T) {
	m := NewModem(5, 44100)
	r := rand.New(rand.NewSource(3))
	bits := randBits(r, 60)
	wave := m.Modulate(2, bits)
	if len(wave) != 60*m.SamplesPerBit() {
		t.Fatal("waveform length")
	}
	got, err := m.Demodulate(2, wave, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d flipped", i)
		}
	}
}

func TestModemPanicsOnBadDevice(t *testing.T) {
	m := NewModem(4, 44100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Tones(4)
}

func TestConcurrentSubBandsDoNotInterfere(t *testing.T) {
	// All devices transmit simultaneously in their own sub-bands; the
	// leader demodulates each without cross-talk (§2.4's concurrency).
	const n = 5
	m := NewModem(n, 44100)
	r := rand.New(rand.NewSource(4))
	payloads := make([][]byte, n)
	var mixed []float64
	for id := 1; id < n; id++ {
		payloads[id] = randBits(r, 40)
		w := m.Modulate(id, payloads[id])
		if mixed == nil {
			mixed = make([]float64, len(w))
		}
		for i := range w {
			mixed[i] += w[i]
		}
	}
	// Ambient noise on top.
	for i := range mixed {
		mixed[i] += 0.3 * r.NormFloat64()
	}
	for id := 1; id < n; id++ {
		got, err := m.Demodulate(id, mixed, 40)
		if err != nil {
			t.Fatal(err)
		}
		errors := 0
		for i := range got {
			if got[i] != payloads[id][i] {
				errors++
			}
		}
		if errors > 0 {
			t.Errorf("device %d: %d/%d bit errors in concurrent transmission", id, errors, 40)
		}
	}
}

func TestTransmitReceiveReportEndToEnd(t *testing.T) {
	const n = 6
	m := NewModem(n, 44100)
	rep := &Report{
		DeviceID:    3,
		DepthM:      12.6,
		OffsetsSamp: make([]float64, n),
	}
	for j := range rep.OffsetsSamp {
		rep.OffsetsSamp[j] = float64(100 + 300*j)
	}
	rep.OffsetsSamp[3] = math.NaN()
	rep.OffsetsSamp[5] = math.NaN() // not heard
	wave, err := m.TransmitReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	// Channel: noise + attenuation.
	r := rand.New(rand.NewSource(5))
	rx := make([]float64, len(wave)+2000)
	for i := range rx {
		rx[i] = 0.2 * r.NormFloat64()
	}
	for i, v := range wave {
		rx[1000+i] += 0.8 * v
	}
	got, err := m.ReceiveReport(rx, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DepthM-12.6) > DepthResolutionM {
		t.Errorf("depth %g", got.DepthM)
	}
	for j := range rep.OffsetsSamp {
		if math.IsNaN(rep.OffsetsSamp[j]) != math.IsNaN(got.OffsetsSamp[j]) {
			t.Errorf("offset %d NaN mismatch", j)
		} else if !math.IsNaN(rep.OffsetsSamp[j]) && math.Abs(got.OffsetsSamp[j]-rep.OffsetsSamp[j]) > TimestampScale {
			t.Errorf("offset %d = %g, want %g", j, got.OffsetsSamp[j], rep.OffsetsSamp[j])
		}
	}
	if _, err := m.ReceiveReport(rx, -1, 3); err == nil {
		t.Error("negative start should error")
	}
}

func TestReportDurationMatchesPaper(t *testing.T) {
	// §2.4: ~0.9, 1.0, 1.2 s for N = 6, 7, 8 at 100 bps (paper counts
	// 10(N−1)+8 bits with 2/3 coding; our frame adds N heard-flags).
	for _, c := range []struct {
		n   int
		max float64
	}{{6, 1.3}, {7, 1.45}, {8, 1.6}} {
		m := NewModem(c.n, 44100)
		d := m.ReportDuration()
		if d < 0.7 || d > c.max {
			t.Errorf("N=%d report duration %g s outside [0.7, %g]", c.n, d, c.max)
		}
	}
}

func BenchmarkViterbiDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bits := randBits(r, 200)
	coded := Encode(bits)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(coded, 200); err != nil {
			b.Fatal(err)
		}
	}
}
