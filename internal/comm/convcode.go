// Package comm implements the report-back communication system of §2.4:
// timestamp/depth compression into a compact frame, rate-2/3 punctured
// convolutional coding with Viterbi decoding, and the per-device FSK
// modem that lets all divers reply to the leader simultaneously in
// disjoint sub-bands.
package comm

import (
	"fmt"
	"math"
)

// Convolutional code: the industry-standard rate-1/2, K=7 code with
// generators 0o171 and 0o133, punctured to rate 2/3 with the pattern
// [1 1 / 1 0] (drop every fourth coded bit).

const (
	constraintLen = 7
	numStates     = 1 << (constraintLen - 1) // 64
	genA          = 0o171
	genB          = 0o133
)

// parity returns the parity of x.
func parity(x int) int {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// encodeRate12 runs the mother rate-1/2 encoder, returning 2 coded bits
// per input bit (+ tail). The encoder is flushed with K−1 zero bits so the
// decoder can terminate in state 0.
func encodeRate12(bits []byte) []byte {
	state := 0
	out := make([]byte, 0, 2*(len(bits)+constraintLen-1))
	emit := func(b byte) {
		state = ((state << 1) | int(b&1)) & (1<<constraintLen - 1)
		out = append(out, byte(parity(state&genA)), byte(parity(state&genB)))
	}
	for _, b := range bits {
		emit(b)
	}
	for i := 0; i < constraintLen-1; i++ {
		emit(0)
	}
	return out
}

// punctureMask reports whether coded position idx survives the 2/3
// puncturing pattern [1 1 / 1 0]: of every 4 mother bits, the 4th is
// dropped.
func punctureMask(idx int) bool { return idx%4 != 3 }

// Encode convolutionally encodes data bits at rate 2/3 (mother 1/2 +
// puncturing). Input and output are bit-per-byte slices (values 0/1).
func Encode(bits []byte) []byte {
	mother := encodeRate12(bits)
	out := make([]byte, 0, len(mother)*3/4+2)
	for i, b := range mother {
		if punctureMask(i) {
			out = append(out, b)
		}
	}
	return out
}

// Decode runs hard-decision Viterbi over the punctured stream and returns
// the decoded payload of payloadLen bits. Punctured positions contribute
// no branch metric (treated as erasures). Returns an error if the stream
// is shorter than the puncturing demands.
func Decode(coded []byte, payloadLen int) ([]byte, error) {
	totalIn := payloadLen + constraintLen - 1 // with tail
	motherLen := 2 * totalIn
	// Reconstruct mother stream with erasures.
	type symbol struct {
		a, b int8 // 0/1, or -1 for erasure
	}
	syms := make([]symbol, totalIn)
	pos := 0
	for i := 0; i < motherLen; i++ {
		s := &syms[i/2]
		var v int8 = -1
		if punctureMask(i) {
			if pos >= len(coded) {
				return nil, fmt.Errorf("comm: coded stream too short: have %d, need more", len(coded))
			}
			v = int8(coded[pos] & 1)
			pos++
		}
		if i%2 == 0 {
			s.a = v
		} else {
			s.b = v
		}
	}

	const inf = math.MaxInt32 / 2
	dist := make([]int32, numStates)
	next := make([]int32, numStates)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	// The state register holds the last K−1 input bits; the transition
	// st → ns = ((st<<1)|in) mod 2^(K−1) drops st's high bit. The input
	// bit is ns's low bit, so backtracking only needs that lost high bit.
	back := make([][]int8, totalIn)
	for step := 0; step < totalIn; step++ {
		back[step] = make([]int8, numStates)
		for i := range next {
			next[i] = inf
		}
		sym := syms[step]
		for st := 0; st < numStates; st++ {
			if dist[st] >= inf {
				continue
			}
			for in := 0; in <= 1; in++ {
				full := ((st << 1) | in) & (1<<constraintLen - 1)
				outA := parity(full & genA)
				outB := parity(full & genB)
				var metric int32
				if sym.a >= 0 && int8(outA) != sym.a {
					metric++
				}
				if sym.b >= 0 && int8(outB) != sym.b {
					metric++
				}
				ns := full & (numStates - 1)
				if d := dist[st] + metric; d < next[ns] {
					next[ns] = d
					back[step][ns] = int8((st >> (constraintLen - 2)) & 1)
				}
			}
		}
		dist, next = next, dist
	}
	// Terminated in state 0 by the tail.
	state := 0
	decoded := make([]byte, totalIn)
	for step := totalIn - 1; step >= 0; step-- {
		decoded[step] = byte(state & 1) // the input bit that formed this state
		hi := int(back[step][state])
		state = (state >> 1) | (hi << (constraintLen - 2))
	}
	return decoded[:payloadLen], nil
}

// CodedLen returns the number of coded bits Encode produces for n payload
// bits.
func CodedLen(n int) int {
	mother := 2 * (n + constraintLen - 1)
	cnt := 0
	for i := 0; i < mother; i++ {
		if punctureMask(i) {
			cnt++
		}
	}
	return cnt
}
