package comm

import (
	"fmt"
	"math"
)

// Frame compression constants from §2.4.
const (
	DepthResolutionM  = 0.2  // 0.2 m depth quantization
	DepthBits         = 8    // depths 0–40 m → 0–200 < 2^8
	MaxDepthM         = 40.0 // recreational dive limit
	TimestampBits     = 10   // slot-relative diffs at 2-sample resolution
	TimestampScale    = 2    // samples per quantization step
	MaxTimestampSteps = 1 << TimestampBits
)

// Report is one device's payload back to the leader: its depth and, for
// every other device, the arrival offset of that device's message relative
// to its assigned slot (bounded by [0, 2·τ_max), §2.4).
type Report struct {
	DeviceID     int
	DepthM       float64
	OffsetsSamp  []float64 // per remote device; NaN = not heard
	HeardBitmask uint16    // bit j set when device j was heard
}

// PackBits serializes the report for N total devices into bits
// (8 depth bits + 10 bits per remote device + N heard-flags).
// Offsets must fit [0, MaxTimestampSteps·TimestampScale) samples.
func (r *Report) PackBits(n int) ([]byte, error) {
	if r.DepthM < 0 || r.DepthM > MaxDepthM {
		return nil, fmt.Errorf("comm: depth %.2f m outside [0, %g]", r.DepthM, MaxDepthM)
	}
	if len(r.OffsetsSamp) != n {
		return nil, fmt.Errorf("comm: %d offsets for %d devices", len(r.OffsetsSamp), n)
	}
	bits := make([]byte, 0, PayloadBits(n))
	dq := int(math.Round(r.DepthM / DepthResolutionM))
	bits = appendUint(bits, uint(dq), DepthBits)
	// Heard flags.
	for j := 0; j < n; j++ {
		heard := j != r.DeviceID && !math.IsNaN(r.OffsetsSamp[j])
		if heard {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	for j := 0; j < n; j++ {
		if j == r.DeviceID {
			continue
		}
		v := 0
		if !math.IsNaN(r.OffsetsSamp[j]) {
			v = int(math.Round(r.OffsetsSamp[j] / TimestampScale))
			if v < 0 || v >= MaxTimestampSteps {
				return nil, fmt.Errorf("comm: offset %d steps for device %d out of range", v, j)
			}
		}
		bits = appendUint(bits, uint(v), TimestampBits)
	}
	return AppendCRC(bits), nil
}

// UnpackBits reverses PackBits for a report from deviceID in an N-device
// group, verifying the CRC first.
func UnpackBits(bits []byte, deviceID, n int) (*Report, error) {
	if len(bits) != PayloadBits(n) {
		return nil, fmt.Errorf("comm: report length %d, want %d", len(bits), PayloadBits(n))
	}
	bits, err := CheckCRC(bits)
	if err != nil {
		return nil, err
	}
	pos := 0
	dq, pos := readUint(bits, pos, DepthBits)
	r := &Report{
		DeviceID:    deviceID,
		DepthM:      float64(dq) * DepthResolutionM,
		OffsetsSamp: make([]float64, n),
	}
	heard := make([]bool, n)
	for j := 0; j < n; j++ {
		heard[j] = bits[pos] == 1
		if heard[j] {
			r.HeardBitmask |= 1 << uint(j)
		}
		pos++
	}
	for j := 0; j < n; j++ {
		if j == deviceID {
			r.OffsetsSamp[j] = math.NaN()
			continue
		}
		var v uint
		v, pos = readUint(bits, pos, TimestampBits)
		if heard[j] {
			r.OffsetsSamp[j] = float64(v) * TimestampScale
		} else {
			r.OffsetsSamp[j] = math.NaN()
		}
	}
	return r, nil
}

// PayloadBits returns the report size in bits for an N-device group
// (the paper quotes 10(N−1)+8; we add N heard-flags for explicit loss
// signalling and a CRC-8 so corrupted frames are dropped instead of
// silently poisoning the topology solve).
func PayloadBits(n int) int { return DepthBits + n + (n-1)*TimestampBits + 8 }

// CRC-8/ATM (poly 0x07) over the frame bits.
func crc8(bits []byte) byte {
	var crc byte
	for _, b := range bits {
		crc ^= (b & 1) << 7
		if crc&0x80 != 0 {
			crc = (crc << 1) ^ 0x07
		} else {
			crc <<= 1
		}
	}
	return crc
}

// AppendCRC appends the 8 CRC bits to a frame.
func AppendCRC(bits []byte) []byte {
	c := crc8(bits)
	return appendUint(bits, uint(c), 8)
}

// CheckCRC verifies and strips the trailing 8 CRC bits.
func CheckCRC(bits []byte) ([]byte, error) {
	if len(bits) < 8 {
		return nil, fmt.Errorf("comm: frame too short for CRC")
	}
	body := bits[:len(bits)-8]
	want, _ := readUint(bits, len(bits)-8, 8)
	if crc8(body) != byte(want) {
		return nil, fmt.Errorf("comm: CRC mismatch")
	}
	return body, nil
}

func appendUint(bits []byte, v uint, width int) []byte {
	for b := width - 1; b >= 0; b-- {
		bits = append(bits, byte((v>>uint(b))&1))
	}
	return bits
}

func readUint(bits []byte, pos, width int) (uint, int) {
	var v uint
	for b := 0; b < width; b++ {
		v = (v << 1) | uint(bits[pos]&1)
		pos++
	}
	return v, pos
}
