package comm

import (
	"fmt"
	"math"

	"uwpos/internal/sig"
)

// Modem is the per-device binary FSK modem of §2.4: the 1–5 kHz band is
// split into N sub-bands; device i signals bit 0/1 with two tones inside
// its own sub-band, so all devices can report to the leader concurrently.
type Modem struct {
	SampleRate float64
	BandLowHz  float64
	BandHighHz float64
	GroupSize  int     // number of devices sharing the band
	BitRate    float64 // bits per second (paper: 100 bps per device)
}

// NewModem returns the paper's configuration for an N-device group.
func NewModem(groupSize int, fs float64) *Modem {
	return &Modem{
		SampleRate: fs,
		BandLowHz:  1000,
		BandHighHz: 5000,
		GroupSize:  groupSize,
		BitRate:    100,
	}
}

// Validate sanity-checks modem parameters.
func (m *Modem) Validate() error {
	switch {
	case m.GroupSize < 2:
		return fmt.Errorf("comm: group size %d too small", m.GroupSize)
	case m.BitRate <= 0 || m.SampleRate <= 0:
		return fmt.Errorf("comm: non-positive rates")
	case m.BandHighHz <= m.BandLowHz:
		return fmt.Errorf("comm: invalid band")
	}
	if m.toneSeparation() < m.BitRate {
		return fmt.Errorf("comm: sub-band too narrow: tone separation %.1f Hz below bit rate %.1f", m.toneSeparation(), m.BitRate)
	}
	return nil
}

// SamplesPerBit returns the bit duration in samples.
func (m *Modem) SamplesPerBit() int { return int(math.Round(m.SampleRate / m.BitRate)) }

func (m *Modem) subBandWidth() float64 {
	return (m.BandHighHz - m.BandLowHz) / float64(m.GroupSize)
}

func (m *Modem) toneSeparation() float64 { return m.subBandWidth() / 3 }

// Tones returns the (f0, f1) mark/space frequencies for a device.
func (m *Modem) Tones(deviceID int) (f0, f1 float64) {
	if deviceID < 0 || deviceID >= m.GroupSize {
		panic(fmt.Sprintf("comm: device %d of %d", deviceID, m.GroupSize))
	}
	base := m.BandLowHz + float64(deviceID)*m.subBandWidth()
	return base + m.subBandWidth()/3, base + 2*m.subBandWidth()/3
}

// Modulate converts coded bits into the device's FSK waveform with
// continuous phase (CPFSK), then confines the spectrum to the device's
// sub-band with a linear-phase filter. Transmit filtering is what makes
// the concurrent §2.4 uplink survive the near–far problem: a 6 m diver is
// ~10 dB louder at the leader than a 20 m diver in the adjacent band.
func (m *Modem) Modulate(deviceID int, bits []byte) []float64 {
	f0, f1 := m.Tones(deviceID)
	spb := m.SamplesPerBit()
	out := make([]float64, spb*len(bits))
	phase := 0.0
	idx := 0
	for _, b := range bits {
		f := f0
		if b&1 == 1 {
			f = f1
		}
		step := 2 * math.Pi * f / m.SampleRate
		for s := 0; s < spb; s++ {
			out[idx] = math.Sin(phase)
			phase += step
			idx++
		}
	}
	// Confine to the sub-band with guard margins just inside the
	// neighbours' tones.
	width := m.subBandWidth()
	base := m.BandLowHz + float64(deviceID)*width
	return sig.BandLimit(out, base+width/12, base+width-width/12, m.SampleRate)
}

// Demodulate recovers nBits hard bits from a received waveform that starts
// at the first bit boundary, comparing Goertzel energies at the device's
// two tones per bit slot.
func (m *Modem) Demodulate(deviceID int, rx []float64, nBits int) ([]byte, error) {
	f0, f1 := m.Tones(deviceID)
	spb := m.SamplesPerBit()
	if len(rx) < spb*nBits {
		return nil, fmt.Errorf("comm: rx too short: %d samples for %d bits of %d", len(rx), nBits, spb)
	}
	bits := make([]byte, nBits)
	for i := 0; i < nBits; i++ {
		seg := rx[i*spb : (i+1)*spb]
		e0 := sig.Goertzel(seg, f0, m.SampleRate)
		e1 := sig.Goertzel(seg, f1, m.SampleRate)
		if e1 > e0 {
			bits[i] = 1
		}
	}
	return bits, nil
}

// TransmitReport encodes (frame → rate-2/3 convolutional → FSK) a report
// for over-water transmission. Returns the waveform.
func (m *Modem) TransmitReport(r *Report) ([]float64, error) {
	bits, err := r.PackBits(m.GroupSize)
	if err != nil {
		return nil, err
	}
	coded := Encode(bits)
	return m.Modulate(r.DeviceID, coded), nil
}

// ReceiveReport demodulates and decodes a report from deviceID embedded at
// sample `start` of the rx stream.
func (m *Modem) ReceiveReport(rx []float64, start, deviceID int) (*Report, error) {
	if start < 0 || start >= len(rx) {
		return nil, fmt.Errorf("comm: start %d out of stream", start)
	}
	payload := PayloadBits(m.GroupSize)
	coded := CodedLen(payload)
	bits, err := m.Demodulate(deviceID, rx[start:], coded)
	if err != nil {
		return nil, err
	}
	decoded, err := Decode(bits, payload)
	if err != nil {
		return nil, err
	}
	return UnpackBits(decoded, deviceID, m.GroupSize)
}

// ReportDuration returns the on-air time of one report in seconds
// (§2.4 quotes ~0.9–1.2 s for N = 6–8 at 100 bps).
func (m *Modem) ReportDuration() float64 {
	return float64(CodedLen(PayloadBits(m.GroupSize))) / m.BitRate
}
