// Package core implements the paper's primary contribution (§2.1):
// anchor-free topology-based 3D localization. Given noisy, possibly
// incomplete pairwise distances, per-device depths, and the dual-microphone
// side observations at the leader, it
//
//  1. projects the problem to 2D using depths,
//  2. estimates the topology with weighted SMACOF,
//  3. detects and drops outlier links (Algorithm 1), gated so the
//     remaining graph stays uniquely realizable,
//  4. resolves the rotational ambiguity with the leader's pointing
//     direction and the flipping ambiguity with a dual-mic vote, and
//  5. lifts the result back to 3D with the measured depths.
//
// Device 0 is always the leader; device 1 is the diver the leader points
// toward.
package core

import (
	"context"
	"fmt"
	"math"

	"uwpos/internal/geom"
	"uwpos/internal/graph"
	"uwpos/internal/mds"
)

// Input bundles one localization round.
type Input struct {
	// D is the N×N matrix of measured 3D pairwise distances (metres).
	// Only entries with W > 0 are read.
	D [][]float64
	// W is the N×N link indicator/weight matrix: 0 marks a missing link.
	W [][]float64
	// Depths are per-device depths from onboard sensors (metres, +down).
	Depths []float64
	// MicSigns[i] is the sign of (mᵢ − nᵢ) observed by the leader's dual
	// microphones for device i's transmission: +1 when the leader's mic 1
	// (right of the pointing direction) heard it first, −1 for mic 2
	// (left), 0 when unknown. Entries 0 and 1 are ignored.
	MicSigns []int
	// PointingBearing is the world-frame bearing (radians, from +x) the
	// leader faces; device 1 is placed along it. Zero is a fine default
	// when only relative positions matter.
	PointingBearing float64
}

// Config tunes the pipeline.
type Config struct {
	// StressAccept is the normalized-stress acceptance threshold in
	// metres (paper: 1.5).
	StressAccept float64
	// DropFraction is the minimum relative stress reduction for a drop
	// subset to count as explaining the outliers (paper: 0.9).
	DropFraction float64
	// MaxOutliers caps how many links may be dropped (paper: 3).
	MaxOutliers int
	// MDS forwards solver options.
	MDS mds.Options
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{StressAccept: 1.5, DropFraction: 0.9, MaxOutliers: 3}
}

// Result is a localization outcome.
type Result struct {
	// Positions are 3D positions (leader at origin of x–y, depths as
	// measured). Positions[0] is the leader.
	Positions []geom.Vec3
	// Planar are the aligned 2D positions before lifting.
	Planar []geom.Vec2
	// NormStress is the final normalized stress (m).
	NormStress float64
	// Dropped lists links removed as outliers.
	Dropped []graph.Edge
	// FlipVote is the winning vote margin (≥ 0); 0 means the vote was
	// uninformative and the unflipped candidate was kept.
	FlipVote int
	// OutlierSearch reports whether Algorithm 1 went past its fast path.
	OutlierSearch bool
}

// Localize runs the full pipeline. ctx bounds the outlier search, which
// re-solves the topology once per candidate drop subset; it is checked
// between solves, so cancellation lands within one solve's latency.
func Localize(ctx context.Context, in Input, cfg Config) (*Result, error) {
	n := len(in.D)
	if n < 3 {
		return nil, fmt.Errorf("core: need at least 3 devices, got %d (two divers can only range)", n)
	}
	if len(in.W) != n || len(in.Depths) != n {
		return nil, fmt.Errorf("core: inconsistent input sizes (D %d, W %d, depths %d)", n, len(in.W), len(in.Depths))
	}
	if in.MicSigns != nil && len(in.MicSigns) != n {
		return nil, fmt.Errorf("core: MicSigns length %d, want %d", len(in.MicSigns), n)
	}
	if in.W[0][1] <= 0 && in.W[1][0] <= 0 {
		return nil, fmt.Errorf("core: leader must range to the pointed device (link 0-1 missing)")
	}

	d2d, err := ProjectTo2D(in.D, in.W, in.Depths)
	if err != nil {
		return nil, err
	}

	planar, normStress, dropped, searched, err := DetectOutliers(ctx, d2d, in.W, cfg)
	if err != nil {
		return nil, err
	}

	aligned := AlignToLeader(planar, in.PointingBearing)
	flipped, vote := ResolveFlip(aligned, in.MicSigns, in.PointingBearing)

	positions := make([]geom.Vec3, n)
	for i := range positions {
		positions[i] = flipped[i].WithZ(in.Depths[i])
	}
	return &Result{
		Positions:     positions,
		Planar:        flipped,
		NormStress:    normStress,
		Dropped:       dropped,
		FlipVote:      vote,
		OutlierSearch: searched,
	}, nil
}

// ProjectTo2D converts 3D distances to horizontal-plane distances using
// depths: D2D = sqrt(D² − Δh²) (§2.1.1). Measurement noise can push the
// radicand negative (a nearly vertical pair); those distances clamp to 0.
func ProjectTo2D(d, w [][]float64, depths []float64) ([][]float64, error) {
	n := len(d)
	if len(depths) != n {
		return nil, fmt.Errorf("core: depths length %d, want %d", len(depths), n)
	}
	out := make([][]float64, n)
	for i := range out {
		if len(d[i]) != n {
			return nil, fmt.Errorf("core: distance row %d has length %d", i, len(d[i]))
		}
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if wAt(w, i, j) <= 0 {
				continue
			}
			dh := depths[i] - depths[j]
			v := d[i][j]*d[i][j] - dh*dh
			if v < 0 {
				v = 0
			}
			out[i][j] = math.Sqrt(v)
			out[j][i] = out[i][j]
		}
	}
	return out, nil
}

func wAt(w [][]float64, i, j int) float64 {
	a := w[i][j]
	if b := w[j][i]; b > a {
		return b
	}
	return a
}

// DetectOutliers is Algorithm 1: solve, and if the normalized stress
// exceeds the acceptance threshold, search over drop subsets of growing
// size — restricted to subsets whose removal keeps the link graph uniquely
// realizable — keeping the candidate with the greatest stress reduction.
func DetectOutliers(ctx context.Context, d2d, w [][]float64, cfg Config) (pos []geom.Vec2, stress float64, dropped []graph.Edge, searched bool, err error) {
	if cfg.StressAccept == 0 {
		cfg = DefaultConfig()
	}
	base, err := mds.Solve(d2d, w, cfg.MDS)
	if err != nil {
		return nil, 0, nil, false, err
	}
	if base.NormStress < cfg.StressAccept {
		return base.Positions, base.NormStress, nil, false, nil
	}

	g := graph.FromWeights(w)
	edges := g.Edges()
	e0 := base.NormStress
	p0 := base.Positions
	var accumulatedDrop []graph.Edge

	for nDrop := 1; nDrop <= cfg.MaxOutliers && nDrop <= len(edges); nDrop++ {
		eMin := e0
		pMin := p0
		var bestDrop []graph.Edge
		graph.Subsets(edges, nDrop, func(drop []graph.Edge) bool {
			if ctx.Err() != nil {
				return false // cancelled: stop enumerating subsets
			}
			if !g.WithoutEdges(drop).UniquelyRealizable() {
				return true // skip: solution would not be unique
			}
			wTrial := cloneWeights(w)
			for _, e := range drop {
				wTrial[e.Low][e.High] = 0
				wTrial[e.High][e.Low] = 0
			}
			trial, serr := mds.Solve(d2d, wTrial, cfg.MDS)
			if serr != nil {
				return true
			}
			if e0-trial.NormStress > cfg.DropFraction*e0 && trial.NormStress < eMin {
				eMin = trial.NormStress
				pMin = trial.Positions
				bestDrop = append([]graph.Edge(nil), drop...)
			}
			return true
		})
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, true, err
		}
		if eMin < cfg.StressAccept {
			return pMin, eMin, bestDrop, true, nil
		}
		if bestDrop != nil {
			e0, p0, accumulatedDrop = eMin, pMin, bestDrop
		}
	}
	return p0, e0, accumulatedDrop, true, nil
}

func cloneWeights(w [][]float64) [][]float64 {
	out := make([][]float64, len(w))
	for i := range w {
		out[i] = append([]float64(nil), w[i]...)
	}
	return out
}

// AlignToLeader rigidly moves a 2D configuration so the leader (node 0)
// sits at the origin and the pointed device (node 1) lies along the given
// bearing — resolving translation and rotation (§2.1.4). Reflection is
// left for ResolveFlip.
func AlignToLeader(pos []geom.Vec2, bearing float64) []geom.Vec2 {
	out := make([]geom.Vec2, len(pos))
	if len(pos) == 0 {
		return out
	}
	origin := pos[0]
	for i, p := range pos {
		out[i] = p.Sub(origin)
	}
	if len(out) < 2 {
		return out
	}
	cur := out[1].Angle()
	rot := bearing - cur
	for i := range out {
		out[i] = out[i].Rotate(rot)
	}
	return out
}

// ResolveFlip evaluates the paper's voting function on both mirror
// candidates and returns the winner plus the winning margin:
//
//	V({P}) = Σ_{i≥2} sgn(mᵢ−nᵢ) · sgn((xᵢ−x₀)(y₁−y₀) − (yᵢ−y₀)(x₁−x₀))
//
// Our mic-sign convention: +1 means the leader's microphone on the right
// of the pointing direction heard device i first, which happens when the
// device lies on the right side, i.e. cross(P₁−P₀, Pᵢ−P₀) < 0 — matching
// the sign expression above. Devices with sign 0 abstain. If the vote
// ties (or no information), the unflipped candidate is returned.
func ResolveFlip(pos []geom.Vec2, micSigns []int, bearing float64) ([]geom.Vec2, int) {
	if len(pos) < 3 || micSigns == nil {
		return pos, 0
	}
	mirrored := make([]geom.Vec2, len(pos))
	for i, p := range pos {
		mirrored[i] = geom.ReflectAcross(p, pos[0], pos[1])
	}
	v1 := flipVote(pos, micSigns)
	v2 := flipVote(mirrored, micSigns)
	if v2 > v1 {
		return mirrored, v2
	}
	return pos, v1
}

func flipVote(pos []geom.Vec2, micSigns []int) int {
	v := 0
	p0, p1 := pos[0], pos[1]
	for i := 2; i < len(pos); i++ {
		ms := micSigns[i]
		if ms == 0 {
			continue
		}
		// (xᵢ−x₀)(y₁−y₀) − (yᵢ−y₀)(x₁−x₀) == cross(Pᵢ−P₀, P₁−P₀).
		cross := pos[i].Sub(p0).Cross(p1.Sub(p0))
		side := 0
		switch {
		case cross > 0:
			side = 1
		case cross < 0:
			side = -1
		}
		v += ms * side
	}
	return v
}
