package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
	"uwpos/internal/graph"
)

// scenario builds exact measurement inputs from ground-truth 3D positions,
// with the leader at index 0 pointing at device 1.
func scenario(truth []geom.Vec3) Input {
	n := len(truth)
	d := make([][]float64, n)
	w := make([][]float64, n)
	depths := make([]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		w[i] = make([]float64, n)
		depths[i] = truth[i].Z
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d[i][j] = truth[i].Dist(truth[j])
				w[i][j] = 1
			}
		}
	}
	signs := make([]int, n)
	bearing := truth[1].Sub(truth[0]).XY().Angle()
	for i := 2; i < n; i++ {
		signs[i] = trueMicSign(truth, i)
	}
	return Input{D: d, W: w, Depths: depths, MicSigns: signs, PointingBearing: bearing}
}

// trueMicSign computes the geometric ground truth for sign(m−n): +1 when
// device i is right of the leader→device-1 line.
func trueMicSign(truth []geom.Vec3, i int) int {
	cross := truth[i].Sub(truth[0]).XY().Cross(truth[1].Sub(truth[0]).XY())
	switch {
	case cross > 0:
		return 1
	case cross < 0:
		return -1
	}
	return 0
}

func maxPosErr(truth []geom.Vec3, got []geom.Vec3, leader geom.Vec3) float64 {
	var worst float64
	for i := range truth {
		want := truth[i].Sub(leader)
		if e := got[i].Sub(geom.Vec3{Z: -leader.Z}).Sub(want).Norm(); e > worst {
			worst = e
		}
	}
	return worst
}

var dockTruth = []geom.Vec3{
	{X: 0, Y: 0, Z: 2},    // leader
	{X: 6, Y: 2, Z: 3},    // pointed device
	{X: 14, Y: -5, Z: 1},  // right of the line
	{X: 10, Y: 9, Z: 4},   // left of the line
	{X: 20, Y: 3, Z: 2.5}, // near the line, right
}

func TestLocalizeExactRecovery(t *testing.T) {
	in := scenario(dockTruth)
	res, err := Localize(context.Background(), in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NormStress > 1e-4 {
		t.Errorf("norm stress %g on exact input", res.NormStress)
	}
	if res.Dropped != nil || res.OutlierSearch {
		t.Error("no outlier machinery expected on clean input")
	}
	// Relative positions w.r.t. the leader must match ground truth.
	for i := range dockTruth {
		want := dockTruth[i].Sub(dockTruth[0])
		got := res.Positions[i]
		got.Z -= dockTruth[0].Z // depths are absolute; compare relative
		want.Z = dockTruth[i].Z - dockTruth[0].Z
		if e := got.Sub(want).Norm(); e > 1e-3 {
			t.Errorf("device %d: got %+v want %+v (err %g)", i, got, want, e)
		}
	}
}

func TestLocalizeLeaderAtOrigin(t *testing.T) {
	res, err := Localize(context.Background(), scenario(dockTruth), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Planar[0].Norm() > 1e-9 {
		t.Errorf("leader planar position %+v, want origin", res.Planar[0])
	}
	// Device 1 must lie along the pointing bearing.
	bearing := dockTruth[1].Sub(dockTruth[0]).XY().Angle()
	if got := res.Planar[1].Angle(); math.Abs(angleDiff(got, bearing)) > 1e-6 {
		t.Errorf("device 1 bearing %g, want %g", got, bearing)
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return d
}

func TestLocalizeInputValidation(t *testing.T) {
	in := scenario(dockTruth[:3])
	if _, err := Localize(context.Background(), Input{D: in.D[:2], W: in.W[:2], Depths: in.Depths[:2]}, DefaultConfig()); err == nil {
		t.Error("n=2 should error (ranging only)")
	}
	bad := scenario(dockTruth)
	bad.Depths = bad.Depths[:2]
	if _, err := Localize(context.Background(), bad, DefaultConfig()); err == nil {
		t.Error("bad depth length should error")
	}
	noLink := scenario(dockTruth)
	noLink.W[0][1], noLink.W[1][0] = 0, 0
	if _, err := Localize(context.Background(), noLink, DefaultConfig()); err == nil {
		t.Error("missing leader-pointed link should error")
	}
	badSigns := scenario(dockTruth)
	badSigns.MicSigns = []int{0}
	if _, err := Localize(context.Background(), badSigns, DefaultConfig()); err == nil {
		t.Error("bad MicSigns length should error")
	}
}

func TestProjectTo2D(t *testing.T) {
	d := [][]float64{{0, 5}, {5, 0}}
	w := [][]float64{{0, 1}, {1, 0}}
	depths := []float64{0, 3}
	p, err := ProjectTo2D(d, w, depths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0][1]-4) > 1e-12 {
		t.Errorf("projected distance %g, want 4", p[0][1])
	}
	// Near-vertical pair with noise: clamps to 0 instead of NaN.
	d[0][1], d[1][0] = 2.9, 2.9
	p, err = ProjectTo2D(d, w, depths)
	if err != nil {
		t.Fatal(err)
	}
	if p[0][1] != 0 || math.IsNaN(p[0][1]) {
		t.Errorf("clamped projection = %g", p[0][1])
	}
	// Length mismatch errors.
	if _, err := ProjectTo2D(d, w, []float64{1}); err == nil {
		t.Error("bad depths should error")
	}
}

func TestLocalizeWithMissingLinks(t *testing.T) {
	truth := []geom.Vec3{
		{X: 0, Y: 0, Z: 2}, {X: 7, Y: 1, Z: 3}, {X: 15, Y: -6, Z: 1},
		{X: 11, Y: 10, Z: 4}, {X: 22, Y: 2, Z: 2}, {X: 4, Y: -12, Z: 3},
	}
	in := scenario(truth)
	// Drop two far links; graph remains uniquely realizable.
	for _, e := range [][2]int{{2, 3}, {4, 5}} {
		in.W[e[0]][e[1]], in.W[e[1]][e[0]] = 0, 0
	}
	res, err := Localize(context.Background(), in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		want := truth[i].Sub(truth[0]).XY()
		if e := res.Planar[i].Dist(want); e > 0.01 {
			t.Errorf("device %d planar error %g with missing links", i, e)
		}
	}
}

func TestLocalizeDetectsOutlier(t *testing.T) {
	truth := []geom.Vec3{
		{X: 0, Y: 0, Z: 2}, {X: 7, Y: 1, Z: 3}, {X: 15, Y: -6, Z: 1},
		{X: 11, Y: 10, Z: 4}, {X: 22, Y: 2, Z: 2}, {X: 4, Y: -12, Z: 3},
	}
	in := scenario(truth)
	// Occluded link 0–2: severe multipath inflates the distance by 9 m.
	in.D[0][2] += 9
	in.D[2][0] = in.D[0][2]
	res, err := Localize(context.Background(), in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutlierSearch {
		t.Error("outlier search should have engaged")
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != graph.NewEdge(0, 2) {
		t.Errorf("dropped %v, want [0-2]", res.Dropped)
	}
	if res.NormStress > 0.1 {
		t.Errorf("post-drop stress %g", res.NormStress)
	}
	for i := range truth {
		want := truth[i].Sub(truth[0]).XY()
		if e := res.Planar[i].Dist(want); e > 0.1 {
			t.Errorf("device %d error %g after outlier removal", i, e)
		}
	}
}

func TestOutlierSearchRespectsRealizabilityGate(t *testing.T) {
	// 4 devices fully connected (6 links): dropping ANY link leaves 5
	// links = minimally rigid but NOT uniquely realizable, so Algorithm 1
	// must refuse to drop and return the stressed solution.
	truth := dockTruth[:4]
	in := scenario(truth)
	in.D[0][2] += 9
	in.D[2][0] = in.D[0][2]
	res, err := Localize(context.Background(), in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 0 {
		t.Errorf("dropped %v despite realizability gate", res.Dropped)
	}
	if !res.OutlierSearch {
		t.Error("search should have run (and found nothing droppable)")
	}
}

func TestAlignToLeader(t *testing.T) {
	pos := []geom.Vec2{{X: 3, Y: 4}, {X: 3, Y: 9}, {X: 8, Y: 4}}
	out := AlignToLeader(pos, 0) // point along +x
	if out[0].Norm() > 1e-12 {
		t.Error("leader not at origin")
	}
	if math.Abs(out[1].Y) > 1e-9 || out[1].X < 0 {
		t.Errorf("device 1 at %+v, want on +x axis", out[1])
	}
	// Distances preserved.
	if math.Abs(out[1].Dist(out[2])-pos[1].Dist(pos[2])) > 1e-9 {
		t.Error("alignment distorted distances")
	}
	if got := AlignToLeader(nil, 0); len(got) != 0 {
		t.Error("nil input should give empty output")
	}
	single := AlignToLeader([]geom.Vec2{{X: 5, Y: 5}}, 1)
	if single[0].Norm() > 1e-12 {
		t.Error("single point should map to origin")
	}
}

func TestResolveFlipCorrectsMirroredInput(t *testing.T) {
	truth := dockTruth
	n := len(truth)
	planar := make([]geom.Vec2, n)
	for i, p := range truth {
		planar[i] = p.XY().Sub(truth[0].XY())
	}
	signs := make([]int, n)
	for i := 2; i < n; i++ {
		signs[i] = trueMicSign(truth, i)
	}
	// Mirror everything across the pointing line (the wrong candidate).
	wrong := make([]geom.Vec2, n)
	for i, p := range planar {
		wrong[i] = geom.ReflectAcross(p, planar[0], planar[1])
	}
	fixed, vote := ResolveFlip(wrong, signs, 0)
	if vote <= 0 {
		t.Fatalf("vote %d, want positive", vote)
	}
	for i := range planar {
		if e := fixed[i].Dist(planar[i]); e > 1e-9 {
			t.Errorf("device %d not unflipped (err %g)", i, e)
		}
	}
	// Already-correct input stays put.
	same, vote2 := ResolveFlip(planar, signs, 0)
	if vote2 <= 0 {
		t.Errorf("correct candidate vote %d", vote2)
	}
	for i := range planar {
		if same[i] != planar[i] {
			t.Error("correct candidate was flipped")
		}
	}
}

func TestResolveFlipSingleVoterMajority(t *testing.T) {
	// With one informative voter the decision follows that single sign —
	// the paper's 1-device setting (90.1% accuracy in their deployment;
	// errors come from multipath corrupting the sign, tested elsewhere).
	planar := []geom.Vec2{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 3, Y: -4}, {X: 6, Y: 2}}
	signs := []int{0, 0, 1, 0} // only device 2 votes: right side
	got, vote := ResolveFlip(planar, signs, 0)
	if vote != 1 {
		t.Errorf("vote %d", vote)
	}
	if got[2].Y != -4 {
		t.Error("candidate with device 2 on the right should win")
	}
	// Contradictory sign flips it.
	signs[2] = -1
	got, _ = ResolveFlip(planar, signs, 0)
	if got[2].Y != 4 {
		t.Error("candidate should flip when the sign says left")
	}
}

func TestResolveFlipAbstentions(t *testing.T) {
	planar := []geom.Vec2{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 3, Y: -4}}
	got, vote := ResolveFlip(planar, []int{0, 0, 0}, 0)
	if vote != 0 {
		t.Errorf("all-abstain vote %d", vote)
	}
	for i := range planar {
		if got[i] != planar[i] {
			t.Error("abstention should keep the unflipped candidate")
		}
	}
	// nil signs: passthrough.
	got, vote = ResolveFlip(planar, nil, 0)
	if vote != 0 || &got[0] == nil {
		t.Error("nil signs should pass through")
	}
}

func TestLocalizeNoisyProperty(t *testing.T) {
	// With bounded distance noise, localization error stays bounded and
	// flipping/rotation are always resolved correctly for well-spread
	// geometries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := []geom.Vec3{
			{X: 0, Y: 0, Z: 2 + rng.Float64()},
			{X: 5 + rng.Float64()*4, Y: rng.Float64()*4 - 2, Z: 1 + rng.Float64()*3},
			{X: rng.Float64()*30 - 5, Y: 5 + rng.Float64()*15, Z: 1 + rng.Float64()*4},
			{X: rng.Float64()*30 - 5, Y: -5 - rng.Float64()*15, Z: 1 + rng.Float64()*4},
			{X: 15 + rng.Float64()*10, Y: rng.Float64()*20 - 10, Z: 1 + rng.Float64()*4},
			{X: -10 - rng.Float64()*8, Y: rng.Float64()*16 - 8, Z: 1 + rng.Float64()*4},
		}
		in := scenario(truth)
		for i := range in.D {
			for j := i + 1; j < len(in.D); j++ {
				e := 0.4 * (2*rng.Float64() - 1)
				in.D[i][j] += e
				in.D[j][i] = in.D[i][j]
			}
		}
		res, err := Localize(context.Background(), in, DefaultConfig())
		if err != nil {
			return false
		}
		var worst float64
		for i := range truth {
			want := truth[i].Sub(truth[0]).XY()
			if e := res.Planar[i].Dist(want); e > worst {
				worst = e
			}
		}
		return worst < 3.0
	}
	// The 3 m bound is statistical: rare adversarial noise draws exceed it
	// without indicating a defect, so the input stream is pinned — the
	// property is checked over a fixed, representative sample instead of
	// a fresh time-seeded one per run (which flaked roughly once per
	// thirty runs on unlucky geometries).
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLocalize6(b *testing.B) {
	truth := []geom.Vec3{
		{X: 0, Y: 0, Z: 2}, {X: 7, Y: 1, Z: 3}, {X: 15, Y: -6, Z: 1},
		{X: 11, Y: 10, Z: 4}, {X: 22, Y: 2, Z: 2}, {X: 4, Y: -12, Z: 3},
	}
	in := scenario(truth)
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Localize(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalizeWithOutlier6(b *testing.B) {
	truth := []geom.Vec3{
		{X: 0, Y: 0, Z: 2}, {X: 7, Y: 1, Z: 3}, {X: 15, Y: -6, Z: 1},
		{X: 11, Y: 10, Z: 4}, {X: 22, Y: 2, Z: 2}, {X: 4, Y: -12, Z: 3},
	}
	in := scenario(truth)
	in.D[0][2] += 9
	in.D[2][0] = in.D[0][2]
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Localize(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
