// Package depth models the depth sensing of §3.1: hydrostatic
// pressure-to-depth conversion for phone barometers in waterproof pouches,
// and the dedicated dive-gauge of the smartwatch, with the error
// statistics measured in the paper (watch 0.15±0.11 m, phone 0.42±0.18 m).
package depth

import (
	"fmt"
	"math"
	"math/rand"
)

// Physical constants from the paper's conversion h = (P − P₀)/(ρg).
const (
	WaterDensity  = 997.0    // ρ, kg/m³ (fresh water)
	Gravity       = 9.81     // g, m/s²
	SeaLevelPaRef = 101325.0 // P₀, atmospheric pressure at sea level (Pa)
)

// PressureToDepth converts absolute pressure (Pa) to depth (m).
func PressureToDepth(pa float64) float64 {
	return (pa - SeaLevelPaRef) / (WaterDensity * Gravity)
}

// DepthToPressure is the inverse of PressureToDepth.
func DepthToPressure(depthM float64) float64 {
	return SeaLevelPaRef + depthM*WaterDensity*Gravity
}

// Sensor simulates a depth sensor with bias and noise, reproducing the
// Fig. 13b error statistics.
type Sensor struct {
	// BiasM is a per-unit constant offset (drawn once per device).
	BiasM float64
	// NoiseStdM is per-reading Gaussian noise.
	NoiseStdM float64
	// ScaleErr is a multiplicative error (1 + ε) on true depth.
	ScaleErr float64
	// QuantizeM rounds readings (0 disables).
	QuantizeM float64
}

// NewWatchGauge returns an Apple-Watch-Ultra-class dive gauge: the paper
// measured 0.15 ± 0.11 m error across 0–9 m.
func NewWatchGauge(rng *rand.Rand) *Sensor {
	return &Sensor{
		BiasM:     0.10 * rng.NormFloat64(),
		NoiseStdM: 0.08,
		ScaleErr:  1 + 0.005*rng.NormFloat64(),
		QuantizeM: 0.01,
	}
}

// NewPhoneBarometer returns a pouch-enclosed phone pressure sensor: the
// pouch's trapped air pocket adds bias and the barometer is not built for
// water, giving the paper's 0.42 ± 0.18 m error.
func NewPhoneBarometer(rng *rand.Rand) *Sensor {
	return &Sensor{
		BiasM:     0.35 + 0.15*rng.NormFloat64(),
		NoiseStdM: 0.12,
		ScaleErr:  1 + 0.02*rng.NormFloat64(),
		QuantizeM: 0.01,
	}
}

// Read returns a simulated measurement of the true depth.
func (s *Sensor) Read(trueDepthM float64, rng *rand.Rand) float64 {
	v := trueDepthM*s.ScaleErr + s.BiasM + s.NoiseStdM*rng.NormFloat64()
	if s.QuantizeM > 0 {
		v = math.Round(v/s.QuantizeM) * s.QuantizeM
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Quantize rounds a depth to the 0.2 m protocol resolution (§2.4) and
// clamps to the representable [0, 40] m range.
func Quantize(depthM float64) (float64, error) {
	if math.IsNaN(depthM) {
		return 0, fmt.Errorf("depth: NaN reading")
	}
	if depthM < 0 {
		depthM = 0
	}
	if depthM > 40 {
		return 40, fmt.Errorf("depth: %g m beyond the 40 m dive limit", depthM)
	}
	return math.Round(depthM/0.2) * 0.2, nil
}
