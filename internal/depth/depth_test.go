package depth

import (
	"math"
	"math/rand"
	"testing"
)

func TestPressureDepthRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 1, 5.5, 9, 40} {
		p := DepthToPressure(d)
		if got := PressureToDepth(p); math.Abs(got-d) > 1e-9 {
			t.Errorf("roundtrip %g -> %g", d, got)
		}
	}
	// 1 m of water is ~9.78 kPa above atmospheric.
	if p := DepthToPressure(1) - SeaLevelPaRef; math.Abs(p-9780.57) > 1 {
		t.Errorf("1 m overpressure %g Pa", p)
	}
	if PressureToDepth(SeaLevelPaRef) != 0 {
		t.Error("surface should be depth 0")
	}
}

func TestSensorErrorStatistics(t *testing.T) {
	// Reproduce the Fig. 13b protocol: 0–9 m in 1 m steps, repeated
	// across devices, mean absolute error within the paper's bands.
	rng := rand.New(rand.NewSource(1))
	meanAbsErr := func(mk func(*rand.Rand) *Sensor) float64 {
		var sum float64
		var count int
		for dev := 0; dev < 30; dev++ {
			s := mk(rng)
			for d := 0.0; d <= 9; d++ {
				for rep := 0; rep < 5; rep++ {
					sum += math.Abs(s.Read(d, rng) - d)
					count++
				}
			}
		}
		return sum / float64(count)
	}
	watch := meanAbsErr(NewWatchGauge)
	phone := meanAbsErr(NewPhoneBarometer)
	if watch < 0.05 || watch > 0.30 {
		t.Errorf("watch mean error %.3f m, want ≈0.15", watch)
	}
	if phone < 0.25 || phone > 0.60 {
		t.Errorf("phone mean error %.3f m, want ≈0.42", phone)
	}
	if phone <= watch {
		t.Error("phone must be worse than the dive gauge")
	}
}

func TestSensorNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewPhoneBarometer(rng)
	s.BiasM = -2
	for i := 0; i < 100; i++ {
		if v := s.Read(0.1, rng); v < 0 {
			t.Fatalf("negative reading %g", v)
		}
	}
}

func TestQuantize(t *testing.T) {
	got, err := Quantize(7.33)
	if err != nil || math.Abs(got-7.4) > 1e-12 {
		t.Errorf("Quantize(7.33) = %g, %v", got, err)
	}
	got, err = Quantize(-0.5)
	if err != nil || got != 0 {
		t.Errorf("negative clamps to 0, got %g", got)
	}
	if _, err := Quantize(45); err == nil {
		t.Error("beyond 40 m should error")
	}
	if _, err := Quantize(math.NaN()); err == nil {
		t.Error("NaN should error")
	}
	// Resolution steps are exactly 0.2 m.
	a, _ := Quantize(3.0)
	b, _ := Quantize(3.19)
	if math.Abs(a-3.0) > 1e-12 || math.Abs(b-3.2) > 1e-12 {
		t.Errorf("steps: %g, %g", a, b)
	}
}
