// Package device describes the smart devices carried by divers: microphone
// geometry, speaker placement, underwater frequency response and clock
// quality. The catalog mirrors the hardware used in the paper's evaluation
// (Samsung Galaxy S9, Google Pixel, OnePlus, Apple Watch Ultra).
package device

import (
	"fmt"
	"math"

	"uwpos/internal/geom"
)

// Model identifies a hardware model with its acoustic personality.
type Model struct {
	Name string

	// MicOffsets are microphone positions in the device body frame,
	// metres. The body frame has +x out of the speaker-end of the device;
	// orientation maps it into the world frame. Phones: bottom mic near
	// the speaker, top mic ~16 cm away. Watch: 3-mic triangle.
	MicOffsets []geom.Vec3

	// SpeakerOffset is the speaker position in the body frame.
	SpeakerOffset geom.Vec3

	// BandLowHz/BandHighHz bound the usable underwater response.
	BandLowHz, BandHighHz float64

	// TXEfficiency scales transmitted amplitude (relative to S9 = 1).
	TXEfficiency float64

	// RXSensitivity scales microphone gain per mic (len == len(MicOffsets)).
	RXSensitivity []float64

	// MicNoiseRMS is the per-mic self-noise floor (hardware noise profile,
	// different per mic as §2.2 notes).
	MicNoiseRMS []float64

	// ClockSkewPPM is the typical magnitude of the audio clock error.
	ClockSkewPPM float64

	// BatteryWh is usable battery energy, for the §3.1 battery study.
	BatteryWh float64
}

// Validate checks internal consistency.
func (m *Model) Validate() error {
	if len(m.MicOffsets) == 0 {
		return fmt.Errorf("device %s: no microphones", m.Name)
	}
	if len(m.RXSensitivity) != len(m.MicOffsets) || len(m.MicNoiseRMS) != len(m.MicOffsets) {
		return fmt.Errorf("device %s: per-mic parameter lengths disagree", m.Name)
	}
	if m.BandHighHz <= m.BandLowHz {
		return fmt.Errorf("device %s: invalid band", m.Name)
	}
	return nil
}

// MicSeparation returns the largest pairwise mic distance — the d in the
// dual-mic direct-path constraint |n−m| ≤ d·fs/c.
func (m *Model) MicSeparation() float64 {
	var best float64
	for i := 0; i < len(m.MicOffsets); i++ {
		for j := i + 1; j < len(m.MicOffsets); j++ {
			if d := m.MicOffsets[i].Dist(m.MicOffsets[j]); d > best {
				best = d
			}
		}
	}
	return best
}

// GalaxyS9 returns the primary evaluation phone: two mics 16 cm apart,
// speaker at the bottom edge.
func GalaxyS9() *Model {
	return &Model{
		Name: "galaxy-s9",
		MicOffsets: []geom.Vec3{
			{X: 0.00, Y: 0, Z: 0},  // bottom mic, next to the speaker
			{X: -0.16, Y: 0, Z: 0}, // top mic
		},
		SpeakerOffset: geom.Vec3{X: 0.01, Y: 0, Z: 0},
		BandLowHz:     1000,
		BandHighHz:    5000,
		TXEfficiency:  1.0,
		RXSensitivity: []float64{1.0, 0.9},
		MicNoiseRMS:   []float64{0.0010, 0.0014},
		ClockSkewPPM:  40,
		BatteryWh:     11.55,
	}
}

// Pixel returns the Google Pixel model: slightly weaker TX underwater.
func Pixel() *Model {
	m := GalaxyS9()
	m.Name = "pixel"
	m.TXEfficiency = 0.85
	m.RXSensitivity = []float64{0.95, 0.85}
	m.MicNoiseRMS = []float64{0.0012, 0.0015}
	m.ClockSkewPPM = 60
	m.BatteryWh = 10.7
	return m
}

// OnePlus returns the OnePlus model: stronger speaker, noisier mics.
func OnePlus() *Model {
	m := GalaxyS9()
	m.Name = "oneplus"
	m.TXEfficiency = 1.1
	m.RXSensitivity = []float64{1.0, 0.95}
	m.MicNoiseRMS = []float64{0.0016, 0.0018}
	m.ClockSkewPPM = 55
	m.BatteryWh = 12.3
	return m
}

// WatchUltra returns the Apple Watch Ultra: a compact 3-mic triangle and a
// small speaker, smaller battery.
func WatchUltra() *Model {
	return &Model{
		Name: "watch-ultra",
		MicOffsets: []geom.Vec3{
			{X: 0.000, Y: 0.000, Z: 0},
			{X: -0.035, Y: 0.010, Z: 0},
			{X: -0.020, Y: -0.018, Z: 0},
		},
		SpeakerOffset: geom.Vec3{X: 0.005, Y: 0, Z: 0},
		BandLowHz:     1000,
		BandHighHz:    5000,
		TXEfficiency:  0.6,
		RXSensitivity: []float64{1.0, 0.95, 0.9},
		MicNoiseRMS:   []float64{0.0011, 0.0012, 0.0013},
		ClockSkewPPM:  30,
		BatteryWh:     2.1,
	}
}

// ModelByName looks up a catalog model.
func ModelByName(name string) (*Model, error) {
	switch name {
	case "galaxy-s9":
		return GalaxyS9(), nil
	case "pixel":
		return Pixel(), nil
	case "oneplus":
		return OnePlus(), nil
	case "watch-ultra":
		return WatchUltra(), nil
	}
	return nil, fmt.Errorf("device: unknown model %q", name)
}

// Orientation is the device attitude in the world frame.
type Orientation struct {
	AzimuthRad float64 // rotation of the body +x axis around world z
	PolarRad   float64 // tilt of the body +x axis from horizontal (0 = level)
}

// DirectivityGain returns the TX/RX gain for sound leaving/arriving along
// the world-frame direction dir (unit vector from this device towards the
// peer), given the device orientation. At 1–5 kHz underwater the
// wavelength (0.3–1.5 m) dwarfs a phone, so directivity is mild: ~0 dB
// on-axis, −2 dB broadside, −4.4 dB directly behind — consistent with the
// paper's moderate orientation sensitivity (Fig. 14a medians 0.54–1.25 m,
// dominated by surface proximity rather than aperture gain).
func (o Orientation) DirectivityGain(dir geom.Vec3) float64 {
	// Body +x axis in world frame.
	cp := math.Cos(o.PolarRad)
	axis := geom.Vec3{
		X: math.Cos(o.AzimuthRad) * cp,
		Y: math.Sin(o.AzimuthRad) * cp,
		Z: -math.Sin(o.PolarRad), // polar tilt raises the axis (−z is up)
	}
	c := axis.Dot(dir.Normalize())
	// Weak cardioid: g = 0.8 + 0.2·cosθ → 1.0 on-axis, 0.8 broadside,
	// 0.6 behind.
	return 0.8 + 0.2*c
}

// MicWorldPositions places the model's microphones in the world frame for
// a device centered at pos with the given orientation (rotation about the
// vertical axis plus polar tilt in the vertical plane of the azimuth).
func (m *Model) MicWorldPositions(pos geom.Vec3, o Orientation) []geom.Vec3 {
	out := make([]geom.Vec3, len(m.MicOffsets))
	for i, off := range m.MicOffsets {
		out[i] = pos.Add(rotate(off, o))
	}
	return out
}

// SpeakerWorldPosition places the speaker in the world frame.
func (m *Model) SpeakerWorldPosition(pos geom.Vec3, o Orientation) geom.Vec3 {
	return pos.Add(rotate(m.SpeakerOffset, o))
}

func rotate(v geom.Vec3, o Orientation) geom.Vec3 {
	// Tilt about the body y axis (polar), then rotate about world z.
	cp, sp := math.Cos(o.PolarRad), math.Sin(o.PolarRad)
	tilted := geom.Vec3{X: v.X*cp + v.Z*sp, Y: v.Y, Z: -v.X*sp + v.Z*cp}
	ca, sa := math.Cos(o.AzimuthRad), math.Sin(o.AzimuthRad)
	return geom.Vec3{X: tilted.X*ca - tilted.Y*sa, Y: tilted.X*sa + tilted.Y*ca, Z: tilted.Z}
}
