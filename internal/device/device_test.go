package device

import (
	"math"
	"testing"

	"uwpos/internal/geom"
)

func TestCatalogValidates(t *testing.T) {
	for _, name := range []string{"galaxy-s9", "pixel", "oneplus", "watch-ultra"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("model %q reports name %q", name, m.Name)
		}
	}
	if _, err := ModelByName("nokia-3310"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Model{
		{Name: "nomics", BandLowHz: 1, BandHighHz: 2},
		{Name: "raggy", MicOffsets: []geom.Vec3{{}}, RXSensitivity: []float64{1, 2}, MicNoiseRMS: []float64{1}, BandLowHz: 1, BandHighHz: 2},
		{Name: "band", MicOffsets: []geom.Vec3{{}}, RXSensitivity: []float64{1}, MicNoiseRMS: []float64{1}, BandLowHz: 5, BandHighHz: 5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s should fail validation", m.Name)
		}
	}
}

func TestS9MicSeparation(t *testing.T) {
	// The paper uses d = 16 cm between the phone's bottom and top mics.
	if d := GalaxyS9().MicSeparation(); math.Abs(d-0.16) > 1e-9 {
		t.Errorf("S9 mic separation %g, want 0.16", d)
	}
	// Watch is compact: centimetres, an order of magnitude smaller.
	if d := WatchUltra().MicSeparation(); d > 0.05 {
		t.Errorf("watch mic separation %g too large", d)
	}
}

func TestDirectivityOrdering(t *testing.T) {
	o := Orientation{} // facing +x
	onAxis := o.DirectivityGain(geom.Vec3{X: 1})
	broadside := o.DirectivityGain(geom.Vec3{Y: 1})
	behind := o.DirectivityGain(geom.Vec3{X: -1})
	if !(onAxis > broadside && broadside > behind) {
		t.Errorf("directivity ordering broken: %g, %g, %g", onAxis, broadside, behind)
	}
	if math.Abs(onAxis-1) > 1e-12 {
		t.Errorf("on-axis gain %g, want 1", onAxis)
	}
	if behind <= 0 {
		t.Error("behind gain must stay positive (no perfect null)")
	}
}

func TestDirectivityAzimuthRotation(t *testing.T) {
	// Rotated 90°, the on-axis direction moves to +y.
	o := Orientation{AzimuthRad: math.Pi / 2}
	if g := o.DirectivityGain(geom.Vec3{Y: 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("rotated on-axis gain %g", g)
	}
}

func TestDirectivityFacingUp(t *testing.T) {
	// Polar 90°: axis points to the surface (−z).
	o := Orientation{PolarRad: math.Pi / 2}
	up := o.DirectivityGain(geom.Vec3{Z: -1})
	side := o.DirectivityGain(geom.Vec3{X: 1})
	if up <= side {
		t.Errorf("up-facing device should favour upward: %g vs %g", up, side)
	}
}

func TestMicWorldPositions(t *testing.T) {
	m := GalaxyS9()
	pos := geom.Vec3{X: 10, Y: 5, Z: 2}
	mics := m.MicWorldPositions(pos, Orientation{})
	if len(mics) != 2 {
		t.Fatal("mic count")
	}
	// Separation is rotation invariant.
	d0 := mics[0].Dist(mics[1])
	mics90 := m.MicWorldPositions(pos, Orientation{AzimuthRad: 1.23, PolarRad: 0.4})
	d1 := mics90[0].Dist(mics90[1])
	if math.Abs(d0-0.16) > 1e-9 || math.Abs(d1-0.16) > 1e-9 {
		t.Errorf("separations %g, %g; want 0.16", d0, d1)
	}
	// Azimuth rotation keeps depth unchanged.
	micsAz := m.MicWorldPositions(pos, Orientation{AzimuthRad: 2.1})
	for _, mp := range micsAz {
		if math.Abs(mp.Z-pos.Z) > 1e-12 {
			t.Error("azimuth rotation changed depth")
		}
	}
	// Polar tilt moves mic depth.
	micsTilt := m.MicWorldPositions(pos, Orientation{PolarRad: math.Pi / 2})
	if math.Abs(micsTilt[1].Z-pos.Z) < 1e-6 {
		t.Error("polar tilt should change the top-mic depth")
	}
}

func TestSpeakerWorldPosition(t *testing.T) {
	m := GalaxyS9()
	pos := geom.Vec3{X: 1, Y: 2, Z: 3}
	sp := m.SpeakerWorldPosition(pos, Orientation{})
	if math.Abs(sp.X-1.01) > 1e-12 || sp.Y != 2 || sp.Z != 3 {
		t.Errorf("speaker at %+v", sp)
	}
}

func TestModelsAreIndependentCopies(t *testing.T) {
	a := GalaxyS9()
	b := GalaxyS9()
	a.MicOffsets[0].X = 99
	if b.MicOffsets[0].X == 99 {
		t.Error("catalog returned shared state")
	}
	p := Pixel()
	if p.TXEfficiency == GalaxyS9().TXEfficiency {
		t.Error("pixel should differ from S9")
	}
}
