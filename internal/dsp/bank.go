package dsp

import "sync/atomic"

// MatcherBank groups several Matchers so one stream can be scanned for
// every template at far less than per-template cost. All templates share
// one overlap-save block grid sized for the longest template; each block
// of the stream is forward-transformed exactly once, and every template
// then pays only its pointwise multiply and inverse transform. With N
// templates that is 1+N half-transforms per block instead of 2N — the
// receiver scans the same audio for the ranging preamble, the calibration
// chirp and the baseline sweeps for roughly half the transform work.
//
// A bank is immutable after construction and safe for concurrent use:
// the one-shot scans only read the member matchers' cached spectra (each
// guarded inside Matcher), and every streaming session created by Stream
// or StreamNormalized owns its state exclusively.
type MatcherBank struct {
	ms     []*Matcher
	maxLen int // longest template, samples
	block  int // shared overlap-save FFT block length
	hop    int // valid lags per block: block - maxLen + 1
}

// NewMatcherBank builds a bank over the given matchers with the
// throughput-oriented block size (osBlockFactor × the longest template,
// ≈87% valid lags per block — the same sizing Matcher's own blocked path
// uses). It panics on an empty bank or an empty template — a bank exists
// to scan templates, and a zero-length template has no correlation
// defined.
func NewMatcherBank(ms ...*Matcher) *MatcherBank {
	return newMatcherBank(osBlockFactor, ms)
}

// NewMatcherBankLowLatency builds a bank with the latency-oriented block
// size the streaming sessions use (streamBlockFactor × the longest
// template): lags emerge after roughly one template length of input
// instead of seven, at ~1.5× the per-sample transform cost. This is the
// bank shape for live ingest pipelines, where emission latency bounds
// the end-to-end detection delay.
func NewMatcherBankLowLatency(ms ...*Matcher) *MatcherBank {
	return newMatcherBank(streamBlockFactor, ms)
}

// bankForwardCount counts shared forward block transforms across every
// MatcherBank scan and BankStream session in the process — the
// observable for "exactly one forward transform per block feeds every
// consumer" assertions (see BankForwardTransforms).
var bankForwardCount atomic.Uint64

// BankForwardTransforms returns the process-wide number of shared
// forward block transforms executed by MatcherBank one-shot scans and
// BankStream sessions since process start. Deltas around a scan measure
// how many forward FFTs the scan actually paid for; a shared-scan
// pipeline over N templates and C consumers advances it exactly once per
// block, independent of N and C.
func BankForwardTransforms() uint64 { return bankForwardCount.Load() }

func newMatcherBank(blockFactor int, ms []*Matcher) *MatcherBank {
	if len(ms) == 0 {
		panic("dsp: NewMatcherBank needs at least one matcher")
	}
	maxLen := 0
	for _, mt := range ms {
		if mt.TemplateLen() == 0 {
			panic("dsp: MatcherBank template is empty")
		}
		if l := mt.TemplateLen(); l > maxLen {
			maxLen = l
		}
	}
	block := NextPow2(blockFactor * maxLen)
	return &MatcherBank{
		ms:     append([]*Matcher(nil), ms...),
		maxLen: maxLen,
		block:  block,
		hop:    block - maxLen + 1,
	}
}

// Len returns the number of templates in the bank.
func (b *MatcherBank) Len() int { return len(b.ms) }

// Matcher returns the i-th member matcher.
func (b *MatcherBank) Matcher(i int) *Matcher { return b.ms[i] }

// BlockLen returns the shared overlap-save FFT block length.
func (b *MatcherBank) BlockLen() int { return b.block }

// CrossCorrelateAll computes the valid-lag cross-correlation of every
// template against x in one pass. out[i] has len(x)-len(template_i)+1
// lags, or is nil when x is shorter than that template.
func (b *MatcherBank) CrossCorrelateAll(x []float64) [][]float64 {
	return b.correlateAll(x, false, false)
}

// NormalizedCrossCorrelateAll is CrossCorrelateAll with every output
// normalized by template energy and local window energy (one shared
// prefix-sum pass serves all templates), so values lie in [-1, 1].
func (b *MatcherBank) NormalizedCrossCorrelateAll(x []float64) [][]float64 {
	return b.correlateAll(x, true, false)
}

// CrossCorrelateAllPooled is CrossCorrelateAll with results drawn from
// the package scratch pool; release each non-nil row with PutF64.
func (b *MatcherBank) CrossCorrelateAllPooled(x []float64) [][]float64 {
	return b.correlateAll(x, false, true)
}

// NormalizedCrossCorrelateAllPooled is NormalizedCrossCorrelateAll with
// pooled results; release each non-nil row with PutF64.
func (b *MatcherBank) NormalizedCrossCorrelateAllPooled(x []float64) [][]float64 {
	return b.correlateAll(x, true, true)
}

func (b *MatcherBank) correlateAll(x []float64, normalized, pooled bool) [][]float64 {
	outs := make([][]float64, len(b.ms))
	maxOut := 0
	for i, mt := range b.ms {
		n := len(x) - mt.TemplateLen() + 1
		if n <= 0 {
			continue // outs[i] stays nil, matching the one-shot contract
		}
		outs[i] = allocResult(n, pooled)
		if n > maxOut {
			maxOut = n
		}
	}
	if maxOut == 0 {
		return outs
	}
	hm := b.block / 2
	fxre := getF64Raw(hm)
	defer PutF64(fxre)
	fxim := getF64Raw(hm)
	defer PutF64(fxim)
	zre := getF64Raw(hm)
	defer PutF64(zre)
	zim := getF64Raw(hm)
	defer PutF64(zim)
	for p := 0; p < maxOut; p += b.hop {
		end := p + b.block
		if end > len(x) {
			end = len(x)
		}
		// One shared packed forward transform per block; each template then
		// pays only its fused spectrum fold and inverse (see rfft.go). The
		// shared spectrum stays in the kernel's permuted packed order the
		// whole time — the fold reads it without disturbing it.
		rfftPacked(fxre, fxim, x[p:end])
		bankForwardCount.Add(1)
		for i, out := range outs {
			if out == nil || p >= len(out) {
				continue
			}
			foldSpecMulTo(zre, zim, fxre, fxim, b.ms[i].spectrum(b.block), b.block)
			fftSoA(zre, zim, true)
			seg := out[p:]
			if len(seg) > b.hop {
				seg = seg[:b.hop]
			}
			interleaveScaled(seg, zre, zim, hm)
		}
	}
	if normalized {
		prefix := GetF64(len(x) + 1)
		defer PutF64(prefix)
		energyPrefix(prefix, x)
		for i, out := range outs {
			if out == nil {
				continue
			}
			normalizeWithPrefix(out, prefix, b.ms[i].TemplateLen(), b.ms[i].energy)
		}
	}
	return outs
}

// Stream opens an incremental scanning session over the bank: feed the
// stream chunk by chunk and collect each template's correlation lags as
// they become computable.
func (b *MatcherBank) Stream() *BankStream { return newBankStream(b, false) }

// StreamNormalized is Stream with window-energy normalization (outputs in
// [-1, 1], matching NormalizedCrossCorrelateAll).
func (b *MatcherBank) StreamNormalized() *BankStream { return newBankStream(b, true) }

// BankStream is an in-progress overlap-save scan of one stream against
// every template of a MatcherBank. Chunks of any length go in via Feed;
// newly computable correlation lags come out per template. Because blocks
// sit on a fixed absolute grid (multiples of the bank hop from stream
// start), the emitted lags are bit-for-bit identical for every chunk
// partition of the same stream — including the whole stream in one Feed,
// which is exactly what the bank's one-shot CrossCorrelateAll computes.
//
// State is O(block length): the session carries only the inter-block
// overlap, a rolling energy-prefix window, and per-template emission
// buffers. A session is single-stream and not safe for concurrent use;
// open one session per goroutine (sessions of one bank share the cached
// template spectra read-only, so concurrent sessions are safe).
type BankStream struct {
	bank       *MatcherBank
	normalized bool

	// buf holds stream samples from the current block start (a multiple
	// of hop); pre, when normalizing, holds the energy prefix sums
	// aligned with buf: pre[i] = Σ x[j]² for j < start+i, accumulated
	// with Neumaier compensation (preSum/preComp carry the running state
	// across chunks) so arbitrarily long sessions don't drift.
	buf             []float64
	pre             []float64
	preSum, preComp float64
	bufLen          int
	start           int // absolute stream index of buf[0]
	fed             int // total samples consumed

	emit [][]float64 // per-template emission buffers, reused across calls

	work       []float64 // per-template lag staging before emit append
	fxre, fxim []float64 // shared block spectrum, packed permuted order
	zre, zim   []float64 // per-template fold output / inverse scratch

	flushed bool
}

func newBankStream(b *MatcherBank, normalized bool) *BankStream {
	s := &BankStream{
		bank:       b,
		normalized: normalized,
		buf:        GetF64(b.block),
		work:       getF64Raw(b.block),
		fxre:       getF64Raw(b.block / 2),
		fxim:       getF64Raw(b.block / 2),
		zre:        getF64Raw(b.block / 2),
		zim:        getF64Raw(b.block / 2),
		emit:       make([][]float64, len(b.ms)),
	}
	if normalized {
		s.pre = GetF64(b.block + 1)
	}
	return s
}

// Fed returns the number of stream samples consumed so far.
func (s *BankStream) Fed() int { return s.fed }

// Feed consumes one chunk and returns, per template, the correlation lags
// that became computable. Rows alias session-owned buffers: they are
// valid until the next Feed or Flush call and must be copied to persist.
// All rows have equal length during feeding (whole blocks only); the
// ragged per-template tails arrive at Flush.
func (s *BankStream) Feed(chunk []float64) [][]float64 {
	if s.flushed {
		panic("dsp: BankStream.Feed after Flush")
	}
	s.grow(len(chunk))
	copy(s.buf[s.bufLen:], chunk)
	if s.normalized {
		sum, comp := s.preSum, s.preComp
		for i, v := range chunk {
			sum, comp = neumaierAdd(sum, comp, v*v)
			s.pre[s.bufLen+1+i] = sum + comp
		}
		s.preSum, s.preComp = sum, comp
	}
	s.bufLen += len(chunk)
	s.fed += len(chunk)
	for i := range s.emit {
		s.emit[i] = s.emit[i][:0]
	}
	for s.bufLen >= s.bank.block {
		s.runBlock(func(int) int { return s.bank.hop })
		copy(s.buf, s.buf[s.bank.hop:s.bufLen])
		if s.normalized {
			copy(s.pre, s.pre[s.bank.hop:s.bufLen+1])
		}
		s.bufLen -= s.bank.hop
		s.start += s.bank.hop
	}
	return s.emit
}

// Flush marks end of stream, computes every remaining lag from the
// zero-padded tail blocks and returns them per template (rows may have
// different lengths; a template longer than the whole stream yields an
// empty row). The session's scratch returns to the pool; only the
// returned rows stay valid, until the session is garbage collected.
func (s *BankStream) Flush() [][]float64 {
	if s.flushed {
		panic("dsp: BankStream.Flush after Flush")
	}
	s.flushed = true
	for i := range s.emit {
		s.emit[i] = s.emit[i][:0]
	}
	for {
		more := false
		for _, mt := range s.bank.ms {
			if s.fed-mt.TemplateLen()+1 > s.start {
				more = true
			}
		}
		if !more {
			break
		}
		s.runBlock(func(i int) int {
			take := s.fed - s.bank.ms[i].TemplateLen() + 1 - s.start
			if take > s.bank.hop {
				take = s.bank.hop
			}
			return take
		})
		adv := s.bank.hop
		if adv > s.bufLen {
			adv = s.bufLen
		}
		copy(s.buf, s.buf[adv:s.bufLen])
		if s.normalized {
			copy(s.pre, s.pre[adv:s.bufLen+1])
		}
		s.bufLen -= adv
		s.start += s.bank.hop
	}
	PutF64(s.buf)
	PutF64(s.work)
	PutF64(s.fxre)
	PutF64(s.fxim)
	PutF64(s.zre)
	PutF64(s.zim)
	if s.pre != nil {
		PutF64(s.pre)
	}
	s.buf, s.work, s.pre = nil, nil, nil
	s.fxre, s.fxim, s.zre, s.zim = nil, nil, nil, nil
	return s.emit
}

// runBlock transforms the current block (buffered samples zero-padded to
// the block length) once and appends take(i) lags to each template's
// emission buffer. take(i) ≤ hop; non-positive takes skip the template's
// inverse transform entirely.
func (s *BankStream) runBlock(take func(i int) int) {
	n := s.bufLen
	if n > s.bank.block {
		n = s.bank.block
	}
	hm := s.bank.block / 2
	rfftPacked(s.fxre, s.fxim, s.buf[:n])
	bankForwardCount.Add(1)
	for i, mt := range s.bank.ms {
		t := take(i)
		if t <= 0 {
			continue
		}
		foldSpecMulTo(s.zre, s.zim, s.fxre, s.fxim, mt.spectrum(s.bank.block), s.bank.block)
		fftSoA(s.zre, s.zim, true)
		interleaveScaled(s.work[:t], s.zre, s.zim, hm)
		if s.normalized {
			normalizeWithPrefix(s.work[:t], s.pre, mt.TemplateLen(), mt.energy)
		}
		s.emit[i] = append(s.emit[i], s.work[:t]...)
	}
}

// grow makes room for n more samples (and prefix entries) in the session
// buffers, moving up a pool size class when a large chunk needs it. The
// prefix array holds one entry more than the sample buffer, so its
// capacity is checked separately: the pool's power-of-two classes put the
// two buffers in the same class exactly when need+1 crosses a boundary.
func (s *BankStream) grow(n int) {
	need := s.bufLen + n
	if need <= cap(s.buf) && (!s.normalized || need+1 <= cap(s.pre)) {
		s.buf = s.buf[:cap(s.buf)]
		if s.normalized {
			s.pre = s.pre[:cap(s.pre)]
		}
		return
	}
	nb := GetF64(need)
	copy(nb, s.buf[:s.bufLen])
	PutF64(s.buf)
	s.buf = nb
	if s.normalized {
		np := GetF64(need + 1)
		copy(np, s.pre[:s.bufLen+1])
		PutF64(s.pre)
		s.pre = np
	}
}
