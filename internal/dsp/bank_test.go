package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func bankOf(r *rand.Rand, lens ...int) *MatcherBank {
	ms := make([]*Matcher, len(lens))
	for i, n := range lens {
		ms[i] = NewMatcher(randReal(r, n))
	}
	return NewMatcherBank(ms...)
}

// TestMatcherBankMatchesSingleScans checks the shared-forward-FFT batch
// scan against each member matcher's own one-shot correlation.
func TestMatcherBankMatchesSingleScans(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for _, lens := range [][]int{
		{256, 256, 256},
		{2048, 1000, 300},
		{100, 9840, 2048},
		{700},
	} {
		b := bankOf(r, lens...)
		for _, nx := range []int{12000, 40000} {
			x := randReal(r, nx)
			raw := b.CrossCorrelateAll(x)
			norm := b.NormalizedCrossCorrelateAll(x)
			for i := 0; i < b.Len(); i++ {
				mt := b.Matcher(i)
				wantRaw := mt.CrossCorrelate(x)
				wantNorm := mt.NormalizedCrossCorrelate(x)
				if len(raw[i]) != len(wantRaw) {
					t.Fatalf("lens=%v nx=%d t%d: raw length %d vs %d", lens, nx, i, len(raw[i]), len(wantRaw))
				}
				for k := range wantRaw {
					if math.Abs(raw[i][k]-wantRaw[k]) > 1e-9*(1+math.Abs(wantRaw[k])) {
						t.Fatalf("lens=%v nx=%d t%d: raw lag %d: %g vs %g", lens, nx, i, k, raw[i][k], wantRaw[k])
					}
					if math.Abs(norm[i][k]-wantNorm[k]) > 1e-9 {
						t.Fatalf("lens=%v nx=%d t%d: normalized lag %d: %g vs %g", lens, nx, i, k, norm[i][k], wantNorm[k])
					}
				}
			}
		}
	}
}

// TestBankStreamMatchesOneShot checks the streaming session is
// bit-identical to the bank's own one-shot scan for arbitrary chunk
// partitions — both run the same absolute block grid.
func TestBankStreamMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	b := bankOf(r, 512, 2000, 128)
	for _, nx := range []int{500, 5000, 30000} {
		x := randReal(r, nx)
		for _, normalized := range []bool{false, true} {
			var want [][]float64
			if normalized {
				want = b.NormalizedCrossCorrelateAll(x)
			} else {
				want = b.CrossCorrelateAll(x)
			}
			for trial := 0; trial < 8; trial++ {
				got := make([][]float64, b.Len())
				var s *BankStream
				if normalized {
					s = b.StreamNormalized()
				} else {
					s = b.Stream()
				}
				collect := func(rows [][]float64) {
					for i, row := range rows {
						got[i] = append(got[i], row...)
					}
				}
				prev := 0
				for _, c := range randomCuts(r, nx) {
					collect(s.Feed(x[prev:c]))
					prev = c
				}
				collect(s.Feed(x[prev:]))
				collect(s.Flush())
				for i := range got {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("nx=%d norm=%v t%d: length %d vs %d", nx, normalized, i, len(got[i]), len(want[i]))
					}
					for k := range got[i] {
						if got[i][k] != want[i][k] {
							t.Fatalf("nx=%d norm=%v t%d lag %d: stream %v vs one-shot %v", nx, normalized, i, k, got[i][k], want[i][k])
						}
					}
				}
			}
		}
	}
}

func TestMatcherBankShortStream(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	b := bankOf(r, 100, 400)
	x := randReal(r, 200) // long enough for template 0 only
	outs := b.CrossCorrelateAll(x)
	if len(outs[0]) != 101 {
		t.Fatalf("template 0 got %d lags, want 101", len(outs[0]))
	}
	if outs[1] != nil {
		t.Fatalf("template longer than stream must yield nil, got %d lags", len(outs[1]))
	}
	s := b.Stream()
	s.Feed(x)
	rows := s.Flush()
	if len(rows[0]) != 101 || len(rows[1]) != 0 {
		t.Fatalf("stream rows %d/%d, want 101/0", len(rows[0]), len(rows[1]))
	}
}

func TestMatcherBankPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty bank":     func() { NewMatcherBank() },
		"empty template": func() { NewMatcherBank(NewMatcher(nil)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestMatcherBankConcurrentSessions mirrors the PR 3 concurrent-table
// tests for the engine-worker shape: one shared bank (shared cached
// template spectra), one independent streaming session per goroutine,
// plus concurrent one-shot scans. Run under -race in CI.
func TestMatcherBankConcurrentSessions(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	b := bankOf(r, 300, 900, 128)
	x := randReal(r, 20000)
	want := b.NormalizedCrossCorrelateAll(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				got := b.NormalizedCrossCorrelateAll(x)
				for i := range got {
					for k := range got[i] {
						if got[i][k] != want[i][k] {
							t.Errorf("one-shot diverged under concurrency (t%d lag %d)", i, k)
							return
						}
					}
				}
				return
			}
			s := b.StreamNormalized()
			got := make([][]float64, b.Len())
			for off := 0; off < len(x); off += 1000 + 37*g {
				end := off + 1000 + 37*g
				if end > len(x) {
					end = len(x)
				}
				for i, row := range s.Feed(x[off:end]) {
					got[i] = append(got[i], row...)
				}
			}
			for i, row := range s.Flush() {
				got[i] = append(got[i], row...)
			}
			for i := range got {
				if len(got[i]) != len(want[i]) {
					t.Errorf("session %d: t%d length %d vs %d", g, i, len(got[i]), len(want[i]))
					return
				}
				for k := range got[i] {
					if got[i][k] != want[i][k] {
						t.Errorf("session %d diverged (t%d lag %d)", g, i, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkMatcherBank3 scans a 2 s stream for three preamble-scale
// templates in one bank pass; BenchmarkMatcherBank3Separate is the same
// work as three independent matcher scans. The bank must come in
// measurably under 3× a single scan (one shared forward transform per
// block instead of three).
func BenchmarkMatcherBank3(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randReal(r, 88200)
	bank := bankOf(r, 9840, 9840, 2048)
	for _, row := range bank.NormalizedCrossCorrelateAllPooled(x) {
		PutF64(row) // warm spectra
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range bank.NormalizedCrossCorrelateAllPooled(x) {
			PutF64(row)
		}
	}
}

func BenchmarkMatcherBank3Separate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randReal(r, 88200)
	bank := bankOf(r, 9840, 9840, 2048)
	for i := 0; i < bank.Len(); i++ {
		PutF64(bank.Matcher(i).NormalizedCrossCorrelatePooled(x)) // warm spectra
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < bank.Len(); k++ {
			PutF64(bank.Matcher(k).NormalizedCrossCorrelatePooled(x))
		}
	}
}
