package dsp

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the three layers the kernel rework touched: the
// complex pow2 transform (stage ladder), the fused permuted-domain
// spectrum fold (the per-template cost in Matcher/MatcherBank), and the
// rolling compensated normalization pass. CI tracks these alongside the
// end-to-end correlation benchmarks to localize regressions to a layer.

func BenchmarkFFTPow2(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			x := randComplex(rand.New(rand.NewSource(1)), n)
			work := make([]complex128, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, x)
				FFT(work)
			}
		})
	}
}

func BenchmarkSpectrumMultiply(b *testing.B) {
	// The fold at the Matcher hot-path size: padded length 2^17, packed
	// spectrum 2^16 — one fused untangle·multiply·retangle pass.
	const m = 1 << 17
	hm := m / 2
	r := rand.New(rand.NewSource(1))
	mt := NewMatcher(randReal(r, 9840))
	fs := mt.spectrum(m)
	zre, zim := randReal(r, hm), randReal(r, hm)
	dre, dim := make([]float64, hm), make([]float64, hm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		foldSpecMulTo(dre, dim, zre, zim, fs, m)
	}
}

func BenchmarkNormalizeFold(b *testing.B) {
	// The single rolling-pass window-energy normalization over a 20 s
	// stream at the preamble's template length.
	const n, hlen = 1 << 20, 9840
	r := rand.New(rand.NewSource(1))
	x := randReal(r, n)
	src := randReal(r, n-hlen+1)
	work := make([]float64, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		normalizeByWindowEnergy(work, x, hlen, 3.7)
	}
}
