package dsp

import (
	"math"
)

// directCorrMin is the direct/FFT crossover: templates shorter than this
// correlate faster with the O(len(x)·len(h)) sliding dot product than
// with padded transforms. Shared by CrossCorrelate and Matcher so both
// pick identical paths for identical shapes.
const directCorrMin = 64

// CrossCorrelate computes the full linear cross-correlation
//
//	r[k] = sum_n x[n+k] * h[n],   k in [0, len(x)-len(h)]
//
// i.e. the sliding inner product of the template h against x ("valid"
// correlation lags only). It picks the FFT path when it pays off.
// The result has length len(x)-len(h)+1; it returns nil when len(h) > len(x)
// or either input is empty.
//
// Callers that correlate the same h against many streams should build a
// Matcher instead: it caches the template spectrum across calls.
func CrossCorrelate(x, h []float64) []float64 {
	return crossCorrelate(x, h, false)
}

// CrossCorrelatePooled is CrossCorrelate with the result drawn from the
// package scratch pool: callers that only scan the correlation (peak
// picking) and then discard it release the buffer with PutF64 instead of
// leaving a stream-sized slice to the GC every call.
func CrossCorrelatePooled(x, h []float64) []float64 {
	return crossCorrelate(x, h, true)
}

func crossCorrelate(x, h []float64, pooled bool) []float64 {
	if len(h) == 0 || len(x) == 0 || len(h) > len(x) {
		return nil
	}
	if len(h) < directCorrMin {
		return xcorrDirect(x, h, pooled)
	}
	return xcorrFFT(x, h, pooled)
}

// allocResult picks the result allocation strategy. Pooled buffers come
// zeroed from GetF64 and are fully overwritten by every correlation path.
func allocResult(n int, pooled bool) []float64 {
	if pooled {
		return GetF64(n)
	}
	return make([]float64, n)
}

func xcorrDirect(x, h []float64, pooled bool) []float64 {
	n := len(x) - len(h) + 1
	out := allocResult(n, pooled)
	for k := 0; k < n; k++ {
		var s float64
		for n2, hv := range h {
			s += x[k+n2] * hv
		}
		out[k] = s
	}
	return out
}

// rfftApplySpectrum multiplies pad by a precomputed half spectrum in the
// frequency domain, in place: forward RFFT of pad, pointwise multiply by
// spec (len(pad)/2+1 bins), inverse back into pad. This is the one
// circular-filtering core shared by CrossCorrelate, Convolve, and both
// Matcher paths; pad carries the zero-padding invariant, spec carries
// any conjugation.
func rfftApplySpectrum(pad []float64, spec []complex128) {
	fx := GetC128(len(pad)/2 + 1)
	defer PutC128(fx)
	RFFT(fx, pad)
	for i, hv := range spec {
		fx[i] *= hv
	}
	IRFFT(pad, fx)
}

// xcorrFFT correlates via two half-cost real forward transforms, a
// pointwise multiply against the conjugated template spectrum, and one
// inverse real transform of the padded length.
func xcorrFFT(x, h []float64, pooled bool) []float64 {
	m := NextPow2(len(x) + len(h) - 1)
	pad := GetF64(m)
	defer PutF64(pad)
	fh := GetC128(m/2 + 1)
	defer PutC128(fh)
	copy(pad, h)
	RFFT(fh, pad)
	for i, v := range fh {
		fh[i] = complex(real(v), -imag(v)) // conj(H)
	}
	// len(h) <= len(x) (caller-checked), so copying x fully overwrites
	// h's samples and the zeroed tail beyond len(x) is untouched.
	copy(pad, x)
	rfftApplySpectrum(pad, fh)
	out := allocResult(len(x)-len(h)+1, pooled)
	copy(out, pad)
	return out
}

// NormalizedCrossCorrelate computes cross-correlation normalized by the
// template energy and the local window energy of x, so the output lies in
// [-1, 1] regardless of incoming signal scale. Windows of (near-)zero energy
// yield 0. Length is len(x)-len(h)+1.
func NormalizedCrossCorrelate(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, false)
}

// NormalizedCrossCorrelatePooled is NormalizedCrossCorrelate with the
// result drawn from the package scratch pool; release with PutF64.
func NormalizedCrossCorrelatePooled(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, true)
}

func normalizedCrossCorrelate(x, h []float64, pooled bool) []float64 {
	r := crossCorrelate(x, h, pooled)
	if r == nil {
		return nil
	}
	var eh float64
	for _, v := range h {
		eh += v * v
	}
	normalizeByWindowEnergy(r, x, len(h), eh)
	return r
}

// SegmentCorrelation returns the normalized correlation coefficient between
// two equal-length segments (Pearson-style without mean removal, matching
// matched-filter practice). Returns 0 when either segment has no energy.
func SegmentCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sab, saa, sbb float64
	for i := range a {
		sab += a[i] * b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// AutoCorrelate computes the biased sample autocorrelation of x for lags
// [0, maxLag]. Lag 0 is the signal energy / N. Large len(x)·maxLag
// products switch to an FFT power-spectrum path, mirroring
// CrossCorrelate's direct/FFT split.
func AutoCorrelate(x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	// Crossover: direct is O(len(x)·maxLag) multiplies; the FFT path is
	// three half-length transforms of NextPow2(len(x)+maxLag). Short lag
	// ranges stay direct regardless of len(x) — the padded transform
	// would process the whole signal to produce a handful of lags.
	if maxLag >= directCorrMin && len(x)*(maxLag+1) >= 1<<18 {
		autoCorrFFT(x, out)
		return out
	}
	n := float64(len(x))
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < len(x); i++ {
			s += x[i] * x[i+lag]
		}
		out[lag] = s / n
	}
	return out
}

// autoCorrFFT fills out (len maxLag+1) with the biased autocorrelation of
// x via the power spectrum: pad to kill circular wrap over the requested
// lags, transform, square magnitudes, invert.
func autoCorrFFT(x, out []float64) {
	m := NextPow2(len(x) + len(out))
	pad := GetF64(m)
	defer PutF64(pad)
	spec := GetC128(m/2 + 1)
	defer PutC128(spec)
	copy(pad, x)
	RFFT(spec, pad)
	for i, v := range spec {
		spec[i] = complex(real(v)*real(v)+imag(v)*imag(v), 0)
	}
	IRFFT(pad, spec)
	n := float64(len(x))
	for lag := range out {
		out[lag] = pad[lag] / n
	}
}

// ComplexConvolve computes the circular convolution of two equal-length
// complex vectors using the FFT. Both inputs are left unmodified.
// NewPlan draws on the package Bluestein cache, so repeated calls at one
// length skip the chirp setup entirely.
func ComplexConvolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: ComplexConvolve length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil
	}
	p := NewPlan(n)
	fa := append([]complex128(nil), a...)
	fb := GetC128(n)
	defer PutC128(fb)
	copy(fb, b)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	return fa
}

// Convolve computes the full linear convolution of x and k
// (length len(x)+len(k)-1) via half-cost real transforms.
func Convolve(x, k []float64) []float64 {
	if len(x) == 0 || len(k) == 0 {
		return nil
	}
	m := NextPow2(len(x) + len(k) - 1)
	pad := GetF64(m)
	defer PutF64(pad)
	fk := GetC128(m/2 + 1)
	defer PutC128(fk)
	copy(pad, k)
	RFFT(fk, pad)
	for i := copy(pad, x); i < len(k); i++ {
		pad[i] = 0 // clear k's tail when k is longer than x
	}
	rfftApplySpectrum(pad, fk)
	out := make([]float64, len(x)+len(k)-1)
	copy(out, pad)
	return out
}
