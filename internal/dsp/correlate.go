package dsp

import (
	"math"
	"math/cmplx"
)

// CrossCorrelate computes the full linear cross-correlation
//
//	r[k] = sum_n x[n+k] * h[n],   k in [0, len(x)-len(h)]
//
// i.e. the sliding inner product of the template h against x ("valid"
// correlation lags only). It picks the FFT path when it pays off.
// The result has length len(x)-len(h)+1; it returns nil when len(h) > len(x)
// or either input is empty.
func CrossCorrelate(x, h []float64) []float64 {
	return crossCorrelate(x, h, false)
}

// CrossCorrelatePooled is CrossCorrelate with the result drawn from the
// package scratch pool: callers that only scan the correlation (peak
// picking) and then discard it release the buffer with PutF64 instead of
// leaving a stream-sized slice to the GC every call.
func CrossCorrelatePooled(x, h []float64) []float64 {
	return crossCorrelate(x, h, true)
}

func crossCorrelate(x, h []float64, pooled bool) []float64 {
	if len(h) == 0 || len(x) == 0 || len(h) > len(x) {
		return nil
	}
	// Cost heuristic: direct is O(len(x)*len(h)); FFT is ~3 transforms of
	// the padded length. Small templates are faster directly.
	if len(h) < 64 {
		return xcorrDirect(x, h, pooled)
	}
	return xcorrFFT(x, h, pooled)
}

// allocResult picks the result allocation strategy. Pooled buffers come
// zeroed from GetF64 and are fully overwritten by every correlation path.
func allocResult(n int, pooled bool) []float64 {
	if pooled {
		return GetF64(n)
	}
	return make([]float64, n)
}

func xcorrDirect(x, h []float64, pooled bool) []float64 {
	n := len(x) - len(h) + 1
	out := allocResult(n, pooled)
	for k := 0; k < n; k++ {
		var s float64
		for n2, hv := range h {
			s += x[k+n2] * hv
		}
		out[k] = s
	}
	return out
}

func xcorrFFT(x, h []float64, pooled bool) []float64 {
	m := NextPow2(len(x) + len(h) - 1)
	fx := GetC128(m)
	fh := GetC128(m)
	defer PutC128(fx)
	defer PutC128(fh)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	for i, v := range h {
		fh[i] = complex(v, 0)
	}
	fftPow2(fx, false)
	fftPow2(fh, false)
	for i := range fx {
		fx[i] *= cmplx.Conj(fh[i])
	}
	fftPow2(fx, true)
	inv := 1 / float64(m)
	out := allocResult(len(x)-len(h)+1, pooled)
	for k := range out {
		out[k] = real(fx[k]) * inv
	}
	return out
}

// NormalizedCrossCorrelate computes cross-correlation normalized by the
// template energy and the local window energy of x, so the output lies in
// [-1, 1] regardless of incoming signal scale. Windows of (near-)zero energy
// yield 0. Length is len(x)-len(h)+1.
func NormalizedCrossCorrelate(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, false)
}

// NormalizedCrossCorrelatePooled is NormalizedCrossCorrelate with the
// result drawn from the package scratch pool; release with PutF64.
func NormalizedCrossCorrelatePooled(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, true)
}

func normalizedCrossCorrelate(x, h []float64, pooled bool) []float64 {
	r := crossCorrelate(x, h, pooled)
	if r == nil {
		return nil
	}
	var eh float64
	for _, v := range h {
		eh += v * v
	}
	if eh == 0 {
		for i := range r {
			r[i] = 0
		}
		return r
	}
	// Sliding window energy of x via prefix sums (pooled scratch).
	prefix := GetF64(len(x) + 1)
	defer PutF64(prefix)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v*v
	}
	const eps = 1e-30
	for k := range r {
		ex := prefix[k+len(h)] - prefix[k]
		den := math.Sqrt(ex * eh)
		if den < eps {
			r[k] = 0
		} else {
			r[k] /= den
		}
	}
	return r
}

// SegmentCorrelation returns the normalized correlation coefficient between
// two equal-length segments (Pearson-style without mean removal, matching
// matched-filter practice). Returns 0 when either segment has no energy.
func SegmentCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sab, saa, sbb float64
	for i := range a {
		sab += a[i] * b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// AutoCorrelate computes the biased sample autocorrelation of x for lags
// [0, maxLag]. Lag 0 is the signal energy / N.
func AutoCorrelate(x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	n := float64(len(x))
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < len(x); i++ {
			s += x[i] * x[i+lag]
		}
		out[lag] = s / n
	}
	return out
}

// ComplexConvolve computes the circular convolution of two equal-length
// complex vectors using the FFT. Both inputs are left unmodified.
func ComplexConvolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: ComplexConvolve length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil
	}
	p := NewPlan(n)
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	return fa
}

// Convolve computes the full linear convolution of x and k
// (length len(x)+len(k)-1) via the FFT.
func Convolve(x, k []float64) []float64 {
	if len(x) == 0 || len(k) == 0 {
		return nil
	}
	m := NextPow2(len(x) + len(k) - 1)
	fx := GetC128(m)
	fk := GetC128(m)
	defer PutC128(fx)
	defer PutC128(fk)
	for i, v := range x {
		fx[i] = complex(v, 0)
	}
	for i, v := range k {
		fk[i] = complex(v, 0)
	}
	fftPow2(fx, false)
	fftPow2(fk, false)
	for i := range fx {
		fx[i] *= fk[i]
	}
	fftPow2(fx, true)
	inv := 1 / float64(m)
	out := make([]float64, len(x)+len(k)-1)
	for i := range out {
		out[i] = real(fx[i]) * inv
	}
	return out
}
