package dsp

import (
	"math"
	"math/bits"
)

// directCorrMin is the direct/FFT crossover: templates shorter than this
// correlate faster with the O(len(x)·len(h)) sliding dot product than
// with padded transforms. Shared by CrossCorrelate and Matcher so both
// pick identical paths for identical shapes.
const directCorrMin = 64

// CrossCorrelate computes the full linear cross-correlation
//
//	r[k] = sum_n x[n+k] * h[n],   k in [0, len(x)-len(h)]
//
// i.e. the sliding inner product of the template h against x ("valid"
// correlation lags only). It picks the FFT path when it pays off.
// The result has length len(x)-len(h)+1; it returns nil when len(h) > len(x)
// or either input is empty.
//
// Callers that correlate the same h against many streams should build a
// Matcher instead: it caches the template spectrum across calls.
func CrossCorrelate(x, h []float64) []float64 {
	return crossCorrelate(x, h, false)
}

// CrossCorrelatePooled is CrossCorrelate with the result drawn from the
// package scratch pool: callers that only scan the correlation (peak
// picking) and then discard it release the buffer with PutF64 instead of
// leaving a stream-sized slice to the GC every call.
func CrossCorrelatePooled(x, h []float64) []float64 {
	return crossCorrelate(x, h, true)
}

func crossCorrelate(x, h []float64, pooled bool) []float64 {
	if len(h) == 0 || len(x) == 0 || len(h) > len(x) {
		return nil
	}
	if len(h) < directCorrMin {
		return xcorrDirect(x, h, pooled)
	}
	return xcorrFFT(x, h, pooled)
}

// allocResult picks the result allocation strategy. Pooled buffers come
// zeroed from GetF64 and are fully overwritten by every correlation path.
func allocResult(n int, pooled bool) []float64 {
	if pooled {
		return GetF64(n)
	}
	return make([]float64, n)
}

func xcorrDirect(x, h []float64, pooled bool) []float64 {
	n := len(x) - len(h) + 1
	out := allocResult(n, pooled)
	for k := 0; k < n; k++ {
		var s float64
		for n2, hv := range h {
			s += x[k+n2] * hv
		}
		out[k] = s
	}
	return out
}

// xcorrFFT correlates via two half-cost packed forward transforms
// (rfftPacked — no padded staging buffers), one fused two-spectrum fold
// in the permuted domain (foldTwo, which conjugates the template side in
// flight), and one inverse half-length transform interleaved straight
// into the valid lags. Long streams run overlap-save at a cost-model
// chosen block size instead of one padded transform.
func xcorrFFT(x, h []float64, pooled bool) []float64 {
	m := NextPow2(len(x) + len(h) - 1)
	if b := osOneShotBlock(len(x), len(h), m); b < m {
		return xcorrFFTBlocked(x, h, b, pooled)
	}
	hm := m / 2
	zxre, zxim := getF64Raw(hm), getF64Raw(hm)
	zhre, zhim := getF64Raw(hm), getF64Raw(hm)
	rfftPacked(zxre, zxim, x)
	rfftPacked(zhre, zhim, h)
	foldTwo(zxre, zxim, zhre, zhim, m, true)
	PutF64(zhim)
	PutF64(zhre)
	fftSoA(zxre, zxim, true)
	out := allocResult(len(x)-len(h)+1, pooled)
	interleaveScaled(out, zxre, zxim, hm)
	PutF64(zxim)
	PutF64(zxre)
	return out
}

// osOneShotBlock picks the FFT length for a one-shot correlation of an
// nh-sample template against nx samples: the padded one-shot length m,
// or a smaller overlap-save block when the butterfly count says blocking
// is cheaper. Unlike Matcher's fixed osBlockFactor sizing — tuned for a
// cached template spectrum amortized over many calls — a one-shot call
// pays the template's forward transform every time, so smaller blocks
// win much earlier; the n·log n model also ignores the locality bonus of
// a block that fits in cache, making it conservative.
func osOneShotBlock(nx, nh, m int) int {
	nOut := nx - nh + 1
	best := m
	bestCost := 3 * transformCost(m)
	for b := m / 2; b >= nh && b >= 2; b /= 2 {
		blocks := (nOut + (b - nh)) / (b - nh + 1) // ceil(nOut / valid-per-block)
		cost := float64(1+2*blocks) * transformCost(b)
		if cost < bestCost {
			best, bestCost = b, cost
		}
	}
	return best
}

// transformCost models one packed half-length transform of padded real
// size b in butterfly units.
func transformCost(b int) float64 {
	hm := b / 2
	return float64(hm) * float64(bits.Len(uint(hm)))
}

// xcorrFFTBlocked is xcorrFFT's overlap-save path: the template spectrum
// is computed once at the block size, then each block of x pays one
// packed forward transform, the fused fold and one inverse, with only
// the wrap-free lags interleaved out.
func xcorrFFTBlocked(x, h []float64, block int, pooled bool) []float64 {
	hm := block / 2
	zhre, zhim := getF64Raw(hm), getF64Raw(hm)
	rfftPacked(zhre, zhim, h)
	nOut := len(x) - len(h) + 1
	valid := block - len(h) + 1
	out := allocResult(nOut, pooled)
	zre, zim := getF64Raw(hm), getF64Raw(hm)
	for p := 0; p < nOut; p += valid {
		end := p + block
		if end > len(x) {
			end = len(x)
		}
		rfftPacked(zre, zim, x[p:end])
		foldTwo(zre, zim, zhre, zhim, block, true)
		fftSoA(zre, zim, true)
		take := valid
		if p+take > nOut {
			take = nOut - p
		}
		interleaveScaled(out[p:p+take], zre, zim, hm)
	}
	PutF64(zim)
	PutF64(zre)
	PutF64(zhim)
	PutF64(zhre)
	return out
}

// NormalizedCrossCorrelate computes cross-correlation normalized by the
// template energy and the local window energy of x, so the output lies in
// [-1, 1] regardless of incoming signal scale. Windows of (near-)zero energy
// yield 0. Length is len(x)-len(h)+1.
func NormalizedCrossCorrelate(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, false)
}

// NormalizedCrossCorrelatePooled is NormalizedCrossCorrelate with the
// result drawn from the package scratch pool; release with PutF64.
func NormalizedCrossCorrelatePooled(x, h []float64) []float64 {
	return normalizedCrossCorrelate(x, h, true)
}

func normalizedCrossCorrelate(x, h []float64, pooled bool) []float64 {
	r := crossCorrelate(x, h, pooled)
	if r == nil {
		return nil
	}
	var eh float64
	for _, v := range h {
		eh += v * v
	}
	normalizeByWindowEnergy(r, x, len(h), eh)
	return r
}

// SegmentCorrelation returns the normalized correlation coefficient between
// two equal-length segments (Pearson-style without mean removal, matching
// matched-filter practice). Returns 0 when either segment has no energy.
func SegmentCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sab, saa, sbb float64
	for i := range a {
		sab += a[i] * b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// AutoCorrelate computes the biased sample autocorrelation of x for lags
// [0, maxLag]. Lag 0 is the signal energy / N. Large len(x)·maxLag
// products switch to an FFT power-spectrum path, mirroring
// CrossCorrelate's direct/FFT split.
func AutoCorrelate(x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	// Crossover: direct is O(len(x)·maxLag) multiplies; the FFT path is
	// three half-length transforms of NextPow2(len(x)+maxLag). Short lag
	// ranges stay direct regardless of len(x) — the padded transform
	// would process the whole signal to produce a handful of lags.
	if maxLag >= directCorrMin && len(x)*(maxLag+1) >= 1<<18 {
		autoCorrFFT(x, out)
		return out
	}
	n := float64(len(x))
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for i := 0; i+lag < len(x); i++ {
			s += x[i] * x[i+lag]
		}
		out[lag] = s / n
	}
	return out
}

// autoCorrFFT fills out (len maxLag+1) with the biased autocorrelation of
// x via the power spectrum: pad to kill circular wrap over the requested
// lags, transform, square magnitudes, invert.
func autoCorrFFT(x, out []float64) {
	m := NextPow2(len(x) + len(out))
	pad := GetF64(m)
	defer PutF64(pad)
	sre := GetF64(m/2 + 1)
	defer PutF64(sre)
	sim := GetF64(m/2 + 1)
	defer PutF64(sim)
	copy(pad, x)
	rfftInto(sre, sim, pad)
	for i := range sre {
		sre[i] = sre[i]*sre[i] + sim[i]*sim[i] // |X|²
		sim[i] = 0
	}
	irfftInto(pad, sre, sim)
	n := float64(len(x))
	for lag := range out {
		out[lag] = pad[lag] / n
	}
}

// ComplexConvolve computes the circular convolution of two equal-length
// complex vectors using the FFT. Both inputs are left unmodified.
// NewPlan draws on the package Bluestein cache, so repeated calls at one
// length skip the chirp setup entirely.
func ComplexConvolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic("dsp: ComplexConvolve length mismatch")
	}
	n := len(a)
	if n == 0 {
		return nil
	}
	p := NewPlan(n)
	fa := append([]complex128(nil), a...)
	fb := GetC128(n)
	defer PutC128(fb)
	copy(fb, b)
	p.Forward(fa)
	p.Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.Inverse(fa)
	return fa
}

// Convolve computes the full linear convolution of x and k
// (length len(x)+len(k)-1) via half-cost packed real transforms and the
// same fused two-spectrum fold the correlation path uses, without the
// conjugation.
func Convolve(x, k []float64) []float64 {
	if len(x) == 0 || len(k) == 0 {
		return nil
	}
	out := make([]float64, len(x)+len(k)-1)
	if len(out) == 1 {
		out[0] = x[0] * k[0]
		return out
	}
	m := NextPow2(len(out))
	hm := m / 2
	zxre, zxim := getF64Raw(hm), getF64Raw(hm)
	zkre, zkim := getF64Raw(hm), getF64Raw(hm)
	rfftPacked(zxre, zxim, x)
	rfftPacked(zkre, zkim, k)
	foldTwo(zxre, zxim, zkre, zkim, m, false)
	PutF64(zkim)
	PutF64(zkre)
	fftSoA(zxre, zxim, true)
	interleaveScaled(out, zxre, zxim, hm)
	PutF64(zxim)
	PutF64(zxre)
	return out
}
