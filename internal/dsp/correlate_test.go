package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossCorrelateFindsEmbeddedTemplate(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	h := make([]float64, 200)
	for i := range h {
		h[i] = r.NormFloat64()
	}
	x := make([]float64, 2000)
	for i := range x {
		x[i] = 0.01 * r.NormFloat64()
	}
	const at = 700
	for i, v := range h {
		x[at+i] += v
	}
	corr := CrossCorrelate(x, h)
	idx, _ := Max(corr)
	if idx != at {
		t.Fatalf("peak at %d, want %d", idx, at)
	}
}

func TestCrossCorrelateDirectEqualsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := make([]float64, 513)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	h := make([]float64, 100) // >= 64 so public path uses FFT
	for i := range h {
		h[i] = r.NormFloat64()
	}
	fast := CrossCorrelate(x, h)
	slow := xcorrDirect(x, h, false)
	if len(fast) != len(slow) {
		t.Fatalf("length mismatch %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if math.Abs(fast[i]-slow[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %g vs %g", i, fast[i], slow[i])
		}
	}
}

func TestCrossCorrelateEdgeCases(t *testing.T) {
	if CrossCorrelate(nil, []float64{1}) != nil {
		t.Error("nil x should give nil")
	}
	if CrossCorrelate([]float64{1}, nil) != nil {
		t.Error("nil h should give nil")
	}
	if CrossCorrelate([]float64{1, 2}, []float64{1, 2, 3}) != nil {
		t.Error("h longer than x should give nil")
	}
	got := CrossCorrelate([]float64{1, 2, 3}, []float64{1, 2, 3})
	if len(got) != 1 || math.Abs(got[0]-14) > 1e-12 {
		t.Errorf("equal-length correlation = %v, want [14]", got)
	}
}

func TestNormalizedCrossCorrelateBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 400)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		h := make([]float64, 80)
		for i := range h {
			h[i] = r.NormFloat64()
		}
		for _, v := range NormalizedCrossCorrelate(x, h) {
			if v > 1+1e-9 || v < -1-1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedCrossCorrelatePerfectMatchIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	h := make([]float64, 128)
	for i := range h {
		h[i] = r.NormFloat64()
	}
	x := make([]float64, 512)
	copy(x[200:], h)
	corr := NormalizedCrossCorrelate(x, h)
	if math.Abs(corr[200]-1) > 1e-9 {
		t.Fatalf("exact match correlation = %g, want 1", corr[200])
	}
	// Scaling x must not change the normalized value.
	for i := range x {
		x[i] *= 37.5
	}
	corr = NormalizedCrossCorrelate(x, h)
	if math.Abs(corr[200]-1) > 1e-9 {
		t.Fatalf("scaled match correlation = %g, want 1", corr[200])
	}
}

func TestNormalizedCrossCorrelateZeroWindow(t *testing.T) {
	x := make([]float64, 100) // all zeros
	h := []float64{1, -1, 1}
	for _, v := range NormalizedCrossCorrelate(x, h) {
		if v != 0 {
			t.Fatalf("zero-energy window gave %g, want 0", v)
		}
	}
	// Zero-energy template.
	x[3] = 1
	for _, v := range NormalizedCrossCorrelate(x, make([]float64, 4)) {
		if v != 0 {
			t.Fatalf("zero template gave %g, want 0", v)
		}
	}
}

func TestSegmentCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := SegmentCorrelation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g, want 1", got)
	}
	neg := []float64{-1, -2, -3, -4}
	if got := SegmentCorrelation(a, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %g, want -1", got)
	}
	if got := SegmentCorrelation(a, []float64{1, 2}); got != 0 {
		t.Errorf("length mismatch should give 0, got %g", got)
	}
	if got := SegmentCorrelation(a, make([]float64, 4)); got != 0 {
		t.Errorf("zero-energy should give 0, got %g", got)
	}
}

func TestAutoCorrelateLagZeroIsMeanEnergy(t *testing.T) {
	x := []float64{1, -1, 2, -2}
	ac := AutoCorrelate(x, 2)
	want := (1.0 + 1 + 4 + 4) / 4
	if math.Abs(ac[0]-want) > 1e-12 {
		t.Errorf("lag0 = %g, want %g", ac[0], want)
	}
	if len(ac) != 3 {
		t.Errorf("got %d lags, want 3", len(ac))
	}
	if AutoCorrelate(x, -1) != nil {
		t.Error("negative maxLag should give nil")
	}
}

func TestAutoCorrelateFFTMatchesDirect(t *testing.T) {
	// Shapes chosen to cross the FFT threshold; the direct loop is the
	// reference.
	r := rand.New(rand.NewSource(15))
	for _, tc := range []struct{ n, maxLag int }{
		{4096, 64},
		{4096, 4095}, // full-lag autocorrelation
		{3000, 100},  // non-pow2 signal length
		{600, 512},   // maxLag clamped near len(x)
	} {
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		direct := make([]float64, 0, tc.maxLag+1)
		for lag := 0; lag <= tc.maxLag && lag < tc.n; lag++ {
			var s float64
			for i := 0; i+lag < tc.n; i++ {
				s += x[i] * x[i+lag]
			}
			direct = append(direct, s/float64(tc.n))
		}
		fast := make([]float64, len(direct))
		autoCorrFFT(x, fast)
		viaAPI := AutoCorrelate(x, tc.maxLag)
		for lag := range direct {
			if math.Abs(fast[lag]-direct[lag]) > 1e-9 {
				t.Fatalf("n=%d maxLag=%d: FFT path lag %d: %g vs %g", tc.n, tc.maxLag, lag, fast[lag], direct[lag])
			}
			if math.Abs(viaAPI[lag]-direct[lag]) > 1e-9 {
				t.Fatalf("n=%d maxLag=%d: API lag %d: %g vs %g", tc.n, tc.maxLag, lag, viaAPI[lag], direct[lag])
			}
		}
	}
}

func BenchmarkAutoCorrelateLongLag(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AutoCorrelate(x, 4096)
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	x := make([]float64, 75)
	k := make([]float64, 23)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	for i := range k {
		k[i] = r.NormFloat64()
	}
	got := Convolve(x, k)
	want := make([]float64, len(x)+len(k)-1)
	for i := range x {
		for j := range k {
			want[i+j] += x[i] * k[j]
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestComplexConvolveIdentity(t *testing.T) {
	// Convolving with a unit impulse returns the input (circularly).
	n := 173
	r := rand.New(rand.NewSource(14))
	a := randComplex(r, n)
	d := make([]complex128, n)
	d[0] = 1
	got := ComplexConvolve(a, d)
	if e := maxErrC(got, a); e > 1e-9 {
		t.Fatalf("identity convolution error %g", e)
	}
}

func TestCorrelationShiftProperty(t *testing.T) {
	// Shifting the embedded template shifts the correlation peak equally.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := make([]float64, 64)
		for i := range h {
			h[i] = r.NormFloat64()
		}
		shift := int(uint(seed) % 500)
		x := make([]float64, 700)
		copy(x[shift:], h)
		idx, _ := Max(CrossCorrelate(x, h))
		return idx == shift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCrossCorrelatePreambleLen(b *testing.B) {
	// Realistic sizes: 2 s of audio at 44.1 kHz against a 9840-sample preamble.
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 88200)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	h := make([]float64, 9840)
	for i := range h {
		h[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossCorrelate(x, h)
	}
}

// TestPooledCorrelateVariants: the pooled variants must match the plain
// ones exactly and hand back buffers the pool will accept.
func TestPooledCorrelateVariants(t *testing.T) {
	x := make([]float64, 900)
	h := make([]float64, 128)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	for i := range h {
		h[i] = float64(i%5) - 2
	}
	for name, pair := range map[string][2][]float64{
		"cross":      {CrossCorrelate(x, h), CrossCorrelatePooled(x, h)},
		"normalized": {NormalizedCrossCorrelate(x, h), NormalizedCrossCorrelatePooled(x, h)},
	} {
		plain, pooled := pair[0], pair[1]
		if len(plain) != len(pooled) {
			t.Fatalf("%s: length %d vs %d", name, len(plain), len(pooled))
		}
		for i := range plain {
			if plain[i] != pooled[i] {
				t.Fatalf("%s: lag %d differs: %v vs %v", name, i, plain[i], pooled[i])
			}
		}
		PutF64(pooled)
	}
}
