package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// twoSum is the error-free transformation s+err = a+b (Knuth): s is the
// rounded sum, err the exact rounding error.
func twoSum(a, b float64) (s, err float64) {
	s = a + b
	bv := s - a
	av := s - bv
	return s, (b - bv) + (a - av)
}

// exactAccumulator maintains a Shewchuk expansion — a list of
// nonoverlapping float64 components whose mathematical sum is EXACTLY
// the sum of everything added — giving an exact-summation reference that
// runs at float64 speed instead of big.Float speed.
type exactAccumulator struct {
	e []float64
}

func (a *exactAccumulator) add(b float64) {
	q := b
	out := a.e[:0]
	for _, ei := range a.e {
		var err float64
		q, err = twoSum(q, ei)
		if err != 0 {
			out = append(out, err)
		}
	}
	if q != 0 {
		out = append(out, q)
	}
	a.e = out
}

// value rounds the exact sum to float64, summing components in
// increasing magnitude order (faithful to within 1 ulp).
func (a *exactAccumulator) value() float64 {
	var s float64
	for _, ei := range a.e {
		s += ei
	}
	return s
}

// TestCompensatedEnergyMatchesExact10M is the regression test for the
// Neumaier-compensated energy accumulation in energyPrefix and the
// rolling pair of sums inside normalizeByWindowEnergy: on a 10^7-sample
// stream with ~8 decades of dynamic range, the compensated prefix must
// stay within a few ulps of an exact big.Float reference — where a plain
// running float64 sum drifts by orders of magnitude more. The window
// energies are what every normalized correlation divides by, so drift
// here directly biases late-stream detection scores.
func TestCompensatedEnergyMatchesExact10M(t *testing.T) {
	const n = 10_000_000
	r := rand.New(rand.NewSource(64))
	x := make([]float64, n)
	for i := range x {
		// Wide dynamic range: magnitudes from ~1e-4 to ~1e4, so small
		// squares constantly fall below the running sum's rounding step.
		x[i] = r.NormFloat64() * math.Pow(10, r.Float64()*8-4)
	}

	prefix := make([]float64, n+1)
	energyPrefix(prefix, x)

	// Exact reference (error-free Shewchuk expansion) and a plain float64
	// sum for the drift comparison, checked at log-spaced probe points.
	probes := map[int]bool{1: true, n: true}
	for p := 10; p < n; p *= 10 {
		probes[p] = true
		probes[p*3] = true
	}
	var exact exactAccumulator
	var plain float64
	var worstComp, worstPlain float64
	for i, v := range x {
		exact.add(v * v)
		plain += v * v
		if probes[i+1] {
			want := exact.value()
			compErr := math.Abs(prefix[i+1]-want) / want
			plainErr := math.Abs(plain-want) / want
			if compErr > worstComp {
				worstComp = compErr
			}
			if plainErr > worstPlain {
				worstPlain = plainErr
			}
			if compErr > 1e-15 {
				t.Fatalf("prefix[%d]: compensated rel err %g exceeds 1e-15", i+1, compErr)
			}
		}
	}
	if worstComp > worstPlain {
		t.Errorf("compensated sum (%g) drifted more than the plain sum (%g)", worstComp, worstPlain)
	}
	t.Logf("worst rel err over %d probes: compensated %.3g, plain %.3g", len(probes), worstComp, worstPlain)

	// The rolling two-accumulator pass in normalizeByWindowEnergy must
	// agree with the compensated prefix to the same standard: feed it an
	// all-ones correlation so its output exposes the raw window energies.
	const hlen = 4096
	nOut := 2_000_000
	ones := make([]float64, nOut)
	for i := range ones {
		ones[i] = 1
	}
	normalizeByWindowEnergy(ones, x, hlen, 1)
	for _, k := range []int{0, 1, 999_999, nOut - 1} {
		ewin := prefix[k+hlen] - prefix[k]
		want := 1 / math.Sqrt(ewin)
		if math.Abs(ones[k]-want) > 1e-12*want {
			t.Fatalf("rolling window energy at lag %d: %g vs prefix-derived %g", k, ones[k], want)
		}
	}
}
