// Package dsp implements the signal-processing primitives the positioning
// system is built on: FFTs of arbitrary length, real-input transforms,
// correlation, filtering, windowing, resampling and peak analysis.
//
// Everything is written against float64/complex128 slices so the receiver
// pipeline can run allocation-free on hot paths: transforms draw scratch
// from the package pool, twiddle/bit-reversal tables and Bluestein chirp
// setups are cached package-wide per size, and correlation functions
// accept destination buffers.
//
// The two transform tiers are FFT/IFFT (complex, power-of-two, shared
// cached twiddles) and RFFT/IRFFT (real input/output at half the cost);
// Plan handles arbitrary lengths via Bluestein. For repeated matched
// filtering against one known template — the receiver's dominant
// workload — Matcher precomputes the template spectrum once and reuses it
// for every stream (see its doc for when to prefer it over the one-shot
// CrossCorrelate helpers).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT computes the in-place decimation-in-time radix-4/2 FFT of x.
// len(x) must be a power of two; it panics otherwise (programmer error,
// callers that need arbitrary sizes use Plan or BluesteinFFT).
func FFT(x []complex128) {
	if !IsPow2(len(x)) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", len(x)))
	}
	fftPow2(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N scale.
// len(x) must be a power of two.
func IFFT(x []complex128) {
	if !IsPow2(len(x)) {
		panic(fmt.Sprintf("dsp: IFFT length %d is not a power of two", len(x)))
	}
	fftPow2(x, true)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0
// and for n large enough to overflow an int.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 of non-positive length")
	}
	if IsPow2(n) {
		return n
	}
	c := bits.Len(uint(n))
	if c >= bits.UintSize-1 {
		panic(fmt.Sprintf("dsp: NextPow2(%d) overflows int", n))
	}
	return 1 << c
}

// fftPow2 is the shared power-of-two transform entry for complex128
// callers: it deinterleaves into the split-layout scratch (applying the
// kernel's digit-reversal as a fused gather), runs the SoA radix-4/2
// ladder (see fft_soa.go), and reinterleaves the natural-order result.
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	re := GetF64(n)
	im := GetF64(n)
	for i, p := range permFor(n) {
		v := x[p]
		re[i], im[i] = real(v), imag(v)
	}
	fftSoA(re, im, inverse)
	for i := range x {
		x[i] = complex(re[i], im[i])
	}
	PutF64(im)
	PutF64(re)
}

// bluestein is the immutable chirp setup for one non-power-of-two
// transform length: computed once, cached package-wide, and shared by
// every Plan of that length (the chirp FFT dominated NewPlan's cost when
// each caller rebuilt it).
type bluestein struct {
	m     int          // power-of-two convolution length (>= 2n-1)
	chirp []complex128 // b[k] = exp(+i*pi*k^2/n), k in [0,n)
	fb    []complex128 // FFT of zero-padded, wrapped conjugate chirp
}

var bluesteinCache sync.Map // length n -> *bluestein

func bluesteinFor(n int) *bluestein {
	if v, ok := bluesteinCache.Load(n); ok {
		return v.(*bluestein)
	}
	bs := &bluestein{m: NextPow2(2*n - 1)}
	bs.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to keep the angle argument small and exact.
		kk := (int64(k) * int64(k)) % int64(2*n)
		bs.chirp[k] = cmplx.Rect(1, math.Pi*float64(kk)/float64(n))
	}
	bs.fb = make([]complex128, bs.m)
	for k := 0; k < n; k++ {
		c := bs.chirp[k] // b[k]
		bs.fb[k] = c
		if k > 0 {
			bs.fb[bs.m-k] = c
		}
	}
	fftPow2(bs.fb, false)
	// A racing builder computes bit-identical tables, so either winner is
	// fine; LoadOrStore just keeps one alive.
	actual, _ := bluesteinCache.LoadOrStore(n, bs)
	return actual.(*bluestein)
}

// Plan performs repeated transforms of one fixed, arbitrary length. The
// Bluestein chirp setup is cached package-wide per length and the
// convolution scratch comes from the shared pool per call, so plans are
// cheap to create and safe for concurrent use.
type Plan struct {
	n  int        // transform length
	bs *bluestein // nil for power-of-two lengths
}

// NewPlan builds a transform plan for length n (n >= 1).
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic("dsp: NewPlan length must be positive")
	}
	p := &Plan{n: n}
	if !IsPow2(n) {
		p.bs = bluesteinFor(n)
	}
	return p
}

// N returns the planned transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the DFT of x in place. len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the inverse DFT of x in place (with 1/N scaling).
func (p *Plan) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: plan length %d, input length %d", p.n, len(x)))
	}
	if p.bs == nil { // power-of-two fast path
		fftPow2(x, inverse)
		if inverse {
			s := complex(1/float64(p.n), 0)
			for i := range x {
				x[i] *= s
			}
		}
		return
	}
	n, m := p.n, p.bs.m
	a := GetC128(m)
	defer PutC128(a)
	// Bluestein: X[k] = b*[k] * ( (x*b~) ⊛ b )[k] with b~[k] = conj(b[k]).
	// For the inverse transform run the forward machinery on conjugated
	// input and conjugate the result (DFT(conj(x))* = IDFT(x)*N).
	for i := 0; i < n; i++ {
		v := x[i]
		if inverse {
			v = cmplx.Conj(v)
		}
		a[i] = v * cmplx.Conj(p.bs.chirp[i])
	}
	fftPow2(a, false)
	for i := 0; i < m; i++ {
		a[i] *= p.bs.fb[i]
	}
	fftPow2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		v := a[k] * invM * cmplx.Conj(p.bs.chirp[k])
		if inverse {
			v = cmplx.Conj(v) * complex(1/float64(n), 0)
		}
		x[k] = v
	}
}

// FFTReal transforms a real signal, returning a freshly allocated complex
// spectrum of the same length (convenience wrapper; hot paths use Plan or
// RFFT). Power-of-two lengths go through the half-size real transform
// and are mirrored out by conjugate symmetry.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	c := make([]complex128, n)
	if IsPow2(n) && n > 1 {
		spec := GetC128(n/2 + 1)
		RFFT(spec, x)
		copy(c, spec)
		for k := 1; k < n/2; k++ {
			c[n-k] = cmplx.Conj(spec[k])
		}
		PutC128(spec)
		return c
	}
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	// NewPlan is a cached-setup lookup (see bluesteinFor), so per-call
	// plan construction costs nothing measurable.
	NewPlan(n).Forward(c)
	return c
}

// IFFTReal inverts a spectrum and returns the real part of the result.
func IFFTReal(spec []complex128) []float64 {
	c := GetC128(len(spec))
	copy(c, spec)
	NewPlan(len(c)).Inverse(c)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	PutC128(c)
	return out
}
