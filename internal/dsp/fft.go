// Package dsp implements the signal-processing primitives the positioning
// system is built on: FFTs of arbitrary length, correlation, filtering,
// windowing, resampling and peak analysis.
//
// Everything is written against float64/complex128 slices so the receiver
// pipeline can run allocation-free on hot paths: the FFT planner hands out
// reusable scratch, and correlation functions accept destination buffers.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place decimation-in-time radix-2 FFT of x.
// len(x) must be a power of two; it panics otherwise (programmer error,
// callers that need arbitrary sizes use Plan or BluesteinFFT).
func FFT(x []complex128) {
	if !IsPow2(len(x)) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", len(x)))
	}
	fftPow2(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N scale.
// len(x) must be a power of two.
func IFFT(x []complex128) {
	if !IsPow2(len(x)) {
		panic(fmt.Sprintf("dsp: IFFT length %d is not a power of two", len(x)))
	}
	fftPow2(x, true)
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n. It panics for n <= 0
// and for n large enough to overflow an int.
func NextPow2(n int) int {
	if n <= 0 {
		panic("dsp: NextPow2 of non-positive length")
	}
	if IsPow2(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// fftPow2 is the shared radix-2 kernel. inverse selects conjugated twiddles.
func fftPow2(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Plan caches the Bluestein chirp and scratch buffers for repeated
// transforms of one fixed, arbitrary length. A Plan is not safe for
// concurrent use; receivers keep one per goroutine.
type Plan struct {
	n     int          // transform length
	m     int          // power-of-two convolution length (>= 2n-1)
	chirp []complex128 // b[k] = exp(+i*pi*k^2/n), k in [0,n)
	fb    []complex128 // FFT of zero-padded, wrapped conjugate chirp
	a     []complex128 // scratch of length m
}

// NewPlan builds a transform plan for length n (n >= 1).
func NewPlan(n int) *Plan {
	if n <= 0 {
		panic("dsp: NewPlan length must be positive")
	}
	p := &Plan{n: n}
	if IsPow2(n) {
		return p
	}
	p.m = NextPow2(2*n - 1)
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k^2 mod 2n to keep the angle argument small and exact.
		kk := (int64(k) * int64(k)) % int64(2*n)
		p.chirp[k] = cmplx.Rect(1, math.Pi*float64(kk)/float64(n))
	}
	p.fb = make([]complex128, p.m)
	for k := 0; k < n; k++ {
		c := p.chirp[k] // b[k]
		p.fb[k] = c
		if k > 0 {
			p.fb[p.m-k] = c
		}
	}
	fftPow2(p.fb, false)
	p.a = make([]complex128, p.m)
	return p
}

// N returns the planned transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the DFT of x in place. len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) { p.transform(x, false) }

// Inverse computes the inverse DFT of x in place (with 1/N scaling).
func (p *Plan) Inverse(x []complex128) { p.transform(x, true) }

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: plan length %d, input length %d", p.n, len(x)))
	}
	if p.m == 0 { // power-of-two fast path
		fftPow2(x, inverse)
		if inverse {
			s := complex(1/float64(p.n), 0)
			for i := range x {
				x[i] *= s
			}
		}
		return
	}
	n, m := p.n, p.m
	// Bluestein: X[k] = b*[k] * ( (x*b~) ⊛ b )[k] with b~[k] = conj(b[k]).
	// For the inverse transform run the forward machinery on conjugated
	// input and conjugate the result (DFT(conj(x))* = IDFT(x)*N).
	for i := 0; i < n; i++ {
		v := x[i]
		if inverse {
			v = cmplx.Conj(v)
		}
		p.a[i] = v * cmplx.Conj(p.chirp[i])
	}
	for i := n; i < m; i++ {
		p.a[i] = 0
	}
	fftPow2(p.a, false)
	for i := 0; i < m; i++ {
		p.a[i] *= p.fb[i]
	}
	fftPow2(p.a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		v := p.a[k] * invM * cmplx.Conj(p.chirp[k])
		if inverse {
			v = cmplx.Conj(v) * complex(1/float64(n), 0)
		}
		x[k] = v
	}
}

// FFTReal transforms a real signal, returning a freshly allocated complex
// spectrum of the same length (convenience wrapper; hot paths use Plan).
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	NewPlan(len(x)).Forward(c)
	return c
}

// IFFTReal inverts a spectrum and returns the real part of the result.
func IFFTReal(spec []complex128) []float64 {
	c := make([]complex128, len(spec))
	copy(c, spec)
	NewPlan(len(c)).Inverse(c)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}
