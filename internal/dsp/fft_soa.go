package dsp

import "math/bits"

// The split (structure-of-arrays) radix-4 FFT kernel. All hot transforms
// in the package — the complex FFT/IFFT, RFFT/IRFFT and every correlation
// path built on them — bottom out here.
//
// Layout: the transform operates on two plain []float64 planes (re, im)
// instead of []complex128, so every butterfly is a handful of independent
// float64 multiply/adds over stride-1 slices — no complex shuffling, no
// strided twiddle walks, and bounds checks hoisted by equal-length
// reslicing. The decimation-in-time ladder runs radix-4 stages (2× fewer
// passes over the data and ~25% fewer multiplies than radix-2), with one
// twiddle-free radix-2 pass first when log2(n) is odd.
//
// Input order: callers hand the kernel data already in digit-reversed
// order (permFor), applied as a gather fused into the deinterleave or
// retangle pass that feeds the kernel — the mixed-radix reversal is not
// an involution, so there is deliberately no in-place permute pass here.
// Output is in natural order. Inverse transforms are unscaled; callers
// fold the 1/n into their final pass.

// fftSoA transforms the split-layout vector in place (forward when
// inverse is false). len(re) must equal len(im) and be a power of two;
// input in digit-reversed order, output natural.
func fftSoA(re, im []float64, inverse bool) {
	n := len(re)
	if n <= 1 {
		return
	}
	size := 1
	if bits.TrailingZeros(uint(n))&1 == 1 {
		radix2Pass(re, im)
		size = 2
	} else {
		radix4First(re, im, inverse)
		size = 4
	}
	for ; size < n; size *= 4 {
		if inverse {
			radix4StageInv(re, im, size)
		} else {
			radix4StageFwd(re, im, size)
		}
	}
}

// fftSoADIF is the decimation-in-frequency twin of fftSoA, forward only:
// input in NATURAL order, output in the same digit-reversed order fftSoA
// consumes as input. The correlation paths pair the two — DIF forward,
// fused spectrum fold in the permuted domain (see foldTable), DIT inverse
// — so deinterleave and interleave are both purely sequential and no
// standalone gather/scatter permutation pass ever runs.
//
// The stage ladder mirrors fftSoA's in reverse: radix-4 stages from block
// length n down, ending in the same twiddle-free radix4First (even
// log2(n)) or radix2Pass (odd) — which is what makes the output
// permutation exactly buildPerm's digit order.
func fftSoADIF(re, im []float64) {
	n := len(re)
	if n <= 1 {
		return
	}
	size := n
	for ; size >= 8; size >>= 2 {
		dif4Stage(re, im, size)
	}
	if size == 4 {
		radix4First(re, im, false)
	} else {
		radix2Pass(re, im)
	}
}

// dif4Stage splits blocks of length size into four quarters: the
// transpose of radix4StageFwd, so the add/sub tree runs first and the
// twiddle multiplies land on the outputs.
//
//	A'[j] = a + b + c + d              a = A[j]        (→ bins ≡0 mod 4)
//	B'[j] = w^j  ·(t1 - j·t3)          b = B[j]        (→ bins ≡1)
//	C'[j] = w^2j ·(t0 - t2)            c = C[j]        (→ bins ≡2)
//	D'[j] = w^3j ·(t1 + j·t3)          d = D[j]        (→ bins ≡3)
//
// with t0 = a+c, t1 = a-c, t2 = b+d, t3 = b-d, w = e^{-2πi/size}; the
// twiddle planes are the same per-stage SoA tables the DIT stages read.
func dif4Stage(re, im []float64, size int) {
	n := len(re)
	l := size / 4
	st := stageTwiddlesFor(size)
	w1r, w1i := st.w1re[:l], st.w1im[:l]
	w2r, w2i := st.w2re[:l], st.w2im[:l]
	w3r, w3i := st.w3re[:l], st.w3im[:l]
	for s := 0; s < n; s += size {
		ar := re[s : s+l : s+l]
		ai := im[s : s+l : s+l]
		br := re[s+l:][:l:l]
		bi := im[s+l:][:l:l]
		cr := re[s+2*l:][:l:l]
		ci := im[s+2*l:][:l:l]
		dr := re[s+3*l:][:l:l]
		di := im[s+3*l:][:l:l]
		for j := range ar {
			t0r, t0i := ar[j]+cr[j], ai[j]+ci[j]
			t1r, t1i := ar[j]-cr[j], ai[j]-ci[j]
			t2r, t2i := br[j]+dr[j], bi[j]+di[j]
			t3r, t3i := br[j]-dr[j], bi[j]-di[j]
			ar[j], ai[j] = t0r+t2r, t0i+t2i
			vr, vi := t1r+t3i, t1i-t3r // t1 - j·t3
			br[j], bi[j] = vr*w1r[j]-vi*w1i[j], vr*w1i[j]+vi*w1r[j]
			ur, ui := t0r-t2r, t0i-t2i
			cr[j], ci[j] = ur*w2r[j]-ui*w2i[j], ur*w2i[j]+ui*w2r[j]
			zr, zi := t1r-t3i, t1i+t3r // t1 + j·t3
			dr[j], di[j] = zr*w3r[j]-zi*w3i[j], zr*w3i[j]+zi*w3r[j]
		}
	}
}

// radix2Pass runs twiddle-free radix-2 butterflies over adjacent pairs —
// the leading stage when log2(n) is odd. Identical for both directions.
func radix2Pass(re, im []float64) {
	im = im[:len(re)] // ties the planes' lengths for the bounds prover
	for s := 0; s+1 < len(re); s += 2 {
		ar, ai := re[s], im[s]
		br, bi := re[s+1], im[s+1]
		re[s], im[s] = ar+br, ai+bi
		re[s+1], im[s+1] = ar-br, ai-bi
	}
}

// radix4First runs the leading radix-4 stage (block length 1): all
// twiddles are 1, so the butterflies reduce to adds and one ±j rotation.
func radix4First(re, im []float64, inverse bool) {
	im = im[:len(re)] // ties the planes' lengths for the bounds prover
	for s := 0; s+3 < len(re); s += 4 {
		ar, ai := re[s], im[s]
		br, bi := re[s+1], im[s+1]
		cr, ci := re[s+2], im[s+2]
		dr, di := re[s+3], im[s+3]
		t0r, t0i := ar+cr, ai+ci
		t1r, t1i := ar-cr, ai-ci
		t2r, t2i := br+dr, bi+di
		t3r, t3i := br-dr, bi-di
		re[s], im[s] = t0r+t2r, t0i+t2i
		re[s+2], im[s+2] = t0r-t2r, t0i-t2i
		if inverse {
			re[s+1], im[s+1] = t1r-t3i, t1i+t3r
			re[s+3], im[s+3] = t1r+t3i, t1i-t3r
		} else {
			re[s+1], im[s+1] = t1r+t3i, t1i-t3r
			re[s+3], im[s+3] = t1r-t3i, t1i+t3r
		}
	}
}

// radix4StageFwd merges blocks of length size four at a time:
//
//	X[k]        = t0 + t2          t0 = a + c    a = A[k]
//	X[k+L]      = t1 - j·t3        t1 = a - c    b = w^k  B[k]
//	X[k+2L]     = t0 - t2          t2 = b + d    c = w^2k C[k]
//	X[k+3L]     = t1 + j·t3        t3 = b - d    d = w^3k D[k]
//
// with L = size and w = e^{-2πi/4L}. The twiddle planes come from the
// per-stage SoA table; every slice in the inner loop is resliced to the
// block length so the loop body runs bounds-check free.
func radix4StageFwd(re, im []float64, size int) {
	n := len(re)
	st := stageTwiddlesFor(4 * size)
	w1r, w1i := st.w1re[:size], st.w1im[:size]
	w2r, w2i := st.w2re[:size], st.w2im[:size]
	w3r, w3i := st.w3re[:size], st.w3im[:size]
	for s := 0; s < n; s += 4 * size {
		ar := re[s : s+size : s+size]
		ai := im[s : s+size : s+size]
		br := re[s+size:][:size:size]
		bi := im[s+size:][:size:size]
		cr := re[s+2*size:][:size:size]
		ci := im[s+2*size:][:size:size]
		dr := re[s+3*size:][:size:size]
		di := im[s+3*size:][:size:size]
		for k := range ar {
			brk := br[k]*w1r[k] - bi[k]*w1i[k]
			bik := br[k]*w1i[k] + bi[k]*w1r[k]
			crk := cr[k]*w2r[k] - ci[k]*w2i[k]
			cik := cr[k]*w2i[k] + ci[k]*w2r[k]
			drk := dr[k]*w3r[k] - di[k]*w3i[k]
			dik := dr[k]*w3i[k] + di[k]*w3r[k]
			t0r, t0i := ar[k]+crk, ai[k]+cik
			t1r, t1i := ar[k]-crk, ai[k]-cik
			t2r, t2i := brk+drk, bik+dik
			t3r, t3i := brk-drk, bik-dik
			ar[k], ai[k] = t0r+t2r, t0i+t2i
			br[k], bi[k] = t1r+t3i, t1i-t3r
			cr[k], ci[k] = t0r-t2r, t0i-t2i
			dr[k], di[k] = t1r-t3i, t1i+t3r
		}
	}
}

// radix4StageInv is radix4StageFwd with conjugated twiddles and the ±j
// rotation flipped — the inverse-transform stage.
func radix4StageInv(re, im []float64, size int) {
	n := len(re)
	st := stageTwiddlesFor(4 * size)
	w1r, w1i := st.w1re[:size], st.w1im[:size]
	w2r, w2i := st.w2re[:size], st.w2im[:size]
	w3r, w3i := st.w3re[:size], st.w3im[:size]
	for s := 0; s < n; s += 4 * size {
		ar := re[s : s+size : s+size]
		ai := im[s : s+size : s+size]
		br := re[s+size:][:size:size]
		bi := im[s+size:][:size:size]
		cr := re[s+2*size:][:size:size]
		ci := im[s+2*size:][:size:size]
		dr := re[s+3*size:][:size:size]
		di := im[s+3*size:][:size:size]
		for k := range ar {
			brk := br[k]*w1r[k] + bi[k]*w1i[k]
			bik := bi[k]*w1r[k] - br[k]*w1i[k]
			crk := cr[k]*w2r[k] + ci[k]*w2i[k]
			cik := ci[k]*w2r[k] - cr[k]*w2i[k]
			drk := dr[k]*w3r[k] + di[k]*w3i[k]
			dik := di[k]*w3r[k] - dr[k]*w3i[k]
			t0r, t0i := ar[k]+crk, ai[k]+cik
			t1r, t1i := ar[k]-crk, ai[k]-cik
			t2r, t2i := brk+drk, bik+dik
			t3r, t3i := brk-drk, bik-dik
			ar[k], ai[k] = t0r+t2r, t0i+t2i
			br[k], bi[k] = t1r-t3i, t1i+t3r
			cr[k], ci[k] = t0r-t2r, t0i-t2i
			dr[k], di[k] = t1r+t3i, t1i-t3r
		}
	}
}
