package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(N^2) reference DFT used to validate the fast paths.
func dftNaive(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Rect(1, ang)
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxErrC(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randComplex(r, n)
		want := dftNaive(x, false)
		got := append([]complex128(nil), x...)
		FFT(got)
		if e := maxErrC(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT max error %g", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 512} {
		x := randComplex(r, n)
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		if e := maxErrC(y, x); e > 1e-10*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two FFT")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestBluesteinMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 5, 6, 7, 12, 15, 100, 173, 540, 1920} {
		x := randComplex(r, n)
		want := dftNaive(x, false)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if e := maxErrC(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: Bluestein max error %g", n, e)
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 17, 64, 173, 1920} {
		p := NewPlan(n)
		x := randComplex(r, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErrC(y, x); e > 1e-8*float64(n) {
			t.Errorf("n=%d: plan roundtrip error %g", n, e)
		}
	}
}

func TestPlanReuse(t *testing.T) {
	// A plan must give identical results when reused (scratch fully reset).
	r := rand.New(rand.NewSource(5))
	p := NewPlan(360)
	x := randComplex(r, 360)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	p.Forward(a)
	// Run a different transform in between.
	other := randComplex(r, 360)
	p.Forward(other)
	p.Forward(b)
	if e := maxErrC(a, b); e > 0 {
		t.Errorf("plan reuse changed result, err=%g", e)
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewPlan(8).Forward(make([]complex128, 9))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2OverflowPanics(t *testing.T) {
	// The largest representable power of two must pass through unharmed...
	maxPow2 := 1 << (bits.UintSize - 2)
	if got := NextPow2(maxPow2); got != maxPow2 {
		t.Fatalf("NextPow2(max pow2) = %d, want identity", got)
	}
	// ...and anything beyond it must panic instead of silently wrapping to
	// a negative (1 << 63) length.
	for _, n := range []int{maxPow2 + 1, math.MaxInt} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NextPow2(%d) should panic, not overflow", n)
				}
			}()
			NextPow2(n)
		}()
	}
}

func TestNewPlanSharesBluesteinSetup(t *testing.T) {
	// Two plans of one length must share the cached chirp setup (the
	// expensive part); the transforms they run must stay identical.
	p1, p2 := NewPlan(1920), NewPlan(1920)
	if p1.bs == nil || p1.bs != p2.bs {
		t.Fatal("plans of equal length should share the cached Bluestein setup")
	}
	r := rand.New(rand.NewSource(9))
	x := randComplex(r, 1920)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	p1.Forward(a)
	p2.Forward(b)
	if e := maxErrC(a, b); e > 0 {
		t.Fatalf("shared-setup plans diverged, err=%g", e)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		x := randComplex(r, n)
		y := randComplex(r, n)
		a := complex(r.NormFloat64(), r.NormFloat64())
		b := complex(r.NormFloat64(), r.NormFloat64())
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		FFT(mix)
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		FFT(fx)
		FFT(fy)
		for i := range mix {
			if cmplx.Abs(mix[i]-(a*fx[i]+b*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Property: sum |x|^2 == (1/N) sum |X|^2 for any length (Bluestein too).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + int(uint(seed)%900)
		x := randComplex(r, n)
		var tx float64
		for _, v := range x {
			tx += real(v)*real(v) + imag(v)*imag(v)
		}
		X := append([]complex128(nil), x...)
		NewPlan(n).Forward(X)
		var tX float64
		for _, v := range X {
			tX += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tx-tX/float64(n)) < 1e-6*tx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTRealRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := make([]float64, 300)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	spec := FFTReal(x)
	back := IFFTReal(spec)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("roundtrip mismatch at %d: %g vs %g", i, back[i], x[i])
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum not flat at bin %d: %v", i, v)
		}
	}
}

func TestFFTShiftTheorem(t *testing.T) {
	// A time shift multiplies the spectrum by a linear phase.
	n := 256
	r := rand.New(rand.NewSource(8))
	x := randComplex(r, n)
	shift := 17
	shifted := make([]complex128, n)
	for i := range x {
		shifted[(i+shift)%n] = x[i]
	}
	fx := append([]complex128(nil), x...)
	FFT(fx)
	fs := append([]complex128(nil), shifted...)
	FFT(fs)
	for k := 0; k < n; k++ {
		phase := cmplx.Rect(1, -2*math.Pi*float64(k*shift)/float64(n))
		if cmplx.Abs(fs[k]-fx[k]*phase) > 1e-8 {
			t.Fatalf("shift theorem violated at bin %d", k)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 1024)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

func BenchmarkBluestein1920(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 1920)
	p := NewPlan(1920)
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}
