package dsp

import (
	"math"
	"slices"
	"testing"
)

// FuzzStreamMatcherChunking fuzzes signal content and chunk-split points
// against two references: the one-shot Matcher correlation (rounding-
// level tolerance — different FFT block grid) and the single-chunk
// streaming session (bit-exact — same absolute block grid by
// construction). The template is the stream's own prefix so the fuzzer
// controls correlation structure (plateaus, exact ties, constants)
// directly through the input bytes.
func FuzzStreamMatcherChunking(f *testing.F) {
	f.Add([]byte{7, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(append([]byte{40, 5}, make([]byte, 400)...)) // constant signal: all-tie plateaus
	seed := []byte{90, 200}
	for i := 0; i < 300; i++ {
		seed = append(seed, byte(i*37), byte(255-i))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 16 {
			t.Skip()
		}
		header, body := data[:2], data[2:]
		x := make([]float64, len(body))
		for i, b := range body {
			x[i] = (float64(b) - 128) / 128
		}
		hlen := 1 + int(header[0])%(len(x)/2)
		mt := NewMatcher(x[:hlen])

		wantRaw := mt.CrossCorrelate(x)
		wantNorm := mt.NormalizedCrossCorrelate(x)
		if hlen >= directCorrMin {
			// The FFT kernel is in play: pin it to the O(n·h) sliding dot
			// product so a kernel regression can't hide behind the
			// stream-vs-one-shot comparison (both sides share the kernel).
			direct := xcorrDirect(x, x[:hlen], false)
			for i := range direct {
				if math.Abs(wantRaw[i]-direct[i]) > 1e-9*(1+math.Abs(direct[i])) {
					t.Fatalf("kernel lag %d: FFT %g vs direct %g", i, wantRaw[i], direct[i])
				}
			}
		}
		refRaw := feedPartition(mt.Stream(), x, nil)
		refNorm := feedPartition(mt.StreamNormalized(), x, nil)
		if len(refRaw) != len(wantRaw) || len(refNorm) != len(wantNorm) {
			t.Fatalf("lengths %d/%d, want %d", len(refRaw), len(refNorm), len(wantRaw))
		}
		for i := range wantRaw {
			if math.Abs(refRaw[i]-wantRaw[i]) > 1e-9*(1+math.Abs(wantRaw[i])) {
				t.Fatalf("raw lag %d: stream %g vs one-shot %g", i, refRaw[i], wantRaw[i])
			}
			if math.Abs(refNorm[i]-wantNorm[i]) > 1e-9 {
				t.Fatalf("normalized lag %d: stream %g vs one-shot %g", i, refNorm[i], wantNorm[i])
			}
		}

		// Chunk boundaries straight from the fuzz input: up to 7 cuts.
		nc := int(header[1]) % 8
		cuts := make([]int, 0, nc)
		for k := 0; k < nc && k < len(body); k++ {
			cuts = append(cuts, int(body[k])*len(x)/256)
		}
		slices.Sort(cuts)
		gotRaw := feedPartition(mt.Stream(), x, cuts)
		gotNorm := feedPartition(mt.StreamNormalized(), x, cuts)
		for i := range refRaw {
			if gotRaw[i] != refRaw[i] {
				t.Fatalf("cuts %v: raw lag %d not chunk-invariant: %v vs %v", cuts, i, gotRaw[i], refRaw[i])
			}
			if gotNorm[i] != refNorm[i] {
				t.Fatalf("cuts %v: normalized lag %d not chunk-invariant: %v vs %v", cuts, i, gotNorm[i], refNorm[i])
			}
		}
	})
}
