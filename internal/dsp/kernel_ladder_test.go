package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// Exactness ladder for the radix-4/2 kernel rework: every power-of-two
// size from 8 to 2^20, covering both stage ladders (the packed
// half-length transform runs pure radix-4 when log2(n/2) is even and a
// mixed radix-4/2 ladder when it is odd — consecutive sizes alternate
// between the two). Small sizes compare every bin against the O(n²)
// naive DFT; large sizes spot-check a spread of bins against a direct
// DFT evaluated with exact integer phase arithmetic, plus a full IRFFT
// round-trip.

// dftBin evaluates spectrum bin k of the real signal x directly, with
// the angle reduced by integer arithmetic ((k·t) mod n) so the reference
// itself stays accurate at n = 2^20 where a naive accumulated angle
// would have drifted.
func dftBin(x []float64, k int) complex128 {
	n := len(x)
	var re, im float64
	for t, v := range x {
		idx := (k * t) % n
		ang := -2 * math.Pi * float64(idx) / float64(n)
		re += v * math.Cos(ang)
		im += v * math.Sin(ang)
	}
	return complex(re, im)
}

func TestRFFTLadderExactness(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for n := 8; n <= 1<<20; n *= 2 {
		x := randReal(r, n)
		got := make([]complex128, n/2+1)
		RFFT(got, x)
		if n <= 4096 {
			want := rfftNaive(x)
			if e := maxErrC(got, want); e > 1e-9*float64(n) {
				t.Errorf("n=%d: full naive compare max error %g", n, e)
			}
		} else {
			// Spot bins: the structural corners (0, n/4, n/2 — DC, the
			// self-conjugate fold midpoint, Nyquist) plus random bins.
			bins := []int{0, 1, n / 4, n/4 + 1, n / 2}
			for i := 0; i < 11; i++ {
				bins = append(bins, 2+r.Intn(n/2-2))
			}
			// Direct-sum reference error grows like sqrt(n)·eps·|x|₁;
			// scale the tolerance with the signal's 1-norm.
			var norm1 float64
			for _, v := range x {
				norm1 += math.Abs(v)
			}
			tol := 1e-15 * norm1 * math.Sqrt(float64(n)) / 32
			for _, k := range bins {
				want := dftBin(x, k)
				if d := cmplx.Abs(got[k] - want); d > tol {
					t.Errorf("n=%d bin %d: |Δ|=%g (tol %g)", n, k, d, tol)
				}
			}
		}
		back := make([]float64, n)
		IRFFT(back, got)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: IRFFT roundtrip mismatch at %d", n, i)
			}
		}
	}
}

// TestPackedDIFMatchesDITOrder pins the structural contract between the
// two forward kernels: fftSoADIF consumes natural order and must emit
// bin perm[i] at position i — exactly the input order the DIT kernel
// (and the fold tables built on it) expect. A drift between the two
// ladders' digit orders would silently scramble every correlation.
func TestPackedDIFMatchesDITOrder(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for h := 2; h <= 1<<16; h *= 2 {
		x := randReal(r, 2*h)
		// DIT reference: natural-order packed spectrum via the gather path.
		nre, nim := make([]float64, h), make([]float64, h)
		rfftHalf(nre, nim, x)
		// DIF under test: permuted packed spectrum, no gather.
		zre, zim := make([]float64, h), make([]float64, h)
		rfftPacked(zre, zim, x)
		perm := permFor(h)
		for i := 0; i < h; i++ {
			k := perm[i]
			if math.Abs(zre[i]-nre[k]) > 1e-9*float64(h) || math.Abs(zim[i]-nim[k]) > 1e-9*float64(h) {
				t.Fatalf("h=%d: position %d (bin %d): DIF (%g,%g) vs DIT (%g,%g)",
					h, i, k, zre[i], zim[i], nre[k], nim[k])
			}
		}
	}
}

// TestConcurrentKernelTableConstruction hammers every lazily built
// kernel table family — digit-reversal permutations, per-stage SoA
// twiddles, untangle twiddles, fold tables and per-matcher fold spectra
// — from many goroutines at sizes chosen to collide on first
// construction. Under -race this proves the double-checked publication
// in tables.go and Matcher.spectrum.
func TestConcurrentKernelTableConstruction(t *testing.T) {
	sizes := []int{1 << 7, 1 << 9, 1 << 11, 1 << 13}
	tmpl := randReal(rand.New(rand.NewSource(63)), 96)
	mt := NewMatcher(tmpl)
	bank := NewMatcherBank(mt, NewMatcher(tmpl[:80]))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for _, n := range sizes {
				x := randReal(r, n)
				direct := xcorrDirect(x, tmpl, false)
				got := mt.CrossCorrelate(x)
				for i := range direct {
					if math.Abs(got[i]-direct[i]) > 1e-9*(1+math.Abs(direct[i])) {
						t.Errorf("n=%d lag %d: %g vs direct %g", n, i, got[i], direct[i])
						return
					}
				}
				if one := CrossCorrelate(x, tmpl); math.Abs(one[0]-direct[0]) > 1e-9*(1+math.Abs(direct[0])) {
					t.Errorf("n=%d: one-shot lag 0 mismatch", n)
					return
				}
				bank.CrossCorrelateAll(x)
			}
		}(int64(g))
	}
	wg.Wait()
}
