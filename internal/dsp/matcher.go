package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// Matcher is a precomputed matched filter for one correlation template.
//
// One-shot CrossCorrelate pays for a forward transform of the template on
// every call even though the receiver correlates the same preamble
// against every stream it ever sees. A Matcher transforms the template
// once per padded FFT length, caches the conjugated spectrum, and folds
// the template energy into the normalization, so each correlation costs
// one forward RFFT of the stream, one pointwise multiply, and one
// inverse — down from three transforms plus a template-energy pass.
//
// Build one Matcher per template and share it freely: the spectrum cache
// is guarded by a read-write mutex, cached spectra are immutable after
// publication, and the FFT kernel itself only reads shared tables, so
// concurrent Correlate calls from engine workers are safe. For very long
// streams the FFT runs overlap-save in fixed-size blocks, bounding
// scratch at the block length instead of the padded stream length.
//
// Use a Matcher whenever the template outlives a single call (preamble
// detection, calibration chirps, baseline templates); use the package
// CrossCorrelate helpers for ad-hoc one-off pairs.
type Matcher struct {
	h      []float64 // private copy of the template
	energy float64   // Σ h² — pre-folded normalization energy

	mu    sync.RWMutex
	specs map[int][]complex128 // padded length m -> conj(RFFT(h, m)), read-only
}

// NewMatcher builds a matcher around a copy of template.
func NewMatcher(template []float64) *Matcher {
	h := append([]float64(nil), template...)
	var e float64
	for _, v := range h {
		e += v * v
	}
	return &Matcher{h: h, energy: e, specs: make(map[int][]complex128)}
}

// Template returns the matcher's internal template copy. Treat it as
// read-only; it is shared with every spectrum the matcher has cached.
func (mt *Matcher) Template() []float64 { return mt.h }

// TemplateLen returns the template length in samples.
func (mt *Matcher) TemplateLen() int { return len(mt.h) }

// spectrum returns the conjugated template spectrum at padded FFT length
// m (a power of two >= len(h)), computing and caching it on first use.
func (mt *Matcher) spectrum(m int) []complex128 {
	mt.mu.RLock()
	s := mt.specs[m]
	mt.mu.RUnlock()
	if s != nil {
		return s
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if s := mt.specs[m]; s != nil {
		return s
	}
	pad := GetF64(m)
	copy(pad, mt.h)
	s = make([]complex128, m/2+1)
	RFFT(s, pad)
	PutF64(pad)
	for i := range s {
		s[i] = cmplx.Conj(s[i])
	}
	mt.specs[m] = s
	return s
}

// CrossCorrelate computes the valid-lag cross-correlation of the template
// against x (see the package CrossCorrelate for the exact definition).
func (mt *Matcher) CrossCorrelate(x []float64) []float64 {
	return mt.correlate(x, false, false)
}

// CrossCorrelatePooled is CrossCorrelate with the result drawn from the
// package scratch pool; release with PutF64.
func (mt *Matcher) CrossCorrelatePooled(x []float64) []float64 {
	return mt.correlate(x, false, true)
}

// NormalizedCrossCorrelate computes the cross-correlation normalized by
// the (precomputed) template energy and the local window energy of x, so
// the output lies in [-1, 1] regardless of signal scale.
func (mt *Matcher) NormalizedCrossCorrelate(x []float64) []float64 {
	return mt.correlate(x, true, false)
}

// NormalizedCrossCorrelatePooled is NormalizedCrossCorrelate with the
// result drawn from the package scratch pool; release with PutF64.
func (mt *Matcher) NormalizedCrossCorrelatePooled(x []float64) []float64 {
	return mt.correlate(x, true, true)
}

func (mt *Matcher) correlate(x []float64, normalized, pooled bool) []float64 {
	if len(mt.h) == 0 || len(x) == 0 || len(mt.h) > len(x) {
		return nil
	}
	var out []float64
	switch {
	case len(mt.h) < directCorrMin:
		out = xcorrDirect(x, mt.h, pooled)
	default:
		out = mt.corrFFT(x, pooled)
	}
	if normalized {
		normalizeByWindowEnergy(out, x, len(mt.h), mt.energy)
	}
	return out
}

// osBlockFactor sizes the overlap-save FFT block relative to the
// template: NextPow2(osBlockFactor·len(h)) keeps >= ~87% of each block as
// valid output. Streams whose one-shot padded length fits within two
// blocks transform in one shot (fewer total butterflies); beyond that the
// blocked path bounds scratch and wins on cache locality.
const osBlockFactor = 8

func (mt *Matcher) blockLen() int {
	return NextPow2(osBlockFactor * len(mt.h))
}

func (mt *Matcher) corrFFT(x []float64, pooled bool) []float64 {
	oneShot := NextPow2(len(x) + len(mt.h) - 1)
	if block := mt.blockLen(); oneShot > 2*block {
		return mt.corrOverlapSave(x, block, pooled)
	}
	out := allocResult(len(x)-len(mt.h)+1, pooled)
	pad := GetF64(oneShot)
	defer PutF64(pad)
	copy(pad, x)
	rfftApplySpectrum(pad, mt.spectrum(oneShot))
	copy(out, pad)
	return out
}

// corrOverlapSave computes the same valid-lag correlation in fixed-size
// blocks: each block transforms blockLen samples of x and keeps the first
// blockLen-len(h)+1 lags, which are free of circular wrap by
// construction. Scratch stays bounded at the block length however long
// the stream is.
func (mt *Matcher) corrOverlapSave(x []float64, blockLen int, pooled bool) []float64 {
	hlen := len(mt.h)
	nOut := len(x) - hlen + 1
	valid := blockLen - hlen + 1
	out := allocResult(nOut, pooled)
	spec := mt.spectrum(blockLen)
	pad := GetF64(blockLen)
	defer PutF64(pad)
	for p := 0; p < nOut; p += valid {
		end := p + blockLen
		if end > len(x) {
			end = len(x)
		}
		n := copy(pad, x[p:end])
		for i := n; i < blockLen; i++ {
			pad[i] = 0
		}
		rfftApplySpectrum(pad, spec)
		take := valid
		if p+take > nOut {
			take = nOut - p
		}
		copy(out[p:p+take], pad[:take])
	}
	return out
}

// normalizeByWindowEnergy divides each correlation lag by
// sqrt(E_window · eh): the sliding window energy of x (via prefix sums)
// times the precomputed template energy. Windows of (near-)zero energy
// yield 0. Shared by Matcher and the one-shot NormalizedCrossCorrelate.
func normalizeByWindowEnergy(r, x []float64, hlen int, eh float64) {
	if r == nil {
		return
	}
	prefix := GetF64(len(x) + 1)
	defer PutF64(prefix)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v*v
	}
	normalizeWithPrefix(r, prefix, hlen, eh)
}

// normalizeWithPrefix is the normalization core on a precomputed energy
// prefix-sum array: prefix[k] must hold the cumulative Σ x² up to (but not
// including) the stream sample aligned with correlation lag r[0]+k. The
// split lets MatcherBank normalize every template off one prefix pass and
// lets the streaming sessions normalize block slices against a rolling
// prefix window.
func normalizeWithPrefix(r, prefix []float64, hlen int, eh float64) {
	if eh == 0 {
		for i := range r {
			r[i] = 0
		}
		return
	}
	const eps = 1e-30
	for k := range r {
		ex := prefix[k+hlen] - prefix[k]
		den := math.Sqrt(ex * eh)
		if den < eps {
			r[k] = 0
		} else {
			r[k] /= den
		}
	}
}
