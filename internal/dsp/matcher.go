package dsp

import (
	"math"
	"sync"
)

// Matcher is a precomputed matched filter for one correlation template.
//
// One-shot CrossCorrelate pays for a forward transform of the template on
// every call even though the receiver correlates the same preamble
// against every stream it ever sees. A Matcher transforms the template
// once per padded FFT length, caches the conjugated spectrum, and folds
// the template energy into the normalization, so each correlation costs
// one forward RFFT of the stream, one fused multiply-retangle pass, and
// one inverse — down from three transforms plus a template-energy pass.
//
// Cached spectra live in fold order (see foldSpec): rearranged to line
// up with the fold table's conjugate-pair walk, so the per-call
// frequency-domain work is one flat pass of float64 loops in the
// kernel's permuted domain with no complex128 materialization and no
// natural-order spectrum ever built.
//
// Build one Matcher per template and share it freely: the spectrum cache
// is guarded by a read-write mutex, cached spectra are immutable after
// publication, and the FFT kernel itself only reads shared tables, so
// concurrent Correlate calls from engine workers are safe. For very long
// streams the FFT runs overlap-save in fixed-size blocks, bounding
// scratch at the block length instead of the padded stream length.
//
// Use a Matcher whenever the template outlives a single call (preamble
// detection, calibration chirps, baseline templates); use the package
// CrossCorrelate helpers for ad-hoc one-off pairs.
type Matcher struct {
	h      []float64 // private copy of the template
	energy float64   // Σ h² — pre-folded normalization energy

	mu    sync.RWMutex
	specs map[int]*foldSpec // padded length m -> conj(RFFT(h, m)) in fold order
}

// NewMatcher builds a matcher around a copy of template.
func NewMatcher(template []float64) *Matcher {
	h := append([]float64(nil), template...)
	var e float64
	for _, v := range h {
		e += v * v
	}
	return &Matcher{h: h, energy: e, specs: make(map[int]*foldSpec)}
}

// Template returns the matcher's internal template copy. Treat it as
// read-only; it is shared with every spectrum the matcher has cached.
func (mt *Matcher) Template() []float64 { return mt.h }

// TemplateLen returns the template length in samples.
func (mt *Matcher) TemplateLen() int { return len(mt.h) }

// spectrum returns the conjugated template spectrum at padded FFT length
// m (a power of two >= len(h)) in fold order, computing and caching it on
// first use.
func (mt *Matcher) spectrum(m int) *foldSpec {
	mt.mu.RLock()
	s := mt.specs[m]
	mt.mu.RUnlock()
	if s != nil {
		return s
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if s := mt.specs[m]; s != nil {
		return s
	}
	pad := GetF64(m)
	copy(pad, mt.h)
	sre := GetF64(m/2 + 1)
	sim := GetF64(m/2 + 1)
	rfftInto(sre, sim, pad)
	PutF64(pad)
	for i, v := range sim {
		sim[i] = -v // conj(H)
	}
	s = newFoldSpec(sre, sim, m)
	PutF64(sim)
	PutF64(sre)
	mt.specs[m] = s
	return s
}

// CrossCorrelate computes the valid-lag cross-correlation of the template
// against x (see the package CrossCorrelate for the exact definition).
func (mt *Matcher) CrossCorrelate(x []float64) []float64 {
	return mt.correlate(x, false, false)
}

// CrossCorrelatePooled is CrossCorrelate with the result drawn from the
// package scratch pool; release with PutF64.
func (mt *Matcher) CrossCorrelatePooled(x []float64) []float64 {
	return mt.correlate(x, false, true)
}

// NormalizedCrossCorrelate computes the cross-correlation normalized by
// the (precomputed) template energy and the local window energy of x, so
// the output lies in [-1, 1] regardless of signal scale.
func (mt *Matcher) NormalizedCrossCorrelate(x []float64) []float64 {
	return mt.correlate(x, true, false)
}

// NormalizedCrossCorrelatePooled is NormalizedCrossCorrelate with the
// result drawn from the package scratch pool; release with PutF64.
func (mt *Matcher) NormalizedCrossCorrelatePooled(x []float64) []float64 {
	return mt.correlate(x, true, true)
}

func (mt *Matcher) correlate(x []float64, normalized, pooled bool) []float64 {
	if len(mt.h) == 0 || len(x) == 0 || len(mt.h) > len(x) {
		return nil
	}
	var out []float64
	switch {
	case len(mt.h) < directCorrMin:
		out = xcorrDirect(x, mt.h, pooled)
	default:
		out = mt.corrFFT(x, pooled)
	}
	if normalized {
		normalizeByWindowEnergy(out, x, len(mt.h), mt.energy)
	}
	return out
}

// osBlockFactor sizes the overlap-save FFT block relative to the
// template: NextPow2(osBlockFactor·len(h)) keeps >= ~87% of each block as
// valid output. Streams whose one-shot padded length fits within two
// blocks transform in one shot (fewer total butterflies); beyond that the
// blocked path bounds scratch and wins on cache locality.
const osBlockFactor = 8

func (mt *Matcher) blockLen() int {
	return NextPow2(osBlockFactor * len(mt.h))
}

func (mt *Matcher) corrFFT(x []float64, pooled bool) []float64 {
	oneShot := NextPow2(len(x) + len(mt.h) - 1)
	if block := mt.blockLen(); oneShot > 2*block {
		return mt.corrOverlapSave(x, block, pooled)
	}
	out := allocResult(len(x)-len(mt.h)+1, pooled)
	hm := oneShot / 2
	zre, zim := getF64Raw(hm), getF64Raw(hm)
	rfftPacked(zre, zim, x)
	foldSpecMulTo(zre, zim, zre, zim, mt.spectrum(oneShot), oneShot)
	fftSoA(zre, zim, true)
	interleaveScaled(out, zre, zim, hm)
	PutF64(zim)
	PutF64(zre)
	return out
}

// corrOverlapSave computes the same valid-lag correlation in fixed-size
// blocks: each block transforms blockLen samples of x and keeps the first
// blockLen-len(h)+1 lags, which are free of circular wrap by
// construction. Scratch stays bounded at the block length however long
// the stream is.
func (mt *Matcher) corrOverlapSave(x []float64, blockLen int, pooled bool) []float64 {
	hlen := len(mt.h)
	nOut := len(x) - hlen + 1
	valid := blockLen - hlen + 1
	out := allocResult(nOut, pooled)
	spec := mt.spectrum(blockLen)
	hm := blockLen / 2
	zre, zim := getF64Raw(hm), getF64Raw(hm)
	for p := 0; p < nOut; p += valid {
		end := p + blockLen
		if end > len(x) {
			end = len(x)
		}
		rfftPacked(zre, zim, x[p:end])
		foldSpecMulTo(zre, zim, zre, zim, spec, blockLen)
		fftSoA(zre, zim, true)
		take := valid
		if p+take > nOut {
			take = nOut - p
		}
		interleaveScaled(out[p:p+take], zre, zim, hm)
	}
	PutF64(zim)
	PutF64(zre)
	return out
}

// normalizeByWindowEnergy divides each correlation lag by
// sqrt(E_window · eh): the sliding window energy of x times the
// precomputed template energy, in a single rolling pass — two
// Neumaier-compensated running sums one window apart stand in for a
// stored prefix array, so window energies stay accurate to rounding
// however long the stream is. Windows of (near-)zero energy yield 0.
// Shared by Matcher and the one-shot NormalizedCrossCorrelate.
func normalizeByWindowEnergy(r, x []float64, hlen int, eh float64) {
	if r == nil {
		return
	}
	if eh == 0 {
		for i := range r {
			r[i] = 0
		}
		return
	}
	const eps = 1e-30
	var hiS, hiC, loS, loC float64 // leading/trailing edge sums + compensations
	for _, v := range x[:hlen] {
		hiS, hiC = neumaierAdd(hiS, hiC, v*v)
	}
	for k := range r {
		ex := (hiS + hiC) - (loS + loC)
		den := math.Sqrt(ex * eh)
		if den < eps {
			r[k] = 0
		} else {
			r[k] /= den
		}
		if next := k + hlen; next < len(x) {
			hiS, hiC = neumaierAdd(hiS, hiC, x[next]*x[next])
		}
		loS, loC = neumaierAdd(loS, loC, x[k]*x[k])
	}
}

// neumaierAdd folds y into the compensated running sum (sum, comp):
// Kahan–Babuška–Neumaier summation, which keeps the low-order bits a
// plain running sum sheds — over a 10^7-sample stream the plain sum's
// window energies drift by orders of magnitude more than one ulp.
func neumaierAdd(sum, comp, y float64) (float64, float64) {
	t := sum + y
	if sum >= y {
		comp += (sum - t) + y
	} else {
		comp += (y - t) + sum
	}
	return t, comp
}

// energyPrefix fills prefix (len(x)+1 entries) with the running energy
// sums prefix[i] = Σ_{j<i} x[j]², accumulated with Neumaier compensation
// so entries stay accurate to a final rounding at any stream length —
// the long-stream drift of a plain running sum would otherwise leak into
// every window energy difference downstream. Shared by the bank and
// streaming normalization paths, which reuse one prefix across templates.
func energyPrefix(prefix, x []float64) {
	prefix[0] = 0
	var sum, comp float64
	for i, v := range x {
		sum, comp = neumaierAdd(sum, comp, v*v)
		prefix[i+1] = sum + comp
	}
}

// normalizeWithPrefix is the normalization core on a precomputed energy
// prefix-sum array: prefix[k] must hold the cumulative Σ x² up to (but not
// including) the stream sample aligned with correlation lag r[0]+k. The
// split lets MatcherBank normalize every template off one prefix pass and
// lets the streaming sessions normalize block slices against a rolling
// prefix window.
func normalizeWithPrefix(r, prefix []float64, hlen int, eh float64) {
	if eh == 0 {
		for i := range r {
			r[i] = 0
		}
		return
	}
	const eps = 1e-30
	lo := prefix[:len(r)]
	hi := prefix[hlen:][:len(r)]
	for k := range r {
		ex := hi[k] - lo[k]
		den := math.Sqrt(ex * eh)
		if den < eps {
			r[k] = 0
		} else {
			r[k] /= den
		}
	}
}
