package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestMatcherMatchesOneShotCorrelation(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for _, tc := range []struct{ nx, nh int }{
		{40, 7},    // direct path (short template)
		{513, 100}, // FFT path, odd stream length
		{2000, 200},
		{9000, 1024},
		{300, 300}, // equal lengths: single lag
	} {
		x := randReal(r, tc.nx)
		h := randReal(r, tc.nh)
		mt := NewMatcher(h)
		plain := CrossCorrelate(x, h)
		got := mt.CrossCorrelate(x)
		if len(plain) != len(got) {
			t.Fatalf("nx=%d nh=%d: length %d vs %d", tc.nx, tc.nh, len(got), len(plain))
		}
		for i := range plain {
			if math.Abs(plain[i]-got[i]) > 1e-9 {
				t.Fatalf("nx=%d nh=%d: lag %d: %g vs %g", tc.nx, tc.nh, i, got[i], plain[i])
			}
		}
		pn := NormalizedCrossCorrelate(x, h)
		gn := mt.NormalizedCrossCorrelate(x)
		for i := range pn {
			if math.Abs(pn[i]-gn[i]) > 1e-9 {
				t.Fatalf("nx=%d nh=%d: normalized lag %d: %g vs %g", tc.nx, tc.nh, i, gn[i], pn[i])
			}
		}
	}
}

func TestMatcherEdgeCases(t *testing.T) {
	mt := NewMatcher([]float64{1, 2, 3})
	if mt.CrossCorrelate(nil) != nil {
		t.Error("nil x should give nil")
	}
	if mt.CrossCorrelate([]float64{1, 2}) != nil {
		t.Error("x shorter than template should give nil")
	}
	if NewMatcher(nil).CrossCorrelate([]float64{1, 2}) != nil {
		t.Error("empty template should give nil")
	}
	if got := mt.NormalizedCrossCorrelate(make([]float64, 8)); got == nil {
		t.Error("zero stream should normalize, not vanish")
	} else {
		for _, v := range got {
			if v != 0 {
				t.Errorf("zero-energy window gave %g, want 0", v)
			}
		}
	}
	// Zero-energy template: defined as all-zero output.
	zt := NewMatcher(make([]float64, 4))
	for _, v := range zt.NormalizedCrossCorrelate(randReal(rand.New(rand.NewSource(1)), 64)) {
		if v != 0 {
			t.Fatalf("zero template gave %g, want 0", v)
		}
	}
}

func TestMatcherTemplateIsACopy(t *testing.T) {
	h := []float64{1, 2, 3, 4}
	mt := NewMatcher(h)
	h[0] = 99
	if mt.Template()[0] != 1 {
		t.Fatal("matcher must copy the template at construction")
	}
}

func TestMatcherOverlapSaveMatchesOneShot(t *testing.T) {
	// Force the blocked path with a stream long enough that the one-shot
	// padded length exceeds two blocks, then compare against the one-shot
	// result on identical input.
	r := rand.New(rand.NewSource(31))
	h := randReal(r, 256) // blockLen = NextPow2(8*256) = 2048
	mt := NewMatcher(h)
	for _, nx := range []int{6000, 8192, 20000, 65536 - 255} {
		x := randReal(r, nx)
		oneShot := make([]float64, nx-len(h)+1)
		{
			m := NextPow2(nx + len(h) - 1)
			if m <= 2*mt.blockLen() {
				t.Fatalf("nx=%d does not exercise overlap-save (m=%d, block=%d)", nx, m, mt.blockLen())
			}
			copy(oneShot, CrossCorrelate(x, h))
		}
		got := mt.corrOverlapSave(x, mt.blockLen(), false)
		if len(got) != len(oneShot) {
			t.Fatalf("nx=%d: length %d vs %d", nx, len(got), len(oneShot))
		}
		for i := range got {
			if math.Abs(got[i]-oneShot[i]) > 1e-9 {
				t.Fatalf("nx=%d: lag %d: blocked %g vs one-shot %g", nx, i, got[i], oneShot[i])
			}
		}
		// The public path must agree too (it picks overlap-save here).
		pub := mt.CrossCorrelate(x)
		for i := range pub {
			if math.Abs(pub[i]-oneShot[i]) > 1e-9 {
				t.Fatalf("nx=%d: public path lag %d: %g vs %g", nx, i, pub[i], oneShot[i])
			}
		}
	}
}

func TestMatcherPooledVariantsMatch(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	x := randReal(r, 3000)
	h := randReal(r, 128)
	mt := NewMatcher(h)
	for name, pair := range map[string][2][]float64{
		"cross":      {mt.CrossCorrelate(x), mt.CrossCorrelatePooled(x)},
		"normalized": {mt.NormalizedCrossCorrelate(x), mt.NormalizedCrossCorrelatePooled(x)},
	} {
		plain, pooled := pair[0], pair[1]
		if len(plain) != len(pooled) {
			t.Fatalf("%s: length %d vs %d", name, len(plain), len(pooled))
		}
		for i := range plain {
			if plain[i] != pooled[i] {
				t.Fatalf("%s: lag %d differs: %v vs %v", name, i, plain[i], pooled[i])
			}
		}
		PutF64(pooled)
	}
}

// TestMatcherConcurrentUse shares one matcher across goroutines hitting
// multiple padded lengths at once; under -race this validates the
// spectrum cache's locking and the immutability of published spectra.
func TestMatcherConcurrentUse(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	h := randReal(r, 200)
	mt := NewMatcher(h)
	want := map[int][]float64{}
	streams := map[int][]float64{}
	for _, nx := range []int{500, 1000, 2000, 4000} {
		x := randReal(r, nx)
		streams[nx] = x
		want[nx] = NormalizedCrossCorrelate(x, h)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for nx, x := range streams {
				got := mt.NormalizedCrossCorrelate(x)
				for i := range got {
					if math.Abs(got[i]-want[nx][i]) > 1e-9 {
						t.Errorf("nx=%d: concurrent result diverged at lag %d", nx, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestMatcherDeterministicAcrossCalls(t *testing.T) {
	// Same input must give bit-identical output on every call (the engine's
	// determinism contract relies on it).
	r := rand.New(rand.NewSource(34))
	x := randReal(r, 5000)
	mt := NewMatcher(randReal(r, 300))
	a := mt.NormalizedCrossCorrelate(x)
	b := mt.NormalizedCrossCorrelate(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lag %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// BenchmarkMatcher mirrors BenchmarkCrossCorrelatePreambleLen (2 s stream
// vs preamble-length template) with the template spectrum precomputed.
func BenchmarkMatcher(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randReal(r, 88200)
	mt := NewMatcher(randReal(r, 9840))
	mt.CrossCorrelatePooled(x) // warm the spectrum cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutF64(mt.CrossCorrelatePooled(x))
	}
}

func BenchmarkMatcherNormalized(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randReal(r, 88200)
	mt := NewMatcher(randReal(r, 9840))
	mt.CrossCorrelatePooled(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutF64(mt.NormalizedCrossCorrelatePooled(x))
	}
}
