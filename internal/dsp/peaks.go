package dsp

import "math"

// Peak is a local maximum in a magnitude profile.
type Peak struct {
	Index int     // sample index of the maximum
	Value float64 // magnitude at the maximum
}

// IsPeak reports whether index i is a strict-or-plateau local maximum of x:
// x[i] >= both neighbours (edges compare against the single neighbour).
// This is the IsPeak predicate of the paper's direct-path search (§2.2).
func IsPeak(i int, x []float64) bool {
	if i < 0 || i >= len(x) {
		return false
	}
	if i > 0 && x[i] < x[i-1] {
		return false
	}
	if i < len(x)-1 && x[i] < x[i+1] {
		return false
	}
	return true
}

// IsPeakWide reports whether x[i] is the maximum over the ±radius
// neighbourhood (ties allowed). Radius 1 matches IsPeak; larger radii
// reject the one-sample noise ripples that ride on the slopes of
// band-limited correlation lobes.
func IsPeakWide(i int, x []float64, radius int) bool {
	if i < 0 || i >= len(x) {
		return false
	}
	lo := i - radius
	if lo < 0 {
		lo = 0
	}
	hi := i + radius
	if hi > len(x)-1 {
		hi = len(x) - 1
	}
	for k := lo; k <= hi; k++ {
		if x[k] > x[i] {
			return false
		}
	}
	return true
}

// FindPeaks returns all local maxima with value >= threshold, sorted by
// index. Plateaus report their first index.
func FindPeaks(x []float64, threshold float64) []Peak {
	var peaks []Peak
	for i := 0; i < len(x); i++ {
		if x[i] < threshold {
			continue
		}
		if !IsPeak(i, x) {
			continue
		}
		if i > 0 && x[i] == x[i-1] {
			continue // interior of a plateau
		}
		peaks = append(peaks, Peak{Index: i, Value: x[i]})
	}
	return peaks
}

// MaxAbs returns the index and value of the maximum of |x|.
// Returns (-1, 0) for empty input.
func MaxAbs(x []float64) (int, float64) {
	idx, best := -1, 0.0
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, idx = a, i
		}
	}
	return idx, best
}

// Max returns the index and value of the maximum of x. (-1, -Inf) if empty.
func Max(x []float64) (int, float64) {
	idx, best := -1, math.Inf(-1)
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return idx, best
}

// NoiseFloor estimates the noise level of a channel profile as the mean
// power of the last tailLen taps, following §2.2 of the paper (the last 100
// channel taps are assumed to be past the delay spread). If tailLen exceeds
// the profile it uses the whole profile.
func NoiseFloor(profile []float64, tailLen int) float64 {
	if len(profile) == 0 {
		return 0
	}
	if tailLen <= 0 || tailLen > len(profile) {
		tailLen = len(profile)
	}
	var s float64
	for _, v := range profile[len(profile)-tailLen:] {
		s += v * v
	}
	mean := s / float64(tailLen)
	return math.Sqrt(mean)
}

// Normalize scales x in place so its maximum absolute value is 1 and
// returns x. A zero vector is returned unchanged.
func Normalize(x []float64) []float64 {
	_, m := MaxAbs(x)
	if m == 0 {
		return x
	}
	inv := 1 / m
	for i := range x {
		x[i] *= inv
	}
	return x
}

// Abs returns |x| element-wise in a new slice.
func Abs(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Abs(v)
	}
	return out
}

// AbsComplex returns the magnitudes of a complex vector.
func AbsComplex(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Hypot(real(v), imag(v))
	}
	return out
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// RMS returns the root-mean-square of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return math.Sqrt(Energy(x) / float64(len(x)))
}

// DB converts a linear power ratio to decibels (10log10).
// Non-positive ratios map to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// WindowPowerDB returns the power of x[start:start+width] in dB relative to
// the power of x[prevStart:prevStart+width]; used by the TH_SD window-based
// detector baseline (Peng et al., BeepBeep).
func WindowPowerDB(x []float64, prevStart, start, width int) float64 {
	p1 := segPower(x, prevStart, width)
	p2 := segPower(x, start, width)
	if p1 <= 0 {
		if p2 <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return DB(p2 / p1)
}

func segPower(x []float64, start, width int) float64 {
	if start < 0 || width <= 0 || start >= len(x) {
		return 0
	}
	end := start + width
	if end > len(x) {
		end = len(x)
	}
	var s float64
	for _, v := range x[start:end] {
		s += v * v
	}
	return s / float64(end-start)
}
