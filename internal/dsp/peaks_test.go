package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIsPeak(t *testing.T) {
	x := []float64{0, 1, 0.5, 0.5, 2, 1}
	cases := []struct {
		i    int
		want bool
	}{
		{0, false}, {1, true}, {2, false}, {3, false}, {4, true}, {5, false},
		{-1, false}, {6, false},
	}
	for _, c := range cases {
		if got := IsPeak(c.i, x); got != c.want {
			t.Errorf("IsPeak(%d) = %v, want %v", c.i, got, c.want)
		}
	}
	// Plateau: both plateau samples are >= neighbours.
	y := []float64{0, 1, 1, 0}
	if !IsPeak(1, y) || !IsPeak(2, y) {
		t.Error("plateau samples should be peaks")
	}
}

func TestFindPeaks(t *testing.T) {
	x := []float64{0, 3, 0, 1, 0, 5, 5, 0, 2}
	peaks := FindPeaks(x, 1.5)
	want := []Peak{{1, 3}, {5, 5}, {8, 2}}
	if len(peaks) != len(want) {
		t.Fatalf("got %d peaks %v, want %d", len(peaks), peaks, len(want))
	}
	for i := range want {
		if peaks[i] != want[i] {
			t.Errorf("peak %d = %v, want %v", i, peaks[i], want[i])
		}
	}
}

func TestFindPeaksThresholdExcludes(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0}
	peaks := FindPeaks(x, 1.5)
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("got %v, want single peak at 3", peaks)
	}
}

func TestNoiseFloor(t *testing.T) {
	// Profile with signal in front, noise at the tail.
	profile := make([]float64, 300)
	r := rand.New(rand.NewSource(20))
	for i := 200; i < 300; i++ {
		profile[i] = 0.1 * r.NormFloat64()
	}
	profile[10] = 5
	nf := NoiseFloor(profile, 100)
	if nf < 0.05 || nf > 0.2 {
		t.Errorf("noise floor = %g, want ~0.1", nf)
	}
	if NoiseFloor(nil, 10) != 0 {
		t.Error("empty profile should give 0")
	}
	// tailLen larger than profile falls back to the whole profile.
	if got := NoiseFloor([]float64{3, 4}, 100); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("fallback floor = %g", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{-4, 2, 1}
	Normalize(x)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 0.25 {
		t.Errorf("normalized = %v", x)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector should be unchanged")
	}
}

func TestMaxHelpers(t *testing.T) {
	if i, v := Max(nil); i != -1 || !math.IsInf(v, -1) {
		t.Error("Max(nil) should be (-1, -Inf)")
	}
	if i, v := MaxAbs(nil); i != -1 || v != 0 {
		t.Error("MaxAbs(nil) should be (-1, 0)")
	}
	x := []float64{1, -7, 3}
	if i, v := MaxAbs(x); i != 1 || v != 7 {
		t.Errorf("MaxAbs = (%d,%g)", i, v)
	}
	if i, v := Max(x); i != 2 || v != 3 {
		t.Errorf("Max = (%d,%g)", i, v)
	}
}

func TestEnergyRMS(t *testing.T) {
	x := []float64{3, 4}
	if Energy(x) != 25 {
		t.Errorf("Energy = %g", Energy(x))
	}
	if math.Abs(RMS(x)-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", RMS(x))
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
}

func TestDBConversions(t *testing.T) {
	if DB(100) != 20 {
		t.Errorf("DB(100) = %g", DB(100))
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Error("DB of non-positive should be -Inf")
	}
	if math.Abs(FromDB(30)-1000) > 1e-9 {
		t.Errorf("FromDB(30) = %g", FromDB(30))
	}
	for _, v := range []float64{0.5, 1, 7, 123} {
		if got := FromDB(DB(v)); math.Abs(got-v) > 1e-9*v {
			t.Errorf("roundtrip %g -> %g", v, got)
		}
	}
}

func TestWindowPowerDB(t *testing.T) {
	x := make([]float64, 200)
	for i := 0; i < 100; i++ {
		x[i] = 0.1
	}
	for i := 100; i < 200; i++ {
		x[i] = 1.0
	}
	// Second window has 100x the power of the first: +20 dB.
	got := WindowPowerDB(x, 0, 100, 100)
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("WindowPowerDB = %g, want 20", got)
	}
	// Degenerate windows.
	if v := WindowPowerDB(x, -5, 300, 10); v != 0 && !math.IsInf(v, 1) {
		t.Errorf("out-of-range windows gave %g", v)
	}
}

func TestAbsHelpers(t *testing.T) {
	got := Abs([]float64{-1, 2, -3})
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Errorf("Abs[%d] = %g", i, got[i])
		}
	}
	gc := AbsComplex([]complex128{3 + 4i, -5})
	if math.Abs(gc[0]-5) > 1e-12 || math.Abs(gc[1]-5) > 1e-12 {
		t.Errorf("AbsComplex = %v", gc)
	}
}

func TestIsPeakWide(t *testing.T) {
	x := []float64{0, 1, 0.5, 0.8, 2, 1, 0.2, 0.3, 0.1}
	// Index 4 dominates any radius here.
	for r := 1; r <= 4; r++ {
		if !IsPeakWide(4, x, r) {
			t.Errorf("radius %d: index 4 should be a wide peak", r)
		}
	}
	// Index 1 is a local peak at radius 1 but loses to index 4 at radius 3.
	if !IsPeakWide(1, x, 1) {
		t.Error("index 1 should be a radius-1 peak")
	}
	if IsPeakWide(1, x, 3) {
		t.Error("index 1 should lose at radius 3")
	}
	// Edges clamp the window instead of panicking.
	if !IsPeakWide(0, []float64{5, 1}, 3) {
		t.Error("edge max should be a peak")
	}
	if IsPeakWide(-1, x, 1) || IsPeakWide(len(x), x, 1) {
		t.Error("out-of-range index cannot be a peak")
	}
	// Ties are allowed.
	if !IsPeakWide(1, []float64{1, 2, 2, 1}, 2) {
		t.Error("tied plateau should count")
	}
}
