package dsp

import (
	"math/bits"
	"sync"
)

// Scratch pooling for the hot DSP allocations. The real-FFT correlation
// and convolution paths burn a padded real buffer plus one or two
// half-spectrum complex buffers (m/2+1 bins) per call, and the receiver
// pipeline calls them thousands of times per simulated round; under the
// parallel trial engine every worker hammers them at once. Buffers are
// pooled in power-of-two size classes so a worker steady-states at zero
// allocations regardless of which transform lengths its scenarios need.
// The m/2+1 spectrum shape lands in the same class as a length-m buffer
// (capacity rounds up), so full-length and spectrum scratch share one
// pool per transform size instead of fragmenting into separate ones.
//
// Slices handed out are zeroed, because the transforms rely on zero
// padding beyond the payload. Returning a slice to the pool is always
// optional — dropping one on an error path just costs a future
// allocation.

const maxPooledClass = 26 // cap pooled buffers at 2^26 elements (1 GiB of complex128)

var (
	c128Pools [maxPooledClass + 1]sync.Pool
	f64Pools  [maxPooledClass + 1]sync.Pool
)

// sizeClass returns the pool index for a capacity request: the exponent of
// the next power of two ≥ n. Requests beyond the pooled range return -1.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > maxPooledClass {
		return -1
	}
	return c
}

// GetC128 returns a zeroed []complex128 of length n backed by the pool.
func GetC128(n int) []complex128 {
	c := sizeClass(n)
	if c < 0 {
		return make([]complex128, n)
	}
	if v := c128Pools[c].Get(); v != nil {
		s := (*v.(*[]complex128))[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]complex128, n, 1<<c)
}

// PutC128 returns a buffer obtained from GetC128 to the pool.
func PutC128(s []complex128) {
	c := sizeClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return // foreign or oversize buffer: let the GC have it
	}
	s = s[:cap(s)]
	c128Pools[c].Put(&s)
}

// GetF64 returns a zeroed []float64 of length n backed by the pool.
func GetF64(n int) []float64 {
	c := sizeClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if v := f64Pools[c].Get(); v != nil {
		s := (*v.(*[]float64))[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float64, n, 1<<c)
}

// getF64Raw is GetF64 without the zeroing pass: for kernel scratch whose
// every element is written before it is read (deinterleave targets, fold
// outputs), the clear is pure memory traffic — it showed up as ~10% of a
// long correlation in profiles. Callers must overwrite the full length;
// release with PutF64 as usual.
func getF64Raw(n int) []float64 {
	c := sizeClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	if v := f64Pools[c].Get(); v != nil {
		return (*v.(*[]float64))[:n]
	}
	return make([]float64, n, 1<<c)
}

// PutF64 returns a buffer obtained from GetF64 to the pool.
func PutF64(s []float64) {
	c := sizeClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return
	}
	s = s[:cap(s)]
	f64Pools[c].Put(&s)
}
