package dsp

import (
	"sync"
	"testing"
)

func TestPoolRoundTripZeroed(t *testing.T) {
	for _, n := range []int{1, 2, 3, 64, 1000, 4097} {
		s := GetC128(n)
		if len(s) != n {
			t.Fatalf("len %d, want %d", len(s), n)
		}
		for i := range s {
			s[i] = complex(1, 1)
		}
		PutC128(s)
		s2 := GetC128(n)
		for i, v := range s2 {
			if v != 0 {
				t.Fatalf("n=%d: reused buffer not zeroed at %d", n, i)
			}
		}
		PutC128(s2)

		f := GetF64(n)
		if len(f) != n {
			t.Fatalf("f64 len %d, want %d", len(f), n)
		}
		for i := range f {
			f[i] = 1
		}
		PutF64(f)
		f2 := GetF64(n)
		for i, v := range f2 {
			if v != 0 {
				t.Fatalf("n=%d: reused f64 buffer not zeroed at %d", n, i)
			}
		}
		PutF64(f2)
	}
}

func TestPoolForeignBufferIgnored(t *testing.T) {
	// A buffer whose capacity is not a pooled class must be dropped, not
	// poison the pool.
	odd := make([]float64, 10, 10)
	PutF64(odd)
	s := GetF64(10)
	if len(s) != 10 {
		t.Fatalf("len %d", len(s))
	}
}

func TestPoolConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := GetC128(1 << (i % 12))
				b := GetF64(100 + i)
				PutC128(a)
				PutF64(b)
			}
		}()
	}
	wg.Wait()
}

func TestCorrelateUsesPoolConsistently(t *testing.T) {
	// FFT path result must match the direct path after pooling.
	x := make([]float64, 700)
	h := make([]float64, 100)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	for i := range h {
		h[i] = float64(i%7) - 3
	}
	got := xcorrFFT(x, h, false)
	want := xcorrDirect(x, h, false)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("lag %d: fft %v direct %v", i, got[i], want[i])
		}
	}
}
