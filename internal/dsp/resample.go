package dsp

import "math"

// FractionalDelayTaps returns a windowed-sinc fractional-delay kernel that
// delays a signal by delay samples (may be non-integer, must be >= 0).
// numTaps controls kernel support; the kernel is centered so that its group
// delay equals floor(delay at center) + frac. The returned integer part is
// the whole-sample shift the caller applies separately; the kernel realizes
// only the fractional remainder plus (numTaps-1)/2 inherent delay.
func FractionalDelayTaps(frac float64, numTaps int) []float64 {
	if numTaps <= 0 {
		return nil
	}
	h := make([]float64, numTaps)
	center := float64(numTaps-1)/2 + frac
	var sum float64
	for i := 0; i < numTaps; i++ {
		t := float64(i) - center
		// Hann-windowed sinc.
		w := 0.5 + 0.5*math.Cos(math.Pi*t/(float64(numTaps)/2))
		if w < 0 {
			w = 0
		}
		h[i] = Sinc(t) * w
		sum += h[i]
	}
	// Normalize DC gain to 1 so amplitude is preserved.
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return h
}

// ResampleLinear resamples x by the given rate ratio (outputRate/inputRate)
// using linear interpolation. ratio must be positive. Used to model
// sampling-clock skew between nominally identical converters, where the
// ratio is within a few hundred ppm of 1 and linear interpolation error is
// far below the channel noise floor.
func ResampleLinear(x []float64, ratio float64) []float64 {
	if ratio <= 0 || len(x) == 0 {
		return nil
	}
	outLen := int(math.Floor(float64(len(x)-1)*ratio)) + 1
	if outLen < 1 {
		outLen = 1
	}
	out := make([]float64, outLen)
	for i := 0; i < outLen; i++ {
		pos := float64(i) / ratio
		i0 := int(pos)
		if i0 >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		f := pos - float64(i0)
		out[i] = x[i0]*(1-f) + x[i0+1]*f
	}
	return out
}

// ResampleSinc resamples x by ratio using a windowed-sinc interpolator with
// the given half-width (taps = 2*halfWidth+1 per output sample). Slower but
// more accurate than ResampleLinear; used for Doppler-shifted waveforms.
func ResampleSinc(x []float64, ratio float64, halfWidth int) []float64 {
	if ratio <= 0 || len(x) == 0 {
		return nil
	}
	if halfWidth < 1 {
		halfWidth = 8
	}
	outLen := int(math.Floor(float64(len(x)-1)*ratio)) + 1
	out := make([]float64, outLen)
	for i := 0; i < outLen; i++ {
		pos := float64(i) / ratio
		i0 := int(math.Floor(pos))
		var acc, wsum float64
		for k := i0 - halfWidth + 1; k <= i0+halfWidth; k++ {
			if k < 0 || k >= len(x) {
				continue
			}
			t := pos - float64(k)
			w := 0.5 + 0.5*math.Cos(math.Pi*t/float64(halfWidth))
			if w < 0 {
				w = 0
			}
			c := Sinc(t) * w
			acc += x[k] * c
			wsum += c
		}
		if wsum != 0 {
			acc /= wsum
		}
		out[i] = acc
	}
	return out
}

// MixDown multiplies x by a complex exponential at -fHz, producing the
// baseband analytic product used by FMCW receivers. Returns a new slice.
func MixDown(x []float64, fHz, fs float64) []complex128 {
	out := make([]complex128, len(x))
	w := -2 * math.Pi * fHz / fs
	for i, v := range x {
		s, c := math.Sincos(w * float64(i))
		out[i] = complex(v*c, v*s)
	}
	return out
}
