package dsp

import (
	"math"
	"testing"
)

func TestResampleLinearIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := ResampleLinear(x, 1.0)
	if len(y) != len(x) {
		t.Fatalf("identity length %d, want %d", len(y), len(x))
	}
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("identity mismatch at %d", i)
		}
	}
}

func TestResampleLinearUpsampleSine(t *testing.T) {
	const n = 500
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5 * float64(i) / n)
	}
	y := ResampleLinear(x, 2.0)
	// Interpolated signal should match the analytic sine closely.
	for i := 0; i < len(y); i++ {
		want := math.Sin(2 * math.Pi * 5 * float64(i) / (2 * n))
		if math.Abs(y[i]-want) > 0.01 {
			t.Fatalf("upsample error %g at %d", math.Abs(y[i]-want), i)
		}
	}
}

func TestResampleLinearSkewPPM(t *testing.T) {
	// A 100 ppm skew over 44100 samples shifts the end by ~4.4 samples.
	n := 44100
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	y := ResampleLinear(x, 1+100e-6)
	if len(y) <= n {
		t.Fatalf("skewed output should be longer: %d vs %d", len(y), n)
	}
	// Sample y[n-1] corresponds to input position (n-1)/(1+1e-4).
	wantPos := float64(n-1) / (1 + 100e-6)
	if math.Abs(y[n-1]-wantPos) > 0.01 {
		t.Fatalf("skew position mismatch: got %g want %g", y[n-1], wantPos)
	}
}

func TestResampleDegenerate(t *testing.T) {
	if ResampleLinear(nil, 1) != nil {
		t.Error("nil input should give nil")
	}
	if ResampleLinear([]float64{1}, 0) != nil {
		t.Error("zero ratio should give nil")
	}
	if ResampleSinc(nil, 1, 8) != nil {
		t.Error("nil sinc input should give nil")
	}
	if ResampleSinc([]float64{1, 2}, -1, 8) != nil {
		t.Error("negative ratio should give nil")
	}
}

func TestResampleSincBeatsLinearOnSine(t *testing.T) {
	const n = 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 200 * float64(i) / n) // fairly high freq
	}
	ratio := 1.037
	lin := ResampleLinear(x, ratio)
	snc := ResampleSinc(x, ratio, 16)
	errAt := func(y []float64) float64 {
		var worst float64
		for i := 50; i < len(y)-50; i++ { // skip edges
			want := math.Sin(2 * math.Pi * 200 * (float64(i) / ratio) / n)
			if e := math.Abs(y[i] - want); e > worst {
				worst = e
			}
		}
		return worst
	}
	le, se := errAt(lin), errAt(snc)
	if se >= le {
		t.Errorf("sinc error %g should beat linear error %g", se, le)
	}
	if se > 0.01 {
		t.Errorf("sinc interpolation error too large: %g", se)
	}
}

func TestFractionalDelayTaps(t *testing.T) {
	h := FractionalDelayTaps(0.5, 33)
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DC gain = %g, want 1", sum)
	}
	if FractionalDelayTaps(0.3, 0) != nil {
		t.Error("zero taps should be nil")
	}
	// Applying the kernel to a sine should shift it by (taps-1)/2 + frac.
	const n, f = 512, 10.0
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / n)
	}
	frac := 0.37
	taps := FractionalDelayTaps(frac, 33)
	y := Filter(taps, x)
	delay := float64(len(taps)-1)/2 + frac
	for i := 100; i < n-100; i++ {
		want := math.Sin(2 * math.Pi * f * (float64(i) - delay) / n)
		if math.Abs(y[i]-want) > 0.02 {
			t.Fatalf("fractional delay error %g at %d", math.Abs(y[i]-want), i)
		}
	}
}

func TestMixDown(t *testing.T) {
	// Mixing a cosine at f down by f produces a DC term of amplitude 1/2.
	const fs, f, n = 44100.0, 3000.0, 4410
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * f * float64(i) / fs)
	}
	mixed := MixDown(x, f, fs)
	var mean complex128
	for _, v := range mixed {
		mean += v
	}
	mean /= complex(float64(n), 0)
	if math.Abs(real(mean)-0.5) > 0.01 || math.Abs(imag(mean)) > 0.01 {
		t.Errorf("mixdown DC = %v, want 0.5+0i", mean)
	}
}
