package dsp

import (
	"fmt"
)

// Real-input transforms on the split radix-4/2 kernel. A real length-n
// signal packs into an n/2-point complex transform (adjacent sample pairs
// as re/im) and one untangle pass recovers the true spectrum, so a real
// transform costs roughly half its complex counterpart — the reason
// CrossCorrelate, Convolve, AutoCorrelate, Matcher and MatcherBank all
// run on this path.
//
// Three spectrum representations exist:
//
//   - The public RFFT/IRFFT speak []complex128 (bins 0..n/2), the
//     package's stable API.
//   - The internal rfftInto/irfftInto speak natural-order split re/im
//     planes — used where actual bin values matter (AutoCorrelate's
//     power spectrum, template spectrum construction).
//   - The correlation hot paths never leave the kernel's digit-reversed
//     packed order at all: rfftPacked (DIF forward, natural input →
//     permuted packed spectrum), the fused folds foldSpecMulTo/foldTwo
//     (untangle ⊙ multiply ⊙ retangle in the permuted domain, in place),
//     and the DIT inverse (permuted input → natural output). Every memory
//     stream in that pipeline is sequential except the fold table's
//     partner-position lookup; see foldTable in tables.go.

// rfftHalf deinterleaves the real signal x (len n, a power of two) into
// the kernel's digit-reversed split layout and runs the forward n/2-point
// transform; zre/zim (len n/2) end up holding the natural-order packed
// spectrum z[k] = E[k] + i·O[k] of the even/odd sample subsequences.
func rfftHalf(zre, zim, x []float64) {
	for i, p := range permFor(len(x) / 2) {
		zre[i] = x[2*int(p)]
		zim[i] = x[2*int(p)+1]
	}
	fftSoA(zre, zim, false)
}

// RFFT computes the non-negative-frequency half of the DFT of a real
// signal whose length n is a power of two, writing bins 0..n/2 into dst
// (len(dst) must be n/2+1). The remaining bins follow from conjugate
// symmetry: X[n-k] = conj(X[k]). x is left unmodified.
func RFFT(dst []complex128, x []float64) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: RFFT length %d is not a power of two", n))
	}
	if len(dst) != n/2+1 {
		panic(fmt.Sprintf("dsp: RFFT needs %d output bins, got %d", n/2+1, len(dst)))
	}
	if n == 1 {
		dst[0] = complex(x[0], 0)
		return
	}
	h := n / 2
	zre := GetF64(h)
	zim := GetF64(h)
	rfftHalf(zre, zim, x)
	// Untangle: X[k] = E[k] + w^k·O[k] (w = e^{-2πi/n}); the mirror bin is
	// X[h-k] = conj(E[k] - w^k·O[k]).
	dst[0] = complex(zre[0]+zim[0], 0)
	dst[h] = complex(zre[0]-zim[0], 0)
	ht := halfTwiddlesFor(n)
	for k := 1; 2*k <= h; k++ {
		zkr, zki := zre[k], zim[k]
		zcr, zci := zre[h-k], -zim[h-k]
		er, ei := (zkr+zcr)*0.5, (zki+zci)*0.5
		or, oi := (zki-zci)*0.5, (zcr-zkr)*0.5 // (z[k]-conj(z[h-k])) / 2i
		tr := ht.re[k]*or - ht.im[k]*oi
		ti := ht.re[k]*oi + ht.im[k]*or
		dst[k] = complex(er+tr, ei+ti)
		dst[h-k] = complex(er-tr, ti-ei)
	}
	PutF64(zim)
	PutF64(zre)
}

// rfftInto is RFFT with split-plane output: dre/dim (len n/2+1 each)
// receive the spectrum bins 0..n/2 as separate re/im arrays — the cached
// template-spectrum format the fused correlation folds consume.
func rfftInto(dre, dim []float64, x []float64) {
	n := len(x)
	h := n / 2
	if n == 1 {
		dre[0], dim[0] = x[0], 0
		return
	}
	zre := GetF64(h)
	zim := GetF64(h)
	rfftHalf(zre, zim, x)
	dre[0], dim[0] = zre[0]+zim[0], 0
	dre[h], dim[h] = zre[0]-zim[0], 0
	ht := halfTwiddlesFor(n)
	for k := 1; 2*k <= h; k++ {
		zkr, zki := zre[k], zim[k]
		zcr, zci := zre[h-k], -zim[h-k]
		er, ei := (zkr+zcr)*0.5, (zki+zci)*0.5
		or, oi := (zki-zci)*0.5, (zcr-zkr)*0.5
		tr := ht.re[k]*or - ht.im[k]*oi
		ti := ht.re[k]*oi + ht.im[k]*or
		dre[k], dim[k] = er+tr, ei+ti
		dre[h-k], dim[h-k] = er-tr, ti-ei
	}
	PutF64(zim)
	PutF64(zre)
}

// IRFFT inverts an RFFT spectrum (bins 0..n/2, len(spec) = n/2+1) back
// into the length-n real signal, n = len(dst) a power of two. Only the
// real parts of spec[0] and spec[n/2] participate, matching the conjugate
// symmetry of a real signal's spectrum. spec is left unmodified. The
// result includes the full 1/n inverse scaling.
func IRFFT(dst []float64, spec []complex128) {
	n := len(dst)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: IRFFT length %d is not a power of two", n))
	}
	if len(spec) != n/2+1 {
		panic(fmt.Sprintf("dsp: IRFFT needs %d input bins, got %d", n/2+1, len(spec)))
	}
	if n == 1 {
		dst[0] = real(spec[0])
		return
	}
	h := n / 2
	zre := GetF64(h)
	zim := GetF64(h)
	// Retangle: E[k] = (X[k]+conj(X[h-k]))/2 and w^k·O[k] =
	// (X[k]-conj(X[h-k]))/2, then rebuild the packed half-length spectrum
	// z[k] = E[k] + i·O[k] and its mirror from conjugate symmetry,
	// scattering straight into the inverse kernel's digit-reversed order.
	ip := ipermFor(h)
	zre[ip[0]], zim[ip[0]] = (real(spec[0])+real(spec[h]))*0.5, (real(spec[0])-real(spec[h]))*0.5
	ht := halfTwiddlesFor(n)
	for k := 1; 2*k <= h; k++ {
		xkr, xki := real(spec[k]), imag(spec[k])
		xcr, xci := real(spec[h-k]), -imag(spec[h-k])
		er, ei := (xkr+xcr)*0.5, (xki+xci)*0.5
		sr, si := (xkr-xcr)*0.5, (xki-xci)*0.5
		or, oi := sr*ht.re[k]+si*ht.im[k], si*ht.re[k]-sr*ht.im[k] // s · conj(w^k)
		zre[ip[k]], zim[ip[k]] = er-oi, ei+or                      // e + i·o
		zre[ip[h-k]], zim[ip[h-k]] = er+oi, or-ei                  // conj(e) + i·conj(o)
	}
	fftSoA(zre, zim, true)
	s := 1 / float64(h)
	for j := 0; j < h; j++ {
		dst[2*j] = zre[j] * s
		dst[2*j+1] = zim[j] * s
	}
	PutF64(zim)
	PutF64(zre)
}

// irfftInto is IRFFT from a split-plane spectrum (sre/sim, len n/2+1),
// n = len(dst). Only the real parts of bins 0 and n/2 participate.
func irfftInto(dst []float64, sre, sim []float64) {
	n := len(dst)
	h := n / 2
	if n == 1 {
		dst[0] = sre[0]
		return
	}
	zre := GetF64(h)
	zim := GetF64(h)
	ip := ipermFor(h)
	zre[ip[0]], zim[ip[0]] = (sre[0]+sre[h])*0.5, (sre[0]-sre[h])*0.5
	ht := halfTwiddlesFor(n)
	for k := 1; 2*k <= h; k++ {
		xkr, xki := sre[k], sim[k]
		xcr, xci := sre[h-k], -sim[h-k]
		er, ei := (xkr+xcr)*0.5, (xki+xci)*0.5
		sr, si := (xkr-xcr)*0.5, (xki-xci)*0.5
		or, oi := sr*ht.re[k]+si*ht.im[k], si*ht.re[k]-sr*ht.im[k] // s · conj(w^k)
		zre[ip[k]], zim[ip[k]] = er-oi, ei+or
		zre[ip[h-k]], zim[ip[h-k]] = er+oi, or-ei
	}
	fftSoA(zre, zim, true)
	s := 1 / float64(h)
	for j := 0; j < h; j++ {
		dst[2*j] = zre[j] * s
		dst[2*j+1] = zim[j] * s
	}
	PutF64(zim)
	PutF64(zre)
}

// rfftPacked deinterleaves the real signal x — zero-extended on the right
// to length 2·len(zre) — into the split planes in natural order and runs
// the forward DIF half-length transform. zre/zim end up holding the
// packed spectrum z[k] = E[k] + i·O[k] in the kernel's digit-reversed
// position order (bin perm[i] at position i). There is no padded staging
// buffer and no gather pass: zero-padding, deinterleave and permutation
// all dissolve into this one sequential loop plus the DIF ladder.
func rfftPacked(zre, zim []float64, x []float64) {
	h := len(zre)
	m := len(x) / 2
	for j := 0; j < m; j++ {
		zre[j] = x[2*j]
		zim[j] = x[2*j+1]
	}
	if len(x)&1 == 1 {
		zre[m], zim[m] = x[len(x)-1], 0
		m++
	}
	for j := m; j < h; j++ {
		zre[j], zim[j] = 0, 0
	}
	fftSoADIF(zre, zim)
}

// interleaveScaled writes the first len(dst) samples of an inverse
// half-length transform's natural-order packed output into dst with the
// 1/h scale. Correlation callers keep only the valid lags, so the
// wrapped tail of the circular result is never even interleaved.
func interleaveScaled(dst []float64, zre, zim []float64, h int) {
	s := 1 / float64(h)
	n := len(dst)
	for j := 0; 2*j+1 < n; j++ {
		dst[2*j] = zre[j] * s
		dst[2*j+1] = zim[j] * s
	}
	if n&1 == 1 {
		dst[n-1] = zre[n/2] * s
	}
}

// foldSpec is a template spectrum rearranged into fold-table order for
// one padded size n: DC and Nyquist as scalars (bins 0 and n/2, real by
// conjugate symmetry of a real template), the self-conjugate bin n/4 as
// one complex scalar, and the conjugate bin pairs as four arrays aligned
// with foldTableFor(n)'s pair order, so foldSpecMulTo streams them
// sequentially alongside the twiddles. Any conjugation (matched filters
// cache conj(H)) is baked in at construction.
type foldSpec struct {
	s0, sh   float64   // bins 0 and n/2
	smr, smi float64   // bin n/4 (zero-valued fields when n < 4)
	are, aim []float64 // S[k] per pair
	bre, bim []float64 // S[h-k] per pair
}

// newFoldSpec rearranges a natural-order split-plane spectrum (n/2+1
// bins) into fold order for padded size n >= 2.
func newFoldSpec(sre, sim []float64, n int) *foldSpec {
	h := n / 2
	ft := foldTableFor(n)
	perm := permFor(h)
	fs := &foldSpec{s0: sre[0], sh: sre[h]}
	if ft.mid >= 0 {
		fs.smr, fs.smi = sre[h/2], sim[h/2]
	}
	np := len(ft.ia)
	fs.are = make([]float64, np)
	fs.aim = make([]float64, np)
	fs.bre = make([]float64, np)
	fs.bim = make([]float64, np)
	for p, i := range ft.ia {
		k := int(perm[i])
		fs.are[p], fs.aim[p] = sre[k], sim[k]
		fs.bre[p], fs.bim[p] = sre[h-k], sim[h-k]
	}
	return fs
}

// foldSpecMulTo is the fused frequency-domain core of every cached
// matched filter: given the packed stream spectrum in digit-reversed
// order (zre/zim, length n/2, from rfftPacked), it untangles each
// conjugate bin pair to the true bins X[k], X[h-k], multiplies by the
// cached template spectrum and retangles the product straight back into
// packed digit-reversed order in dzre/dzim — ready for the DIT inverse.
// One pass, entirely in the permuted domain: untangle, multiply and
// retangle share the pair's twiddle, the template and twiddles stream
// sequentially, and only the fold table's ib side jumps around. dst may
// alias src (the one-shot paths fold in place); every position is
// written exactly once, so a distinct dst needs no pre-clearing.
func foldSpecMulTo(dzre, dzim, zre, zim []float64, fs *foldSpec, n int) {
	ft := foldTableFor(n)
	// Position 0 packs DC and Nyquist: X[0] = z0r+z0i, X[h] = z0r-z0i,
	// both real, multiplied bin-wise and re-packed the same way.
	z0r, z0i := zre[0], zim[0]
	y0 := (z0r + z0i) * fs.s0
	yh := (z0r - z0i) * fs.sh
	dzre[0], dzim[0] = (y0+yh)*0.5, (y0-yh)*0.5
	if m := ft.mid; m >= 0 {
		// Self-conjugate bin h/2: w^{h/2} = -j collapses the untangle to
		// X = conj(z[m]) and the retangle to conj(Y).
		xr, xi := zre[m], -zim[m]
		yr, yi := xr*fs.smr-xi*fs.smi, xr*fs.smi+xi*fs.smr
		dzre[m], dzim[m] = yr, -yi
	}
	ia := ft.ia
	ib := ft.ib[:len(ia)]
	wre := ft.wre[:len(ia)]
	wim := ft.wim[:len(ia)]
	are := fs.are[:len(ia)]
	aim := fs.aim[:len(ia)]
	bre := fs.bre[:len(ia)]
	bim := fs.bim[:len(ia)]
	for p, i := range ia {
		j := ib[p]
		zar, zai := zre[i], zim[i]
		zbr, zbi := zre[j], zim[j]
		er, ei := (zar+zbr)*0.5, (zai-zbi)*0.5
		or, oi := (zai+zbi)*0.5, (zbr-zar)*0.5 // (z_a - conj(z_b)) / 2j
		tr := wre[p]*or - wim[p]*oi
		ti := wre[p]*oi + wim[p]*or
		xar, xai := er+tr, ei+ti // X[k]
		xbr, xbi := er-tr, ti-ei // X[h-k] = conj(e - w^k·o)
		yar, yai := xar*are[p]-xai*aim[p], xar*aim[p]+xai*are[p]
		ybr, ybi := xbr*bre[p]-xbi*bim[p], xbr*bim[p]+xbi*bre[p]
		er, ei = (yar+ybr)*0.5, (yai-ybi)*0.5
		sr, si := (yar-ybr)*0.5, (yai+ybi)*0.5
		or, oi = sr*wre[p]+si*wim[p], si*wre[p]-sr*wim[p] // s · conj(w^k)
		dzre[i], dzim[i] = er-oi, ei+or
		dzre[j], dzim[j] = er+oi, or-ei
	}
}

// foldTwo is foldSpecMulTo's two-input sibling for the one-shot paths
// (CrossCorrelate, Convolve): both operands arrive as packed
// digit-reversed spectra, the filter side is untangled on the fly with
// the pair's shared twiddle — conjugated when conj is set, the
// correlation case — and the product is retangled into zre/zim in place.
// Natural-order spectrum arrays never exist at all.
func foldTwo(zre, zim, hre, him []float64, n int, conj bool) {
	if n == 1 {
		zre[0] *= hre[0]
		return
	}
	ft := foldTableFor(n)
	z0r, z0i := zre[0], zim[0]
	h0r, h0i := hre[0], him[0]
	y0 := (z0r + z0i) * (h0r + h0i) // DC and Nyquist bins are real:
	yh := (z0r - z0i) * (h0r - h0i) // conjugation is a no-op there
	zre[0], zim[0] = (y0+yh)*0.5, (y0-yh)*0.5
	if m := ft.mid; m >= 0 {
		xr, xi := zre[m], -zim[m]
		sr, si := hre[m], -him[m]
		if conj {
			si = -si
		}
		yr, yi := xr*sr-xi*si, xr*si+xi*sr
		zre[m], zim[m] = yr, -yi
	}
	ia := ft.ia
	ib := ft.ib[:len(ia)]
	wre := ft.wre[:len(ia)]
	wim := ft.wim[:len(ia)]
	for p, i := range ia {
		j := ib[p]
		zar, zai := zre[i], zim[i]
		zbr, zbi := zre[j], zim[j]
		er, ei := (zar+zbr)*0.5, (zai-zbi)*0.5
		or, oi := (zai+zbi)*0.5, (zbr-zar)*0.5
		tr := wre[p]*or - wim[p]*oi
		ti := wre[p]*oi + wim[p]*or
		xar, xai := er+tr, ei+ti
		xbr, xbi := er-tr, ti-ei
		har, hai := hre[i], him[i]
		hbr, hbi := hre[j], him[j]
		er2, ei2 := (har+hbr)*0.5, (hai-hbi)*0.5
		or2, oi2 := (hai+hbi)*0.5, (hbr-har)*0.5
		tr2 := wre[p]*or2 - wim[p]*oi2
		ti2 := wre[p]*oi2 + wim[p]*or2
		sar, sai := er2+tr2, ei2+ti2
		sbr, sbi := er2-tr2, ti2-ei2
		if conj {
			sai, sbi = -sai, -sbi
		}
		yar, yai := xar*sar-xai*sai, xar*sai+xai*sar
		ybr, ybi := xbr*sbr-xbi*sbi, xbr*sbi+xbi*sbr
		er, ei = (yar+ybr)*0.5, (yai-ybi)*0.5
		sr2, si2 := (yar-ybr)*0.5, (yai+ybi)*0.5
		or, oi = sr2*wre[p]+si2*wim[p], si2*wre[p]-sr2*wim[p]
		zre[i], zim[i] = er-oi, ei+or
		zre[j], zim[j] = er+oi, or-ei
	}
}
