package dsp

import (
	"fmt"
	"math/cmplx"
)

// RFFT computes the non-negative-frequency half of the DFT of a real
// signal whose length n is a power of two, writing bins 0..n/2 into dst
// (len(dst) must be n/2+1). The remaining bins follow from conjugate
// symmetry: X[n-k] = conj(X[k]).
//
// The transform packs adjacent sample pairs into an n/2-point complex
// FFT and untangles the even/odd spectra with one pass over the shared
// twiddle table, so a real transform costs roughly half its complex
// counterpart — the reason CrossCorrelate, Convolve, AutoCorrelate and
// Matcher all run on this path. x is left unmodified.
func RFFT(dst []complex128, x []float64) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: RFFT length %d is not a power of two", n))
	}
	if len(dst) != n/2+1 {
		panic(fmt.Sprintf("dsp: RFFT needs %d output bins, got %d", n/2+1, len(dst)))
	}
	if n == 1 {
		dst[0] = complex(x[0], 0)
		return
	}
	h := n / 2
	z := GetC128(h)
	defer PutC128(z)
	for j := 0; j < h; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	fftPow2(z, false)
	// Untangle: with E/O the half-length spectra of the even/odd
	// subsequences, z[k] = E[k] + i·O[k] and X[k] = E[k] + w^k·O[k]
	// (w = e^{-2πi/n}); the mirror bin is X[h-k] = conj(E[k] - w^k·O[k]).
	dst[0] = complex(real(z[0])+imag(z[0]), 0)
	dst[h] = complex(real(z[0])-imag(z[0]), 0)
	w := twiddlesFor(n) // w[k] = e^{-2πik/n}
	for k := 1; 2*k <= h; k++ {
		zk, zc := z[k], cmplx.Conj(z[h-k])
		e := (zk + zc) * complex(0.5, 0)
		o := (zk - zc) * complex(0, -0.5) // (zk - zc) / 2i
		t := w[k] * o
		dst[k] = e + t
		dst[h-k] = cmplx.Conj(e - t)
	}
}

// IRFFT inverts an RFFT spectrum (bins 0..n/2, len(spec) = n/2+1) back
// into the length-n real signal, n = len(dst) a power of two. Only the
// real parts of spec[0] and spec[n/2] participate, matching the conjugate
// symmetry of a real signal's spectrum. spec is left unmodified. The
// result includes the full 1/n inverse scaling.
func IRFFT(dst []float64, spec []complex128) {
	n := len(dst)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: IRFFT length %d is not a power of two", n))
	}
	if len(spec) != n/2+1 {
		panic(fmt.Sprintf("dsp: IRFFT needs %d input bins, got %d", n/2+1, len(spec)))
	}
	if n == 1 {
		dst[0] = real(spec[0])
		return
	}
	h := n / 2
	z := GetC128(h)
	defer PutC128(z)
	// Retangle: E[k] = (X[k]+conj(X[h-k]))/2 and w^k·O[k] =
	// (X[k]-conj(X[h-k]))/2, then rebuild the packed half-length spectrum
	// z[k] = E[k] + i·O[k] and its mirror from conjugate symmetry.
	z[0] = complex((real(spec[0])+real(spec[h]))*0.5, (real(spec[0])-real(spec[h]))*0.5)
	w := twiddlesFor(n)
	for k := 1; 2*k <= h; k++ {
		xk, xc := spec[k], cmplx.Conj(spec[h-k])
		e := (xk + xc) * complex(0.5, 0)
		o := (xk - xc) * complex(0.5, 0) * cmplx.Conj(w[k])
		z[k] = e + complex(0, 1)*o
		z[h-k] = cmplx.Conj(e) + complex(0, 1)*cmplx.Conj(o)
	}
	fftPow2(z, true)
	s := 1 / float64(h)
	for j := 0; j < h; j++ {
		dst[2*j] = real(z[j]) * s
		dst[2*j+1] = imag(z[j]) * s
	}
}
