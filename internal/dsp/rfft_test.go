package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

func randReal(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

// rfftNaive is the O(N^2) reference: the first n/2+1 bins of the DFT of a
// real signal.
func rfftNaive(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n/2+1)
	for k := range out {
		var s complex128
		for t, v := range x {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += complex(v, 0) * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

func TestRFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randReal(r, n)
		want := rfftNaive(x)
		got := make([]complex128, n/2+1)
		RFFT(got, x)
		if e := maxErrC(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: RFFT max error %g", n, e)
		}
	}
}

func TestRFFTMatchesFullComplexFFT(t *testing.T) {
	// RFFT bins must equal the first half of the full complex FFT, and the
	// implied upper half must satisfy conjugate symmetry.
	r := rand.New(rand.NewSource(21))
	n := 512
	x := randReal(r, n)
	full := make([]complex128, n)
	for i, v := range x {
		full[i] = complex(v, 0)
	}
	FFT(full)
	half := make([]complex128, n/2+1)
	RFFT(half, x)
	for k := 0; k <= n/2; k++ {
		if cmplx.Abs(half[k]-full[k]) > 1e-9 {
			t.Fatalf("bin %d: RFFT %v vs FFT %v", k, half[k], full[k])
		}
	}
	for k := 1; k < n/2; k++ {
		if cmplx.Abs(cmplx.Conj(half[k])-full[n-k]) > 1e-9 {
			t.Fatalf("conjugate symmetry broken at bin %d", k)
		}
	}
}

func TestRFFTOddLengthViaPadding(t *testing.T) {
	// Odd/awkward payload lengths reach RFFT zero-padded to the next power
	// of two (how every correlation path uses it); the padded spectrum must
	// match the naive DFT of the padded signal.
	r := rand.New(rand.NewSource(22))
	for _, n := range []int{3, 5, 17, 100, 173, 300, 540} {
		m := NextPow2(n)
		pad := make([]float64, m)
		copy(pad, randReal(r, n))
		want := rfftNaive(pad)
		got := make([]complex128, m/2+1)
		RFFT(got, pad)
		if e := maxErrC(got, want); e > 1e-9*float64(m) {
			t.Errorf("n=%d (padded to %d): RFFT max error %g", n, m, e)
		}
	}
}

func TestIRFFTInvertsRFFT(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 4, 8, 32, 256, 2048} {
		x := randReal(r, n)
		spec := make([]complex128, n/2+1)
		RFFT(spec, x)
		back := make([]float64, n)
		IRFFT(back, spec)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestRFFTDoesNotModifyInput(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	x := randReal(r, 128)
	orig := append([]float64(nil), x...)
	spec := make([]complex128, 65)
	RFFT(spec, x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("RFFT modified input at %d", i)
		}
	}
	IRFFT(make([]float64, 128), spec)
	specOrig := append([]complex128(nil), spec...)
	for i := range spec {
		if spec[i] != specOrig[i] {
			t.Fatalf("IRFFT modified spectrum at %d", i)
		}
	}
}

func TestRFFTPanicsOnBadLengths(t *testing.T) {
	for name, fn := range map[string]func(){
		"non-pow2 input":   func() { RFFT(make([]complex128, 2), make([]float64, 3)) },
		"short output":     func() { RFFT(make([]complex128, 4), make([]float64, 8)) },
		"irfft non-pow2":   func() { IRFFT(make([]float64, 6), make([]complex128, 4)) },
		"irfft bins wrong": func() { IRFFT(make([]float64, 8), make([]complex128, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestConcurrentTransformsShareTables hammers the package twiddle/bit-rev
// tables and the Bluestein cache from many goroutines at mixed sizes.
// Run under -race this proves the published tables are safe to share.
func TestConcurrentTransformsShareTables(t *testing.T) {
	sizes := []int{8, 64, 256, 1024, 4096}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				n := sizes[i%len(sizes)]
				x := randReal(r, n)
				spec := make([]complex128, n/2+1)
				RFFT(spec, x)
				back := make([]float64, n)
				IRFFT(back, spec)
				for j := range x {
					if math.Abs(back[j]-x[j]) > 1e-8 {
						t.Errorf("goroutine %d: roundtrip mismatch", seed)
						return
					}
				}
				// Exercise the Bluestein path (shared chirp cache) too.
				c := randComplex(r, 173)
				p := NewPlan(173)
				p.Forward(c)
				p.Inverse(c)
			}
		}(int64(g))
	}
	wg.Wait()
}

func BenchmarkRFFT(b *testing.B) {
	// The padded length of a 2 s stream correlation (see
	// BenchmarkCrossCorrelatePreambleLen): 131072 samples.
	const n = 1 << 17
	x := randReal(rand.New(rand.NewSource(1)), n)
	spec := make([]complex128, n/2+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RFFT(spec, x)
	}
}

func BenchmarkIRFFT(b *testing.B) {
	const n = 1 << 17
	x := randReal(rand.New(rand.NewSource(1)), n)
	spec := make([]complex128, n/2+1)
	RFFT(spec, x)
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IRFFT(out, spec)
	}
}
