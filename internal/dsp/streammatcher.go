package dsp

// StreamMatcher is an incremental overlap-save correlator for one
// Matcher's template: the streaming counterpart of Matcher.CrossCorrelate
// for audio that arrives buffer by buffer, the way an OS audio callback
// delivers it. Feed accepts chunks of any length (including empty) and
// returns the correlation lags that became computable; Flush ends the
// stream and returns the zero-padded tail lags.
//
// Blocks sit on a fixed absolute grid — multiples of the block hop from
// sample 0 — so the concatenated output is bit-for-bit identical for
// every chunk partition of the same stream. Against Matcher.CrossCorrelate
// on the concatenation, agreement is at floating-point rounding level
// (≲1e-9 for normalized outputs): the one-shot path picks whole-stream or
// factor-8 blocks for throughput, while a streaming session uses smaller
// factor-2 blocks so lags emit with about one template length of latency
// instead of several seconds' worth of audio.
//
// A StreamMatcher carries O(block length) state and is not safe for
// concurrent use; open one per stream. Sessions share the parent
// Matcher's cached template spectrum read-only, so any number of
// concurrent sessions (and one-shot calls) may run against one Matcher.
type StreamMatcher struct {
	bs *BankStream
}

// streamBlockFactor sizes streaming-session FFT blocks relative to the
// template. 2 halves the per-block valid fraction against osBlockFactor's
// 8 (≈53% instead of ≈87%, a ~1.6× transform-work premium) but cuts the
// emission latency four-fold — the right trade for a live receiver that
// wants detections while the diver is still mid-gesture.
const streamBlockFactor = 2

// Stream opens an incremental raw-correlation session for the template.
func (mt *Matcher) Stream() *StreamMatcher {
	return &StreamMatcher{bs: newMatcherBank(streamBlockFactor, []*Matcher{mt}).Stream()}
}

// StreamNormalized opens an incremental session whose output is
// normalized by template and local window energy (values in [-1, 1],
// matching Matcher.NormalizedCrossCorrelate).
func (mt *Matcher) StreamNormalized() *StreamMatcher {
	return &StreamMatcher{bs: newMatcherBank(streamBlockFactor, []*Matcher{mt}).StreamNormalized()}
}

// Feed consumes one chunk and returns the newly computable correlation
// lags. The returned slice aliases a session-owned buffer: it is valid
// until the next Feed or Flush call and must be copied to persist.
func (s *StreamMatcher) Feed(chunk []float64) []float64 {
	return s.bs.Feed(chunk)[0]
}

// Flush ends the stream and returns the remaining lags, completing the
// exact valid-lag correlation of everything fed: lag counts total
// fed - templateLen + 1 (none for streams shorter than the template).
// The session cannot be fed afterwards.
func (s *StreamMatcher) Flush() []float64 {
	return s.bs.Flush()[0]
}

// Fed returns the number of stream samples consumed so far.
func (s *StreamMatcher) Fed() int { return s.bs.Fed() }

// TemplateLen returns the template length in samples.
func (s *StreamMatcher) TemplateLen() int { return s.bs.bank.maxLen }

// BlockLen returns the overlap-save FFT block length in use.
func (s *StreamMatcher) BlockLen() int { return s.bs.bank.block }
