package dsp

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// feedPartition drives a stream session over an arbitrary chunk partition
// of x and returns the concatenated output lags.
func feedPartition(s *StreamMatcher, x []float64, cuts []int) []float64 {
	var out []float64
	prev := 0
	for _, c := range cuts {
		out = append(out, s.Feed(x[prev:c])...)
		prev = c
	}
	out = append(out, s.Feed(x[prev:])...)
	return append(out, s.Flush()...)
}

// randomCuts draws a sorted set of chunk boundaries in [0, n], including
// degenerate empty chunks with some probability.
func randomCuts(r *rand.Rand, n int) []int {
	k := r.Intn(8)
	cuts := make([]int, 0, k)
	for i := 0; i < k; i++ {
		cuts = append(cuts, r.Intn(n+1))
	}
	slices.Sort(cuts)
	return cuts
}

// TestStreamMatcherEquivalence is the StreamMatcher half of the streaming
// equivalence harness: over randomized chunk partitions (sizes from 0 to
// whole-stream, boundaries anywhere — including inside the template span
// of a lag) the concatenated output must match Matcher.CrossCorrelate
// within 1e-9 per lag, and be bit-identical to the single-chunk feed of
// the same session type.
func TestStreamMatcherEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for _, tc := range []struct{ nx, nh int }{
		{500, 64},
		{2000, 200},
		{9000, 1024},
		{40000, 1024}, // long enough that Matcher itself picks overlap-save
		{300, 300},    // single lag
		{1000, 999},
	} {
		x := randReal(r, tc.nx)
		h := randReal(r, tc.nh)
		mt := NewMatcher(h)
		wantRaw := mt.CrossCorrelate(x)
		wantNorm := mt.NormalizedCrossCorrelate(x)
		oneChunkRaw := feedPartition(mt.Stream(), x, nil)
		oneChunkNorm := feedPartition(mt.StreamNormalized(), x, nil)
		for i := range wantRaw {
			if math.Abs(wantRaw[i]-oneChunkRaw[i]) > 1e-9*(1+math.Abs(wantRaw[i])) {
				t.Fatalf("nx=%d nh=%d: one-chunk raw lag %d: %g vs %g", tc.nx, tc.nh, i, oneChunkRaw[i], wantRaw[i])
			}
			if math.Abs(wantNorm[i]-oneChunkNorm[i]) > 1e-9 {
				t.Fatalf("nx=%d nh=%d: one-chunk normalized lag %d: %g vs %g", tc.nx, tc.nh, i, oneChunkNorm[i], wantNorm[i])
			}
		}
		for trial := 0; trial < 10; trial++ {
			cuts := randomCuts(r, tc.nx)
			raw := feedPartition(mt.Stream(), x, cuts)
			norm := feedPartition(mt.StreamNormalized(), x, cuts)
			if len(raw) != len(wantRaw) || len(norm) != len(wantNorm) {
				t.Fatalf("nx=%d nh=%d cuts=%v: lengths %d/%d, want %d", tc.nx, tc.nh, cuts, len(raw), len(norm), len(wantRaw))
			}
			for i := range raw {
				// Chunk-partition invariance is exact: same absolute block
				// grid, same transforms, bit for bit.
				if raw[i] != oneChunkRaw[i] {
					t.Fatalf("nx=%d nh=%d cuts=%v: raw lag %d not bit-identical: %v vs %v", tc.nx, tc.nh, cuts, i, raw[i], oneChunkRaw[i])
				}
				if norm[i] != oneChunkNorm[i] {
					t.Fatalf("nx=%d nh=%d cuts=%v: normalized lag %d not bit-identical: %v vs %v", tc.nx, tc.nh, cuts, i, norm[i], oneChunkNorm[i])
				}
			}
		}
	}
}

// TestStreamMatcherSampleBySample feeds one sample at a time — the most
// adversarial partition — against the one-shot reference.
func TestStreamMatcherSampleBySample(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	x := randReal(r, 1200)
	h := randReal(r, 100)
	mt := NewMatcher(h)
	want := mt.NormalizedCrossCorrelate(x)
	s := mt.StreamNormalized()
	var got []float64
	for i := range x {
		got = append(got, s.Feed(x[i:i+1])...)
	}
	got = append(got, s.Flush()...)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("lag %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestStreamMatcherShortStream(t *testing.T) {
	mt := NewMatcher(randReal(rand.New(rand.NewSource(42)), 128))
	s := mt.Stream()
	if got := s.Feed(make([]float64, 64)); len(got) != 0 {
		t.Fatalf("emitted %d lags before the template span filled", len(got))
	}
	if got := s.Flush(); len(got) != 0 {
		t.Fatalf("stream shorter than template flushed %d lags, want 0", len(got))
	}
	// Exactly template length: one lag.
	s2 := mt.Stream()
	s2.Feed(randReal(rand.New(rand.NewSource(43)), 128))
	if got := s2.Flush(); len(got) != 1 {
		t.Fatalf("template-length stream flushed %d lags, want 1", len(got))
	}
}

func TestStreamMatcherFeedAfterFlushPanics(t *testing.T) {
	s := NewMatcher([]float64{1, 2, 3}).Stream()
	s.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Flush must panic")
		}
	}()
	s.Feed([]float64{1})
}

// BenchmarkStreamMatcher measures the chunked path on the detector's
// shape: a 2 s stream in 4096-sample buffers against the preamble-length
// template (compare BenchmarkMatcher for the one-shot cost).
func BenchmarkStreamMatcher(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randReal(r, 88200)
	mt := NewMatcher(randReal(r, 9840))
	PutF64(mt.CrossCorrelatePooled(x)) // warm the spectrum cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mt.StreamNormalized()
		for off := 0; off < len(x); off += 4096 {
			end := off + 4096
			if end > len(x) {
				end = len(x)
			}
			s.Feed(x[off:end])
		}
		s.Flush()
	}
}
