package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
	"sync/atomic"
)

// Precomputed constants for power-of-two FFT sizes, cached per size class
// and shared by every goroutine (engine workers hammer the same sizes
// concurrently). Twiddles and bit-reversal permutations are cached
// independently: the RFFT/IRFFT untangling pass at length n needs only
// the size-n twiddles — its interior complex transform runs at n/2 — so
// the (4 bytes/sample) reversal table for a large padded correlation
// length is never built unless fftPow2 actually runs at that size.
//
// Each twiddle w[j] = exp(-2πi·j/n), j in [0, n/2), is computed
// independently from its angle rather than by the w *= wStep recurrence
// the kernel used previously; the recurrence accumulates rounding error
// linearly in the stage length, the table is accurate to 1 ulp
// everywhere. Every butterfly stage of a size-n transform indexes the one
// table with a stride (stage size s uses w[j·n/s]). Inverse transforms
// conjugate on the fly instead of keeping a second table.
//
// Tables are immutable once published; readers are lock-free, builders
// serialize on one mutex and double-check, so each table is computed once.
var (
	twiddleCache [bits.UintSize]atomic.Pointer[[]complex128]
	revCache     [bits.UintSize]atomic.Pointer[[]int32]
	fftTableMu   sync.Mutex
)

// twiddlesFor returns the shared forward twiddle table for power-of-two
// size n: w[j] = exp(-2πi·j/n), j in [0, n/2).
func twiddlesFor(n int) []complex128 {
	class := bits.TrailingZeros(uint(n))
	if p := twiddleCache[class].Load(); p != nil {
		return *p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := twiddleCache[class].Load(); p != nil {
		return *p
	}
	w := make([]complex128, n/2)
	for j := range w {
		w[j] = cmplx.Rect(1, -2*math.Pi*float64(j)/float64(n))
	}
	twiddleCache[class].Store(&w)
	return w
}

// revFor returns the shared bit-reversal permutation for power-of-two
// size n.
func revFor(n int) []int32 {
	class := bits.TrailingZeros(uint(n))
	if p := revCache[class].Load(); p != nil {
		return *p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := revCache[class].Load(); p != nil {
		return *p
	}
	rev := make([]int32, n)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := range rev {
		rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	revCache[class].Store(&rev)
	return rev
}
