package dsp

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Precomputed constants for the power-of-two SoA FFT kernel, cached per
// size class and shared by every goroutine (engine workers hammer the
// same sizes concurrently). Four independent table families exist so a
// size class only ever builds what its callers actually touch:
//
//   - permFor(n): the mixed-radix digit-reversal gather permutation the
//     radix-4/2 DIT kernel consumes. It is applied while deinterleaving
//     input into the kernel's split re/im scratch (one fused gather pass),
//     never as a standalone swap pass — the mixed [2,4,4,…] digit order is
//     not an involution, so in-place pair swapping would mis-permute.
//   - ipermFor(n): the inverse permutation, used as scatter targets by the
//     spectrum retangling passes that feed the inverse transform.
//   - stageTwiddlesFor(m): per-butterfly-stage twiddles for the stage that
//     merges four blocks of length m/4, laid out structure-of-arrays as six
//     separate float64 slices (w^k, w^2k, w^3k × re/im) indexed stride-1 by
//     the butterfly position k. A stage's table depends only on the stage
//     length, not the transform length, so every transform size shares one
//     table per stage class and the inner loops read all six arrays
//     sequentially — the layout the tentpole flat kernels are built around.
//   - halfTwiddlesFor(n): e^{-2πik/n} for k ≤ n/4 as split re/im arrays,
//     consumed by the RFFT/IRFFT untangle/retangle passes.
//
// Every entry is computed independently from its exact angle (accurate to
// 1 ulp); inverse transforms conjugate in the butterfly body instead of
// keeping second tables. Tables are immutable once published; readers are
// lock-free, builders serialize on one mutex and double-check, so each
// table is computed exactly once.
var (
	permCache  [bits.UintSize]atomic.Pointer[[]int32]
	ipermCache [bits.UintSize]atomic.Pointer[[]int32]
	stageCache [bits.UintSize]atomic.Pointer[stageTwiddles]
	halfCache  [bits.UintSize]atomic.Pointer[halfTwiddles]
	foldCache  [bits.UintSize]atomic.Pointer[foldTable]
	fftTableMu sync.Mutex
)

// stageTwiddles holds one butterfly stage's twiddle factors in
// structure-of-arrays layout: position k of a stage merging four blocks of
// length L carries w^k, w^2k and w^3k with w = e^{-2πi/4L}, split into
// re/im planes so the kernel's inner loop is six stride-1 float64 streams.
type stageTwiddles struct {
	w1re, w1im []float64 // e^{-2πik/4L}
	w2re, w2im []float64 // e^{-4πik/4L}
	w3re, w3im []float64 // e^{-6πik/4L}
}

// halfTwiddles holds e^{-2πik/n}, k in [0, n/4], split into re/im planes
// for the real-transform untangle passes.
type halfTwiddles struct {
	re, im []float64
}

// permFor returns the shared digit-reversal gather permutation for the
// radix-4 (with one leading radix-2 digit when log2(n) is odd) DIT ladder
// at power-of-two size n: element i of the kernel's working order is
// input element perm[i].
func permFor(n int) []int32 {
	class := bits.TrailingZeros(uint(n))
	if p := permCache[class].Load(); p != nil {
		return *p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := permCache[class].Load(); p != nil {
		return *p
	}
	perm := buildPerm(n)
	permCache[class].Store(&perm)
	return perm
}

// buildPerm constructs the digit reversal recursively, mirroring the DIT
// decomposition: the transform of length n is four interleaved transforms
// of length n/4 (mod-4 subsequences), bottoming out in a radix-2 split
// when two elements remain — exactly the stage ladder fftSoA runs.
func buildPerm(n int) []int32 {
	if n == 1 {
		return []int32{0}
	}
	if n == 2 {
		return []int32{0, 1}
	}
	sub := buildPerm(n / 4)
	perm := make([]int32, n)
	q := n / 4
	for j := 0; j < 4; j++ {
		for i, s := range sub {
			perm[j*q+i] = 4*s + int32(j)
		}
	}
	return perm
}

// ipermFor returns the inverse of permFor(n): input element k belongs at
// working position iperm[k]. Retangling passes use it to scatter spectrum
// bins straight into the inverse kernel's expected order.
func ipermFor(n int) []int32 {
	class := bits.TrailingZeros(uint(n))
	if p := ipermCache[class].Load(); p != nil {
		return *p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := ipermCache[class].Load(); p != nil {
		return *p
	}
	perm := buildPerm(n)
	iperm := make([]int32, n)
	for i, p := range perm {
		iperm[p] = int32(i)
	}
	ipermCache[class].Store(&iperm)
	return iperm
}

// stageTwiddlesFor returns the shared twiddle planes for the radix-4 stage
// of total length m (merging four blocks of m/4); each plane has m/4
// entries. m must be a power of two >= 4.
func stageTwiddlesFor(m int) *stageTwiddles {
	class := bits.TrailingZeros(uint(m))
	if p := stageCache[class].Load(); p != nil {
		return p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := stageCache[class].Load(); p != nil {
		return p
	}
	l := m / 4
	st := &stageTwiddles{
		w1re: make([]float64, l), w1im: make([]float64, l),
		w2re: make([]float64, l), w2im: make([]float64, l),
		w3re: make([]float64, l), w3im: make([]float64, l),
	}
	for k := 0; k < l; k++ {
		a := -2 * math.Pi * float64(k) / float64(m)
		st.w1re[k], st.w1im[k] = math.Cos(a), math.Sin(a)
		st.w2re[k], st.w2im[k] = math.Cos(2*a), math.Sin(2*a)
		st.w3re[k], st.w3im[k] = math.Cos(3*a), math.Sin(3*a)
	}
	stageCache[class].Store(st)
	return st
}

// foldTable drives the fused permuted-domain spectrum folds (see
// foldSpecMulTo/foldTwo in rfft.go): the correlation hot path keeps the
// half-length packed spectrum in the kernel's digit-reversed order the
// whole way through — forward DIF writes it, the fold rewrites it in
// place, inverse DIT consumes it — so the only non-sequential memory
// stream in a whole correlation is this table's partner-position lookup.
//
// For real length n (packed length h = n/2), the conjugate-symmetric bin
// pairs (k, h-k), k in [1, h/2), appear at kernel positions ia[p] (bin k)
// and ib[p] (bin h-k). Pairs are sorted by ascending ia so the za-side
// loads sweep forward; only the ib side jumps. wre/wim hold the untangle
// twiddle e^{-2πik/n} aligned with the pair order, and mid is the
// position of the self-conjugate bin h/2 (-1 when h < 2). Bin 0 always
// sits at position 0 (the permutation fixes index 0) and carries the
// packed DC/Nyquist combination.
type foldTable struct {
	ia, ib   []int32
	wre, wim []float64
	mid      int32
}

// foldTableFor returns the shared fold table for real transforms of
// power-of-two size n >= 2.
func foldTableFor(n int) *foldTable {
	class := bits.TrailingZeros(uint(n))
	if p := foldCache[class].Load(); p != nil {
		return p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := foldCache[class].Load(); p != nil {
		return p
	}
	h := n / 2
	perm := buildPerm(h)
	iperm := make([]int32, h)
	for i, p := range perm {
		iperm[p] = int32(i)
	}
	ft := &foldTable{mid: -1}
	if h >= 2 {
		ft.mid = iperm[h/2]
	}
	np := h/2 - 1
	if np > 0 {
		ft.ia = make([]int32, 0, np)
		ft.ib = make([]int32, 0, np)
		ft.wre = make([]float64, 0, np)
		ft.wim = make([]float64, 0, np)
		for i := 0; i < h; i++ {
			k := int(perm[i])
			if k == 0 || 2*k == h {
				continue
			}
			j := iperm[h-k]
			if int(j) < i {
				continue // partner already emitted the pair
			}
			a := -2 * math.Pi * float64(k) / float64(n)
			ft.ia = append(ft.ia, int32(i))
			ft.ib = append(ft.ib, j)
			ft.wre = append(ft.wre, math.Cos(a))
			ft.wim = append(ft.wim, math.Sin(a))
		}
	}
	foldCache[class].Store(ft)
	return ft
}

// halfTwiddlesFor returns the shared untangle twiddles for real transforms
// of power-of-two size n: w[k] = e^{-2πik/n} for k in [0, n/4], split
// re/im.
func halfTwiddlesFor(n int) *halfTwiddles {
	class := bits.TrailingZeros(uint(n))
	if p := halfCache[class].Load(); p != nil {
		return p
	}
	fftTableMu.Lock()
	defer fftTableMu.Unlock()
	if p := halfCache[class].Load(); p != nil {
		return p
	}
	l := n/4 + 1
	ht := &halfTwiddles{re: make([]float64, l), im: make([]float64, l)}
	for k := 0; k < l; k++ {
		a := -2 * math.Pi * float64(k) / float64(n)
		ht.re[k], ht.im[k] = math.Cos(a), math.Sin(a)
	}
	halfCache[class].Store(ht)
	return ht
}
