package dsp

import "math"

// Window identifies a tapering window shape.
type Window int

// Supported window shapes.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String returns the conventional window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// MakeWindow returns the n window coefficients for shape w (symmetric form).
func MakeWindow(w Window, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// ApplyWindow multiplies x by the window coefficients in place and
// returns x. len(win) must equal len(x).
func ApplyWindow(x, win []float64) []float64 {
	if len(x) != len(win) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= win[i]
	}
	return x
}

// Sinc is the normalized sinc function sin(pi x)/(pi x) with Sinc(0)=1.
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// FIRBandpass designs a linear-phase band-pass FIR filter with numTaps taps
// (odd preferred) passing [lowHz, highHz] at sample rate fs, using the
// windowed-sinc method with a Hamming window. Returns the impulse response.
func FIRBandpass(numTaps int, lowHz, highHz, fs float64) []float64 {
	if numTaps <= 0 {
		return nil
	}
	if lowHz < 0 {
		lowHz = 0
	}
	nyq := fs / 2
	if highHz > nyq {
		highHz = nyq
	}
	if highHz <= lowHz {
		return make([]float64, numTaps)
	}
	fl := lowHz / fs
	fh := highHz / fs
	h := make([]float64, numTaps)
	mid := float64(numTaps-1) / 2
	win := MakeWindow(Hamming, numTaps)
	for i := 0; i < numTaps; i++ {
		t := float64(i) - mid
		// Difference of two low-pass prototypes.
		v := 2*fh*Sinc(2*fh*t) - 2*fl*Sinc(2*fl*t)
		h[i] = v * win[i]
	}
	return h
}

// Filter applies FIR taps h to x (causal, zero initial state), returning a
// slice of len(x). Group delay is (len(h)-1)/2 samples for symmetric h.
func Filter(h, x []float64) []float64 {
	out := make([]float64, len(x))
	for n := range x {
		var s float64
		kmax := len(h)
		if n+1 < kmax {
			kmax = n + 1
		}
		for k := 0; k < kmax; k++ {
			s += h[k] * x[n-k]
		}
		out[n] = s
	}
	return out
}
