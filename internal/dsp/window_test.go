package dsp

import (
	"math"
	"testing"
)

func TestMakeWindowShapes(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		win := MakeWindow(w, 65)
		if len(win) != 65 {
			t.Fatalf("%v: length %d", w, len(win))
		}
		// Symmetry.
		for i := 0; i < len(win)/2; i++ {
			if math.Abs(win[i]-win[len(win)-1-i]) > 1e-12 {
				t.Errorf("%v not symmetric at %d", w, i)
			}
		}
		// Peak at center is the window maximum.
		mid := win[len(win)/2]
		for i, v := range win {
			if v > mid+1e-12 {
				t.Errorf("%v: value at %d (%g) exceeds center (%g)", w, i, v, mid)
			}
		}
	}
	if MakeWindow(Hann, 0) != nil {
		t.Error("zero-length window should be nil")
	}
	one := MakeWindow(Hann, 1)
	if len(one) != 1 || one[0] != 1 {
		t.Errorf("single-sample window = %v, want [1]", one)
	}
}

func TestHannEndpointsZero(t *testing.T) {
	win := MakeWindow(Hann, 32)
	if math.Abs(win[0]) > 1e-12 || math.Abs(win[31]) > 1e-12 {
		t.Errorf("hann endpoints = %g, %g; want 0", win[0], win[31])
	}
}

func TestWindowString(t *testing.T) {
	names := map[Window]string{
		Rectangular: "rectangular", Hann: "hann", Hamming: "hamming",
		Blackman: "blackman", Window(99): "unknown",
	}
	for w, want := range names {
		if got := w.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(w), got, want)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	win := []float64{0, 0.5, 0.5, 0}
	ApplyWindow(x, win)
	for i := range x {
		if x[i] != win[i] {
			t.Fatalf("apply mismatch at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	ApplyWindow([]float64{1}, []float64{1, 2})
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) != 1")
	}
	for k := 1; k < 10; k++ {
		if v := Sinc(float64(k)); math.Abs(v) > 1e-12 {
			t.Errorf("Sinc(%d) = %g, want 0", k, v)
		}
	}
	if v := Sinc(0.5); math.Abs(v-2/math.Pi) > 1e-12 {
		t.Errorf("Sinc(0.5) = %g, want 2/pi", v)
	}
}

func TestFIRBandpassResponse(t *testing.T) {
	const fs = 44100.0
	h := FIRBandpass(301, 1000, 5000, fs)
	gain := func(f float64) float64 {
		// Evaluate |H(e^{jw})| directly.
		var re, im float64
		w := 2 * math.Pi * f / fs
		for n, v := range h {
			re += v * math.Cos(w*float64(n))
			im -= v * math.Sin(w*float64(n))
		}
		return math.Hypot(re, im)
	}
	if g := gain(3000); g < 0.9 || g > 1.1 {
		t.Errorf("passband gain at 3 kHz = %g, want ~1", g)
	}
	if g := gain(200); g > 0.05 {
		t.Errorf("stopband gain at 200 Hz = %g, want ~0", g)
	}
	if g := gain(9000); g > 0.05 {
		t.Errorf("stopband gain at 9 kHz = %g, want ~0", g)
	}
}

func TestFIRBandpassDegenerate(t *testing.T) {
	if FIRBandpass(0, 100, 200, 1000) != nil {
		t.Error("zero taps should be nil")
	}
	h := FIRBandpass(11, 500, 400, 1000) // high <= low
	for _, v := range h {
		if v != 0 {
			t.Fatal("inverted band should give zero filter")
		}
	}
	// Clamping: negative low and beyond-Nyquist high should not blow up.
	h = FIRBandpass(21, -10, 1e6, 1000)
	if len(h) != 21 {
		t.Fatal("clamped filter has wrong length")
	}
}

func TestFilterImpulseGivesTaps(t *testing.T) {
	h := []float64{0.25, 0.5, 0.25}
	x := make([]float64, 8)
	x[0] = 1
	y := Filter(h, x)
	for i := range h {
		if math.Abs(y[i]-h[i]) > 1e-12 {
			t.Fatalf("impulse response mismatch at %d", i)
		}
	}
	for i := len(h); i < len(y); i++ {
		if y[i] != 0 {
			t.Fatalf("tail should be zero at %d", i)
		}
	}
}
