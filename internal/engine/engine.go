// Package engine is the deterministic worker-pool trial runner every
// Monte-Carlo evaluation in this repository is built on. A run fans N
// independent trials across a bounded set of workers; results come back in
// trial order, so callers see exactly what a serial loop would have
// produced, only faster.
//
// # Seeding contract
//
// Determinism across worker counts is the engine's core guarantee and
// rests on one rule: trial t of a run configured with seed S computes with
// its own *rand.Rand built as
//
//	rand.New(rand.NewSource(TrialSeed(S, t)))
//
// and must not touch any other source of randomness. TrialSeed mixes S and
// t through a SplitMix64 finalizer, so per-trial streams are decorrelated
// even for adjacent seeds and adjacent trial indices. Because the stream
// is a pure function of (S, t) — never of goroutine identity, scheduling
// order or worker count — a run with 1 worker and a run with 8 workers
// yield bit-identical results, and any single trial can be replayed in
// isolation for debugging.
//
// Trial functions receive their rng as an argument; anything they need to
// randomize (scenario draws, channel noise, sensor noise) must be driven
// by it, typically by threading it into sim.Config.Rng.
package engine

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Config tunes a run.
type Config struct {
	// Seed is the run's master seed; per-trial seeds derive from it via
	// TrialSeed. A zero seed is used as-is (callers normalize if they
	// want 0 to mean "default").
	Seed int64
	// Workers bounds concurrent trials. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// TrialSeed derives the RNG seed for one trial from the run seed: a
// SplitMix64 finalizer over seed + trialIndex. It is exported so callers
// can replay a single trial outside the engine, or derive decorrelated
// secondary streams (e.g. seed^salt) for post-processing randomness.
//
// The trial index is widened with explicit 64-bit arithmetic: shard
// fan-out replays trials on whatever host picked up the shard, so the
// seed stream must not depend on the platform word size (uint is 32 bits
// on 32-bit hosts, which would wrap trial+1 differently). Values are
// unchanged on 64-bit hosts, so pre-existing goldens still hold; see the
// pinned vector in TestTrialSeedPinned.
func TrialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(int64(trial))+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Rand builds the canonical per-trial RNG for (seed, trial).
func Rand(seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(seed, trial)))
}

// Run executes n trials of fn across the configured workers and returns
// the n results in trial order. Each invocation fn(t, rng) receives the
// trial index and that trial's private RNG per the package seeding
// contract.
//
// If ctx is cancelled, no new trials start; trials that never ran hold
// T's zero value and Run returns ctx.Err(). In-flight trials finish (they
// are CPU-bound and un-interruptible by design).
func Run[T any](ctx context.Context, cfg Config, n int, fn func(trial int, rng *rand.Rand) T) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := workerCount(cfg, n)
	if workers == 1 {
		// Serial fast path: no goroutines, no atomics — the reference
		// the parallel path must be indistinguishable from.
		for t := 0; t < n; t++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[t] = fn(t, Rand(cfg.Seed, t))
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1) - 1)
				if t >= n || ctx.Err() != nil {
					return
				}
				out[t] = fn(t, Rand(cfg.Seed, t))
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// Map is Run minus the error plumbing for callers with no cancellation
// story: it runs n trials on a background context and returns the results
// in trial order.
func Map[T any](cfg Config, n int, fn func(trial int, rng *rand.Rand) T) []T {
	out, _ := Run(context.Background(), cfg, n, fn)
	return out
}
