package engine

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// heavyTrial consumes a variable amount of RNG stream and CPU so worker
// interleavings genuinely differ between runs.
func heavyTrial(t int, rng *rand.Rand) float64 {
	n := 100 + rng.Intn(400)
	var s float64
	for i := 0; i < n; i++ {
		s += rng.NormFloat64()
	}
	return s
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 200
	ref, err := Run(context.Background(), Config{Seed: 7, Workers: 1}, n, heavyTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Run(context.Background(), Config{Seed: 7, Workers: workers}, n, heavyTrial)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d trial %d: got %v want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, _ := Run(context.Background(), Config{Seed: 1}, 32, heavyTrial)
	b, _ := Run(context.Background(), Config{Seed: 2}, 32, heavyTrial)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/32 trials identical across different seeds", same)
	}
}

func TestTrialSeedDecorrelatesAdjacentTrials(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 4; seed++ {
		for trial := 0; trial < 1000; trial++ {
			s := TrialSeed(seed, trial)
			if seen[s] {
				t.Fatalf("collision at seed=%d trial=%d", seed, trial)
			}
			seen[s] = true
		}
	}
}

func TestRunOrderPreserved(t *testing.T) {
	out, err := Run(context.Background(), Config{Seed: 3, Workers: 8}, 100,
		func(trial int, _ *rand.Rand) int { return trial * trial })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("trial %d landed at slot with value %d", i, v)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Run(ctx, Config{Seed: 1, Workers: 2}, 10000, func(trial int, _ *rand.Rand) int {
		if ran.Add(1) == 10 {
			cancel()
		}
		return trial
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop scheduling (ran %d)", n)
	}
}

func TestRunZeroTrials(t *testing.T) {
	out, err := Run(context.Background(), Config{Seed: 1}, 0, heavyTrial)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapMatchesRun(t *testing.T) {
	a := Map(Config{Seed: 5, Workers: 4}, 64, heavyTrial)
	b, _ := Run(context.Background(), Config{Seed: 5, Workers: 1}, 64, heavyTrial)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d: Map %v vs Run %v", i, a[i], b[i])
		}
	}
}
