package engine

import (
	"math"
	"math/rand"
	"testing"
)

// TestTrialSeedPinned pins the seed stream to concrete values. TrialSeed
// is the determinism anchor for cross-host shard fan-out: any change to
// these values silently invalidates every golden table and every archived
// shard blob, so a change here must be deliberate. The large trial
// indices (≥ 2³¹) are the regression guard for the platform-word-size
// bug: the former uint(trial)+1 widening truncates them on 32-bit hosts.
func TestTrialSeedPinned(t *testing.T) {
	for _, c := range []struct {
		seed  int64
		trial int
		want  int64
	}{
		{0, 0, -2152535657050944081},
		{1, 0, -7995527694508729151},
		{1, 1, -4689498862643123097},
		{1, 2, -534904783426661026},
		{7, 0, 7191089600892374487},
		{7, 1000, -3523066890008783414},
		{-3, 5, 589125513075409766},
		{1, 2147483648, -8069936865198140066},
		{1, 2147483649, -4166868670322826106},
		{12345, 1099511627776, 7128148681715144737},
		{1, 4611686018427387913, -580102328154784215},
	} {
		if got := TrialSeed(c.seed, c.trial); got != c.want {
			t.Errorf("TrialSeed(%d, %d) = %d, want %d", c.seed, c.trial, got, c.want)
		}
	}
}

// TestTrialSeedWideningIs64Bit verifies the widening arithmetic directly:
// trial indices that collide under 32-bit truncation must not collide in
// the seed stream.
func TestTrialSeedWideningIs64Bit(t *testing.T) {
	// trial and trial+2^32 have identical low 32 bits (mod the +1 offset);
	// a uint32-truncating implementation maps them to the same seed.
	for _, trial := range []int{0, 1, 12345} {
		a := TrialSeed(1, trial)
		b := TrialSeed(1, trial+(1<<32))
		if a == b {
			t.Errorf("TrialSeed collides across 2^32: trial %d", trial)
		}
	}
}

// TestStreamOrderedRangeMatchesFullRun: a span [lo, hi) of an ordered
// range run must deliver exactly the same (trial, value) sequence as
// trials lo..hi-1 of a full run — global indices, bit-identical values —
// at every worker count. This is the shard invariant.
func TestStreamOrderedRangeMatchesFullRun(t *testing.T) {
	const n = 97
	fn := func(trial int, rng *rand.Rand) float64 {
		return float64(trial)*1e6 + rng.NormFloat64()
	}
	var full []float64
	Each(Config{Seed: 11, Workers: 1}, n, fn, func(t int, v float64) {
		full = append(full, v)
	})

	for _, span := range [][2]int{{0, n}, {0, 24}, {24, 49}, {49, 73}, {73, n}, {40, 41}, {50, 50}} {
		for _, workers := range []int{1, 8} {
			var got []float64
			var trials []int
			EachRange(Config{Seed: 11, Workers: workers}, span[0], span[1], fn, func(t int, v float64) {
				trials = append(trials, t)
				got = append(got, v)
			})
			if len(got) != span[1]-span[0] {
				t.Fatalf("span %v workers %d: delivered %d results", span, workers, len(got))
			}
			for i, v := range got {
				if trials[i] != span[0]+i {
					t.Fatalf("span %v workers %d: delivery %d carried trial %d, want %d",
						span, workers, i, trials[i], span[0]+i)
				}
				if math.Float64bits(v) != math.Float64bits(full[span[0]+i]) {
					t.Fatalf("span %v workers %d trial %d: %v != full run's %v",
						span, workers, span[0]+i, v, full[span[0]+i])
				}
			}
		}
	}
}

// TestStreamOrderedRangeCoversWithoutOverlap: the shard planner's spans
// partition [0, n); stitched back together they must reproduce the full
// serial sequence exactly once each.
func TestStreamOrderedRangeCoversWithoutOverlap(t *testing.T) {
	const n, shards = 103, 4
	fn := func(trial int, rng *rand.Rand) int64 { return rng.Int63() }

	var full []int64
	Each(Config{Seed: 5, Workers: 1}, n, fn, func(t int, v int64) { full = append(full, v) })

	var stitched []int64
	for i := 0; i < shards; i++ {
		lo, hi := n*i/shards, n*(i+1)/shards
		EachRange(Config{Seed: 5, Workers: 3}, lo, hi, fn, func(t int, v int64) {
			stitched = append(stitched, v)
		})
	}
	if len(stitched) != n {
		t.Fatalf("stitched %d results, want %d", len(stitched), n)
	}
	for i := range full {
		if stitched[i] != full[i] {
			t.Fatalf("trial %d: stitched %d != full %d", i, stitched[i], full[i])
		}
	}
}
