package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Streaming result delivery. Run collects all n results before the caller
// sees any of them — fine for small sweeps, but it pins O(n) result memory
// and delays aggregation until the slowest trial lands. Stream and
// StreamOrdered instead hand each result to a sink as soon as it is
// available, which is what lets online aggregators (stats.Welford,
// stats.Sketch) scale trial counts past memory.
//
// Both variants keep the package seeding contract: trial t computes with
// Rand(cfg.Seed, t), so the multiset of delivered (trial, result) pairs is
// identical for every worker count. What differs is delivery order:
//
//   - Stream delivers in completion order — arbitrary under parallelism.
//     Use it when the sink is order-independent (counters, sums over
//     commutative domains, per-trial side effects keyed by trial index).
//   - StreamOrdered delivers in trial order via a bounded reorder window,
//     so a sink observes exactly the sequence a serial loop would have
//     produced — order-sensitive aggregation (floating-point sums,
//     reservoir sampling) stays bit-identical at any worker count.
//
// In both cases sink calls are serialized (never concurrent) and happen on
// the calling goroutine, so sinks need no locking.

// workerCount normalizes cfg.Workers against n.
func workerCount(cfg Config, n int) int {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Stream executes n trials of fn across the configured workers, delivering
// each result to sink as soon as the trial completes. Delivery order is
// arbitrary under parallelism; calls to sink are serialized on the calling
// goroutine. If ctx is cancelled, no new trials start, in-flight trials
// finish and are still delivered, and Stream returns ctx.Err().
func Stream[T any](ctx context.Context, cfg Config, n int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := workerCount(cfg, n)
	if workers == 1 {
		// Serial fast path: trial order, no goroutines — the reference
		// sequence StreamOrdered must be indistinguishable from.
		for t := 0; t < n; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			sink(t, fn(t, Rand(cfg.Seed, t)))
		}
		return nil
	}
	type item struct {
		t int
		v T
	}
	ch := make(chan item, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1) - 1)
				if t >= n || ctx.Err() != nil {
					return
				}
				ch <- item{t: t, v: fn(t, Rand(cfg.Seed, t))}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	for it := range ch {
		sink(it.t, it.v)
	}
	return ctx.Err()
}

// StreamOrdered is Stream with in-order delivery: sink(t, v) calls arrive
// strictly in trial order 0, 1, 2, …. A reorder window of a few times the
// worker count buffers results that complete ahead of a slower earlier
// trial; workers stall rather than run unboundedly ahead, so buffered
// results never exceed the window regardless of per-trial cost variance.
// On cancellation the sink has received a (possibly empty) prefix of the
// trial sequence and StreamOrdered returns ctx.Err().
func StreamOrdered[T any](ctx context.Context, cfg Config, n int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) error {
	return StreamOrderedRange(ctx, cfg, 0, n, fn, sink)
}

// StreamOrderedRange is StreamOrdered over the half-open trial span
// [lo, hi). Trial indices are global: trial t still computes with
// Rand(cfg.Seed, t), so a span's results are bit-identical to the same
// trials of a full run — the primitive behind shard fan-out (each shard
// runs its contiguous span of the global trial sequence) and
// checkpoint/resume (restart from the first undelivered trial). Delivery
// is in trial order lo, lo+1, …, hi-1.
func StreamOrderedRange[T any](ctx context.Context, cfg Config, lo, hi int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) error {
	n := hi - lo
	if n <= 0 {
		return ctx.Err()
	}
	workers := workerCount(cfg, n)
	if workers == 1 {
		for t := lo; t < hi; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			sink(t, fn(t, Rand(cfg.Seed, t)))
		}
		return nil
	}
	window := 4 * workers
	type item struct {
		t int
		v T
	}
	ch := make(chan item, window)
	// Credits bound claimed-but-undelivered trials to the window. A worker
	// acquires a credit *before* claiming a trial index, so indices are
	// claimed contiguously and the oldest undelivered trial always holds a
	// credit — it is in flight or buffered, never starved, so delivery
	// always progresses.
	credits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		credits <- struct{}{}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-credits:
				}
				t := lo + int(next.Add(1)-1)
				if t >= hi {
					return
				}
				ch <- item{t: t, v: fn(t, Rand(cfg.Seed, t))}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	// Reorder ring: slot t%window holds trial t until its turn.
	buf := make([]T, window)
	filled := make([]bool, window)
	deliver := lo
	for it := range ch {
		buf[it.t%window] = it.v
		filled[it.t%window] = true
		for deliver < hi && filled[deliver%window] {
			sink(deliver, buf[deliver%window])
			filled[deliver%window] = false
			var zero T
			buf[deliver%window] = zero // release references for the GC
			deliver++
			select {
			case credits <- struct{}{}:
			default:
			}
		}
	}
	return ctx.Err()
}

// Each is StreamOrdered minus the error plumbing for callers with no
// cancellation story: n trials on a background context, results delivered
// to sink in trial order.
func Each[T any](cfg Config, n int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) {
	_ = StreamOrdered(context.Background(), cfg, n, fn, sink)
}

// EachRange is StreamOrderedRange minus the error plumbing: trials
// [lo, hi) on a background context, delivered to sink in trial order with
// global trial indices.
func EachRange[T any](cfg Config, lo, hi int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) {
	_ = StreamOrderedRange(context.Background(), cfg, lo, hi, fn, sink)
}
