package engine

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStreamDeliversEveryTrialOnce runs the unordered stream under heavy
// parallelism (run with -race): every trial must be delivered exactly once
// with the value its private RNG produced, and sink calls must never
// overlap.
func TestStreamDeliversEveryTrialOnce(t *testing.T) {
	const n = 500
	want, err := Run(context.Background(), Config{Seed: 9, Workers: 1}, n, heavyTrial)
	if err != nil {
		t.Fatal(err)
	}
	var inSink atomic.Int32
	seen := make([]int, n)
	err = Stream(context.Background(), Config{Seed: 9, Workers: 16}, n, heavyTrial,
		func(trial int, v float64) {
			if inSink.Add(1) != 1 {
				t.Error("sink called concurrently")
			}
			seen[trial]++
			if v != want[trial] {
				t.Errorf("trial %d: got %v want %v", trial, v, want[trial])
			}
			inSink.Add(-1)
		})
	if err != nil {
		t.Fatal(err)
	}
	for trial, c := range seen {
		if c != 1 {
			t.Fatalf("trial %d delivered %d times", trial, c)
		}
	}
}

// TestStreamOutOfOrderDelivery verifies the unordered contract actually
// exercises out-of-order arrival: with workers whose per-trial cost varies
// wildly, completion order must differ from trial order at least once
// (otherwise the test isn't testing anything), and the sink must cope.
func TestStreamOutOfOrderDelivery(t *testing.T) {
	const n = 300
	var order []int
	err := Stream(context.Background(), Config{Seed: 4, Workers: 8}, n,
		func(trial int, rng *rand.Rand) int {
			// Highly variable work so interleavings genuinely shuffle.
			iters := rng.Intn(5000)
			s := 0
			for i := 0; i < iters; i++ {
				s += i
			}
			return trial
		},
		func(trial int, v int) {
			if v != trial {
				t.Errorf("value %d delivered for trial %d", v, trial)
			}
			order = append(order, trial)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("delivered %d of %d", len(order), n)
	}
	shuffled := false
	for i, trial := range order {
		if trial != i {
			shuffled = true
			break
		}
	}
	if !shuffled {
		t.Skip("completion order happened to match trial order; nothing exercised")
	}
}

// TestStreamOrderedMatchesSerial pins the ordered contract: the sink sees
// exactly the sequence a serial loop produces, for every worker count.
func TestStreamOrderedMatchesSerial(t *testing.T) {
	const n = 400
	want, _ := Run(context.Background(), Config{Seed: 11, Workers: 1}, n, heavyTrial)
	for _, workers := range []int{2, 3, 8, 32} {
		nextTrial := 0
		err := StreamOrdered(context.Background(), Config{Seed: 11, Workers: workers}, n, heavyTrial,
			func(trial int, v float64) {
				if trial != nextTrial {
					t.Fatalf("workers=%d: delivered trial %d, want %d", workers, trial, nextTrial)
				}
				if v != want[trial] {
					t.Fatalf("workers=%d trial %d: got %v want %v", workers, trial, v, want[trial])
				}
				nextTrial++
			})
		if err != nil {
			t.Fatal(err)
		}
		if nextTrial != n {
			t.Fatalf("workers=%d: delivered %d of %d", workers, nextTrial, n)
		}
	}
}

// TestStreamOrderedSlowHead forces the pathological reorder case — trial 0
// far slower than everything else — and checks delivery stays in order
// with bounded buffering (the credit window stalls the fast workers
// instead of letting them run all n trials ahead).
func TestStreamOrderedSlowHead(t *testing.T) {
	const n = 200
	var started atomic.Int64
	var once sync.Once
	release := make(chan struct{})
	nextTrial := 0
	err := StreamOrdered(context.Background(), Config{Seed: 2, Workers: 4}, n,
		func(trial int, _ *rand.Rand) int {
			if trial == 0 {
				<-release // stall the head until later trials have piled up
			} else if started.Add(1) == 10 {
				once.Do(func() { close(release) })
			}
			return trial
		},
		func(trial int, v int) {
			if nextTrial == 0 {
				// Everything delivered-before now waited on trial 0; the
				// credit window must have kept the runahead bounded.
				if s := started.Load(); s > 4*4+4 {
					t.Errorf("%d trials ran ahead of a stalled head (window leak)", s)
				}
			}
			if trial != nextTrial {
				t.Fatalf("delivered %d, want %d", trial, nextTrial)
			}
			nextTrial++
		})
	if err != nil {
		t.Fatal(err)
	}
	if nextTrial != n {
		t.Fatalf("delivered %d of %d", nextTrial, n)
	}
}

func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Stream(ctx, Config{Seed: 1, Workers: 2}, 100000,
		func(trial int, _ *rand.Rand) int {
			if ran.Add(1) == 20 {
				cancel()
			}
			return trial
		},
		func(int, int) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100000 {
		t.Errorf("cancellation did not stop scheduling (ran %d)", n)
	}
}

func TestStreamOrderedCancelDeliversPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	nextTrial := 0
	err := StreamOrdered(ctx, Config{Seed: 1, Workers: 4}, 100000,
		func(trial int, _ *rand.Rand) int {
			if ran.Add(1) == 50 {
				cancel()
			}
			return trial
		},
		func(trial int, _ int) {
			if trial != nextTrial {
				t.Fatalf("gap in prefix: delivered %d, want %d", trial, nextTrial)
			}
			nextTrial++
		})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if nextTrial >= 100000 {
		t.Error("cancellation did not stop delivery")
	}
}

func TestStreamZeroTrials(t *testing.T) {
	called := false
	if err := Stream(context.Background(), Config{Seed: 1}, 0, heavyTrial,
		func(int, float64) { called = true }); err != nil || called {
		t.Fatalf("err=%v called=%v", err, called)
	}
	if err := StreamOrdered(context.Background(), Config{Seed: 1}, 0, heavyTrial,
		func(int, float64) { called = true }); err != nil || called {
		t.Fatalf("ordered: err=%v called=%v", err, called)
	}
}

func TestEachMatchesRun(t *testing.T) {
	want, _ := Run(context.Background(), Config{Seed: 6, Workers: 1}, 64, heavyTrial)
	i := 0
	Each(Config{Seed: 6, Workers: 4}, 64, heavyTrial, func(trial int, v float64) {
		if trial != i || v != want[i] {
			t.Fatalf("trial %d value %v, want trial %d value %v", trial, v, i, want[i])
		}
		i++
	})
	if i != 64 {
		t.Fatalf("delivered %d of 64", i)
	}
}
