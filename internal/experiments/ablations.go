package experiments

import (
	"math"
	"math/rand"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/dsp"
	"uwpos/internal/geom"
	"uwpos/internal/mds"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out. They are
// not paper figures; they justify implementation decisions with data.

// AblationBandWindow compares the channel-estimator band taper: Hann
// (default, −31 dB sidelobes, wider main lobe) against rectangular
// (−13 dB sidelobes that the λ=0.2 direct-path test can mistake for early
// arrivals).
func AblationBandWindow(opt Options) (map[string][]float64, *stats.Table) {
	rng := opt.rng()
	trials := opt.samples(40)
	p := sig.DefaultParams()
	env := channel.Dock()
	const fs = 44100.0
	out := map[string][]float64{"hann": nil, "rectangular": nil}

	for t := 0; t < trials; t++ {
		// One shared channel realization per trial.
		sep := 15 + 10*rng.Float64()
		tx := geom.Vec3{X: 0, Y: 0, Z: 2.5}
		rx := geom.Vec3{X: sep, Y: 0, Z: 2.5}
		taps := env.WithScatter(env.ImpulseResponse(tx, rx, channel.ImpulseOptions{}), rng)
		stream := make([]float64, 40000)
		env.AddNoise(stream, fs, rng)
		const at = 9000
		channel.Render(stream, p.Preamble(), taps, at, fs)
		det := ranging.NewDetector(p, ranging.DetectorConfig{})
		dets := det.Detect(stream)
		if len(dets) != 1 {
			continue
		}
		c := env.SoundSpeed(2.5)
		wantArrival := float64(at) + sep/c*fs
		for _, win := range []struct {
			name string
			w    dsp.Window
		}{{"hann", dsp.Hann}, {"rectangular", dsp.Rectangular}} {
			ce := ranging.NewChannelEstimator(p)
			ce.SetBandWindow(win.w)
			h, err := ce.Estimate(stream, dets[0].CoarseIndex)
			if err != nil {
				continue
			}
			res := ranging.SingleMicDirectPath(h, ranging.DirectPathConfig{})
			if !res.OK {
				continue
			}
			arr := float64(dets[0].CoarseIndex) - float64(ce.GuardTaps) + res.TauTaps
			out[win.name] = append(out[win.name], math.Abs(arr-wantArrival)/fs*c)
		}
	}
	table := &stats.Table{
		ID:     "ablation-bandwindow",
		Title:  "channel-estimate band taper: Hann vs rectangular",
		Paper:  "(design choice, DESIGN.md §3.2 — not a paper figure)",
		Header: []string{"window", "median err (m)", "95th (m)", "n"},
	}
	for _, k := range []string{"hann", "rectangular"} {
		es := out[k]
		table.Rows = append(table.Rows, []string{
			k, stats.F(stats.Median(es)), stats.F(stats.Percentile(es, 95)), stats.F(float64(len(es))),
		})
	}
	return out, table
}

// AblationPrefilter measures the in-band prefilter's effect on detection
// at marginal SNR.
func AblationPrefilter(opt Options) (map[string]float64, *stats.Table) {
	rng := opt.rng()
	trials := opt.samples(60)
	p := sig.DefaultParams()
	pre := p.Preamble()
	detOn := ranging.NewDetector(p, ranging.DetectorConfig{})
	detOff := ranging.NewDetector(p, ranging.DetectorConfig{DisablePrefilter: true})
	rates := map[string]float64{}
	for _, variant := range []struct {
		name string
		det  *ranging.Detector
	}{{"with prefilter", detOn}, {"without prefilter", detOff}} {
		hits := 0
		for t := 0; t < trials; t++ {
			stream := make([]float64, 40000)
			for i := range stream {
				stream[i] = 0.14 * rng.NormFloat64() // ≈−6 dB wideband
			}
			for i, v := range pre {
				stream[12000+i] += 0.25 * v
			}
			if len(variant.det.Detect(stream)) > 0 {
				hits++
			}
		}
		rates[variant.name] = float64(hits) / float64(trials)
	}
	table := &stats.Table{
		ID:     "ablation-prefilter",
		Title:  "detection rate at −6 dB wideband SNR: prefilter on vs off",
		Paper:  "(design choice — the validation stage needs in-band SNR)",
		Header: []string{"variant", "detection rate"},
		Rows: [][]string{
			{"with prefilter", stats.F(rates["with prefilter"])},
			{"without prefilter", stats.F(rates["without prefilter"])},
		},
	}
	return rates, table
}

// AblationRestarts measures SMACOF restart value on outlier-bearing
// problems (escaping deceptive local minima).
func AblationRestarts(opt Options) (map[string][]float64, *stats.Table) {
	rng := opt.rng()
	trials := opt.samples(80)
	out := map[string][]float64{"restarts=0": nil, "restarts=2": nil}
	for t := 0; t < trials; t++ {
		// Random 6-node geometry with one corrupted link.
		pts := make([]geom.Vec2, 6)
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.Float64() * 30, Y: rng.Float64() * 30}
		}
		n := len(pts)
		d := make([][]float64, n)
		w := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			w[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = pts[i].Dist(pts[j])
					w[i][j] = 1
				}
			}
		}
		a, b := rng.Intn(n), rng.Intn(n)
		for a == b {
			b = rng.Intn(n)
		}
		d[a][b] += 6 + 6*rng.Float64()
		d[b][a] = d[a][b]
		for _, variant := range []struct {
			name     string
			restarts int
		}{{"restarts=0", -1}, {"restarts=2", 2}} {
			res, err := mds.Solve(d, w, mds.Options{
				Restarts: variant.restarts,
				Rng:      rand.New(rand.NewSource(int64(t))),
			})
			if err != nil {
				continue
			}
			out[variant.name] = append(out[variant.name], res.NormStress)
		}
	}
	table := &stats.Table{
		ID:     "ablation-restarts",
		Title:  "SMACOF restarts on outlier-bearing problems (normalized stress found)",
		Paper:  "(design choice — higher stress found = better outlier detectability)",
		Header: []string{"variant", "median stress (m)", "5th pct (m)"},
	}
	for _, k := range []string{"restarts=0", "restarts=2"} {
		es := out[k]
		table.Rows = append(table.Rows, []string{
			k, stats.F(stats.Median(es)), stats.F(stats.Percentile(es, 5)),
		})
	}
	return out, table
}

// AblationReportBack compares full §2.4 comm (quantization + FSK + coding
// + CRC) against lossless timestamp delivery, isolating what the
// communication system costs in 2D accuracy.
func AblationReportBack(opt Options) (map[string][]float64, *stats.Table) {
	rounds := opt.samples(8)
	env := channel.Dock()
	out := map[string][]float64{"full comm": nil, "lossless": nil}
	for _, variant := range []struct {
		name     string
		lossless bool
	}{{"full comm", false}, {"lossless", true}} {
		mk := func(seed int64) sim.Config {
			cfg := testbed(env, seed)
			cfg.DisableReportBack = variant.lossless
			return cfg
		}
		rds := collectRounds(mk, rounds, opt.Seed)
		for _, rd := range rds {
			if errs, _, ok := localizeErrors(rd, core.DefaultConfig()); ok {
				out[variant.name] = append(out[variant.name], errs...)
			}
		}
	}
	table := &stats.Table{
		ID:     "ablation-reportback",
		Title:  "2D error: full report-back comm vs lossless timestamps",
		Paper:  "(design cost of §2.4: 2-sample quantization + FSK + coding)",
		Header: []string{"variant", "median (m)", "95th (m)", "n"},
	}
	for _, k := range []string{"full comm", "lossless"} {
		es := out[k]
		table.Rows = append(table.Rows, []string{
			k, stats.F(stats.Median(es)), stats.F(stats.Percentile(es, 95)), stats.F(float64(len(es))),
		})
	}
	return out, table
}
