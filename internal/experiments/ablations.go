package experiments

import (
	"math"
	"math/rand"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/dsp"
	"uwpos/internal/geom"
	"uwpos/internal/mds"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out. They are
// not paper figures; they justify implementation decisions with data.

func accAblationBandWindow(opt Options, p *Partial, pre string) {
	trials := opt.samples(40)
	pr := sig.DefaultParams()
	env := channel.Dock()
	const fs = 44100.0
	sks := map[string]*stats.Sketch{
		"hann":        p.Sketch(pre + "ablation-bandwindow/hann"),
		"rectangular": p.Sketch(pre + "ablation-bandwindow/rectangular"),
	}

	wave := pr.Preamble()
	det := ranging.NewDetector(pr, ranging.DetectorConfig{}) // stateless, shared
	type trialErrs struct {
		hann, rect float64
		okH, okR   bool
	}
	stage(opt, p, pre+"ablation-bandwindow", saltAblBandWindow, trials, func(_ int, rng *rand.Rand) trialErrs {
		// One shared channel realization per trial; both tapers score it.
		var te trialErrs
		sep := 15 + 10*rng.Float64()
		tx := geom.Vec3{X: 0, Y: 0, Z: 2.5}
		rx := geom.Vec3{X: sep, Y: 0, Z: 2.5}
		taps := env.WithScatter(env.ImpulseResponse(tx, rx, channel.ImpulseOptions{}), rng)
		stream := make([]float64, 40000)
		env.AddNoise(stream, fs, rng)
		const at = 9000
		channel.Render(stream, wave, taps, at, fs)
		dets := det.Detect(stream)
		if len(dets) != 1 {
			return te
		}
		c := env.SoundSpeed(2.5)
		wantArrival := float64(at) + sep/c*fs
		for _, win := range []struct {
			name string
			w    dsp.Window
		}{{"hann", dsp.Hann}, {"rectangular", dsp.Rectangular}} {
			ce := ranging.NewChannelEstimator(pr)
			ce.SetBandWindow(win.w)
			h, err := ce.Estimate(stream, dets[0].CoarseIndex)
			if err != nil {
				continue
			}
			res := ranging.SingleMicDirectPath(h, ranging.DirectPathConfig{})
			if !res.OK {
				continue
			}
			arr := float64(dets[0].CoarseIndex) - float64(ce.GuardTaps) + res.TauTaps
			e := math.Abs(arr-wantArrival) / fs * c
			if win.name == "hann" {
				te.hann, te.okH = e, true
			} else {
				te.rect, te.okR = e, true
			}
		}
		return te
	}, func(_ int, te trialErrs) {
		if te.okH {
			sks["hann"].Add(te.hann)
			opt.observe(te.hann)
		}
		if te.okR {
			sks["rectangular"].Add(te.rect)
		}
	})
}

func renderAblationBandWindow(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "ablation-bandwindow",
		Title:  "channel-estimate band taper: Hann vs rectangular",
		Paper:  "(design choice, DESIGN.md §3.2 — not a paper figure)",
		Header: []string{"window", "median err (m)", "95th (m)", "n"},
	}
	out := make(map[string][]float64)
	for _, k := range []string{"hann", "rectangular"} {
		sk := p.Sketch(pre + "ablation-bandwindow/" + k)
		out[k] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			k, stats.F(qs[0]), stats.F(qs[1]), stats.F(float64(sk.Count())),
		})
	}
	return out, table
}

// AblationBandWindow compares the channel-estimator band taper: Hann
// (default, −31 dB sidelobes, wider main lobe) against rectangular
// (−13 dB sidelobes that the λ=0.2 direct-path test can mistake for early
// arrivals).
func AblationBandWindow(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accAblationBandWindow(opt, p, "")
	return renderAblationBandWindow(opt, p, "")
}

func accAblationPrefilter(opt Options, p *Partial, pre string) {
	trials := opt.samples(60)
	pr := sig.DefaultParams()
	wave := pr.Preamble()
	detOn := ranging.NewDetector(pr, ranging.DetectorConfig{})
	detOff := ranging.NewDetector(pr, ranging.DetectorConfig{DisablePrefilter: true})
	// Paired trials: both variants score the same noisy stream. Hit
	// counting is commutative, so totals are worker-count invariant; the
	// ordered stage additionally gives resume a contiguous prefix.
	type hit struct{ on, off bool }
	key := pre + "ablation-prefilter"
	stage(opt, p, key, saltAblPrefilter, trials, func(_ int, rng *rand.Rand) hit {
		stream := make([]float64, 40000)
		for i := range stream {
			stream[i] = 0.14 * rng.NormFloat64() // ≈−6 dB wideband
		}
		for i, v := range wave {
			stream[12000+i] += 0.25 * v
		}
		return hit{
			on:  len(detOn.Detect(stream)) > 0,
			off: len(detOff.Detect(stream)) > 0,
		}
	}, func(_ int, h hit) {
		if h.on {
			p.AddCounter(key+"/on", 1)
		}
		if h.off {
			p.AddCounter(key+"/off", 1)
		}
	})
}

func renderAblationPrefilter(opt Options, p *Partial, pre string) (map[string]float64, *stats.Table) {
	trials := opt.samples(60)
	key := pre + "ablation-prefilter"
	rates := map[string]float64{
		"with prefilter":    float64(p.Counter(key+"/on")) / float64(trials),
		"without prefilter": float64(p.Counter(key+"/off")) / float64(trials),
	}
	table := &stats.Table{
		ID:     "ablation-prefilter",
		Title:  "detection rate at −6 dB wideband SNR: prefilter on vs off",
		Paper:  "(design choice — the validation stage needs in-band SNR)",
		Header: []string{"variant", "detection rate"},
		Rows: [][]string{
			{"with prefilter", stats.F(rates["with prefilter"])},
			{"without prefilter", stats.F(rates["without prefilter"])},
		},
	}
	return rates, table
}

// AblationPrefilter measures the in-band prefilter's effect on detection
// at marginal SNR.
func AblationPrefilter(opt Options) (map[string]float64, *stats.Table) {
	p := NewPartial()
	accAblationPrefilter(opt, p, "")
	return renderAblationPrefilter(opt, p, "")
}

func accAblationRestarts(opt Options, p *Partial, pre string) {
	trials := opt.samples(80)
	sks := map[string]*stats.Sketch{
		"restarts=0": p.Sketch(pre + "ablation-restarts/restarts=0"),
		"restarts=2": p.Sketch(pre + "ablation-restarts/restarts=2"),
	}
	type stresses struct {
		r0, r2 float64
		ok0    bool
		ok2    bool
	}
	stage(opt, p, pre+"ablation-restarts", saltAblRestarts, trials, func(_ int, rng *rand.Rand) stresses {
		// Random 6-node geometry with one corrupted link.
		var st stresses
		pts := make([]geom.Vec2, 6)
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.Float64() * 30, Y: rng.Float64() * 30}
		}
		n := len(pts)
		d := make([][]float64, n)
		w := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			w[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = pts[i].Dist(pts[j])
					w[i][j] = 1
				}
			}
		}
		a, b := rng.Intn(n), rng.Intn(n)
		for a == b {
			b = rng.Intn(n)
		}
		d[a][b] += 6 + 6*rng.Float64()
		d[b][a] = d[a][b]
		// Solver restart randomness draws from the trial stream, so the
		// whole trial replays from its (seed, index) pair.
		solverSeed := rng.Int63()
		for _, variant := range []struct {
			name     string
			restarts int
		}{{"restarts=0", -1}, {"restarts=2", 2}} {
			res, err := mds.Solve(d, w, mds.Options{
				Restarts: variant.restarts,
				Rng:      rand.New(rand.NewSource(solverSeed)),
			})
			if err != nil {
				continue
			}
			if variant.restarts < 0 {
				st.r0, st.ok0 = res.NormStress, true
			} else {
				st.r2, st.ok2 = res.NormStress, true
			}
		}
		return st
	}, func(_ int, st stresses) {
		if st.ok0 {
			sks["restarts=0"].Add(st.r0)
		}
		if st.ok2 {
			sks["restarts=2"].Add(st.r2)
			opt.observe(st.r2)
		}
	})
}

func renderAblationRestarts(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "ablation-restarts",
		Title:  "SMACOF restarts on outlier-bearing problems (normalized stress found)",
		Paper:  "(design choice — higher stress found = better outlier detectability)",
		Header: []string{"variant", "median stress (m)", "5th pct (m)"},
	}
	out := make(map[string][]float64)
	for _, k := range []string{"restarts=0", "restarts=2"} {
		sk := p.Sketch(pre + "ablation-restarts/" + k)
		out[k] = sk.Values()
		qs := sk.Quantiles(50, 5)
		table.Rows = append(table.Rows, []string{
			k, stats.F(qs[0]), stats.F(qs[1]),
		})
	}
	return out, table
}

// AblationRestarts measures SMACOF restart value on outlier-bearing
// problems (escaping deceptive local minima).
func AblationRestarts(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accAblationRestarts(opt, p, "")
	return renderAblationRestarts(opt, p, "")
}

var ablRBVariants = []struct {
	name     string
	lossless bool
}{{"full comm", false}, {"lossless", true}}

func accAblationReportBack(opt Options, p *Partial, pre string) {
	rounds := opt.samples(8)
	env := channel.Dock()
	for vi, variant := range ablRBVariants {
		variant := variant
		sk := p.Sketch(pre + "ablation-reportback/" + variant.name)
		mk := func(int, *rand.Rand) sim.Config {
			cfg := testbed(env, 0)
			cfg.DisableReportBack = variant.lossless
			return cfg
		}
		// Same salt for both variants: paired rounds isolate the comm cost.
		// The stage keys must still be distinct — they track each variant's
		// own delivered-trial cursor.
		accStreamRounds(opt, p, pre+"ablation-reportback/"+ik(vi), saltAblReportBack, mk, rounds, func(rd roundData) {
			if errs, _, ok := localizeErrors(rd, core.DefaultConfig()); ok {
				for _, e := range errs {
					sk.Add(e)
					opt.observe(e)
				}
			}
		})
	}
}

func renderAblationReportBack(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "ablation-reportback",
		Title:  "2D error: full report-back comm vs lossless timestamps",
		Paper:  "(design cost of §2.4: 2-sample quantization + FSK + coding)",
		Header: []string{"variant", "median (m)", "95th (m)", "n"},
	}
	out := make(map[string][]float64)
	for _, variant := range ablRBVariants {
		sk := p.Sketch(pre + "ablation-reportback/" + variant.name)
		out[variant.name] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			variant.name, stats.F(qs[0]), stats.F(qs[1]), stats.F(float64(sk.Count())),
		})
	}
	return out, table
}

// AblationReportBack compares full §2.4 comm (quantization + FSK + coding
// + CRC) against lossless timestamp delivery, isolating what the
// communication system costs in 2D accuracy.
func AblationReportBack(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accAblationReportBack(opt, p, "")
	return renderAblationReportBack(opt, p, "")
}
