// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.1.5 and §3). Each function returns both the raw series
// (for tests and benches) and a printable stats.Table (for cmd/uwbench).
//
// Absolute values depend on our simulated water bodies rather than Lake
// Union; EXPERIMENTS.md records paper-vs-measured side by side. What must
// reproduce is the *shape*: orderings, trends, crossovers and factors.
package experiments

import (
	"context"
	"math"
	"math/rand"

	"uwpos/internal/core"
	"uwpos/internal/engine"
	"uwpos/internal/geom"
	"uwpos/internal/graph"
	"uwpos/internal/stats"
)

// Options tunes experiment effort.
type Options struct {
	Seed int64
	// Samples scales Monte-Carlo sample counts (0 = paper-like defaults;
	// Quick divides heavier experiments further).
	Samples int
	Quick   bool
	// Workers bounds concurrent trials in the engine-backed experiments
	// (0 = GOMAXPROCS). Results are identical for every worker count —
	// see internal/engine's seeding contract.
	Workers int
	// Progress, when non-nil, receives each completed trial's headline
	// scalar (typically an error in metres) as results stream out of the
	// engine — the hook behind uwbench's live -progress line. Calls are
	// serialized on the experiment's goroutine; the callback must not
	// block for long (it stalls result delivery, not the trials).
	Progress func(v float64)
	// ServiceAddr points the service load-test experiment at a live
	// uwposd daemon ("host:port" or full URL). Empty = in-process server.
	ServiceAddr string
	// Shard restricts every trial stage to one contiguous slice of its
	// global trial sequence (see ShardSpec). Trial indices stay global, so
	// shard runs draw exactly the trials the full run would have; merging
	// the resulting Partials in shard-index order reproduces the full run.
	// The zero value runs everything.
	Shard ShardSpec
	// Checkpoint, when non-nil, is called once per delivered trial, after
	// the trial's contributions are fully folded into the experiment's
	// Partial — the safe point for serializing partial state (uwbench's
	// periodic checkpoint writer hooks in here). Calls are serialized on
	// the experiment's goroutine.
	Checkpoint func()
}

// observe forwards one trial scalar to the Progress hook, if any.
func (o Options) observe(v float64) {
	if o.Progress != nil {
		o.Progress(v)
	}
}

func (o Options) samples(def int) int {
	n := def
	if o.Samples > 0 {
		n = o.Samples
	}
	if o.Quick && n > 8 {
		n = n / 4
	}
	return n
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewSource(o.seed()))
}

// engine builds the trial-engine config for one experiment stage. salt
// decorrelates stages that share an Options value (the points of a sweep,
// different experiments in one run), so no two stages replay the same
// per-trial streams. Every stage takes its salt from the salt* constants
// below — one disjoint thousand-block per experiment, stage offsets well
// under 1000 — so uniqueness is checkable at a glance.
func (o Options) engine(salt int64) engine.Config {
	return engine.Config{Seed: o.seed() + salt*1_000_003, Workers: o.Workers}
}

// Per-experiment salt namespaces. Stages within an experiment add small
// offsets (sweep index, method id, sub-case) to their block; AblationReportBack
// deliberately reuses one salt across its two variants to pair the rounds.
const (
	saltFig06a        = 1000
	saltFig06b        = 2000
	saltFig06c        = 3000
	saltFig06d        = 4000
	saltFig11a        = 5000
	saltFig11b        = 6000
	saltFig12a        = 7000
	saltFig12b        = 8000
	saltFig13a        = 9000
	saltFig14a        = 10000
	saltFig14b        = 11000
	saltFig15         = 12000
	saltFig18         = 13000
	saltFig19a        = 14000
	saltFig19b        = 15000
	saltFourDevices   = 16000
	saltFig20         = 17000
	saltRTT           = 18000
	saltFlipping      = 19000
	saltAblBandWindow = 20000
	saltAblPrefilter  = 21000
	saltAblRestarts   = 22000
	saltAblReportBack = 23000
	saltFig13b        = 24000
	saltFig16         = 25000
	saltIngest        = 26000
)

// analyticalScenario draws one §2.1.5 Monte-Carlo sample: N devices in a
// 60×60×10 m volume, leader centered, user 1 at 4–9 m.
func analyticalScenario(rng *rand.Rand, n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	pts[0] = geom.Vec3{X: 30, Y: 30, Z: rng.Float64() * 10}
	ang := rng.Float64() * 2 * math.Pi
	r := 4 + 5*rng.Float64()
	pts[1] = geom.Vec3{
		X: 30 + r*math.Cos(ang),
		Y: 30 + r*math.Sin(ang),
		Z: rng.Float64() * 10,
	}
	for i := 2; i < n; i++ {
		pts[i] = geom.Vec3{X: rng.Float64() * 60, Y: rng.Float64() * 60, Z: rng.Float64() * 10}
	}
	return pts
}

// analyticalTrial builds the measurement set with the paper's uniform
// error model and runs localization, returning the mean 2D error across
// divers (excluding the leader) or NaN on failure.
func analyticalTrial(rng *rand.Rand, truth []geom.Vec3, e1d, eh, eThetaRad float64, drops int) float64 {
	n := len(truth)
	// One slab for both matrices: 2 allocations instead of 2n+2 per trial,
	// which the engine benchmarks count.
	slab := make([]float64, 2*n*n)
	d := make([][]float64, n)
	w := make([][]float64, n)
	for i := range d {
		d[i] = slab[i*n : (i+1)*n : (i+1)*n]
		w[i] = slab[(n+i)*n : (n+i+1)*n : (n+i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := truth[i].Dist(truth[j]) + uniform(rng, e1d)
			if v < 0 {
				v = 0
			}
			d[i][j], d[j][i] = v, v
			w[i][j], w[j][i] = 1, 1
		}
	}
	// Random link drops that keep the graph uniquely realizable and keep
	// the leader→user-1 link (required by the pipeline).
	if drops > 0 {
		g := graph.Complete(n)
		dropped := 0
		for attempts := 0; attempts < 200 && dropped < drops; attempts++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b || !g.HasEdge(a, b) {
				continue
			}
			if (a == 0 && b == 1) || (a == 1 && b == 0) {
				continue
			}
			g.RemoveEdge(a, b)
			if !g.UniquelyRealizable() {
				g.AddEdge(a, b)
				continue
			}
			w[a][b], w[b][a] = 0, 0
			dropped++
		}
	}
	depths := make([]float64, n)
	signs := make([]int, n)
	for i := range truth {
		depths[i] = clamp(truth[i].Z+uniform(rng, eh), 0, 40)
	}
	for i := 2; i < n; i++ {
		cross := truth[i].Sub(truth[0]).XY().Cross(truth[1].Sub(truth[0]).XY())
		switch {
		case cross > 0:
			signs[i] = 1
		case cross < 0:
			signs[i] = -1
		}
	}
	bearing := truth[1].Sub(truth[0]).XY().Angle() + uniform(rng, eThetaRad)
	res, err := core.Localize(context.Background(), core.Input{
		D: d, W: w, Depths: depths, MicSigns: signs, PointingBearing: bearing,
	}, core.DefaultConfig())
	if err != nil {
		return math.NaN()
	}
	var sum float64
	for i := 1; i < n; i++ {
		want := truth[i].Sub(truth[0]).XY()
		sum += res.Planar[i].Dist(want)
	}
	return sum / float64(n-1)
}

func uniform(rng *rand.Rand, e float64) float64 {
	if e == 0 {
		return 0
	}
	return e * (2*rng.Float64() - 1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// accMeanOverTrials fans trials across the engine, streaming successful
// results (in trial order) into a named sketch; failures are skipped.
// The sketch's exact-mode mean is the same left-fold sum over the same
// divisor the old online-averaging loop computed, so tables are
// bit-identical to the pre-shard code path at any worker count. salt
// keeps each sweep point on its own per-trial streams.
func accMeanOverTrials(opt Options, p *Partial, key string, salt int64, n, trials int, e1d, eh, eTheta float64, drops int) {
	sk := p.Sketch(key)
	stage(opt, p, key, salt, trials, func(_ int, rng *rand.Rand) float64 {
		truth := analyticalScenario(rng, n)
		return analyticalTrial(rng, truth, e1d, eh, eTheta, drops)
	}, func(_ int, v float64) {
		if !math.IsNaN(v) {
			sk.Add(v)
			opt.observe(v)
		}
	})
}

// fig06Points reads the per-sweep-point means of one §2.1.5 sweep back
// out of a Partial.
func fig06Points(p *Partial, pre, id string, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Sketch(pre + id + "/" + ik(i)).Mean()
	}
	return out
}

func accFig06a(opt Options, p *Partial, pre string) {
	trials := opt.samples(200)
	sweep := []float64{0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
	for i, e := range sweep {
		accMeanOverTrials(opt, p, pre+"fig06a/"+ik(i), saltFig06a+int64(i), 6, trials, e, 0.4, 0, 0)
	}
}

func renderFig06a(_ Options, p *Partial, pre string) ([]float64, *stats.Table) {
	sweep := []float64{0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
	out := fig06Points(p, pre, "fig06a", len(sweep))
	table := &stats.Table{
		ID:     "fig06a",
		Title:  "mean 2D error vs 1D ranging error (N=6, εh=0.4 m)",
		Paper:  "roughly linear growth; ~1 m error at ε1d≈0.8–1.0 m, ~3–4 m at ε1d=2 m",
		Header: []string{"ε1d (m)", "mean 2D err (m)"},
	}
	for i, e := range sweep {
		table.Rows = append(table.Rows, []string{stats.F(e), stats.F(out[i])})
	}
	return out, table
}

// Fig06a sweeps the 1D ranging error (Fig. 6a): mean 2D error vs ε_1d,
// N=6, ε_h=0.4 m, ε_θ=0.
func Fig06a(opt Options) ([]float64, *stats.Table) {
	p := NewPartial()
	accFig06a(opt, p, "")
	return renderFig06a(opt, p, "")
}

func accFig06b(opt Options, p *Partial, pre string) {
	trials := opt.samples(200)
	for i, n := range []int{3, 4, 5, 6, 7, 8} {
		accMeanOverTrials(opt, p, pre+"fig06b/"+ik(i), saltFig06b+int64(i), n, trials, 0.8, 0.4, 0, 0)
	}
}

func renderFig06b(_ Options, p *Partial, pre string) ([]float64, *stats.Table) {
	ns := []int{3, 4, 5, 6, 7, 8}
	out := fig06Points(p, pre, "fig06b", len(ns))
	table := &stats.Table{
		ID:     "fig06b",
		Title:  "mean 2D error vs number of users (ε1d=0.8, εh=0.4)",
		Paper:  "error decreases as N grows (≈2 m at N=3 down to <1 m at N=8)",
		Header: []string{"N", "mean 2D err (m)"},
	}
	for i, n := range ns {
		table.Rows = append(table.Rows, []string{stats.F(float64(n)), stats.F(out[i])})
	}
	return out, table
}

// Fig06b sweeps the number of users (Fig. 6b): ε1d=0.8, εh=0.4.
func Fig06b(opt Options) ([]float64, *stats.Table) {
	p := NewPartial()
	accFig06b(opt, p, "")
	return renderFig06b(opt, p, "")
}

func accFig06c(opt Options, p *Partial, pre string) {
	trials := opt.samples(200)
	degs := []float64{0, 2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20}
	for i, dg := range degs {
		accMeanOverTrials(opt, p, pre+"fig06c/"+ik(i), saltFig06c+int64(i), 6, trials, 0.8, 0.4, geom.Deg2Rad(dg), 0)
	}
}

func renderFig06c(_ Options, p *Partial, pre string) ([]float64, *stats.Table) {
	degs := []float64{0, 2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20}
	out := fig06Points(p, pre, "fig06c", len(degs))
	table := &stats.Table{
		ID:     "fig06c",
		Title:  "mean 2D error vs orientation error (N=6, ε1d=0.8, εh=0.4)",
		Paper:  "grows with pointing error: ~1 m at 0° to ~2.5–3 m at 20°",
		Header: []string{"εθ (deg)", "mean 2D err (m)"},
	}
	for i, dg := range degs {
		table.Rows = append(table.Rows, []string{stats.F(dg), stats.F(out[i])})
	}
	return out, table
}

// Fig06c sweeps the pointing error (Fig. 6c): N=6, ε1d=0.8, εh=0.4.
func Fig06c(opt Options) ([]float64, *stats.Table) {
	p := NewPartial()
	accFig06c(opt, p, "")
	return renderFig06c(opt, p, "")
}

func accFig06d(opt Options, p *Partial, pre string) {
	trials := opt.samples(200)
	for i, k := range []int{0, 1, 2, 3} {
		accMeanOverTrials(opt, p, pre+"fig06d/"+ik(i), saltFig06d+int64(i), 6, trials, 0.8, 0.4, 0, k)
	}
}

func renderFig06d(_ Options, p *Partial, pre string) ([]float64, *stats.Table) {
	drops := []int{0, 1, 2, 3}
	out := fig06Points(p, pre, "fig06d", len(drops))
	table := &stats.Table{
		ID:     "fig06d",
		Title:  "mean 2D error vs dropped links (N=6, ε1d=0.8, εh=0.4)",
		Paper:  "mild growth with dropped links (~1 m at 0 to ~1.5–2 m at 3)",
		Header: []string{"dropped links", "mean 2D err (m)"},
	}
	for i, k := range drops {
		table.Rows = append(table.Rows, []string{stats.F(float64(k)), stats.F(out[i])})
	}
	return out, table
}

// Fig06d sweeps dropped links (Fig. 6d): N=6, ε1d=0.8, εh=0.4, εθ=0.
func Fig06d(opt Options) ([]float64, *stats.Table) {
	p := NewPartial()
	accFig06d(opt, p, "")
	return renderFig06d(opt, p, "")
}
