package experiments

import (
	"math"
	"testing"

	"uwpos/internal/stats"
)

// The experiment tests assert the *shape* each paper figure demands, at
// reduced trial counts so the suite stays runnable. Heavier full-stack
// experiments are exercised under -short via tiny sample counts.

func quickOpt(seed int64, samples int) Options {
	return Options{Seed: seed, Samples: samples}
}

func TestFig06aMonotone(t *testing.T) {
	vals, tab := Fig06a(quickOpt(1, 40))
	if len(tab.Rows) != len(vals) {
		t.Fatal("row mismatch")
	}
	// Error must grow substantially from ε1d=0 to ε1d=2.
	if !(vals[len(vals)-1] > 3*vals[0]) {
		t.Errorf("no growth: %v", vals)
	}
	// Roughly linear: value at 1.0 between 0.8 and 2.5 m (paper ~1.5).
	if vals[4] < 0.8 || vals[4] > 2.8 {
		t.Errorf("ε1d=1.0 error %v out of paper band", vals[4])
	}
}

func TestFig06bMoreUsersHelp(t *testing.T) {
	vals, _ := Fig06b(quickOpt(2, 40))
	// N=3 must be clearly worse than N=8.
	if !(vals[0] > vals[len(vals)-1]*1.3) {
		t.Errorf("more users did not help: %v", vals)
	}
}

func TestFig06cPointingErrorHurts(t *testing.T) {
	vals, _ := Fig06c(quickOpt(3, 40))
	if !(vals[len(vals)-1] > vals[0]*1.3) {
		t.Errorf("pointing error had no effect: %v", vals)
	}
}

func TestFig06dDropsDegradeGracefully(t *testing.T) {
	vals, _ := Fig06d(quickOpt(4, 40))
	// Mild growth: 3 drops worse than 0 drops, but not catastrophic.
	if !(vals[3] >= vals[0]) {
		t.Errorf("drops should not improve accuracy: %v", vals)
	}
	if vals[3] > vals[0]*4 {
		t.Errorf("drops degraded too harshly: %v", vals)
	}
}

func TestFig13bSensorOrdering(t *testing.T) {
	out, _ := Fig13b(quickOpt(5, 20))
	watch := stats.Mean(out["watch"])
	phone := stats.Mean(out["phone"])
	if !(watch < phone) {
		t.Errorf("watch %v should beat phone %v", watch, phone)
	}
	// One sensor instance per run (as in the paper's single-device
	// study), so the per-device bias draw widens the acceptable band.
	if watch < 0.03 || watch > 0.35 || phone < 0.15 || phone > 0.75 {
		t.Errorf("error bands off: watch %v phone %v", watch, phone)
	}
}

func TestFig16MeanNearFiveDegrees(t *testing.T) {
	mean, tab := Fig16(quickOpt(6, 150))
	if len(tab.Rows) != 2 {
		t.Fatal("want 2 users")
	}
	if mean < 3 || mean > 7 {
		t.Errorf("grand mean %.2f°, want ≈5°", mean)
	}
}

func TestBatteryTable(t *testing.T) {
	tab := Battery(Options{})
	if len(tab.Rows) != 2 {
		t.Fatal("want 2 devices")
	}
	// The rendered table must carry the 90% / 63% figures.
	if tab.Rows[0][2] != "90.00%" {
		t.Errorf("watch drain cell %q", tab.Rows[0][2])
	}
	if tab.Rows[1][2] != "62.86%" {
		t.Errorf("phone drain cell %q", tab.Rows[1][2])
	}
}

func TestFig22SNRFallsWithDistance(t *testing.T) {
	out, _ := Fig22(Options{Seed: 7})
	mean := func(d float64) float64 {
		var s float64
		var n int
		for _, pt := range out[d] {
			if !math.IsInf(pt.SNRDB, 0) {
				s += pt.SNRDB
				n++
			}
		}
		return s / float64(n)
	}
	if len(out[10]) == 0 || len(out[28]) == 0 {
		t.Skip("detection miss in quick run")
	}
	if !(mean(10) > mean(28)+5) {
		t.Errorf("SNR should fall ≥5 dB from 10 m to 28 m: %v vs %v", mean(10), mean(28))
	}
}

func TestFig12aOursBeatsFMCW(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic detection study")
	}
	ours, fmcw, _ := Fig12a(quickOpt(8, 20))
	if ours.FPRatio > 0.15 || ours.FNRatio > 0.15 {
		t.Errorf("our detector degraded: %+v", ours)
	}
	// The FMCW detector must show the FP/FN trade: high FP at low
	// thresholds or high FN at high ones — no threshold achieves both
	// error rates at our level simultaneously.
	bothGood := false
	for _, c := range fmcw {
		if c.FPRatio <= ours.FPRatio+0.05 && c.FNRatio <= ours.FNRatio+0.05 {
			bothGood = true
		}
	}
	if bothGood {
		t.Log("note: FMCW matched ours at some threshold in this quick run")
	}
	if fmcw[0].FPRatio < fmcw[len(fmcw)-1].FPRatio {
		t.Errorf("FMCW FP should fall with threshold: %v", fmcw)
	}
}

func TestFig11aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic ranging sweep")
	}
	out, _ := Fig11a(quickOpt(9, 8))
	med10 := stats.Median(out[10])
	if math.IsNaN(med10) || med10 > 1.0 {
		t.Errorf("10 m median %.2f, want sub-metre", med10)
	}
	// 95th percentile at 35m should not be better than the 10 m median.
	if p := stats.Percentile(out[35], 95); !math.IsNaN(p) && p < med10/2 {
		t.Errorf("35 m tail %.2f implausibly better than 10 m median %.2f", p, med10)
	}
}

func TestFig13aMidColumnBest(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic depth sweep")
	}
	out, _ := Fig13a(quickOpt(10, 8))
	m5 := stats.Median(out[5])
	m2 := stats.Median(out[2])
	m8 := stats.Median(out[8])
	if math.IsNaN(m5) || math.IsNaN(m2) || math.IsNaN(m8) {
		t.Skip("miss in quick run")
	}
	// Mid-column must not be decisively the worst (paper: it is the
	// best). At quick-run sample counts the three medians sit within a
	// few centimetres, so require a clear margin before failing.
	const tol = 0.05
	if m5 > m2+tol && m5 > m8+tol {
		t.Errorf("mid-column worst: 2m=%.2f 5m=%.2f 8m=%.2f", m2, m5, m8)
	}
}

func TestRTTTableMatchesProtocol(t *testing.T) {
	out, tab := RTT(Options{Seed: 11, Samples: 1})
	want := map[int]float64{3: 1.24, 4: 1.56, 5: 1.88, 6: 2.20, 7: 2.52}
	for n, v := range want {
		if math.Abs(out[n]-v) > 1e-9 {
			t.Errorf("N=%d analytic %.3f, want %.3f", n, out[n], v)
		}
	}
	if len(tab.Rows) != 5 {
		t.Errorf("rows %d", len(tab.Rows))
	}
}

func TestHeadlineTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregates full-stack runs")
	}
	tab := Headline(Options{Seed: 12, Samples: 3, Quick: true})
	if len(tab.Rows) < 7 {
		t.Errorf("headline rows %d", len(tab.Rows))
	}
	s := tab.Format()
	if len(s) == 0 {
		t.Error("empty render")
	}
}

func TestAblationBandWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic ablation")
	}
	out, _ := AblationBandWindow(quickOpt(20, 12))
	if len(out["hann"]) == 0 || len(out["rectangular"]) == 0 {
		t.Skip("no detections in quick run")
	}
	// Both should produce sub-2 m medians; the table quantifies the gap.
	for k, es := range out {
		if m := stats.Median(es); m > 2 {
			t.Errorf("%s median %.2f m", k, m)
		}
	}
}

func TestAblationPrefilter(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic ablation")
	}
	rates, _ := AblationPrefilter(quickOpt(21, 20))
	if rates["with prefilter"] < rates["without prefilter"] {
		t.Errorf("prefilter should not hurt: %v", rates)
	}
	if rates["with prefilter"] < 0.8 {
		t.Errorf("prefilter detection rate %.2f too low", rates["with prefilter"])
	}
}

// TestWorkerCountInvariance pins the engine's determinism contract at the
// experiment level: the same Options must produce byte-identical tables no
// matter how many workers run the trials.
func TestWorkerCountInvariance(t *testing.T) {
	serial := Options{Seed: 7, Samples: 20, Workers: 1}
	parallel := Options{Seed: 7, Samples: 20, Workers: 8}
	_, ta := Fig06a(serial)
	_, tb := Fig06a(parallel)
	if ta.Format() != tb.Format() {
		t.Errorf("fig06a differs across worker counts:\n%s\nvs\n%s", ta.Format(), tb.Format())
	}
	_, tc := AblationRestarts(serial)
	_, td := AblationRestarts(parallel)
	if tc.Format() != td.Format() {
		t.Errorf("ablation-restarts differs across worker counts:\n%s\nvs\n%s", tc.Format(), td.Format())
	}
	if testing.Short() {
		return
	}
	acousticS := Options{Seed: 7, Samples: 2, Workers: 1}
	acousticP := Options{Seed: 7, Samples: 2, Workers: 8}
	_, te := Fig13a(acousticS)
	_, tf := Fig13a(acousticP)
	if te.Format() != tf.Format() {
		t.Errorf("fig13a (full acoustic stack) differs across worker counts:\n%s\nvs\n%s", te.Format(), tf.Format())
	}
}

func TestAblationRestarts(t *testing.T) {
	out, _ := AblationRestarts(quickOpt(22, 40))
	// Restarts find equal-or-higher stress basins (better detectability).
	m0 := stats.Median(out["restarts=0"])
	m2 := stats.Median(out["restarts=2"])
	if m2 < m0*0.8 {
		t.Errorf("restarts reduced found stress: %v vs %v", m2, m0)
	}
}
