package experiments

import (
	"context"
	"fmt"

	"uwpos/internal/channel"
	"uwpos/internal/ingest"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// Ingest profiles the real-time ingest path under full protocol rounds:
// every receiver-side scan of a round (message detection, calibration,
// baselines when exercised) runs through ingest pipelines fed at audio-
// callback cadence, and a shared deadline meter accounts each buffer's
// processing time against its real-time budget (budget = the buffer's
// own audio duration, RTF 1.0). The table reports, per ingest buffer
// size, the aggregated per-buffer real-time-factor distribution and the
// deadline miss count — the answer to "would this pipeline hold up on
// the phone at this buffer grain".
//
// Buffer/audio totals are deterministic in the seed; the RTF columns are
// wall-clock measurements and vary run to run (machine-dependent, not
// compared against baselines). Rounds run serially: the meter reads a
// monotonic clock per buffer and deliberately has no locking.
func Ingest(opt Options) *stats.Table {
	rounds := opt.samples(2)
	if opt.Quick {
		rounds = 1
	}
	table := &stats.Table{
		ID:    "ingest",
		Title: "real-time ingest: per-buffer deadline headroom by buffer size",
		Header: []string{"chunk", "budget ms", "rounds", "buffers", "audio s",
			"p50 RTF", "p90 RTF", "p99 RTF", "max RTF", "misses"},
		Notes: "RTF = processing time / buffer audio duration; budget RTF 1.0 " +
			"(keep up with capture). RTF columns are wall-clock and vary run to " +
			"run; buffer counts are deterministic in the seed.",
	}
	fs := 44100.0
	for _, chunk := range []int{1024, 4096, 16384} {
		meter := ingest.NewMeter(1.0)
		for r := 0; r < rounds; r++ {
			cfg := testbed(channel.Dock(), opt.seed()+saltIngest+int64(r))
			cfg.IngestChunk = chunk
			cfg.IngestMeter = meter
			nw, err := sim.NewNetwork(cfg)
			if err != nil {
				table.Notes += "; ERROR: " + err.Error()
				return table
			}
			if _, err := nw.RunRound(context.Background()); err != nil {
				table.Notes += "; ERROR: " + err.Error()
				return table
			}
			opt.observe(float64(meter.Report().Buffers))
		}
		r := meter.Report()
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", chunk),
			stats.F(float64(chunk) / fs * 1e3),
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", r.Buffers),
			stats.F(r.AudioSeconds),
			stats.F(r.P50RTF),
			stats.F(r.P90RTF),
			stats.F(r.P99RTF),
			stats.F(r.MaxRTF),
			fmt.Sprintf("%d", r.Misses),
		})
	}
	return table
}
