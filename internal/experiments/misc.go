package experiments

import (
	"math"
	"math/rand"

	"uwpos/internal/depth"
	"uwpos/internal/engine"
	"uwpos/internal/orient"
	"uwpos/internal/power"
	"uwpos/internal/stats"
)

// Fig13b measures depth-sensor accuracy: smartwatch dive gauge vs phone
// barometer in a pouch, lowered 0–9 m in 1 m steps (30 s holds → repeated
// reads), reporting measured-vs-reference and error statistics.
func Fig13b(opt Options) (map[string][]float64, *stats.Table) {
	rng := opt.rng()
	reps := opt.samples(30)
	out := map[string][]float64{"watch": nil, "phone": nil}
	table := &stats.Table{
		ID:     "fig13b",
		Title:  "depth measurement accuracy: smartwatch gauge vs phone barometer",
		Paper:  "watch 0.15±0.11 m, phone 0.42±0.18 m across 0–9 m",
		Header: []string{"sensor", "mean abs err (m)", "std (m)"},
	}
	// One sensor instance per run, as in the paper's single-device study:
	// the bias draws come from the run rng; per-reading noise then runs on
	// engine trial streams (Sensor.Read only reads sensor fields, so one
	// instance is safe across workers).
	sensors := map[string]*depth.Sensor{
		"watch": depth.NewWatchGauge(rng),
		"phone": depth.NewPhoneBarometer(rng),
	}
	const refs = 10 // 0–9 m in 1 m steps
	for ni, name := range []string{"watch", "phone"} {
		s := sensors[name]
		sk := stats.NewSketch()
		engine.Each(opt.engine(saltFig13b+int64(ni)), refs*reps, func(t int, rng *rand.Rand) float64 {
			ref := float64(t / reps)
			return math.Abs(s.Read(ref, rng) - ref)
		}, func(_ int, e float64) {
			sk.Add(e)
			opt.observe(e)
		})
		out[name] = sk.Values()
		table.Rows = append(table.Rows, []string{name, stats.F(sk.Mean()), stats.F(sk.Std())})
	}
	return out, table
}

// Fig16 reproduces the human leader-orientation study: two simulated
// users aiming at 3–9 m, camera-checkerboard measurement chain.
func Fig16(opt Options) (float64, *stats.Table) {
	trials := opt.samples(200)
	cam := orient.DefaultCamera()
	table := &stats.Table{
		ID:     "fig16",
		Title:  "leader pointing error vs distance (camera/checkerboard chain)",
		Paper:  "average 5.0° across two users and 3–9 m distances",
		Header: []string{"user", "3 m", "5 m", "7 m", "9 m", "mean (deg)"},
	}
	dists := []float64{3, 5, 7, 9}
	users := []orient.HumanModel{orient.DefaultHuman(), {BaseErrDeg: 4.0, PerMeterDeg: 0.2, ArmTremorDeg: 1.4}}
	type userStudy struct {
		perDist []float64
		grand   float64
	}
	// One engine trial per simulated user; the study's internal loop
	// draws from that user's stream.
	res := engine.Map(opt.engine(saltFig16), len(users), func(ui int, rng *rand.Rand) userStudy {
		perDist, grand := orient.Study(cam, users[ui], dists, trials, rng)
		return userStudy{perDist: perDist, grand: grand}
	})
	var grandSum float64
	for ui, us := range res {
		row := []string{"user " + stats.F(float64(ui+1))}
		for _, v := range us.perDist {
			row = append(row, stats.F(v))
		}
		row = append(row, stats.F(us.grand))
		table.Rows = append(table.Rows, row)
		grandSum += us.grand
	}
	return grandSum / float64(len(users)), table
}

// Battery reproduces the §3.1 power study.
func Battery(_ Options) *stats.Table {
	table := &stats.Table{
		ID:     "battery",
		Title:  "battery drain after 4.5 h of acoustic operation",
		Paper:  "watch (continuous siren) −90%; phone (preamble / 3 s) −63%",
		Header: []string{"device", "workload", "drain @4.5 h", "hours to empty"},
	}
	for _, p := range []power.Profile{power.WatchSiren(), power.PhonePreambles()} {
		h, err := p.HoursToDrain(1)
		cell := "n/a"
		if err == nil {
			cell = stats.F(h) + " h"
		}
		table.Rows = append(table.Rows, []string{
			p.Name, "continuous", stats.F(p.DrainAfter(4.5)*100) + "%", cell,
		})
	}
	return table
}
