package experiments

import (
	"math"
	"math/rand"

	"uwpos/internal/depth"
	"uwpos/internal/orient"
	"uwpos/internal/power"
	"uwpos/internal/stats"
)

var fig13bSensors = []string{"watch", "phone"}

func accFig13b(opt Options, p *Partial, pre string) {
	rng := opt.rng()
	reps := opt.samples(30)
	// One sensor instance per run, as in the paper's single-device study:
	// the bias draws come from the run rng — watch then phone, in that
	// order, so every shard constructs bit-identical sensors. Per-reading
	// noise then runs on engine trial streams (Sensor.Read only reads
	// sensor fields, so one instance is safe across workers).
	sensors := map[string]*depth.Sensor{
		"watch": depth.NewWatchGauge(rng),
		"phone": depth.NewPhoneBarometer(rng),
	}
	const refs = 10 // 0–9 m in 1 m steps
	for ni, name := range fig13bSensors {
		s := sensors[name]
		key := pre + "fig13b/" + ik(ni)
		sk := p.Sketch(key)
		stage(opt, p, key, saltFig13b+int64(ni), refs*reps, func(t int, rng *rand.Rand) float64 {
			ref := float64(t / reps)
			return math.Abs(s.Read(ref, rng) - ref)
		}, func(_ int, e float64) {
			sk.Add(e)
			opt.observe(e)
		})
	}
}

func renderFig13b(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := map[string][]float64{"watch": nil, "phone": nil}
	table := &stats.Table{
		ID:     "fig13b",
		Title:  "depth measurement accuracy: smartwatch gauge vs phone barometer",
		Paper:  "watch 0.15±0.11 m, phone 0.42±0.18 m across 0–9 m",
		Header: []string{"sensor", "mean abs err (m)", "std (m)"},
	}
	for ni, name := range fig13bSensors {
		sk := p.Sketch(pre + "fig13b/" + ik(ni))
		out[name] = sk.Values()
		table.Rows = append(table.Rows, []string{name, stats.F(sk.Mean()), stats.F(sk.Std())})
	}
	return out, table
}

// Fig13b measures depth-sensor accuracy: smartwatch dive gauge vs phone
// barometer in a pouch, lowered 0–9 m in 1 m steps (30 s holds → repeated
// reads), reporting measured-vs-reference and error statistics.
func Fig13b(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig13b(opt, p, "")
	return renderFig13b(opt, p, "")
}

var fig16Dists = []float64{3, 5, 7, 9}

func accFig16(opt Options, p *Partial, pre string) {
	trials := opt.samples(200)
	cam := orient.DefaultCamera()
	users := []orient.HumanModel{orient.DefaultHuman(), {BaseErrDeg: 4.0, PerMeterDeg: 0.2, ArmTremorDeg: 1.4}}
	// One engine trial per simulated user; the study's internal loop draws
	// from that user's stream. The user's sketch holds perDist values then
	// the grand mean, in that order.
	key := pre + "fig16"
	stage(opt, p, key, saltFig16, len(users), func(ui int, rng *rand.Rand) []float64 {
		perDist, grand := orient.Study(cam, users[ui], fig16Dists, trials, rng)
		return append(append([]float64(nil), perDist...), grand)
	}, func(ui int, vals []float64) {
		sk := p.Sketch(key + "/u" + ik(ui))
		for _, v := range vals {
			sk.Add(v)
		}
	})
}

func renderFig16(_ Options, p *Partial, pre string) (float64, *stats.Table) {
	table := &stats.Table{
		ID:     "fig16",
		Title:  "leader pointing error vs distance (camera/checkerboard chain)",
		Paper:  "average 5.0° across two users and 3–9 m distances",
		Header: []string{"user", "3 m", "5 m", "7 m", "9 m", "mean (deg)"},
	}
	const nUsers = 2
	var grandSum float64
	for ui := 0; ui < nUsers; ui++ {
		vals := p.Sketch(pre + "fig16" + "/u" + ik(ui)).Values()
		row := []string{"user " + stats.F(float64(ui+1))}
		for _, v := range vals[:len(fig16Dists)] {
			row = append(row, stats.F(v))
		}
		grand := vals[len(fig16Dists)]
		row = append(row, stats.F(grand))
		table.Rows = append(table.Rows, row)
		grandSum += grand
	}
	return grandSum / nUsers, table
}

// Fig16 reproduces the human leader-orientation study: two simulated
// users aiming at 3–9 m, camera-checkerboard measurement chain.
func Fig16(opt Options) (float64, *stats.Table) {
	p := NewPartial()
	accFig16(opt, p, "")
	return renderFig16(opt, p, "")
}

// Battery reproduces the §3.1 power study. It is pure arithmetic over the
// power profiles — no trials, no randomness — so the shard registry runs
// it as render-only.
func Battery(_ Options) *stats.Table {
	table := &stats.Table{
		ID:     "battery",
		Title:  "battery drain after 4.5 h of acoustic operation",
		Paper:  "watch (continuous siren) −90%; phone (preamble / 3 s) −63%",
		Header: []string{"device", "workload", "drain @4.5 h", "hours to empty"},
	}
	for _, p := range []power.Profile{power.WatchSiren(), power.PhonePreambles()} {
		h, err := p.HoursToDrain(1)
		cell := "n/a"
		if err == nil {
			cell = stats.F(h) + " h"
		}
		table.Rows = append(table.Rows, []string{
			p.Name, "continuous", stats.F(p.DrainAfter(4.5)*100) + "%", cell,
		})
	}
	return table
}
