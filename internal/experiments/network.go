package experiments

import (
	"context"
	"math"
	"math/rand"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/device"
	"uwpos/internal/engine"
	"uwpos/internal/geom"
	"uwpos/internal/graph"
	"uwpos/internal/protocol"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// testbed builds the Fig. 17-style five-device deployment for an
// environment, with link distances to the leader spanning 3–25 m.
func testbed(env *channel.Environment, seed int64) sim.Config {
	s9 := device.GalaxyS9
	depthCap := env.BottomDepthM - 0.5
	d := func(z float64) float64 { return math.Min(z, depthCap) }
	specs := []sim.DeviceSpec{
		{Model: s9(), Pos: geom.Vec3{X: 0, Y: 0, Z: d(2.0)}},
		{Model: s9(), Pos: geom.Vec3{X: 6, Y: 1.5, Z: d(2.5)}},
		{Model: s9(), Pos: geom.Vec3{X: 13, Y: -5, Z: d(1.5)}},
		{Model: s9(), Pos: geom.Vec3{X: 10, Y: 8, Z: d(3.5)}},
		{Model: s9(), Pos: geom.Vec3{X: 20, Y: 2, Z: d(2.5)}},
	}
	o, _ := sim.LeaderOrientation(specs[0].Pos, specs[1].Pos, 0)
	specs[0].Orient = o
	return sim.Config{Env: env, Devices: specs, Seed: seed}
}

// roundData is one full-stack protocol round kept for post-processing.
type roundData struct {
	nw      *sim.Network
	round   *sim.RoundResult
	bearing float64
	cfg     sim.Config
	trial   int // global trial index within the collect, for derived randomness
}

// accStreamRounds fans full acoustic rounds across the trial engine and
// hands each surviving round to sink as soon as it completes, in trial
// order, so per-round post-processing runs while later rounds are still
// simulating and no round is retained past its sink call — the memory
// profile is one round per worker instead of one per trial. The stage
// machinery scopes the run to this shard's span of [0, rounds) and skips
// the checkpointed prefix on resume; rd.trial carries the global trial
// index either way, so derived randomness (engine.Rand(seed', rd.trial))
// is shard- and worker-invariant. mk builds trial t's scenario, drawing
// any per-round variation from rng; the round itself then consumes the
// same rng inside the network, per the engine's seeding contract. Failed
// rounds are dropped.
func accStreamRounds(opt Options, p *Partial, key string, salt int64, mk func(trial int, rng *rand.Rand) sim.Config, rounds int, sink func(rd roundData)) {
	type slot struct {
		rd roundData
		ok bool
	}
	stage(opt, p, key, salt, rounds, func(t int, rng *rand.Rand) slot {
		cfg := mk(t, rng)
		if cfg.Rng == nil {
			cfg.Rng = rng
		}
		nw, err := sim.NewNetwork(cfg)
		if err != nil {
			return slot{}
		}
		round, err := nw.RunRound(context.Background())
		if err != nil {
			return slot{}
		}
		_, bearing := sim.LeaderOrientation(cfg.Devices[0].Pos, cfg.Devices[1].Pos, 0)
		return slot{rd: roundData{nw: nw, round: round, bearing: bearing, cfg: cfg, trial: t}, ok: true}
	}, func(_ int, s slot) {
		if s.ok {
			sink(s.rd)
		}
	})
}

// staticTestbed adapts a fixed scenario to accStreamRounds' factory shape.
func staticTestbed(env *channel.Environment) func(int, *rand.Rand) sim.Config {
	return func(int, *rand.Rand) sim.Config { return testbed(env, 0) }
}

// localizeErrors scores one round, returning per-device 2D errors
// (excluding the leader) alongside their true link distances to the
// leader.
func localizeErrors(rd roundData, cfg core.Config) (errs, linkDist []float64, ok bool) {
	loc, err := rd.nw.LocalizeRound(context.Background(), rd.round, rd.bearing, cfg)
	if err != nil {
		return nil, nil, false
	}
	for i := 1; i < len(loc.Err2D); i++ {
		errs = append(errs, loc.Err2D[i])
		linkDist = append(linkDist, rd.round.TrueD[0][i])
	}
	return errs, linkDist, true
}

var (
	fig18Sites   = []string{"dock", "boathouse"}
	fig18Buckets = []string{"all", "0-10m", "10-15m", "15-25m"}
)

func accFig18(opt Options, p *Partial, pre string) {
	rounds := opt.samples(12)
	for si, site := range fig18Sites {
		env, _ := channel.ByName(site)
		buckets := make(map[string]*stats.Sketch, len(fig18Buckets))
		for _, b := range fig18Buckets {
			buckets[b] = p.Sketch(pre + "fig18/" + site + "/" + b)
		}
		// Rounds are scored as they complete; nothing but the bucket
		// sketches survives a round's sink call.
		accStreamRounds(opt, p, pre+"fig18/"+ik(si), saltFig18+int64(si), staticTestbed(env), rounds, func(rd roundData) {
			errs, dist, ok := localizeErrors(rd, core.DefaultConfig())
			if !ok {
				return
			}
			for k, e := range errs {
				buckets["all"].Add(e)
				opt.observe(e)
				switch {
				case dist[k] <= 10:
					buckets["0-10m"].Add(e)
				case dist[k] <= 15:
					buckets["10-15m"].Add(e)
				default:
					buckets["15-25m"].Add(e)
				}
			}
		})
	}
}

func renderFig18(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig18",
		Title:  "2D localization error by link distance (5-device testbeds)",
		Paper:  "dock median 0.9 m (95th 3.2 m); boathouse median 1.6 m (95th 4.9 m); error grows with distance",
		Header: []string{"site", "bucket", "median (m)", "95th (m)", "n"},
	}
	for _, site := range fig18Sites {
		for _, b := range fig18Buckets {
			sk := p.Sketch(pre + "fig18/" + site + "/" + b)
			out[site+"/"+b] = sk.Values()
			qs := sk.Quantiles(50, 95)
			table.Rows = append(table.Rows, []string{
				site, b, stats.F(qs[0]), stats.F(qs[1]),
				stats.F(float64(sk.Count())),
			})
		}
	}
	return out, table
}

// Fig18 runs the network testbeds at the dock and boathouse and reports
// the 2D localization CDF broken down by link distance to the leader.
func Fig18(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig18(opt, p, "")
	return renderFig18(opt, p, "")
}

func accFig19a(opt Options, p *Partial, pre string) {
	rounds := opt.samples(12)
	env := channel.Dock()
	mk := func(int, *rand.Rand) sim.Config {
		cfg := testbed(env, 0)
		// Same depth, fully occluded direct path (paper setup).
		cfg.Devices[0].Pos.Z = 1.5
		cfg.Devices[1].Pos.Z = 1.5
		cfg.Faults = []sim.LinkFault{{A: 0, B: 1, DirectAtt: 0.02}}
		return cfg
	}
	noOutlier := core.DefaultConfig()
	noOutlier.MaxOutliers = 0
	noOutlier.StressAccept = math.Inf(1) // never search
	with := p.Sketch(pre + "fig19a/with")
	without := p.Sketch(pre + "fig19a/without")
	accStreamRounds(opt, p, pre+"fig19a", saltFig19a, mk, rounds, func(rd roundData) {
		if errs, _, ok := localizeErrors(rd, core.DefaultConfig()); ok {
			for _, e := range errs {
				with.Add(e)
				opt.observe(e)
			}
		}
		if errs, _, ok := localizeErrors(rd, noOutlier); ok {
			for _, e := range errs {
				without.Add(e)
			}
		}
	})
}

func renderFig19a(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "fig19a",
		Title:  "occluded leader↔user-1 link: with vs without outlier detection",
		Paper:  "with detection median 1.4 m / 95th 3.4 m; without, the 90–100th percentile tail explodes",
		Header: []string{"variant", "median (m)", "95th (m)", "99th (m)"},
	}
	out := make(map[string][]float64)
	for _, k := range []string{"with", "without"} {
		sk := p.Sketch(pre + "fig19a/" + k)
		out[k] = sk.Values()
		qs := sk.Quantiles(50, 95, 99)
		table.Rows = append(table.Rows, []string{
			k + " outlier detection", stats.F(qs[0]), stats.F(qs[1]), stats.F(qs[2]),
		})
	}
	return out, table
}

// Fig19a evaluates occluded-link outlier handling: the leader↔user-1 link
// is blocked by a solid sheet (severe multipath → distance outlier); with
// and without Algorithm 1.
func Fig19a(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig19a(opt, p, "")
	return renderFig19a(opt, p, "")
}

var fig19bVariants = []string{"full", "link-drop", "node-drop"}

func accFig19b(opt Options, p *Partial, pre string) {
	rounds := opt.samples(12)
	env := channel.Dock()
	sks := make(map[string]*stats.Sketch, len(fig19bVariants))
	for _, k := range fig19bVariants {
		sks[k] = p.Sketch(pre + "fig19b/" + k)
	}
	accStreamRounds(opt, p, pre+"fig19b", saltFig19b, staticTestbed(env), rounds, func(rd roundData) {
		// Post-processing randomness (which link/node to drop) runs on a
		// stream derived from the round's global trial index so it is
		// stable under any worker count — and any shard count.
		rng := engine.Rand(opt.seed()^0x19b, rd.trial)
		if errs, _, ok := localizeErrors(rd, core.DefaultConfig()); ok {
			for _, e := range errs {
				sks["full"].Add(e)
				opt.observe(e)
			}
		}
		// Random link removed (never the leader↔user-1 link, which the
		// pipeline requires), provided the remainder stays realizable.
		n := len(rd.round.D)
		w2 := cloneMatrix(rd.round.W)
		for attempt := 0; attempt < 50; attempt++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b || (a == 0 && b == 1) || (a == 1 && b == 0) || w2[a][b] == 0 {
				continue
			}
			w2[a][b], w2[b][a] = 0, 0
			if graph.FromWeights(w2).UniquelyRealizable() {
				break
			}
			w2[a][b], w2[b][a] = 1, 1
		}
		if errs, ok := relocalize(rd, rd.round.D, w2); ok {
			for _, e := range errs {
				sks["link-drop"].Add(e)
			}
		}
		// Random node removed (not leader, not user 1).
		drop := 2 + rng.Intn(n-2)
		if errs, ok := relocalizeWithoutNode(rd, drop); ok {
			for _, e := range errs {
				sks["node-drop"].Add(e)
			}
		}
	})
}

func renderFig19b(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "fig19b",
		Title:  "full network vs random link drop vs random node drop (dock)",
		Paper:  "medians similar (1.0 vs 0.9 m); link drop inflates the 95th (6.2 vs 3.2 m); node drop does not hurt",
		Header: []string{"variant", "median (m)", "95th (m)"},
	}
	out := make(map[string][]float64)
	for _, k := range fig19bVariants {
		sk := p.Sketch(pre + "fig19b/" + k)
		out[k] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{k, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig19b post-processes clean dock rounds: full network vs one random
// link removed vs one random node removed (the paper's methodology —
// "use the data collected from the dock location").
func Fig19b(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig19b(opt, p, "")
	return renderFig19b(opt, p, "")
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

// relocalize reruns the pipeline on modified distance/weight matrices.
func relocalize(rd roundData, d, w [][]float64) ([]float64, bool) {
	in := core.Input{
		D: d, W: w, Depths: rd.round.Depths, MicSigns: rd.round.MicSigns,
		PointingBearing: rd.bearing,
	}
	res, err := core.Localize(context.Background(), in, core.DefaultConfig())
	if err != nil {
		return nil, false
	}
	truth := rd.nw.TruePositions(0.70)
	var errs []float64
	for i := 1; i < len(res.Planar); i++ {
		want := truth[i].Sub(truth[0]).XY()
		errs = append(errs, res.Planar[i].Dist(want))
	}
	return errs, true
}

// relocalizeWithoutNode removes one node (≥2) and relocalizes the rest.
func relocalizeWithoutNode(rd roundData, drop int) ([]float64, bool) {
	n := len(rd.round.D)
	keep := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != drop {
			keep = append(keep, i)
		}
	}
	m := len(keep)
	d := make([][]float64, m)
	w := make([][]float64, m)
	depths := make([]float64, m)
	signs := make([]int, m)
	for a, ia := range keep {
		d[a] = make([]float64, m)
		w[a] = make([]float64, m)
		depths[a] = rd.round.Depths[ia]
		signs[a] = rd.round.MicSigns[ia]
		for b, ib := range keep {
			d[a][b] = rd.round.D[ia][ib]
			w[a][b] = rd.round.W[ia][ib]
		}
	}
	res, err := core.Localize(context.Background(), core.Input{
		D: d, W: w, Depths: depths, MicSigns: signs, PointingBearing: rd.bearing,
	}, core.DefaultConfig())
	if err != nil {
		return nil, false
	}
	truth := rd.nw.TruePositions(0.70)
	var errs []float64
	for a := 1; a < m; a++ {
		ia := keep[a]
		want := truth[ia].Sub(truth[0]).XY()
		errs = append(errs, res.Planar[a].Dist(want))
	}
	return errs, true
}

var fourDevVariants = []string{"5-device", "4-device"}

func accFourDevices(opt Options, p *Partial, pre string) {
	rounds := opt.samples(10)
	env := channel.Dock()
	sks := make(map[string]*stats.Sketch, len(fourDevVariants))
	for _, k := range fourDevVariants {
		sks[k] = p.Sketch(pre + "fig19b-4dev/" + k)
	}
	accStreamRounds(opt, p, pre+"fig19b-4dev", saltFourDevices, staticTestbed(env), rounds, func(rd roundData) {
		rng := engine.Rand(opt.seed()^0x4de, rd.trial)
		if errs, _, ok := localizeErrors(rd, core.DefaultConfig()); ok {
			for _, e := range errs {
				sks["5-device"].Add(e)
				opt.observe(e)
			}
		}
		drop := 2 + rng.Intn(len(rd.round.D)-2)
		if errs, ok := relocalizeWithoutNode(rd, drop); ok {
			for _, e := range errs {
				sks["4-device"].Add(e)
			}
		}
	})
}

func renderFourDevices(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	table := &stats.Table{
		ID:     "fig19b-4dev",
		Title:  "5-device vs 4-device networks (dock)",
		Paper:  "similar CDFs: medians 0.9 vs 0.8 m, both 95th ≈3.2 m",
		Header: []string{"network", "median (m)", "95th (m)"},
	}
	out := make(map[string][]float64)
	for _, k := range fourDevVariants {
		sk := p.Sketch(pre + "fig19b-4dev/" + k)
		out[k] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{k, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// FourDevices compares 4- vs 5-device networks by removing one non-leader,
// non-pointed node from dock rounds (§3.2 "4-device networks").
func FourDevices(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFourDevices(opt, p, "")
	return renderFourDevices(opt, p, "")
}

func accFig20(opt Options, p *Partial, pre string) {
	rounds := opt.samples(8)
	env := channel.Dock()
	for _, mover := range []int{1, 2} {
		mover := mover
		mk := func(_ int, rng *rand.Rand) sim.Config {
			cfg := testbed(env, 0)
			speed := 0.15 + 0.35*rng.Float64() // 15–50 cm/s
			start := cfg.Devices[mover].Pos
			cfg.Devices[mover].Traj = sim.Oscillate(start, geom.Vec3{X: 1, Y: 0.4}, 1.5, speed)
			return cfg
		}
		sks := make(map[int]*stats.Sketch, 2)
		for _, user := range []int{1, 2} {
			sks[user] = p.Sketch(pre + "fig20/" + keyFor(mover, user))
		}
		accStreamRounds(opt, p, pre+"fig20/"+ik(mover), saltFig20+int64(mover), mk, rounds, func(rd roundData) {
			loc, err := rd.nw.LocalizeRound(context.Background(), rd.round, rd.bearing, core.DefaultConfig())
			if err != nil {
				return
			}
			for _, user := range []int{1, 2} {
				sks[user].Add(loc.Err2D[user])
				opt.observe(loc.Err2D[user])
			}
		})
	}
}

func renderFig20(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig20",
		Title:  "2D localization with one moving device (dock)",
		Paper:  "moving user 1: 0.2→0.3 m; moving user 2: 0.4→0.8 m — modest degradation",
		Header: []string{"moving", "user", "median (m)", "95th (m)"},
	}
	for _, mover := range []int{1, 2} {
		for _, user := range []int{1, 2} {
			key := keyFor(mover, user)
			sk := p.Sketch(pre + "fig20/" + key)
			out[key] = sk.Values()
			qs := sk.Quantiles(50, 95)
			table.Rows = append(table.Rows, []string{
				"user " + stats.F(float64(mover)), "user " + stats.F(float64(user)),
				stats.F(qs[0]), stats.F(qs[1]),
			})
		}
	}
	return out, table
}

// Fig20 measures 2D localization while one device oscillates (user 1 or
// user 2 at 15–50 cm/s), reporting each user's error in both settings.
func Fig20(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig20(opt, p, "")
	return renderFig20(opt, p, "")
}

func keyFor(mover, user int) string {
	return "mover" + string(rune('0'+mover)) + "/user" + string(rune('0'+user))
}

func accRTT(opt Options, p *Partial, pre string) {
	measuredRounds := opt.samples(3)
	env := channel.Dock()
	for n := 3; n <= 5; n++ { // full-stack effort bounded; schedule is exact anyway
		n := n
		key := pre + "rtt/" + ik(n)
		sk := p.Sketch(key)
		stage(opt, p, key, saltRTT+int64(n), measuredRounds, func(_ int, rng *rand.Rand) float64 {
			cfg := testbed(env, 0)
			cfg.Rng = rng
			cfg.Devices = cfg.Devices[:n]
			nw, err := sim.NewNetwork(cfg)
			if err != nil {
				return math.NaN()
			}
			round, err := nw.RunRound(context.Background())
			if err != nil {
				return math.NaN()
			}
			return round.Latency
		}, func(_ int, v float64) {
			if !math.IsNaN(v) {
				sk.Add(v)
				opt.observe(v)
			}
		})
	}
}

func renderRTT(_ Options, p *Partial, pre string) (map[int]float64, *stats.Table) {
	out := make(map[int]float64)
	table := &stats.Table{
		ID:     "rtt",
		Title:  "localization protocol round time vs group size",
		Paper:  "measured means 1.2/1.6/1.9/2.2/2.5 s for N=3..7",
		Header: []string{"N", "analytic (s)", "measured (s)"},
	}
	for n := 3; n <= 7; n++ {
		analytic := protocol.DefaultParams(n).RoundTime(true)
		measured := math.NaN()
		if n <= 5 {
			measured = p.Sketch(pre + "rtt/" + ik(n)).Mean()
		}
		out[n] = analytic
		table.Rows = append(table.Rows, []string{
			stats.F(float64(n)), stats.F(analytic), stats.F(measured),
		})
	}
	return out, table
}

// RTT reports the protocol round time per group size: the analytic §2.3
// schedule plus measured full-stack rounds.
func RTT(opt Options) (map[int]float64, *stats.Table) {
	p := NewPartial()
	accRTT(opt, p, "")
	return renderRTT(opt, p, "")
}

func accFlipping(opt Options, p *Partial, pre string) {
	rounds := opt.samples(15)
	env := channel.Dock()
	key := pre + "flipping"
	accStreamRounds(opt, p, key, saltFlipping, staticTestbed(env), rounds, func(rd roundData) {
		truth := rd.nw.TruePositions(0.70)
		for i := 2; i < len(truth); i++ {
			sign := rd.round.MicSigns[i]
			if sign == 0 {
				continue
			}
			cross := truth[i].Sub(truth[0]).XY().Cross(truth[1].Sub(truth[0]).XY())
			want := 0
			switch {
			case cross > 0:
				want = 1
			case cross < 0:
				want = -1
			}
			p.AddCounter(key+"/singleTotal", 1)
			if sign == want {
				p.AddCounter(key+"/singleOK", 1)
			}
		}
		// Majority vote across all voters.
		vote := 0
		for i := 2; i < len(truth); i++ {
			sign := rd.round.MicSigns[i]
			if sign == 0 {
				continue
			}
			cross := truth[i].Sub(truth[0]).XY().Cross(truth[1].Sub(truth[0]).XY())
			switch {
			case cross > 0:
				vote += sign
			case cross < 0:
				vote -= sign
			}
		}
		p.AddCounter(key+"/tripleTotal", 1)
		if vote > 0 {
			p.AddCounter(key+"/tripleOK", 1)
		}
	})
}

func renderFlipping(_ Options, p *Partial, pre string) (single, triple float64, table *stats.Table) {
	key := pre + "flipping"
	singleOK, singleTotal := int(p.Counter(key+"/singleOK")), int(p.Counter(key+"/singleTotal"))
	tripleOK, tripleTotal := int(p.Counter(key+"/tripleOK")), int(p.Counter(key+"/tripleTotal"))
	single = ratio(singleOK, singleTotal)
	triple = ratio(tripleOK, tripleTotal)
	table = &stats.Table{
		ID:     "flipping",
		Title:  "flipping disambiguation accuracy (dock rounds)",
		Paper:  "90.1% using one device's signal; 100% using all three",
		Header: []string{"voters", "accuracy", "n"},
		Rows: [][]string{
			{"single", stats.F3(single), stats.F(float64(singleTotal))},
			{"all (majority)", stats.F3(triple), stats.F(float64(tripleTotal))},
		},
	}
	return single, triple, table
}

// Flipping measures disambiguation accuracy using 1 voter vs all 3 voters
// across dock rounds (§3.2: 90.1% with one device's signal, 100% with
// three).
func Flipping(opt Options) (single, triple float64, table *stats.Table) {
	p := NewPartial()
	accFlipping(opt, p, "")
	return renderFlipping(opt, p, "")
}

func ratio(a, b int) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}

// headlineOpts builds the two sub-Options Headline runs its underlying
// experiments with. Shard and Checkpoint pass through so a sharded or
// resumed headline run scopes and snapshots its sub-experiments too.
func headlineOpts(opt Options) (o11, o18 Options) {
	o11 = Options{Seed: opt.Seed, Samples: opt.samples(12), Workers: opt.Workers, Progress: opt.Progress, Shard: opt.Shard, Checkpoint: opt.Checkpoint}
	o18 = Options{Seed: opt.Seed + 1, Samples: opt.samples(6), Workers: opt.Workers, Progress: opt.Progress, Shard: opt.Shard, Checkpoint: opt.Checkpoint}
	return o11, o18
}

func accHeadline(opt Options, p *Partial, pre string) {
	o11, o18 := headlineOpts(opt)
	accFig11a(o11, p, pre+"h11/")
	accFig18(o18, p, pre+"h18/")
}

func renderHeadline(opt Options, p *Partial, pre string) *stats.Table {
	o11, o18 := headlineOpts(opt)
	r1d, _ := renderFig11a(o11, p, pre+"h11/")
	net, _ := renderFig18(o18, p, pre+"h18/")
	table := &stats.Table{
		ID:     "headline",
		Title:  "headline results vs paper (§1 key findings)",
		Paper:  "1D medians 0.48/0.80/0.86 m @10/20/35 m; 2D medians 0.9/1.6 m dock/boathouse; latency 1.56/1.88 s for 4/5 devices",
		Header: []string{"metric", "paper", "measured"},
	}
	table.Rows = append(table.Rows,
		[]string{"1D median @10 m", "0.48 m", stats.F(stats.Median(r1d[10])) + " m"},
		[]string{"1D median @20 m", "0.80 m", stats.F(stats.Median(r1d[20])) + " m"},
		[]string{"1D median @35 m", "0.86 m", stats.F(stats.Median(r1d[35])) + " m"},
		[]string{"2D median dock", "0.9 m", stats.F(stats.Median(net["dock/all"])) + " m"},
		[]string{"2D median boathouse", "1.6 m", stats.F(stats.Median(net["boathouse/all"])) + " m"},
		[]string{"protocol latency N=4", "1.56 s", stats.F(protocol.DefaultParams(4).RoundTime(true)) + " s"},
		[]string{"protocol latency N=5", "1.88 s", stats.F(protocol.DefaultParams(5).RoundTime(true)) + " s"},
	)
	return table
}

// Headline aggregates the paper's top-line numbers from lighter runs of
// the underlying experiments.
func Headline(opt Options) *stats.Table {
	p := NewPartial()
	accHeadline(opt, p, "")
	return renderHeadline(opt, p, "")
}
