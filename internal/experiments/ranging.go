package experiments

import (
	"context"
	"math"
	"math/rand"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/engine"
	"uwpos/internal/geom"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// rangeOnce builds the network and runs one exchange, folding setup errors
// into an undetected result.
func rangeOnce(cfg sim.Config, method sim.RangingMethod) sim.RangeTrialResult {
	nw, err := sim.NewNetwork(cfg)
	if err != nil {
		return sim.RangeTrialResult{}
	}
	res, err := nw.RangeOnce(context.Background(), method)
	if err != nil {
		return sim.RangeTrialResult{}
	}
	return res
}

// sketchErrors streams detected exchange errors from the engine into a
// fixed-memory quantile sketch: results feed the aggregate as trials
// complete (in trial order, so aggregation is bit-identical at any worker
// count) and memory stays bounded no matter the trial count. At default
// sample counts the sketch is exact, so tables match the old
// collect-then-Percentile path byte for byte.
type trialErr struct {
	err float64
	ok  bool
}

func sketchErrors(opt Options, salt int64, n int, fn func(trial int, rng *rand.Rand) trialErr) (sk *stats.Sketch, missed int) {
	sk = stats.NewSketch()
	engine.Each(opt.engine(salt), n, fn, func(_ int, t trialErr) {
		if t.ok {
			sk.Add(t.err)
			opt.observe(t.err)
		} else {
			missed++
		}
	})
	return sk, missed
}

// rangeTrials fans n two-way exchanges of the given method across the
// trial engine, each in a fresh two-device scenario driven by its own
// per-trial RNG, streaming absolute errors into a sketch (undetected
// exchanges are skipped and counted).
func rangeTrials(opt Options, salt int64, env *channel.Environment, method sim.RangingMethod, sepM, depthA, depthB float64, n int) (*stats.Sketch, int) {
	return rangeTrialsOccluded(opt, salt, env, method, sepM, depthA, depthB, n, 0)
}

// rangeTrialsOccluded additionally attenuates the direct ray (directAtt >
// 0 models a blocked line of sight, §3.2's occlusion study).
func rangeTrialsOccluded(opt Options, salt int64, env *channel.Environment, method sim.RangingMethod, sepM, depthA, depthB float64, n int, directAtt float64) (*stats.Sketch, int) {
	return sketchErrors(opt, salt, n, func(_ int, rng *rand.Rand) trialErr {
		// Per-trial rig sway: the paper's pole/rope mounts drift by
		// decimetres between submersions.
		sep := sepM + 0.15*rng.NormFloat64()
		dA := clamp(depthA+0.15*rng.NormFloat64(), 0.4, env.BottomDepthM-0.3)
		dB := clamp(depthB+0.15*rng.NormFloat64(), 0.4, env.BottomDepthM-0.3)
		cfg := sim.TwoDeviceConfig(env, sep, dA, dB, 0)
		cfg.Rng = rng
		if directAtt > 0 {
			cfg.Faults = []sim.LinkFault{{A: 0, B: 1, DirectAtt: directAtt}}
		}
		res := rangeOnce(cfg, method)
		if !res.Detected {
			return trialErr{}
		}
		return trialErr{err: res.AbsError(), ok: true}
	})
}

// Fig11a measures ranging-error CDFs vs device separation (10/20/35/45 m,
// dock, 2.5 m depth), reporting medians and 95th percentiles.
func Fig11a(opt Options) (map[float64][]float64, *stats.Table) {
	trials := opt.samples(30)
	out := make(map[float64][]float64)
	table := &stats.Table{
		ID:     "fig11a",
		Title:  "1D ranging error CDF vs separation (dock)",
		Paper:  "medians 0.48/0.80/0.86 m at 10/20/35 m; error grows with range",
		Header: []string{"sep (m)", "median (m)", "95th (m)", "missed"},
	}
	for i, sep := range []float64{10, 20, 35, 45} {
		sk, missed := rangeTrials(opt, saltFig11a+int64(i), channel.Dock(), sim.MethodDualMic, sep, 2.5, 2.5, trials)
		out[sep] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			stats.F(sep), stats.F(qs[0]), stats.F(qs[1]),
			stats.F(float64(missed)),
		})
	}
	return out, table
}

// Fig11b compares 95th-percentile error using both mics vs each single
// mic, per separation.
func Fig11b(opt Options) (map[string][]float64, *stats.Table) {
	trials := opt.samples(24)
	methods := []sim.RangingMethod{sim.MethodDualMic, sim.MethodBottomMicOnly, sim.MethodTopMicOnly}
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig11b",
		Title:  "95th-percentile ranging error: both vs single microphones",
		Paper:  "dual-mic lowest at every distance (up to 4.5 m better at 45 m); single mics erratic",
		Header: []string{"sep (m)", "both (m)", "bottom only (m)", "top only (m)"},
	}
	for i, sep := range []float64{10, 20, 35, 45} {
		row := []string{stats.F(sep)}
		for _, m := range methods {
			sk, _ := rangeTrials(opt, saltFig11b+int64(i)*10+int64(m), channel.Dock(), m, sep, 2.5, 2.5, trials)
			out[m.String()] = append(out[m.String()], sk.Values()...)
			row = append(row, stats.F(sk.Quantile(95)))
		}
		table.Rows = append(table.Rows, row)
	}
	return out, table
}

// DetectionCounts aggregates a detector study.
type DetectionCounts struct {
	ThresholdDB float64
	FPRatio     float64
	FNRatio     float64
}

// Fig12a compares signal-detection robustness: our two-stage detector vs
// the FMCW window-power detector across thresholds, under boathouse
// impulsive noise, at a ~20 m SNR operating point.
func Fig12a(opt Options) (ours DetectionCounts, fmcw []DetectionCounts, table *stats.Table) {
	trials := opt.samples(60)
	p := sig.DefaultParams()
	env := channel.Boathouse()
	const fs = 44100.0
	const dist = 20.0
	thresholds := []float64{3, 6, 9, 12, 15, 18, 21, 24}

	pre := p.Preamble()
	chirp := sig.LinearChirp(p.BandLowHz, p.BandHighHz, p.PreambleLen(), fs)
	tx := geom.Vec3{X: 0, Y: 0, Z: 1}
	rx := geom.Vec3{X: dist, Y: 0, Z: 1}

	makeStream := func(rng *rand.Rand, wave []float64, present bool) []float64 {
		stream := make([]float64, 60000)
		env.AddNoise(stream, fs, rng)
		if present {
			taps := env.WithScatter(env.ImpulseResponse(tx, rx, channel.ImpulseOptions{}), rng)
			channel.RenderFast(stream, wave, taps, 15000, fs)
		}
		return stream
	}

	// Detectors are stateless after construction and shared across the
	// worker pool. Each trial draws its own streams; all FMCW thresholds
	// score the same pair of streams (a paired comparison, which is what
	// the threshold sweep wants anyway).
	det := ranging.NewDetector(p, ranging.DetectorConfig{})
	type trialCounts struct {
		oursFP, oursFN bool
		fp, fn         []bool
	}
	// Counter accumulation is commutative, so results stream through the
	// unordered sink in completion order — no reorder window needed and
	// the totals are still identical for every worker count.
	var oursFP, oursFN int
	fpN := make([]int, len(thresholds))
	fnN := make([]int, len(thresholds))
	_ = engine.Stream(context.Background(), opt.engine(saltFig12a), trials, func(_ int, rng *rand.Rand) trialCounts {
		tc := trialCounts{fp: make([]bool, len(thresholds)), fn: make([]bool, len(thresholds))}
		tc.oursFP = len(det.Detect(makeStream(rng, pre, false))) > 0
		tc.oursFN = len(det.Detect(makeStream(rng, pre, true))) == 0
		absent := makeStream(rng, chirp, false)
		present := makeStream(rng, chirp, true)
		winLen := int(0.01 * fs)
		for i, th := range thresholds {
			wd := ranging.WindowPowerDetector{WindowLen: winLen, ThresholdDB: th}
			tc.fp[i] = len(wd.Detect(absent)) > 0
			tc.fn[i] = len(wd.Detect(present)) == 0
		}
		return tc
	}, func(_ int, tc trialCounts) {
		if tc.oursFP {
			oursFP++
		}
		if tc.oursFN {
			oursFN++
		}
		for i := range thresholds {
			if tc.fp[i] {
				fpN[i]++
			}
			if tc.fn[i] {
				fnN[i]++
			}
		}
	})
	ours = DetectionCounts{
		FPRatio: float64(oursFP) / float64(trials),
		FNRatio: float64(oursFN) / float64(trials),
	}

	table = &stats.Table{
		ID:     "fig12a",
		Title:  "signal-detection FP/FN: ours vs FMCW window-power detector",
		Paper:  "ours ≈10⁻²–10⁻³ both ways; FMCW trades FP against FN across TH_SD with no good point",
		Header: []string{"detector", "TH_SD (dB)", "FP ratio", "FN ratio"},
	}
	table.Rows = append(table.Rows, []string{"ours (PN autocorr 0.35)", "-", stats.F3(ours.FPRatio), stats.F3(ours.FNRatio)})

	for i, th := range thresholds {
		c := DetectionCounts{
			ThresholdDB: th,
			FPRatio:     float64(fpN[i]) / float64(trials),
			FNRatio:     float64(fnN[i]) / float64(trials),
		}
		fmcw = append(fmcw, c)
		table.Rows = append(table.Rows, []string{"fmcw window-power", stats.F(th), stats.F3(c.FPRatio), stats.F3(c.FNRatio)})
	}
	return ours, fmcw, table
}

// Fig12b compares 1D ranging error across methods (ours vs BeepBeep vs
// CAT) at 10/20/28 m in the boathouse, mean ± std.
func Fig12b(opt Options) (map[string]map[float64][]float64, *stats.Table) {
	trials := opt.samples(16)
	methods := []sim.RangingMethod{sim.MethodDualMic, sim.MethodBeepBeep, sim.MethodCAT}
	out := make(map[string]map[float64][]float64)
	table := &stats.Table{
		ID:     "fig12b",
		Title:  "1D ranging error vs distance: ours vs BeepBeep vs CAT (boathouse)",
		Paper:  "ours lowest at all distances; baselines grow faster with range",
		Header: []string{"dist (m)", "ours mean±std", "beepbeep mean±std", "cat mean±std"},
	}
	for di, dist := range []float64{10, 20, 28} {
		row := []string{stats.F(dist)}
		for _, m := range methods {
			sk, missed := rangeTrials(opt, saltFig12b+int64(di)*10+int64(m), channel.Boathouse(), m, dist, 1.0, 1.0, trials)
			if out[m.String()] == nil {
				out[m.String()] = make(map[float64][]float64)
			}
			out[m.String()][dist] = sk.Values()
			cell := stats.F(sk.Mean()) + "±" + stats.F(sk.Std())
			if missed > 0 {
				cell += " (miss " + stats.F(float64(missed)) + ")"
			}
			row = append(row, cell)
		}
		table.Rows = append(table.Rows, row)
	}
	// Partially occluded direct path at 20 m: the regime where plain
	// correlation locks onto the strongest echo while the channel-domain
	// earliest-consistent-peak search keeps finding the true arrival —
	// the mechanism behind the paper's gap.
	row := []string{"20 (occl)"}
	for _, m := range methods {
		sk, missed := rangeTrialsOccluded(opt, saltFig12b+500+int64(m), channel.Boathouse(), m, 20, 1.0, 1.0, trials, 0.25)
		key := m.String() + "/occluded"
		if out[key] == nil {
			out[key] = make(map[float64][]float64)
		}
		out[key][20] = sk.Values()
		cell := stats.F(sk.Mean()) + "±" + stats.F(sk.Std())
		if missed > 0 {
			cell += " (miss " + stats.F(float64(missed)) + ")"
		}
		row = append(row, cell)
	}
	table.Rows = append(table.Rows, row)
	return out, table
}

// Fig13a measures ranging error vs device depth (2/5/8 m in the 9 m dock,
// 18 m separation): boundary proximity strengthens overlapping multipath.
func Fig13a(opt Options) (map[float64][]float64, *stats.Table) {
	trials := opt.samples(24)
	out := make(map[float64][]float64)
	table := &stats.Table{
		ID:     "fig13a",
		Title:  "ranging error vs device depth (dock, 18 m separation)",
		Paper:  "mid-column depth (5 m) best: median 0.28 m; worse near surface (2 m) and bottom (8 m)",
		Header: []string{"depth (m)", "median (m)", "95th (m)"},
	}
	for i, d := range []float64{2, 5, 8} {
		sk, _ := rangeTrials(opt, saltFig13a+int64(i), channel.Dock(), sim.MethodDualMic, 18, d, d, trials)
		out[d] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{stats.F(d), stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig14a measures the effect of transmitter orientation at 20 m (dock):
// the four paper configurations of azimuth/polar.
func Fig14a(opt Options) (map[string][]float64, *stats.Table) {
	trials := opt.samples(20)
	cases := []struct {
		name    string
		azimuth float64 // deg
		polar   float64 // deg
	}{
		{"φ=0°,θ=180° (facing)", 0, 0},
		{"φ=90°,θ=180°", 90, 0},
		{"φ=180°,θ=180°", 180, 0},
		{"φ=0°,θ=0° (up)", 0, 90},
	}
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig14a",
		Title:  "ranging error vs transmitter orientation (20 m, dock)",
		Paper:  "medians 0.54–1.25 m; facing best, upward worst (surface multipath)",
		Header: []string{"orientation", "median (m)", "95th (m)"},
	}
	for ci, c := range cases {
		sk, _ := sketchErrors(opt, saltFig14a+int64(ci), trials, func(_ int, rng *rand.Rand) trialErr {
			cfg := sim.TwoDeviceConfig(channel.Dock(), 20, 1.2, 2.5, 0)
			cfg.Rng = rng
			cfg.Devices[1].Orient = device.Orientation{
				AzimuthRad: geom.Deg2Rad(c.azimuth) + math.Pi, // 0 = facing the peer
				PolarRad:   geom.Deg2Rad(c.polar),
			}
			if c.polar > 45 {
				// Facing up also means held near the surface.
				cfg.Devices[1].Pos.Z = 0.7
			}
			r := rangeOnce(cfg, sim.MethodDualMic)
			return trialErr{err: r.AbsError(), ok: r.Detected}
		})
		out[c.name] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{c.name, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig14b measures ranging across phone-model pairs (Pixel/Samsung/OnePlus)
// at 20 m.
func Fig14b(opt Options) (map[string][]float64, *stats.Table) {
	trials := opt.samples(20)
	models := map[string]func() *device.Model{
		"samsung": device.GalaxyS9, "pixel": device.Pixel, "oneplus": device.OnePlus,
	}
	pairs := [][2]string{{"pixel", "samsung"}, {"pixel", "oneplus"}, {"samsung", "oneplus"}}
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig14b",
		Title:  "ranging error across smartphone model pairs (20 m, dock)",
		Paper:  "all pairs comparable (medians well under 1 m); model mix is not a blocker",
		Header: []string{"pair", "median (m)", "95th (m)"},
	}
	for pi, pair := range pairs {
		sk, _ := sketchErrors(opt, saltFig14b+int64(pi), trials, func(_ int, rng *rand.Rand) trialErr {
			cfg := sim.TwoDeviceConfig(channel.Dock(), 20, 2.5, 2.5, 0)
			cfg.Rng = rng
			cfg.Devices[0].Model = models[pair[0]]()
			cfg.Devices[1].Model = models[pair[1]]()
			r := rangeOnce(cfg, sim.MethodDualMic)
			return trialErr{err: r.AbsError(), ok: r.Detected}
		})
		name := pair[0] + "+" + pair[1]
		out[name] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{name, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig15Point is one ping of the moving-device experiment.
type Fig15Point struct {
	TimeSec    float64
	TrueM      float64
	EstimatedM float64
}

// Fig15 tracks a moving device with 1 Hz pings (dock): two speeds as in
// the paper (32 and 56 cm/s back-and-forth sweeps).
func Fig15(opt Options) (map[float64][]Fig15Point, *stats.Table) {
	pings := opt.samples(24)
	out := make(map[float64][]Fig15Point)
	table := &stats.Table{
		ID:     "fig15",
		Title:  "1D ranging of a continuously moving device (1 Hz pings, dock)",
		Paper:  "estimates track the 5–18 m trajectory; median 0.51 m, 95th 1.17 m",
		Header: []string{"speed (cm/s)", "median err (m)", "95th err (m)", "pings"},
	}
	for si, speed := range []float64{0.32, 0.56} {
		type ping struct {
			pt Fig15Point
			ok bool
		}
		var pts []Fig15Point
		errSk := stats.NewSketch()
		engine.Each(opt.engine(saltFig15+int64(si)), pings, func(k int, rng *rand.Rand) ping {
			tSec := float64(k) // one ping per second
			// Back-and-forth between 6 and 18 m with the given speed.
			span := 12.0
			phase := math.Mod(tSec*speed, 2*span)
			pos := 6 + phase
			if phase > span {
				pos = 6 + 2*span - phase
			}
			cfg := sim.TwoDeviceConfig(channel.Dock(), pos, 2.0, 2.0, 0)
			cfg.Rng = rng
			// The device keeps moving during the exchange itself.
			dir := 1.0
			if phase > span {
				dir = -1
			}
			start := cfg.Devices[1].Pos
			cfg.Devices[1].Traj = sim.Linear(start, geom.Vec3{X: dir * speed})
			r := rangeOnce(cfg, sim.MethodDualMic)
			if !r.Detected {
				return ping{}
			}
			return ping{pt: Fig15Point{TimeSec: tSec, TrueM: r.TrueM, EstimatedM: r.EstimatedM}, ok: true}
		}, func(_ int, p ping) {
			if p.ok {
				pts = append(pts, p.pt)
				e := math.Abs(p.pt.EstimatedM - p.pt.TrueM)
				errSk.Add(e)
				opt.observe(e)
			}
		})
		out[speed] = pts
		qs := errSk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			stats.F(speed * 100), stats.F(qs[0]), stats.F(qs[1]),
			stats.F(float64(len(pts))),
		})
	}
	return out, table
}

// Fig22 estimates per-subcarrier SNR at 10/20/28 m (boathouse), using the
// appendix's 8-symbol probe preamble.
func Fig22(opt Options) (map[float64][]ranging.SNRPoint, *stats.Table) {
	rng := opt.rng()
	p := sig.SNRProbeParams()
	env := channel.Boathouse()
	const fs = 44100.0
	out := make(map[float64][]ranging.SNRPoint)
	table := &stats.Table{
		ID:     "fig22",
		Title:  "per-subcarrier SNR vs distance (boathouse)",
		Paper:  "SNR ≈30–40 dB at 10 m falling to ≈10–20 dB at 28 m, roughly flat across 1–5 kHz",
		Header: []string{"dist (m)", "mean SNR (dB)", "min (dB)", "max (dB)"},
	}
	ce := ranging.NewChannelEstimator(p)
	pre := p.Preamble()
	for _, dist := range []float64{10, 20, 28} {
		stream := make([]float64, 40000)
		env.AddNoise(stream, fs, rng)
		taps := env.WithScatter(env.ImpulseResponse(
			geom.Vec3{X: 0, Y: 0, Z: 1}, geom.Vec3{X: dist, Y: 0, Z: 1},
			channel.ImpulseOptions{}), rng)
		channel.RenderFast(stream, pre, taps, 10000, fs)
		det := ranging.NewDetector(p, ranging.DetectorConfig{})
		dets := det.Detect(stream)
		if len(dets) == 0 {
			table.Rows = append(table.Rows, []string{stats.F(dist), "miss", "-", "-"})
			continue
		}
		pts, err := ce.SubcarrierSNR(stream, dets[0].CoarseIndex)
		if err != nil {
			continue
		}
		out[dist] = pts
		var vals []float64
		for _, pt := range pts {
			if !math.IsInf(pt.SNRDB, 0) {
				vals = append(vals, pt.SNRDB)
			}
		}
		minV, maxV := vals[0], vals[0]
		for _, v := range vals {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		table.Rows = append(table.Rows, []string{stats.F(dist), stats.F(stats.Mean(vals)), stats.F(minV), stats.F(maxV)})
	}
	return out, table
}
