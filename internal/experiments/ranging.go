package experiments

import (
	"context"
	"math"
	"math/rand"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/geom"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
	"uwpos/internal/sim"
	"uwpos/internal/stats"
)

// rangeOnce builds the network and runs one exchange, folding setup errors
// into an undetected result.
func rangeOnce(cfg sim.Config, method sim.RangingMethod) sim.RangeTrialResult {
	nw, err := sim.NewNetwork(cfg)
	if err != nil {
		return sim.RangeTrialResult{}
	}
	res, err := nw.RangeOnce(context.Background(), method)
	if err != nil {
		return sim.RangeTrialResult{}
	}
	return res
}

// accSketchErrors streams detected exchange errors from the engine into a
// named fixed-memory quantile sketch on p (undetected exchanges bump the
// key's "#miss" counter): results feed the aggregate as trials complete,
// in trial order, so aggregation is bit-identical at any worker count —
// and, through the shard stage machinery, at any shard count. At default
// sample counts the sketch is exact, so tables match the old
// collect-then-Percentile path byte for byte.
type trialErr struct {
	err float64
	ok  bool
}

func accSketchErrors(opt Options, p *Partial, key string, salt int64, n int, fn func(trial int, rng *rand.Rand) trialErr) {
	sk := p.Sketch(key)
	stage(opt, p, key, salt, n, fn, func(_ int, t trialErr) {
		if t.ok {
			sk.Add(t.err)
			opt.observe(t.err)
		} else {
			p.AddCounter(key+"#miss", 1)
		}
	})
}

// missedOf reads back the miss counter of one accSketchErrors stage.
func missedOf(p *Partial, key string) int { return int(p.Counter(key + "#miss")) }

// accRangeTrials fans n two-way exchanges of the given method across the
// trial engine, each in a fresh two-device scenario driven by its own
// per-trial RNG, streaming absolute errors into p's sketch at key
// (undetected exchanges are skipped and counted).
func accRangeTrials(opt Options, p *Partial, key string, salt int64, env *channel.Environment, method sim.RangingMethod, sepM, depthA, depthB float64, n int) {
	accRangeTrialsOccluded(opt, p, key, salt, env, method, sepM, depthA, depthB, n, 0)
}

// accRangeTrialsOccluded additionally attenuates the direct ray
// (directAtt > 0 models a blocked line of sight, §3.2's occlusion study).
func accRangeTrialsOccluded(opt Options, p *Partial, key string, salt int64, env *channel.Environment, method sim.RangingMethod, sepM, depthA, depthB float64, n int, directAtt float64) {
	accSketchErrors(opt, p, key, salt, n, func(_ int, rng *rand.Rand) trialErr {
		// Per-trial rig sway: the paper's pole/rope mounts drift by
		// decimetres between submersions.
		sep := sepM + 0.15*rng.NormFloat64()
		dA := clamp(depthA+0.15*rng.NormFloat64(), 0.4, env.BottomDepthM-0.3)
		dB := clamp(depthB+0.15*rng.NormFloat64(), 0.4, env.BottomDepthM-0.3)
		cfg := sim.TwoDeviceConfig(env, sep, dA, dB, 0)
		cfg.Rng = rng
		if directAtt > 0 {
			cfg.Faults = []sim.LinkFault{{A: 0, B: 1, DirectAtt: directAtt}}
		}
		res := rangeOnce(cfg, method)
		if !res.Detected {
			return trialErr{}
		}
		return trialErr{err: res.AbsError(), ok: true}
	})
}

var fig11aSeps = []float64{10, 20, 35, 45}

func accFig11a(opt Options, p *Partial, pre string) {
	trials := opt.samples(30)
	for i, sep := range fig11aSeps {
		accRangeTrials(opt, p, pre+"fig11a/"+ik(i), saltFig11a+int64(i), channel.Dock(), sim.MethodDualMic, sep, 2.5, 2.5, trials)
	}
}

func renderFig11a(_ Options, p *Partial, pre string) (map[float64][]float64, *stats.Table) {
	out := make(map[float64][]float64)
	table := &stats.Table{
		ID:     "fig11a",
		Title:  "1D ranging error CDF vs separation (dock)",
		Paper:  "medians 0.48/0.80/0.86 m at 10/20/35 m; error grows with range",
		Header: []string{"sep (m)", "median (m)", "95th (m)", "missed"},
	}
	for i, sep := range fig11aSeps {
		key := pre + "fig11a/" + ik(i)
		sk := p.Sketch(key)
		out[sep] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			stats.F(sep), stats.F(qs[0]), stats.F(qs[1]),
			stats.F(float64(missedOf(p, key))),
		})
	}
	return out, table
}

// Fig11a measures ranging-error CDFs vs device separation (10/20/35/45 m,
// dock, 2.5 m depth), reporting medians and 95th percentiles.
func Fig11a(opt Options) (map[float64][]float64, *stats.Table) {
	p := NewPartial()
	accFig11a(opt, p, "")
	return renderFig11a(opt, p, "")
}

var fig11bMethods = []sim.RangingMethod{sim.MethodDualMic, sim.MethodBottomMicOnly, sim.MethodTopMicOnly}

func accFig11b(opt Options, p *Partial, pre string) {
	trials := opt.samples(24)
	for i := range fig11aSeps {
		for mi, m := range fig11bMethods {
			accRangeTrials(opt, p, pre+"fig11b/"+ik(i)+"/"+ik(mi), saltFig11b+int64(i)*10+int64(m), channel.Dock(), m, fig11aSeps[i], 2.5, 2.5, trials)
		}
	}
}

func renderFig11b(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig11b",
		Title:  "95th-percentile ranging error: both vs single microphones",
		Paper:  "dual-mic lowest at every distance (up to 4.5 m better at 45 m); single mics erratic",
		Header: []string{"sep (m)", "both (m)", "bottom only (m)", "top only (m)"},
	}
	for i, sep := range fig11aSeps {
		row := []string{stats.F(sep)}
		for mi, m := range fig11bMethods {
			sk := p.Sketch(pre + "fig11b/" + ik(i) + "/" + ik(mi))
			out[m.String()] = append(out[m.String()], sk.Values()...)
			row = append(row, stats.F(sk.Quantile(95)))
		}
		table.Rows = append(table.Rows, row)
	}
	return out, table
}

// Fig11b compares 95th-percentile error using both mics vs each single
// mic, per separation.
func Fig11b(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig11b(opt, p, "")
	return renderFig11b(opt, p, "")
}

// DetectionCounts aggregates a detector study.
type DetectionCounts struct {
	ThresholdDB float64
	FPRatio     float64
	FNRatio     float64
}

var fig12aThresholds = []float64{3, 6, 9, 12, 15, 18, 21, 24}

func accFig12a(opt Options, p *Partial, pre string) {
	trials := opt.samples(60)
	pr := sig.DefaultParams()
	env := channel.Boathouse()
	const fs = 44100.0
	const dist = 20.0
	thresholds := fig12aThresholds

	pre12 := pr.Preamble()
	chirp := sig.LinearChirp(pr.BandLowHz, pr.BandHighHz, pr.PreambleLen(), fs)
	tx := geom.Vec3{X: 0, Y: 0, Z: 1}
	rx := geom.Vec3{X: dist, Y: 0, Z: 1}

	makeStream := func(rng *rand.Rand, wave []float64, present bool) []float64 {
		stream := make([]float64, 60000)
		env.AddNoise(stream, fs, rng)
		if present {
			taps := env.WithScatter(env.ImpulseResponse(tx, rx, channel.ImpulseOptions{}), rng)
			channel.RenderFast(stream, wave, taps, 15000, fs)
		}
		return stream
	}

	// Detectors are stateless after construction and shared across the
	// worker pool. Each trial draws its own streams; all FMCW thresholds
	// score the same pair of streams (a paired comparison, which is what
	// the threshold sweep wants anyway). Counter accumulation is
	// commutative, so ordered delivery changes no total — it just gives
	// the stage a contiguous checkpointable prefix.
	det := ranging.NewDetector(pr, ranging.DetectorConfig{})
	type trialCounts struct {
		oursFP, oursFN bool
		fp, fn         []bool
	}
	key := pre + "fig12a"
	stage(opt, p, key, saltFig12a, trials, func(_ int, rng *rand.Rand) trialCounts {
		tc := trialCounts{fp: make([]bool, len(thresholds)), fn: make([]bool, len(thresholds))}
		tc.oursFP = len(det.Detect(makeStream(rng, pre12, false))) > 0
		tc.oursFN = len(det.Detect(makeStream(rng, pre12, true))) == 0
		absent := makeStream(rng, chirp, false)
		present := makeStream(rng, chirp, true)
		winLen := int(0.01 * fs)
		for i, th := range thresholds {
			wd := ranging.WindowPowerDetector{WindowLen: winLen, ThresholdDB: th}
			tc.fp[i] = len(wd.Detect(absent)) > 0
			tc.fn[i] = len(wd.Detect(present)) == 0
		}
		return tc
	}, func(_ int, tc trialCounts) {
		if tc.oursFP {
			p.AddCounter(key+"/oursFP", 1)
		}
		if tc.oursFN {
			p.AddCounter(key+"/oursFN", 1)
		}
		for i := range thresholds {
			if tc.fp[i] {
				p.AddCounter(key+"/fp/"+ik(i), 1)
			}
			if tc.fn[i] {
				p.AddCounter(key+"/fn/"+ik(i), 1)
			}
		}
	})
}

func renderFig12a(opt Options, p *Partial, pre string) (ours DetectionCounts, fmcw []DetectionCounts, table *stats.Table) {
	trials := opt.samples(60)
	key := pre + "fig12a"
	ours = DetectionCounts{
		FPRatio: float64(p.Counter(key+"/oursFP")) / float64(trials),
		FNRatio: float64(p.Counter(key+"/oursFN")) / float64(trials),
	}
	table = &stats.Table{
		ID:     "fig12a",
		Title:  "signal-detection FP/FN: ours vs FMCW window-power detector",
		Paper:  "ours ≈10⁻²–10⁻³ both ways; FMCW trades FP against FN across TH_SD with no good point",
		Header: []string{"detector", "TH_SD (dB)", "FP ratio", "FN ratio"},
	}
	table.Rows = append(table.Rows, []string{"ours (PN autocorr 0.35)", "-", stats.F3(ours.FPRatio), stats.F3(ours.FNRatio)})
	for i, th := range fig12aThresholds {
		c := DetectionCounts{
			ThresholdDB: th,
			FPRatio:     float64(p.Counter(key+"/fp/"+ik(i))) / float64(trials),
			FNRatio:     float64(p.Counter(key+"/fn/"+ik(i))) / float64(trials),
		}
		fmcw = append(fmcw, c)
		table.Rows = append(table.Rows, []string{"fmcw window-power", stats.F(th), stats.F3(c.FPRatio), stats.F3(c.FNRatio)})
	}
	return ours, fmcw, table
}

// Fig12a compares signal-detection robustness: our two-stage detector vs
// the FMCW window-power detector across thresholds, under boathouse
// impulsive noise, at a ~20 m SNR operating point.
func Fig12a(opt Options) (ours DetectionCounts, fmcw []DetectionCounts, table *stats.Table) {
	p := NewPartial()
	accFig12a(opt, p, "")
	return renderFig12a(opt, p, "")
}

var (
	fig12bDists   = []float64{10, 20, 28}
	fig12bMethods = []sim.RangingMethod{sim.MethodDualMic, sim.MethodBeepBeep, sim.MethodCAT}
)

func accFig12b(opt Options, p *Partial, pre string) {
	trials := opt.samples(16)
	for di, dist := range fig12bDists {
		for mi, m := range fig12bMethods {
			accRangeTrials(opt, p, pre+"fig12b/"+ik(di)+"/"+ik(mi), saltFig12b+int64(di)*10+int64(m), channel.Boathouse(), m, dist, 1.0, 1.0, trials)
		}
	}
	// Partially occluded direct path at 20 m: the regime where plain
	// correlation locks onto the strongest echo while the channel-domain
	// earliest-consistent-peak search keeps finding the true arrival —
	// the mechanism behind the paper's gap.
	for mi, m := range fig12bMethods {
		accRangeTrialsOccluded(opt, p, pre+"fig12b/occl/"+ik(mi), saltFig12b+500+int64(m), channel.Boathouse(), m, 20, 1.0, 1.0, trials, 0.25)
	}
}

// fig12bCell formats one method's mean±std cell (with miss count).
func fig12bCell(p *Partial, key string) string {
	sk := p.Sketch(key)
	cell := stats.F(sk.Mean()) + "±" + stats.F(sk.Std())
	if missed := missedOf(p, key); missed > 0 {
		cell += " (miss " + stats.F(float64(missed)) + ")"
	}
	return cell
}

func renderFig12b(_ Options, p *Partial, pre string) (map[string]map[float64][]float64, *stats.Table) {
	out := make(map[string]map[float64][]float64)
	table := &stats.Table{
		ID:     "fig12b",
		Title:  "1D ranging error vs distance: ours vs BeepBeep vs CAT (boathouse)",
		Paper:  "ours lowest at all distances; baselines grow faster with range",
		Header: []string{"dist (m)", "ours mean±std", "beepbeep mean±std", "cat mean±std"},
	}
	for di, dist := range fig12bDists {
		row := []string{stats.F(dist)}
		for mi, m := range fig12bMethods {
			key := pre + "fig12b/" + ik(di) + "/" + ik(mi)
			if out[m.String()] == nil {
				out[m.String()] = make(map[float64][]float64)
			}
			out[m.String()][dist] = p.Sketch(key).Values()
			row = append(row, fig12bCell(p, key))
		}
		table.Rows = append(table.Rows, row)
	}
	row := []string{"20 (occl)"}
	for mi, m := range fig12bMethods {
		key := pre + "fig12b/occl/" + ik(mi)
		name := m.String() + "/occluded"
		if out[name] == nil {
			out[name] = make(map[float64][]float64)
		}
		out[name][20] = p.Sketch(key).Values()
		row = append(row, fig12bCell(p, key))
	}
	table.Rows = append(table.Rows, row)
	return out, table
}

// Fig12b compares 1D ranging error across methods (ours vs BeepBeep vs
// CAT) at 10/20/28 m in the boathouse, mean ± std.
func Fig12b(opt Options) (map[string]map[float64][]float64, *stats.Table) {
	p := NewPartial()
	accFig12b(opt, p, "")
	return renderFig12b(opt, p, "")
}

var fig13aDepths = []float64{2, 5, 8}

func accFig13a(opt Options, p *Partial, pre string) {
	trials := opt.samples(24)
	for i, d := range fig13aDepths {
		accRangeTrials(opt, p, pre+"fig13a/"+ik(i), saltFig13a+int64(i), channel.Dock(), sim.MethodDualMic, 18, d, d, trials)
	}
}

func renderFig13a(_ Options, p *Partial, pre string) (map[float64][]float64, *stats.Table) {
	out := make(map[float64][]float64)
	table := &stats.Table{
		ID:     "fig13a",
		Title:  "ranging error vs device depth (dock, 18 m separation)",
		Paper:  "mid-column depth (5 m) best: median 0.28 m; worse near surface (2 m) and bottom (8 m)",
		Header: []string{"depth (m)", "median (m)", "95th (m)"},
	}
	for i, d := range fig13aDepths {
		sk := p.Sketch(pre + "fig13a/" + ik(i))
		out[d] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{stats.F(d), stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig13a measures ranging error vs device depth (2/5/8 m in the 9 m dock,
// 18 m separation): boundary proximity strengthens overlapping multipath.
func Fig13a(opt Options) (map[float64][]float64, *stats.Table) {
	p := NewPartial()
	accFig13a(opt, p, "")
	return renderFig13a(opt, p, "")
}

var fig14aCases = []struct {
	name    string
	azimuth float64 // deg
	polar   float64 // deg
}{
	{"φ=0°,θ=180° (facing)", 0, 0},
	{"φ=90°,θ=180°", 90, 0},
	{"φ=180°,θ=180°", 180, 0},
	{"φ=0°,θ=0° (up)", 0, 90},
}

func accFig14a(opt Options, p *Partial, pre string) {
	trials := opt.samples(20)
	for ci, c := range fig14aCases {
		c := c
		accSketchErrors(opt, p, pre+"fig14a/"+ik(ci), saltFig14a+int64(ci), trials, func(_ int, rng *rand.Rand) trialErr {
			cfg := sim.TwoDeviceConfig(channel.Dock(), 20, 1.2, 2.5, 0)
			cfg.Rng = rng
			cfg.Devices[1].Orient = device.Orientation{
				AzimuthRad: geom.Deg2Rad(c.azimuth) + math.Pi, // 0 = facing the peer
				PolarRad:   geom.Deg2Rad(c.polar),
			}
			if c.polar > 45 {
				// Facing up also means held near the surface.
				cfg.Devices[1].Pos.Z = 0.7
			}
			r := rangeOnce(cfg, sim.MethodDualMic)
			return trialErr{err: r.AbsError(), ok: r.Detected}
		})
	}
}

func renderFig14a(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig14a",
		Title:  "ranging error vs transmitter orientation (20 m, dock)",
		Paper:  "medians 0.54–1.25 m; facing best, upward worst (surface multipath)",
		Header: []string{"orientation", "median (m)", "95th (m)"},
	}
	for ci, c := range fig14aCases {
		sk := p.Sketch(pre + "fig14a/" + ik(ci))
		out[c.name] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{c.name, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig14a measures the effect of transmitter orientation at 20 m (dock):
// the four paper configurations of azimuth/polar.
func Fig14a(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig14a(opt, p, "")
	return renderFig14a(opt, p, "")
}

var fig14bPairs = [][2]string{{"pixel", "samsung"}, {"pixel", "oneplus"}, {"samsung", "oneplus"}}

func accFig14b(opt Options, p *Partial, pre string) {
	trials := opt.samples(20)
	models := map[string]func() *device.Model{
		"samsung": device.GalaxyS9, "pixel": device.Pixel, "oneplus": device.OnePlus,
	}
	for pi, pair := range fig14bPairs {
		pair := pair
		accSketchErrors(opt, p, pre+"fig14b/"+ik(pi), saltFig14b+int64(pi), trials, func(_ int, rng *rand.Rand) trialErr {
			cfg := sim.TwoDeviceConfig(channel.Dock(), 20, 2.5, 2.5, 0)
			cfg.Rng = rng
			cfg.Devices[0].Model = models[pair[0]]()
			cfg.Devices[1].Model = models[pair[1]]()
			r := rangeOnce(cfg, sim.MethodDualMic)
			return trialErr{err: r.AbsError(), ok: r.Detected}
		})
	}
}

func renderFig14b(_ Options, p *Partial, pre string) (map[string][]float64, *stats.Table) {
	out := make(map[string][]float64)
	table := &stats.Table{
		ID:     "fig14b",
		Title:  "ranging error across smartphone model pairs (20 m, dock)",
		Paper:  "all pairs comparable (medians well under 1 m); model mix is not a blocker",
		Header: []string{"pair", "median (m)", "95th (m)"},
	}
	for pi, pair := range fig14bPairs {
		sk := p.Sketch(pre + "fig14b/" + ik(pi))
		name := pair[0] + "+" + pair[1]
		out[name] = sk.Values()
		qs := sk.Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{name, stats.F(qs[0]), stats.F(qs[1])})
	}
	return out, table
}

// Fig14b measures ranging across phone-model pairs (Pixel/Samsung/OnePlus)
// at 20 m.
func Fig14b(opt Options) (map[string][]float64, *stats.Table) {
	p := NewPartial()
	accFig14b(opt, p, "")
	return renderFig14b(opt, p, "")
}

// Fig15Point is one ping of the moving-device experiment.
type Fig15Point struct {
	TimeSec    float64
	TrueM      float64
	EstimatedM float64
}

var fig15Speeds = []float64{0.32, 0.56}

func accFig15(opt Options, p *Partial, pre string) {
	pings := opt.samples(24)
	for si, speed := range fig15Speeds {
		speed := speed
		type ping struct {
			pt Fig15Point
			ok bool
		}
		base := pre + "fig15/" + ik(si)
		errSk := p.Sketch(base + "/err")
		tSk := p.Sketch(base + "/t")
		trueSk := p.Sketch(base + "/true")
		estSk := p.Sketch(base + "/est")
		stage(opt, p, base, saltFig15+int64(si), pings, func(k int, rng *rand.Rand) ping {
			tSec := float64(k) // one ping per second
			// Back-and-forth between 6 and 18 m with the given speed.
			span := 12.0
			phase := math.Mod(tSec*speed, 2*span)
			pos := 6 + phase
			if phase > span {
				pos = 6 + 2*span - phase
			}
			cfg := sim.TwoDeviceConfig(channel.Dock(), pos, 2.0, 2.0, 0)
			cfg.Rng = rng
			// The device keeps moving during the exchange itself.
			dir := 1.0
			if phase > span {
				dir = -1
			}
			start := cfg.Devices[1].Pos
			cfg.Devices[1].Traj = sim.Linear(start, geom.Vec3{X: dir * speed})
			r := rangeOnce(cfg, sim.MethodDualMic)
			if !r.Detected {
				return ping{}
			}
			return ping{pt: Fig15Point{TimeSec: tSec, TrueM: r.TrueM, EstimatedM: r.EstimatedM}, ok: true}
		}, func(_ int, pg ping) {
			if pg.ok {
				tSk.Add(pg.pt.TimeSec)
				trueSk.Add(pg.pt.TrueM)
				estSk.Add(pg.pt.EstimatedM)
				e := math.Abs(pg.pt.EstimatedM - pg.pt.TrueM)
				errSk.Add(e)
				opt.observe(e)
			}
		})
	}
}

func renderFig15(_ Options, p *Partial, pre string) (map[float64][]Fig15Point, *stats.Table) {
	out := make(map[float64][]Fig15Point)
	table := &stats.Table{
		ID:     "fig15",
		Title:  "1D ranging of a continuously moving device (1 Hz pings, dock)",
		Paper:  "estimates track the 5–18 m trajectory; median 0.51 m, 95th 1.17 m",
		Header: []string{"speed (cm/s)", "median err (m)", "95th err (m)", "pings"},
	}
	for si, speed := range fig15Speeds {
		base := pre + "fig15/" + ik(si)
		ts, trues, ests := p.Sketch(base+"/t").Values(), p.Sketch(base+"/true").Values(), p.Sketch(base+"/est").Values()
		pts := make([]Fig15Point, 0, len(ts))
		for i := range ts {
			pts = append(pts, Fig15Point{TimeSec: ts[i], TrueM: trues[i], EstimatedM: ests[i]})
		}
		out[speed] = pts
		qs := p.Sketch(base+"/err").Quantiles(50, 95)
		table.Rows = append(table.Rows, []string{
			stats.F(speed * 100), stats.F(qs[0]), stats.F(qs[1]),
			stats.F(float64(len(pts))),
		})
	}
	return out, table
}

// Fig15 tracks a moving device with 1 Hz pings (dock): two speeds as in
// the paper (32 and 56 cm/s back-and-forth sweeps).
func Fig15(opt Options) (map[float64][]Fig15Point, *stats.Table) {
	p := NewPartial()
	accFig15(opt, p, "")
	return renderFig15(opt, p, "")
}

var fig22Dists = []float64{10, 20, 28}

// accFig22 runs the whole probe study as one serial stage (shard 0 only):
// the three distances share a single run RNG drawn in sequence, so the
// stage is indivisible. Per-distance subcarrier points land in paired
// freq/snr sketches; miss/skip outcomes land in counters so the render
// half can reproduce the original row logic.
func accFig22(opt Options, p *Partial, pre string) {
	serialStage(opt, p, pre+"fig22", func() {
		rng := opt.rng()
		pr := sig.SNRProbeParams()
		env := channel.Boathouse()
		const fs = 44100.0
		ce := ranging.NewChannelEstimator(pr)
		wave := pr.Preamble()
		for di, dist := range fig22Dists {
			stream := make([]float64, 40000)
			env.AddNoise(stream, fs, rng)
			taps := env.WithScatter(env.ImpulseResponse(
				geom.Vec3{X: 0, Y: 0, Z: 1}, geom.Vec3{X: dist, Y: 0, Z: 1},
				channel.ImpulseOptions{}), rng)
			channel.RenderFast(stream, wave, taps, 10000, fs)
			det := ranging.NewDetector(pr, ranging.DetectorConfig{})
			dets := det.Detect(stream)
			if len(dets) == 0 {
				p.AddCounter(pre+"fig22/"+ik(di)+"/miss", 1)
				continue
			}
			pts, err := ce.SubcarrierSNR(stream, dets[0].CoarseIndex)
			if err != nil {
				p.AddCounter(pre+"fig22/"+ik(di)+"/skip", 1)
				continue
			}
			freqSk := p.Sketch(pre + "fig22/" + ik(di) + "/freq")
			snrSk := p.Sketch(pre + "fig22/" + ik(di) + "/snr")
			for _, pt := range pts {
				freqSk.Add(pt.FreqHz)
				snrSk.Add(pt.SNRDB)
			}
		}
	})
}

func renderFig22(_ Options, p *Partial, pre string) (map[float64][]ranging.SNRPoint, *stats.Table) {
	out := make(map[float64][]ranging.SNRPoint)
	table := &stats.Table{
		ID:     "fig22",
		Title:  "per-subcarrier SNR vs distance (boathouse)",
		Paper:  "SNR ≈30–40 dB at 10 m falling to ≈10–20 dB at 28 m, roughly flat across 1–5 kHz",
		Header: []string{"dist (m)", "mean SNR (dB)", "min (dB)", "max (dB)"},
	}
	for di, dist := range fig22Dists {
		if p.Counter(pre+"fig22/"+ik(di)+"/miss") > 0 {
			table.Rows = append(table.Rows, []string{stats.F(dist), "miss", "-", "-"})
			continue
		}
		if p.Counter(pre+"fig22/"+ik(di)+"/skip") > 0 {
			continue
		}
		freqs := p.Sketch(pre + "fig22/" + ik(di) + "/freq").Values()
		snrs := p.Sketch(pre + "fig22/" + ik(di) + "/snr").Values()
		if len(freqs) == 0 {
			continue // stage never ran (e.g. partial from a non-zero shard)
		}
		pts := make([]ranging.SNRPoint, len(freqs))
		for i := range freqs {
			pts[i] = ranging.SNRPoint{FreqHz: freqs[i], SNRDB: snrs[i]}
		}
		out[dist] = pts
		var vals []float64
		for _, pt := range pts {
			if !math.IsInf(pt.SNRDB, 0) {
				vals = append(vals, pt.SNRDB)
			}
		}
		minV, maxV := vals[0], vals[0]
		for _, v := range vals {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		table.Rows = append(table.Rows, []string{stats.F(dist), stats.F(stats.Mean(vals)), stats.F(minV), stats.F(maxV)})
	}
	return out, table
}

// Fig22 estimates per-subcarrier SNR at 10/20/28 m (boathouse), using the
// appendix's 8-symbol probe preamble.
func Fig22(opt Options) (map[float64][]ranging.SNRPoint, *stats.Table) {
	p := NewPartial()
	accFig22(opt, p, "")
	return renderFig22(opt, p, "")
}
