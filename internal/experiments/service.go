// Service load test: drive N concurrent sessions through the uwposd
// session API — create → round → track → delete per session — and report
// client-side latency quantiles alongside the daemon's own /v1/statz
// sketch. Unlike the figure experiments this measures the serving stack,
// not the algorithms, so its latency numbers are machine-dependent and it
// is deliberately excluded from uwbench's deterministic "all" ordering.

package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"uwpos/internal/service"
	"uwpos/internal/stats"
)

// serviceSessions picks the session count: -samples verbatim when set
// (no Quick division — the count IS the experiment), else the CI smoke
// profiles: 1000 full, 50 quick.
func (o Options) serviceSessions() int {
	if o.Samples > 0 {
		return o.Samples
	}
	if o.Quick {
		return 50
	}
	return 1000
}

// Service runs the concurrent-session load test. With opt.ServiceAddr
// empty it hosts the service in-process (same code path as uwposd, no
// network daemon needed); otherwise it targets the live daemon at that
// address.
func Service(opt Options) *stats.Table {
	n := opt.serviceSessions()
	base, shutdown, err := serviceBase(opt)
	if err != nil {
		return serviceErrorTable(err)
	}
	defer shutdown()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	var (
		mu       sync.Mutex
		create   = stats.NewSketch()
		round    = stats.NewSketch()
		track    = stats.NewSketch()
		degraded int
		failed   int
		retries  int
	)
	fail := func() {
		mu.Lock()
		failed++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-worker RNG for backoff jitter: no lock contention on
			// the retry path, reproducible schedule per (seed, worker).
			rt := &retrier{client: client, rng: rand.New(rand.NewSource(opt.seed() + int64(i)))}
			defer func() {
				mu.Lock()
				retries += rt.retries
				mu.Unlock()
			}()
			// Distinct seeds keep the simulated acoustics independent
			// across sessions, like distinct dive groups.
			spec := map[string]any{
				"env": "pool",
				"divers": []map[string]any{
					{"x": 0, "y": 0, "z": 1.5},
					{"x": 5, "y": 1, "z": 2.0},
					{"x": 8, "y": -3, "z": 1.0},
				},
				"seed": opt.seed() + int64(i)*7919,
			}
			var created struct {
				ID string `json:"id"`
			}
			d, status, err := rt.do(http.MethodPost, base+"/v1/sessions", spec, &created)
			if err != nil || status != http.StatusCreated {
				fail()
				return
			}
			mu.Lock()
			create.Add(d)
			mu.Unlock()

			var rep struct {
				Degraded bool `json:"degraded"`
			}
			d, status, err = rt.do(http.MethodPost,
				base+"/v1/sessions/"+created.ID+"/rounds", map[string]any{}, &rep)
			if err != nil || status != http.StatusOK {
				fail()
				return
			}
			mu.Lock()
			round.Add(d)
			if rep.Degraded {
				degraded++
			}
			mu.Unlock()
			opt.observe(d)

			var tr struct {
				Rounds int `json:"rounds"`
			}
			d, status, err = rt.do(http.MethodGet,
				base+"/v1/sessions/"+created.ID+"/track", nil, &tr)
			if err != nil || status != http.StatusOK || tr.Rounds != 1 {
				fail()
				return
			}
			mu.Lock()
			track.Add(d)
			mu.Unlock()

			_, status, err = rt.do(http.MethodDelete,
				base+"/v1/sessions/"+created.ID, nil, nil)
			if err != nil || status != http.StatusNoContent {
				fail()
			}
		}(i)
	}
	wg.Wait()

	// The daemon's own sketch: execution latency excludes queue wait, so
	// it is the number to gate on when sessions outnumber cores.
	var statz service.Statz
	if _, status, err := doJSON(client, http.MethodGet, base+"/v1/statz", nil, &statz); err != nil || status != http.StatusOK {
		return serviceErrorTable(fmt.Errorf("statz unavailable: status %d err %v", status, err))
	}

	t := &stats.Table{
		ID:     "service",
		Title:  fmt.Sprintf("uwposd session API under %d concurrent sessions", n),
		Header: []string{"metric", "count", "p50(ms)", "p99(ms)"},
	}
	row := func(name string, sk *stats.Sketch) {
		q := sk.Quantiles(50, 99)
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(sk.Count()), fmt.Sprintf("%.0f", q[0]), fmt.Sprintf("%.0f", q[1]),
		})
	}
	row("create (client)", create)
	row("round e2e (client)", round)
	row("track (client)", track)
	exec := statz.LatencyMS["round_exec"]
	t.Rows = append(t.Rows, []string{
		"round exec (server)", fmt.Sprint(exec.Count),
		fmt.Sprintf("%.0f", exec.P50), fmt.Sprintf("%.0f", exec.P99),
	})
	t.Rows = append(t.Rows, []string{"sessions failed", fmt.Sprint(failed), "-", "-"})
	t.Rows = append(t.Rows, []string{"rounds degraded", fmt.Sprint(degraded), "-", "-"})
	t.Rows = append(t.Rows, []string{"rounds failed (server)", fmt.Sprint(statz.Rounds.Failed), "-", "-"})
	t.Rows = append(t.Rows, []string{"client retries", fmt.Sprint(retries), "-", "-"})
	t.Notes = "client e2e includes queue wait behind the round-execution bound; " +
		"transient 429/5xx answers retry with jittered backoff (counted above); " +
		"gate on server exec latency and the two failure counters (degraded is allowed, failed is not)."
	return t
}

// serviceBase resolves the target base URL, starting an in-process server
// when no address is given. The in-process server disables the round
// deadline and TTL: under a load burst, queue wait is part of the
// measurement, not a failure.
func serviceBase(opt Options) (string, func(), error) {
	if addr := opt.ServiceAddr; addr != "" {
		if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
			addr = "http://" + addr
		}
		return strings.TrimSuffix(addr, "/"), func() {}, nil
	}
	srv, err := service.NewServer(context.Background(), service.Config{
		SessionTTL:   -1,
		RoundTimeout: -1,
		MaxSessions:  1 << 20,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	shutdown := func() {
		hs.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

func serviceErrorTable(err error) *stats.Table {
	return &stats.Table{
		ID:     "service",
		Title:  "uwposd session API load test",
		Header: []string{"metric", "count", "p50(ms)", "p99(ms)"},
		Rows:   [][]string{{"error: " + err.Error(), "-", "-", "-"}},
	}
}

// retrier wraps doJSON with bounded retry: transient answers — 429 from
// the registry cap, any 5xx, or a transport error — back off with full
// jitter (uniform in an exponentially doubling window) and try again,
// so a load burst against a saturated daemon sheds into waiting clients
// instead of synchronized re-hammering. Client errors (other 4xx) never
// retry. Not safe for concurrent use; each worker owns one.
type retrier struct {
	client  *http.Client
	rng     *rand.Rand
	retries int
}

// retryAttempts bounds one logical request at 1 try + 3 retries.
const retryAttempts = 4

// retryBackoff is the first jitter window; it doubles per retry.
const retryBackoff = 25 * time.Millisecond

func transientStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do has doJSON's contract, with retries folded in: it returns the final
// attempt's latency, status and error.
func (rt *retrier) do(method, url string, body, out any) (float64, int, error) {
	window := retryBackoff
	for try := 1; ; try++ {
		ms, status, err := doJSON(rt.client, method, url, body, out)
		if try == retryAttempts || (err == nil && !transientStatus(status)) {
			return ms, status, err
		}
		rt.retries++
		time.Sleep(time.Duration(rt.rng.Int63n(int64(window))))
		window *= 2
	}
}

// doJSON performs one request with an optional JSON body, decodes the
// response into out (when non-nil and 2xx), and returns the elapsed
// milliseconds and status.
func doJSON(client *http.Client, method, url string, body, out any) (float64, int, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, 0, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, resp.StatusCode, err
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond), resp.StatusCode, nil
}
