// Shard coordination: distributing one experiment's trials across
// processes (or hosts) and folding the pieces back together with no
// observable difference from a single-process run.
//
// The design splits every shardable experiment into two halves:
//
//   - an accumulate half that runs trials and streams their contributions
//     into a Partial — a keyed bag of stats.Sketch quantile state and
//     integer counters;
//   - a render half that turns a Partial into the experiment's public
//     outputs (raw series + stats.Table) without running anything.
//
// The public FigXX functions are exactly accumulate-then-render over a
// fresh Partial, so the unsharded path and the sharded path cannot drift:
// they share one rendering code path, and the byte-identity invariant
// reduces to "merged Partial == single-run Partial", which the stats
// layer guarantees for exact-mode sketches (see stats.Sketch.Merge) and
// trivially for counters.
//
// Trial indices are global: shard i of c runs the contiguous span
// [n·i/c, n·(i+1)/c) of each stage's trial sequence through
// engine.EachRange, so trial t draws from engine.TrialSeed(S, t) exactly
// as in a full run, and concatenating shard contributions in shard-index
// order replays the full run's insertion sequence.
package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sort"
	"strconv"

	"uwpos/internal/engine"
	"uwpos/internal/stats"
)

// ik formats a small index for use in Partial key paths.
func ik(i int) string { return strconv.Itoa(i) }

// ShardSpec selects which contiguous slice of every trial stage an
// Options value runs. The zero value (and any Count ≤ 1) means "the
// whole run".
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate rejects malformed specs.
func (s ShardSpec) Validate() error {
	if s.Count <= 1 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

func (s ShardSpec) active() bool { return s.Count > 1 }

// span returns this shard's half-open range of a stage with n trials.
// Spans partition [0, n) across shards with sizes differing by at most
// one; small stages leave high shards empty rather than redistributing,
// which keeps every span a function of (n, Index, Count) alone.
func (s ShardSpec) span(n int) (lo, hi int) {
	if s.Count <= 1 {
		return 0, n
	}
	return n * s.Index / s.Count, n * (s.Index + 1) / s.Count
}

// tick notifies the Checkpoint hook that one trial has been delivered
// and its contributions are fully folded into the Partial.
func (o Options) tick() {
	if o.Checkpoint != nil {
		o.Checkpoint()
	}
}

// Partial is one experiment's mergeable accumulator state: named quantile
// sketches, named integer counters, and per-stage delivered-trial counts
// (the checkpoint cursor). Key iteration follows insertion order, which
// every accumulate half fixes deterministically, so codec bytes and merge
// results are reproducible.
type Partial struct {
	sketches    map[string]*stats.Sketch
	sketchOrder []string
	counters    map[string]int64
	counterOrd  []string
	done        map[string]int64
	doneOrder   []string
}

// NewPartial returns an empty accumulator.
func NewPartial() *Partial {
	return &Partial{
		sketches: make(map[string]*stats.Sketch),
		counters: make(map[string]int64),
		done:     make(map[string]int64),
	}
}

// Sketch returns the named sketch, creating it empty on first use (so
// render halves can read keys an empty shard span never touched).
func (p *Partial) Sketch(key string) *stats.Sketch {
	if s, ok := p.sketches[key]; ok {
		return s
	}
	s := stats.NewSketch()
	p.sketches[key] = s
	p.sketchOrder = append(p.sketchOrder, key)
	return s
}

// AddCounter adds delta to the named counter.
func (p *Partial) AddCounter(key string, delta int64) {
	if _, ok := p.counters[key]; !ok {
		p.counterOrd = append(p.counterOrd, key)
	}
	p.counters[key] += delta
}

// Counter returns the named counter's value (0 if never touched).
func (p *Partial) Counter(key string) int64 { return p.counters[key] }

// doneOf returns the delivered-trial count of one stage.
func (p *Partial) doneOf(key string) int64 { return p.done[key] }

// markDone records one more delivered trial for a stage.
func (p *Partial) markDone(key string) {
	if _, ok := p.done[key]; !ok {
		p.doneOrder = append(p.doneOrder, key)
	}
	p.done[key]++
}

// Merge folds o into p: sketches merge with o's observations ordered
// after p's (see stats.Sketch.Merge), counters add. Folding shard
// partials in shard-index order therefore reconstructs the single-run
// Partial exactly while shard sketches are in exact mode. Stage cursors
// (done counts) are per-process checkpoint state and do not merge.
func (p *Partial) Merge(o *Partial) {
	if o == nil {
		return
	}
	for _, key := range o.sketchOrder {
		p.Sketch(key).Merge(o.sketches[key])
	}
	for _, key := range o.counterOrd {
		p.AddCounter(key, o.counters[key])
	}
}

const (
	partialMagic   = "UWPB"
	partialVersion = 1
)

// MarshalBinary encodes the accumulator with the same framing as the
// stats codecs: magic "UWPB", u16 version, little-endian sections
// (sketches, counters, stage cursors — each a u32 count of
// length-prefixed key/value entries), trailing CRC32-IEEE.
func (p *Partial) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 256)
	b = append(b, partialMagic...)
	b = binary.LittleEndian.AppendUint16(b, partialVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.sketchOrder)))
	for _, key := range p.sketchOrder {
		blob, err := p.sketches[key].MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("sketch %q: %w", key, err)
		}
		b = appendBlobString(b, key)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.counterOrd)))
	for _, key := range p.counterOrd {
		b = appendBlobString(b, key)
		b = binary.LittleEndian.AppendUint64(b, uint64(p.counters[key]))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.doneOrder)))
	for _, key := range p.doneOrder {
		b = appendBlobString(b, key)
		b = binary.LittleEndian.AppendUint64(b, uint64(p.done[key]))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// UnmarshalBinary restores an accumulator encoded by MarshalBinary.
func (p *Partial) UnmarshalBinary(data []byte) error {
	if len(data) < 10 {
		return fmt.Errorf("experiments: partial blob too short (%d bytes)", len(data))
	}
	if string(data[:4]) != partialMagic {
		return fmt.Errorf("experiments: bad partial blob magic %q", data[:4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("experiments: partial blob checksum mismatch (%08x != %08x)", got, want)
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != partialVersion {
		return fmt.Errorf("experiments: unsupported partial blob version %d", v)
	}
	r := blobCursor{b: body[6:]}
	out := NewPartial()
	nSketch := int(r.u32())
	for i := 0; i < nSketch && r.err == nil; i++ {
		key := r.str()
		blob := r.bytes(int(r.u32()))
		if r.err != nil {
			break
		}
		sk := new(stats.Sketch)
		if err := sk.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("experiments: partial sketch %q: %w", key, err)
		}
		if _, dup := out.sketches[key]; dup {
			return fmt.Errorf("experiments: duplicate sketch key %q in partial blob", key)
		}
		out.sketches[key] = sk
		out.sketchOrder = append(out.sketchOrder, key)
	}
	nCounter := int(r.u32())
	for i := 0; i < nCounter && r.err == nil; i++ {
		key := r.str()
		v := int64(r.u64())
		if r.err != nil {
			break
		}
		if _, dup := out.counters[key]; dup {
			return fmt.Errorf("experiments: duplicate counter key %q in partial blob", key)
		}
		out.counters[key] = v
		out.counterOrd = append(out.counterOrd, key)
	}
	nDone := int(r.u32())
	for i := 0; i < nDone && r.err == nil; i++ {
		key := r.str()
		v := int64(r.u64())
		if r.err != nil {
			break
		}
		if _, dup := out.done[key]; dup {
			return fmt.Errorf("experiments: duplicate stage key %q in partial blob", key)
		}
		out.done[key] = v
		out.doneOrder = append(out.doneOrder, key)
	}
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("experiments: %d trailing bytes after partial blob", len(r.b))
	}
	*p = *out
	return nil
}

func appendBlobString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// blobCursor is the bounds-checked walker for partial blobs (same shape
// as the stats codec reader, plus string/bytes fields).
type blobCursor struct {
	b   []byte
	err error
}

func (r *blobCursor) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b) < n {
		r.err = fmt.Errorf("experiments: partial blob truncated")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *blobCursor) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *blobCursor) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *blobCursor) str() string { return string(r.bytes(int(r.u32()))) }

// stage runs one experiment stage's trials — this shard's span of the
// global sequence [0, n), resuming past any checkpointed prefix — and
// delivers results to sink in trial order. sink must fold each trial's
// full contribution into p before returning: the per-trial tick that
// follows it is the moment a checkpoint may serialize p, and the
// delivered count advances with it, so a restored Partial resumes at
// exactly the first unfolded trial.
func stage[T any](opt Options, p *Partial, key string, salt int64, n int, fn func(trial int, rng *rand.Rand) T, sink func(trial int, v T)) {
	lo, hi := opt.Shard.span(n)
	start := lo + int(p.doneOf(key))
	if start > hi {
		start = hi
	}
	engine.EachRange(opt.engine(salt), start, hi, fn, func(t int, v T) {
		sink(t, v)
		p.markDone(key)
		opt.tick()
	})
}

// serialStage runs a non-engine (single-pass, serial-rng) stage on shard
// 0 only, skipping it entirely if a checkpoint already recorded it.
func serialStage(opt Options, p *Partial, key string, fn func()) {
	lo, hi := opt.Shard.span(1)
	if hi <= lo || p.doneOf(key) > 0 {
		return
	}
	fn()
	p.markDone(key)
	opt.tick()
}

// shardable binds an experiment id to its accumulate and render halves.
// pre namespaces Partial keys so composite experiments (headline) can
// embed other experiments' stages without collision.
type shardable struct {
	acc    func(opt Options, p *Partial, pre string)
	render func(opt Options, p *Partial, pre string) *stats.Table
}

// shardRegistry lists every experiment that runs through the
// accumulate/render split. The streaming/ingest/service experiments stay
// out: they measure live pipelines (latency, deadline misses) whose
// results are not a fold over independent trials.
var shardRegistry = map[string]shardable{
	"fig06a": {accFig06a, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig06a(o, p, pre); return t }},
	"fig06b": {accFig06b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig06b(o, p, pre); return t }},
	"fig06c": {accFig06c, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig06c(o, p, pre); return t }},
	"fig06d": {accFig06d, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig06d(o, p, pre); return t }},
	"fig11a": {accFig11a, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig11a(o, p, pre); return t }},
	"fig11b": {accFig11b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig11b(o, p, pre); return t }},
	"fig12a": {accFig12a, func(o Options, p *Partial, pre string) *stats.Table { _, _, t := renderFig12a(o, p, pre); return t }},
	"fig12b": {accFig12b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig12b(o, p, pre); return t }},
	"fig13a": {accFig13a, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig13a(o, p, pre); return t }},
	"fig13b": {accFig13b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig13b(o, p, pre); return t }},
	"fig14a": {accFig14a, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig14a(o, p, pre); return t }},
	"fig14b": {accFig14b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig14b(o, p, pre); return t }},
	"fig15":  {accFig15, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig15(o, p, pre); return t }},
	"fig16":  {accFig16, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig16(o, p, pre); return t }},
	"fig18":  {accFig18, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig18(o, p, pre); return t }},
	"fig19a": {accFig19a, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig19a(o, p, pre); return t }},
	"fig19b": {accFig19b, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig19b(o, p, pre); return t }},
	"fig19b-4dev": {accFourDevices, func(o Options, p *Partial, pre string) *stats.Table {
		_, t := renderFourDevices(o, p, pre)
		return t
	}},
	"fig20": {accFig20, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig20(o, p, pre); return t }},
	"fig22": {accFig22, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderFig22(o, p, pre); return t }},
	"rtt":   {accRTT, func(o Options, p *Partial, pre string) *stats.Table { _, t := renderRTT(o, p, pre); return t }},
	"flipping": {accFlipping, func(o Options, p *Partial, pre string) *stats.Table {
		_, _, t := renderFlipping(o, p, pre)
		return t
	}},
	"battery":  {func(Options, *Partial, string) {}, func(o Options, _ *Partial, _ string) *stats.Table { return Battery(o) }},
	"headline": {accHeadline, renderHeadline},
	"ablation-bandwindow": {accAblationBandWindow, func(o Options, p *Partial, pre string) *stats.Table {
		_, t := renderAblationBandWindow(o, p, pre)
		return t
	}},
	"ablation-prefilter": {accAblationPrefilter, func(o Options, p *Partial, pre string) *stats.Table {
		_, t := renderAblationPrefilter(o, p, pre)
		return t
	}},
	"ablation-restarts": {accAblationRestarts, func(o Options, p *Partial, pre string) *stats.Table {
		_, t := renderAblationRestarts(o, p, pre)
		return t
	}},
	"ablation-reportback": {accAblationReportBack, func(o Options, p *Partial, pre string) *stats.Table {
		_, t := renderAblationReportBack(o, p, pre)
		return t
	}},
}

// ShardableIDs returns the ids that support shard/merge runs, sorted.
func ShardableIDs() []string {
	ids := make([]string, 0, len(shardRegistry))
	for id := range shardRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CanShard reports whether an experiment id runs through the
// accumulate/render split.
func CanShard(id string) bool {
	_, ok := shardRegistry[id]
	return ok
}

// Accumulate runs one experiment's trials (this Options' shard span) into
// p. Safe to call on a checkpoint-restored Partial: completed stage
// prefixes are skipped.
func Accumulate(id string, opt Options, p *Partial) error {
	s, ok := shardRegistry[id]
	if !ok {
		return fmt.Errorf("experiment %q does not support sharding", id)
	}
	s.acc(opt, p, "")
	return nil
}

// RenderPartial produces the experiment's table from accumulated (or
// merged) state without running any trials. opt must carry the same
// Seed/Samples/Quick as the accumulate runs — render halves recompute
// sweep shapes and analytic columns from it.
func RenderPartial(id string, opt Options, p *Partial) (*stats.Table, error) {
	s, ok := shardRegistry[id]
	if !ok {
		return nil, fmt.Errorf("experiment %q does not support sharding", id)
	}
	return s.render(opt, p, ""), nil
}
