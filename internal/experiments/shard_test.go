package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"uwpos/internal/stats"
)

// shardTestIDs are the experiments the merge-identity test exercises: one
// analytical sweep (many small stages), one sensor study (run-rng sensor
// construction shared by all shards), one engine.Map-style study, one
// counter-only experiment, and the serial shard-0-only probe study.
var shardTestIDs = []string{"fig06a", "fig13b", "fig16", "ablation-prefilter", "fig22"}

func testOpt(seed int64, workers int) Options {
	return Options{Seed: seed, Samples: 8, Workers: workers}
}

func runFull(t *testing.T, id string, opt Options) (*Partial, *stats.Table) {
	t.Helper()
	p := NewPartial()
	if err := Accumulate(id, opt, p); err != nil {
		t.Fatalf("accumulate %s: %v", id, err)
	}
	table, err := RenderPartial(id, opt, p)
	if err != nil {
		t.Fatalf("render %s: %v", id, err)
	}
	return p, table
}

// TestShardedRunMatchesFullRun: for every shard count and worker mix,
// accumulating each shard separately and folding the Partials in
// shard-index order must render exactly the single-process table.
func TestShardedRunMatchesFullRun(t *testing.T) {
	for _, id := range shardTestIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			_, want := runFull(t, id, testOpt(3, 1))
			for _, shards := range []int{2, 3} {
				for _, workers := range []int{1, 8} {
					merged := NewPartial()
					for s := 0; s < shards; s++ {
						opt := testOpt(3, workers)
						opt.Shard = ShardSpec{Index: s, Count: shards}
						p := NewPartial()
						if err := Accumulate(id, opt, p); err != nil {
							t.Fatalf("shard %d/%d: %v", s, shards, err)
						}
						// Round-trip every shard blob through the codec, as
						// the CLI does between processes.
						blob, err := p.MarshalBinary()
						if err != nil {
							t.Fatalf("marshal shard %d/%d: %v", s, shards, err)
						}
						restored := NewPartial()
						if err := restored.UnmarshalBinary(blob); err != nil {
							t.Fatalf("unmarshal shard %d/%d: %v", s, shards, err)
						}
						merged.Merge(restored)
					}
					got, err := RenderPartial(id, testOpt(3, 1), merged)
					if err != nil {
						t.Fatalf("render merged: %v", err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: %d shards × %d workers table differs from full run\n got: %+v\nwant: %+v",
							id, shards, workers, got, want)
					}
				}
			}
		})
	}
}

// TestShardResumeMatchesFullRun simulates a preempted shard: a checkpoint
// snapshot taken mid-run (after an arbitrary number of delivered trials)
// is restored into a fresh Partial and re-accumulated. The resumed run
// must skip the checkpointed prefix and produce exactly the full table —
// including when the snapshot was taken under parallel workers.
func TestShardResumeMatchesFullRun(t *testing.T) {
	const id = "fig06a"
	_, want := runFull(t, id, testOpt(9, 1))

	for _, workers := range []int{1, 8} {
		for _, snapAt := range []int{1, 37, 70} { // fig06a @ Samples=8 delivers 72 trials
			opt := testOpt(9, workers)
			p := NewPartial()
			var snapshot []byte
			ticks := 0
			opt.Checkpoint = func() {
				ticks++
				if ticks == snapAt {
					blob, err := p.MarshalBinary()
					if err != nil {
						t.Fatalf("checkpoint marshal: %v", err)
					}
					snapshot = blob
				}
			}
			if err := Accumulate(id, opt, p); err != nil {
				t.Fatalf("accumulate: %v", err)
			}
			if snapshot == nil {
				t.Fatalf("run delivered %d trials, snapshot point %d never reached", ticks, snapAt)
			}

			resumed := NewPartial()
			if err := resumed.UnmarshalBinary(snapshot); err != nil {
				t.Fatalf("restore checkpoint: %v", err)
			}
			opt.Checkpoint = nil
			if err := Accumulate(id, opt, resumed); err != nil {
				t.Fatalf("resume accumulate: %v", err)
			}
			got, err := RenderPartial(id, testOpt(9, 1), resumed)
			if err != nil {
				t.Fatalf("render resumed: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers %d snapshot@%d: resumed table differs from full run", workers, snapAt)
			}
		}
	}
}

// TestShardResumeUnderSharding: checkpoint/resume composes with a shard
// span — a snapshot of shard 1 of 3, resumed, must merge with the other
// shards into the full-run table.
func TestShardResumeUnderSharding(t *testing.T) {
	const id = "fig13b"
	_, want := runFull(t, id, testOpt(5, 1))

	merged := NewPartial()
	for s := 0; s < 3; s++ {
		opt := testOpt(5, 4)
		opt.Shard = ShardSpec{Index: s, Count: 3}
		p := NewPartial()
		if s == 1 {
			var snapshot []byte
			ticks := 0
			opt.Checkpoint = func() {
				ticks++
				if ticks == 5 {
					snapshot, _ = p.MarshalBinary()
				}
			}
			if err := Accumulate(id, opt, p); err != nil {
				t.Fatalf("shard 1 first pass: %v", err)
			}
			if snapshot == nil {
				t.Fatalf("shard 1 too small for snapshot point")
			}
			p = NewPartial()
			if err := p.UnmarshalBinary(snapshot); err != nil {
				t.Fatalf("restore shard 1: %v", err)
			}
			opt.Checkpoint = nil
		}
		if err := Accumulate(id, opt, p); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		merged.Merge(p)
	}
	got, err := RenderPartial(id, testOpt(5, 1), merged)
	if err != nil {
		t.Fatalf("render merged: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kill+resume of shard 1 changed the merged table")
	}
}

// TestPartialCodecRoundTrip: decode∘encode is the identity on canonical
// blobs, and the codec refuses corruption.
func TestPartialCodecRoundTrip(t *testing.T) {
	p := NewPartial()
	sk := p.Sketch("a/0")
	for i := 0; i < 50; i++ {
		sk.Add(float64(i) * 1.25)
	}
	p.Sketch("empty") // created but never fed
	p.AddCounter("a/0#miss", 3)
	p.AddCounter("hits", 41)
	for i := 0; i < 7; i++ {
		p.markDone("a/0")
	}

	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	q := NewPartial()
	if err := q.UnmarshalBinary(blob); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	blob2, err := q.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("codec not canonical: re-encoded blob differs")
	}
	if q.Counter("hits") != 41 || q.Counter("a/0#miss") != 3 {
		t.Errorf("counters lost: hits=%d miss=%d", q.Counter("hits"), q.Counter("a/0#miss"))
	}
	if q.doneOf("a/0") != 7 {
		t.Errorf("stage cursor lost: %d", q.doneOf("a/0"))
	}
	if got, want := q.Sketch("a/0").Values(), p.Sketch("a/0").Values(); !reflect.DeepEqual(got, want) {
		t.Errorf("sketch values lost")
	}

	// Corruption: every single-byte flip must be rejected (CRC32 catches
	// all of them), as must truncations.
	for _, off := range []int{0, 3, 5, 9, 20, len(blob) / 2, len(blob) - 5, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if err := NewPartial().UnmarshalBinary(bad); err == nil {
			t.Errorf("corruption at offset %d accepted", off)
		}
	}
	for _, cut := range []int{0, 5, 11, len(blob) - 1} {
		if err := NewPartial().UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestShardSpec covers the planner arithmetic.
func TestShardSpec(t *testing.T) {
	if err := (ShardSpec{}).Validate(); err != nil {
		t.Errorf("zero spec invalid: %v", err)
	}
	if err := (ShardSpec{Index: 2, Count: 4}).Validate(); err != nil {
		t.Errorf("2/4 invalid: %v", err)
	}
	for _, bad := range []ShardSpec{{Index: -1, Count: 4}, {Index: 4, Count: 4}, {Index: 1, Count: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	// Spans partition [0, n) in index order for every n and count.
	for _, n := range []int{0, 1, 5, 103} {
		for _, c := range []int{1, 2, 3, 7} {
			prev := 0
			for i := 0; i < c; i++ {
				lo, hi := ShardSpec{Index: i, Count: c}.span(n)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d c=%d shard %d: span [%d,%d) not contiguous from %d", n, c, i, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d c=%d: spans cover %d", n, c, prev)
			}
		}
	}
}

// TestShardRegistry sanity: ids are sorted, CanShard agrees, and unknown
// ids are rejected by both entry points.
func TestShardRegistry(t *testing.T) {
	ids := ShardableIDs()
	if len(ids) == 0 {
		t.Fatal("no shardable experiments")
	}
	for i, id := range ids {
		if !CanShard(id) {
			t.Errorf("ShardableIDs lists %q but CanShard denies it", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Errorf("ids not sorted: %q >= %q", ids[i-1], id)
		}
	}
	if CanShard("no-such-experiment") {
		t.Error("CanShard accepts unknown id")
	}
	if err := Accumulate("no-such-experiment", Options{}, NewPartial()); err == nil {
		t.Error("Accumulate accepts unknown id")
	}
	if _, err := RenderPartial("no-such-experiment", Options{}, NewPartial()); err == nil {
		t.Error("RenderPartial accepts unknown id")
	}
}
