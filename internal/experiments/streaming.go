package experiments

import (
	"fmt"
	"math"
	"time"

	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
	"uwpos/internal/stats"
)

// Streaming benchmarks the chunked detection subsystem on one synthetic
// dive-round stream: a 10 s microphone capture carrying two ranging
// preambles, a baseline chirp and a calibration chirp in ambient noise.
// It reports throughput for (a) one-shot vs chunked preamble detection —
// which must find identical detections, the equivalence the streaming
// test harness proves — (b) scanning the stream for all three templates
// separately vs through one dsp.MatcherBank, whose shared forward
// transform is the batched-matching win, and (c) a receiver-shaped
// comparison of the round's four consumers (detection, calibration
// argmax, BeepBeep, CAT) as independent legacy scans vs riding one shared
// ingest.Pipeline — with the forward-transform counts that show the
// shared scan doing the work of three at the cost of one. Timing cells
// vary run to run; the detection counts, transform counts and the match
// verdicts are deterministic in the seed.
func Streaming(opt Options) *stats.Table {
	rng := opt.rng()
	p := sig.DefaultParams()
	fs := p.SampleRate
	total := int(10 * fs)
	stream := make([]float64, total)
	for i := range stream {
		stream[i] = 0.05 * rng.NormFloat64()
	}
	add := func(wave []float64, at int, amp float64) {
		for i, v := range wave {
			stream[at+i] += amp * v
		}
	}
	pre := sig.SharedPreamble(p)
	chirp := sig.LinearChirp(p.BandLowHz, p.BandHighHz, p.PreambleLen(), fs)
	cal := p.CalibrationSignal(0)
	add(pre, 50_000, 0.9)
	add(pre, 250_000, 0.7)
	add(chirp, 150_000, 0.8)
	add(cal, 350_000, 0.8)

	const chunk = 4096 // typical OS audio-buffer grain, as in sim
	det := ranging.NewDetector(p, ranging.DetectorConfig{})
	reference := det.Detect(stream) // also warms the shared spectra

	bank := dsp.NewMatcherBank(dsp.NewMatcher(pre), dsp.NewMatcher(chirp), dsp.NewMatcher(cal))
	for _, row := range bank.NormalizedCrossCorrelateAllPooled(stream) {
		dsp.PutF64(row) // warm the bank-length spectra before timing
	}

	reps := opt.samples(5)
	best := func(fn func()) float64 {
		b := math.Inf(1)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			fn()
			if dt := time.Since(t0).Seconds(); dt < b {
				b = dt
			}
			opt.observe(b)
		}
		return b
	}

	tOneShot := best(func() { det.Detect(stream) })
	var chunked []ranging.Detection
	tChunked := best(func() {
		sd := det.Stream()
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			sd.Feed(stream[off:end])
		}
		chunked = sd.Flush()
	})
	match := len(chunked) == len(reference)
	for i := range reference {
		if !match || chunked[i].CoarseIndex != reference[i].CoarseIndex {
			match = false
			break
		}
	}
	tSeparate := best(func() {
		for i := 0; i < bank.Len(); i++ {
			dsp.PutF64(bank.Matcher(i).NormalizedCrossCorrelatePooled(stream))
		}
	})
	tBank := best(func() {
		for _, row := range bank.NormalizedCrossCorrelateAllPooled(stream) {
			dsp.PutF64(row)
		}
	})
	tBankStream := best(func() {
		s := bank.StreamNormalized()
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			s.Feed(stream[off:end])
		}
		s.Flush()
	})

	// Receiver-shaped comparison: the round's four consumers — preamble
	// detection, calibration argmax, BeepBeep and CAT arrival — once as
	// independent scans of the stream (the legacy shape: each pays its own
	// forward transforms) and once riding one shared ingest pipeline.
	// Detection runs unfiltered on both sides so every consumer sees the
	// same raw stream. dsp's transform counter measures the structural win;
	// the arrival/argmax agreement between the two shapes is the shared
	// scan's correctness check.
	detNP := ranging.NewDetector(p, ranging.DetectorConfig{DisablePrefilter: true})
	bb := ranging.NewBeepBeep(chirp)
	cat := ranging.NewCAT(chirp, fs, p.BandHighHz-p.BandLowHz)
	calBank := dsp.NewMatcherBank(dsp.NewMatcher(cal))
	feed := func(pipe *ingest.Pipeline) {
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			pipe.Push(stream[off:end])
		}
		pipe.Close()
	}
	type receiverOut struct {
		dets       int
		calIdx     int
		bbIdx      float64
		catIdx     float64
		transforms uint64
	}
	legacyRun := func() receiverOut {
		var out receiverOut
		t0 := dsp.BankForwardTransforms()
		sd := detNP.Stream()
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			sd.Feed(stream[off:end])
		}
		out.dets = len(sd.Flush())
		calPipe := ingest.New(ingest.Config{Bank: calBank, Normalized: true})
		am := ingest.NewArgMax(0)
		calPipe.Register(am)
		feed(calPipe)
		out.calIdx, _ = am.Best()
		out.bbIdx, _ = bb.Arrival(stream)
		out.catIdx, _ = cat.Arrival(stream)
		out.transforms = dsp.BankForwardTransforms() - t0
		return out
	}
	sharedRun := func() receiverOut {
		var out receiverOut
		t0 := dsp.BankForwardTransforms()
		pipe := ingest.New(ingest.Config{Bank: bank, Normalized: true})
		sd := detNP.Consumer(0)
		col := ingest.NewCollect(1, total)
		am := ingest.NewArgMax(2)
		pipe.Register(sd)
		pipe.Register(col)
		pipe.Register(am)
		feed(pipe)
		out.dets = len(sd.Detections())
		out.calIdx, _ = am.Best()
		out.bbIdx, _ = bb.ArrivalFromCorr(col.Corr())
		out.catIdx, _ = cat.ArrivalFromCorr(col.Corr(), stream)
		col.Release()
		out.transforms = dsp.BankForwardTransforms() - t0
		return out
	}
	var legacy, shared receiverOut
	tLegacy := best(func() { legacy = legacyRun() })
	tShared := best(func() { shared = sharedRun() })
	rxMatch := legacy.dets == shared.dets && legacy.calIdx == shared.calIdx &&
		int(legacy.bbIdx) == int(shared.bbIdx) && int(legacy.catIdx) == int(shared.catIdx)

	msps := func(t float64) string { return stats.F(float64(total) / t / 1e6) }
	verdict := "match"
	if !match {
		verdict = "MISMATCH"
	}
	table := &stats.Table{
		ID:     "streaming",
		Title:  "streaming chunked detection: one-shot vs chunked vs 3-template bank",
		Header: []string{"path", "templates", "Msamp/s", "speedup", "result"},
		Notes: "speedup: chunked rows vs their one-shot row, bank rows vs 3 separate scans, " +
			"shared-ingest row vs the legacy independent scans; detection equivalence (result " +
			"column) is exact by construction; xf = forward FFTs (block grids differ by path)",
	}
	rxVerdict := fmt.Sprintf("%d xf, match", shared.transforms)
	if !rxMatch {
		rxVerdict = fmt.Sprintf("%d xf, MISMATCH", shared.transforms)
	}
	table.Rows = append(table.Rows,
		[]string{"detect one-shot", "1", msps(tOneShot), "1.00", fmt.Sprintf("%d det", len(reference))},
		[]string{"detect chunked 4096", "1", msps(tChunked), stats.F(tOneShot / tChunked), verdict},
		[]string{"3 matchers separate", "3", msps(tSeparate), "1.00", "3 scans"},
		[]string{"bank one-shot", "3", msps(tBank), stats.F(tSeparate / tBank), "3 scans"},
		[]string{"bank chunked 4096", "3", msps(tBankStream), stats.F(tSeparate / tBankStream), "3 scans"},
		[]string{"receiver legacy scans", "3", msps(tLegacy), "1.00", fmt.Sprintf("%d xf", legacy.transforms)},
		[]string{"receiver shared ingest", "3", msps(tShared), stats.F(tLegacy / tShared), rxVerdict},
	)
	return table
}
