// Package faultinject is the deterministic chaos engine behind the
// uwposd robustness suite: a seed-driven decision source that service
// and ingest code consult at their failure-relevant points (durability
// writes, round execution, per-buffer deadlines), so tests can make a
// specific disaster happen on demand — or a reproducible storm of them
// happen at a seeded rate — without sleeping, without wall-clock
// dependence and without test-only branches in production code.
//
// Two triggering modes compose:
//
//   - Armed one-shots: FailNextWrite / Arm(fault, n) fire the next n
//     consultations of that fault class, then disarm. This is how a test
//     scripts "the snapshot write after round 3 fails".
//   - Seeded rates: Config gives each fault class a probability; the
//     injector draws from its own seeded RNG in consultation order, so a
//     single-threaded run replays the identical fault schedule for the
//     same seed. This is how the chaos suite brews storms.
//
// A nil *Injector is inert: every method is nil-safe and reports "no
// fault", so production wiring carries no conditionals and the cost of
// an unused hook is one pointer test.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault enumerates the injectable fault classes.
type Fault int

const (
	// FaultWrite fails a durability write (snapshot persistence).
	FaultWrite Fault = iota
	// FaultRoundLatency stalls a round before execution.
	FaultRoundLatency
	// FaultDropAnchors forces a round down the no-anchors degraded path,
	// as if every link measurement came back unusable.
	FaultDropAnchors
	// FaultKill marks a kill point: the consulting layer abandons the
	// operation without committing state, emulating a crash at that
	// point (CI backs this with a real kill -9).
	FaultKill
	// FaultBufferLatency adds synthetic processing time to an ingest
	// buffer's deadline accounting, forcing budget misses that engage
	// the backpressure policy.
	FaultBufferLatency
	numFaults
)

var faultNames = [...]string{"write", "round-latency", "drop-anchors", "kill", "buffer-latency"}

func (f Fault) String() string {
	if f < 0 || int(f) >= len(faultNames) {
		return fmt.Sprintf("fault(%d)", int(f))
	}
	return faultNames[f]
}

// Config sets the seeded-rate half of an injector. Rates are
// probabilities in [0, 1] per consultation; zero disables that class.
type Config struct {
	// Seed drives the fault schedule; the same seed and consultation
	// order replay the same faults.
	Seed int64

	WriteErrorRate    float64
	RoundLatencyRate  float64
	DropAnchorsRate   float64
	KillRate          float64
	BufferLatencyRate float64

	// RoundLatency is the stall per fired FaultRoundLatency
	// (default 50 ms).
	RoundLatency time.Duration
	// BufferLatency is the synthetic processing time added per fired
	// FaultBufferLatency (default 1 s — far over any real buffer
	// budget).
	BufferLatency time.Duration
}

// Injector decides faults. Safe for concurrent use; decisions are
// globally ordered by an internal mutex, so determinism holds whenever
// the consultation order is deterministic (single-threaded tests, or
// per-class counters in concurrent ones).
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	armed [numFaults]int
	fired [numFaults]int64
}

// New builds an injector from cfg. All-zero rates give a purely
// armed-mode injector.
func New(cfg Config) *Injector {
	if cfg.RoundLatency == 0 {
		cfg.RoundLatency = 50 * time.Millisecond
	}
	if cfg.BufferLatency == 0 {
		cfg.BufferLatency = time.Second
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Arm schedules the next n consultations of fault f to fire.
func (in *Injector) Arm(f Fault, n int) {
	in.mu.Lock()
	in.armed[f] += n
	in.mu.Unlock()
}

// FailNextWrite arms one FaultWrite — the canonical "the next snapshot
// write fails" script.
func (in *Injector) FailNextWrite() { in.Arm(FaultWrite, 1) }

// Fired reports how many times fault f has fired.
func (in *Injector) Fired(f Fault) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[f]
}

// decide consumes one consultation of f: armed one-shots fire first,
// then the seeded rate draws. Exactly one RNG draw happens per rated
// consultation, keeping the schedule a pure function of (seed, order).
func (in *Injector) decide(f Fault, rate float64) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.armed[f] > 0 {
		in.armed[f]--
		in.fired[f]++
		return true
	}
	if rate > 0 && in.rng.Float64() < rate {
		in.fired[f]++
		return true
	}
	return false
}

// WriteError returns the injected error for a durability write named op,
// or nil. Nil-safe.
func (in *Injector) WriteError(op string) error {
	if in == nil {
		return nil
	}
	if in.decide(FaultWrite, in.cfg.WriteErrorRate) {
		return fmt.Errorf("faultinject: injected %s failure on %s", FaultWrite, op)
	}
	return nil
}

// RoundLatency returns the stall to apply before executing a round
// (zero when no fault fires). Nil-safe.
func (in *Injector) RoundLatency() time.Duration {
	if in == nil || !in.decide(FaultRoundLatency, in.cfg.RoundLatencyRate) {
		return 0
	}
	return in.cfg.RoundLatency
}

// DropAnchors reports whether this round loses all its anchors. Nil-safe.
func (in *Injector) DropAnchors() bool {
	if in == nil {
		return false
	}
	return in.decide(FaultDropAnchors, in.cfg.DropAnchorsRate)
}

// Kill reports whether to emulate a crash at the named point: the caller
// abandons the operation without committing state. Nil-safe.
func (in *Injector) Kill(point string) bool {
	if in == nil {
		return false
	}
	_ = point
	return in.decide(FaultKill, in.cfg.KillRate)
}

// BufferLatency returns synthetic processing time to add to one ingest
// buffer's deadline accounting (zero when no fault fires). Nil-safe.
func (in *Injector) BufferLatency() time.Duration {
	if in == nil || !in.decide(FaultBufferLatency, in.cfg.BufferLatencyRate) {
		return 0
	}
	return in.cfg.BufferLatency
}
