package faultinject

import (
	"testing"
	"time"
)

// TestNilInjectorInert: every hook on a nil injector reports no fault.
func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if err := in.WriteError("snapshot"); err != nil {
		t.Error("nil injector produced a write error")
	}
	if in.RoundLatency() != 0 {
		t.Error("nil injector produced latency")
	}
	if in.DropAnchors() {
		t.Error("nil injector dropped anchors")
	}
	if in.Kill("commit") {
		t.Error("nil injector killed")
	}
	if in.BufferLatency() != 0 {
		t.Error("nil injector produced buffer latency")
	}
	if in.Fired(FaultWrite) != 0 {
		t.Error("nil injector counted fires")
	}
}

// TestArmedOneShots: armed faults fire exactly n times, then disarm.
func TestArmedOneShots(t *testing.T) {
	in := New(Config{})
	in.FailNextWrite()
	if err := in.WriteError("snapshot"); err == nil {
		t.Fatal("armed write fault did not fire")
	}
	if err := in.WriteError("snapshot"); err != nil {
		t.Fatal("write fault fired twice after one arm")
	}

	in.Arm(FaultDropAnchors, 3)
	fires := 0
	for i := 0; i < 10; i++ {
		if in.DropAnchors() {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("Arm(3) fired %d times", fires)
	}
	if got := in.Fired(FaultDropAnchors); got != 3 {
		t.Fatalf("Fired reports %d", got)
	}

	in.Arm(FaultKill, 1)
	if !in.Kill("round-commit") {
		t.Fatal("armed kill did not fire")
	}
	if in.Kill("round-commit") {
		t.Fatal("kill fired twice")
	}

	in.Arm(FaultRoundLatency, 1)
	if in.RoundLatency() != 50*time.Millisecond {
		t.Fatal("default round latency wrong")
	}
	in.Arm(FaultBufferLatency, 1)
	if in.BufferLatency() != time.Second {
		t.Fatal("default buffer latency wrong")
	}
}

// TestSeededScheduleDeterminism: the same seed and consultation order
// produce the identical fault schedule; a different seed produces a
// different one (overwhelmingly likely at these counts).
func TestSeededScheduleDeterminism(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(Config{Seed: seed, WriteErrorRate: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.WriteError("snapshot") != nil
		}
		return out
	}
	a, b := schedule(11), schedule(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at consultation %d", i)
		}
	}
	c := schedule(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-step schedules")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("rate 0.3 over 200 consultations fired %d times", fires)
	}
}

// TestRatesAreIndependentStreams: consultations of one class do not
// perturb another class's armed state, and counters stay per-class.
func TestPerClassCounters(t *testing.T) {
	in := New(Config{Seed: 5, WriteErrorRate: 1.0})
	in.Arm(FaultKill, 2)
	for i := 0; i < 4; i++ {
		in.WriteError("snapshot")
	}
	if got := in.Fired(FaultWrite); got != 4 {
		t.Fatalf("write fired %d, want 4", got)
	}
	if got := in.Fired(FaultKill); got != 0 {
		t.Fatalf("kill fired %d before consultation", got)
	}
	if !in.Kill("a") || !in.Kill("b") || in.Kill("c") {
		t.Fatal("armed kill schedule wrong")
	}
}

func TestFaultString(t *testing.T) {
	if FaultWrite.String() != "write" || FaultBufferLatency.String() != "buffer-latency" {
		t.Fatal("fault names wrong")
	}
	if Fault(99).String() != "fault(99)" {
		t.Fatal("out-of-range fault name wrong")
	}
}
