// Package geom provides the small 2D/3D vector types shared by the channel
// model, device placement, and localization core.
//
// Coordinate convention: x, y span the horizontal plane; z is depth in
// metres, positive downward, with the water surface at z = 0.
package geom

import "math"

// Vec3 is a point or displacement in 3D space (z = depth, positive down).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between two points.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// HorizontalDist returns the distance in the x–y plane.
func (v Vec3) HorizontalDist(w Vec3) float64 {
	return math.Hypot(v.X-w.X, v.Y-w.Y)
}

// XY projects to 2D, dropping depth.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// Normalize returns v scaled to unit length (zero vector is returned as-is).
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Vec2 is a point or displacement in the horizontal plane.
type Vec2 struct{ X, Y float64 }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between two points.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Angle returns the polar angle atan2(y, x) in radians.
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated by theta radians counter-clockwise.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// WithZ lifts a 2D point to 3D at the given depth.
func (v Vec2) WithZ(z float64) Vec3 { return Vec3{v.X, v.Y, z} }

// ReflectAcross reflects point p across the infinite line through a and b.
// Used to construct the mirror-image topology when testing flipping
// disambiguation.
func ReflectAcross(p, a, b Vec2) Vec2 {
	d := b.Sub(a)
	n := d.Norm()
	if n == 0 {
		return p // degenerate line: reflection undefined, return p unchanged
	}
	u := d.Scale(1 / n)
	ap := p.Sub(a)
	// Component along the line stays, perpendicular flips.
	along := u.Scale(ap.Dot(u))
	perp := ap.Sub(along)
	return a.Add(along).Sub(perp)
}

// SideOfLine reports the sign of the cross product (b−a) × (p−a):
// +1 if p is left of the directed line a→b, −1 if right, 0 if collinear.
func SideOfLine(p, a, b Vec2) int {
	c := b.Sub(a).Cross(p.Sub(a))
	switch {
	case c > 0:
		return 1
	case c < 0:
		return -1
	default:
		return 0
	}
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }
