package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 6, 3}
	if got := a.Add(b); got != (Vec3{5, 8, 6}) {
		t.Errorf("Add = %+v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 4, 0}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := a.Dot(b); got != 4+12+9 {
		t.Errorf("Dot = %g", got)
	}
	if got := a.Dist(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %g", got)
	}
	if got := a.HorizontalDist(b); math.Abs(got-5) > 1e-12 {
		t.Errorf("HorizontalDist = %g", got)
	}
	if got := a.XY(); got != (Vec2{1, 2}) {
		t.Errorf("XY = %+v", got)
	}
}

func TestVec3Normalize(t *testing.T) {
	v := Vec3{3, 0, 4}.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm %g", v.Norm())
	}
	z := Vec3{}.Normalize()
	if z != (Vec3{}) {
		t.Error("zero vector should stay zero")
	}
}

func TestVec2RotateProperties(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		v := Vec2{x, y}
		r := v.Rotate(theta)
		// Rotation preserves length.
		if math.Abs(r.Norm()-v.Norm()) > 1e-6*(1+v.Norm()) {
			return false
		}
		// Rotating back recovers the original.
		back := r.Rotate(-theta)
		return math.Abs(back.X-x) < 1e-6*(1+math.Abs(x)) && math.Abs(back.Y-y) < 1e-6*(1+math.Abs(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVec2Rotate90(t *testing.T) {
	v := Vec2{1, 0}.Rotate(math.Pi / 2)
	if math.Abs(v.X) > 1e-12 || math.Abs(v.Y-1) > 1e-12 {
		t.Errorf("rotate 90 = %+v", v)
	}
}

func TestCrossAndSide(t *testing.T) {
	a, b := Vec2{0, 0}, Vec2{1, 0}
	if SideOfLine(Vec2{0.5, 1}, a, b) != 1 {
		t.Error("above the x-axis should be left (+1)")
	}
	if SideOfLine(Vec2{0.5, -1}, a, b) != -1 {
		t.Error("below should be right (-1)")
	}
	if SideOfLine(Vec2{2, 0}, a, b) != 0 {
		t.Error("collinear should be 0")
	}
}

func TestReflectAcross(t *testing.T) {
	a, b := Vec2{0, 0}, Vec2{1, 0}
	p := Vec2{0.3, 0.7}
	r := ReflectAcross(p, a, b)
	if math.Abs(r.X-0.3) > 1e-12 || math.Abs(r.Y+0.7) > 1e-12 {
		t.Errorf("reflection = %+v", r)
	}
	// Reflecting twice is the identity.
	rr := ReflectAcross(r, a, b)
	if rr.Dist(p) > 1e-12 {
		t.Error("double reflection is not identity")
	}
	// Degenerate line returns the point unchanged.
	if got := ReflectAcross(p, a, a); got != p {
		t.Error("degenerate line should return p")
	}
}

func TestReflectPreservesDistancesToLine(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := Vec2{r.NormFloat64(), r.NormFloat64()}
		b := Vec2{r.NormFloat64(), r.NormFloat64()}
		if a.Dist(b) < 1e-6 {
			continue
		}
		p := Vec2{r.NormFloat64() * 10, r.NormFloat64() * 10}
		q := ReflectAcross(p, a, b)
		// Distances to both line anchor points are preserved.
		if math.Abs(q.Dist(a)-p.Dist(a)) > 1e-9 || math.Abs(q.Dist(b)-p.Dist(b)) > 1e-9 {
			t.Fatalf("reflection distorted distances at case %d", i)
		}
		// Side flips unless collinear.
		if SideOfLine(p, a, b) != 0 && SideOfLine(p, a, b) == SideOfLine(q, a, b) {
			t.Fatalf("reflection kept the side at case %d", i)
		}
	}
}

func TestAngleConversions(t *testing.T) {
	if math.Abs(Deg2Rad(180)-math.Pi) > 1e-12 {
		t.Error("Deg2Rad")
	}
	if math.Abs(Rad2Deg(math.Pi/2)-90) > 1e-12 {
		t.Error("Rad2Deg")
	}
	if math.Abs(Vec2{0, 2}.Angle()-math.Pi/2) > 1e-12 {
		t.Error("Angle")
	}
}

func TestWithZ(t *testing.T) {
	v := Vec2{1, 2}.WithZ(3)
	if v != (Vec3{1, 2, 3}) {
		t.Errorf("WithZ = %+v", v)
	}
}
