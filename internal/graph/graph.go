// Package graph provides the rigidity theory behind topology-based
// localization (§2.1.2 of the paper): Laman rigidity via the (2,3)-pebble
// game, redundant rigidity, k-connectivity, and the unique-realizability
// test (redundantly rigid ∧ 3-connected, Goldenberg et al.) that gates
// which link subsets the outlier-detection search may drop.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected link between two node indices (Low < High).
type Edge struct{ Low, High int }

// NewEdge normalizes node ordering.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{Low: a, High: b}
}

// Graph is a simple undirected graph on nodes 0..N-1.
type Graph struct {
	n     int
	edges map[Edge]bool
}

// New creates an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, edges: make(map[Edge]bool)}
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge (a, b). Self-loops are rejected.
func (g *Graph) AddEdge(a, b int) {
	if a == b {
		panic("graph: self loop")
	}
	if a < 0 || b < 0 || a >= g.n || b >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", a, b, g.n))
	}
	g.edges[NewEdge(a, b)] = true
}

// RemoveEdge deletes the edge if present.
func (g *Graph) RemoveEdge(a, b int) { delete(g.edges, NewEdge(a, b)) }

// HasEdge reports edge presence.
func (g *Graph) HasEdge(a, b int) bool { return g.edges[NewEdge(a, b)] }

// Edges returns the edge set in deterministic order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Low != out[j].Low {
			return out[i].Low < out[j].Low
		}
		return out[i].High < out[j].High
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for e := range g.edges {
		out.edges[e] = true
	}
	return out
}

// WithoutEdges returns a copy with the listed edges removed.
func (g *Graph) WithoutEdges(drop []Edge) *Graph {
	out := g.Clone()
	for _, e := range drop {
		delete(out.edges, e)
	}
	return out
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int {
	d := 0
	for e := range g.edges {
		if e.Low == v || e.High == v {
			d++
		}
	}
	return d
}

// adjacency builds adjacency lists, optionally excluding a node set.
func (g *Graph) adjacency(exclude map[int]bool) [][]int {
	adj := make([][]int, g.n)
	for e := range g.edges {
		if exclude[e.Low] || exclude[e.High] {
			continue
		}
		adj[e.Low] = append(adj[e.Low], e.High)
		adj[e.High] = append(adj[e.High], e.Low)
	}
	return adj
}

// Connected reports whether the graph (restricted to nodes not excluded)
// is connected. Graphs with fewer than 2 included nodes count as connected.
func (g *Graph) Connected(exclude map[int]bool) bool {
	var start = -1
	included := 0
	for v := 0; v < g.n; v++ {
		if !exclude[v] {
			included++
			if start < 0 {
				start = v
			}
		}
	}
	if included <= 1 {
		return true
	}
	adj := g.adjacency(exclude)
	seen := make([]bool, g.n)
	stack := []int{start}
	seen[start] = true
	visited := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				visited++
				stack = append(stack, w)
			}
		}
	}
	return visited == included
}

// KConnected reports whether the graph stays connected after removing any
// k−1 nodes (i.e. node connectivity ≥ k). Exhaustive over removal sets,
// which is exact and cheap at dive-group sizes.
func (g *Graph) KConnected(k int) bool {
	if k <= 1 {
		return g.Connected(nil)
	}
	if g.n < k+1 {
		return false // convention: need at least k+1 nodes
	}
	return g.kConnectedRec(k-1, 0, map[int]bool{})
}

func (g *Graph) kConnectedRec(toRemove, from int, removed map[int]bool) bool {
	if toRemove == 0 {
		return g.Connected(removed)
	}
	for v := from; v < g.n; v++ {
		removed[v] = true
		if !g.kConnectedRec(toRemove-1, v+1, removed) {
			delete(removed, v)
			return false
		}
		delete(removed, v)
	}
	return true
}
