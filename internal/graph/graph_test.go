package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, normalized
	g.AddEdge(2, 3)
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	g.RemoveEdge(3, 2)
	if g.M() != 1 {
		t.Errorf("after remove M = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Error("degree wrong")
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(3)
	for _, c := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) should panic", c[0], c[1])
				}
			}()
			g.AddEdge(c[0], c[1])
		}()
	}
}

func TestConnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if g.Connected(nil) {
		t.Error("two components should not be connected")
	}
	g.AddEdge(2, 3)
	if !g.Connected(nil) {
		t.Error("path should be connected")
	}
	// Excluding a cut vertex disconnects.
	if g.Connected(map[int]bool{2: true}) {
		t.Error("removing node 2 should disconnect")
	}
	// Trivial graphs are connected.
	if !New(0).Connected(nil) || !New(1).Connected(nil) {
		t.Error("empty/singleton should be connected")
	}
}

func TestKConnected(t *testing.T) {
	// K4 is 3-connected.
	if !Complete(4).KConnected(3) {
		t.Error("K4 should be 3-connected")
	}
	// A cycle is 2-connected but not 3-connected.
	c5 := New(5)
	for i := 0; i < 5; i++ {
		c5.AddEdge(i, (i+1)%5)
	}
	if !c5.KConnected(2) {
		t.Error("C5 should be 2-connected")
	}
	if c5.KConnected(3) {
		t.Error("C5 should not be 3-connected")
	}
	// Too few nodes.
	if Complete(3).KConnected(3) {
		t.Error("3 nodes cannot be 3-connected by convention")
	}
}

func TestRigidityTriangle(t *testing.T) {
	if !Complete(3).Rigid() {
		t.Error("triangle should be rigid")
	}
	// Path on 3 nodes: 2 edges < 2*3-3.
	p := New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	if p.Rigid() {
		t.Error("path should be flexible")
	}
}

func TestRigiditySmallCases(t *testing.T) {
	if !New(0).Rigid() || !New(1).Rigid() {
		t.Error("trivial graphs are rigid")
	}
	g2 := New(2)
	if g2.Rigid() {
		t.Error("two unlinked nodes are not rigid")
	}
	g2.AddEdge(0, 1)
	if !g2.Rigid() {
		t.Error("an edge is rigid")
	}
}

func TestRigidityFourCycleIsFlexible(t *testing.T) {
	// Fig. 4a of the paper: a 4-cycle deforms continuously.
	c4 := New(4)
	for i := 0; i < 4; i++ {
		c4.AddEdge(i, (i+1)%4)
	}
	if c4.Rigid() {
		t.Error("4-cycle should be flexible")
	}
	// Adding one diagonal makes it rigid (2n-3 = 5 edges).
	c4.AddEdge(0, 2)
	if !c4.Rigid() {
		t.Error("braced quadrilateral should be rigid")
	}
}

func TestRankCountsIndependentEdgesOnly(t *testing.T) {
	// Doubling constraints inside a triangle must not raise the rank:
	// K4 has rank 5 (2n-3), not 6.
	if got := Complete(4).RankRigidity(); got != 5 {
		t.Errorf("K4 rank = %d, want 5", got)
	}
	// Two triangles sharing one node: rank is 6 but 2n-3 = 7 (hinge).
	h := New(5)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 0)
	h.AddEdge(0, 3)
	h.AddEdge(3, 4)
	h.AddEdge(4, 0)
	if got := h.RankRigidity(); got != 6 {
		t.Errorf("hinged triangles rank = %d, want 6", got)
	}
	if h.Rigid() {
		t.Error("hinged triangles rotate freely: not rigid")
	}
}

func TestLamanSubgraphViolation(t *testing.T) {
	// K4 plus a pendant: rigid component + dangling node is not rigid.
	g := Complete(4)
	h := New(5)
	for _, e := range g.Edges() {
		h.AddEdge(e.Low, e.High)
	}
	h.AddEdge(0, 4)
	if h.Rigid() {
		t.Error("pendant node should break rigidity")
	}
	if got, want := h.RankRigidity(), 6; got != want {
		t.Errorf("rank = %d, want %d", got, want)
	}
}

func TestRedundantRigidity(t *testing.T) {
	// K4 is redundantly rigid: remove any edge, still rigid (5 edges,
	// wheel-minus... K4 minus an edge has 5 edges = 2n-3 and is Laman).
	if !Complete(4).RedundantlyRigid() {
		t.Error("K4 should be redundantly rigid")
	}
	// A minimally rigid graph (exactly 2n-3 edges) is never redundant.
	tri := Complete(3)
	if tri.RedundantlyRigid() {
		t.Error("triangle loses rigidity with any edge removed")
	}
}

func TestUniquelyRealizable(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"K3", Complete(3), true},
		{"K4", Complete(4), true},
		{"K5", Complete(5), true},
		{"K5 minus edge", func() *Graph { g := Complete(5); g.RemoveEdge(0, 1); return g }(), true},
		{"path3", func() *Graph { g := New(3); g.AddEdge(0, 1); g.AddEdge(1, 2); return g }(), false},
		{"C4+diag", func() *Graph {
			g := New(4)
			for i := 0; i < 4; i++ {
				g.AddEdge(i, (i+1)%4)
			}
			g.AddEdge(0, 2)
			return g
		}(), false}, // minimally rigid: partial reflection possible (Fig. 4b)
		{"pair", func() *Graph { g := New(2); g.AddEdge(0, 1); return g }(), true},
		{"singleton", New(1), true},
		{"two isolated", New(2), false},
	}
	for _, c := range cases {
		if got := c.g.UniquelyRealizable(); got != c.want {
			t.Errorf("%s: UniquelyRealizable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestK5MinusTwoAdjacent(t *testing.T) {
	// K5 minus two edges sharing a node: node drops to degree 2;
	// still rigid but that node can partially reflect? Its degree is 2,
	// so redundant rigidity fails (removing one of its links leaves a
	// degree-1 node).
	g := Complete(5)
	g.RemoveEdge(0, 1)
	g.RemoveEdge(0, 2)
	if g.RedundantlyRigid() {
		t.Error("degree-2 node cannot be redundantly rigid")
	}
	if g.UniquelyRealizable() {
		t.Error("should not be uniquely realizable")
	}
}

func TestFromWeights(t *testing.T) {
	w := [][]float64{
		{0, 1, 0},
		{1, 0, 0.5},
		{0, 0.5, 0},
	}
	g := FromWeights(w)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("FromWeights edges wrong")
	}
	// Asymmetric entries: either triangle counts.
	w2 := [][]float64{
		{0, 0},
		{1, 0},
	}
	if !FromWeights(w2).HasEdge(0, 1) {
		t.Error("asymmetric weight should still create the edge")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	var count int
	Subsets(edges, 2, func(s []Edge) bool {
		if len(s) != 2 {
			t.Fatalf("subset size %d", len(s))
		}
		count++
		return true
	})
	if count != 6 { // C(4,2)
		t.Errorf("enumerated %d subsets, want 6", count)
	}
	// Early stop.
	count = 0
	Subsets(edges, 1, func(s []Edge) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop failed: %d", count)
	}
	// Degenerate k.
	Subsets(edges, 0, func([]Edge) bool { t.Fatal("k=0 should not call fn"); return true })
	Subsets(edges, 9, func([]Edge) bool { t.Fatal("k>len should not call fn"); return true })
}

func TestWithoutEdges(t *testing.T) {
	g := Complete(4)
	h := g.WithoutEdges([]Edge{NewEdge(0, 1), NewEdge(2, 3)})
	if h.M() != 4 || g.M() != 6 {
		t.Errorf("WithoutEdges: h.M=%d g.M=%d", h.M(), g.M())
	}
}

// Property: complete graphs K_n (n>=4) are always uniquely realizable, and
// random spanning trees never are (trees are flexible for n>=3).
func TestRealizabilityProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(uint(seed)%4)
		if !Complete(n).UniquelyRealizable() {
			return false
		}
		// Random spanning tree.
		tr := New(n)
		for v := 1; v < n; v++ {
			tr.AddEdge(v, r.Intn(v))
		}
		return !tr.Rigid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: rigidity rank never exceeds min(m, 2n-3) and matches m for
// independent sets.
func TestRankBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + int(uint(seed)%6)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		rank := g.RankRigidity()
		if rank > g.M() || rank > 2*n-3 {
			return false
		}
		return rank >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
