package graph

// Rigidity analysis in two dimensions.
//
// A framework is (generically) rigid in 2D iff it contains a spanning
// Laman subgraph: 2n−3 independent edges where independence is
// (2,3)-sparsity (no subgraph on n′ nodes spans more than 2n′−3 edges).
// The Lee–Streinu (2,3)-pebble game decides independence in O(n·m):
// every node holds 2 pebbles; inserting an edge (u,v) requires 4 pebbles
// present across u and v, gathering them by reversing directed paths.

type pebbleGame struct {
	n       int
	pebbles []int
	// out[v] lists the heads of edges oriented out of v.
	out [][]int
}

func newPebbleGame(n int) *pebbleGame {
	pg := &pebbleGame{n: n, pebbles: make([]int, n), out: make([][]int, n)}
	for i := range pg.pebbles {
		pg.pebbles[i] = 2
	}
	return pg
}

// findPebble searches for a node with a free pebble reachable from start
// along directed edges, excluding the blocked node; on success it reverses
// the path, moving one pebble to start, and returns true.
func (pg *pebbleGame) findPebble(start, blocked int) bool {
	parent := make([]int, pg.n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[start] = -1
	parent[blocked] = -3 // never enter
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range pg.out[v] {
			if parent[w] != -2 {
				continue
			}
			parent[w] = v
			if pg.pebbles[w] > 0 {
				// Reverse the path w → start.
				pg.pebbles[w]--
				pg.pebbles[start]++
				cur := w
				for parent[cur] >= 0 {
					p := parent[cur]
					// Reverse edge p→cur to cur→p.
					pg.removeOut(p, cur)
					pg.out[cur] = append(pg.out[cur], p)
					cur = p
				}
				return true
			}
			stack = append(stack, w)
		}
	}
	return false
}

func (pg *pebbleGame) removeOut(v, w int) {
	lst := pg.out[v]
	for i, x := range lst {
		if x == w {
			lst[i] = lst[len(lst)-1]
			pg.out[v] = lst[:len(lst)-1]
			return
		}
	}
}

// tryInsert attempts to add edge (u,v) as an independent edge.
func (pg *pebbleGame) tryInsert(u, v int) bool {
	// Gather up to 4 pebbles on {u, v}.
	for pg.pebbles[u]+pg.pebbles[v] < 4 {
		moved := false
		if pg.pebbles[u] < 2 && pg.findPebble(u, v) {
			moved = true
		} else if pg.pebbles[v] < 2 && pg.findPebble(v, u) {
			moved = true
		}
		if !moved {
			return false
		}
	}
	// Insert: consume a pebble from u, orient edge u→v.
	pg.pebbles[u]--
	pg.out[u] = append(pg.out[u], v)
	return true
}

// RankRigidity returns the number of independent edges of g under
// (2,3)-sparsity — the rank of the 2D generic rigidity matroid.
func (g *Graph) RankRigidity() int {
	pg := newPebbleGame(g.n)
	rank := 0
	for _, e := range g.Edges() {
		if pg.tryInsert(e.Low, e.High) {
			rank++
		}
	}
	return rank
}

// Rigid reports whether g is generically rigid in 2D: the rigidity rank
// reaches 2n−3 (with the usual small-case conventions: graphs on 0–1 nodes
// are rigid; 2 nodes are rigid iff linked).
func (g *Graph) Rigid() bool {
	switch g.n {
	case 0, 1:
		return true
	case 2:
		return g.M() == 1
	}
	return g.RankRigidity() == 2*g.n-3
}

// RedundantlyRigid reports whether g stays rigid after removal of any
// single edge.
func (g *Graph) RedundantlyRigid() bool {
	if !g.Rigid() {
		return false
	}
	for _, e := range g.Edges() {
		h := g.Clone()
		h.RemoveEdge(e.Low, e.High)
		if !h.Rigid() {
			return false
		}
	}
	return true
}

// UniquelyRealizable reports whether pairwise distances over g determine
// node positions uniquely (up to congruence): for n ≥ 4, redundant
// rigidity plus 3-connectivity (Jackson–Jordán / the condition quoted from
// [41] in §2.1.2); for n ≤ 3 the small-case rules (a triangle is uniquely
// realizable, anything missing a link is not, except trivial n ≤ 2).
func (g *Graph) UniquelyRealizable() bool {
	switch {
	case g.n <= 1:
		return true
	case g.n == 2:
		return g.M() == 1
	case g.n == 3:
		return g.M() == 3
	}
	return g.RedundantlyRigid() && g.KConnected(3)
}

// FromWeights builds the link graph implied by a weight matrix: nodes i, j
// are adjacent iff w[i][j] > 0. The matrix is treated as symmetric (an
// entry counts if either triangle is positive).
func FromWeights(w [][]float64) *Graph {
	n := len(w)
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var wij float64
			if j < len(w[i]) {
				wij = w[i][j]
			}
			if i < len(w[j]) && w[j][i] > wij {
				wij = w[j][i]
			}
			if wij > 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Subsets enumerates all k-element subsets of the edge slice, invoking fn
// for each. fn must not retain the slice; it is reused. Enumeration stops
// early if fn returns false.
func Subsets(edges []Edge, k int, fn func([]Edge) bool) {
	if k <= 0 || k > len(edges) {
		return
	}
	idx := make([]int, k)
	buf := make([]Edge, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			for i, id := range idx {
				buf[i] = edges[id]
			}
			return fn(buf)
		}
		for i := start; i <= len(edges)-(k-depth); i++ {
			idx[depth] = i
			if !rec(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}
