package ingest_test

import (
	"testing"

	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/sig"
)

// benchPipeline builds a three-template pipeline with n argmax consumers
// and returns it with a 4096-sample noise buffer.
func benchPipeline(consumers int) (*ingest.Pipeline, []float64) {
	bank := testBank(44100)
	pipe := ingest.New(ingest.Config{Bank: bank, Normalized: true})
	for i := 0; i < consumers; i++ {
		pipe.Register(ingest.NewArgMax(i % bank.Len()))
	}
	return pipe, noiseStream(4096, 17)
}

// BenchmarkIngestPush measures the steady-state per-buffer cost of the
// shared scan with three consumers riding it.
func BenchmarkIngestPush(b *testing.B) {
	pipe, chunk := benchPipeline(3)
	for i := 0; i < 32; i++ {
		pipe.Push(chunk) // warmup: size the block scratch
	}
	b.SetBytes(int64(len(chunk) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Push(chunk)
	}
}

// BenchmarkIngestPushMetered adds the deadline meter: the delta over
// BenchmarkIngestPush is the accounting overhead (two clock reads and one
// sketch insert per buffer).
func BenchmarkIngestPushMetered(b *testing.B) {
	bank := testBank(44100)
	pipe := ingest.New(ingest.Config{
		Bank:       bank,
		Normalized: true,
		SampleRate: 44100,
		Meter:      ingest.NewMeter(1.0),
	})
	pipe.Register(ingest.NewArgMax(0))
	chunk := noiseStream(4096, 17)
	for i := 0; i < 32; i++ {
		pipe.Push(chunk)
	}
	b.SetBytes(int64(len(chunk) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Push(chunk)
	}
}

// BenchmarkIngestPushPrefiltered adds the streaming band-pass in front of
// the shared scan — the full detection front end.
func BenchmarkIngestPushPrefiltered(b *testing.B) {
	bank := testBank(44100)
	pipe := ingest.New(ingest.Config{
		Bank:       bank,
		Normalized: true,
		Prefilter:  sig.BandLimitFIR(1000, 5000, 44100),
	})
	pipe.Register(ingest.NewArgMax(0))
	chunk := noiseStream(4096, 17)
	for i := 0; i < 32; i++ {
		pipe.Push(chunk)
	}
	b.SetBytes(int64(len(chunk) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Push(chunk)
	}
}

// BenchmarkIngestSharedVsIndependent contrasts one shared scan feeding
// three consumers against three independent single-consumer pipelines
// over the same stream — the cost the unified ingest path removes.
func BenchmarkIngestSharedVsIndependent(b *testing.B) {
	stream := noiseStream(1<<18, 23)
	run := func(b *testing.B, pipes int, consumersEach int) {
		b.SetBytes(int64(len(stream) * 8))
		for i := 0; i < b.N; i++ {
			for p := 0; p < pipes; p++ {
				pipe, _ := benchPipeline(consumersEach)
				for off := 0; off < len(stream); off += 4096 {
					pipe.Push(stream[off:min(off+4096, len(stream))])
				}
				pipe.Close()
			}
		}
	}
	b.Run("shared3", func(b *testing.B) { run(b, 1, 3) })
	b.Run("independent3", func(b *testing.B) { run(b, 3, 1) })
	_ = dsp.BankForwardTransforms() // keep the instrumentation linked
}
