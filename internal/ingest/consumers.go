package ingest

import (
	"math"

	"uwpos/internal/dsp"
)

// Consumer receives one template's correlation lags as the shared scan
// computes them. Lag slices alias pipeline-owned buffers valid only for
// the duration of the call: reduce immediately or copy. Lags is invoked
// in stream order per template (lag index = total lags delivered so far
// for that template); Finish runs exactly once, after the final lags of
// every template have been delivered.
type Consumer interface {
	Lags(template int, lags []float64)
	Finish()
}

// ChunkConsumer is a Consumer that additionally observes the (filtered)
// sample stream itself: Chunk delivers each buffer after the prefilter,
// before any lags computed from it. Detection validation needs the
// band-limited samples around each candidate, not just correlation
// values, so the stream detector implements this.
type ChunkConsumer interface {
	Consumer
	Chunk(samples []float64)
}

// ArgMax tracks the strongest correlation lag of one template: the
// calibration consumer. The first maximum wins ties, matching a forward
// argmax scan over the one-shot correlation array. The zero value tracks
// template 0 but reports no observations; use NewArgMax.
type ArgMax struct {
	tmpl    int
	best    float64
	bestIdx int
	count   int
}

// NewArgMax returns an argmax consumer over the given template index.
func NewArgMax(template int) *ArgMax {
	return &ArgMax{tmpl: template, best: -math.MaxFloat64, bestIdx: -1}
}

// Lags implements Consumer.
func (a *ArgMax) Lags(template int, lags []float64) {
	if template != a.tmpl {
		return
	}
	for _, v := range lags {
		if v > a.best {
			a.best, a.bestIdx = v, a.count
		}
		a.count++
	}
}

// Finish implements Consumer.
func (a *ArgMax) Finish() {}

// Best returns the strongest lag's index and value. The index is -1 when
// no lag was observed (or every one was NaN).
func (a *ArgMax) Best() (idx int, val float64) { return a.bestIdx, a.best }

// Count returns the number of lags observed.
func (a *ArgMax) Count() int { return a.count }

// Collect accumulates one template's full correlation plane — the bridge
// to one-shot entry points like ArrivalFromCorr that need the whole
// array. The plane is drawn from the dsp scratch pool when a capacity is
// reserved up front; Release hands it back.
type Collect struct {
	tmpl   int
	corr   []float64
	pooled bool
}

// NewCollect returns a collector for the given template index. capacity,
// when positive, preallocates the plane from the dsp scratch pool (pass
// the exact lag count — stream length − template length + 1 — for an
// allocation-free steady state).
func NewCollect(template, capacity int) *Collect {
	c := &Collect{tmpl: template}
	if capacity > 0 {
		c.corr = dsp.GetF64(capacity)[:0]
		c.pooled = true
	}
	return c
}

// Lags implements Consumer.
func (c *Collect) Lags(template int, lags []float64) {
	if template != c.tmpl {
		return
	}
	c.corr = append(c.corr, lags...)
}

// Finish implements Consumer.
func (c *Collect) Finish() {}

// Corr returns the collected correlation plane (valid until Release).
func (c *Collect) Corr() []float64 { return c.corr }

// Release returns a pooled plane to the dsp scratch pool. The collector
// must not be used afterwards. Safe to call more than once.
func (c *Collect) Release() {
	if c.pooled && c.corr != nil {
		dsp.PutF64(c.corr)
	}
	c.corr = nil
}
