package ingest_test

import (
	"slices"
	"testing"

	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
)

// FuzzIngestPipeline fuzzes stream content, buffer-partition points and
// the consumer set against the one-shot bank scan: every template's
// collected correlation must be bit-identical for any partition, the
// argmax consumer must agree with a forward scan of the one-shot array,
// and the forward-transform count must not depend on how many consumers
// ride the pipeline. Templates are prefixes of the stream itself so the
// fuzzer controls correlation structure (ties, plateaus, constants)
// directly through the input bytes.
func FuzzIngestPipeline(f *testing.F) {
	f.Add([]byte{5, 3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add(append([]byte{60, 7, 1}, make([]byte, 500)...)) // constant signal
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 24 {
			t.Skip()
		}
		header, body := data[:3], data[3:]
		x := make([]float64, len(body))
		for i, b := range body {
			x[i] = (float64(b) - 128) / 128
		}
		// Two templates of fuzz-chosen lengths; a bank requires non-empty
		// templates shorter than the stream.
		h0 := 1 + int(header[0])%(len(x)/2)
		h1 := 1 + int(header[1])%(len(x)/2)
		bank := dsp.NewMatcherBank(dsp.NewMatcher(x[:h0]), dsp.NewMatcher(x[:h1]))
		want := bank.NormalizedCrossCorrelateAll(x)

		// Buffer boundaries straight from the fuzz input: up to 7 cuts,
		// including empty buffers via repeated cut points.
		nc := int(header[2]) % 8
		cuts := make([]int, 0, nc)
		for k := 0; k < nc && k < len(body); k++ {
			cuts = append(cuts, int(body[k])*len(x)/256)
		}
		slices.Sort(cuts)

		// Consumer-set size also comes from the input; the transform count
		// must not change with it.
		ncons := 1 + int(header[2])%3
		pipe := ingest.New(ingest.Config{Bank: bank, Normalized: true})
		cols := make([]*ingest.Collect, bank.Len())
		for i := range cols {
			cols[i] = ingest.NewCollect(i, 0)
			pipe.Register(cols[i])
		}
		arg := ingest.NewArgMax(0)
		pipe.Register(arg)
		for i := 0; i < ncons; i++ {
			pipe.Register(ingest.NewArgMax(1))
		}
		before := dsp.BankForwardTransforms()
		prev := 0
		for _, c := range cuts {
			pipe.Push(x[prev:c])
			prev = c
		}
		pipe.Push(x[prev:])
		pipe.Close()
		scans := dsp.BankForwardTransforms() - before

		for i, col := range cols {
			got := col.Corr()
			if len(got) != len(want[i]) {
				t.Fatalf("template %d: %d lags, want %d", i, len(got), len(want[i]))
			}
			for j := range got {
				if got[j] != want[i][j] && !(got[j] != got[j] && want[i][j] != want[i][j]) {
					t.Fatalf("cuts %v template %d lag %d: %v != %v", cuts, i, j, got[j], want[i][j])
				}
			}
		}
		// Forward argmax over the one-shot array (strict-greater, first
		// maximum, NaN-proof) must match the streaming consumer.
		wantBest, wantIdx := 0.0, -1
		for j, v := range want[0] {
			if wantIdx < 0 || v > wantBest {
				if v == v {
					wantBest, wantIdx = v, j
				}
			}
		}
		if idx, _ := arg.Best(); idx != wantIdx {
			t.Fatalf("cuts %v: argmax %d, one-shot %d", cuts, idx, wantIdx)
		}
		// One forward transform per block, independent of the consumer set:
		// re-run with a single consumer and compare.
		solo := ingest.New(ingest.Config{Bank: bank, Normalized: true})
		solo.Register(ingest.NewArgMax(0))
		before = dsp.BankForwardTransforms()
		solo.Push(x)
		solo.Close()
		if soloScans := dsp.BankForwardTransforms() - before; scans != soloScans {
			t.Fatalf("%d consumers cost %d transforms, 1 consumer costs %d", 3+ncons, scans, soloScans)
		}
	})
}
