package ingest

import (
	"time"

	"uwpos/internal/stats"
)

// Meter aggregates per-buffer deadline headroom for ingest pipelines. The
// unit of account is the real-time factor (RTF): a buffer's processing
// time divided by its audio duration. An RTF of 1.0 means processing
// exactly keeps up with capture; the budget is an RTF ceiling (default
// 1.0 — SNIPPETS' embedded exemplar budgets its loop the same way, as a
// fraction of the buffer period) and every buffer above it counts as a
// deadline miss. Per-buffer RTFs stream into a stats.Sketch, so
// percentile reports stay O(1) in memory at any buffer count.
//
// One Meter may be shared across the pipelines of a round (detection,
// calibration, baselines) and across rounds, aggregating a workload-wide
// headroom distribution. Observations use the monotonic clock; a Meter is
// not safe for concurrent use.
type Meter struct {
	budgetRTF float64
	sketch    *stats.Sketch

	buffers  int
	samples  int
	audioSec float64
	procSec  float64
	maxRTF   float64
	misses   int

	// now is the clock, injectable for tests.
	now func() time.Time
}

// NewMeter builds a meter with the given budget as a real-time-factor
// ceiling; non-positive means the default budget of 1.0 (processing must
// keep up with capture — each buffer within its own duration).
func NewMeter(budgetRTF float64) *Meter {
	if budgetRTF <= 0 {
		budgetRTF = 1.0
	}
	s := stats.NewSketch()
	s.Reserve() // steady-state Add must not allocate
	return &Meter{budgetRTF: budgetRTF, sketch: s, now: time.Now}
}

// observe records one buffer: n samples of audioSec seconds, whose
// processing started at t0. It returns the buffer's budget verdict —
// true when the buffer missed its deadline — which is the signal the
// backpressure policy runs on. Empty buffers tick no accounting (their
// RTF is undefined) and never miss.
func (m *Meter) observe(n int, audioSec float64, t0 time.Time) bool {
	if n <= 0 {
		return false
	}
	dt := m.now().Sub(t0).Seconds()
	rtf := dt / audioSec
	m.sketch.Add(rtf)
	if rtf > m.maxRTF {
		m.maxRTF = rtf
	}
	miss := rtf > m.budgetRTF
	if miss {
		m.misses++
	}
	m.buffers++
	m.samples += n
	m.audioSec += audioSec
	m.procSec += dt
	return miss
}

// DeadlineReport summarizes a meter: totals, the budget, per-buffer RTF
// percentiles and the miss count.
type DeadlineReport struct {
	Buffers      int     // buffers observed
	Samples      int     // total samples observed
	AudioSeconds float64 // total audio duration processed
	ProcSeconds  float64 // total processing wall time
	BudgetRTF    float64 // the per-buffer budget, as a real-time factor
	P50RTF       float64 // median per-buffer RTF
	P90RTF       float64
	P99RTF       float64
	MaxRTF       float64 // worst buffer
	Misses       int     // buffers over budget
}

// Report computes the current summary. Percentiles are NaN while no
// buffer has been observed.
func (m *Meter) Report() DeadlineReport {
	qs := m.sketch.Quantiles(50, 90, 99)
	return DeadlineReport{
		Buffers:      m.buffers,
		Samples:      m.samples,
		AudioSeconds: m.audioSec,
		ProcSeconds:  m.procSec,
		BudgetRTF:    m.budgetRTF,
		P50RTF:       qs[0],
		P90RTF:       qs[1],
		P99RTF:       qs[2],
		MaxRTF:       m.maxRTF,
		Misses:       m.misses,
	}
}
