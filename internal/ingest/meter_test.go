package ingest

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a deterministic stand-in for the monotonic clock: each
// read advances by the next programmed step.
type fakeClock struct {
	t     time.Time
	steps []time.Duration
	i     int
}

func (c *fakeClock) now() time.Time {
	if c.i < len(c.steps) {
		c.t = c.t.Add(c.steps[c.i])
		c.i++
	}
	return c.t
}

// TestMeterAccounting: RTFs, percentiles, totals and misses computed from
// a scripted clock.
func TestMeterAccounting(t *testing.T) {
	const fs = 1000.0 // 1000-sample buffer = 1 s of audio
	m := NewMeter(1.0)
	clock := &fakeClock{t: time.Unix(0, 0)}
	m.now = clock.now

	// Three buffers: 0.5 s, 0.8 s and 1.5 s of processing for 1 s of audio
	// each — RTFs 0.5, 0.8, 1.5; one deadline miss.
	for _, proc := range []time.Duration{500, 800, 1500} {
		clock.steps = []time.Duration{0, proc * time.Millisecond}
		clock.i = 0
		t0 := m.now()
		m.observe(1000, 1000/fs, t0)
	}
	r := m.Report()
	if r.Buffers != 3 || r.Samples != 3000 {
		t.Fatalf("buffers %d samples %d, want 3 3000", r.Buffers, r.Samples)
	}
	if r.AudioSeconds != 3.0 {
		t.Fatalf("audio seconds %g, want 3", r.AudioSeconds)
	}
	if math.Abs(r.ProcSeconds-2.8) > 1e-12 {
		t.Fatalf("proc seconds %g, want 2.8", r.ProcSeconds)
	}
	if r.BudgetRTF != 1.0 || r.Misses != 1 {
		t.Fatalf("budget %g misses %d, want 1.0 1", r.BudgetRTF, r.Misses)
	}
	if math.Abs(r.MaxRTF-1.5) > 1e-12 || math.Abs(r.P50RTF-0.8) > 1e-12 {
		t.Fatalf("max %g p50 %g, want 1.5 0.8", r.MaxRTF, r.P50RTF)
	}
	if r.P99RTF < r.P90RTF || r.P90RTF < r.P50RTF {
		t.Fatalf("percentiles not monotone: %g %g %g", r.P50RTF, r.P90RTF, r.P99RTF)
	}
}

// TestMeterDefaults: non-positive budget becomes 1.0; empty meters report
// NaN percentiles and zero totals; empty buffers are not counted.
func TestMeterDefaults(t *testing.T) {
	m := NewMeter(0)
	if m.budgetRTF != 1.0 {
		t.Fatalf("default budget %g, want 1.0", m.budgetRTF)
	}
	r := m.Report()
	if r.Buffers != 0 || !math.IsNaN(r.P50RTF) || !math.IsNaN(r.P99RTF) {
		t.Fatalf("empty report: %+v", r)
	}
	m.observe(0, 0, m.now())
	if m.Report().Buffers != 0 {
		t.Fatal("empty buffer was counted")
	}
}

// TestMeterSteadyStateAllocs: observe never allocates (the sketch storage
// is reserved at construction).
func TestMeterSteadyStateAllocs(t *testing.T) {
	m := NewMeter(1.0)
	clock := &fakeClock{t: time.Unix(0, 0)}
	m.now = clock.now
	if allocs := testing.AllocsPerRun(1000, func() {
		m.observe(4096, 4096.0/44100, m.now())
	}); allocs != 0 {
		t.Fatalf("observe allocates %.1f times, want 0", allocs)
	}
}
