// Package ingest is the real-time audio front end of the receiver: a
// Pipeline accepts fixed-size sample buffers at audio-callback cadence —
// the shape in which OpenSL ES hands a phone its microphone stream — runs
// the optional band-pass prefilter and exactly one shared dsp.BankStream
// forward transform per correlation block, and fans the per-template
// correlation lags out to every registered Consumer. Message detection,
// calibration argmax and the BeepBeep/CAT baselines all ride the same
// scan instead of each paying for its own pass over the stream.
//
// The pipeline carries deadline accounting throughout: an optional Meter
// measures each buffer's processing time against the buffer's real-time
// budget (audio duration × a configurable real-time-factor ceiling) and
// aggregates per-buffer headroom into streaming percentiles. With a nil
// Meter no clocks are read at all, so simulation hot paths stay free of
// timing syscalls and remain byte-deterministic.
//
// Steady state is allocation-free: the bank session reuses its emission
// buffers, the prefilter scratch is sized once, and the provided
// consumers (ArgMax, Collect with reserved capacity) never grow — the
// property the AllocsPerRun gate in pipeline_test.go enforces.
package ingest

import (
	"time"

	"uwpos/internal/dsp"
	"uwpos/internal/faultinject"
)

// Config assembles a Pipeline.
type Config struct {
	// Bank is the template bank driving the shared scan. Required.
	Bank *dsp.MatcherBank
	// Normalized selects window-energy normalized correlation (values in
	// [-1, 1]), matching MatcherBank.NormalizedCrossCorrelateAll.
	Normalized bool
	// SampleRate (Hz) converts buffer lengths to audio durations for the
	// deadline budget. Required when Meter is set; otherwise unused.
	SampleRate float64
	// Prefilter, when non-nil, is an odd-length symmetric FIR applied to
	// the raw stream before correlation, with group-delay compensation and
	// a zero-filled tail — sample-for-sample the arithmetic of
	// sig.BandLimit, carried across buffer boundaries. Consumers then see
	// the band-limited stream exactly as a one-shot receiver would.
	Prefilter []float64
	// Meter, when non-nil, receives one deadline observation per Push.
	// A single Meter may be shared by many pipelines (sequentially) to
	// aggregate a whole round's ingest headroom.
	Meter *Meter
	// Policy enables backpressure driven by the Meter's budget verdicts:
	// consecutive deadline misses engage shedding (drop to silence,
	// bounded queueing, or a degraded flag — see PolicyMode). Requires a
	// Meter; the zero value disables it.
	Policy Policy
	// Injector threads deterministic fault injection into the deadline
	// accounting: injected buffer latency is added to the measured
	// processing time, forcing budget misses on a scripted or seeded
	// schedule without sleeping. Nil is inert.
	Injector *faultinject.Injector
}

// Pipeline is one in-progress shared scan over one audio stream. Buffers
// go in via Push; correlation lags fan out to the registered consumers as
// they become computable. Close ends the stream, delivers every remaining
// lag and calls each consumer's Finish. A pipeline is single-stream and
// not safe for concurrent use.
type Pipeline struct {
	cfg       Config
	bs        *dsp.BankStream
	consumers []Consumer
	chunkCons []ChunkConsumer

	// Streaming band-pass prefilter state (nil fir when disabled):
	// filtered[n] = y[n+delay] with y the causal FIR output and zeros past
	// the end, replicating sig.BandLimit's group-delay compensation.
	fir     []float64
	delay   int
	tail    []float64 // last len(fir)-1 raw samples
	tailLen int
	rawFed  int
	fbuf    []float64 // filter scratch: tail ++ chunk
	fout    []float64 // filtered-output scratch

	// pol is the backpressure state machine; nil when Config.Policy is
	// PolicyNone. zeroScratch feeds owed silence through the normal path
	// at recovery without allocating per flush.
	pol         *policyState
	zeroScratch []float64

	closed bool
}

// New builds a pipeline over cfg.Bank. It panics on a nil bank, or on a
// Meter without a positive SampleRate (the budget would be undefined).
func New(cfg Config) *Pipeline {
	if cfg.Bank == nil {
		panic("ingest: Config.Bank is required")
	}
	if cfg.Meter != nil && cfg.SampleRate <= 0 {
		panic("ingest: Config.Meter needs a positive SampleRate")
	}
	if cfg.Policy.Mode != PolicyNone && cfg.Meter == nil {
		panic("ingest: Config.Policy needs a Meter (misses are its signal)")
	}
	p := &Pipeline{cfg: cfg}
	if cfg.Policy.Mode != PolicyNone {
		p.pol = newPolicyState(cfg.Policy)
	}
	if cfg.Normalized {
		p.bs = cfg.Bank.StreamNormalized()
	} else {
		p.bs = cfg.Bank.Stream()
	}
	if len(cfg.Prefilter) > 0 {
		p.fir = cfg.Prefilter
		p.delay = (len(p.fir) - 1) / 2
		p.tail = make([]float64, len(p.fir)-1)
	}
	return p
}

// Register adds a consumer to the fan-out. Consumers implementing
// ChunkConsumer additionally receive every (filtered) sample buffer
// before the lags computed from it. Register before the first Push.
func (p *Pipeline) Register(c Consumer) {
	p.consumers = append(p.consumers, c)
	if cc, ok := c.(ChunkConsumer); ok {
		p.chunkCons = append(p.chunkCons, cc)
	}
}

// Fed returns the number of raw stream samples pushed so far.
func (p *Pipeline) Fed() int {
	if p.fir != nil {
		return p.rawFed
	}
	return p.bs.Fed()
}

// Push consumes the next audio buffer (any length, including empty):
// prefilter, one shared forward transform per completed correlation
// block, consumer fan-out. When a Meter is configured the buffer's
// processing time is measured against its real-time budget.
func (p *Pipeline) Push(buf []float64) {
	if p.closed {
		panic("ingest: Pipeline.Push after Close")
	}
	// An engaged drop/queue policy withholds the buffer from processing:
	// capture-time cost is bookkeeping only, and the shed window replays
	// (as data or silence) in one batch at recovery.
	if p.pol != nil && p.pol.shedsCapture() {
		if p.pol.absorb(buf) {
			p.flushShed()
			p.pol.disengage()
		}
		return
	}
	m := p.cfg.Meter
	var t0 time.Time
	if m != nil {
		t0 = m.now()
	}
	filt := buf
	if p.fir != nil {
		filt = p.filter(buf)
	}
	p.deliver(filt)
	if m != nil {
		// Injected latency backdates the start: the meter sees a slow
		// buffer without anyone sleeping, so fault-driven backpressure
		// tests stay deterministic and fast.
		if d := p.cfg.Injector.BufferLatency(); d > 0 {
			t0 = t0.Add(-d)
		}
		miss := m.observe(len(buf), float64(len(buf))/p.cfg.SampleRate, t0)
		if p.pol != nil && len(buf) > 0 {
			if p.pol.engaged && p.cfg.Policy.Mode == PolicyDegrade {
				p.pol.rep.DegradedBuffers++
			}
			p.pol.observeVerdict(miss)
		}
	}
}

// Close ends the stream: the prefilter's zero-filled tail and the bank
// session's remaining tail blocks are delivered, then every consumer's
// Finish runs. Close is idempotent; Push panics afterwards.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	// A shed window still pending at end of stream replays now: data
	// loss never exceeds what the policy decided at capture time.
	if p.pol != nil {
		p.flushShed()
		p.pol.disengage()
	}
	if p.fir != nil {
		// BandLimit zero-fills the last delay samples (the causal filter
		// output past the raw stream end is discarded with the group-delay
		// shift): emit them so lag counts match the one-shot path.
		zeros := min(p.delay, p.rawFed)
		p.deliver(make([]float64, zeros))
	}
	p.fanOut(p.bs.Flush())
	p.closed = true
	for _, c := range p.consumers {
		c.Finish()
	}
	p.fbuf, p.fout, p.tail = nil, nil, nil
}

// Deadline reports the meter's aggregated per-buffer headroom; the zero
// report when no Meter is configured.
func (p *Pipeline) Deadline() DeadlineReport {
	if p.cfg.Meter == nil {
		return DeadlineReport{}
	}
	return p.cfg.Meter.Report()
}

// PolicyReport summarizes the pipeline's backpressure activity; the
// zero report when no policy is configured.
func (p *Pipeline) PolicyReport() PolicyReport {
	if p.pol == nil {
		return PolicyReport{}
	}
	return p.pol.rep
}

// flushShed replays the current shed window in capture order: absorbed
// raw buffers first (PolicyQueue), then the silence owed for dropped
// samples — both through the normal prefilter + scan path, so the
// sample grid and every downstream lag index stay exact.
func (p *Pipeline) flushShed() {
	queued, zeros := p.pol.drain()
	for _, q := range queued {
		filt := q
		if p.fir != nil {
			filt = p.filter(q)
		}
		p.deliver(filt)
	}
	p.pol.recycle(queued)
	if zeros > 0 && p.zeroScratch == nil {
		p.zeroScratch = make([]float64, 4096)
	}
	for zeros > 0 {
		n := min(zeros, len(p.zeroScratch))
		filt := p.zeroScratch[:n]
		if p.fir != nil {
			filt = p.filter(p.zeroScratch[:n])
		}
		p.deliver(filt)
		zeros -= n
	}
}

// deliver hands one filtered buffer to the chunk consumers, advances the
// shared bank scan and fans the emitted lags out.
func (p *Pipeline) deliver(filt []float64) {
	for _, c := range p.chunkCons {
		c.Chunk(filt)
	}
	p.fanOut(p.bs.Feed(filt))
}

// fanOut delivers each template's non-empty lag row to every consumer.
// Rows alias bank-session buffers valid only for the duration of the
// call, so consumers reduce immediately or copy.
func (p *Pipeline) fanOut(rows [][]float64) {
	for i, row := range rows {
		if len(row) == 0 {
			continue
		}
		for _, c := range p.consumers {
			c.Lags(i, row)
		}
	}
}

// filter runs the streaming band-pass: causal direct-form FIR with
// carried history, arithmetic identical to dsp.Filter sample for sample,
// followed by the group-delay drop of the first delay outputs. The
// returned slice aliases pipeline scratch, valid until the next call.
func (p *Pipeline) filter(chunk []float64) []float64 {
	n := len(chunk)
	if cap(p.fbuf) < p.tailLen+n {
		p.fbuf = make([]float64, p.tailLen+n)
	}
	p.fbuf = p.fbuf[:p.tailLen+n]
	copy(p.fbuf, p.tail[:p.tailLen])
	copy(p.fbuf[p.tailLen:], chunk)
	if cap(p.fout) < n {
		p.fout = make([]float64, n)
	}
	p.fout = p.fout[:n]
	for j := 0; j < n; j++ {
		m := p.rawFed + j // global causal output index
		kmax := len(p.fir)
		if m+1 < kmax {
			kmax = m + 1
		}
		base := p.tailLen + j
		var sum float64
		for k := 0; k < kmax; k++ {
			sum += p.fir[k] * p.fbuf[base-k]
		}
		p.fout[j] = sum
	}
	p.rawFed += n
	keep := len(p.fir) - 1
	if keep > p.rawFed {
		keep = p.rawFed
	}
	copy(p.tail, p.fbuf[len(p.fbuf)-keep:])
	p.tailLen = keep
	// Group-delay compensation: causal outputs before index delay fall off
	// the front of the one-shot BandLimit result.
	skip := p.delay - (p.rawFed - n)
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	return p.fout[skip:]
}
