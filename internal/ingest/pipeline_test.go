package ingest_test

import (
	"math"
	"math/rand"
	"testing"

	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
)

// noiseStream returns a deterministic pseudo-random stream.
func noiseStream(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// testBank builds a three-template bank (two chirps and a short tone
// burst of distinct lengths) — the shared-scan shape of a real round.
func testBank(fs float64) *dsp.MatcherBank {
	t0 := sig.LinearChirp(1000, 5000, 2048, fs)
	t1 := sig.LinearChirp(5000, 1000, 1536, fs)
	t2 := sig.LinearChirp(2000, 2000, 512, fs)
	return dsp.NewMatcherBank(dsp.NewMatcher(t0), dsp.NewMatcher(t1), dsp.NewMatcher(t2))
}

// feedPartition pushes stream through the pipeline cut at the given
// boundaries, then closes it.
func feedPartition(p *ingest.Pipeline, stream []float64, cuts []int) {
	prev := 0
	for _, c := range cuts {
		p.Push(stream[prev:c])
		prev = c
	}
	p.Push(stream[prev:])
	p.Close()
}

// randomCuts returns sorted cut points over [0, n] including degenerate
// (empty-chunk) repeats.
func randomCuts(rng *rand.Rand, n, k int) []int {
	cuts := make([]int, k)
	for i := range cuts {
		cuts[i] = rng.Intn(n + 1)
	}
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return cuts
}

// TestPipelineMatchesOneShot: for any buffer partition, every template's
// collected correlation is bit-identical to the one-shot bank scan, in
// both plain and normalized modes.
func TestPipelineMatchesOneShot(t *testing.T) {
	const fs = 44100.0
	bank := testBank(fs)
	stream := noiseStream(30000, 11)
	copy(stream[4000:], bank.Matcher(0).Template())
	copy(stream[12000:], bank.Matcher(1).Template())
	rng := rand.New(rand.NewSource(7))
	for _, normalized := range []bool{false, true} {
		var want [][]float64
		if normalized {
			want = bank.NormalizedCrossCorrelateAll(stream)
		} else {
			want = bank.CrossCorrelateAll(stream)
		}
		for trial := 0; trial < 8; trial++ {
			pipe := ingest.New(ingest.Config{Bank: bank, Normalized: normalized})
			cols := make([]*ingest.Collect, bank.Len())
			for i := range cols {
				cols[i] = ingest.NewCollect(i, 0)
				pipe.Register(cols[i])
			}
			feedPartition(pipe, stream, randomCuts(rng, len(stream), 1+rng.Intn(20)))
			for i, col := range cols {
				got := col.Corr()
				if len(got) != len(want[i]) {
					t.Fatalf("normalized=%v trial %d template %d: %d lags, want %d",
						normalized, trial, i, len(got), len(want[i]))
				}
				for j := range got {
					if got[j] != want[i][j] && !(math.IsNaN(got[j]) && math.IsNaN(want[i][j])) {
						t.Fatalf("normalized=%v trial %d template %d lag %d: %g != %g",
							normalized, trial, i, j, got[j], want[i][j])
					}
				}
			}
		}
	}
}

// TestPipelinePrefilterMatchesBandLimit: the streaming prefilter's output,
// observed via a chunk consumer, is bit-identical to one-shot
// sig.BandLimit — and the correlation matches scanning that band-limited
// stream directly.
func TestPipelinePrefilterMatchesBandLimit(t *testing.T) {
	const fs, lo, hi = 44100.0, 1000.0, 5000.0
	bank := testBank(fs)
	stream := noiseStream(25000, 3)
	filtered := sig.BandLimit(stream, lo, hi, fs)
	want := bank.NormalizedCrossCorrelateAll(filtered)

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		pipe := ingest.New(ingest.Config{
			Bank:       bank,
			Normalized: true,
			Prefilter:  sig.BandLimitFIR(lo, hi, fs),
		})
		col := ingest.NewCollect(0, 0)
		tap := &chunkTap{}
		pipe.Register(col)
		pipe.Register(tap)
		feedPartition(pipe, stream, randomCuts(rng, len(stream), 1+rng.Intn(16)))
		if len(tap.samples) != len(filtered) {
			t.Fatalf("trial %d: %d filtered samples, want %d", trial, len(tap.samples), len(filtered))
		}
		for i := range tap.samples {
			if tap.samples[i] != filtered[i] {
				t.Fatalf("trial %d: filtered sample %d: %g != %g", trial, i, tap.samples[i], filtered[i])
			}
		}
		got := col.Corr()
		if len(got) != len(want[0]) {
			t.Fatalf("trial %d: %d lags, want %d", trial, len(got), len(want[0]))
		}
		for j := range got {
			if got[j] != want[0][j] {
				t.Fatalf("trial %d lag %d: %g != %g", trial, j, got[j], want[0][j])
			}
		}
	}
}

// chunkTap records the filtered stream a pipeline delivers.
type chunkTap struct{ samples []float64 }

func (c *chunkTap) Chunk(samples []float64) { c.samples = append(c.samples, samples...) }
func (c *chunkTap) Lags(int, []float64)     {}
func (c *chunkTap) Finish()                 {}

// TestPipelineSharedScanCount: the number of forward transforms is one
// per correlation block regardless of how many consumers are registered —
// the "one shared scan" invariant.
func TestPipelineSharedScanCount(t *testing.T) {
	const fs = 44100.0
	bank := testBank(fs)
	stream := noiseStream(40000, 5)

	countScan := func(consumers int) uint64 {
		pipe := ingest.New(ingest.Config{Bank: bank, Normalized: true})
		for i := 0; i < consumers; i++ {
			pipe.Register(ingest.NewArgMax(i % bank.Len()))
		}
		before := dsp.BankForwardTransforms()
		for off := 0; off < len(stream); off += 4096 {
			pipe.Push(stream[off:min(off+4096, len(stream))])
		}
		pipe.Close()
		return dsp.BankForwardTransforms() - before
	}

	one := countScan(1)
	three := countScan(3)
	if one == 0 {
		t.Fatal("no forward transforms counted")
	}
	if three != one {
		t.Fatalf("3 consumers cost %d forward transforms, 1 consumer cost %d — scan not shared", three, one)
	}
	// Three independent single-consumer pipelines (the legacy shape) pay
	// three times the shared cost.
	var independent uint64
	for i := 0; i < 3; i++ {
		independent += countScan(1)
	}
	if independent != 3*one {
		t.Fatalf("independent scans cost %d, want %d", independent, 3*one)
	}
}

// TestPipelineSteadyStateAllocs: after warmup, pushing buffers through a
// fully loaded pipeline (prefiltered detection + argmax + reserved
// collector + deadline meter) allocates nothing.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	const fs = 44100.0
	p := sig.DefaultParams()
	det := ranging.NewDetector(p, ranging.DetectorConfig{DisablePrefilter: true})
	bank := dsp.NewMatcherBank(
		dsp.NewMatcher(det.Template()),
		dsp.NewMatcher(sig.LinearChirp(1000, 5000, 2048, fs)),
	)
	const chunk = 4096
	const chunks = 256
	pipe := ingest.New(ingest.Config{
		Bank:       bank,
		Normalized: true,
		SampleRate: fs,
		Prefilter:  sig.BandLimitFIR(1000, 5000, fs),
		Meter:      ingest.NewMeter(1.0),
	})
	pipe.Register(det.Consumer(0))
	pipe.Register(ingest.NewArgMax(1))
	col := ingest.NewCollect(1, chunk*chunks)
	defer col.Release()
	pipe.Register(col)

	stream := noiseStream(chunk*chunks, 21)
	next := 0
	push := func() {
		pipe.Push(stream[next : next+chunk])
		next += chunk
	}
	// Warmup: size the filter scratch, the bank session's block buffers and
	// the detector's validation window.
	for i := 0; i < 32; i++ {
		push()
	}
	if allocs := testing.AllocsPerRun(100, push); allocs != 0 {
		t.Fatalf("steady-state Push allocates %.1f times per buffer, want 0", allocs)
	}
}

// TestPipelinePanics: construction and lifecycle misuse fail loudly.
func TestPipelinePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil bank", func() { ingest.New(ingest.Config{}) })
	expectPanic("meter without rate", func() {
		ingest.New(ingest.Config{Bank: testBank(44100), Meter: ingest.NewMeter(1.0)})
	})
	expectPanic("push after close", func() {
		pipe := ingest.New(ingest.Config{Bank: testBank(44100)})
		pipe.Close()
		pipe.Push([]float64{1})
	})
}

// TestPipelineFedAndFinish: Fed tracks raw samples through the prefilter
// path, Close is idempotent, and Finish runs exactly once per consumer.
func TestPipelineFedAndFinish(t *testing.T) {
	const fs = 44100.0
	pipe := ingest.New(ingest.Config{
		Bank:      testBank(fs),
		Prefilter: sig.BandLimitFIR(1000, 5000, fs),
	})
	fin := &finishCounter{}
	pipe.Register(fin)
	pipe.Push(make([]float64, 1000))
	pipe.Push(nil)
	if pipe.Fed() != 1000 {
		t.Fatalf("Fed = %d, want 1000", pipe.Fed())
	}
	pipe.Close()
	pipe.Close()
	if fin.n != 1 {
		t.Fatalf("Finish ran %d times, want 1", fin.n)
	}
}

type finishCounter struct{ n int }

func (f *finishCounter) Lags(int, []float64) {}
func (f *finishCounter) Finish()             { f.n++ }

// TestArgMaxSemantics: first strict maximum wins; NaNs never win; empty
// input reports index -1.
func TestArgMaxSemantics(t *testing.T) {
	a := ingest.NewArgMax(0)
	if idx, _ := a.Best(); idx != -1 || a.Count() != 0 {
		t.Fatalf("fresh ArgMax: idx %d count %d", idx, a.Count())
	}
	a.Lags(1, []float64{99}) // other template: ignored
	a.Lags(0, []float64{1, math.NaN(), 5, 5, 2})
	a.Lags(0, []float64{5, 7})
	idx, val := a.Best()
	if idx != 6 || val != 7 || a.Count() != 7 {
		t.Fatalf("got idx %d val %g count %d, want 6 7 7", idx, val, a.Count())
	}
	nan := ingest.NewArgMax(0)
	nan.Lags(0, []float64{math.NaN(), math.NaN()})
	if idx, _ := nan.Best(); idx != -1 {
		t.Fatalf("all-NaN stream: idx %d, want -1", idx)
	}
}

// TestCollectPooled: a reserved collector accumulates across calls and
// filters by template; Release is idempotent.
func TestCollectPooled(t *testing.T) {
	c := ingest.NewCollect(1, 8)
	c.Lags(0, []float64{9, 9})
	c.Lags(1, []float64{1, 2})
	c.Lags(1, []float64{3})
	got := c.Corr()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("collected %v, want [1 2 3]", got)
	}
	c.Release()
	c.Release()
	if c.Corr() != nil {
		t.Fatal("Corr non-nil after Release")
	}
}
