package ingest

// Backpressure: what a pipeline does when the deadline meter says it is
// not keeping up with capture. The decision signal is the Meter's
// per-buffer budget verdict — EngageMisses consecutive over-budget
// buffers engage the policy, and the policy's own recovery rule
// disengages it — so the shedding schedule is a deterministic function
// of the miss pattern, never of a second clock.
//
// Three shedding modes, by what they sacrifice:
//
//   - PolicyDrop sacrifices data for immediate relief: shed buffers are
//     recorded as silence. The sample grid is preserved — the zeros are
//     delivered in one bulk catch-up at recovery — so downstream lag
//     indices and timing stay exact; the signal in the shed window is
//     simply gone, as with a real overrun capture driver.
//   - PolicyQueue sacrifices latency but not data: shed buffers are
//     absorbed raw into a bounded queue and replayed through the full
//     path at recovery. Past QueueDepth buffers the queue is full and
//     further buffers drop to silence like PolicyDrop.
//   - PolicyDegrade sacrifices nothing but honesty: every buffer is
//     still processed; the pipeline just flags itself degraded so the
//     layer above (e.g. a positioning round) can widen its error bars.
//
// The processing relief of Drop/Queue is real but deferred, not free:
// the capture-time cost of a shed buffer is bookkeeping, and the
// correlation work happens in one batch at recovery when the meter says
// there is headroom again.

// PolicyMode selects the shedding behavior of an over-budget pipeline.
type PolicyMode int

const (
	// PolicyNone disables backpressure (the zero value): the pipeline
	// processes every buffer no matter how far over budget it runs.
	PolicyNone PolicyMode = iota
	// PolicyDrop sheds over-budget stretches as recorded silence.
	PolicyDrop
	// PolicyQueue absorbs over-budget stretches into a bounded queue and
	// replays them at recovery; overflow drops to silence.
	PolicyQueue
	// PolicyDegrade keeps processing and raises the Degraded flag.
	PolicyDegrade
)

var policyNames = [...]string{"none", "drop", "queue", "degrade"}

func (m PolicyMode) String() string {
	if m < 0 || int(m) >= len(policyNames) {
		return "policy(?)"
	}
	return policyNames[m]
}

// Policy configures backpressure. The zero value disables it.
type Policy struct {
	// Mode selects what an engaged policy sheds.
	Mode PolicyMode
	// EngageMisses is how many consecutive over-budget buffers engage
	// shedding (default 3). One slow buffer is noise; a streak is load.
	EngageMisses int
	// RecoverHits controls disengagement. For Drop/Queue it is the number
	// of buffers shed before the pipeline retries normal processing; for
	// Degrade it is the number of consecutive within-budget buffers that
	// clear the flag (default 8).
	RecoverHits int
	// QueueDepth bounds the PolicyQueue absorption, in buffers
	// (default 16).
	QueueDepth int
}

func (p Policy) withDefaults() Policy {
	if p.EngageMisses <= 0 {
		p.EngageMisses = 3
	}
	if p.RecoverHits <= 0 {
		p.RecoverHits = 8
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 16
	}
	return p
}

// PolicyReport summarizes a pipeline's backpressure activity.
type PolicyReport struct {
	Mode PolicyMode
	// Engaged reports whether shedding is active right now.
	Engaged bool
	// Engagements counts transitions into the engaged state.
	Engagements int
	// ShedBuffers counts buffers not processed at capture time
	// (dropped or queued).
	ShedBuffers int
	// DroppedSamples counts samples recorded as silence.
	DroppedSamples int
	// QueuedSamples counts samples absorbed and later replayed intact.
	QueuedSamples int
	// DegradedBuffers counts buffers processed under an engaged
	// PolicyDegrade.
	DegradedBuffers int
}

// policyState is the per-pipeline backpressure state machine.
type policyState struct {
	cfg     Policy
	engaged bool
	// missStreak / hitStreak drive engage / degrade-recover transitions.
	missStreak int
	hitStreak  int
	// shedCount counts buffers shed in the current engagement
	// (Drop/Queue recovery trigger).
	shedCount int

	// queue holds absorbed raw buffers (PolicyQueue); zeroDeficit is the
	// silence owed to the sample grid at the next flush.
	queue       [][]float64
	queueFree   [][]float64 // recycled buffer slabs
	zeroDeficit int

	rep PolicyReport
}

func newPolicyState(cfg Policy) *policyState {
	cfg = cfg.withDefaults()
	return &policyState{cfg: cfg, rep: PolicyReport{Mode: cfg.Mode}}
}

// shedsCapture reports whether the current state withholds buffers from
// processing (engaged Drop/Queue).
func (ps *policyState) shedsCapture() bool {
	return ps.engaged && (ps.cfg.Mode == PolicyDrop || ps.cfg.Mode == PolicyQueue)
}

// observeVerdict feeds one processed buffer's budget verdict through the
// state machine.
func (ps *policyState) observeVerdict(miss bool) {
	if miss {
		ps.missStreak++
		ps.hitStreak = 0
		if !ps.engaged && ps.missStreak >= ps.cfg.EngageMisses {
			ps.engage()
		}
		return
	}
	ps.hitStreak++
	ps.missStreak = 0
	if ps.engaged && ps.cfg.Mode == PolicyDegrade && ps.hitStreak >= ps.cfg.RecoverHits {
		ps.disengage()
	}
}

func (ps *policyState) engage() {
	ps.engaged = true
	ps.shedCount = 0
	ps.rep.Engagements++
	ps.rep.Engaged = true
}

func (ps *policyState) disengage() {
	ps.engaged = false
	ps.missStreak, ps.hitStreak, ps.shedCount = 0, 0, 0
	ps.rep.Engaged = false
}

// absorb takes one capture buffer while shedding: queue it (PolicyQueue,
// space permitting) or convert it to owed silence. Reports whether the
// engagement is over and the caller should flush.
func (ps *policyState) absorb(buf []float64) (recover bool) {
	ps.rep.ShedBuffers++
	ps.shedCount++
	if ps.cfg.Mode == PolicyQueue && len(ps.queue) < ps.cfg.QueueDepth {
		q := ps.takeSlab(len(buf))
		copy(q, buf)
		ps.queue = append(ps.queue, q)
		ps.rep.QueuedSamples += len(buf)
	} else {
		ps.zeroDeficit += len(buf)
		ps.rep.DroppedSamples += len(buf)
	}
	return ps.shedCount >= ps.cfg.RecoverHits
}

// takeSlab reuses a recycled queue slab when one is big enough.
func (ps *policyState) takeSlab(n int) []float64 {
	for i, s := range ps.queueFree {
		if cap(s) >= n {
			ps.queueFree[i] = ps.queueFree[len(ps.queueFree)-1]
			ps.queueFree = ps.queueFree[:len(ps.queueFree)-1]
			return s[:n]
		}
	}
	return make([]float64, n)
}

// drain returns the queued buffers and owed silence, resetting both; the
// caller replays them in capture order (queue first — overflow silence
// chronologically follows a full queue) and then calls recycle.
func (ps *policyState) drain() (queued [][]float64, zeros int) {
	queued, zeros = ps.queue, ps.zeroDeficit
	ps.queue, ps.zeroDeficit = ps.queue[:0], 0
	return queued, zeros
}

func (ps *policyState) recycle(bufs [][]float64) {
	ps.queueFree = append(ps.queueFree, bufs...)
}
