package ingest_test

import (
	"testing"
	"time"

	"uwpos/internal/faultinject"
	"uwpos/internal/ingest"
)

// Backpressure tests drive the policy with injected buffer latency:
// armed FaultBufferLatency consultations backdate the meter's start
// time, so the miss schedule — and therefore the shedding schedule —
// is exact and machine-independent. The correctness bar throughout is
// equivalence: a policy pipeline's output must be bit-identical to a
// plain pipeline fed the stream the policy semantically decided on
// (original samples where processed or queued, silence where dropped).

const (
	polFS  = 44100.0
	polBuf = 1024 // samples per pushed buffer
)

// polInjector returns an injector whose armed buffer-latency faults
// guarantee a budget miss at 10 s against real sub-second processing.
func polInjector() *faultinject.Injector {
	return faultinject.New(faultinject.Config{BufferLatency: 10 * time.Second})
}

// polStream is a deterministic noise stream with one template instance.
func polStream(nBuffers int) []float64 {
	bank := testBank(polFS)
	stream := noiseStream(nBuffers*polBuf, 23)
	copy(stream[2*polBuf:], bank.Matcher(0).Template())
	return stream
}

// collectAll runs stream through a pipeline in polBuf buffers and
// returns each template's collected lags.
func collectAll(p *ingest.Pipeline, nTemplates int, stream []float64) [][]float64 {
	cols := make([]*ingest.Collect, nTemplates)
	for i := range cols {
		cols[i] = ingest.NewCollect(i, len(stream))
		p.Register(cols[i])
	}
	for off := 0; off < len(stream); off += polBuf {
		p.Push(stream[off : off+polBuf])
	}
	p.Close()
	out := make([][]float64, nTemplates)
	for i, c := range cols {
		out[i] = c.Corr()
	}
	return out
}

// zeroBuffers returns a copy of stream with buffers [from, to) silenced.
func zeroBuffers(stream []float64, from, to int) []float64 {
	out := append([]float64(nil), stream...)
	for i := from * polBuf; i < to*polBuf && i < len(out); i++ {
		out[i] = 0
	}
	return out
}

func assertSameLags(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d templates", label, len(got), len(want))
	}
	for tpl := range want {
		if len(got[tpl]) != len(want[tpl]) {
			t.Fatalf("%s: template %d lag count %d vs %d", label, tpl, len(got[tpl]), len(want[tpl]))
		}
		for i := range want[tpl] {
			if got[tpl][i] != want[tpl][i] {
				t.Fatalf("%s: template %d lag %d differs: %g vs %g",
					label, tpl, i, got[tpl][i], want[tpl][i])
			}
		}
	}
}

// TestPolicyDropShedsToSilence: three consecutive misses engage the
// policy; the next RecoverHits buffers are dropped; output equals a
// plain pipeline fed the same stream with that window silenced.
func TestPolicyDropShedsToSilence(t *testing.T) {
	const nBuffers = 24
	bank := testBank(polFS)
	stream := polStream(nBuffers)

	inj := polInjector()
	inj.Arm(faultinject.FaultBufferLatency, 3) // buffers 0..2 miss
	pol := ingest.Policy{Mode: ingest.PolicyDrop, EngageMisses: 3, RecoverHits: 5}
	p := ingest.New(ingest.Config{
		Bank: bank, SampleRate: polFS,
		Meter: ingest.NewMeter(5.0), Policy: pol, Injector: inj,
	})
	got := collectAll(p, bank.Len(), stream)

	// Engagement lands on buffer 2's verdict, so buffers 3..7 shed.
	ref := ingest.New(ingest.Config{Bank: bank})
	want := collectAll(ref, bank.Len(), zeroBuffers(stream, 3, 8))
	assertSameLags(t, got, want, "drop")

	rep := p.PolicyReport()
	if rep.Mode != ingest.PolicyDrop || rep.Engagements != 1 || rep.Engaged {
		t.Fatalf("report %+v", rep)
	}
	if rep.ShedBuffers != 5 || rep.DroppedSamples != 5*polBuf || rep.QueuedSamples != 0 {
		t.Fatalf("shed accounting %+v", rep)
	}
}

// TestPolicyQueueLosesNothing: with room in the queue, the shed window
// replays intact — output identical to the unmodified stream.
func TestPolicyQueueLosesNothing(t *testing.T) {
	const nBuffers = 24
	bank := testBank(polFS)
	stream := polStream(nBuffers)

	inj := polInjector()
	inj.Arm(faultinject.FaultBufferLatency, 3)
	pol := ingest.Policy{Mode: ingest.PolicyQueue, EngageMisses: 3, RecoverHits: 4, QueueDepth: 8}
	p := ingest.New(ingest.Config{
		Bank: bank, SampleRate: polFS,
		Meter: ingest.NewMeter(5.0), Policy: pol, Injector: inj,
	})
	got := collectAll(p, bank.Len(), stream)

	ref := ingest.New(ingest.Config{Bank: bank})
	want := collectAll(ref, bank.Len(), stream)
	assertSameLags(t, got, want, "queue")

	rep := p.PolicyReport()
	if rep.ShedBuffers != 4 || rep.QueuedSamples != 4*polBuf || rep.DroppedSamples != 0 {
		t.Fatalf("queue accounting %+v", rep)
	}
}

// TestPolicyQueueOverflowDropsTail: a full queue degrades chronologically
// to silence — the first QueueDepth shed buffers survive, the rest drop.
func TestPolicyQueueOverflowDropsTail(t *testing.T) {
	const nBuffers = 24
	bank := testBank(polFS)
	stream := polStream(nBuffers)

	inj := polInjector()
	inj.Arm(faultinject.FaultBufferLatency, 3)
	pol := ingest.Policy{Mode: ingest.PolicyQueue, EngageMisses: 3, RecoverHits: 6, QueueDepth: 2}
	p := ingest.New(ingest.Config{
		Bank: bank, SampleRate: polFS,
		Meter: ingest.NewMeter(5.0), Policy: pol, Injector: inj,
	})
	got := collectAll(p, bank.Len(), stream)

	// Shed window is buffers 3..8: 3 and 4 queue (replay intact),
	// 5..8 overflow to silence.
	ref := ingest.New(ingest.Config{Bank: bank})
	want := collectAll(ref, bank.Len(), zeroBuffers(stream, 5, 9))
	assertSameLags(t, got, want, "overflow")

	rep := p.PolicyReport()
	if rep.QueuedSamples != 2*polBuf || rep.DroppedSamples != 4*polBuf {
		t.Fatalf("overflow accounting %+v", rep)
	}
}

// TestPolicyDegradeKeepsData: degrade mode processes everything —
// output identical to no policy — and the flag raises on the miss
// streak, clears after RecoverHits clean buffers.
func TestPolicyDegradeKeepsData(t *testing.T) {
	const nBuffers = 16
	bank := testBank(polFS)
	stream := polStream(nBuffers)

	inj := polInjector()
	inj.Arm(faultinject.FaultBufferLatency, 3)
	pol := ingest.Policy{Mode: ingest.PolicyDegrade, EngageMisses: 3, RecoverHits: 4}
	p := ingest.New(ingest.Config{
		Bank: bank, SampleRate: polFS,
		Meter: ingest.NewMeter(5.0), Policy: pol, Injector: inj,
	})
	got := collectAll(p, bank.Len(), stream)

	ref := ingest.New(ingest.Config{Bank: bank})
	want := collectAll(ref, bank.Len(), stream)
	assertSameLags(t, got, want, "degrade")

	rep := p.PolicyReport()
	if rep.Engagements != 1 || rep.Engaged {
		t.Fatalf("report %+v", rep)
	}
	// Engaged on buffer 2's verdict; buffers 3..6 process degraded and
	// their 4 consecutive hits clear the flag.
	if rep.DegradedBuffers != 4 || rep.DroppedSamples != 0 || rep.ShedBuffers != 0 {
		t.Fatalf("degrade accounting %+v", rep)
	}
}

// TestPolicyCloseFlushesShedWindow: a stream that ends mid-engagement
// still delivers every queued sample and owed zero at Close — lag
// counts match the one-shot scan exactly.
func TestPolicyCloseFlushesShedWindow(t *testing.T) {
	const nBuffers = 8
	bank := testBank(polFS)
	stream := polStream(nBuffers)

	inj := polInjector()
	inj.Arm(faultinject.FaultBufferLatency, 3)
	// RecoverHits larger than the remaining stream: Close must flush.
	pol := ingest.Policy{Mode: ingest.PolicyQueue, EngageMisses: 3, RecoverHits: 100, QueueDepth: 3}
	p := ingest.New(ingest.Config{
		Bank: bank, SampleRate: polFS,
		Meter: ingest.NewMeter(5.0), Policy: pol, Injector: inj,
	})
	got := collectAll(p, bank.Len(), stream)

	// Shed window is buffers 3..7: 3 queued buffers replay, 2 drop.
	ref := ingest.New(ingest.Config{Bank: bank})
	want := collectAll(ref, bank.Len(), zeroBuffers(stream, 6, 8))
	assertSameLags(t, got, want, "close-flush")

	rep := p.PolicyReport()
	if rep.ShedBuffers != 5 || rep.QueuedSamples != 3*polBuf || rep.DroppedSamples != 2*polBuf {
		t.Fatalf("close-flush accounting %+v", rep)
	}
}
