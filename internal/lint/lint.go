// Package lint holds a repo-local API-shape check: every exported
// function in the public uwpos package that can fail (returns error) must
// accept a context.Context as its first parameter, so callers — above
// all the uwposd service — can always bound it with a deadline. The
// check runs as an ordinary test (see lint_test.go), keeping it inside
// `go test ./...` without external analyzer tooling.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Exemption says why a function may skip the ctx-first rule.
type Exemption string

// Exemption classes. Constructors and pure in-memory state updates have
// nothing to cancel; deprecated wrappers are frozen by compatibility.
const (
	ExemptConstructor Exemption = "constructor"
	ExemptDeprecated  Exemption = "deprecated"
	ExemptAllowlisted Exemption = "allowlisted"
)

// Report is the outcome of checking one package directory.
type Report struct {
	// Violations lists exported error-returning functions without a
	// leading context.Context, formatted "file:line: name".
	Violations []string
	// CtxFirst lists the names ("Func" or "Type.Method") that do take a
	// context first — the data behind required-function assertions.
	CtxFirst map[string]bool
}

// Check parses every non-test .go file in dir as one package and applies
// the rule. allow maps "Func" or "Type.Method" names to an explanation;
// allowlisted functions are exempt.
func Check(dir string, allow map[string]string) (*Report, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	rep := &Report{CtxFirst: map[string]bool{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() {
					continue
				}
				name := qualifiedName(fn)
				if name == "" {
					continue // method on unexported type: not public API
				}
				if takesCtxFirst(fn) {
					rep.CtxFirst[name] = true
					continue
				}
				if !returnsError(fn) {
					continue
				}
				if _, ok := exemption(fn, name, allow); ok {
					continue
				}
				pos := fset.Position(fn.Pos())
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s:%d: %s returns error without a leading context.Context", pos.Filename, pos.Line, name))
			}
		}
	}
	sort.Strings(rep.Violations)
	return rep, nil
}

// qualifiedName renders "Func" for functions and "Type.Method" for
// methods on exported types ("" for methods on unexported types).
func qualifiedName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || !id.IsExported() {
		return ""
	}
	return id.Name + "." + fn.Name.Name
}

// takesCtxFirst reports whether the first parameter's type is written
// context.Context.
func takesCtxFirst(fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

// returnsError reports whether any result type is the identifier error.
func returnsError(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil {
		return false
	}
	for _, f := range res.List {
		if id, ok := f.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// exemption classifies a non-conforming function as exempt, if it is.
func exemption(fn *ast.FuncDecl, name string, allow map[string]string) (Exemption, bool) {
	if strings.HasPrefix(fn.Name.Name, "New") {
		return ExemptConstructor, true
	}
	if fn.Doc != nil && strings.Contains(fn.Doc.Text(), "Deprecated:") {
		return ExemptDeprecated, true
	}
	if _, ok := allow[name]; ok {
		return ExemptAllowlisted, true
	}
	return "", false
}
