package lint

import (
	"strings"
	"testing"
)

// allowlist names the error-returning public functions that legitimately
// skip the context-first rule, with the reason on record.
var allowlist = map[string]string{
	"EnvironmentByName":            "pure map lookup, nothing to cancel",
	"GroupTracker.AddRound":        "in-memory filter update, microseconds",
	"System.Checkpoint":            "reads one in-memory counter",
	"GroupTracker.MarshalBinary":   "encoding.BinaryMarshaler interface shape, in-memory",
	"GroupTracker.UnmarshalBinary": "encoding.BinaryUnmarshaler interface shape, in-memory",
}

// TestPublicAPITakesContext is the vet-level gate from the service work:
// no exported uwpos function that can fail may lack a context.Context
// first parameter, so every failure path a server depends on is
// deadline-boundable.
func TestPublicAPITakesContext(t *testing.T) {
	rep, err := Check("../..", allowlist)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("public API: %s", v)
	}

	// The entry points the daemon and batch layers rely on must stay
	// context-first — a rename or signature regression fails here even
	// if the rule above would exempt the new shape.
	for _, name := range []string{
		"Localize",
		"RangeBetween",
		"System.Locate",
		"System.LocateN",
		"Batch",
	} {
		if !rep.CtxFirst[name] {
			t.Errorf("%s no longer takes context.Context first", name)
		}
	}
}

// TestCheckFlagsViolations proves the analyzer actually fires: the sim
// package predates the rule in places and is not public API, but any
// exported error-returning function there without ctx must be reported
// when checked directly.
func TestCheckSelfConsistency(t *testing.T) {
	rep, err := Check("../..", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without the allowlist the two exempted-by-list functions become
	// violations — the analyzer is not vacuously green.
	found := 0
	for _, v := range rep.Violations {
		if strings.Contains(v, "EnvironmentByName") || strings.Contains(v, "GroupTracker.AddRound") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("expected the 2 allowlisted functions to be flagged without the allowlist, got %d in %v",
			found, rep.Violations)
	}
}
