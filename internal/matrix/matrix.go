// Package matrix provides the small dense linear-algebra kernel used by the
// multidimensional-scaling solver: matrix arithmetic, a cyclic Jacobi
// symmetric eigendecomposition and the Moore–Penrose pseudo-inverse.
//
// The positioning problem works with matrices of size N×N where N is the
// number of divers (≤ ~10), so clarity wins over blocking/SIMD tricks.
package matrix

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must be equal length.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Mat) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%9.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Mul returns a×b. Panics on shape mismatch.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowO := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowO[j] += av * bv
			}
		}
	}
	return out
}

// Reset reshapes m to rows×cols and zeroes its contents, reusing the
// backing slice when it is large enough — the scratch-reuse primitive for
// iterative algorithms that would otherwise allocate per iteration.
func (m *Mat) Reset(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
}

// MulInto computes a·b into dst (reshaped to fit), reusing dst's backing
// storage. The accumulation order matches Mul exactly, so results are bit
// for bit identical. dst must not alias a or b.
func MulInto(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulInto shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reset(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowO := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range rowB {
				rowO[j] += av * bv
			}
		}
	}
	return dst
}

// Transpose returns the transpose of m.
func Transpose(m *Mat) *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Scale returns s·m as a new matrix.
func Scale(m *Mat, s float64) *Mat {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Sub returns a−b.
func Sub(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: Sub shape mismatch")
	}
	out := New(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// MaxAbsDiff returns max |a_ij − b_ij|, a convergence metric.
func MaxAbsDiff(a, b *Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// IsSymmetric reports whether m is square and symmetric within tol.
func IsSymmetric(m *Mat, tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// EigSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matrix of corresponding eigenvectors in columns (A = V Λ Vᵀ).
// Panics if a is not square; symmetry is assumed (the upper triangle wins).
func EigSym(a *Mat) (vals []float64, vecs *Mat) {
	if a.Rows != a.Cols {
		panic("matrix: EigSym needs a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	// Force symmetry from the upper triangle to guard against drift.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			w.Set(j, i, v)
		}
	}
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,θ)ᵀ W J(p,q,θ).
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenvalues (and columns of v) in descending order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sorted := make([]float64, n)
	vecs = New(n, n)
	for c2, idx := range order {
		sorted[c2] = vals[idx]
		for r := 0; r < n; r++ {
			vecs.Set(r, c2, v.At(r, idx))
		}
	}
	return sorted, vecs
}

// PseudoInverse computes the Moore–Penrose pseudo-inverse of a symmetric
// matrix via its eigendecomposition, dropping eigenvalues with
// |λ| <= tol·max|λ|. This is exactly what weighted SMACOF needs for V⁺,
// whose null space is the all-ones translation direction.
func PseudoInverse(a *Mat, tol float64) *Mat {
	vals, vecs := EigSym(a)
	n := len(vals)
	var maxAbs float64
	for _, v := range vals {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	cut := tol * maxAbs
	out := New(n, n)
	for k := 0; k < n; k++ {
		if math.Abs(vals[k]) <= cut || vals[k] == 0 {
			continue
		}
		inv := 1 / vals[k]
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Add(i, j, inv*vik*vecs.At(j, k))
			}
		}
	}
	return out
}

// SolveSPD solves A x = b for symmetric positive-definite A by Cholesky
// decomposition. Returns an error if A is not SPD within tolerance.
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("matrix: SolveSPD shape mismatch (%dx%d, b %d)", a.Rows, a.Cols, len(b))
	}
	// Cholesky: A = L Lᵀ.
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix: not positive definite at pivot %d (%g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// DoubleCenter applies the classical-MDS double-centering transform
// B = −½ J D² J with J = I − 11ᵀ/n, taking a matrix of *distances* and
// returning the centered inner-product (Gram) matrix.
func DoubleCenter(dist *Mat) *Mat {
	n := dist.Rows
	if dist.Cols != n {
		panic("matrix: DoubleCenter needs a square distance matrix")
	}
	sq := New(n, n)
	for i := range sq.Data {
		sq.Data[i] = dist.Data[i] * dist.Data[i]
	}
	rowMean := make([]float64, n)
	colMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := sq.At(i, j)
			rowMean[i] += v
			colMean[j] += v
			total += v
		}
	}
	fn := float64(n)
	for i := range rowMean {
		rowMean[i] /= fn
	}
	for j := range colMean {
		colMean[j] /= fn
	}
	total /= fn * fn
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, -0.5*(sq.At(i, j)-rowMean[i]-colMean[j]+total))
		}
	}
	return out
}
