package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(r *rand.Rand, n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randSym(r, 5)
	got := Mul(a, Identity(5))
	if MaxAbsDiff(got, a) > 1e-14 {
		t.Error("A·I != A")
	}
	got = Mul(Identity(5), a)
	if MaxAbsDiff(got, a) > 1e-14 {
		t.Error("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(got, want) > 1e-14 {
		t.Errorf("Mul result:\n%v", got)
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	vals, vecs := EigSym(a)
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("eigenvalue %d = %g, want %g", i, vals[i], want[i])
		}
	}
	// Eigenvectors must be orthonormal.
	vtv := Mul(Transpose(vecs), vecs)
	if MaxAbsDiff(vtv, Identity(3)) > 1e-10 {
		t.Error("eigenvectors not orthonormal")
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigSym(a)
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
}

func TestEigSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(uint(seed)%7)
		a := randSym(r, n)
		vals, vecs := EigSym(a)
		// Reconstruct V Λ Vᵀ.
		lam := New(n, n)
		for i, v := range vals {
			lam.Set(i, i, v)
		}
		rec := Mul(Mul(vecs, lam), Transpose(vecs))
		return MaxAbsDiff(rec, a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigSymDescendingOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals, _ := EigSym(randSym(r, 8))
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestPseudoInverseFullRank(t *testing.T) {
	// For an invertible symmetric matrix, pinv == inverse.
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	pinv := PseudoInverse(a, 1e-12)
	prod := Mul(a, pinv)
	if MaxAbsDiff(prod, Identity(2)) > 1e-10 {
		t.Errorf("A·A+ != I:\n%v", prod)
	}
}

func TestPseudoInverseSingular(t *testing.T) {
	// Graph Laplacian of a path 0-1-2: singular with null space = ones.
	l := FromRows([][]float64{
		{1, -1, 0},
		{-1, 2, -1},
		{0, -1, 1},
	})
	p := PseudoInverse(l, 1e-10)
	// Moore–Penrose conditions: L P L == L and P L P == P.
	lpl := Mul(Mul(l, p), l)
	if MaxAbsDiff(lpl, l) > 1e-9 {
		t.Error("L P L != L")
	}
	plp := Mul(Mul(p, l), p)
	if MaxAbsDiff(plp, p) > 1e-9 {
		t.Error("P L P != P")
	}
	// Symmetry of products.
	lp := Mul(l, p)
	if !IsSymmetric(lp, 1e-9) {
		t.Error("L·P not symmetric")
	}
}

func TestPseudoInversePropertyRandomLaplacian(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(uint(seed)%5)
		// Random weighted Laplacian (always PSD, singular).
		l := New(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.7 {
					w := r.Float64() + 0.1
					l.Add(i, j, -w)
					l.Add(j, i, -w)
					l.Add(i, i, w)
					l.Add(j, j, w)
				}
			}
		}
		p := PseudoInverse(l, 1e-10)
		return MaxAbsDiff(Mul(Mul(l, p), l), l) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	b := []float64{10, 8}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Check A x == b.
	for i := 0; i < 2; i++ {
		got := a.At(i, 0)*x[0] + a.At(i, 1)*x[1]
		if math.Abs(got-b[i]) > 1e-10 {
			t.Errorf("residual at %d: %g", i, got-b[i])
		}
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	if _, err := SolveSPD(New(2, 2), []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDoubleCenterRecoversGeometry(t *testing.T) {
	// Points on a line: 0, 3, 7. Classical MDS via double centering should
	// produce a Gram matrix whose top eigenvalue reconstructs the spread.
	pts := []float64{0, 3, 7}
	n := len(pts)
	d := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, math.Abs(pts[i]-pts[j]))
		}
	}
	b := DoubleCenter(d)
	if !IsSymmetric(b, 1e-12) {
		t.Fatal("centered matrix not symmetric")
	}
	vals, vecs := EigSym(b)
	// Rank must be 1 for collinear points.
	if vals[0] < 1e-9 {
		t.Fatal("top eigenvalue vanished")
	}
	for _, v := range vals[1:] {
		if math.Abs(v) > 1e-9 {
			t.Errorf("spurious eigenvalue %g", v)
		}
	}
	// Reconstructed coordinates must reproduce distances.
	coord := make([]float64, n)
	s := math.Sqrt(vals[0])
	for i := 0; i < n; i++ {
		coord[i] = s * vecs.At(i, 0)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(math.Abs(coord[i]-coord[j])-d.At(i, j)) > 1e-9 {
				t.Fatalf("distance mismatch (%d,%d)", i, j)
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected ragged panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestScaleSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	s := Scale(a, 2)
	if s.At(1, 1) != 8 {
		t.Errorf("Scale = %v", s)
	}
	d := Sub(s, a)
	if MaxAbsDiff(d, a) > 1e-14 {
		t.Error("2A - A != A")
	}
}

func TestIsSymmetric(t *testing.T) {
	if IsSymmetric(New(2, 3), 0) {
		t.Error("non-square cannot be symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {2.0001, 1}})
	if IsSymmetric(a, 1e-6) {
		t.Error("asymmetric within tolerance")
	}
	if !IsSymmetric(a, 1e-3) {
		t.Error("should pass with loose tolerance")
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 0}, {-3, 0.5, 4}})
	b := FromRows([][]float64{{2, 0}, {1, -1}, {0.25, 8}})
	want := Mul(a, b)
	var dst Mat
	got := MulInto(&dst, a, b)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
	// Reuse with stale contents and a different shape must still match.
	MulInto(&dst, b, a)
	want2 := Mul(b, a)
	for i := range want2.Data {
		if dst.Data[i] != want2.Data[i] {
			t.Fatalf("reused dst element %d: %v != %v", i, dst.Data[i], want2.Data[i])
		}
	}
}

func TestReset(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Reset(1, 3)
	if m.Rows != 1 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Reset left residue at %d: %v", i, v)
		}
	}
}
