// Package mds implements weighted multidimensional scaling by majorization
// — the SMACOF algorithm of De Leeuw & Mair that §2.1.2 of the paper uses
// to turn (possibly incomplete) pairwise distances into a 2D topology.
package mds

import (
	"fmt"
	"math"
	"math/rand"

	"uwpos/internal/geom"
	"uwpos/internal/matrix"
)

// Options tunes the solver.
type Options struct {
	MaxIter int     // majorization iterations (default 200)
	Eps     float64 // relative stress-improvement stopping threshold (default 1e-9)
	// Rng drives the random initialization fallback; if nil a fixed-seed
	// source is used so results are reproducible.
	Rng *rand.Rand
	// InitConfig optionally seeds the iteration with given coordinates
	// (overrides classical-MDS initialization).
	InitConfig []geom.Vec2
	// Restarts adds this many extra runs from random initializations and
	// keeps the lowest-stress result; SMACOF is a local method and small
	// dive-group problems occasionally have deceptive minima. Default 2.
	// Set to −1 to disable restarts entirely.
	Restarts int
}

func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.Eps == 0 {
		o.Eps = 1e-9
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	}
}

// Result is the solver output.
type Result struct {
	Positions  []geom.Vec2 // estimated 2D configuration (centered at the weighted mean)
	Stress     float64     // raw stress σ = Σ w_ij (D_ij − d_ij)²
	NormStress float64     // sqrt(σ / Σ w_ij): RMS per-link residual in input units (metres)
	Iterations int
	Converged  bool
}

// Solve runs weighted SMACOF on the n×n dissimilarity matrix dist with
// symmetric non-negative weights w (0 marks a missing link). It returns an
// error for malformed input or when the weight graph leaves the problem
// degenerate (no links at all).
func Solve(dist, w [][]float64, opts Options) (Result, error) {
	n := len(dist)
	if n == 0 {
		return Result{}, fmt.Errorf("mds: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return Result{}, fmt.Errorf("mds: distance row %d has length %d, want %d", i, len(dist[i]), n)
		}
	}
	if len(w) != n {
		return Result{}, fmt.Errorf("mds: weight matrix size %d, want %d", len(w), n)
	}
	for i := range w {
		if len(w[i]) != n {
			return Result{}, fmt.Errorf("mds: weight row %d has length %d, want %d", i, len(w[i]), n)
		}
	}
	opts.defaults()
	var wsum float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w[i][j] < 0 {
				return Result{}, fmt.Errorf("mds: negative weight at (%d,%d)", i, j)
			}
			if w[i][j] > 0 && (math.IsNaN(dist[i][j]) || dist[i][j] < 0) {
				return Result{}, fmt.Errorf("mds: invalid distance %g at weighted link (%d,%d)", dist[i][j], i, j)
			}
			wsum += w[i][j]
		}
	}
	if wsum == 0 {
		return Result{}, fmt.Errorf("mds: all links missing")
	}
	if n == 1 {
		return Result{Positions: []geom.Vec2{{}}, Converged: true}, nil
	}

	// V = Σ w_ij (e_i−e_j)(e_i−e_j)ᵀ, the weight Laplacian; its
	// pseudo-inverse absorbs the translation null space.
	v := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			wij := symWeight(w, i, j)
			if wij <= 0 {
				continue
			}
			v.Add(i, j, -wij)
			v.Add(i, i, wij)
		}
	}
	vInv := matrix.PseudoInverse(v, 1e-10)

	// Scale for random restarts: the typical measured distance.
	var dSum float64
	var dCount int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if symWeight(w, i, j) > 0 {
				dSum += symDist(dist, i, j)
				dCount++
			}
		}
	}
	scale := dSum / float64(dCount)

	res := solveFrom(dist, w, initialConfig(dist, w, opts), vInv, opts)
	for r := 0; r < opts.Restarts; r++ {
		init := make([]geom.Vec2, n)
		for i := range init {
			init[i] = geom.Vec2{X: scale * opts.Rng.NormFloat64(), Y: scale * opts.Rng.NormFloat64()}
		}
		if alt := solveFrom(dist, w, init, vInv, opts); alt.Stress < res.Stress {
			res = alt
		}
	}
	res.NormStress = math.Sqrt(res.Stress / wsum)
	center(res.Positions)
	return res, nil
}

func solveFrom(dist, w [][]float64, x []geom.Vec2, vInv *matrix.Mat, opts Options) Result {
	stress := stressOf(dist, w, x)
	res := Result{Positions: x, Stress: stress}
	var scr gtScratch
	for iter := 1; iter <= opts.MaxIter; iter++ {
		x = guttmanTransform(dist, w, x, vInv, &scr)
		newStress := stressOf(dist, w, x)
		res.Positions = x
		res.Stress = newStress
		res.Iterations = iter
		if stress-newStress <= opts.Eps*math.Max(stress, 1e-300) {
			res.Converged = true
			break
		}
		stress = newStress
	}
	return res
}

func symWeight(w [][]float64, i, j int) float64 {
	a := w[i][j]
	if b := w[j][i]; b > a {
		return b
	}
	return a
}

func symDist(d [][]float64, i, j int) float64 {
	a := d[i][j]
	b := d[j][i]
	if b > 0 && (a == 0 || math.IsNaN(a)) {
		return b
	}
	return a
}

// gtScratch carries guttmanTransform's temporaries across one solveFrom
// run. The majorization loop is the topology solver's allocation hot spot
// — every Localize call runs tens of iterations times restarts, and each
// used to allocate B, two products and a fresh position slice — so the
// matrices are Reset-reused and positions double-buffer. The buffers
// alternate, so the output never aliases the configuration being read.
type gtScratch struct {
	b, t, xm, nx matrix.Mat
	pos          [2][]geom.Vec2
	flip         int
}

// guttmanTransform computes X⁺ = V⁺ B(X) X. Results are bit-identical to
// the allocate-per-call version (same fill and accumulation order; see
// matrix.MulInto).
func guttmanTransform(dist, w [][]float64, x []geom.Vec2, vInv *matrix.Mat, scr *gtScratch) []geom.Vec2 {
	n := len(x)
	b := &scr.b
	b.Reset(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			wij := symWeight(w, i, j)
			if wij <= 0 {
				continue
			}
			dij := x[i].Dist(x[j])
			if dij < 1e-12 {
				continue // coincident points contribute zero (subgradient)
			}
			val := -wij * symDist(dist, i, j) / dij
			b.Add(i, j, val)
			b.Add(i, i, -val)
		}
	}
	xm := &scr.xm
	xm.Reset(n, 2)
	for i, p := range x {
		xm.Set(i, 0, p.X)
		xm.Set(i, 1, p.Y)
	}
	nx := matrix.MulInto(&scr.nx, matrix.MulInto(&scr.t, vInv, b), xm)
	out := scr.pos[scr.flip]
	if cap(out) < n {
		out = make([]geom.Vec2, n)
	}
	out = out[:n]
	scr.pos[scr.flip] = out
	scr.flip ^= 1
	for i := range out {
		out[i] = geom.Vec2{X: nx.At(i, 0), Y: nx.At(i, 1)}
	}
	return out
}

func stressOf(dist, w [][]float64, x []geom.Vec2) float64 {
	var s float64
	n := len(x)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			wij := symWeight(w, i, j)
			if wij <= 0 {
				continue
			}
			r := symDist(dist, i, j) - x[i].Dist(x[j])
			s += wij * r * r
		}
	}
	return s
}

// Stress exposes the weighted raw stress of an arbitrary configuration.
func Stress(dist, w [][]float64, x []geom.Vec2) float64 { return stressOf(dist, w, x) }

// NormalizedStress returns sqrt(stress / Σw): the RMS per-link residual.
func NormalizedStress(dist, w [][]float64, x []geom.Vec2) float64 {
	var wsum float64
	for i := range w {
		for j := i + 1; j < len(w); j++ {
			wsum += symWeight(w, i, j)
		}
	}
	if wsum == 0 {
		return 0
	}
	return math.Sqrt(stressOf(dist, w, x) / wsum)
}

// initialConfig seeds the iteration: explicit InitConfig if given, else
// classical MDS on the geodesic-completed distance matrix, else random.
func initialConfig(dist, w [][]float64, opts Options) []geom.Vec2 {
	n := len(dist)
	if opts.InitConfig != nil {
		out := make([]geom.Vec2, n)
		copy(out, opts.InitConfig)
		return out
	}
	full := completeByGeodesics(dist, w)
	if full != nil {
		if x := classicalMDS(full); x != nil {
			// Tiny jitter breaks exact-degeneracy (e.g. collinear input).
			for i := range x {
				x[i].X += 1e-6 * opts.Rng.NormFloat64()
				x[i].Y += 1e-6 * opts.Rng.NormFloat64()
			}
			return x
		}
	}
	out := make([]geom.Vec2, n)
	for i := range out {
		out[i] = geom.Vec2{X: opts.Rng.NormFloat64(), Y: opts.Rng.NormFloat64()}
	}
	return out
}

// completeByGeodesics fills missing entries with shortest-path distances
// (Floyd–Warshall over measured links). Returns nil if the link graph is
// disconnected.
func completeByGeodesics(dist, w [][]float64) [][]float64 {
	n := len(dist)
	full := make([][]float64, n)
	for i := range full {
		full[i] = make([]float64, n)
		for j := range full[i] {
			switch {
			case i == j:
				full[i][j] = 0
			case symWeight(w, i, j) > 0:
				full[i][j] = symDist(dist, i, j)
			default:
				full[i][j] = math.Inf(1)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := full[i][k] + full[k][j]; d < full[i][j] {
					full[i][j] = d
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.IsInf(full[i][j], 1) {
				return nil
			}
		}
	}
	return full
}

// classicalMDS computes the 2D Torgerson embedding of a complete distance
// matrix. Returns nil when the spectrum is unusable.
func classicalMDS(full [][]float64) []geom.Vec2 {
	n := len(full)
	d := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, full[i][j])
		}
	}
	b := matrix.DoubleCenter(d)
	vals, vecs := matrix.EigSym(b)
	if len(vals) < 2 || vals[0] <= 0 {
		return nil
	}
	out := make([]geom.Vec2, n)
	s0 := math.Sqrt(math.Max(vals[0], 0))
	s1 := 0.0
	if len(vals) > 1 && vals[1] > 0 {
		s1 = math.Sqrt(vals[1])
	}
	for i := 0; i < n; i++ {
		out[i] = geom.Vec2{X: s0 * vecs.At(i, 0), Y: s1 * vecs.At(i, 1)}
	}
	return out
}

func center(x []geom.Vec2) {
	var c geom.Vec2
	for _, p := range x {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(x)))
	for i := range x {
		x[i] = x[i].Sub(c)
	}
}
