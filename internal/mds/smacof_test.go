package mds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
)

// distMatrix builds exact pairwise distances from points.
func distMatrix(pts []geom.Vec2) [][]float64 {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = pts[i].Dist(pts[j])
		}
	}
	return d
}

func onesWeights(n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1
			}
		}
	}
	return w
}

// procrustes aligns est onto ref (translation+rotation+reflection) and
// returns the max point error — the right metric since MDS output is only
// defined up to congruence.
func procrustes(ref, est []geom.Vec2) float64 {
	n := len(ref)
	var cr, ce geom.Vec2
	for i := 0; i < n; i++ {
		cr = cr.Add(ref[i])
		ce = ce.Add(est[i])
	}
	cr = cr.Scale(1 / float64(n))
	ce = ce.Scale(1 / float64(n))
	// Cross-covariance.
	var sxx, sxy, syx, syy float64
	for i := 0; i < n; i++ {
		a := ref[i].Sub(cr)
		b := est[i].Sub(ce)
		sxx += b.X * a.X
		sxy += b.X * a.Y
		syx += b.Y * a.X
		syy += b.Y * a.Y
	}
	best := math.Inf(1)
	for _, mirror := range []bool{false, true} {
		bxx, bxy, byx, byy := sxx, sxy, syx, syy
		if mirror {
			byx, byy = -byx, -byy
		}
		theta := math.Atan2(bxy-byx, bxx+byy)
		var worst float64
		for i := 0; i < n; i++ {
			b := est[i].Sub(ce)
			if mirror {
				b.Y = -b.Y
			}
			r := b.Rotate(theta).Add(cr)
			if e := r.Dist(ref[i]); e > worst {
				worst = e
			}
		}
		if worst < best {
			best = worst
		}
	}
	return best
}

func TestSolveRecoversExactGeometry(t *testing.T) {
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 3, Y: 8}, {X: -4, Y: 6}, {X: 5, Y: -7}}
	res, err := Solve(distMatrix(pts), onesWeights(len(pts)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if res.NormStress > 1e-5 {
		t.Errorf("normalized stress %g on exact input", res.NormStress)
	}
	if e := procrustes(pts, res.Positions); e > 1e-4 {
		t.Errorf("geometry error %g", e)
	}
}

func TestSolveWithMissingLinks(t *testing.T) {
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 3, Y: 8}, {X: -4, Y: 6}, {X: 5, Y: -7}, {X: 12, Y: 9}}
	d := distMatrix(pts)
	w := onesWeights(len(pts))
	// Remove three links; the remaining graph is still uniquely realizable.
	w[0][5], w[5][0] = 0, 0
	w[1][3], w[3][1] = 0, 0
	w[2][4], w[4][2] = 0, 0
	res, err := Solve(d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := procrustes(pts, res.Positions); e > 1e-3 {
		t.Errorf("geometry error %g with missing links", e)
	}
}

func TestSolveNoisyDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 15, Y: 0}, {X: 6, Y: 12}, {X: -8, Y: 9}, {X: 4, Y: -11}, {X: 18, Y: 14}}
	d := distMatrix(pts)
	for i := range d {
		for j := range d[i] {
			if i < j {
				e := 0.5 * (2*rng.Float64() - 1)
				d[i][j] += e
				d[j][i] = d[i][j]
			}
		}
	}
	res, err := Solve(d, onesWeights(len(pts)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Residual should be of the noise order, not the geometry order.
	if res.NormStress > 1.0 {
		t.Errorf("normalized stress %g", res.NormStress)
	}
	if e := procrustes(pts, res.Positions); e > 1.5 {
		t.Errorf("geometry error %g with 0.5 m noise", e)
	}
}

func TestSolveOutlierRaisesStress(t *testing.T) {
	// 6 nodes fully connected: 15 links against 9 effective dof, enough
	// redundancy that a corrupted link cannot be absorbed by deforming
	// the topology.
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 15, Y: 0}, {X: 6, Y: 12}, {X: -8, Y: 9}, {X: 4, Y: -11}, {X: 18, Y: 14}}
	d := distMatrix(pts)
	clean, err := Solve(d, onesWeights(len(pts)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one link by +8 m (a severe multipath outlier).
	d[1][2] += 8
	d[2][1] = d[1][2]
	dirty, err := Solve(d, onesWeights(len(pts)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dirty.NormStress < clean.NormStress+0.5 {
		t.Errorf("outlier did not raise stress: %g vs %g", dirty.NormStress, clean.NormStress)
	}
	// Zeroing the corrupted link must restore a clean fit.
	w := onesWeights(len(pts))
	w[1][2], w[2][1] = 0, 0
	fixed, err := Solve(d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.NormStress > 1e-4 {
		t.Errorf("stress %g after dropping outlier", fixed.NormStress)
	}
}

func TestOutlierCanDeformSmallNetworks(t *testing.T) {
	// Documented hazard (§2.1.3): with only 5 nodes (10 links, 7 dof) a
	// large outlier can be *almost realizable* by a deformed topology, so
	// stress barely rises while positions go badly wrong. This is exactly
	// why the paper treats outlier detection as essential and why more
	// divers make the design more resilient (§5).
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 3, Y: 8}, {X: -4, Y: 6}, {X: 5, Y: -7}}
	d := distMatrix(pts)
	d[1][2] += 8
	d[2][1] = d[1][2]
	res, err := Solve(d, onesWeights(len(pts)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormStress > 0.5 {
		t.Skip("solver landed in the high-stress basin; deformation not exhibited here")
	}
	// Low stress, yet the geometry is far from the truth.
	if e := procrustes(pts, res.Positions); e < 2 {
		t.Errorf("expected deformed topology, procrustes error only %g m", e)
	}
}

func TestSolveMonotoneStress(t *testing.T) {
	// SMACOF's majorization guarantees non-increasing stress. Verify via
	// successively tighter iteration caps.
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Vec2, 7)
	for i := range pts {
		pts[i] = geom.Vec2{X: rng.Float64() * 30, Y: rng.Float64() * 30}
	}
	d := distMatrix(pts)
	for i := range d {
		for j := range d[i] {
			if i < j {
				d[i][j] += 0.3 * rng.NormFloat64()
				if d[i][j] < 0 {
					d[i][j] = 0
				}
				d[j][i] = d[i][j]
			}
		}
	}
	w := onesWeights(len(pts))
	prev := math.Inf(1)
	for _, iters := range []int{1, 2, 5, 10, 50, 100} {
		res, err := Solve(d, w, Options{MaxIter: iters})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stress > prev+1e-9 {
			t.Errorf("stress rose from %g to %g at %d iterations", prev, res.Stress, iters)
		}
		prev = res.Stress
	}
}

func TestSolveInputValidation(t *testing.T) {
	if _, err := Solve(nil, nil, Options{}); err == nil {
		t.Error("empty input should error")
	}
	d := [][]float64{{0, 1}, {1, 0}}
	if _, err := Solve(d, [][]float64{{0, 0}, {0, 0}}, Options{}); err == nil {
		t.Error("all-missing weights should error")
	}
	if _, err := Solve(d, [][]float64{{0, -1}, {-1, 0}}, Options{}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := Solve([][]float64{{0, 1}}, onesWeights(2), Options{}); err == nil {
		t.Error("ragged distance matrix should error")
	}
	if _, err := Solve([][]float64{{0, math.NaN()}, {1, 0}}, onesWeights(2), Options{}); err == nil {
		t.Error("NaN distance on a live link should error")
	}
	if _, err := Solve(d, [][]float64{{0, 1}}, Options{}); err == nil {
		t.Error("wrong weight size should error")
	}
}

func TestSolveSingleAndPair(t *testing.T) {
	res, err := Solve([][]float64{{0}}, [][]float64{{0}}, Options{})
	if err == nil {
		// Single node has no links; expect the all-missing error instead.
		t.Errorf("n=1 produced %+v; want all-links-missing error", res)
	}
	// A pair reproduces its separation.
	d := [][]float64{{0, 7}, {7, 0}}
	res, err = Solve(d, onesWeights(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Positions[0].Dist(res.Positions[1]); math.Abs(got-7) > 1e-6 {
		t.Errorf("pair distance %g, want 7", got)
	}
}

func TestSolveDisconnectedFallsBackToRandomInit(t *testing.T) {
	// Two separate pairs: geodesic completion fails, random init engages;
	// each measured link must still be honoured.
	d := [][]float64{
		{0, 5, 0, 0},
		{5, 0, 0, 0},
		{0, 0, 0, 3},
		{0, 0, 3, 0},
	}
	w := make([][]float64, 4)
	for i := range w {
		w[i] = make([]float64, 4)
	}
	w[0][1], w[1][0] = 1, 1
	w[2][3], w[3][2] = 1, 1
	res, err := Solve(d, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g01 := res.Positions[0].Dist(res.Positions[1]); math.Abs(g01-5) > 1e-3 {
		t.Errorf("link 0-1 distance %g, want 5", g01)
	}
	if g23 := res.Positions[2].Dist(res.Positions[3]); math.Abs(g23-3) > 1e-3 {
		t.Errorf("link 2-3 distance %g, want 3", g23)
	}
}

func TestInitConfigIsUsed(t *testing.T) {
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 3, Y: 8}}
	d := distMatrix(pts)
	// Seed at the exact answer: zero iterations of change expected.
	res, err := Solve(d, onesWeights(3), Options{InitConfig: pts, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormStress > 1e-9 {
		t.Errorf("exact init should stay exact, stress %g", res.NormStress)
	}
}

func TestNormalizedStressHelpers(t *testing.T) {
	pts := []geom.Vec2{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 3}}
	d := distMatrix(pts)
	w := onesWeights(3)
	if s := Stress(d, w, pts); s > 1e-12 {
		t.Errorf("exact config stress %g", s)
	}
	// Perturb one point by 1 m: normalized stress should be O(1).
	mv := []geom.Vec2{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}}
	ns := NormalizedStress(d, w, mv)
	if ns < 0.3 || ns > 1.5 {
		t.Errorf("normalized stress %g out of expected band", ns)
	}
	if NormalizedStress(d, [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}, pts) != 0 {
		t.Error("zero weights should give 0")
	}
}

// Property: for random uniquely-realizable geometries with exact complete
// distances, SMACOF recovers the configuration up to congruence.
func TestSolveRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(uint(seed)%4)
		pts := make([]geom.Vec2, n)
		for i := range pts {
			pts[i] = geom.Vec2{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		}
		res, err := Solve(distMatrix(pts), onesWeights(n), Options{})
		if err != nil {
			return false
		}
		return procrustes(pts, res.Positions) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolve6Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Vec2, 6)
	for i := range pts {
		pts[i] = geom.Vec2{X: rng.Float64() * 30, Y: rng.Float64() * 30}
	}
	d := distMatrix(pts)
	w := onesWeights(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(d, w, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
