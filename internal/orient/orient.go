// Package orient models the leader-orientation study of §3.1 (Fig. 16):
// a diver rotates to face a visible buddy; the residual pointing error is
// what the localization pipeline sees as ε_θ. The paper measured it with
// a camera and checkerboard; we reproduce that measurement chain with a
// pinhole-camera model so the same statistic (≈5° mean) drives Fig. 6c.
package orient

import (
	"math"
	"math/rand"

	"uwpos/internal/geom"
)

// Camera is a pinhole model of the leader's smartphone camera.
type Camera struct {
	FocalPx  float64 // focal length in pixels
	WidthPx  int     // image width
	HeightPx int     // image height
	PixNoise float64 // corner-detection noise, pixels (1σ)
}

// DefaultCamera matches a phone camera shooting 1920×1080 video with a
// ~70° horizontal field of view; underwater turbidity makes checkerboard
// corner detection noisier than in air.
func DefaultCamera() Camera {
	w := 1920
	fov := geom.Deg2Rad(70)
	return Camera{
		FocalPx:  float64(w) / 2 / math.Tan(fov/2),
		WidthPx:  w,
		HeightPx: 1080,
		PixNoise: 2.5,
	}
}

// HumanModel captures how precisely a person can rotate their body and
// arm to put a target at the camera's center. The paper's two users
// averaged ≈5°; aiming degrades slightly with distance as the target
// shrinks.
type HumanModel struct {
	BaseErrDeg   float64 // 1σ of residual aim at close range
	PerMeterDeg  float64 // additional 1σ per metre of distance
	ArmTremorDeg float64 // high-frequency arm jitter during capture
}

// DefaultHuman returns parameters calibrated so the average measured
// orientation error across 3–9 m lands near the paper's 5.0°.
func DefaultHuman() HumanModel {
	return HumanModel{BaseErrDeg: 3.2, PerMeterDeg: 0.25, ArmTremorDeg: 1.0}
}

// AimOnce simulates one orient-and-capture trial at the given distance.
// It returns the true residual pointing error (deg) and the camera's
// estimate of it via the checkerboard measurement chain.
func AimOnce(cam Camera, human HumanModel, distM float64, rng *rand.Rand) (trueErrDeg, measuredErrDeg float64) {
	sigma := human.BaseErrDeg + human.PerMeterDeg*distM
	aim := sigma * rng.NormFloat64()
	tremor := human.ArmTremorDeg * rng.NormFloat64()
	trueErrDeg = math.Abs(aim + tremor)

	// Camera measurement: the checkerboard center projects to a pixel
	// offset u = f·tan(θ); corner noise perturbs the estimate, shrinking
	// relative accuracy as the board gets smaller/farther.
	theta := geom.Deg2Rad(trueErrDeg)
	u := cam.FocalPx * math.Tan(theta)
	// Corner noise scales with distance (fewer pixels per square).
	noise := cam.PixNoise * (1 + distM/6) * rng.NormFloat64()
	uMeas := u + noise
	measuredErrDeg = geom.Rad2Deg(math.Atan(math.Abs(uMeas) / cam.FocalPx))
	return trueErrDeg, measuredErrDeg
}

// Study runs trials at each distance and reports the mean measured error
// per distance plus the grand mean — the Fig. 16 summary statistics.
func Study(cam Camera, human HumanModel, distancesM []float64, trialsPer int, rng *rand.Rand) (perDist []float64, grand float64) {
	perDist = make([]float64, len(distancesM))
	var total float64
	var count int
	for di, d := range distancesM {
		var sum float64
		for t := 0; t < trialsPer; t++ {
			_, m := AimOnce(cam, human, d, rng)
			sum += m
		}
		perDist[di] = sum / float64(trialsPer)
		total += sum
		count += trialsPer
	}
	return perDist, total / float64(count)
}
