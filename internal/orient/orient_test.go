package orient

import (
	"math/rand"
	"testing"
)

func TestAimOnceMeasurementTracksTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cam := DefaultCamera()
	human := DefaultHuman()
	var sumDiff float64
	const trials = 500
	for i := 0; i < trials; i++ {
		tru, meas := AimOnce(cam, human, 5, rng)
		if tru < 0 || meas < 0 {
			t.Fatal("errors must be non-negative")
		}
		sumDiff += meas - tru
	}
	// The camera chain is close to unbiased at phone focal lengths.
	if avg := sumDiff / trials; avg > 1.0 || avg < -1.0 {
		t.Errorf("measurement bias %.2f°", avg)
	}
}

func TestStudyMatchesPaperMean(t *testing.T) {
	// Fig. 16: average orientation error across users and distances ≈5.0°.
	rng := rand.New(rand.NewSource(2))
	perDist, grand := Study(DefaultCamera(), DefaultHuman(), []float64{3, 5, 7, 9}, 400, rng)
	if len(perDist) != 4 {
		t.Fatal("per-distance length")
	}
	if grand < 3.5 || grand > 6.5 {
		t.Errorf("grand mean %.2f°, want ≈5°", grand)
	}
	// Error grows (weakly) with distance.
	if perDist[3] <= perDist[0]*0.8 {
		t.Errorf("distance trend broken: %v", perDist)
	}
}

func TestFartherIsHarder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cam := DefaultCamera()
	human := DefaultHuman()
	mean := func(d float64) float64 {
		var s float64
		for i := 0; i < 800; i++ {
			tru, _ := AimOnce(cam, human, d, rng)
			s += tru
		}
		return s / 800
	}
	if mean(12) <= mean(2) {
		t.Error("aim error should grow with distance")
	}
}
