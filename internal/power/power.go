// Package power models the battery study of §3.1: a smartwatch playing a
// continuous siren and a phone emitting the ranging preamble every three
// seconds, both for 4.5 hours. Component-level draws are calibrated so the
// measured end-state (90% and 63% battery drop) is reproduced by the same
// duty-cycle arithmetic a real measurement would integrate.
package power

import "fmt"

// Profile is a device's electrical behaviour during acoustic operation.
type Profile struct {
	Name        string
	BatteryWh   float64 // usable battery energy
	IdleW       float64 // screen-off baseline, audio stack open
	TxW         float64 // additional draw while the speaker emits at max volume
	RxDSPW      float64 // additional draw while the receive DSP runs
	TxDutyCycle float64 // fraction of time transmitting
	RxDutyCycle float64 // fraction of time running receive DSP
}

// WatchSiren returns the Apple-Watch-Ultra emergency-siren workload:
// continuous transmission (duty 1.0) from a 2.1 Wh battery; drains ~90%
// in 4.5 h.
func WatchSiren() Profile {
	return Profile{
		Name:        "watch-ultra siren",
		BatteryWh:   2.1,
		IdleW:       0.12,
		TxW:         0.30,
		RxDSPW:      0,
		TxDutyCycle: 1.0,
	}
}

// PhonePreambles returns the Galaxy-S9 workload: a 223 ms preamble every
// 3 s at max volume plus the always-on receive pipeline; drains ~63% of
// an 11.55 Wh battery in 4.5 h.
func PhonePreambles() Profile {
	return Profile{
		Name:        "galaxy-s9 preambles",
		BatteryWh:   11.55,
		IdleW:       0.90,
		TxW:         2.2,
		RxDSPW:      0.55,
		TxDutyCycle: 0.223 / 3.0,
		RxDutyCycle: 1.0,
	}
}

// AverageDraw returns the mean power draw in watts.
func (p Profile) AverageDraw() float64 {
	return p.IdleW + p.TxW*p.TxDutyCycle + p.RxDSPW*p.RxDutyCycle
}

// DrainAfter returns the battery fraction consumed after the given hours,
// capped at 1.
func (p Profile) DrainAfter(hours float64) float64 {
	if p.BatteryWh <= 0 {
		return 1
	}
	f := p.AverageDraw() * hours / p.BatteryWh
	if f > 1 {
		return 1
	}
	return f
}

// HoursToDrain returns how long until the given battery fraction is
// consumed.
func (p Profile) HoursToDrain(fraction float64) (float64, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("power: fraction %g outside (0,1]", fraction)
	}
	draw := p.AverageDraw()
	if draw <= 0 {
		return 0, fmt.Errorf("power: non-positive draw")
	}
	return fraction * p.BatteryWh / draw, nil
}
