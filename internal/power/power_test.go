package power

import (
	"math"
	"testing"
)

func TestWatchSirenDrainMatchesPaper(t *testing.T) {
	// §3.1: the watch lost 90% in 4.5 h of continuous siren.
	got := WatchSiren().DrainAfter(4.5)
	if math.Abs(got-0.90) > 0.05 {
		t.Errorf("watch drain %.2f, want ≈0.90", got)
	}
}

func TestPhonePreambleDrainMatchesPaper(t *testing.T) {
	// §3.1: the phone lost 63% in 4.5 h of 3 s-period preambles.
	got := PhonePreambles().DrainAfter(4.5)
	if math.Abs(got-0.63) > 0.05 {
		t.Errorf("phone drain %.2f, want ≈0.63", got)
	}
}

func TestOutlastsRecreationalDive(t *testing.T) {
	// Both devices must survive well past a maximum recreational dive
	// (~1 h): drain under 25% for the phone, under 25% for the watch.
	if d := WatchSiren().DrainAfter(1); d > 0.25 {
		t.Errorf("watch 1 h drain %.2f", d)
	}
	if d := PhonePreambles().DrainAfter(1); d > 0.25 {
		t.Errorf("phone 1 h drain %.2f", d)
	}
}

func TestDrainCapsAtOne(t *testing.T) {
	if d := WatchSiren().DrainAfter(1000); d != 1 {
		t.Errorf("drain %g, want cap at 1", d)
	}
	empty := Profile{BatteryWh: 0}
	if empty.DrainAfter(1) != 1 {
		t.Error("zero battery is always drained")
	}
}

func TestHoursToDrain(t *testing.T) {
	p := WatchSiren()
	h, err := p.HoursToDrain(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.DrainAfter(h)-0.9) > 1e-9 {
		t.Errorf("inverse inconsistent: %g h", h)
	}
	if _, err := p.HoursToDrain(0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := p.HoursToDrain(1.5); err == nil {
		t.Error(">1 fraction should error")
	}
	if _, err := (Profile{BatteryWh: 1}).HoursToDrain(0.5); err == nil {
		t.Error("zero draw should error")
	}
}

func TestAverageDrawComposition(t *testing.T) {
	p := Profile{IdleW: 1, TxW: 2, RxDSPW: 4, TxDutyCycle: 0.5, RxDutyCycle: 0.25}
	if got := p.AverageDraw(); math.Abs(got-3) > 1e-12 {
		t.Errorf("draw %g, want 3", got)
	}
}
