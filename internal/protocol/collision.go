package protocol

import (
	"fmt"
	"sort"

	"uwpos/internal/geom"
)

// Transmission is one scheduled packet in absolute time (leader TX = 0).
type Transmission struct {
	Device int
	StartS float64 // first sample leaves the speaker
	EndS   float64 // last sample leaves the speaker
}

// Schedule derives the absolute transmission times of a full round for
// the given device positions, assuming every device hears the leader
// directly (the §2.3 base case): device i transmits at τ₀ᵢ + Δ0 + (i−1)Δ1.
func (p Params) Schedule(pos []geom.Vec3, c float64) ([]Transmission, error) {
	if len(pos) != p.N {
		return nil, fmt.Errorf("protocol: %d positions for N=%d", len(pos), p.N)
	}
	if c <= 0 {
		return nil, fmt.Errorf("protocol: non-positive sound speed")
	}
	out := make([]Transmission, 0, p.N)
	out = append(out, Transmission{Device: 0, StartS: 0, EndS: p.TPacket})
	for i := 1; i < p.N; i++ {
		tau := pos[0].Dist(pos[i]) / c
		start := tau + p.SlotTime(i)
		out = append(out, Transmission{Device: i, StartS: start, EndS: start + p.TPacket})
	}
	return out, nil
}

// Collision reports two packets overlapping at some receiver.
type Collision struct {
	A, B     int     // transmitting devices
	Receiver int     // device that hears both at once
	OverlapS float64 // overlap duration at that receiver
}

// FindCollisions checks whether any receiver hears two packets
// overlapping in time, given the geometry. The paper's guard condition
// T_guard > 2·τ_max guarantees none; this verifies it constructively for
// a concrete deployment (and exposes what happens when the guard is
// violated, e.g. divers beyond the 32 m design range).
func (p Params) FindCollisions(pos []geom.Vec3, c float64) ([]Collision, error) {
	sched, err := p.Schedule(pos, c)
	if err != nil {
		return nil, err
	}
	var out []Collision
	for r := 0; r < p.N; r++ {
		type arrival struct {
			dev        int
			start, end float64
		}
		var arrs []arrival
		for _, tx := range sched {
			if tx.Device == r {
				continue
			}
			tau := pos[tx.Device].Dist(pos[r]) / c
			arrs = append(arrs, arrival{tx.Device, tx.StartS + tau, tx.EndS + tau})
		}
		sort.Slice(arrs, func(i, j int) bool { return arrs[i].start < arrs[j].start })
		for i := 1; i < len(arrs); i++ {
			prev, cur := arrs[i-1], arrs[i]
			if cur.start < prev.end {
				out = append(out, Collision{
					A: prev.dev, B: cur.dev, Receiver: r,
					OverlapS: prev.end - cur.start,
				})
			}
		}
	}
	return out, nil
}

// GuardSufficientFor returns the maximum device separation (m) the guard
// interval tolerates without collisions: c·T_guard/2 (§2.3).
func (p Params) GuardSufficientFor(c float64) float64 { return p.MaxRange(c) }
