package protocol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
)

func TestScheduleBaseCase(t *testing.T) {
	p := DefaultParams(3)
	pos := []geom.Vec3{{X: 0}, {X: 15}, {X: 30}}
	const c = 1500.0
	sched, err := p.Schedule(pos, c)
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].StartS != 0 || math.Abs(sched[0].EndS-p.TPacket) > 1e-12 {
		t.Errorf("leader packet %+v", sched[0])
	}
	// Device 1: starts at τ (15/1500=10 ms) + Δ0.
	want := 0.01 + 0.6
	if math.Abs(sched[1].StartS-want) > 1e-9 {
		t.Errorf("device 1 start %g, want %g", sched[1].StartS, want)
	}
	// Errors.
	if _, err := p.Schedule(pos[:2], c); err == nil {
		t.Error("wrong position count should error")
	}
	if _, err := p.Schedule(pos, 0); err == nil {
		t.Error("zero sound speed should error")
	}
}

func TestNoCollisionsWithinDesignRange(t *testing.T) {
	// Any geometry within the paper's 32 m design range must be
	// collision-free under the default guard (T_guard = 42 ms > 2τ_max).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(uint(seed)%6)
		p := DefaultParams(n)
		const c = 1500.0
		limit := p.MaxRange(c) // 31.5 m
		pos := make([]geom.Vec3, n)
		for i := range pos {
			// Confine to a ball of diameter < limit around the leader.
			r := rng.Float64() * limit / 2
			ang := rng.Float64() * 2 * math.Pi
			pos[i] = geom.Vec3{X: r * math.Cos(ang), Y: r * math.Sin(ang), Z: rng.Float64() * 5}
		}
		cols, err := p.FindCollisions(pos, c)
		return err == nil && len(cols) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCollisionsBeyondGuard(t *testing.T) {
	// Stretch the network far beyond the design range with a tiny guard.
	// A far early-slot device followed by a near late-slot device makes
	// their packets overlap at the leader: collisions need non-monotone
	// geometry (along a line with increasing range, arrival gaps never
	// shrink below Δ1).
	p := DefaultParams(4)
	p.TGuard = 0.001 // 1 ms guard ↔ 0.75 m design range
	const c = 1500.0
	pos := []geom.Vec3{{X: 0}, {X: 120}, {X: 5}, {X: 60}}
	cols, err := p.FindCollisions(pos, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) == 0 {
		t.Fatal("expected collisions with a 1 ms guard at 120 m spread")
	}
	for _, col := range cols {
		if col.OverlapS <= 0 {
			t.Errorf("non-positive overlap %+v", col)
		}
		if col.A == col.B {
			t.Errorf("self collision %+v", col)
		}
	}
}

func TestGuardSufficientFor(t *testing.T) {
	p := DefaultParams(5)
	if got := p.GuardSufficientFor(1500); math.Abs(got-31.5) > 1e-9 {
		t.Errorf("guard range %g", got)
	}
}
