// Package protocol implements the distributed timestamp protocol of §2.3:
// leader-initiated TDM slot scheduling that works when some devices cannot
// hear the leader, plus the two-way timestamp arithmetic that turns the
// recorded arrival times into pairwise distances — including the third-
// party recovery path for half-lost links.
package protocol

import (
	"fmt"
	"math"
)

// Params fixes the protocol timing. Defaults mirror §2.3's latency
// analysis: Δ0 = 600 ms, T_packet = 278 ms, T_guard = 42 ms, Δ1 = 320 ms.
type Params struct {
	Delta0  float64 // processing + audio I/O latency budget (s)
	TPacket float64 // message duration (s)
	TGuard  float64 // guard interval ≥ 2·τ_max (s)
	N       int     // number of devices including the leader
}

// DefaultParams returns the paper's constants for an N-device group.
func DefaultParams(n int) Params {
	return Params{Delta0: 0.600, TPacket: 0.278, TGuard: 0.042, N: n}
}

// Validate sanity-checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("protocol: need ≥ 2 devices, got %d", p.N)
	case p.Delta0 <= 0 || p.TPacket <= 0 || p.TGuard < 0:
		return fmt.Errorf("protocol: non-positive timing constants")
	}
	return nil
}

// Delta1 is the slot pitch T_packet + T_guard.
func (p Params) Delta1() float64 { return p.TPacket + p.TGuard }

// MaxRange returns the unambiguous ranging distance c·T_guard/2 implied by
// the guard interval (32 m at the paper's 42 ms and c = 1500 m/s).
func (p Params) MaxRange(c float64) float64 { return c * p.TGuard / 2 }

// SlotTime returns device id's transmit time in a clock where the leader's
// message arrives at 0: Δ0 + (id−1)·Δ1. The leader itself (id 0) transmits
// at −... — callers never ask for id 0; it panics to catch misuse.
func (p Params) SlotTime(id int) float64 {
	if id <= 0 || id >= p.N {
		panic(fmt.Sprintf("protocol: slot for id %d of %d", id, p.N))
	}
	return p.Delta0 + float64(id-1)*p.Delta1()
}

// RoundTime is the worst-case protocol duration: Δ0 + (N−1)Δ1 when all
// devices hear the leader, twice the slot span when some must wrap
// (§2.3's latency analysis).
func (p Params) RoundTime(allInLeaderRange bool) float64 {
	if allInLeaderRange {
		return p.Delta0 + float64(p.N-1)*p.Delta1()
	}
	return p.Delta0 + 2*float64(p.N-1)*p.Delta1()
}

// SyncSource identifies what a device synchronized against.
type SyncSource struct {
	From   int  // device ID whose message set the local slot origin
	Missed bool // true when the wrap rule (N−j+i)Δ1 applied
}

// TransmitOffset computes when device i must transmit, as an offset after
// the first message it heard (from device j, j may be the leader 0):
//
//	j == 0:               Δ0 + (i−1)Δ1
//	j ≠ 0, (i−j)Δ1 > Δ0:  (i−j)Δ1
//	j ≠ 0 otherwise:      (N−j+i)Δ1   (missed own slot, wrap)
//
// Returns the offset and sync bookkeeping. Panics for invalid ids.
func (p Params) TransmitOffset(i, j int) (float64, SyncSource) {
	if i <= 0 || i >= p.N || j < 0 || j >= p.N || i == j {
		panic(fmt.Sprintf("protocol: TransmitOffset(%d, %d) with N=%d", i, j, p.N))
	}
	if j == 0 {
		return p.Delta0 + float64(i-1)*p.Delta1(), SyncSource{From: 0}
	}
	if float64(i-j)*p.Delta1() > p.Delta0 {
		return float64(i-j) * p.Delta1(), SyncSource{From: j}
	}
	return float64(p.N-j+i) * p.Delta1(), SyncSource{From: j, Missed: true}
}

// Table holds the recorded timestamps of one protocol round.
// T[i][j] is the local time at device i when the message from device j
// arrived at its microphone; T[i][i] is device i's own transmit time in
// its local clock (the paper ignores the self-loopback propagation).
// Missing observations are NaN.
type Table struct {
	N int
	T [][]float64
}

// NewTable creates an all-missing table for n devices.
func NewTable(n int) *Table {
	t := &Table{N: n, T: make([][]float64, n)}
	for i := range t.T {
		t.T[i] = make([]float64, n)
		for j := range t.T[i] {
			t.T[i][j] = math.NaN()
		}
	}
	return t
}

// Observe records an arrival (or own-transmission when i == j).
func (t *Table) Observe(i, j int, localTime float64) { t.T[i][j] = localTime }

// Has reports whether observation (i, j) exists.
func (t *Table) Has(i, j int) bool { return !math.IsNaN(t.T[i][j]) }

// Distances converts the table into pairwise distances (metres) with the
// two-way formula of §2.3:
//
//	D_ij = c/2 · [(Tⁱⱼ − Tⁱᵢ) − (Tʲⱼ − Tʲᵢ)]
//
// For pairs with only one direction observed it attempts third-party
// recovery through a device k whose distances to both i and j resolved in
// the two-way pass. Returns the distance matrix and a weight matrix with
// 1 for resolved links, 0 for unresolved.
func (t *Table) Distances(c float64) (d [][]float64, w [][]float64) {
	n := t.N
	d = make([][]float64, n)
	w = make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		w[i] = make([]float64, n)
	}
	// Pass 1: two-way.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.Has(i, j) && t.Has(i, i) && t.Has(j, j) && t.Has(j, i) {
				dist := c / 2 * ((t.T[i][j] - t.T[i][i]) - (t.T[j][j] - t.T[j][i]))
				if dist >= 0 {
					d[i][j], d[j][i] = dist, dist
					w[i][j], w[j][i] = 1, 1
				}
			}
		}
	}
	// Pass 2: third-party recovery for one-way pairs.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w[i][j] > 0 {
				continue
			}
			// Need exactly one direction i←j or j←i.
			var rxer, txer int
			switch {
			case t.Has(i, j) && t.Has(i, i):
				rxer, txer = i, j
			case t.Has(j, i) && t.Has(j, j):
				rxer, txer = j, i
			default:
				continue
			}
			dist, ok := t.recoverOneWay(rxer, txer, c, w, d)
			if ok && dist >= 0 {
				d[i][j], d[j][i] = dist, dist
				w[i][j], w[j][i] = 1, 1
			}
		}
	}
	return d, w
}

// recoverOneWay estimates the distance for a pair where only rxer heard
// txer. Through a helper k with resolved two-way distances to both ends,
// the unknown transmit-time difference between the pair cancels:
//
//	a_tx − a_rx = (Tʳᵏ − Tʳʳ) − (Tᵗᵏ − Tᵗᵗ) − (τ_rk − τ_tk)   ... (via k)
//	τ_rt = (Tʳᵗ − Tʳʳ) − (a_t − a_r)
func (t *Table) recoverOneWay(rxer, txer int, c float64, w, d [][]float64) (float64, bool) {
	for k := 0; k < t.N; k++ {
		if k == rxer || k == txer {
			continue
		}
		if w[rxer][k] <= 0 || w[txer][k] <= 0 {
			continue
		}
		if !(t.Has(rxer, k) && t.Has(rxer, rxer) && t.Has(txer, k) && t.Has(txer, txer)) {
			continue
		}
		tauRK := d[rxer][k] / c
		tauTK := d[txer][k] / c
		// Arrival of k at both ends, minus own TX time, gives
		// (a_k + τ_k· − a_·); difference isolates (a_t − a_r).
		// lhs = τ_rk − τ_tk + (a_t − a_r), so a_t − a_r = lhs − τ_rk + τ_tk.
		lhs := (t.T[rxer][k] - t.T[rxer][rxer]) - (t.T[txer][k] - t.T[txer][txer])
		atMinusAr := lhs - tauRK + tauTK
		tau := (t.T[rxer][txer] - t.T[rxer][rxer]) - atMinusAr
		return c * tau, true
	}
	return 0, false
}
