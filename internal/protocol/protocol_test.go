package protocol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/geom"
)

func TestParamsDefaults(t *testing.T) {
	p := DefaultParams(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Delta1()-0.320) > 1e-12 {
		t.Errorf("Δ1 = %g, want 0.320", p.Delta1())
	}
	// Guard of 42 ms at 1500 m/s → 31.5 m unambiguous range (paper: 32 m).
	if r := p.MaxRange(1500); math.Abs(r-31.5) > 1e-9 {
		t.Errorf("max range %g", r)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{N: 1, Delta0: 1, TPacket: 1}).Validate(); err == nil {
		t.Error("N=1 should fail")
	}
	if err := (Params{N: 3, Delta0: 0, TPacket: 1}).Validate(); err == nil {
		t.Error("zero Δ0 should fail")
	}
}

func TestSlotTimes(t *testing.T) {
	p := DefaultParams(5)
	// Device 1 transmits at Δ0; device 4 at Δ0 + 3Δ1.
	if got := p.SlotTime(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("slot 1 = %g", got)
	}
	if got := p.SlotTime(4); math.Abs(got-(0.6+3*0.32)) > 1e-12 {
		t.Errorf("slot 4 = %g", got)
	}
	for _, id := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SlotTime(%d) should panic", id)
				}
			}()
			p.SlotTime(id)
		}()
	}
}

func TestRoundTimeMatchesPaperTable(t *testing.T) {
	// §3.2: measured mean round times 1.2/1.6/1.9/2.2/2.5 s for N=3..7.
	want := map[int]float64{3: 1.24, 4: 1.56, 5: 1.88, 6: 2.20, 7: 2.52}
	for n, rt := range want {
		got := DefaultParams(n).RoundTime(true)
		if math.Abs(got-rt) > 1e-9 {
			t.Errorf("N=%d round time %g, want %g", n, got, rt)
		}
	}
	// Out-of-range doubles the slot span.
	p := DefaultParams(4)
	if got, want := p.RoundTime(false), 0.6+2*3*0.32; math.Abs(got-want) > 1e-12 {
		t.Errorf("wrap round time %g, want %g", got, want)
	}
}

func TestTransmitOffsetLeaderSync(t *testing.T) {
	p := DefaultParams(6)
	off, src := p.TransmitOffset(3, 0)
	if math.Abs(off-(0.6+2*0.32)) > 1e-12 {
		t.Errorf("offset %g", off)
	}
	if src.From != 0 || src.Missed {
		t.Errorf("src %+v", src)
	}
}

func TestTransmitOffsetRelaySync(t *testing.T) {
	p := DefaultParams(8)
	// i=5 hears j=2 first: (5−2)Δ1 = 0.96 > Δ0=0.6 → feasible.
	off, src := p.TransmitOffset(5, 2)
	if math.Abs(off-3*0.32) > 1e-12 {
		t.Errorf("offset %g", off)
	}
	if src.From != 2 || src.Missed {
		t.Errorf("src %+v", src)
	}
	// i=3 hears j=2: (3−2)Δ1 = 0.32 < Δ0 → missed, wrap (8−2+3)Δ1.
	off, src = p.TransmitOffset(3, 2)
	if math.Abs(off-9*0.32) > 1e-12 {
		t.Errorf("wrap offset %g", off)
	}
	if !src.Missed {
		t.Error("should be marked missed")
	}
	// i earlier than j always wraps ((i−j) negative).
	off, _ = p.TransmitOffset(2, 6)
	if math.Abs(off-float64(8-6+2)*0.32) > 1e-12 {
		t.Errorf("early-id wrap offset %g", off)
	}
}

func TestTransmitOffsetPanics(t *testing.T) {
	p := DefaultParams(4)
	for _, c := range [][2]int{{0, 1}, {4, 0}, {2, 2}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TransmitOffset(%d,%d) should panic", c[0], c[1])
				}
			}()
			p.TransmitOffset(c[0], c[1])
		}()
	}
}

// simulateRound fills a Table from ground-truth geometry: device i
// transmits at absolute time a[i]; arrivals are a[j] + distance/c. Each
// device's local clock has a random offset (the protocol must cancel it).
// heard[i][j] = false drops that observation.
func simulateRound(pos []geom.Vec3, a []float64, c float64, offsets []float64, heard func(i, j int) bool) *Table {
	n := len(pos)
	tab := NewTable(n)
	for i := 0; i < n; i++ {
		tab.Observe(i, i, a[i]-offsets[i])
		for j := 0; j < n; j++ {
			if i == j || !heard(i, j) {
				continue
			}
			tau := pos[i].Dist(pos[j]) / c
			tab.Observe(i, j, a[j]+tau-offsets[i])
		}
	}
	return tab
}

func layout() []geom.Vec3 {
	return []geom.Vec3{
		{X: 0, Y: 0, Z: 2},
		{X: 8, Y: 1, Z: 3},
		{X: 15, Y: -4, Z: 1},
		{X: 11, Y: 9, Z: 4},
		{X: 21, Y: 3, Z: 2},
	}
}

func protocolTxTimes(p Params, n int) []float64 {
	a := make([]float64, n)
	a[0] = 0
	for i := 1; i < n; i++ {
		a[i] = p.SlotTime(i)
	}
	return a
}

func TestDistancesTwoWayExact(t *testing.T) {
	pos := layout()
	const c = 1480.0
	p := DefaultParams(len(pos))
	a := protocolTxTimes(p, len(pos))
	offsets := []float64{0.123, -4.56, 7.89, 0.001, -2.5}
	tab := simulateRound(pos, a, c, offsets, func(i, j int) bool { return true })
	d, w := tab.Distances(c)
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if w[i][j] != 1 {
				t.Fatalf("link %d-%d unresolved", i, j)
			}
			want := pos[i].Dist(pos[j])
			if math.Abs(d[i][j]-want) > 1e-9 {
				t.Errorf("D[%d][%d] = %g, want %g", i, j, d[i][j], want)
			}
		}
	}
}

func TestDistancesMissingLink(t *testing.T) {
	pos := layout()
	const c = 1480.0
	p := DefaultParams(len(pos))
	a := protocolTxTimes(p, len(pos))
	offsets := make([]float64, len(pos))
	// Devices 2 and 3 never hear each other at all.
	blocked := func(i, j int) bool {
		return !((i == 2 && j == 3) || (i == 3 && j == 2))
	}
	tab := simulateRound(pos, a, c, offsets, blocked)
	d, w := tab.Distances(c)
	if w[2][3] != 0 {
		t.Errorf("fully-lost link should stay unresolved, got D=%g", d[2][3])
	}
	// All other links resolve.
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if i == 2 && j == 3 {
				continue
			}
			if w[i][j] != 1 {
				t.Errorf("link %d-%d unresolved", i, j)
			}
		}
	}
}

func TestDistancesOneWayRecovery(t *testing.T) {
	pos := layout()
	const c = 1480.0
	p := DefaultParams(len(pos))
	a := protocolTxTimes(p, len(pos))
	offsets := []float64{0.5, -1.25, 3.75, 0.25, -0.125}
	// Message 3→2 lost (device 2 did not hear 3), but 2→3 heard:
	// recovery goes through any helper k with two-way links.
	lost := func(i, j int) bool { return !(i == 2 && j == 3) }
	tab := simulateRound(pos, a, c, offsets, lost)
	d, w := tab.Distances(c)
	if w[2][3] != 1 {
		t.Fatal("one-way link not recovered")
	}
	want := pos[2].Dist(pos[3])
	if math.Abs(d[2][3]-want) > 1e-9 {
		t.Errorf("recovered D = %g, want %g", d[2][3], want)
	}
}

func TestDistancesPropertyRandomGeometry(t *testing.T) {
	const c = 1500.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(uint(seed)%4)
		pos := make([]geom.Vec3, n)
		for i := range pos {
			pos[i] = geom.Vec3{X: rng.Float64() * 30, Y: rng.Float64() * 30, Z: rng.Float64() * 8}
		}
		p := DefaultParams(n)
		a := protocolTxTimes(p, n)
		offsets := make([]float64, n)
		for i := range offsets {
			offsets[i] = rng.NormFloat64() * 10
		}
		tab := simulateRound(pos, a, c, offsets, func(i, j int) bool { return true })
		d, w := tab.Distances(c)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if w[i][j] != 1 || math.Abs(d[i][j]-pos[i].Dist(pos[j])) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistancesNegativeRejected(t *testing.T) {
	// A corrupt table that implies a negative distance must not produce
	// a resolved link.
	tab := NewTable(3)
	tab.Observe(0, 0, 0)
	tab.Observe(1, 1, 0)
	tab.Observe(0, 1, -5) // nonsense: arrived before it was sent
	tab.Observe(1, 0, -5)
	_, w := tab.Distances(1500)
	if w[0][1] != 0 {
		t.Error("negative-distance link should be rejected")
	}
}

func TestTableHasObserve(t *testing.T) {
	tab := NewTable(2)
	if tab.Has(0, 1) {
		t.Error("fresh table should be empty")
	}
	tab.Observe(0, 1, 1.5)
	if !tab.Has(0, 1) || tab.T[0][1] != 1.5 {
		t.Error("observation lost")
	}
}
