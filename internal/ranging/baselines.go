package ranging

import (
	"slices"
	"sync"

	"uwpos/internal/dsp"
)

// templateMatcher lazily maintains a single-template dsp.MatcherBank for
// a mutable exported template field: the baseline structs expose
// Template/Sweep publicly (and historically honoured reassignment between
// Arrival calls), so the bank is rebuilt whenever the template content
// changes and the whole check is mutex-guarded to keep concurrent Arrival
// calls safe. The content comparison is O(len) per call — noise next to
// the correlation it fronts. Running the baselines through the bank keeps
// them on the same overlap-save scan path a multi-template receiver uses,
// so callers holding a bigger bank can hand the precomputed correlation
// straight to ArrivalFromCorr.
type templateMatcher struct {
	mu   sync.Mutex
	bank *dsp.MatcherBank
}

func (tm *templateMatcher) get(template []float64) *dsp.MatcherBank {
	if len(template) == 0 {
		return nil // nothing to correlate: Arrival reports ok=false
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.bank == nil || !slices.Equal(tm.bank.Matcher(0).Template(), template) {
		tm.bank = dsp.NewMatcherBank(dsp.NewMatcher(template))
	}
	return tm.bank
}

// BeepBeep is the auto-correlation chirp ranging baseline (Peng et al.,
// SenSys'07), adapted as in §3.1: a linear chirp template, window-power
// signal detection and correlation peak picking with a peak-selection rule
// that prefers the earliest peak within a fraction of the global maximum.
type BeepBeep struct {
	Template []float64
	// PeakFraction selects the earliest correlation peak whose height is
	// at least this fraction of the global max (their "specially-designed
	// peak detection"). Default 0.8.
	PeakFraction float64

	matcher templateMatcher // tracks Template
}

// NewBeepBeep builds the baseline around a chirp template.
func NewBeepBeep(template []float64) *BeepBeep {
	return &BeepBeep{Template: template, PeakFraction: 0.8}
}

// Arrival estimates the chirp arrival index in the stream, or ok=false.
func (b *BeepBeep) Arrival(stream []float64) (idx float64, ok bool) {
	bank := b.matcher.get(b.Template)
	if bank == nil {
		return 0, false
	}
	corr := bank.NormalizedCrossCorrelateAllPooled(stream)[0]
	if corr == nil {
		return 0, false
	}
	defer dsp.PutF64(corr)
	return b.ArrivalFromCorr(corr)
}

// Bank returns the single-template matcher bank for the current Template
// (nil when the template is empty) — the scan target for callers driving
// the baseline through a shared ingest pipeline, whose per-lag output
// feeds ArrivalFromCorr.
func (b *BeepBeep) Bank() *dsp.MatcherBank { return b.matcher.get(b.Template) }

// ArrivalFromCorr applies BeepBeep's peak-selection rule to an already
// computed normalized correlation of the template against the stream —
// the entry point for callers that scanned several templates in one
// dsp.MatcherBank pass.
func (b *BeepBeep) ArrivalFromCorr(corr []float64) (idx float64, ok bool) {
	if len(corr) == 0 {
		return 0, false
	}
	_, max := dsp.Max(corr)
	if max <= 0 {
		return 0, false
	}
	frac := b.PeakFraction
	if frac == 0 {
		frac = 0.8
	}
	peaks := dsp.FindPeaks(corr, max*frac)
	if len(peaks) == 0 {
		return 0, false
	}
	return float64(peaks[0].Index), true
}

// WindowPowerDetector is the TH_SD signal-presence detector from BeepBeep
// ([75] in the paper): declare a signal when the power of a window jumps by
// at least ThresholdDB over the preceding window.
type WindowPowerDetector struct {
	WindowLen   int     // comparison window length in samples
	ThresholdDB float64 // TH_SD
}

// Detect returns indices where the power ratio between adjacent windows
// first exceeds the threshold; a simple hysteresis skips the remainder of a
// detected burst.
func (w WindowPowerDetector) Detect(stream []float64) []int {
	if w.WindowLen <= 0 || len(stream) < 2*w.WindowLen {
		return nil
	}
	var out []int
	step := w.WindowLen
	i := step
	for i+step <= len(stream) {
		db := dsp.WindowPowerDB(stream, i-step, i, step)
		if db >= w.ThresholdDB {
			out = append(out, i)
			i += 4 * step // hysteresis: skip the burst body
			continue
		}
		i += step / 2
	}
	return out
}

// CAT is the FMCW ranging baseline (Mao et al., MobiCom'16): the receiver
// mixes the incoming signal with the transmitted sweep; the beat-frequency
// peak maps linearly to delay.
type CAT struct {
	Sweep      []float64
	SampleRate float64
	BandHz     float64 // swept bandwidth B

	matcher templateMatcher // tracks Sweep
}

// NewCAT builds the baseline for a sweep covering bandHz of spectrum.
func NewCAT(sweep []float64, fs, bandHz float64) *CAT {
	return &CAT{Sweep: sweep, SampleRate: fs, BandHz: bandHz}
}

// Arrival estimates the sweep arrival index. It first coarse-aligns with
// correlation (CAT assumes rough sync from its tracking loop), then mixes
// rx·tx over the overlap and reads the residual delay off the beat
// spectrum: delay = f_beat · T / B.
func (c *CAT) Arrival(stream []float64) (idx float64, ok bool) {
	bank := c.matcher.get(c.Sweep)
	if bank == nil {
		return 0, false
	}
	corr := bank.NormalizedCrossCorrelateAllPooled(stream)[0]
	if corr == nil {
		return 0, false
	}
	defer dsp.PutF64(corr)
	return c.ArrivalFromCorr(corr, stream)
}

// Bank returns the single-template matcher bank for the current Sweep
// (nil when the sweep is empty) — the scan target for callers driving the
// baseline through a shared ingest pipeline, whose per-lag output feeds
// ArrivalFromCorr.
func (c *CAT) Bank() *dsp.MatcherBank { return c.matcher.get(c.Sweep) }

// ArrivalFromCorr runs CAT's mix-and-beat refinement from an already
// computed normalized correlation of the sweep against the stream — the
// entry point for callers that scanned several templates in one
// dsp.MatcherBank pass.
func (c *CAT) ArrivalFromCorr(corr, stream []float64) (idx float64, ok bool) {
	if len(corr) == 0 {
		return 0, false
	}
	coarse, peak := dsp.Max(corr)
	if peak <= 0 {
		return 0, false
	}
	// Back off so the true arrival lies after the mix window start; the
	// beat spectrum then reports the residual delay r ∈ [0, backoff*2).
	const backoff = 64
	start := coarse - backoff
	if start < 0 {
		start = 0
	}
	n := len(c.Sweep)
	if start+n > len(stream) {
		n = len(stream) - start
		if n < 256 {
			return 0, false
		}
	}
	// Mix: product of rx and tx. A delay d makes the product a tone at
	// f_beat = k·d/fs (k = B/T sweep rate in Hz/s).
	prod := make([]float64, n)
	for i := 0; i < n; i++ {
		prod[i] = stream[start+i] * c.Sweep[i]
	}
	// Window to tame leakage, then a real FFT of the padded mix.
	win := dsp.MakeWindow(dsp.Hann, n)
	dsp.ApplyWindow(prod, win)
	m := dsp.NextPow2(4 * n) // zero-pad for finer beat resolution
	pad := dsp.GetF64(m)
	copy(pad, prod)
	spec := dsp.GetC128(m/2 + 1)
	dsp.RFFT(spec, pad)
	mag := dsp.AbsComplex(spec[:m/2])
	dsp.PutC128(spec)
	dsp.PutF64(pad)
	// The beat for residual delays of ±backoff samples stays below
	// k·backoff·2: restrict the search to suppress audio-band leakage.
	sweepDur := float64(len(c.Sweep)) / c.SampleRate
	k := c.BandHz / sweepDur // Hz per second of delay
	maxBeat := k * (2.5 * backoff / c.SampleRate)
	maxBin := int(maxBeat / (c.SampleRate / float64(m)))
	if maxBin < 4 {
		maxBin = 4
	}
	if maxBin > len(mag) {
		maxBin = len(mag)
	}
	bin, _ := dsp.Max(mag[:maxBin])
	if bin < 0 {
		return 0, false
	}
	// Parabolic refinement of the beat bin.
	fb := float64(bin)
	if bin > 0 && bin < len(mag)-1 {
		den := mag[bin-1] - 2*mag[bin] + mag[bin+1]
		if den != 0 {
			fb += -0.5 * (mag[bin+1] - mag[bin-1]) / den
		}
	}
	beatHz := fb * c.SampleRate / float64(m)
	delaySamples := beatHz / k * c.SampleRate
	return float64(start) + delaySamples, true
}
