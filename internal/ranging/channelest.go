package ranging

import (
	"fmt"
	"math/cmplx"

	"uwpos/internal/dsp"
	"uwpos/internal/sig"
)

// ChannelEstimator computes least-squares channel profiles from received
// preambles (§2.2.1). It owns reusable FFT scratch, so one estimator per
// goroutine.
type ChannelEstimator struct {
	params sig.Params
	plan   *dsp.Plan
	baseX  []complex128 // X(k), the transmitted base-symbol spectrum (shared, read-only)
	binLo  int
	binHi  int

	// GuardTaps is how many taps before the coarse-sync point the profile
	// exposes, so a direct path that arrives *before* the strongest
	// correlation peak is still visible. The profile index g corresponds
	// to delay (g − GuardTaps) samples relative to coarse sync.
	GuardTaps int

	// BandWindow tapers the occupied band before transforming back to the
	// delay domain. A rectangular band leaves −13 dB sinc sidelobes that
	// the λ=0.2 direct-path threshold can mistake for early arrivals;
	// Hann (the default) trades delay resolution for −31 dB sidelobes.
	BandWindow dsp.Window

	scratch []complex128
	acc     []complex128
	win     []float64
}

// NewChannelEstimator builds an estimator for the preamble numerology.
func NewChannelEstimator(p sig.Params) *ChannelEstimator {
	lo, hi := p.BinRange()
	// The plan's Bluestein setup and the base spectrum are cached
	// package-wide, so per-trial estimator construction costs only the
	// scratch slices below.
	return &ChannelEstimator{
		params:     p,
		plan:       dsp.NewPlan(p.SymbolLen),
		baseX:      sig.SharedSymbolSpectrum(p),
		binLo:      lo,
		binHi:      hi,
		GuardTaps:  256,
		BandWindow: dsp.Hann,
		scratch:    make([]complex128, p.SymbolLen),
		acc:        make([]complex128, p.SymbolLen),
		win:        dsp.MakeWindow(dsp.Hann, hi-lo),
	}
}

// SetBandWindow changes the band taper (for ablation studies).
func (ce *ChannelEstimator) SetBandWindow(w dsp.Window) {
	ce.BandWindow = w
	ce.win = dsp.MakeWindow(w, ce.binHi-ce.binLo)
}

// Estimate returns the magnitude channel profile |h(n)| of length
// SymbolLen, normalized to peak 1, for a preamble whose coarse start index
// is coarseIdx in the stream. The estimator backs off by GuardTaps so
// early-arriving direct paths are not lost to circular wrap-around;
// profile index g maps to arrival sample coarseIdx − GuardTaps + g.
//
// The LS estimate is Ĥ(k) = ¼ Σᵢ Yᵢ(k) / (PNᵢ·X(k)) over the occupied
// band, then |IFFT| back to the delay domain.
func (ce *ChannelEstimator) Estimate(stream []float64, coarseIdx int) ([]float64, error) {
	p := ce.params
	start := coarseIdx - ce.GuardTaps
	if start < 0 {
		return nil, fmt.Errorf("ranging: coarse index %d leaves no room for the %d-tap guard", coarseIdx, ce.GuardTaps)
	}
	if start+p.PreambleLen() > len(stream) {
		return nil, fmt.Errorf("ranging: preamble at %d overruns stream of %d samples", coarseIdx, len(stream))
	}
	for i := range ce.acc {
		ce.acc[i] = 0
	}
	for s := 0; s < p.NumSymbols; s++ {
		a, b := p.SymbolAt(s)
		seg := stream[start+a : start+b]
		for i, v := range seg {
			ce.scratch[i] = complex(v, 0)
		}
		ce.plan.Forward(ce.scratch)
		inv := complex(p.PN[s], 0) // PN ∈ {−1, +1} so 1/PN == PN
		for k := ce.binLo; k < ce.binHi; k++ {
			x := ce.baseX[k]
			if x == 0 {
				continue
			}
			ce.acc[k] += ce.scratch[k] * inv / x
		}
	}
	scale := 1 / float64(p.NumSymbols)
	for k := ce.binLo; k < ce.binHi; k++ {
		ce.acc[k] *= complex(scale*ce.win[k-ce.binLo], 0)
		// Conjugate-symmetric counterpart for a real impulse response.
		ce.acc[p.SymbolLen-k] = cmplx.Conj(ce.acc[k])
	}
	ce.plan.Inverse(ce.acc)
	profile := make([]float64, p.SymbolLen)
	for i, v := range ce.acc {
		profile[i] = cmplx.Abs(v)
	}
	dsp.Normalize(profile)
	// Clear accumulator for the next call (Inverse overwrote it).
	for i := range ce.acc {
		ce.acc[i] = 0
	}
	return profile, nil
}

// SubcarrierSNR estimates the per-bin SNR (dB) of a received preamble at
// coarseIdx: the mean of the four per-symbol LS estimates gives the signal,
// their dispersion around that mean gives the noise (Fig. 22 methodology).
// Returns one (freqHz, snrDB) pair per occupied bin.
func (ce *ChannelEstimator) SubcarrierSNR(stream []float64, coarseIdx int) ([]SNRPoint, error) {
	p := ce.params
	start := coarseIdx
	if start < 0 || start+p.PreambleLen() > len(stream) {
		return nil, fmt.Errorf("ranging: preamble at %d out of stream bounds", coarseIdx)
	}
	nb := ce.binHi - ce.binLo
	perSym := make([][]complex128, p.NumSymbols)
	for s := 0; s < p.NumSymbols; s++ {
		a, b := p.SymbolAt(s)
		seg := stream[start+a : start+b]
		for i, v := range seg {
			ce.scratch[i] = complex(v, 0)
		}
		ce.plan.Forward(ce.scratch)
		hs := make([]complex128, nb)
		for k := ce.binLo; k < ce.binHi; k++ {
			x := ce.baseX[k]
			if x == 0 {
				continue
			}
			hs[k-ce.binLo] = ce.scratch[k] * complex(p.PN[s], 0) / x
		}
		perSym[s] = hs
	}
	out := make([]SNRPoint, nb)
	for b := 0; b < nb; b++ {
		var mean complex128
		for s := range perSym {
			mean += perSym[s][b]
		}
		mean /= complex(float64(len(perSym)), 0)
		var noise float64
		for s := range perSym {
			d := perSym[s][b] - mean
			noise += real(d)*real(d) + imag(d)*imag(d)
		}
		noise /= float64(len(perSym) - 1)
		sigPow := real(mean)*real(mean) + imag(mean)*imag(mean)
		freq := float64(ce.binLo+b) * p.SampleRate / float64(p.SymbolLen)
		out[b] = SNRPoint{FreqHz: freq, SNRDB: dsp.DB(sigPow / (noise + 1e-30))}
	}
	return out, nil
}

// SNRPoint is a per-subcarrier SNR sample.
type SNRPoint struct {
	FreqHz float64
	SNRDB  float64
}
