// Package ranging implements the receiver pipeline of §2.2: preamble
// detection (cross-correlation candidates validated by PN auto-correlation),
// least-squares channel estimation, and the dual-microphone joint direct-
// path search that turns channel profiles into time-of-arrival estimates.
// It also implements the two baselines the paper compares against —
// BeepBeep-style chirp correlation and CAT-style FMCW mixing — plus the
// per-subcarrier SNR estimator used for Fig. 22.
package ranging

import (
	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/sig"
)

// Detection is one validated preamble occurrence in a microphone stream.
type Detection struct {
	CoarseIndex int     // sample index of the preamble start (coarse sync)
	CorrPeak    float64 // normalized cross-correlation peak height
	AutoCorr    float64 // PN auto-correlation validation score in [−1, 1]
}

// DetectorConfig tunes preamble detection.
type DetectorConfig struct {
	// CandidateThreshold gates normalized cross-correlation peaks
	// considered as candidates (default 0.15 — deliberately permissive;
	// validation does the real work).
	CandidateThreshold float64
	// AutoCorrThreshold is the PN auto-correlation acceptance level
	// (paper: 0.35).
	AutoCorrThreshold float64
	// MinSeparation suppresses duplicate detections closer than this many
	// samples (default: half a preamble).
	MinSeparation int
	// MaxCandidates bounds work per stream (default 64).
	MaxCandidates int
	// DisablePrefilter skips the 1–5 kHz band-pass applied before
	// correlation and validation. The prefilter discards out-of-band
	// noise — roughly a 10 dB effective SNR gain against white ambient
	// noise — and is on by default, as any practical receiver would be.
	DisablePrefilter bool
}

func (c *DetectorConfig) defaults(p sig.Params) {
	if c.CandidateThreshold == 0 {
		c.CandidateThreshold = 0.15
	}
	if c.AutoCorrThreshold == 0 {
		c.AutoCorrThreshold = 0.35
	}
	if c.MinSeparation == 0 {
		c.MinSeparation = p.PreambleLen() / 2
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 64
	}
}

// Detector finds ranging preambles in microphone streams.
type Detector struct {
	params  sig.Params
	cfg     DetectorConfig
	matcher *dsp.Matcher
}

// NewDetector builds a detector for the given preamble numerology.
func NewDetector(p sig.Params, cfg DetectorConfig) *Detector {
	cfg.defaults(p)
	// A detector is rebuilt for every device on every simulated trial,
	// but the template depends only on the Params, so all trials and all
	// engine workers share one matcher — the template is transformed once
	// per padded length for the whole process.
	return &Detector{params: p, cfg: cfg, matcher: sig.SharedMatcher("preamble", p, sig.SharedPreamble)}
}

// Params returns the preamble numerology the detector was built with.
func (d *Detector) Params() sig.Params { return d.params }

// Template returns a copy of the reference preamble waveform. The
// detector's internal template is shared process-wide, so unlike the
// pre-matcher API (which returned the live per-detector slice), mutating
// the returned copy has no effect on detection.
func (d *Detector) Template() []float64 {
	return append([]float64(nil), d.matcher.Template()...)
}

// Detect scans the stream and returns validated detections sorted by index.
//
// Stage 1 (cross-correlation) proposes candidate offsets; underwater spiky
// noise produces abundant false candidates here (§2.2.1). Stage 2 validates
// each candidate by checking that the four received OFDM symbols, after
// unwinding the PN signs, are mutually coherent — noise bursts almost never
// replicate themselves four times at the symbol spacing.
//
// Detect is the one-shot view of the streaming pipeline: it feeds the
// whole stream through a StreamDetector as a single chunk. The streaming
// session computes correlation on a fixed absolute block grid, so chunked
// and one-shot detection agree bit for bit — the equivalence the
// streaming test harness enforces.
func (d *Detector) Detect(stream []float64) []Detection {
	sd := d.Stream()
	sd.Feed(stream)
	return sd.Flush()
}

// Stream opens a chunked detection session sharing this detector's
// configuration and precomputed matcher. See StreamDetector.
func (d *Detector) Stream() *StreamDetector {
	return d.StreamWith(nil)
}

// StreamWith opens a chunked detection session whose ingest pipeline
// reports per-buffer deadline headroom into meter (which may be shared
// across sessions and rounds). A nil meter disables the accounting —
// identical to Stream.
func (d *Detector) StreamWith(meter *ingest.Meter) *StreamDetector {
	return newStreamDetector(d.params, d.cfg, d.matcher, meter)
}

// Consumer opens a detection session in consumer mode, to be registered
// on an externally built ingest.Pipeline whose bank holds this detector's
// preamble template at index template. The caller's pipeline must scan
// normalized correlations and apply the detector's band-pass prefilter
// itself (or build the detector with DisablePrefilter); the session reads
// correlation lags and filtered samples from the pipeline instead of
// owning one.
func (d *Detector) Consumer(template int) *StreamDetector {
	return newStreamConsumer(d.params, d.cfg, template)
}

// ValidateCandidate computes the PN auto-correlation score for a candidate
// preamble start: the mean pairwise correlation of the four PN-corrected
// OFDM symbol bodies. Out-of-range candidates score 0. The stream must
// already be band-limited if the detector's prefilter is enabled (Detect
// and StreamDetector handle this internally).
func (d *Detector) ValidateCandidate(stream []float64, start int) float64 {
	return validatePN(d.params, stream, start)
}

// validatePN is the stage-2 scoring shared by the one-shot and streaming
// detectors: the mean pairwise correlation of the PN-corrected OFDM
// symbol bodies at the candidate start.
func validatePN(p sig.Params, stream []float64, start int) float64 {
	if start < 0 || start+p.PreambleLen() > len(stream) {
		return 0
	}
	segs := make([][]float64, p.NumSymbols)
	for s := 0; s < p.NumSymbols; s++ {
		a, b := p.SymbolAt(s)
		seg := make([]float64, p.SymbolLen)
		copy(seg, stream[start+a:start+b])
		if p.PN[s] < 0 {
			for i := range seg {
				seg[i] = -seg[i]
			}
		}
		segs[s] = seg
	}
	var sum float64
	var count int
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			sum += dsp.SegmentCorrelation(segs[i], segs[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
