package ranging

import (
	"math"

	"uwpos/internal/dsp"
)

// DirectPathConfig tunes the joint dual-microphone direct-path search.
type DirectPathConfig struct {
	// Lambda is the conservative margin above the noise floor (paper: 0.2
	// on profiles normalized to peak 1).
	Lambda float64
	// MaxMicOffset is the physical constraint |n−m| ≤ d·fs/c in samples.
	MaxMicOffset int
	// NoiseTailTaps is how many trailing taps estimate the noise floor
	// (paper: 100).
	NoiseTailTaps int
	// SearchWindow caps how deep into the profile to search (taps).
	// Defaults to half the profile.
	SearchWindow int
}

func (c *DirectPathConfig) defaults(profileLen int) {
	if c.Lambda == 0 {
		c.Lambda = 0.2
	}
	if c.MaxMicOffset == 0 {
		c.MaxMicOffset = 5 // ceil(0.16 m · 44100 / 1500) ≈ 4.7
	}
	if c.NoiseTailTaps == 0 {
		c.NoiseTailTaps = 100
	}
	if c.SearchWindow == 0 || c.SearchWindow > profileLen {
		c.SearchWindow = profileLen / 2
	}
}

// DirectPathResult is the outcome of the joint search.
type DirectPathResult struct {
	TauTaps float64 // direct-path delay (n+m)/2 in profile taps
	N, M    int     // per-mic direct-path tap indices (mic 1, mic 2)
	OK      bool    // false when no pair satisfied the constraints
}

// JointDirectPath solves the constrained minimization of §2.2 on two
// channel profiles (both normalized to peak 1):
//
//	min (n+m)/2  s.t.  h₁(n) > w₁+λ,  h₂(m) > w₂+λ,
//	                   IsPeak(n,h₁) ∧ IsPeak(m,h₂),  |n−m| ≤ maxOffset
//
// where w₁, w₂ are per-profile noise floors from the trailing taps. The
// earliest *mutually consistent* peaks win, which rejects spurious early
// bumps that appear on only one microphone (Fig. 7's "wrong peak").
func JointDirectPath(h1, h2 []float64, cfg DirectPathConfig) DirectPathResult {
	if len(h1) == 0 || len(h2) == 0 {
		return DirectPathResult{}
	}
	cfg.defaults(len(h1))
	w1 := dsp.NoiseFloor(h1, cfg.NoiseTailTaps)
	w2 := dsp.NoiseFloor(h2, cfg.NoiseTailTaps)
	t1 := w1 + cfg.Lambda
	t2 := w2 + cfg.Lambda
	peaks1 := earlyPeaks(h1, t1, cfg.SearchWindow)
	peaks2 := earlyPeaks(h2, t2, cfg.SearchWindow)
	best := DirectPathResult{TauTaps: math.Inf(1)}
	for _, n := range peaks1 {
		for _, m := range peaks2 {
			if abs(n-m) > cfg.MaxMicOffset {
				continue
			}
			tau := float64(n+m) / 2
			if tau < best.TauTaps {
				best = DirectPathResult{TauTaps: tau, N: n, M: m, OK: true}
			}
		}
	}
	if !best.OK {
		return DirectPathResult{}
	}
	return best
}

// SingleMicDirectPath is the single-microphone ablation (Fig. 11b): the
// earliest peak above the noise floor plus lambda.
func SingleMicDirectPath(h []float64, cfg DirectPathConfig) DirectPathResult {
	if len(h) == 0 {
		return DirectPathResult{}
	}
	cfg.defaults(len(h))
	w := dsp.NoiseFloor(h, cfg.NoiseTailTaps)
	peaks := earlyPeaks(h, w+cfg.Lambda, cfg.SearchWindow)
	if len(peaks) == 0 {
		return DirectPathResult{}
	}
	return DirectPathResult{TauTaps: float64(peaks[0]), N: peaks[0], M: peaks[0], OK: true}
}

// earlyPeaks lists peak indices above threshold within the window, in
// ascending index order. A ±3-tap dominance test rejects the single-sample
// noise ripples that ride on the rising slope of band-limited lobes and
// would otherwise bias the "earliest peak" a dozen taps early.
func earlyPeaks(h []float64, threshold float64, window int) []int {
	if window > len(h) {
		window = len(h)
	}
	var out []int
	for i := 0; i < window; i++ {
		if h[i] > threshold && dsp.IsPeakWide(i, h, 3) {
			if i > 0 && h[i] == h[i-1] {
				continue // plateau interior
			}
			out = append(out, i)
		}
	}
	return out
}

// MicOffsetSign returns sign(m−n): which microphone heard the direct path
// first. This single bit per remote device feeds the flipping-
// disambiguation vote (§2.1.4). Result is +1 when mic 1 hears it first
// (n < m), −1 when mic 2 does, 0 for ties.
func MicOffsetSign(r DirectPathResult) int {
	switch {
	case !r.OK:
		return 0
	case r.M > r.N:
		return 1
	case r.M < r.N:
		return -1
	default:
		return 0
	}
}
