package ranging

import (
	"math"
	"slices"
	"testing"

	"uwpos/internal/sig"
)

// fuzzParams shrinks the preamble numerology (4×(256+64) = 1280 samples
// instead of 9840) so each fuzz execution stays in the low milliseconds
// while exercising the identical detection pipeline.
func fuzzParams() sig.Params {
	p := sig.DefaultParams()
	p.SymbolLen = 256
	p.CPLen = 64
	return p
}

// FuzzStreamDetector fuzzes stream content, preamble placement and
// chunk-split points: the chunked StreamDetector must produce exactly the
// one-shot Detector's detection set — indices equal, scores within 1e-9 —
// for every input and every partition, including boundaries inside a
// preamble and on the correlation peak.
func FuzzStreamDetector(f *testing.F) {
	// Seeds: an embedded preamble mid-stream with two cuts; a constant
	// stream (plateau correlations); pure byte noise.
	f.Add([]byte{2, 1, 100, 30, 60, 90, 5, 9, 13, 200, 40, 7, 77, 3})
	f.Add(append([]byte{1, 2, 128, 64}, make([]byte, 64)...))
	seed := []byte{0, 3, 50}
	for i := 0; i < 200; i++ {
		seed = append(seed, byte(101*i+17))
	}
	f.Add(seed)
	p := fuzzParams()
	if err := p.Validate(); err != nil {
		f.Fatal(err)
	}
	pre := sig.SharedPreamble(p)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		nEmbed := int(data[0]) % 3
		nCuts := int(data[1]) % 6
		total := 2*len(pre) + 16*int(data[2]) // 2560..6640 samples
		body := data[3:]
		stream := make([]float64, total)
		for i := range stream {
			stream[i] = 0.3 * (float64(body[i%len(body)]) - 128) / 128
		}
		for k := 0; k < nEmbed && k < len(body); k++ {
			at := int(body[k]) * (total - len(pre)) / 256
			amp := 0.4 + float64(body[(k+1)%len(body)])/256
			for i, v := range pre {
				stream[at+i] += amp * v
			}
		}

		d := NewDetector(p, DetectorConfig{})
		want := d.Detect(stream)

		cuts := make([]int, 0, nCuts)
		for k := 0; k < nCuts && k+nEmbed < len(body); k++ {
			cuts = append(cuts, int(body[k+nEmbed])*total/256)
		}
		slices.Sort(cuts)
		got := feedDetector(d.Stream(), stream, cuts)
		if len(got) != len(want) {
			t.Fatalf("cuts %v: %d detections, want %d (%+v vs %+v)", cuts, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].CoarseIndex != want[i].CoarseIndex {
				t.Fatalf("cuts %v: detection %d at %d, want %d", cuts, i, got[i].CoarseIndex, want[i].CoarseIndex)
			}
			if math.Abs(got[i].CorrPeak-want[i].CorrPeak) > 1e-9 ||
				math.Abs(got[i].AutoCorr-want[i].AutoCorr) > 1e-9 {
				t.Fatalf("cuts %v: detection %d scores (%g,%g), want (%g,%g)", cuts, i,
					got[i].CorrPeak, got[i].AutoCorr, want[i].CorrPeak, want[i].AutoCorr)
			}
		}
	})
}
