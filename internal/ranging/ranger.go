package ranging

import (
	"fmt"

	"uwpos/internal/sig"
)

// TOAResult is a refined time-of-arrival estimate for one preamble.
type TOAResult struct {
	Detection  Detection
	ArrivalIdx float64 // direct-path arrival, fractional sample index in the stream
	MicSign    int     // sign(m−n) for flipping disambiguation (+1: mic 1 first)
	DualMicOK  bool    // whether the joint search succeeded (else fallback)
}

// Ranger is the full §2.2 receiver: detection, LS channel estimation on
// both microphones and the joint direct-path search. One Ranger per
// receiving device.
type Ranger struct {
	Detector  *Detector
	Estimator *ChannelEstimator
	// EstimatorB is a second estimator instance reserved for the second
	// microphone stream (estimators carry scratch state).
	EstimatorB *ChannelEstimator
	DPConfig   DirectPathConfig
}

// NewRanger assembles a receiver for the given numerology.
func NewRanger(p sig.Params, det DetectorConfig, dp DirectPathConfig) *Ranger {
	return &Ranger{
		Detector:   NewDetector(p, det),
		Estimator:  NewChannelEstimator(p),
		EstimatorB: NewChannelEstimator(p),
		DPConfig:   dp,
	}
}

// ProcessDualMic detects preambles on mic1 and refines each arrival using
// both microphone streams. mic2 may be nil, in which case the single-mic
// path is used throughout.
func (r *Ranger) ProcessDualMic(mic1, mic2 []float64) ([]TOAResult, error) {
	return r.Refine(mic1, mic2, r.Detector.Detect(mic1))
}

// Refine runs channel estimation and the direct-path search for an
// already-detected set — the receiver back half, split out so callers
// that detect incrementally (a StreamDetector fed from audio-buffer
// chunks) can hand their detections to the same refinement pipeline.
// The detections must refer to sample indices of mic1.
func (r *Ranger) Refine(mic1, mic2 []float64, dets []Detection) ([]TOAResult, error) {
	out := make([]TOAResult, 0, len(dets))
	for _, det := range dets {
		res, err := r.RefineArrival(mic1, mic2, det)
		if err != nil {
			continue // unrectifiable edge detection: skip, as the app would
		}
		out = append(out, res)
	}
	if len(out) == 0 && len(dets) > 0 {
		return nil, fmt.Errorf("ranging: %d detections but none refinable", len(dets))
	}
	return out, nil
}

// RefineArrival runs channel estimation + direct-path search for one
// detection. The returned arrival index is in mic1's sample timeline.
func (r *Ranger) RefineArrival(mic1, mic2 []float64, det Detection) (TOAResult, error) {
	h1, err := r.Estimator.Estimate(mic1, det.CoarseIndex)
	if err != nil {
		return TOAResult{}, err
	}
	guard := float64(r.Estimator.GuardTaps)
	if mic2 == nil {
		sp := SingleMicDirectPath(h1, r.DPConfig)
		if !sp.OK {
			return TOAResult{}, fmt.Errorf("ranging: no direct path found")
		}
		return TOAResult{
			Detection:  det,
			ArrivalIdx: float64(det.CoarseIndex) - guard + sp.TauTaps,
		}, nil
	}
	h2, err := r.EstimatorB.Estimate(mic2, det.CoarseIndex)
	if err != nil {
		return TOAResult{}, err
	}
	dp := JointDirectPath(h1, h2, r.DPConfig)
	if dp.OK {
		return TOAResult{
			Detection:  det,
			ArrivalIdx: float64(det.CoarseIndex) - guard + dp.TauTaps,
			MicSign:    MicOffsetSign(dp),
			DualMicOK:  true,
		}, nil
	}
	// Fallback: single-mic on the primary stream.
	sp := SingleMicDirectPath(h1, r.DPConfig)
	if !sp.OK {
		return TOAResult{}, fmt.Errorf("ranging: no direct path on either mic")
	}
	return TOAResult{
		Detection:  det,
		ArrivalIdx: float64(det.CoarseIndex) - guard + sp.TauTaps,
	}, nil
}

// ProcessSingleMic is the single-microphone ablation of Fig. 11b, run on
// an arbitrary mic stream.
func (r *Ranger) ProcessSingleMic(mic []float64) ([]TOAResult, error) {
	return r.ProcessDualMic(mic, nil)
}
