package ranging

import (
	"math"
	"math/rand"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/dsp"
	"uwpos/internal/geom"
	"uwpos/internal/sig"
)

func testParams() sig.Params { return sig.DefaultParams() }

// makeStream embeds the preamble at a given index in Gaussian noise.
func makeStream(t *testing.T, p sig.Params, at, total int, amp, noiseRMS float64, seed int64) []float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	stream := make([]float64, total)
	for i := range stream {
		stream[i] = noiseRMS * r.NormFloat64()
	}
	pre := p.Preamble()
	if at+len(pre) > total {
		t.Fatal("stream too short")
	}
	for i, v := range pre {
		stream[at+i] += amp * v
	}
	return stream
}

func TestDetectorFindsCleanPreamble(t *testing.T) {
	p := testParams()
	const at = 20000
	stream := makeStream(t, p, at, 60000, 1.0, 0.01, 1)
	d := NewDetector(p, DetectorConfig{})
	dets := d.Detect(stream)
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	if e := abs(dets[0].CoarseIndex - at); e > 3 {
		t.Errorf("coarse index %d, want %d (err %d)", dets[0].CoarseIndex, at, e)
	}
	if dets[0].AutoCorr < 0.9 {
		t.Errorf("clean preamble autocorr %g, want ~1", dets[0].AutoCorr)
	}
}

func TestDetectorLowSNR(t *testing.T) {
	p := testParams()
	const at = 15000
	// Per-sample wideband SNR ≈ −6 dB (preamble RMS ≈ 0.28·amp); the
	// in-band prefilter recovers ~10 dB, putting validation in its
	// operating regime.
	stream := makeStream(t, p, at, 50000, 0.25, 0.14, 2)
	d := NewDetector(p, DetectorConfig{CandidateThreshold: 0.05})
	dets := d.Detect(stream)
	if len(dets) != 1 {
		t.Fatalf("got %d detections at low SNR, want 1", len(dets))
	}
	if e := abs(dets[0].CoarseIndex - at); e > 5 {
		t.Errorf("coarse error %d samples", e)
	}
	// Without the prefilter the same stream is missed: the validation
	// stage sees the full-band noise.
	dRaw := NewDetector(p, DetectorConfig{CandidateThreshold: 0.05, DisablePrefilter: true})
	if raw := dRaw.Detect(stream); len(raw) >= 1 && raw[0].AutoCorr > dets[0].AutoCorr {
		t.Errorf("prefilter should improve the validation score (raw %g vs filtered %g)",
			raw[0].AutoCorr, dets[0].AutoCorr)
	}
}

// TestDetectorPeakInvariance: the Matcher-backed detector must find its
// candidate peaks at exactly the indices the one-shot reference
// correlation produces — the precomputed-spectrum path may differ from
// the reference in low-order bits but never in peak placement.
func TestDetectorPeakInvariance(t *testing.T) {
	p := testParams()
	for seed := int64(40); seed < 45; seed++ {
		at := 8000 + int(seed*1777)%30000
		stream := makeStream(t, p, at, 70000, 0.8, 0.05, seed)
		d := NewDetector(p, DetectorConfig{})
		filtered := sig.BandLimit(stream, p.BandLowHz, p.BandHighHz, p.SampleRate)
		ref := dsp.NormalizedCrossCorrelate(filtered, p.Preamble())
		refPeaks := dsp.FindPeaks(ref, 0.15)
		refIdx := make(map[int]bool, len(refPeaks))
		for _, pk := range refPeaks {
			refIdx[pk.Index] = true
		}
		dets := d.Detect(stream)
		if len(dets) == 0 {
			t.Fatalf("seed %d: preamble at %d not detected", seed, at)
		}
		for _, det := range dets {
			if !refIdx[det.CoarseIndex] {
				t.Errorf("seed %d: detection at %d is not a reference correlation peak", seed, det.CoarseIndex)
			}
		}
		if e := abs(dets[0].CoarseIndex - at); e > 3 {
			t.Errorf("seed %d: coarse index %d, want %d", seed, dets[0].CoarseIndex, at)
		}
	}
}

func TestDetectorRejectsNoise(t *testing.T) {
	p := testParams()
	r := rand.New(rand.NewSource(3))
	stream := make([]float64, 60000)
	for i := range stream {
		stream[i] = 0.5 * r.NormFloat64()
	}
	d := NewDetector(p, DetectorConfig{})
	if dets := d.Detect(stream); len(dets) != 0 {
		t.Errorf("false positives on pure noise: %v", dets)
	}
}

func TestDetectorRejectsImpulsiveSpikes(t *testing.T) {
	// Loud decaying bursts excite the cross-correlator but cannot pass the
	// 4-symbol PN validation (the paper's motivation for auto-correlation).
	p := testParams()
	r := rand.New(rand.NewSource(4))
	stream := make([]float64, 80000)
	for i := range stream {
		stream[i] = 0.01 * r.NormFloat64()
	}
	for k := 0; k < 30; k++ {
		at := 1000 + r.Intn(70000)
		f := 2000 + 2000*r.Float64()
		for i := 0; i < 800; i++ {
			if at+i >= len(stream) {
				break
			}
			stream[at+i] += 3 * math.Exp(-float64(i)/200) * math.Sin(2*math.Pi*f*float64(i)/44100)
		}
	}
	d := NewDetector(p, DetectorConfig{})
	if dets := d.Detect(stream); len(dets) != 0 {
		t.Errorf("impulsive noise produced %d false detections", len(dets))
	}
}

func TestValidateCandidateExact(t *testing.T) {
	p := testParams()
	stream := makeStream(t, p, 5000, 30000, 1, 0, 5)
	d := NewDetector(p, DetectorConfig{})
	if s := d.ValidateCandidate(stream, 5000); s < 0.999 {
		t.Errorf("noiseless validation score %g", s)
	}
	// A misaligned candidate scores lower than aligned (the cyclic-prefix
	// structure keeps some correlation at any shift, so the margin is
	// moderate rather than total).
	if s := d.ValidateCandidate(stream, 5000+977); s > 0.9 {
		t.Errorf("misaligned score %g unexpectedly high", s)
	}
	// Out of range is 0.
	if s := d.ValidateCandidate(stream, -1); s != 0 {
		t.Error("negative index should score 0")
	}
	if s := d.ValidateCandidate(stream, len(stream)); s != 0 {
		t.Error("past-end index should score 0")
	}
}

func TestChannelEstimatorSingleTap(t *testing.T) {
	p := testParams()
	const at = 10000
	stream := makeStream(t, p, at, 40000, 1, 0.005, 6)
	ce := NewChannelEstimator(p)
	h, err := ce.Estimate(stream, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != p.SymbolLen {
		t.Fatalf("profile length %d", len(h))
	}
	idx, v := dsp.Max(h)
	if v != 1 {
		t.Errorf("profile not normalized: max %g", v)
	}
	if e := abs(idx - ce.GuardTaps); e > 2 {
		t.Errorf("direct tap at %d, want %d", idx, ce.GuardTaps)
	}
}

func TestChannelEstimatorTwoTaps(t *testing.T) {
	p := testParams()
	const at = 10000
	const echoDelay = 60
	r := rand.New(rand.NewSource(7))
	stream := make([]float64, 40000)
	for i := range stream {
		stream[i] = 0.003 * r.NormFloat64()
	}
	pre := p.Preamble()
	for i, v := range pre {
		stream[at+i] += v
		stream[at+echoDelay+i] += 0.6 * v
	}
	ce := NewChannelEstimator(p)
	h, err := ce.Estimate(stream, at)
	if err != nil {
		t.Fatal(err)
	}
	// Two dominant peaks at guard and guard+echoDelay.
	p1 := h[ce.GuardTaps]
	p2 := h[ce.GuardTaps+echoDelay]
	if p1 < 0.8 {
		t.Errorf("direct tap magnitude %g", p1)
	}
	if p2 < 0.4 || p2 > 0.85 {
		t.Errorf("echo magnitude %g, want ~0.6", p2)
	}
	// Elsewhere (far from both peaks) the profile should be quiet.
	var quiet float64
	for i := ce.GuardTaps + 300; i < ce.GuardTaps+500; i++ {
		if h[i] > quiet {
			quiet = h[i]
		}
	}
	if quiet > 0.2 {
		t.Errorf("profile floor %g too high", quiet)
	}
}

func TestChannelEstimatorErrors(t *testing.T) {
	p := testParams()
	ce := NewChannelEstimator(p)
	stream := make([]float64, p.PreambleLen()+100)
	if _, err := ce.Estimate(stream, 10); err == nil {
		t.Error("coarse index inside the guard should error")
	}
	if _, err := ce.Estimate(stream, len(stream)); err == nil {
		t.Error("overrun should error")
	}
}

func TestJointDirectPathRejectsSingleMicGhost(t *testing.T) {
	// A spurious early peak on mic 1 only must not win the joint search.
	h1 := make([]float64, 600)
	h2 := make([]float64, 600)
	bump(h1, 80, 0.5)  // ghost, only on mic 1
	bump(h1, 150, 1.0) // true direct
	bump(h2, 152, 1.0)
	cfg := DirectPathConfig{MaxMicOffset: 5}
	res := JointDirectPath(h1, h2, cfg)
	if !res.OK {
		t.Fatal("joint search failed")
	}
	if math.Abs(res.TauTaps-151) > 2 {
		t.Errorf("tau %g, want ~151 (ghost rejected)", res.TauTaps)
	}
}

func TestJointDirectPathAcceptsConsistentEarly(t *testing.T) {
	// A weak direct path present on both mics beats a stronger later echo.
	h1 := make([]float64, 600)
	h2 := make([]float64, 600)
	bump(h1, 100, 0.45)
	bump(h2, 103, 0.4)
	bump(h1, 180, 1.0)
	bump(h2, 181, 1.0)
	res := JointDirectPath(h1, h2, DirectPathConfig{MaxMicOffset: 5})
	if !res.OK || math.Abs(res.TauTaps-101.5) > 2 {
		t.Fatalf("tau %g ok=%v, want ~101.5", res.TauTaps, res.OK)
	}
	if MicOffsetSign(res) != 1 {
		t.Errorf("mic sign %d, want +1 (mic1 first)", MicOffsetSign(res))
	}
}

func TestJointDirectPathBelowFloorFails(t *testing.T) {
	h1 := make([]float64, 600)
	h2 := make([]float64, 600)
	// Noise floor ~0.9 everywhere: nothing exceeds floor+lambda.
	for i := range h1 {
		h1[i] = 0.85 + 0.1*math.Sin(float64(i))
		h2[i] = 0.85 + 0.1*math.Cos(float64(i))
	}
	res := JointDirectPath(h1, h2, DirectPathConfig{})
	if res.OK {
		t.Error("search should fail when profiles are all noise")
	}
	if MicOffsetSign(res) != 0 {
		t.Error("failed search should have sign 0")
	}
	if r := JointDirectPath(nil, h2, DirectPathConfig{}); r.OK {
		t.Error("nil profile should fail")
	}
}

func TestSingleMicPicksEarliestPeak(t *testing.T) {
	h := make([]float64, 600)
	bump(h, 90, 0.5)
	bump(h, 200, 1.0)
	res := SingleMicDirectPath(h, DirectPathConfig{})
	if !res.OK || math.Abs(res.TauTaps-90) > 1 {
		t.Fatalf("single-mic tau %g, want 90", res.TauTaps)
	}
	if r := SingleMicDirectPath(nil, DirectPathConfig{}); r.OK {
		t.Error("nil profile should fail")
	}
}

// bump adds a narrow triangular peak, wide enough to be a band-limited-
// plausible local max.
func bump(h []float64, at int, amp float64) {
	for k := -8; k <= 8; k++ {
		i := at + k
		if i < 0 || i >= len(h) {
			continue
		}
		v := amp * (1 - math.Abs(float64(k))/9)
		if v > h[i] {
			h[i] = v
		}
	}
}

// TestEndToEndThroughChannel is the flagship ranging test: a full preamble
// rendered through dock multipath + noise to a dual-mic phone 20 m away,
// recovered by the complete pipeline with sub-metre error.
func TestEndToEndThroughChannel(t *testing.T) {
	p := testParams()
	env := channel.Dock()
	rng := rand.New(rand.NewSource(11))
	const fs = 44100.0

	tx := geom.Vec3{X: 0, Y: 0, Z: 2.5}
	micA := geom.Vec3{X: 20, Y: 0, Z: 2.5}
	micB := geom.Vec3{X: 20.16, Y: 0, Z: 2.5}

	total := 60000
	streamA := make([]float64, total)
	streamB := make([]float64, total)
	const txStart = 12000
	pre := p.Preamble()
	tapsA := env.WithScatter(env.ImpulseResponse(tx, micA, channel.ImpulseOptions{}), rng)
	tapsB := env.WithScatter(env.ImpulseResponse(tx, micB, channel.ImpulseOptions{}), rng)
	// Amplify: unit TX at 20 m gives amplitude ~1/20; scale so SNR is
	// realistic vs ambient noise.
	for i := range tapsA {
		tapsA[i].Amplitude *= 30
	}
	for i := range tapsB {
		tapsB[i].Amplitude *= 30
	}
	channel.Render(streamA, pre, tapsA, txStart, fs)
	channel.Render(streamB, pre, tapsB, txStart, fs)
	env.AddNoise(streamA, fs, rng)
	env.AddNoise(streamB, fs, rng)

	r := NewRanger(p, DetectorConfig{}, DirectPathConfig{})
	results, err := r.ProcessDualMic(streamA, streamB)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d arrivals, want 1", len(results))
	}
	c := env.SoundSpeed(2.5)
	wantArrival := float64(txStart) + tx.Dist(micA)/c*fs
	errSamples := math.Abs(results[0].ArrivalIdx - wantArrival)
	errMetres := errSamples / fs * c
	if errMetres > 0.75 {
		t.Errorf("end-to-end ranging error %.2f m (%.1f samples)", errMetres, errSamples)
	}
}

func TestBeepBeepArrival(t *testing.T) {
	const fs = 44100.0
	chirp := sig.LinearChirp(1000, 5000, 9840, fs)
	r := rand.New(rand.NewSource(12))
	stream := make([]float64, 40000)
	for i := range stream {
		stream[i] = 0.02 * r.NormFloat64()
	}
	const at = 9000
	for i, v := range chirp {
		stream[at+i] += v
	}
	bb := NewBeepBeep(chirp)
	idx, ok := bb.Arrival(stream)
	if !ok {
		t.Fatal("no arrival")
	}
	if math.Abs(idx-at) > 3 {
		t.Errorf("BeepBeep arrival %g, want %d", idx, at)
	}
	if _, ok := bb.Arrival(nil); ok {
		t.Error("nil stream should fail")
	}
}

func TestBeepBeepLocksOntoStrongestPathUnderOcclusion(t *testing.T) {
	// With the direct path attenuated below a strong echo, plain
	// correlation (BeepBeep) follows the echo — the failure mode our
	// dual-mic channel-domain search avoids (Fig. 12b's gap).
	const fs = 44100.0
	chirp := sig.LinearChirp(1000, 5000, 9840, fs)
	stream := make([]float64, 40000)
	const at = 9000
	const echo = 120
	for i, v := range chirp {
		stream[at+i] += 0.2 * v      // occluded direct
		stream[at+echo+i] += 1.0 * v // dominant reflection
	}
	bb := NewBeepBeep(chirp)
	idx, ok := bb.Arrival(stream)
	if !ok {
		t.Fatal("no arrival")
	}
	if idx < at+echo-5 {
		t.Errorf("expected echo lock at ~%d, got %g", at+echo, idx)
	}
}

func TestCATArrivalClean(t *testing.T) {
	const fs = 44100.0
	sweep := sig.FMCWSweep(1000, 5000, 9840, fs)
	r := rand.New(rand.NewSource(13))
	stream := make([]float64, 40000)
	for i := range stream {
		stream[i] = 0.01 * r.NormFloat64()
	}
	const at = 11000
	for i, v := range sweep {
		stream[at+i] += v
	}
	cat := NewCAT(sweep, fs, 4000)
	idx, ok := cat.Arrival(stream)
	if !ok {
		t.Fatal("no arrival")
	}
	if math.Abs(idx-at) > 12 {
		t.Errorf("CAT arrival %g, want %d", idx, at)
	}
}

func TestWindowPowerDetector(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	stream := make([]float64, 30000)
	for i := range stream {
		stream[i] = 0.01 * r.NormFloat64()
	}
	for i := 12000; i < 14000; i++ {
		stream[i] += 0.5 * math.Sin(2*math.Pi*3000*float64(i)/44100)
	}
	det := WindowPowerDetector{WindowLen: 441, ThresholdDB: 6}
	hits := det.Detect(stream)
	if len(hits) == 0 {
		t.Fatal("burst not detected")
	}
	if hits[0] < 11500 || hits[0] > 13000 {
		t.Errorf("detection at %d, want ~12000", hits[0])
	}
	// Degenerate config.
	if (WindowPowerDetector{}).Detect(stream) != nil {
		t.Error("zero window should detect nothing")
	}
}

func TestSubcarrierSNRRisesWithSignal(t *testing.T) {
	p := testParams()
	ce := NewChannelEstimator(p)
	strong := makeStream(t, p, 5000, 30000, 1.0, 0.01, 15)
	weak := makeStream(t, p, 5000, 30000, 0.1, 0.01, 15)
	sStrong, err := ce.SubcarrierSNR(strong, 5000)
	if err != nil {
		t.Fatal(err)
	}
	sWeak, err := ce.SubcarrierSNR(weak, 5000)
	if err != nil {
		t.Fatal(err)
	}
	meanDB := func(pts []SNRPoint) float64 {
		var s float64
		for _, pt := range pts {
			s += pt.SNRDB
		}
		return s / float64(len(pts))
	}
	ms, mw := meanDB(sStrong), meanDB(sWeak)
	if ms < mw+10 {
		t.Errorf("strong SNR %g should exceed weak %g by >10 dB", ms, mw)
	}
	// Frequencies must cover 1–5 kHz.
	if sStrong[0].FreqHz < 900 || sStrong[0].FreqHz > 1100 {
		t.Errorf("first subcarrier at %g Hz", sStrong[0].FreqHz)
	}
	last := sStrong[len(sStrong)-1].FreqHz
	if last < 4900 || last > 5100 {
		t.Errorf("last subcarrier at %g Hz", last)
	}
	if _, err := ce.SubcarrierSNR(strong, -1); err == nil {
		t.Error("out-of-bounds should error")
	}
}

func BenchmarkDetect2s(b *testing.B) {
	p := testParams()
	r := rand.New(rand.NewSource(1))
	stream := make([]float64, 88200)
	for i := range stream {
		stream[i] = 0.02 * r.NormFloat64()
	}
	pre := p.Preamble()
	copy(stream[30000:], pre)
	d := NewDetector(p, DetectorConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(stream)
	}
}

func BenchmarkChannelEstimate(b *testing.B) {
	p := testParams()
	r := rand.New(rand.NewSource(2))
	stream := make([]float64, 30000)
	for i := range stream {
		stream[i] = 0.01 * r.NormFloat64()
	}
	pre := p.Preamble()
	copy(stream[5000:], pre)
	ce := NewChannelEstimator(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ce.Estimate(stream, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBaselinesEmptyTemplateReturnsFalse(t *testing.T) {
	// Regression: the bank-backed correlation path must keep the old
	// graceful ok=false for an empty (or emptied) template rather than
	// panicking in dsp.NewMatcherBank.
	stream := make([]float64, 1000)
	if _, ok := NewBeepBeep(nil).Arrival(stream); ok {
		t.Error("BeepBeep with empty template must report ok=false")
	}
	bb := NewBeepBeep([]float64{1, 2, 3})
	bb.Template = nil // exported field is documented as mutable
	if _, ok := bb.Arrival(stream); ok {
		t.Error("BeepBeep with emptied template must report ok=false")
	}
	if _, ok := NewCAT(nil, 44100, 4000).Arrival(stream); ok {
		t.Error("CAT with empty sweep must report ok=false")
	}
}
