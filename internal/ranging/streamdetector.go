package ranging

import (
	"math"
	"sort"

	"uwpos/internal/dsp"
	"uwpos/internal/sig"
)

// StreamDetector runs preamble detection on audio as the OS delivers it,
// buffer by buffer, instead of on a complete per-round stream. It carries
// the band-pass prefilter state, the overlap-save correlation overlap, the
// peak-scan lookahead and the candidate set across chunk boundaries, so a
// preamble is found no matter how the stream is cut — including a chunk
// boundary landing in the middle of the preamble or right on the
// correlation peak.
//
// The session is built so that the final detection set is exactly what
// the one-shot Detector computes on the concatenated stream:
//
//   - the prefilter replicates sig.BandLimit's direct FIR arithmetic with
//     carried history (bit-identical for every chunk partition);
//   - correlation runs on a dsp.StreamMatcher whose overlap-save blocks
//     sit on a fixed absolute grid (bit-identical for every partition);
//   - candidate peaks are decided with one lag of lookahead, so a peak on
//     a chunk boundary is reported exactly once;
//   - MinSeparation dedup is applied over the whole candidate set each
//     time, so a provisional detection is replaced when a higher peak
//     within MinSeparation arrives in a later chunk.
//
// Detections reports the current (provisional) set at any time; Flush
// ends the stream and returns the final set. Indices are global sample
// positions in the full stream. A session is single-stream and not safe
// for concurrent use; sessions share the process-wide template matcher
// read-only, so any number of sessions may run concurrently.
type StreamDetector struct {
	params sig.Params
	cfg    DetectorConfig
	sm     *dsp.StreamMatcher

	// Streaming band-pass prefilter (nil fir when disabled): filtered[n] =
	// y[n+delay] with y the causal FIR output and zeros past the end,
	// replicating sig.BandLimit's group-delay compensation.
	fir     []float64
	delay   int
	tail    []float64 // last len(fir)-1 raw samples
	tailLen int
	rawFed  int
	fbuf    []float64 // filter scratch: tail ++ chunk
	fout    []float64 // filtered-output scratch

	// Filtered samples retained for PN validation: win[0] holds global
	// filtered index winStart. The window is trimmed to the earliest
	// still-undecided correlation lag, bounding it at one FFT block plus
	// one chunk regardless of stream length.
	win      []float64
	winStart int

	// Peak scan with one-lag lookahead over the normalized correlation.
	seen     int // correlation lags scanned (global index of the next lag)
	prevVal  float64
	pendVal  float64
	havePend bool

	cands []candidate

	// topVals tracks the MaxCandidates strongest candidate peaks seen so
	// far (an unordered min-tracked set); only candidates that enter it
	// are PN-validated eagerly. Any candidate in the final strongest-
	// MaxCandidates selection was necessarily in this set when it was
	// discovered, so every selectable candidate carries a real score while
	// weak candidates skip the (comparatively costly) validation.
	topVals []float64

	flushed bool
	final   []Detection
}

// candidate is a gated correlation peak with its PN validation score
// (NaN when the peak never ranked high enough to be validated — such a
// candidate can never be selected).
type candidate struct {
	idx   int
	corr  float64
	score float64
}

// NewStreamDetector builds a chunked detection session for the given
// preamble numerology. Equivalent to NewDetector(p, cfg).Stream().
func NewStreamDetector(p sig.Params, cfg DetectorConfig) *StreamDetector {
	cfg.defaults(p)
	return newStreamDetector(p, cfg, sig.SharedMatcher("preamble", p, sig.SharedPreamble))
}

func newStreamDetector(p sig.Params, cfg DetectorConfig, matcher *dsp.Matcher) *StreamDetector {
	sd := &StreamDetector{
		params: p,
		cfg:    cfg,
		sm:     matcher.StreamNormalized(),
	}
	if !cfg.DisablePrefilter {
		sd.fir = sig.BandLimitFIR(p.BandLowHz, p.BandHighHz, p.SampleRate)
		sd.delay = (len(sd.fir) - 1) / 2
		sd.tail = make([]float64, len(sd.fir)-1)
	}
	return sd
}

// Fed returns the number of raw stream samples consumed so far.
func (s *StreamDetector) Fed() int {
	if s.fir != nil {
		return s.rawFed
	}
	return s.sm.Fed()
}

// Feed consumes the next audio chunk (any length, including empty).
func (s *StreamDetector) Feed(chunk []float64) {
	if s.flushed {
		panic("ranging: StreamDetector.Feed after Flush")
	}
	filt := chunk
	if s.fir != nil {
		filt = s.filter(chunk)
	}
	s.win = append(s.win, filt...)
	s.scan(s.sm.Feed(filt), false)
	s.trimWin()
}

// Flush ends the stream and returns the final detection set — identical
// to Detector.Detect on the concatenation of everything fed. The session
// cannot be fed afterwards; Detections keeps returning the final set.
func (s *StreamDetector) Flush() []Detection {
	if s.flushed {
		return s.final
	}
	if s.fir != nil {
		// BandLimit zero-fills the last delay samples (the causal filter
		// output past the raw stream end is discarded with the group-delay
		// shift): emit them so lag counts match the one-shot path.
		zeros := min(s.delay, s.rawFed)
		pad := make([]float64, zeros)
		s.win = append(s.win, pad...)
		s.scan(s.sm.Feed(pad), false)
	}
	s.scan(s.sm.Flush(), true)
	s.flushed = true
	s.final = s.selectCurrent()
	s.win, s.fbuf, s.fout, s.tail, s.cands, s.topVals = nil, nil, nil, nil, nil, nil
	return s.final
}

// Detections returns the detection set as of the audio consumed so far,
// sorted by index. Entries are provisional until Flush: a stronger peak
// within MinSeparation arriving in a later chunk replaces its weaker
// neighbour, exactly as the one-shot strongest-first dedup would have.
func (s *StreamDetector) Detections() []Detection {
	if s.flushed {
		return s.final
	}
	return s.selectCurrent()
}

// filter runs the streaming band-pass: causal direct-form FIR with
// carried history, arithmetic identical to dsp.Filter sample for sample,
// followed by the group-delay drop of the first delay outputs. The
// returned slice aliases session scratch, valid until the next call.
func (s *StreamDetector) filter(chunk []float64) []float64 {
	n := len(chunk)
	if cap(s.fbuf) < s.tailLen+n {
		s.fbuf = make([]float64, s.tailLen+n)
	}
	s.fbuf = s.fbuf[:s.tailLen+n]
	copy(s.fbuf, s.tail[:s.tailLen])
	copy(s.fbuf[s.tailLen:], chunk)
	if cap(s.fout) < n {
		s.fout = make([]float64, n)
	}
	s.fout = s.fout[:n]
	for j := 0; j < n; j++ {
		m := s.rawFed + j // global causal output index
		kmax := len(s.fir)
		if m+1 < kmax {
			kmax = m + 1
		}
		base := s.tailLen + j
		var sum float64
		for k := 0; k < kmax; k++ {
			sum += s.fir[k] * s.fbuf[base-k]
		}
		s.fout[j] = sum
	}
	s.rawFed += n
	keep := len(s.fir) - 1
	if keep > s.rawFed {
		keep = s.rawFed
	}
	copy(s.tail, s.fbuf[len(s.fbuf)-keep:])
	s.tailLen = keep
	// Group-delay compensation: causal outputs before index delay fall off
	// the front of the one-shot BandLimit result.
	skip := s.delay - (s.rawFed - n)
	if skip < 0 {
		skip = 0
	}
	if skip > n {
		skip = n
	}
	return s.fout[skip:]
}

// scan advances the peak decision over newly emitted correlation lags.
// Each lag is decided once its right neighbour exists (final mode decides
// the last lag against its left neighbour only), replicating
// dsp.FindPeaks' predicate over the full correlation array.
func (s *StreamDetector) scan(lags []float64, final bool) {
	for _, v := range lags {
		if s.havePend {
			s.decide(s.seen-1, s.pendVal, v, true)
			s.prevVal = s.pendVal
		}
		s.pendVal = v
		s.havePend = true
		s.seen++
	}
	if final && s.havePend {
		s.decide(s.seen-1, s.pendVal, 0, false)
		s.havePend = false
	}
}

// decide applies the FindPeaks predicate to lag i and, on a candidate,
// gates it through the top-MaxCandidates tracker for eager validation.
func (s *StreamDetector) decide(i int, x, right float64, hasRight bool) {
	if x < s.cfg.CandidateThreshold {
		return
	}
	if i > 0 && x < s.prevVal {
		return
	}
	if hasRight && x < right {
		return
	}
	if i > 0 && x == s.prevVal {
		return // interior of a plateau: FindPeaks reports the first index
	}
	score := math.NaN()
	if s.admitTop(x) {
		score = validatePN(s.params, s.win, i-s.winStart)
	}
	s.cands = append(s.cands, candidate{idx: i, corr: x, score: score})
}

// admitTop reports whether value x ranks among the MaxCandidates
// strongest seen so far, maintaining the tracked set.
func (s *StreamDetector) admitTop(x float64) bool {
	if len(s.topVals) < s.cfg.MaxCandidates {
		s.topVals = append(s.topVals, x)
		return true
	}
	lo := 0
	for k, v := range s.topVals {
		if v < s.topVals[lo] {
			lo = k
		}
	}
	if x < s.topVals[lo] {
		return false
	}
	s.topVals[lo] = x
	return true
}

// selectCurrent applies the one-shot selection semantics to the candidate
// set so far: strongest first, top MaxCandidates, validation threshold,
// MinSeparation greedy dedup, index-sorted output.
func (s *StreamDetector) selectCurrent() []Detection {
	if len(s.cands) == 0 {
		return nil
	}
	cands := append([]candidate(nil), s.cands...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].corr > cands[j].corr })
	if len(cands) > s.cfg.MaxCandidates {
		cands = cands[:s.cfg.MaxCandidates]
	}
	var out []Detection
	for _, c := range cands {
		if c.score < s.cfg.AutoCorrThreshold || math.IsNaN(c.score) {
			continue
		}
		dup := false
		for _, prev := range out {
			if abs(prev.CoarseIndex-c.idx) < s.cfg.MinSeparation {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, Detection{CoarseIndex: c.idx, CorrPeak: c.corr, AutoCorr: c.score})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CoarseIndex < out[j].CoarseIndex })
	return out
}

// trimWin drops validated-and-decided history from the filtered window,
// keeping everything from the earliest still-undecided lag onward.
func (s *StreamDetector) trimWin() {
	keepFrom := s.seen
	if s.havePend {
		keepFrom = s.seen - 1
	}
	if keepFrom <= s.winStart {
		return
	}
	off := keepFrom - s.winStart
	if off > len(s.win) {
		off = len(s.win)
	}
	s.win = s.win[:copy(s.win, s.win[off:])]
	s.winStart += off
}
