package ranging

import (
	"math"
	"sort"

	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/sig"
)

// StreamDetector runs preamble detection on audio as the OS delivers it,
// buffer by buffer, instead of on a complete per-round stream. It is an
// ingest.Consumer: the band-pass prefilter and the overlap-save
// correlation run in an ingest.Pipeline (one shared forward transform per
// block, fanned out to every consumer on the stream), while the detector
// carries the peak-scan lookahead, the PN-validation window and the
// candidate set across buffer boundaries — so a preamble is found no
// matter how the stream is cut, including a buffer boundary landing in
// the middle of the preamble or right on the correlation peak.
//
// The session is built so that the final detection set is exactly what
// the one-shot Detector computes on the concatenated stream:
//
//   - the pipeline's prefilter replicates sig.BandLimit's direct FIR
//     arithmetic with carried history (bit-identical for every chunk
//     partition);
//   - correlation runs on a dsp.BankStream whose overlap-save blocks sit
//     on a fixed absolute grid (bit-identical for every partition);
//   - candidate peaks are decided with one lag of lookahead, so a peak on
//     a chunk boundary is reported exactly once;
//   - MinSeparation dedup is applied over the whole candidate set each
//     time, so a provisional detection is replaced when a higher peak
//     within MinSeparation arrives in a later chunk.
//
// A session created by NewStreamDetector or Detector.Stream owns its
// pipeline: Feed pushes buffers, Flush closes the stream and returns the
// final set. A session created by Detector.Consumer is driven by an
// external shared pipeline instead — register it, push buffers to that
// pipeline, and read Detections after the pipeline closes. Detections
// reports the current (provisional) set at any time. Indices are global
// sample positions in the full stream. A session is single-stream and not
// safe for concurrent use; sessions share the process-wide template
// matcher read-only, so any number of sessions may run concurrently.
type StreamDetector struct {
	params sig.Params
	cfg    DetectorConfig
	tmpl   int              // bank template index this session consumes
	pipe   *ingest.Pipeline // standalone mode only; nil when externally driven
	fed    int              // filtered samples observed (external-mode Fed)

	// Filtered samples retained for PN validation: win[0] holds global
	// filtered index winStart. The window is trimmed to the earliest
	// still-undecided correlation lag, bounding it at one FFT block plus
	// one chunk regardless of stream length.
	win      []float64
	winStart int

	// Peak scan with one-lag lookahead over the normalized correlation.
	seen     int // correlation lags scanned (global index of the next lag)
	prevVal  float64
	pendVal  float64
	havePend bool

	cands []candidate

	// topVals tracks the MaxCandidates strongest candidate peaks seen so
	// far (an unordered min-tracked set); only candidates that enter it
	// are PN-validated eagerly. Any candidate in the final strongest-
	// MaxCandidates selection was necessarily in this set when it was
	// discovered, so every selectable candidate carries a real score while
	// weak candidates skip the (comparatively costly) validation.
	topVals []float64

	flushed bool
	final   []Detection
}

// candidate is a gated correlation peak with its PN validation score
// (NaN when the peak never ranked high enough to be validated — such a
// candidate can never be selected).
type candidate struct {
	idx   int
	corr  float64
	score float64
}

// NewStreamDetector builds a chunked detection session for the given
// preamble numerology. Equivalent to NewDetector(p, cfg).Stream().
func NewStreamDetector(p sig.Params, cfg DetectorConfig) *StreamDetector {
	cfg.defaults(p)
	return newStreamDetector(p, cfg, sig.SharedMatcher("preamble", p, sig.SharedPreamble), nil)
}

// newStreamDetector builds a standalone session: a consumer-mode detector
// registered on its own single-template low-latency pipeline (with the
// band-pass prefilter unless disabled, and the optional deadline meter).
func newStreamDetector(p sig.Params, cfg DetectorConfig, matcher *dsp.Matcher, meter *ingest.Meter) *StreamDetector {
	sd := newStreamConsumer(p, cfg, 0)
	icfg := ingest.Config{
		Bank:       dsp.NewMatcherBankLowLatency(matcher),
		Normalized: true,
		SampleRate: p.SampleRate,
		Meter:      meter,
	}
	if !cfg.DisablePrefilter {
		icfg.Prefilter = sig.BandLimitFIR(p.BandLowHz, p.BandHighHz, p.SampleRate)
	}
	sd.pipe = ingest.New(icfg)
	sd.pipe.Register(sd)
	return sd
}

// newStreamConsumer builds a consumer-mode session over bank template
// index template (no pipeline of its own).
func newStreamConsumer(p sig.Params, cfg DetectorConfig, template int) *StreamDetector {
	return &StreamDetector{params: p, cfg: cfg, tmpl: template}
}

// Fed returns the number of raw stream samples consumed so far. In
// consumer mode (no owned pipeline) it reports the filtered samples
// observed instead — equal to the raw count once the driving pipeline
// has closed.
func (s *StreamDetector) Fed() int {
	if s.pipe != nil {
		return s.pipe.Fed()
	}
	return s.fed
}

// Feed consumes the next audio chunk (any length, including empty) by
// pushing it through the session's own pipeline. It panics on a
// consumer-mode session — push to the driving pipeline instead.
func (s *StreamDetector) Feed(chunk []float64) {
	if s.flushed {
		panic("ranging: StreamDetector.Feed after Flush")
	}
	if s.pipe == nil {
		panic("ranging: Feed on a consumer-mode StreamDetector (push to its pipeline)")
	}
	s.pipe.Push(chunk)
}

// Flush ends the stream and returns the final detection set — identical
// to Detector.Detect on the concatenation of everything fed. The session
// cannot be fed afterwards; Detections keeps returning the final set.
// It panics on a consumer-mode session — close the driving pipeline
// instead.
func (s *StreamDetector) Flush() []Detection {
	if s.flushed {
		return s.final
	}
	if s.pipe == nil {
		panic("ranging: Flush on a consumer-mode StreamDetector (close its pipeline)")
	}
	s.pipe.Close()
	return s.final
}

// Detections returns the detection set as of the audio consumed so far,
// sorted by index. Entries are provisional until the stream ends: a
// stronger peak within MinSeparation arriving in a later chunk replaces
// its weaker neighbour, exactly as the one-shot strongest-first dedup
// would have.
func (s *StreamDetector) Detections() []Detection {
	if s.flushed {
		return s.final
	}
	return s.selectCurrent()
}

// Chunk implements ingest.ChunkConsumer: the band-limited samples are
// retained (until decided) for PN validation of candidate peaks.
func (s *StreamDetector) Chunk(samples []float64) {
	s.fed += len(samples)
	s.win = append(s.win, samples...)
}

// Lags implements ingest.Consumer: newly computable correlation lags of
// the session's template advance the peak scan.
func (s *StreamDetector) Lags(template int, lags []float64) {
	if template != s.tmpl {
		return
	}
	s.scan(lags, false)
	s.trimWin()
}

// Finish implements ingest.Consumer: the last lag is decided against its
// left neighbour only and the final detection set is selected.
func (s *StreamDetector) Finish() {
	if s.flushed {
		return
	}
	s.scan(nil, true)
	s.flushed = true
	s.final = s.selectCurrent()
	s.win, s.cands, s.topVals = nil, nil, nil
}

// scan advances the peak decision over newly emitted correlation lags.
// Each lag is decided once its right neighbour exists (final mode decides
// the last lag against its left neighbour only), replicating
// dsp.FindPeaks' predicate over the full correlation array.
func (s *StreamDetector) scan(lags []float64, final bool) {
	for _, v := range lags {
		if s.havePend {
			s.decide(s.seen-1, s.pendVal, v, true)
			s.prevVal = s.pendVal
		}
		s.pendVal = v
		s.havePend = true
		s.seen++
	}
	if final && s.havePend {
		s.decide(s.seen-1, s.pendVal, 0, false)
		s.havePend = false
	}
}

// decide applies the FindPeaks predicate to lag i and, on a candidate,
// gates it through the top-MaxCandidates tracker for eager validation.
func (s *StreamDetector) decide(i int, x, right float64, hasRight bool) {
	if x < s.cfg.CandidateThreshold {
		return
	}
	if i > 0 && x < s.prevVal {
		return
	}
	if hasRight && x < right {
		return
	}
	if i > 0 && x == s.prevVal {
		return // interior of a plateau: FindPeaks reports the first index
	}
	score := math.NaN()
	if s.admitTop(x) {
		score = validatePN(s.params, s.win, i-s.winStart)
	}
	s.cands = append(s.cands, candidate{idx: i, corr: x, score: score})
}

// admitTop reports whether value x ranks among the MaxCandidates
// strongest seen so far, maintaining the tracked set.
func (s *StreamDetector) admitTop(x float64) bool {
	if len(s.topVals) < s.cfg.MaxCandidates {
		s.topVals = append(s.topVals, x)
		return true
	}
	lo := 0
	for k, v := range s.topVals {
		if v < s.topVals[lo] {
			lo = k
		}
	}
	if x < s.topVals[lo] {
		return false
	}
	s.topVals[lo] = x
	return true
}

// selectCurrent applies the one-shot selection semantics to the candidate
// set so far: strongest first, top MaxCandidates, validation threshold,
// MinSeparation greedy dedup, index-sorted output.
func (s *StreamDetector) selectCurrent() []Detection {
	if len(s.cands) == 0 {
		return nil
	}
	cands := append([]candidate(nil), s.cands...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].corr > cands[j].corr })
	if len(cands) > s.cfg.MaxCandidates {
		cands = cands[:s.cfg.MaxCandidates]
	}
	var out []Detection
	for _, c := range cands {
		if c.score < s.cfg.AutoCorrThreshold || math.IsNaN(c.score) {
			continue
		}
		dup := false
		for _, prev := range out {
			if abs(prev.CoarseIndex-c.idx) < s.cfg.MinSeparation {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, Detection{CoarseIndex: c.idx, CorrPeak: c.corr, AutoCorr: c.score})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CoarseIndex < out[j].CoarseIndex })
	return out
}

// trimWin drops validated-and-decided history from the filtered window,
// keeping everything from the earliest still-undecided lag onward.
func (s *StreamDetector) trimWin() {
	keepFrom := s.seen
	if s.havePend {
		keepFrom = s.seen - 1
	}
	if keepFrom <= s.winStart {
		return
	}
	off := keepFrom - s.winStart
	if off > len(s.win) {
		off = len(s.win)
	}
	s.win = s.win[:copy(s.win, s.win[off:])]
	s.winStart += off
}
