package ranging

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"uwpos/internal/sig"
)

// feedDetector drives a session over a chunk partition of the stream
// given as sorted cut points, and returns the flushed detection set.
func feedDetector(sd *StreamDetector, stream []float64, cuts []int) []Detection {
	prev := 0
	for _, c := range cuts {
		sd.Feed(stream[prev:c])
		prev = c
	}
	sd.Feed(stream[prev:])
	return sd.Flush()
}

// sameDetections enforces the equivalence contract: identical indices,
// scores within 1e-9 (in practice the streaming pipeline is bit-exact).
func sameDetections(t *testing.T, ctx string, got, want []Detection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d detections, want %d (got %+v, want %+v)", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].CoarseIndex != want[i].CoarseIndex {
			t.Fatalf("%s: detection %d at index %d, want %d", ctx, i, got[i].CoarseIndex, want[i].CoarseIndex)
		}
		if math.Abs(got[i].CorrPeak-want[i].CorrPeak) > 1e-9 {
			t.Fatalf("%s: detection %d corr %g, want %g", ctx, i, got[i].CorrPeak, want[i].CorrPeak)
		}
		if math.Abs(got[i].AutoCorr-want[i].AutoCorr) > 1e-9 {
			t.Fatalf("%s: detection %d score %g, want %g", ctx, i, got[i].AutoCorr, want[i].AutoCorr)
		}
	}
}

// TestStreamDetectorEquivalence is the detection half of the streaming
// equivalence harness: over randomized chunk partitions — including
// boundaries inside the preamble and single-sample chunks near the peak —
// the streaming session must produce exactly the one-shot Detect set.
func TestStreamDetectorEquivalence(t *testing.T) {
	p := testParams()
	d := NewDetector(p, DetectorConfig{})
	r := rand.New(rand.NewSource(60))
	for _, tc := range []struct {
		name  string
		at    []int
		amps  []float64
		total int
	}{
		{"single clean", []int{20000}, []float64{1.0}, 60000},
		{"two preambles", []int{12000, 34000}, []float64{0.9, 0.7}, 60000},
		{"noise only", nil, nil, 40000},
		{"near stream end", []int{49000}, []float64{1.0}, 60000},
	} {
		stream := make([]float64, tc.total)
		for i := range stream {
			stream[i] = 0.05 * r.NormFloat64()
		}
		pre := sig.SharedPreamble(p)
		for k, at := range tc.at {
			for i, v := range pre {
				stream[at+i] += tc.amps[k] * v
			}
		}
		want := d.Detect(stream)
		if len(tc.at) > 0 && len(want) == 0 {
			t.Fatalf("%s: one-shot reference missed the preamble", tc.name)
		}
		// Adversarial fixed partitions: boundary inside the preamble, on
		// the coarse peak itself, and tiny chunks around it.
		var fixed [][]int
		if len(tc.at) > 0 {
			at := tc.at[0]
			fixed = append(fixed,
				[]int{at + len(pre)/2},
				[]int{at},
				[]int{at - 1, at, at + 1, at + 2},
				[]int{at + len(pre)},
			)
		}
		for trial := 0; trial < 6; trial++ {
			k := r.Intn(6)
			cuts := make([]int, k)
			for i := range cuts {
				cuts[i] = r.Intn(tc.total + 1)
			}
			slices.Sort(cuts)
			fixed = append(fixed, cuts)
		}
		for _, cuts := range fixed {
			got := feedDetector(d.Stream(), stream, cuts)
			sameDetections(t, tc.name, got, want)
		}
	}
}

// TestStreamDetectorNoPrefilterEquivalence covers the DisablePrefilter
// configuration (raw-stream correlation) through the same harness.
func TestStreamDetectorNoPrefilterEquivalence(t *testing.T) {
	p := testParams()
	d := NewDetector(p, DetectorConfig{DisablePrefilter: true})
	stream := makeStream(t, p, 18000, 50000, 1.0, 0.02, 61)
	want := d.Detect(stream)
	for _, cuts := range [][]int{nil, {18000 + 4920}, {1, 2, 3, 49999}, {25000}} {
		sameDetections(t, "no-prefilter", feedDetector(d.Stream(), stream, cuts), want)
	}
}

// TestStreamDetectorBoundaryPeakNotDuplicated is the cross-chunk
// MinSeparation regression test: a detection whose correlation peak sits
// exactly on a chunk boundary must be reported once, at the same index as
// one-shot detection.
func TestStreamDetectorBoundaryPeakNotDuplicated(t *testing.T) {
	p := testParams()
	d := NewDetector(p, DetectorConfig{})
	const at = 24000
	stream := makeStream(t, p, at, 60000, 1.0, 0.03, 62)
	want := d.Detect(stream)
	if len(want) != 1 {
		t.Fatalf("reference found %d detections, want 1", len(want))
	}
	peak := want[0].CoarseIndex
	for _, cuts := range [][]int{{peak}, {peak + 1}, {peak - 1, peak, peak + 1}} {
		got := feedDetector(d.Stream(), stream, cuts)
		sameDetections(t, "boundary peak", got, want)
	}
}

// TestStreamDetectorReplacesProvisional: a higher peak arriving in a
// later chunk, within MinSeparation of an already-reported provisional
// detection, must replace it — and the final set must equal one-shot.
func TestStreamDetectorReplacesProvisional(t *testing.T) {
	p := testParams()
	// Separation below MinSeparation so the two detections are exclusive.
	cfg := DetectorConfig{MinSeparation: 15000}
	d := NewDetector(p, cfg)
	const atWeak, atStrong = 16000, 26000
	stream := makeStream(t, p, atWeak, 60000, 0.5, 0.02, 63)
	pre := sig.SharedPreamble(p)
	for i, v := range pre {
		stream[atStrong+i] += 1.0 * v
	}
	want := d.Detect(stream)
	if len(want) != 1 || abs(want[0].CoarseIndex-atStrong) > 3 {
		t.Fatalf("reference should keep only the strong preamble, got %+v", want)
	}

	sd := d.Stream()
	// Feed through the first correlation block (factor-2 grid: 32768
	// filtered samples) — enough to emit the weak peak's lag but not the
	// strong one's: the weak detection must be visible provisionally.
	sd.Feed(stream[:36000])
	prov := sd.Detections()
	if len(prov) != 1 || abs(prov[0].CoarseIndex-atWeak) > 3 {
		t.Fatalf("provisional set before the strong arrival: %+v, want the weak detection near %d", prov, atWeak)
	}
	// The rest of the stream carries the stronger peak (its lag sits past
	// the first block hop, so it could not have been emitted yet): it
	// replaces the provisional weak one rather than being dropped as its
	// duplicate.
	sd.Feed(stream[36000:])
	sameDetections(t, "after replacement", sd.Detections(), want)
	sameDetections(t, "final", sd.Flush(), want)
	// Flush is idempotent and Detections keeps returning the final set.
	sameDetections(t, "post-flush", sd.Detections(), want)
}

// TestStreamDetectorFedAndPanic covers the bookkeeping contract.
func TestStreamDetectorFedAndPanic(t *testing.T) {
	p := testParams()
	sd := NewStreamDetector(p, DetectorConfig{})
	sd.Feed(make([]float64, 1000))
	sd.Feed(nil)
	if sd.Fed() != 1000 {
		t.Fatalf("Fed() = %d, want 1000", sd.Fed())
	}
	sd.Flush()
	defer func() {
		if recover() == nil {
			t.Fatal("Feed after Flush must panic")
		}
	}()
	sd.Feed(make([]float64, 1))
}
