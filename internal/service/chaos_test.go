package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uwpos/internal/faultinject"
)

// This file is the chaos suite for the crash-safe session layer: the
// golden restore-equivalence test (the PR's acceptance bar) plus
// scripted and stochastic fault-injection scenarios. Everything here
// runs full simulated protocol rounds, so it is skipped under -short;
// CI runs it in the full-test leg and nightly re-runs it under -race.

func persistSpec(seed int64) SessionSpec {
	return SessionSpec{
		Env:    "pool",
		Divers: []DiverSpec{{X: 0, Y: 0, Z: 1.5}, {X: 5, Y: 1, Z: 2}, {X: 8, Y: -3, Z: 1}},
		Seed:   seed,
	}
}

func durableServer(t *testing.T, dir string, workers int, inj *faultinject.Injector) *Server {
	t.Helper()
	srv, err := NewServer(context.Background(), Config{
		SessionTTL:          -1,
		RoundTimeout:        -1,
		MaxConcurrentRounds: workers,
		StateDir:            dir,
		Injector:            inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// reportJSON canonicalizes a round report for byte comparison: ElapsedMS
// is wall clock and legitimately differs between runs; everything else
// must be byte-identical.
func reportJSON(t *testing.T, rep *RoundReport) string {
	t.Helper()
	c := *rep
	c.ElapsedMS = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustRound(t *testing.T, srv *Server, id string) *RoundReport {
	t.Helper()
	sess, err := srv.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunRound(context.Background(), RoundRequest{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// copySnapDir clones a state directory's snapshots — the moral
// equivalent of the disk image at the instant of a kill -9.
func copySnapDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapExt) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestGoldenRestoreEquivalence is the acceptance test for crash-safe
// sessions: snapshot after round k, "crash" (state-dir copy), restore
// in a fresh server, and every remaining round's report is
// byte-identical to the uninterrupted run — for seeds 1 and 7, under
// round-execution concurrency 1 and 8.
func TestGoldenRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	seeds := []int64{1, 7}
	const extraRounds = 2 // rounds k+1..n after the crash point (k = 1)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srvA := durableServer(t, t.TempDir(), workers, nil)
			ids := make([]string, len(seeds))
			for i, seed := range seeds {
				sess, err := srvA.CreateSession(persistSpec(seed))
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = sess.ID
			}
			// Sessions run their rounds concurrently so the worker bound
			// actually schedules; per-session results must not care.
			eachSession := func(f func(i int)) {
				var wg sync.WaitGroup
				for i := range ids {
					wg.Add(1)
					go func(i int) { defer wg.Done(); f(i) }(i)
				}
				wg.Wait()
			}
			eachSession(func(i int) { mustRound(t, srvA, ids[i]) }) // round k = 1
			crashImage := copySnapDir(t, srvA.store.Dir())

			want := make([][]string, len(seeds))
			for r := 0; r < extraRounds; r++ {
				eachSession(func(i int) {
					rep := mustRound(t, srvA, ids[i])
					want[i] = append(want[i], reportJSON(t, rep))
				})
			}

			srvB := durableServer(t, crashImage, workers, nil)
			if got := int(srvB.Stats().Sessions.Restored); got != len(seeds) {
				t.Fatalf("restored %d sessions, want %d", got, len(seeds))
			}
			for r := 0; r < extraRounds; r++ {
				eachSession(func(i int) {
					rep := mustRound(t, srvB, ids[i])
					if got := reportJSON(t, rep); got != want[i][r] {
						t.Errorf("seed %d round %d after restore differs:\n got %s\nwant %s",
							seeds[i], r+2, got, want[i][r])
					}
				})
			}
		})
	}
}

// TestSnapshotWriteFaultDoesNotFailRound: a failed snapshot write is an
// availability event (counted), never a correctness event (the round
// still answers, and the next snapshot heals the replay window).
func TestSnapshotWriteFaultDoesNotFailRound(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	inj := faultinject.New(faultinject.Config{})
	srv := durableServer(t, t.TempDir(), 0, inj)
	sess, err := srv.CreateSession(persistSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNextWrite()
	if _, err := sess.RunRound(context.Background(), RoundRequest{}); err != nil {
		t.Fatalf("round failed on snapshot write fault: %v", err)
	}
	p := srv.Stats().Persistence
	if p.Saves != 0 || p.SaveErrors != 1 {
		t.Fatalf("counters after injected write fault: %+v", p)
	}
	if _, err := sess.RunRound(context.Background(), RoundRequest{}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Stats().Persistence; p.Saves != 1 {
		t.Fatalf("healing snapshot did not land: %+v", p)
	}
}

// TestInjectedKillThenRestartReplaysExactly: kill mid-round (after the
// simulation ran, before anything committed), restart from disk, and
// the re-run round plus the next are byte-identical to a server that
// never crashed.
func TestInjectedKillThenRestartReplaysExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	const seed = 7

	// Reference: uninterrupted run, rounds 1..3.
	ref := durableServer(t, t.TempDir(), 0, nil)
	refSess, err := ref.CreateSession(persistSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	var refReports []string
	for r := 0; r < 3; r++ {
		refReports = append(refReports, reportJSON(t, mustRound(t, ref, refSess.ID)))
	}

	// Victim: round 1 commits, round 2 is killed mid-flight.
	inj := faultinject.New(faultinject.Config{})
	dir := t.TempDir()
	srvA := durableServer(t, dir, 0, inj)
	sessA, err := srvA.CreateSession(persistSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	first := reportJSON(t, mustRound(t, srvA, sessA.ID))
	if first != refReports[0] {
		t.Fatal("victim and reference diverged before any fault")
	}
	inj.Arm(faultinject.FaultKill, 1)
	if _, err := sessA.RunRound(context.Background(), RoundRequest{}); err == nil {
		t.Fatal("killed round reported success")
	}
	if got := srvA.Stats().Rounds.Failed; got != 1 {
		t.Fatalf("failed-round counter %d", got)
	}

	// Restart from disk: the killed round replays byte-identically, and
	// the session continues in lockstep with the reference.
	srvB := durableServer(t, dir, 0, nil)
	for r := 1; r < 3; r++ {
		got := reportJSON(t, mustRound(t, srvB, sessA.ID))
		if got != refReports[r] {
			t.Errorf("round %d after kill+restart differs:\n got %s\nwant %s", r+1, got, refReports[r])
		}
	}
}

// TestInjectedDropAnchorsDegrades: anchor loss takes the soft-failure
// path — HTTP-level success, degraded flag, extrapolated positions once
// a fix exists.
func TestInjectedDropAnchorsDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	inj := faultinject.New(faultinject.Config{})
	srv := durableServer(t, t.TempDir(), 0, inj)
	sess, err := srv.CreateSession(persistSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustRound(t, srv, sess.ID); rep.Degraded {
		t.Fatalf("clean first round degraded: %+v", rep)
	}
	inj.Arm(faultinject.FaultDropAnchors, 1)
	rep := mustRound(t, srv, sess.ID)
	if !rep.Degraded || !strings.Contains(rep.Reason, "injected") {
		t.Fatalf("anchor-drop round: degraded=%v reason=%q", rep.Degraded, rep.Reason)
	}
	if len(rep.Positions) == 0 {
		t.Fatal("no extrapolated positions despite a prior fix")
	}
	if got := srv.Stats().Rounds.Degraded; got != 1 {
		t.Fatalf("degraded counter %d", got)
	}
}

// TestInjectedRoundLatencyHonoursDeadline: injected latency stalls the
// round but a context deadline still cuts it off as a hard failure.
func TestInjectedRoundLatencyHonoursDeadline(t *testing.T) {
	inj := faultinject.New(faultinject.Config{RoundLatency: 10 * time.Second})
	srv, err := NewServer(context.Background(), Config{SessionTTL: -1, RoundTimeout: -1, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sess, err := srv.CreateSession(persistSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultinject.FaultRoundLatency, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := sess.RunRound(ctx, RoundRequest{}); err == nil {
		t.Fatal("stalled round beat a 30 ms deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not cut the injected stall (took %v)", elapsed)
	}
	if got := inj.Fired(faultinject.FaultRoundLatency); got != 1 {
		t.Fatalf("latency fault fired %d times", got)
	}
}

// TestChaosStorm: seeded multi-fault storm over concurrent sessions.
// Whatever the storm does, the server's books must balance, and a
// restart from the surviving state directory must restore every
// session that had a committed round and serve it a clean round.
func TestChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	inj := faultinject.New(faultinject.Config{
		Seed:             31,
		WriteErrorRate:   0.3,
		DropAnchorsRate:  0.25,
		KillRate:         0.15,
		RoundLatencyRate: 0.2,
		RoundLatency:     time.Millisecond,
	})
	dir := t.TempDir()
	srv := durableServer(t, dir, 4, inj)

	const sessions = 3
	const attempts = 3
	ids := make([]string, sessions)
	for i := range ids {
		sess, err := srv.CreateSession(persistSpec(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = sess.ID
	}
	var (
		mu        sync.Mutex
		committed = map[string]int{}
		wg        sync.WaitGroup
	)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sess, err := srv.Session(id)
			if err != nil {
				t.Error(err)
				return
			}
			for a := 0; a < attempts; a++ {
				rep, err := sess.RunRound(context.Background(), RoundRequest{})
				if err != nil {
					continue // injected kill: client would retry
				}
				mu.Lock()
				committed[id] = rep.Round
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()

	stz := srv.Stats()
	var total int
	for _, n := range committed {
		total += n
	}
	if int(stz.Rounds.Total) != total {
		t.Errorf("books don't balance: server total %d, clients saw %d commits", stz.Rounds.Total, total)
	}
	if stz.Persistence.Saves+stz.Persistence.SaveErrors != stz.Rounds.Total {
		t.Errorf("every commit must attempt a snapshot: saves=%d errors=%d total=%d",
			stz.Persistence.Saves, stz.Persistence.SaveErrors, stz.Rounds.Total)
	}

	// Restart without faults: exactly the sessions whose snapshot write
	// survived the storm (i.e. whatever is on disk) must come back and
	// serve a clean round — a session whose every save was injected to
	// fail is legitimately gone, that is the stated durability contract.
	onDisk, err := srv.store.List()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	re := durableServer(t, dir, 4, nil)
	if got := int(re.Stats().Sessions.Restored); got != len(onDisk) {
		t.Errorf("restored %d sessions, %d snapshots on disk", got, len(onDisk))
	}
	for _, id := range onDisk {
		sess, err := re.Session(id)
		if err != nil {
			t.Errorf("snapshot %s present but session lost: %v", id, err)
			continue
		}
		rep, err := sess.RunRound(context.Background(), RoundRequest{})
		if err != nil {
			t.Errorf("restored session %s cannot run: %v", id, err)
			continue
		}
		if rep.Round < 2 || rep.Round > committed[id]+1 {
			t.Errorf("restored session %s round counter %d (committed %d)", id, rep.Round, committed[id])
		}
	}
	if q := re.Stats().Persistence.Quarantined; q != 0 {
		t.Errorf("%d snapshots quarantined after storm (atomic writes must prevent this)", q)
	}
}
