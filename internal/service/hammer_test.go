package service

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSessionsHammer drives many sessions through the full HTTP
// lifecycle at once while statz polls and eviction sweeps race along —
// run under -race this is the service layer's concurrency proof. Round
// execution dominates the wall clock, so the session count stays modest;
// the uwbench service experiment is the scale test.
func TestConcurrentSessionsHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is expensive")
	}
	// A real (long) TTL so the racing evictIdle sweeps do full
	// last-used comparisons instead of no-opping.
	srv, ts := newTestServer(t, Config{MaxConcurrentRounds: 4, SessionTTL: time.Hour})

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			step := func(wantStatus, status int, stage string, body map[string]any) bool {
				if status != wantStatus {
					errs <- fmt.Errorf("session %d %s: status %d (%v)", i, stage, status, body)
					return false
				}
				return true
			}
			status, created := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(int64(100+i*13)))
			if !step(http.StatusCreated, status, "create", created) {
				return
			}
			id := created["id"].(string)
			status, round := doReq(t, "POST", ts.URL+"/v1/sessions/"+id+"/rounds", map[string]any{})
			if !step(http.StatusOK, status, "round", round) {
				return
			}
			if round["degraded"].(bool) {
				// Degraded is allowed but unexpected in a clean pool
				// scenario; surface it without failing.
				t.Logf("session %d: degraded round (%v)", i, round["reason"])
			}
			status, track := doReq(t, "GET", ts.URL+"/v1/sessions/"+id+"/track", nil)
			if !step(http.StatusOK, status, "track", track) {
				return
			}
			status, _ = doReq(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil)
			step(http.StatusNoContent, status, "delete", nil)
		}(i)
	}

	// Racing observers: statz polling and eviction sweeps must be safe
	// against live round execution.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				doReq(t, "GET", ts.URL+"/v1/statz", nil)
				srv.evictIdle(time.Now())
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	wg.Wait()
	close(stop)
	obs.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Rounds.Failed != 0 {
		t.Errorf("%d hard-failed rounds", st.Rounds.Failed)
	}
	if st.Rounds.Total != sessions {
		t.Errorf("rounds total %d, want %d", st.Rounds.Total, sessions)
	}
	if st.Sessions.Created != sessions {
		t.Errorf("sessions created %d, want %d", st.Sessions.Created, sessions)
	}
	if got := srv.ActiveSessions(); got != 0 {
		t.Errorf("%d sessions left active", got)
	}
}
