package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"uwpos"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/sessions             create a session
//	POST   /v1/sessions/{id}/rounds run one localization round
//	GET    /v1/sessions/{id}/track  extrapolate the session's track
//	DELETE /v1/sessions/{id}        tear a session down
//	GET    /v1/healthz              liveness
//	GET    /v1/statz                counters and latency quantiles
//
// Failure classes map to statuses via the public typed errors: caller
// mistakes (uwpos.ConfigError, malformed JSON) → 400, unknown session →
// 404, registry full → 429, deadline exceeded → 504.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/rounds", s.handleRound)
	mux.HandleFunc("GET /v1/sessions/{id}/track", s.handleTrack)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	return mux
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Field names the offending config field for 400s, when known.
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps an error to its transport status.
func writeError(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	status := http.StatusInternalServerError
	var ce uwpos.ConfigError
	switch {
	case errors.As(err, &ce):
		status, body.Field = http.StatusBadRequest, ce.Field
	case errors.Is(err, uwpos.ErrTooFewDivers):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrServerFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away mid-round; 499 is the de-facto convention.
		status = 499
	}
	writeJSON(w, status, body)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return uwpos.ConfigError{Field: "body", Reason: err.Error()}
	}
	return nil
}

// createResponse is the 201 payload.
type createResponse struct {
	ID      string `json:"id"`
	Devices int    `json:"devices"`
	Env     string `json:"env"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	sess, err := s.CreateSession(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, createResponse{
		ID: sess.ID, Devices: sess.Devices(), Env: spec.Env,
	})
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	req := RoundRequest{}
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, err)
			return
		}
	}
	if req.TimeoutMS < 0 {
		writeError(w, uwpos.ConfigError{Field: "TimeoutMS", Reason: "negative"})
		return
	}
	ctx := r.Context()
	timeout := s.cfg.RoundTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := sess.RunRound(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	sess, err := s.Session(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	at := 0.0
	if q := r.URL.Query().Get("at_sec"); q != "" {
		at, err = strconv.ParseFloat(q, 64)
		if err != nil {
			writeError(w, uwpos.ConfigError{Field: "at_sec", Reason: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, sess.Track(at))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.DeleteSession(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// healthzResponse is the liveness payload.
type healthzResponse struct {
	OK       bool   `json:"ok"`
	Sessions int    `json:"sessions"`
	Uptime   string `json:"uptime"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		OK:       true,
		Sessions: s.ActiveSessions(),
		Uptime:   fmt.Sprintf("%.0fs", time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
