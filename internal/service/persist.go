package service

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"uwpos"
)

// This file is the durability half of the session layer: how a live
// session becomes bytes on disk (snapshotLocked/persistLocked) and how
// bytes on disk become live sessions again (restoreAll/restoreSession).
//
// The correctness contract is the checkpoint invariant from the uwpos
// package: a session is a pure function of its spec plus (RNG cursor,
// tracker state, round counters), so a restored session continues with
// rounds byte-identical to the uninterrupted run. The durability
// contract is snapshot-on-round-commit with atomic rename: after a
// crash, every session resumes from its last committed round — at most
// the in-flight round is lost, and the client retries it.

// snapshotLocked captures the session's durable state. Caller holds s.mu.
func (s *Session) snapshotLocked() (*sessionSnapshot, error) {
	cp, err := s.sys.Checkpoint()
	if err != nil {
		return nil, err
	}
	trk, err := s.tracker.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return &sessionSnapshot{
		ID:       s.ID,
		Spec:     s.spec,
		Seed:     cp.Seed,
		RNGDraws: cp.RNGDraws,
		Rounds:   s.rounds,
		Degraded: s.degraded,
		Clock:    s.clock,
		HasFix:   s.hasFix,
		Tracker:  trk,
	}, nil
}

// persistLocked snapshots the session to the server's store, reporting
// whether a save landed. Caller holds s.mu — the snapshot is taken at a
// round boundary, which is the only place the durable invariant holds.
// Persistence failures are counted, not returned to the round's client:
// the round already committed in memory and the client must see its
// result; losing one snapshot write only widens the replay window to
// the previous committed round.
func (s *Session) persistLocked() bool {
	st := s.srv.store
	if st == nil {
		return false
	}
	sn, err := s.snapshotLocked()
	if err != nil {
		s.srv.stats.snapshotErrors.Add(1)
		return false
	}
	blob, err := sn.encode()
	if err != nil {
		s.srv.stats.snapshotErrors.Add(1)
		return false
	}
	if err := st.Save(s.ID, blob); err != nil {
		s.srv.stats.snapshotErrors.Add(1)
		return false
	}
	s.srv.stats.snapshotSaves.Add(1)
	return true
}

// restoreSession rebuilds a live session from a decoded snapshot:
// fresh System from the spec, RNG fast-forwarded to the cursor, tracker
// and counters reloaded. Any failure means the snapshot cannot produce a
// faithful session (spec no longer valid, seed mismatch, tracker blob
// from a future version) and the caller quarantines it.
func restoreSession(ctx context.Context, sn *sessionSnapshot, srv *Server) (*Session, error) {
	sess, err := newSession(sn.Spec, srv)
	if err != nil {
		return nil, fmt.Errorf("rebuilding deployment: %w", err)
	}
	cp := uwpos.Checkpoint{Seed: sn.Seed, RNGDraws: sn.RNGDraws}
	if err := sess.sys.RestoreCheckpoint(ctx, cp); err != nil {
		return nil, fmt.Errorf("replaying RNG cursor: %w", err)
	}
	if len(sn.Tracker) > 0 {
		if err := sess.tracker.UnmarshalBinary(sn.Tracker); err != nil {
			return nil, fmt.Errorf("restoring tracker: %w", err)
		}
	}
	sess.ID = sn.ID
	sess.rounds = sn.Rounds
	sess.degraded = sn.Degraded
	sess.clock = sn.Clock
	sess.hasFix = sn.HasFix
	return sess, nil
}

// restoreAll loads every snapshot in the store, in parallel (the RNG
// fast-forward is pure CPU), quarantining any that fail to decode or
// restore. It also advances nextID past every ID seen on disk so new
// sessions never collide with restored ones.
func (s *Server) restoreAll(ctx context.Context) error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if n, ok := numericSessionID(id); ok && n > s.nextID {
			s.nextID = n
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, id := range ids {
		wg.Add(1)
		sem <- struct{}{}
		go func(id string) {
			defer func() { <-sem; wg.Done() }()
			s.restoreOne(ctx, id)
		}(id)
	}
	wg.Wait()
	return ctx.Err()
}

// restoreOne restores a single on-disk snapshot into the registry, or
// quarantines it. Never fatal: a boot with a bad snapshot serves every
// good session and leaves the bad bytes where an operator can find them.
func (s *Server) restoreOne(ctx context.Context, id string) {
	quarantine := func() {
		if err := s.store.Quarantine(id); err == nil {
			s.stats.snapshotQuarantined.Add(1)
		}
	}
	blob, err := s.store.Load(id)
	if err != nil {
		quarantine()
		return
	}
	sn, err := decodeSnapshot(blob)
	if err != nil {
		quarantine()
		return
	}
	if sn.ID != id {
		// A snapshot renamed to another session's slot would resurrect
		// under the wrong identity — treat as corruption.
		quarantine()
		return
	}
	sess, err := restoreSession(ctx, sn, s)
	if err != nil {
		quarantine()
		return
	}
	s.mu.Lock()
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	s.stats.sessionsRestored.Add(1)
}

// numericSessionID parses the "s-<n>" IDs CreateSession mints.
func numericSessionID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "s-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	return n, err == nil
}

// CheckpointAll snapshots every live session, serializing against any
// in-flight round on each. This is the SIGTERM drain path: after it
// returns, every session's last committed round is durable. It reports
// how many sessions saved and how many failed (failures are also in the
// save_errors counter). No-op without a state directory.
func (s *Server) CheckpointAll() (saved, failed int) {
	if s.store == nil {
		return 0, 0
	}
	s.mu.Lock()
	live := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.mu.Lock()
		ok := sess.persistLocked()
		sess.mu.Unlock()
		if ok {
			saved++
		} else {
			failed++
		}
	}
	return saved, failed
}

// dropSnapshot removes a deleted or evicted session's snapshot so it
// cannot resurrect on the next boot.
func (s *Server) dropSnapshot(id string) {
	if s.store == nil {
		return
	}
	if err := s.store.Delete(id); err != nil {
		s.stats.snapshotErrors.Add(1)
	}
}
