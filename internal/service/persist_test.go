package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"uwpos/internal/faultinject"
)

func testSnapshot() *sessionSnapshot {
	return &sessionSnapshot{
		ID: "s-3",
		Spec: SessionSpec{
			Env:    "pool",
			Divers: []DiverSpec{{X: 0, Y: 0, Z: 1.5}, {X: 5, Y: 1, Z: 2}, {X: 8, Y: -3, Z: 1}},
			Seed:   5,
		},
		Seed:     5,
		RNGDraws: 0,
		Rounds:   2,
		Degraded: 1,
		Clock:    10,
		HasFix:   true,
		Tracker:  []byte{1, 2, 3},
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	sn := testSnapshot()
	blob, err := sn.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != sn.ID || got.Seed != sn.Seed || got.RNGDraws != sn.RNGDraws ||
		got.Rounds != sn.Rounds || got.Degraded != sn.Degraded ||
		got.Clock != sn.Clock || got.HasFix != sn.HasFix {
		t.Fatalf("round trip changed fields: %+v vs %+v", got, sn)
	}
	if string(got.Tracker) != string(sn.Tracker) {
		t.Fatalf("tracker blob changed: %v", got.Tracker)
	}
	if got.Spec.Env != "pool" || len(got.Spec.Divers) != 3 || got.Spec.Seed != 5 {
		t.Fatalf("spec changed: %+v", got.Spec)
	}
	// Re-encoding is byte-identical: the format is canonical.
	blob2, err := got.encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-encode differs")
	}
}

func TestSnapshotCodecRejectsCorruption(t *testing.T) {
	blob, err := testSnapshot().encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)-5],
		"trailing":  append(append([]byte{}, blob...), 0),
	}
	// Any single flipped byte must fail the checksum.
	for _, i := range []int{4, 10, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte{}, blob...)
		bad[i] ^= 0x40
		cases["flip@"+string(rune('0'+i%10))] = bad
	}
	for name, data := range cases {
		if _, err := decodeSnapshot(data); err == nil {
			t.Errorf("%s: corrupt snapshot decoded", name)
		}
	}
}

func TestStoreSaveLoadDelete(t *testing.T) {
	st, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("s-1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("s-1", []byte("hello2")); err != nil {
		t.Fatal(err) // overwrite is fine
	}
	if err := st.Save("s-2", []byte("other")); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "s-1" || ids[1] != "s-2" {
		t.Fatalf("list %v", ids)
	}
	b, err := st.Load("s-1")
	if err != nil || string(b) != "hello2" {
		t.Fatalf("load %q %v", b, err)
	}
	if err := st.Delete("s-1"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("s-1"); err != nil {
		t.Fatal("deleting a missing snapshot must be a no-op, got", err)
	}
	if ids, _ = st.List(); len(ids) != 1 {
		t.Fatalf("after delete: %v", ids)
	}
	// Quarantine moves the file out of the listing but keeps the bytes.
	if err := st.Quarantine("s-2"); err != nil {
		t.Fatal(err)
	}
	if ids, _ = st.List(); len(ids) != 0 {
		t.Fatalf("after quarantine: %v", ids)
	}
	qb, err := os.ReadFile(filepath.Join(st.Dir(), quarantineDir, "s-2"+snapExt))
	if err != nil || string(qb) != "other" {
		t.Fatalf("quarantined bytes %q %v", qb, err)
	}
}

func TestStoreInjectedWriteFault(t *testing.T) {
	inj := faultinject.New(faultinject.Config{})
	st, err := OpenStore(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNextWrite()
	if err := st.Save("s-1", []byte("x")); err == nil {
		t.Fatal("armed write fault did not surface")
	}
	if ids, _ := st.List(); len(ids) != 0 {
		t.Fatal("failed save left a file")
	}
	if err := st.Save("s-1", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreOnBoot drives the whole boot path without running rounds: a
// valid zero-draw snapshot restores; garbage, an ID mismatch and a
// corrupt tracker blob each quarantine; and new session IDs never
// collide with anything seen on disk.
func TestRestoreOnBoot(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot() // ID s-3
	good.Tracker = nil     // no tracker state: session had no solved rounds
	goodBlob, err := good.encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("s-3", goodBlob); err != nil {
		t.Fatal(err)
	}
	// Codec-valid snapshot whose tracker blob is garbage: restore fails.
	badTracker := testSnapshot()
	badTracker.ID = "s-5"
	badTrackerBlob, err := badTracker.encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("s-5", badTrackerBlob); err != nil {
		t.Fatal(err)
	}
	// Valid bytes under the wrong name: identity mismatch.
	if err := st.Save("s-7", goodBlob); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("s-9", []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(context.Background(), Config{SessionTTL: -1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stz := srv.Stats()
	if stz.Sessions.Restored != 1 || stz.Sessions.Active != 1 {
		t.Fatalf("restored %d active %d, want 1/1", stz.Sessions.Restored, stz.Sessions.Active)
	}
	if stz.Persistence == nil || stz.Persistence.Quarantined != 3 {
		t.Fatalf("persistence counters %+v", stz.Persistence)
	}
	sess, err := srv.Session("s-3")
	if err != nil {
		t.Fatal(err)
	}
	sess.mu.Lock()
	if sess.rounds != 2 || sess.degraded != 1 || sess.clock != 10 || !sess.hasFix {
		t.Errorf("restored counters: rounds=%d degraded=%d clock=%g hasFix=%v",
			sess.rounds, sess.degraded, sess.clock, sess.hasFix)
	}
	sess.mu.Unlock()

	// IDs seen on disk — restored AND quarantined — are burned.
	created, err := srv.CreateSession(good.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if created.ID != "s-10" {
		t.Errorf("new session ID %s, want s-10 (past quarantined s-9)", created.ID)
	}

	// Deleting the restored session removes its snapshot file.
	if err := srv.DeleteSession("s-3"); err != nil {
		t.Fatal(err)
	}
	for _, id := range listOrEmpty(t, srv.store) {
		if id == "s-3" {
			t.Error("snapshot file survived session delete")
		}
	}
}

func listOrEmpty(t *testing.T, st *Store) []string {
	t.Helper()
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	return ids
}
