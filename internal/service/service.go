// Package service is the session layer behind the uwposd daemon: a
// registry of concurrent ranging/localization sessions, each wrapping one
// simulated deployment (uwpos.System) plus its tracker, fronted by the
// HTTP+JSON API in http.go.
//
// Design notes, in the order they matter operationally:
//
//   - One session = one System = one dive group. Rounds within a session
//     are serialized (the simulator owns mutable per-round state) while
//     sessions run concurrently, bounded by a process-wide semaphore so a
//     burst of rounds degrades to queueing instead of memory exhaustion.
//   - Sessions degrade instead of fail: a round whose acoustics come back
//     too damaged to solve still answers 200, flagged degraded, with
//     positions extrapolated from the session's track when available.
//   - Heavy per-round scratch (audio slabs, FFT workspaces) is pooled:
//     reusing a session's System reuses its simulator buffers, and the
//     signal-processing layer shares matcher caches process-wide, so a
//     thousand idle sessions cost ~nothing and active ones amortize.
//   - Every request feeds latency sketches (stats.Sketch behind a mutex)
//     exposed on /v1/statz; the round path records end-to-end time
//     (including queue wait) and bare execution time separately.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"uwpos"
	"uwpos/internal/faultinject"
	"uwpos/internal/stats"
)

// Service-level failures, mapped to HTTP statuses in http.go.
var (
	// ErrUnknownSession reports a session ID that does not exist (never
	// created, expired, or deleted).
	ErrUnknownSession = errors.New("service: unknown session")
	// ErrServerFull reports that the registry is at MaxSessions.
	ErrServerFull = errors.New("service: session limit reached")
)

// Config tunes a Server. The zero value is production-ready.
type Config struct {
	// MaxSessions caps the registry (default 8192). Creation beyond the
	// cap fails with ErrServerFull rather than degrading every session.
	MaxSessions int
	// MaxConcurrentRounds bounds rounds executing simultaneously across
	// all sessions (default GOMAXPROCS). Excess rounds queue; their
	// context deadline keeps counting while they wait.
	MaxConcurrentRounds int
	// SessionTTL evicts sessions idle longer than this (default 10 min;
	// negative disables eviction).
	SessionTTL time.Duration
	// RoundTimeout caps one round's end-to-end time when the request does
	// not set its own (default 2 min; negative disables the cap).
	RoundTimeout time.Duration
	// StateDir enables crash-safe session durability: every committed
	// round snapshots its session here (atomic rename, checksummed), and
	// NewServer restores all decodable snapshots on boot, quarantining
	// corrupt ones instead of failing. Empty disables persistence.
	StateDir string
	// Injector threads deterministic fault injection into the durability
	// and round paths. Nil (the production value) is inert.
	Injector *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 8192
	}
	if c.MaxConcurrentRounds == 0 {
		c.MaxConcurrentRounds = runtime.GOMAXPROCS(0)
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 10 * time.Minute
	}
	if c.RoundTimeout == 0 {
		c.RoundTimeout = 2 * time.Minute
	}
	return c
}

// Server owns the session registry and shared execution resources.
type Server struct {
	cfg     Config
	started time.Time

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int64
	closed   bool

	// roundSem bounds concurrent round execution process-wide.
	roundSem chan struct{}

	// store persists session snapshots; nil when Config.StateDir is empty.
	store *Store

	stats serverStats

	evictStop chan struct{}
	evictDone chan struct{}
}

// NewServer builds a Server and starts its TTL eviction loop. With
// Config.StateDir set it also opens the snapshot store and restores
// every decodable session from disk before returning; the error covers
// an unusable state directory only — individual corrupt snapshots are
// quarantined and counted, never fatal.
func NewServer(ctx context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		started:   time.Now(),
		sessions:  make(map[string]*Session),
		roundSem:  make(chan struct{}, cfg.MaxConcurrentRounds),
		evictStop: make(chan struct{}),
		evictDone: make(chan struct{}),
	}
	s.stats.init()
	if cfg.StateDir != "" {
		store, err := OpenStore(cfg.StateDir, cfg.Injector)
		if err != nil {
			return nil, err
		}
		s.store = store
		if err := s.restoreAll(ctx); err != nil {
			return nil, err
		}
	}
	go s.evictLoop()
	return s, nil
}

// Close stops the eviction loop and drops all sessions.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()
	close(s.evictStop)
	<-s.evictDone
}

// CreateSession validates the spec, builds the deployment and registers a
// session. The returned session is live until deleted or TTL-evicted.
func (s *Server) CreateSession(spec SessionSpec) (*Session, error) {
	sess, err := newSession(spec, s)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, fmt.Errorf("%w (%d active)", ErrServerFull, len(s.sessions))
	}
	s.nextID++
	sess.ID = fmt.Sprintf("s-%d", s.nextID)
	s.sessions[sess.ID] = sess
	s.stats.sessionsCreated.Add(1)
	return sess, nil
}

// Session looks up a live session by ID.
func (s *Server) Session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	return sess, nil
}

// DeleteSession removes a session. Idempotent: deleting an unknown ID
// reports ErrUnknownSession.
func (s *Server) DeleteSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	delete(s.sessions, id)
	s.stats.sessionsDeleted.Add(1)
	s.dropSnapshot(id)
	return nil
}

// ActiveSessions returns the current registry size.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// acquireRound blocks until a round execution slot is free or ctx ends.
// The release func is non-nil iff err is nil.
func (s *Server) acquireRound(ctx context.Context) (func(), error) {
	select {
	case s.roundSem <- struct{}{}:
		return func() { <-s.roundSem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) evictLoop() {
	defer close(s.evictDone)
	if s.cfg.SessionTTL < 0 {
		<-s.evictStop
		return
	}
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.evictStop:
			return
		case now := <-tick.C:
			s.evictIdle(now)
		}
	}
}

// evictIdle drops sessions whose last activity is older than the TTL.
// No-op when eviction is disabled.
func (s *Server) evictIdle(now time.Time) int {
	if s.cfg.SessionTTL < 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, sess := range s.sessions {
		if now.Sub(sess.lastUsed()) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			s.stats.sessionsEvicted.Add(1)
			s.dropSnapshot(id)
			n++
		}
	}
	return n
}

// latencySketch is a stats.Sketch behind a mutex: the engine feeds
// sketches from a serialized sink, but HTTP handlers are concurrent.
type latencySketch struct {
	mu sync.Mutex
	sk *stats.Sketch
}

func newLatencySketch() *latencySketch { return &latencySketch{sk: stats.NewSketch()} }

func (l *latencySketch) add(d time.Duration) {
	l.mu.Lock()
	l.sk.Add(float64(d) / float64(time.Millisecond))
	l.mu.Unlock()
}

// summary returns count and the given quantiles (ms).
func (l *latencySketch) summary(ps ...float64) (int64, []float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Count(), l.sk.Quantiles(ps...)
}

// counter is a tiny atomic counter (avoiding sync/atomic.Int64 noise at
// call sites that also hold no other locks).
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) Add(d int64) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *counter) Load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

type serverStats struct {
	sessionsCreated  counter
	sessionsDeleted  counter
	sessionsEvicted  counter
	sessionsRestored counter
	roundsTotal      counter
	roundsDegraded   counter
	roundsFailed     counter

	snapshotSaves       counter
	snapshotErrors      counter
	snapshotQuarantined counter

	// roundE2E includes queue wait; roundExec is simulator time only.
	roundE2E  *latencySketch
	roundExec *latencySketch
	track     *latencySketch
}

func (st *serverStats) init() {
	st.roundE2E = newLatencySketch()
	st.roundExec = newLatencySketch()
	st.track = newLatencySketch()
}

// Statz is the /v1/statz payload.
type Statz struct {
	UptimeSec float64            `json:"uptime_sec"`
	Sessions  SessionCounts      `json:"sessions"`
	Rounds    RoundCounts        `json:"rounds"`
	LatencyMS map[string]Latency `json:"latency_ms"`
	// Persistence is present only when the server runs with a state
	// directory.
	Persistence *PersistenceCounts `json:"persistence,omitempty"`
}

// SessionCounts aggregates session lifecycle counters.
type SessionCounts struct {
	Created int64 `json:"created"`
	Active  int   `json:"active"`
	Deleted int64 `json:"deleted"`
	Evicted int64 `json:"evicted"`
	// Restored counts sessions rebuilt from disk snapshots at boot.
	Restored int64 `json:"restored,omitempty"`
}

// PersistenceCounts aggregates snapshot durability counters.
type PersistenceCounts struct {
	// Saves counts snapshot writes that reached disk.
	Saves int64 `json:"saves"`
	// SaveErrors counts snapshot writes that failed (the session kept
	// serving; its replay window widened to the previous save).
	SaveErrors int64 `json:"save_errors"`
	// Quarantined counts on-disk snapshots moved aside at boot because
	// they failed checksum, decode, or restore.
	Quarantined int64 `json:"quarantined"`
}

// RoundCounts aggregates round outcomes. Degraded rounds are included in
// Total; Failed counts hard failures only (deadline, cancellation).
type RoundCounts struct {
	Total    int64 `json:"total"`
	Degraded int64 `json:"degraded"`
	Failed   int64 `json:"failed"`
}

// Latency summarizes one endpoint's latency sketch in milliseconds.
type Latency struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats snapshots the server's counters and latency quantiles.
func (s *Server) Stats() Statz {
	st := Statz{
		UptimeSec: time.Since(s.started).Seconds(),
		Sessions: SessionCounts{
			Created:  s.stats.sessionsCreated.Load(),
			Active:   s.ActiveSessions(),
			Deleted:  s.stats.sessionsDeleted.Load(),
			Evicted:  s.stats.sessionsEvicted.Load(),
			Restored: s.stats.sessionsRestored.Load(),
		},
		Rounds: RoundCounts{
			Total:    s.stats.roundsTotal.Load(),
			Degraded: s.stats.roundsDegraded.Load(),
			Failed:   s.stats.roundsFailed.Load(),
		},
		LatencyMS: map[string]Latency{},
	}
	for name, l := range map[string]*latencySketch{
		"round_e2e":  s.stats.roundE2E,
		"round_exec": s.stats.roundExec,
		"track":      s.stats.track,
	} {
		n, qs := l.summary(50, 90, 99)
		for i, q := range qs {
			// An unobserved sketch answers NaN, which JSON cannot carry.
			if math.IsNaN(q) {
				qs[i] = 0
			}
		}
		st.LatencyMS[name] = Latency{Count: n, P50: qs[0], P90: qs[1], P99: qs[2]}
	}
	if s.store != nil {
		st.Persistence = &PersistenceCounts{
			Saves:       s.stats.snapshotSaves.Load(),
			SaveErrors:  s.stats.snapshotErrors.Load(),
			Quarantined: s.stats.snapshotQuarantined.Load(),
		}
	}
	return st
}

// validateLinks checks a fault-link list against the device count.
func validateLinks(field string, links [][2]int, n int) error {
	for _, p := range links {
		if p[0] < 0 || p[1] < 0 || p[0] >= n || p[1] >= n || p[0] == p[1] {
			return uwpos.ConfigError{
				Field:  field,
				Reason: fmt.Sprintf("link [%d %d] invalid for %d devices", p[0], p[1], n),
			}
		}
	}
	return nil
}
