package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"uwpos"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = -1 // tests drive eviction explicitly
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = -1
	}
	srv, err := NewServer(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// newBareServer builds a handler-less server for unit-level tests.
func newBareServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(context.Background(), Config{SessionTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func doReq(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = *bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, &rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func poolSpec(seed int64) map[string]any {
	return map[string]any{
		"env": "pool",
		"divers": []map[string]any{
			{"x": 0, "y": 0, "z": 1.5},
			{"x": 5, "y": 1, "z": 2.0},
			{"x": 8, "y": -3, "z": 1.0},
		},
		"seed": seed,
	}
}

func TestSessionLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full round is expensive")
	}
	_, ts := newTestServer(t, Config{})

	status, created := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(21))
	if status != http.StatusCreated {
		t.Fatalf("create: %d %v", status, created)
	}
	id := created["id"].(string)
	if created["devices"].(float64) != 3 {
		t.Errorf("devices %v", created["devices"])
	}

	status, round := doReq(t, "POST", ts.URL+"/v1/sessions/"+id+"/rounds", map[string]any{})
	if status != http.StatusOK {
		t.Fatalf("round: %d %v", status, round)
	}
	if round["round"].(float64) != 1 {
		t.Errorf("round number %v", round["round"])
	}
	if n := len(round["positions"].([]any)); n != 3 {
		t.Errorf("%d positions", n)
	}
	if round["anchors"].(float64) != 3 {
		t.Errorf("anchors %v", round["anchors"])
	}

	status, track := doReq(t, "GET", ts.URL+"/v1/sessions/"+id+"/track?at_sec=5", nil)
	if status != http.StatusOK {
		t.Fatalf("track: %d %v", status, track)
	}
	if track["rounds"].(float64) != 1 || track["at_sec"].(float64) != 5 {
		t.Errorf("track %v", track)
	}
	if n := len(track["positions"].([]any)); n != 3 {
		t.Errorf("%d tracked positions", n)
	}

	status, statz := doReq(t, "GET", ts.URL+"/v1/statz", nil)
	if status != http.StatusOK {
		t.Fatalf("statz: %d", status)
	}
	rounds := statz["rounds"].(map[string]any)
	if rounds["total"].(float64) != 1 || rounds["failed"].(float64) != 0 {
		t.Errorf("statz rounds %v", rounds)
	}
	lat := statz["latency_ms"].(map[string]any)["round_exec"].(map[string]any)
	if lat["count"].(float64) != 1 || lat["p50"].(float64) <= 0 {
		t.Errorf("exec latency %v", lat)
	}

	if status, _ := doReq(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil); status != http.StatusNoContent {
		t.Fatalf("delete: %d", status)
	}
	if status, _ := doReq(t, "POST", ts.URL+"/v1/sessions/"+id+"/rounds", nil); status != http.StatusNotFound {
		t.Errorf("round on deleted session: %d", status)
	}
	if status, _ := doReq(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil); status != http.StatusNotFound {
		t.Errorf("double delete: %d", status)
	}
}

func TestCreateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		body  any
		field string
	}{
		{"unknown env", map[string]any{"env": "mariana", "divers": poolSpec(1)["divers"]}, "Env"},
		{"two divers", map[string]any{"env": "pool", "divers": []map[string]any{{"x": 0}, {"x": 5}}}, ""},
		{"bad occluded link", map[string]any{
			"env": "pool", "divers": poolSpec(1)["divers"],
			"occluded_links": [][2]int{{0, 7}},
		}, "OccludedLinks"},
		{"unknown field", map[string]any{"env": "pool", "diverz": 3}, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := doReq(t, "POST", ts.URL+"/v1/sessions", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d body %v", status, body)
			}
			if tc.field != "" && body["field"] != tc.field {
				t.Errorf("field %v, want %s", body["field"], tc.field)
			}
		})
	}
}

func TestRoundDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, created := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(3))
	if status != http.StatusCreated {
		t.Fatal(status)
	}
	id := created["id"].(string)
	// 1 ms cannot cover a ~1 s round: the deadline must surface as 504,
	// not hang and not 500.
	status, body := doReq(t, "POST", ts.URL+"/v1/sessions/"+id+"/rounds",
		map[string]any{"timeout_ms": 1})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %v", status, body)
	}
	// The failure is counted as hard, not degraded.
	_, statz := doReq(t, "GET", ts.URL+"/v1/statz", nil)
	if f := statz["rounds"].(map[string]any)["failed"].(float64); f != 1 {
		t.Errorf("failed rounds %v", f)
	}
}

func TestUnknownSession404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, req := range [][2]string{
		{"POST", "/v1/sessions/s-404/rounds"},
		{"GET", "/v1/sessions/s-404/track"},
		{"DELETE", "/v1/sessions/s-404"},
	} {
		if status, _ := doReq(t, req[0], ts.URL+req[1], nil); status != http.StatusNotFound {
			t.Errorf("%s %s: %d", req[0], req[1], status)
		}
	}
}

func TestSessionLimit429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if status, body := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(int64(i+1))); status != http.StatusCreated {
			t.Fatalf("create %d: %d %v", i, status, body)
		}
	}
	status, _ := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(9))
	if status != http.StatusTooManyRequests {
		t.Fatalf("over limit: %d", status)
	}
	if n := srv.ActiveSessions(); n != 2 {
		t.Errorf("active %d", n)
	}
}

func TestTTLEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{SessionTTL: 50 * time.Millisecond})
	status, created := doReq(t, "POST", ts.URL+"/v1/sessions", poolSpec(5))
	if status != http.StatusCreated {
		t.Fatal(status)
	}
	id := created["id"].(string)
	// Fresh session survives a sweep "now".
	if n := srv.evictIdle(time.Now()); n != 0 {
		t.Fatalf("evicted fresh session (%d)", n)
	}
	// A sweep from the far future reaps it.
	if n := srv.evictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if status, _ := doReq(t, "GET", ts.URL+"/v1/sessions/"+id+"/track", nil); status != http.StatusNotFound {
		t.Errorf("evicted session still reachable: %d", status)
	}
	if got := srv.Stats().Sessions.Evicted; got != 1 {
		t.Errorf("evicted counter %d", got)
	}
}

// Degraded-round classification, unit-level: consumeRound and
// degradeRound are driven with hand-built outcomes so the tests pin the
// payload contract without paying for simulated acoustics.

func testSession(t *testing.T, srv *Server) *Session {
	t.Helper()
	sess, err := newSession(SessionSpec{
		Env:    "pool",
		Divers: []DiverSpec{{X: 0, Y: 0, Z: 1.5}, {X: 5, Y: 1, Z: 2}, {X: 8, Y: -3, Z: 1}},
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func outcome(stress float64, dropped [][2]int) *uwpos.RoundOutcome {
	res := &uwpos.Result{
		ResidualStress: stress,
		DroppedLinks:   dropped,
		Positions: []uwpos.Position{
			{Device: 0, Pos: uwpos.Vec3{Z: 1.5}},
			{Device: 1, Pos: uwpos.Vec3{X: 5, Y: 1, Z: 2}},
			{Device: 2, Pos: uwpos.Vec3{X: 8, Y: -3, Z: 1}},
		},
	}
	w := [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	return &uwpos.RoundOutcome{Result: res, Weights: w, LatencySec: 1.8}
}

func TestConsumeRoundClean(t *testing.T) {
	srv := newBareServer(t)
	defer srv.Close()
	s := testSession(t, srv)
	rep := &RoundReport{AtSec: 0}
	s.consumeRound(0, outcome(0.3, nil), rep)
	if rep.Degraded {
		t.Fatalf("clean round degraded: %+v", rep)
	}
	if rep.Anchors != 3 || len(rep.Positions) != 3 {
		t.Errorf("anchors %d positions %d", rep.Anchors, len(rep.Positions))
	}
	for _, p := range rep.Positions {
		if p.ConfidenceM != baseConfidenceM {
			t.Errorf("device %d confidence %g, want floor %g", p.Device, p.ConfidenceM, baseConfidenceM)
		}
	}
}

func TestConsumeRoundHighStress(t *testing.T) {
	srv := newBareServer(t)
	defer srv.Close()
	s := testSession(t, srv)
	rep := &RoundReport{}
	s.consumeRound(0, outcome(2.4, nil), rep)
	if !rep.Degraded {
		t.Fatal("high-stress round not degraded")
	}
	for _, p := range rep.Positions {
		if p.ConfidenceM != 2.4 {
			t.Errorf("confidence %g, want stress-derived 2.4", p.ConfidenceM)
		}
	}
}

func TestConsumeRoundDroppedLinks(t *testing.T) {
	srv := newBareServer(t)
	defer srv.Close()
	s := testSession(t, srv)
	rep := &RoundReport{}
	s.consumeRound(0, outcome(0.4, [][2]int{{1, 2}}), rep)
	if !rep.Degraded {
		t.Fatal("outlier-dropping round not degraded")
	}
	// Devices on the dropped link carry doubled error bars.
	byDev := map[int]float64{}
	for _, p := range rep.Positions {
		byDev[p.Device] = p.ConfidenceM
	}
	if byDev[0] != baseConfidenceM || byDev[1] != 2*baseConfidenceM || byDev[2] != 2*baseConfidenceM {
		t.Errorf("confidences %v", byDev)
	}
}

func TestDegradeRoundExtrapolates(t *testing.T) {
	srv := newBareServer(t)
	defer srv.Close()
	s := testSession(t, srv)

	// No prior fix: degraded, positionless.
	rep := &RoundReport{}
	s.degradeRound(0, fmt.Errorf("acoustics gone"), rep)
	if !rep.Degraded || len(rep.Positions) != 0 {
		t.Fatalf("first-round degrade: %+v", rep)
	}

	// After a fix, degraded rounds answer from the track with widened
	// error bars.
	good := &RoundReport{}
	s.consumeRound(0, outcome(0.3, nil), good)
	s.hasFix = true
	rep = &RoundReport{}
	s.degradeRound(10, fmt.Errorf("acoustics gone"), rep)
	if !rep.Degraded || rep.Reason == "" {
		t.Fatalf("degrade: %+v", rep)
	}
	if len(rep.Positions) != 3 {
		t.Fatalf("%d extrapolated positions", len(rep.Positions))
	}
	for _, p := range rep.Positions {
		if p.ConfidenceM < 2*baseConfidenceM {
			t.Errorf("device %d confidence %g not widened", p.Device, p.ConfidenceM)
		}
	}
}

func TestRoundTimestampBackwards(t *testing.T) {
	srv := newBareServer(t)
	defer srv.Close()
	s := testSession(t, srv)
	s.clock, s.hasFix = 20, true
	_, err := s.RunRound(t.Context(), RoundRequest{AtSec: 5})
	var ce uwpos.ConfigError
	if !errors.As(err, &ce) || ce.Field != "AtSec" {
		t.Fatalf("want AtSec ConfigError, got %v", err)
	}
}
