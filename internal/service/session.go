package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"uwpos"
)

// stressDegradedM is the residual-stress level (metres) above which a
// solved round is flagged degraded: the paper's outlier analysis treats
// normalized stress beyond ~1.5 m as a sign of unresolved bad links.
const stressDegradedM = 1.5

// baseConfidenceM is the floor on a reported position's 1σ error bar,
// matching the deployment median accuracy (§3).
const baseConfidenceM = 0.6

// defaultRoundSpacing advances the session clock between rounds when the
// client does not timestamp them (the protocol's periodic cadence).
const defaultRoundSpacing = 10.0 // seconds

// SessionSpec is the client-supplied deployment description
// (POST /v1/sessions body).
type SessionSpec struct {
	// Env names a preset environment: pool, dock, viewpoint, boathouse.
	Env string `json:"env"`
	// Divers place the group; index 0 is the leader, index 1 the pointed
	// diver. At least 3.
	Divers []DiverSpec `json:"divers"`
	// Seed drives the session's simulation randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// PointingErrorRad perturbs the leader's aim.
	PointingErrorRad float64 `json:"pointing_error_rad,omitempty"`
	// OccludedLinks lists device pairs with a blocked direct path.
	OccludedLinks [][2]int `json:"occluded_links,omitempty"`
	// DroppedLinks lists device pairs that cannot hear each other.
	DroppedLinks [][2]int `json:"dropped_links,omitempty"`
}

// DiverSpec places one device.
type DiverSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
	// Watch selects the dive-computer depth gauge.
	Watch bool `json:"watch,omitempty"`
}

// Session is one live deployment: a System, its track state, and round
// bookkeeping. Rounds are serialized per session by mu; lastUsedAt feeds
// TTL eviction.
type Session struct {
	ID   string
	spec SessionSpec
	srv  *Server

	mu      sync.Mutex // serializes rounds and track reads
	sys     *uwpos.System
	tracker *uwpos.GroupTracker
	rounds  int
	// degraded counts rounds answered in degraded mode.
	degraded int
	// clock is the session-time of the last round (s since dive start).
	clock  float64
	hasFix bool

	usedMu     sync.Mutex
	lastUsedAt time.Time
}

func newSession(spec SessionSpec, srv *Server) (*Session, error) {
	env, err := uwpos.EnvironmentByName(spec.Env)
	if err != nil {
		return nil, uwpos.ConfigError{Field: "Env", Reason: err.Error()}
	}
	n := len(spec.Divers)
	if err := validateLinks("OccludedLinks", spec.OccludedLinks, n); err != nil {
		return nil, err
	}
	if err := validateLinks("DroppedLinks", spec.DroppedLinks, n); err != nil {
		return nil, err
	}
	divers := make([]uwpos.Diver, n)
	for i, d := range spec.Divers {
		divers[i] = uwpos.Diver{Pos: uwpos.Vec3{X: d.X, Y: d.Y, Z: d.Z}, WatchGauge: d.Watch}
	}
	sys, err := uwpos.NewSystem(uwpos.SystemConfig{
		Env:              env,
		Divers:           divers,
		Seed:             spec.Seed,
		PointingErrorRad: spec.PointingErrorRad,
		OccludedLinks:    spec.OccludedLinks,
		DroppedLinks:     spec.DroppedLinks,
	})
	if err != nil {
		return nil, err
	}
	return &Session{
		spec:       spec,
		srv:        srv,
		sys:        sys,
		tracker:    uwpos.NewGroupTracker(uwpos.TrackerConfig{}),
		clock:      -defaultRoundSpacing,
		lastUsedAt: time.Now(),
	}, nil
}

func (s *Session) touch() {
	s.usedMu.Lock()
	s.lastUsedAt = time.Now()
	s.usedMu.Unlock()
}

func (s *Session) lastUsed() time.Time {
	s.usedMu.Lock()
	defer s.usedMu.Unlock()
	return s.lastUsedAt
}

// Devices returns the deployment size.
func (s *Session) Devices() int { return len(s.spec.Divers) }

// RoundRequest is the POST /v1/sessions/{id}/rounds body.
type RoundRequest struct {
	// AtSec timestamps the round in session time (seconds since dive
	// start). Zero means "previous + 10 s". Must not move backwards.
	AtSec float64 `json:"at_sec,omitempty"`
	// TimeoutMS bounds the round end to end, queue wait included
	// (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// DevicePosition is one device's entry in a round or track payload.
type DevicePosition struct {
	Device int     `json:"device"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Z      float64 `json:"z"`
	// ConfidenceM is the 1σ error bar: residual stress for solved rounds,
	// track uncertainty for extrapolated ones — wider when degraded.
	ConfidenceM float64 `json:"confidence_m"`
}

// RoundReport is the round response payload.
type RoundReport struct {
	Round int     `json:"round"`
	AtSec float64 `json:"at_sec"`
	// Degraded marks a round answered with reduced quality: unsolvable
	// acoustics (positions extrapolated from the track), dropped outlier
	// links, or residual stress past the accept threshold.
	Degraded bool `json:"degraded"`
	// Reason says why the round is degraded ("" when not).
	Reason    string           `json:"reason,omitempty"`
	Positions []DevicePosition `json:"positions"`
	// Anchors is the number of devices that contributed measured links.
	Anchors      int      `json:"anchors"`
	StressM      float64  `json:"residual_stress_m"`
	DroppedLinks [][2]int `json:"dropped_links,omitempty"`
	// LatencySec is the simulated protocol round time (0 if unsolved).
	LatencySec float64 `json:"latency_sec"`
	// ElapsedMS is wall-clock execution time on the server.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunRound executes one protocol round. The context deadline covers queue
// wait and execution; expiry surfaces context.DeadlineExceeded (504).
// Soft failures — acoustics too damaged to solve — degrade to track
// extrapolation instead of failing once the session has a prior fix.
func (s *Session) RunRound(ctx context.Context, req RoundRequest) (*RoundReport, error) {
	s.touch()
	start := time.Now()
	release, err := s.srv.acquireRound(ctx)
	if err != nil {
		s.srv.stats.roundsFailed.Add(1)
		return nil, err
	}
	defer release()

	s.mu.Lock()
	defer s.mu.Unlock()

	at := req.AtSec
	if at == 0 {
		at = s.clock + defaultRoundSpacing
	}
	if s.hasFix && at < s.clock {
		s.srv.stats.roundsFailed.Add(1)
		return nil, uwpos.ConfigError{Field: "AtSec", Reason: "round timestamp moves backwards"}
	}

	// Injected round latency (inert without a fault injector) stalls the
	// round while still honouring the caller's deadline.
	inj := s.srv.cfg.Injector
	if d := inj.RoundLatency(); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			s.srv.stats.roundsFailed.Add(1)
			return nil, ctx.Err()
		}
	}

	execStart := time.Now()
	var out *uwpos.RoundOutcome
	if inj.DropAnchors() {
		// Injected anchor loss takes the same soft-failure path real
		// unusable acoustics would.
		err = errors.New("injected fault: all anchor measurements dropped")
	} else {
		out, err = s.sys.Locate(ctx)
	}
	execD := time.Since(execStart)
	s.srv.stats.roundExec.add(execD)

	if inj.Kill("round-commit") {
		// Crash emulation: the round ran but nothing commits — in memory
		// or on disk — exactly the state a kill -9 here would leave. The
		// client sees a failure and retries against the prior round.
		s.srv.stats.roundsFailed.Add(1)
		return nil, errors.New("service: injected crash before round commit")
	}

	rep := &RoundReport{AtSec: at}
	switch {
	case err == nil:
		s.consumeRound(at, out, rep)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.srv.stats.roundsFailed.Add(1)
		return nil, err
	default:
		// Soft failure: degrade rather than fail the session.
		s.degradeRound(at, err, rep)
	}

	s.rounds++
	rep.Round = s.rounds
	s.clock, s.hasFix = at, true
	if rep.Degraded {
		s.degraded++
		s.srv.stats.roundsDegraded.Add(1)
	}
	s.srv.stats.roundsTotal.Add(1)
	// Round committed: make it durable before answering, so a crash
	// after this response never rolls the session behind what the client
	// has seen. Persistence failure is counted, not surfaced — the round
	// result is already authoritative in memory.
	s.persistLocked()
	e2e := time.Since(start)
	s.srv.stats.roundE2E.add(e2e)
	rep.ElapsedMS = float64(e2e) / float64(time.Millisecond)
	s.touch()
	return rep, nil
}

// consumeRound fills rep from a solved round and feeds the tracker.
func (s *Session) consumeRound(at float64, out *uwpos.RoundOutcome, rep *RoundReport) {
	rep.StressM = out.Result.ResidualStress
	rep.DroppedLinks = out.Result.DroppedLinks
	rep.LatencySec = out.LatencySec
	rep.Anchors = anchorCount(out.Weights)

	// Per-device confidence: stress-driven floor, widened for devices on
	// a dropped link (their own measurements were rejected).
	conf := rep.StressM
	if conf < baseConfidenceM {
		conf = baseConfidenceM
	}
	onDropped := map[int]bool{}
	for _, p := range rep.DroppedLinks {
		onDropped[p[0]], onDropped[p[1]] = true, true
	}
	for _, p := range out.Result.Positions {
		c := conf
		if onDropped[p.Device] {
			c *= 2
		}
		rep.Positions = append(rep.Positions, DevicePosition{
			Device: p.Device, X: p.Pos.X, Y: p.Pos.Y, Z: p.Pos.Z, ConfidenceM: c,
		})
	}
	switch {
	case rep.StressM > stressDegradedM:
		rep.Degraded, rep.Reason = true, "residual stress above accept threshold"
	case len(rep.DroppedLinks) > 0:
		rep.Degraded, rep.Reason = true, "outlier links dropped"
	case rep.Anchors < len(s.spec.Divers):
		rep.Degraded, rep.Reason = true, "fewer anchors than devices"
	}
	// A degraded fix still improves the track — feed it regardless.
	if err := s.tracker.AddRound(at, out.Result); err != nil {
		// Validation failures here mean the round itself was malformed;
		// keep serving but flag it.
		rep.Degraded, rep.Reason = true, "track update rejected: "+err.Error()
	}
}

// degradeRound answers an unsolvable round from the session's track.
func (s *Session) degradeRound(at float64, cause error, rep *RoundReport) {
	rep.Degraded = true
	rep.Reason = "round unsolved: " + cause.Error()
	if !s.hasFix {
		// Nothing to extrapolate from: degraded with no positions.
		return
	}
	pos := s.tracker.PositionsAt(at)
	for dev := 0; dev < len(s.spec.Divers); dev++ {
		p, ok := pos[dev]
		if !ok {
			continue
		}
		c := s.tracker.UncertaintyOf(dev)
		if c < baseConfidenceM {
			c = baseConfidenceM
		}
		// Extrapolated positions carry no fresh measurement: widen.
		rep.Positions = append(rep.Positions, DevicePosition{
			Device: dev, X: p.X, Y: p.Y, Z: p.Z, ConfidenceM: 2 * c,
		})
	}
}

// anchorCount counts devices with at least one measured link.
func anchorCount(w [][]float64) int {
	n := 0
	for i := range w {
		for j := range w[i] {
			if i != j && w[i][j] > 0 {
				n++
				break
			}
		}
	}
	return n
}

// TrackReport is the GET /v1/sessions/{id}/track payload.
type TrackReport struct {
	AtSec  float64 `json:"at_sec"`
	Rounds int     `json:"rounds"`
	// Degraded counts degraded rounds so far.
	Degraded  int              `json:"degraded_rounds"`
	Positions []DevicePosition `json:"positions"`
	// Velocities are per-device horizontal speeds (m/s), indexed like
	// Positions.
	Velocities []float64 `json:"velocities_mps"`
}

// Track extrapolates every diver's track to the given session time
// (default: the last round's time).
func (s *Session) Track(atSec float64) *TrackReport {
	s.touch()
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	at := atSec
	if at == 0 {
		at = s.clock
	}
	rep := &TrackReport{AtSec: at, Rounds: s.rounds, Degraded: s.degraded}
	pos := s.tracker.PositionsAt(at)
	for dev := 0; dev < len(s.spec.Divers); dev++ {
		p, ok := pos[dev]
		if !ok {
			continue
		}
		c := s.tracker.UncertaintyOf(dev)
		rep.Positions = append(rep.Positions, DevicePosition{
			Device: dev, X: p.X, Y: p.Y, Z: p.Z, ConfidenceM: c,
		})
		rep.Velocities = append(rep.Velocities, s.tracker.VelocityOf(dev).Norm())
	}
	s.srv.stats.track.add(time.Since(start))
	return rep
}
