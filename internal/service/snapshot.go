package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
)

// Session snapshot wire format (version 1, little-endian):
//
//	offset  size  field
//	0       4     magic "UWPS"
//	4       2     format version (u16)
//	6       2     session-ID length (u16), then the ID bytes
//	..      4     spec length (u32), then the SessionSpec JSON
//	..      8     effective simulation seed (i64)
//	..      8     RNG draw cursor (u64)
//	..      8     committed rounds (u64)
//	..      8     degraded rounds (u64)
//	..      8     session clock, IEEE-754 bits (u64)
//	..      1     hasFix flag (u8)
//	..      4     tracker blob length (u32), then the GroupTracker blob
//	..      4     CRC32-IEEE over every preceding byte (u32)
//
// The spec rides along as JSON because it is already the wire shape the
// client sent and must survive field additions; everything replayable is
// binary and bit-exact. The trailing checksum turns any torn or
// bit-rotted file into a clean decode failure, which the store maps to
// quarantine rather than a boot abort.

const (
	snapshotMagic   = "UWPS"
	snapshotVersion = 1
)

// sessionSnapshot is the decoded form of one session's durable state.
// Together with the SessionSpec it pins the full mutable state of a
// session: the RNG cursor replays the simulation, the tracker blob
// restores the filter, and the counters restore the protocol position.
type sessionSnapshot struct {
	ID       string
	Spec     SessionSpec
	Seed     int64
	RNGDraws uint64
	Rounds   int
	Degraded int
	Clock    float64
	HasFix   bool
	Tracker  []byte
}

// encode renders the snapshot in wire format, checksum included.
func (sn *sessionSnapshot) encode() ([]byte, error) {
	if len(sn.ID) > math.MaxUint16 {
		return nil, fmt.Errorf("service: session ID %d bytes long", len(sn.ID))
	}
	spec, err := json.Marshal(sn.Spec)
	if err != nil {
		return nil, fmt.Errorf("service: encoding session spec: %w", err)
	}
	b := make([]byte, 0, 64+len(sn.ID)+len(spec)+len(sn.Tracker))
	b = append(b, snapshotMagic...)
	b = binary.LittleEndian.AppendUint16(b, snapshotVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(sn.ID)))
	b = append(b, sn.ID...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec)))
	b = append(b, spec...)
	b = binary.LittleEndian.AppendUint64(b, uint64(sn.Seed))
	b = binary.LittleEndian.AppendUint64(b, sn.RNGDraws)
	b = binary.LittleEndian.AppendUint64(b, uint64(sn.Rounds))
	b = binary.LittleEndian.AppendUint64(b, uint64(sn.Degraded))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sn.Clock))
	var fix byte
	if sn.HasFix {
		fix = 1
	}
	b = append(b, fix)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sn.Tracker)))
	b = append(b, sn.Tracker...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// snapReader walks the wire format with bounds checking; a single error
// flag keeps call sites linear.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("service: snapshot truncated (%d bytes short)", n-len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *snapReader) u16() uint16 { return binary.LittleEndian.Uint16(padTo(r.take(2), 2)) }
func (r *snapReader) u32() uint32 { return binary.LittleEndian.Uint32(padTo(r.take(4), 4)) }
func (r *snapReader) u64() uint64 { return binary.LittleEndian.Uint64(padTo(r.take(8), 8)) }

// padTo lets the fixed-width readers stay branch-free after a short take.
func padTo(b []byte, n int) []byte {
	if len(b) == n {
		return b
	}
	return make([]byte, n)
}

// decodeSnapshot verifies and parses a wire-format snapshot. Every
// failure path is a plain error — the caller decides whether that means
// quarantine (boot) or test failure.
func decodeSnapshot(data []byte) (*sessionSnapshot, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("service: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("service: bad snapshot magic %q", data[:4])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if len(data) < 8 {
		return nil, fmt.Errorf("service: snapshot too short (%d bytes)", len(data))
	}
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("service: snapshot checksum mismatch (%08x != %08x)", got, want)
	}
	r := &snapReader{b: body[4:]}
	if v := r.u16(); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("service: unsupported snapshot version %d", v)
	}
	sn := &sessionSnapshot{}
	sn.ID = string(r.take(int(r.u16())))
	specJSON := r.take(int(r.u32()))
	sn.Seed = int64(r.u64())
	sn.RNGDraws = r.u64()
	sn.Rounds = int(r.u64())
	sn.Degraded = int(r.u64())
	sn.Clock = math.Float64frombits(r.u64())
	fix := r.take(1)
	sn.Tracker = append([]byte(nil), r.take(int(r.u32()))...)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("service: %d trailing bytes after snapshot", len(r.b))
	}
	if err := json.Unmarshal(specJSON, &sn.Spec); err != nil {
		return nil, fmt.Errorf("service: decoding session spec: %w", err)
	}
	sn.HasFix = fix[0]&1 != 0
	return sn, nil
}
