package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"uwpos/internal/faultinject"
)

// snapExt names durable snapshot files; one file per session, named by
// session ID so saves are idempotent overwrites.
const snapExt = ".snap"

// quarantineDir holds snapshots that failed to decode at boot. They are
// moved, not deleted: a corrupt file is evidence (torn write, bit rot,
// version skew) that an operator may want, and moving it guarantees the
// next boot does not trip over it again.
const quarantineDir = "quarantine"

// Store persists session snapshots in a flat state directory with
// crash-safe writes: content goes to a temp file in the same directory,
// is fsynced, then renamed over the final name, so a snapshot file is
// always either the complete old version or the complete new one.
type Store struct {
	dir string
	inj *faultinject.Injector
}

// OpenStore prepares dir (and its quarantine subdirectory) for snapshot
// traffic. The injector may be nil; when set, its write faults surface
// exactly as real disk errors would.
func OpenStore(dir string, inj *faultinject.Injector) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("service: preparing state dir: %w", err)
	}
	return &Store{dir: dir, inj: inj}, nil
}

// Dir returns the store's state directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(id string) string { return filepath.Join(st.dir, id+snapExt) }

// Save durably writes one session's snapshot blob. The temp file carries
// the session ID plus a ".tmp" suffix, so a crash mid-write leaves at
// worst one stale temp file that List ignores and the next Save of the
// same session truncates.
func (st *Store) Save(id string, blob []byte) error {
	if err := st.inj.WriteError("snapshot " + id); err != nil {
		return err
	}
	tmp := st.path(id) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: snapshot write: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, st.path(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: snapshot commit: %w", err)
	}
	return nil
}

// Delete removes a session's snapshot; a session deleted by the client
// or evicted by TTL must not resurrect on the next boot. Missing files
// are fine (the session may never have committed a round).
func (st *Store) Delete(id string) error {
	err := os.Remove(st.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: snapshot delete: %w", err)
	}
	return nil
}

// List returns the session IDs with a committed snapshot on disk, sorted
// for deterministic boot order.
func (st *Store) List() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("service: listing state dir: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, snapExt))
	}
	sort.Strings(ids)
	return ids, nil
}

// Load reads one session's snapshot blob.
func (st *Store) Load(id string) ([]byte, error) {
	b, err := os.ReadFile(st.path(id))
	if err != nil {
		return nil, fmt.Errorf("service: snapshot read: %w", err)
	}
	return b, nil
}

// Quarantine moves a snapshot that failed to decode into the quarantine
// subdirectory, out of the boot path but preserved for inspection.
func (st *Store) Quarantine(id string) error {
	dst := filepath.Join(st.dir, quarantineDir, id+snapExt)
	if err := os.Rename(st.path(id), dst); err != nil {
		return fmt.Errorf("service: quarantining snapshot: %w", err)
	}
	return nil
}
