package sig

import (
	"fmt"
	"math"
	"sync"

	"uwpos/internal/dsp"
)

// Params fixes the preamble numerology. The defaults mirror §2.2.1 of the
// paper: 1920-sample OFDM symbols at 44.1 kHz filled with a Zadoff–Chu
// sequence over the 1–5 kHz band, 540-sample cyclic prefixes, and four
// symbols signed by the PN code [1, 1, −1, 1].
type Params struct {
	SampleRate float64   // fs, Hz
	SymbolLen  int       // OFDM symbol length L, samples
	CPLen      int       // cyclic prefix length, samples
	NumSymbols int       // symbols per preamble
	PN         []float64 // per-symbol signs, len == NumSymbols
	BandLowHz  float64   // lower edge of the occupied band
	BandHighHz float64   // upper edge of the occupied band
	ZCRoot     int       // Zadoff–Chu root u
}

// DefaultParams returns the paper's numerology.
func DefaultParams() Params {
	return Params{
		SampleRate: 44100,
		SymbolLen:  1920,
		CPLen:      540,
		NumSymbols: 4,
		PN:         []float64{1, 1, -1, 1},
		BandLowHz:  1000,
		BandHighHz: 5000,
		ZCRoot:     25,
	}
}

// SNRProbeParams returns the 8-symbol variant the paper's appendix uses
// for per-subcarrier SNR measurement (Fig. 22): more symbols average the
// per-bin channel estimates harder, sharpening the SNR statistic.
func SNRProbeParams() Params {
	p := DefaultParams()
	p.NumSymbols = 8
	p.PN = []float64{1, 1, -1, 1, 1, 1, -1, 1}
	return p
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	switch {
	case p.SampleRate <= 0:
		return fmt.Errorf("sig: sample rate %g must be positive", p.SampleRate)
	case p.SymbolLen <= 0:
		return fmt.Errorf("sig: symbol length %d must be positive", p.SymbolLen)
	case p.CPLen < 0:
		return fmt.Errorf("sig: cyclic prefix %d must be non-negative", p.CPLen)
	case p.NumSymbols <= 0:
		return fmt.Errorf("sig: need at least one symbol")
	case len(p.PN) != p.NumSymbols:
		return fmt.Errorf("sig: PN length %d != symbol count %d", len(p.PN), p.NumSymbols)
	case p.BandLowHz <= 0 || p.BandHighHz <= p.BandLowHz:
		return fmt.Errorf("sig: invalid band [%g, %g]", p.BandLowHz, p.BandHighHz)
	case p.BandHighHz > p.SampleRate/2:
		return fmt.Errorf("sig: band edge %g beyond Nyquist %g", p.BandHighHz, p.SampleRate/2)
	}
	lo, hi := p.BinRange()
	if hi <= lo {
		return fmt.Errorf("sig: empty bin range [%d, %d)", lo, hi)
	}
	return nil
}

// BinRange returns the half-open range [lo, hi) of occupied FFT bins for
// the configured band at the symbol length.
func (p Params) BinRange() (lo, hi int) {
	lo = int(math.Ceil(p.BandLowHz * float64(p.SymbolLen) / p.SampleRate))
	hi = int(math.Floor(p.BandHighHz*float64(p.SymbolLen)/p.SampleRate)) + 1
	if max := p.SymbolLen / 2; hi > max {
		hi = max
	}
	return lo, hi
}

// NumBins returns the number of occupied subcarriers.
func (p Params) NumBins() int {
	lo, hi := p.BinRange()
	return hi - lo
}

// PreambleLen returns the total preamble length in samples.
func (p Params) PreambleLen() int { return p.NumSymbols * (p.SymbolLen + p.CPLen) }

// SymbolSpectrum returns X(k): the length-SymbolLen frequency-domain base
// symbol before PN signing. Occupied positive-frequency bins carry the ZC
// sequence; conjugate symmetry makes the time signal real.
func (p Params) SymbolSpectrum() []complex128 {
	lo, hi := p.BinRange()
	nbins := hi - lo
	// Largest odd length <= nbins keeps the classic ZC form; remaining
	// bins repeat cyclically.
	zcLen := nbins
	if zcLen%2 == 0 {
		zcLen--
	}
	if zcLen < 3 {
		zcLen = 3
	}
	root := p.ZCRoot % zcLen
	if root <= 0 {
		root = 1
	}
	for gcd(root, zcLen) != 1 {
		root++
		if root >= zcLen {
			root = 1
		}
	}
	zc := ZadoffChu(root, zcLen)
	spec := make([]complex128, p.SymbolLen)
	for m := 0; m < nbins; m++ {
		v := zc[m%zcLen]
		spec[lo+m] = v
		spec[p.SymbolLen-(lo+m)] = complexConj(v)
	}
	return spec
}

func complexConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// BaseSymbol returns the real time-domain OFDM symbol (length SymbolLen),
// peak-normalized to 1.
func (p Params) BaseSymbol() []float64 {
	spec := p.SymbolSpectrum()
	plan := dsp.NewPlan(p.SymbolLen)
	plan.Inverse(spec)
	out := make([]float64, p.SymbolLen)
	for i, v := range spec {
		out[i] = real(v)
	}
	dsp.Normalize(out)
	return out
}

// Preamble returns the full transmitted preamble:
// [CP|S·PN₀][CP|S·PN₁]…, peak-normalized to 1.
func (p Params) Preamble() []float64 {
	sym := p.BaseSymbol()
	out := make([]float64, 0, p.PreambleLen())
	for s := 0; s < p.NumSymbols; s++ {
		sign := p.PN[s]
		// Cyclic prefix: last CPLen samples of the signed symbol.
		for _, v := range sym[len(sym)-p.CPLen:] {
			out = append(out, sign*v)
		}
		for _, v := range sym {
			out = append(out, sign*v)
		}
	}
	return out
}

// Key returns a comparable identity for the numerology, suitable as a
// cache key: two Params with equal Key produce identical waveforms.
func (p Params) Key() string {
	return fmt.Sprintf("%g|%d|%d|%d|%v|%g|%g|%d",
		p.SampleRate, p.SymbolLen, p.CPLen, p.NumSymbols, p.PN,
		p.BandLowHz, p.BandHighHz, p.ZCRoot)
}

// Package-level waveform caches. Preambles and base-symbol spectra are
// pure functions of Params, and the receiver pipeline rebuilds its state
// per trial (each trial constructs fresh detectors/estimators), so
// without a cache every trial would re-synthesize the identical
// waveform. Values are stored once and handed out shared.
var (
	preambleCache sync.Map // Params.Key() -> []float64, read-only
	spectrumCache sync.Map // Params.Key() -> []complex128, read-only
	matcherCache  sync.Map // kind + "|" + Params.Key() -> *dsp.Matcher
)

// SharedPreamble returns the preamble waveform for p from a package-level
// cache. The returned slice is shared across callers and MUST be treated
// as read-only; use Preamble for a private copy.
func SharedPreamble(p Params) []float64 {
	k := p.Key()
	if v, ok := preambleCache.Load(k); ok {
		return v.([]float64)
	}
	v, _ := preambleCache.LoadOrStore(k, p.Preamble())
	return v.([]float64)
}

// SharedSymbolSpectrum returns X(k) for p from a package-level cache.
// The returned slice is shared across callers and MUST be treated as
// read-only; use SymbolSpectrum for a private copy.
func SharedSymbolSpectrum(p Params) []complex128 {
	k := p.Key()
	if v, ok := spectrumCache.Load(k); ok {
		return v.([]complex128)
	}
	v, _ := spectrumCache.LoadOrStore(k, p.SymbolSpectrum())
	return v.([]complex128)
}

// SharedMatcher returns a process-wide dsp.Matcher for the waveform that
// build derives from p, cached under kind (e.g. "preamble",
// "calibration") so distinct waveforms of one numerology get distinct
// matchers. All trials and engine workers share the returned matcher;
// dsp.NewMatcher copies the template, so build may return a shared slice.
func SharedMatcher(kind string, p Params, build func(Params) []float64) *dsp.Matcher {
	k := kind + "|" + p.Key()
	if v, ok := matcherCache.Load(k); ok {
		return v.(*dsp.Matcher)
	}
	v, _ := matcherCache.LoadOrStore(k, dsp.NewMatcher(build(p)))
	return v.(*dsp.Matcher)
}

// SymbolAt returns the sample range [start, end) of the s-th OFDM symbol
// body (cyclic prefix excluded) within a preamble that begins at sample 0.
func (p Params) SymbolAt(s int) (start, end int) {
	if s < 0 || s >= p.NumSymbols {
		panic(fmt.Sprintf("sig: symbol index %d out of range", s))
	}
	start = s*(p.SymbolLen+p.CPLen) + p.CPLen
	return start, start + p.SymbolLen
}

// CalibrationSignal returns the short wide-band chirp each device plays
// through its own speaker at startup to measure the speaker→microphone
// buffer offset (paper appendix, Fig. 21). Length n samples.
func (p Params) CalibrationSignal(n int) []float64 {
	if n <= 0 {
		n = 2048
	}
	return LinearChirp(p.BandLowHz, p.BandHighHz, n, p.SampleRate)
}
