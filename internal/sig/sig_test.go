package sig

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"uwpos/internal/dsp"
)

func TestZadoffChuConstantAmplitude(t *testing.T) {
	zc := ZadoffChu(25, 173)
	for i, v := range zc {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("|zc[%d]| = %g, want 1", i, cmplx.Abs(v))
		}
	}
}

func TestZadoffChuZeroAutocorrelation(t *testing.T) {
	// Prime length, coprime root: all nonzero cyclic lags must vanish.
	zc := ZadoffChu(5, 31)
	for lag := 1; lag < 31; lag++ {
		var s complex128
		for k := 0; k < 31; k++ {
			s += zc[k] * cmplx.Conj(zc[(k+lag)%31])
		}
		if cmplx.Abs(s) > 1e-9 {
			t.Fatalf("autocorrelation at lag %d = %g", lag, cmplx.Abs(s))
		}
	}
}

func TestZCQuality(t *testing.T) {
	if q := ZCQuality(25, 173); q < 1e6 {
		t.Errorf("prime-length ZC quality %g, want ~Inf", q)
	}
}

func TestZadoffChuPanics(t *testing.T) {
	for _, c := range []struct{ u, n int }{{0, 5}, {5, 5}, {2, 4}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZadoffChu(%d,%d) should panic", c.u, c.n)
				}
			}()
			ZadoffChu(c.u, c.n)
		}()
	}
}

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PreambleLen() != 4*(1920+540) {
		t.Errorf("preamble length %d, want 9840", p.PreambleLen())
	}
	lo, hi := p.BinRange()
	// 1 kHz at 1920/44100: bin 44; 5 kHz: bin 217.
	if lo != 44 || hi != 218 {
		t.Errorf("bin range [%d,%d), want [44,218)", lo, hi)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{},
		{SampleRate: 44100, SymbolLen: 0},
		{SampleRate: 44100, SymbolLen: 64, CPLen: -1},
		{SampleRate: 44100, SymbolLen: 64, NumSymbols: 0},
		{SampleRate: 44100, SymbolLen: 64, NumSymbols: 2, PN: []float64{1}},
		{SampleRate: 44100, SymbolLen: 64, NumSymbols: 1, PN: []float64{1}, BandLowHz: 5000, BandHighHz: 1000},
		{SampleRate: 44100, SymbolLen: 64, NumSymbols: 1, PN: []float64{1}, BandLowHz: 1000, BandHighHz: 44100},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBaseSymbolIsRealAndBandLimited(t *testing.T) {
	p := DefaultParams()
	sym := p.BaseSymbol()
	if len(sym) != p.SymbolLen {
		t.Fatalf("symbol length %d", len(sym))
	}
	// Spectrum must be confined to the occupied band.
	spec := dsp.FFTReal(sym)
	lo, hi := p.BinRange()
	var inBand, outBand float64
	for k := 1; k < p.SymbolLen/2; k++ {
		e := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		if k >= lo && k < hi {
			inBand += e
		} else {
			outBand += e
		}
	}
	if outBand > 1e-9*inBand {
		t.Errorf("out-of-band energy ratio %g", outBand/inBand)
	}
}

func TestPreambleStructure(t *testing.T) {
	p := DefaultParams()
	pre := p.Preamble()
	if len(pre) != p.PreambleLen() {
		t.Fatalf("preamble length %d, want %d", len(pre), p.PreambleLen())
	}
	sym := p.BaseSymbol()
	// Each symbol body must equal the base symbol times its PN sign.
	for s := 0; s < p.NumSymbols; s++ {
		start, end := p.SymbolAt(s)
		seg := pre[start:end]
		for i := range seg {
			if math.Abs(seg[i]-p.PN[s]*sym[i]) > 1e-12 {
				t.Fatalf("symbol %d sample %d mismatch", s, i)
			}
		}
		// Cyclic prefix must copy the symbol tail.
		cpStart := start - p.CPLen
		for i := 0; i < p.CPLen; i++ {
			if math.Abs(pre[cpStart+i]-p.PN[s]*sym[p.SymbolLen-p.CPLen+i]) > 1e-12 {
				t.Fatalf("CP of symbol %d sample %d mismatch", s, i)
			}
		}
	}
}

func TestSymbolAtPanics(t *testing.T) {
	p := DefaultParams()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.SymbolAt(4)
}

func TestPreambleAutocorrelationSignPattern(t *testing.T) {
	// The PN signs [1,1,-1,1] mean symbol 0 correlates positively with
	// symbol 1, negatively with symbol 2.
	p := DefaultParams()
	pre := p.Preamble()
	s0, e0 := p.SymbolAt(0)
	s1, e1 := p.SymbolAt(1)
	s2, e2 := p.SymbolAt(2)
	c01 := dsp.SegmentCorrelation(pre[s0:e0], pre[s1:e1])
	c02 := dsp.SegmentCorrelation(pre[s0:e0], pre[s2:e2])
	if c01 < 0.99 {
		t.Errorf("corr(S0,S1) = %g, want ~1", c01)
	}
	if c02 > -0.99 {
		t.Errorf("corr(S0,S2) = %g, want ~-1", c02)
	}
}

func TestLinearChirpFrequencyProgression(t *testing.T) {
	const fs = 44100.0
	n := 8192
	ch := LinearChirp(1000, 5000, n, fs)
	if len(ch) != n {
		t.Fatal("length")
	}
	// Instantaneous frequency early vs late via zero-crossing counting.
	early := zeroCrossRate(ch[500:1500], fs)
	late := zeroCrossRate(ch[n-1500:n-500], fs)
	if late < early*1.5 {
		t.Errorf("chirp frequency did not increase: early %g Hz late %g Hz", early, late)
	}
	if LinearChirp(1, 2, 0, fs) != nil {
		t.Error("zero-length chirp should be nil")
	}
}

func zeroCrossRate(x []float64, fs float64) float64 {
	var crossings int
	for i := 1; i < len(x); i++ {
		if (x[i-1] < 0) != (x[i] < 0) {
			crossings++
		}
	}
	return float64(crossings) * fs / (2 * float64(len(x)))
}

func TestToneFrequency(t *testing.T) {
	const fs = 44100.0
	x := Tone(3000, 4410, fs, 1)
	got := zeroCrossRate(x, fs)
	if math.Abs(got-3000) > 50 {
		t.Errorf("tone frequency %g, want 3000", got)
	}
}

func TestMFSKRoundTrip(t *testing.T) {
	const fs = 44100.0
	for _, groupSize := range []int{3, 5, 8} {
		m := NewMFSK(groupSize, fs)
		for id := 0; id < groupSize; id++ {
			x := m.EncodeID(id, 2205)
			got, conf := m.DecodeID(x)
			if got != id {
				t.Errorf("group %d: decoded %d, want %d", groupSize, got, id)
			}
			if conf < 2 {
				t.Errorf("group %d id %d: low confidence %g", groupSize, id, conf)
			}
		}
	}
}

func TestMFSKRoundTripNoisy(t *testing.T) {
	const fs = 44100.0
	r := rand.New(rand.NewSource(42))
	m := NewMFSK(6, fs)
	errors := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		id := trial % 6
		x := m.EncodeID(id, 2205)
		for i := range x {
			x[i] += 0.7 * r.NormFloat64() // ~ -3 dB SNR
		}
		if got, _ := m.DecodeID(x); got != id {
			errors++
		}
	}
	if errors > trials/10 {
		t.Errorf("%d/%d MFSK errors at -3 dB", errors, trials)
	}
}

func TestMFSKPanicsOutOfRange(t *testing.T) {
	m := NewMFSK(4, 44100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.EncodeID(4, 100)
}

func TestMFSKSubBandsAreOrdered(t *testing.T) {
	f := func(gs uint8) bool {
		g := int(gs%12) + 2
		m := NewMFSK(g, 44100)
		prev := 0.0
		for i := 0; i < g; i++ {
			f := m.SubBand(i)
			if f <= prev || f <= m.BandLowHz || f >= m.BandHighHz {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoertzelMatchesDFTBin(t *testing.T) {
	const fs = 8000.0
	n := 800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*1000*float64(i)/fs) + 0.5*math.Sin(2*math.Pi*2500*float64(i)/fs)
	}
	e1000 := Goertzel(x, 1000, fs)
	e2500 := Goertzel(x, 2500, fs)
	e3300 := Goertzel(x, 3300, fs)
	if e1000 < 3*e2500 {
		t.Errorf("1000 Hz energy %g should dominate 2500 Hz %g by ~4x", e1000, e2500)
	}
	if e3300 > e2500/10 {
		t.Errorf("empty bin energy %g vs %g", e3300, e2500)
	}
	if Goertzel(nil, 100, fs) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestCalibrationSignal(t *testing.T) {
	p := DefaultParams()
	c := p.CalibrationSignal(0)
	if len(c) != 2048 {
		t.Errorf("default calibration length %d", len(c))
	}
	c = p.CalibrationSignal(512)
	if len(c) != 512 {
		t.Errorf("calibration length %d", len(c))
	}
}

func TestBandLimitRemovesOutOfBand(t *testing.T) {
	const fs = 44100.0
	n := 8192
	x := make([]float64, n)
	for i := range x {
		// In-band 3 kHz plus out-of-band 10 kHz.
		x[i] = math.Sin(2*math.Pi*3000*float64(i)/fs) + math.Sin(2*math.Pi*10000*float64(i)/fs)
	}
	y := BandLimit(x, 1000, 5000, fs)
	if len(y) != n {
		t.Fatal("length changed")
	}
	e3k := Goertzel(y[1000:5000], 3000, fs)
	e10k := Goertzel(y[1000:5000], 10000, fs)
	if e10k > e3k/100 {
		t.Errorf("10 kHz not attenuated: %g vs %g", e10k, e3k)
	}
}

func TestFMCWSweepSameAsChirp(t *testing.T) {
	a := FMCWSweep(1000, 5000, 1024, 44100)
	b := LinearChirp(1000, 5000, 1024, 44100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FMCW sweep should be the linear chirp")
		}
	}
}

func BenchmarkPreamble(b *testing.B) {
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Preamble()
	}
}

func TestSNRProbeParams(t *testing.T) {
	p := SNRProbeParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumSymbols != 8 || len(p.PN) != 8 {
		t.Errorf("probe has %d symbols / %d PN entries", p.NumSymbols, len(p.PN))
	}
	if p.PreambleLen() != 8*(1920+540) {
		t.Errorf("probe length %d", p.PreambleLen())
	}
	// Symbol numerology is unchanged from the ranging preamble.
	d := DefaultParams()
	if p.SymbolLen != d.SymbolLen || p.CPLen != d.CPLen {
		t.Error("probe must reuse the symbol numerology")
	}
}
