package sig

import (
	"math"

	"uwpos/internal/dsp"
)

// LinearChirp returns an n-sample linear frequency sweep from f0 to f1 Hz
// at sample rate fs, amplitude 1, with a short Hann taper at both ends to
// limit spectral splatter.
func LinearChirp(f0, f1 float64, n int, fs float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	k := (f1 - f0) / (float64(n) / fs) // sweep rate Hz/s
	for i := 0; i < n; i++ {
		t := float64(i) / fs
		phase := 2 * math.Pi * (f0*t + 0.5*k*t*t)
		out[i] = math.Sin(phase)
	}
	applyEdgeTaper(out, n/16)
	return out
}

// FMCWSweep returns a full FMCW up-sweep identical in band and duration to
// the ranging preamble, used by the CAT baseline (Mao et al.): the receiver
// mixes the received signal with this transmitted copy and reads distance
// off the beat frequency.
func FMCWSweep(f0, f1 float64, n int, fs float64) []float64 {
	return LinearChirp(f0, f1, n, fs)
}

// Tone returns an n-sample sine at freq Hz with the given amplitude.
func Tone(freq float64, n int, fs, amplitude float64) []float64 {
	out := make([]float64, n)
	w := 2 * math.Pi * freq / fs
	for i := range out {
		out[i] = amplitude * math.Sin(w*float64(i))
	}
	return out
}

func applyEdgeTaper(x []float64, ramp int) {
	if ramp <= 0 || 2*ramp > len(x) {
		return
	}
	for i := 0; i < ramp; i++ {
		g := 0.5 - 0.5*math.Cos(math.Pi*float64(i)/float64(ramp))
		x[i] *= g
		x[len(x)-1-i] *= g
	}
}

// MFSK encodes small integers (device IDs) as single-band energy in a
// band-divided MFSK constellation, as in §2.3 of the paper: the 1–5 kHz
// band is split into groupSize bins and ID i lights up the i-th bin.
type MFSK struct {
	BandLowHz  float64
	BandHighHz float64
	GroupSize  int // number of IDs == number of sub-bands
	SampleRate float64
}

// NewMFSK returns an MFSK codec over the standard band for a dive group of
// the given size.
func NewMFSK(groupSize int, fs float64) MFSK {
	return MFSK{BandLowHz: 1000, BandHighHz: 5000, GroupSize: groupSize, SampleRate: fs}
}

// SubBand returns the center frequency of the i-th ID sub-band.
func (m MFSK) SubBand(id int) float64 {
	width := (m.BandHighHz - m.BandLowHz) / float64(m.GroupSize)
	return m.BandLowHz + (float64(id)+0.5)*width
}

// EncodeID returns an n-sample tone burst announcing the given device ID.
// IDs outside [0, GroupSize) panic.
func (m MFSK) EncodeID(id, n int) []float64 {
	if id < 0 || id >= m.GroupSize {
		panic("sig: MFSK id out of range")
	}
	out := Tone(m.SubBand(id), n, m.SampleRate, 1)
	applyEdgeTaper(out, n/16)
	return out
}

// DecodeID runs the maximum-likelihood detector: the Goertzel energy at
// each sub-band center; returns the arg-max ID and the ratio between the
// best and second-best energies (a confidence measure; 1.0 = ambiguous).
func (m MFSK) DecodeID(x []float64) (id int, confidence float64) {
	best, second := -1.0, -1.0
	bestID := 0
	for i := 0; i < m.GroupSize; i++ {
		e := Goertzel(x, m.SubBand(i), m.SampleRate)
		if e > best {
			second = best
			best, bestID = e, i
		} else if e > second {
			second = e
		}
	}
	if second <= 0 {
		return bestID, math.Inf(1)
	}
	return bestID, best / second
}

// Goertzel returns the energy of x at frequency f (Hz) using the Goertzel
// single-bin DFT, the standard tool for FSK demodulation.
func Goertzel(x []float64, f, fs float64) float64 {
	if len(x) == 0 {
		return 0
	}
	w := 2 * math.Pi * f / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Power of the resonator state.
	return s1*s1 + s2*s2 - coeff*s1*s2
}

// bandLimitTaps is the FIR length BandLimit uses; odd, so the linear-
// phase group delay (taps-1)/2 is a whole number of samples.
const bandLimitTaps = 255

// BandLimitFIR returns the linear-phase FIR taps BandLimit applies for
// the given band. Exported so the streaming detector can run the
// identical filter incrementally: same taps + same direct-form arithmetic
// makes chunked prefiltering bit-identical to the one-shot BandLimit.
func BandLimitFIR(lowHz, highHz, fs float64) []float64 {
	return dsp.FIRBandpass(bandLimitTaps, lowHz, highHz, fs)
}

// BandLimit filters x to the [lowHz, highHz] band with a linear-phase FIR
// and compensates the group delay, returning a slice of len(x). Used to
// model the limited underwater frequency response of phone speakers.
func BandLimit(x []float64, lowHz, highHz, fs float64) []float64 {
	h := BandLimitFIR(lowHz, highHz, fs)
	y := dsp.Filter(h, x)
	// Compensate the (taps-1)/2 group delay.
	d := (bandLimitTaps - 1) / 2
	out := make([]float64, len(x))
	copy(out, y[min(d, len(y)):])
	return out
}
