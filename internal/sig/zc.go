// Package sig constructs the acoustic waveforms the system transmits: the
// ZC-modulated OFDM ranging preamble (§2.2.1 of the paper), MFSK device-ID
// symbols, FSK payload tones, the self-calibration signal, and the chirp /
// FMCW waveforms used by the BeepBeep and CAT ranging baselines.
package sig

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ZadoffChu returns the length-n Zadoff–Chu sequence with root u:
//
//	zc[k] = exp(-i·π·u·k·(k+1)/n)
//
// n should be odd (classically prime) and gcd(u, n) = 1 for the constant
// amplitude zero autocorrelation property. Panics on invalid parameters.
func ZadoffChu(u, n int) []complex128 {
	if n <= 0 {
		panic("sig: ZadoffChu length must be positive")
	}
	if u <= 0 || u >= n {
		panic(fmt.Sprintf("sig: ZadoffChu root %d out of range (0,%d)", u, n))
	}
	if gcd(u, n) != 1 {
		panic(fmt.Sprintf("sig: ZadoffChu root %d not coprime with %d", u, n))
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		// Compute u·k·(k+1) mod 2n to keep the phase argument bounded.
		m := (int64(u) * int64(k) % int64(2*n)) * int64(k+1) % int64(2*n)
		out[k] = cmplx.Rect(1, -math.Pi*float64(m)/float64(n))
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// zcAutocorrPeakToSide returns the ratio between the zero-lag peak and the
// largest side lobe of the cyclic autocorrelation; exported for tests and
// diagnostics via ZCQuality.
func zcAutocorrPeakToSide(zc []complex128) float64 {
	n := len(zc)
	peak := 0.0
	side := 0.0
	for lag := 0; lag < n; lag++ {
		var s complex128
		for k := 0; k < n; k++ {
			s += zc[k] * cmplx.Conj(zc[(k+lag)%n])
		}
		a := cmplx.Abs(s)
		if lag == 0 {
			peak = a
		} else if a > side {
			side = a
		}
	}
	if side == 0 {
		return math.Inf(1)
	}
	return peak / side
}

// ZCQuality reports the peak-to-max-sidelobe ratio of the cyclic
// autocorrelation of the given ZC sequence (ideal sequences are ~Inf;
// anything above ~10 is excellent for synchronization).
func ZCQuality(u, n int) float64 { return zcAutocorrPeakToSide(ZadoffChu(u, n)) }
