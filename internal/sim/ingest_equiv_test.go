package sim

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/engine"
	"uwpos/internal/geom"
)

// This file is the shared-scan equivalence harness: the full RoundResult
// (timestamp table, distances, weights, depths, mic signs, latency) and
// the RangeOnce outcomes for every method are serialized at full float64
// precision and compared byte-for-byte against golden captures recorded
// with the pre-refactor independent-scan code, and across ingest chunk
// sizes. Any numerical drift in the ingest pipeline — a different block
// grid, a reordered reduction, a lost sample — fails these tests before
// it can reach an experiment table.

// dumpF prints a float64 with full round-trip precision, so two dumps are
// byte-equal iff every value is bit-equal (NaN prints as NaN).
func dumpF(v float64) string { return fmt.Sprintf("%.17g", v) }

func dumpMatrix(name string, m [][]float64, b *strings.Builder) {
	fmt.Fprintf(b, "%s:\n", name)
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(dumpF(v))
		}
		b.WriteByte('\n')
	}
}

func dumpVec(name string, v []float64, b *strings.Builder) {
	fmt.Fprintf(b, "%s:", name)
	for _, x := range v {
		b.WriteByte(' ')
		b.WriteString(dumpF(x))
	}
	b.WriteByte('\n')
}

// dumpRound serializes every field of a RoundResult deterministically.
func dumpRound(res *RoundResult) string {
	var b strings.Builder
	dumpMatrix("table", res.Table.T, &b)
	dumpMatrix("D", res.D, &b)
	dumpMatrix("W", res.W, &b)
	dumpMatrix("trueD", res.TrueD, &b)
	dumpVec("depths", res.Depths, &b)
	dumpVec("trueDepths", res.TrueDepths, &b)
	fmt.Fprintf(&b, "micSigns: %v\n", res.MicSigns)
	fmt.Fprintf(&b, "latency: %s\n", dumpF(res.Latency))
	fmt.Fprintf(&b, "silent: %v\n", res.Silent)
	return b.String()
}

func threeDeviceDock(seed int64) Config {
	s9 := device.GalaxyS9
	specs := []DeviceSpec{
		{Model: s9(), Pos: geom.Vec3{X: 0, Y: 0, Z: 2.0}},
		{Model: s9(), Pos: geom.Vec3{X: 6, Y: 1.5, Z: 2.5}},
		{Model: s9(), Pos: geom.Vec3{X: 13, Y: -5, Z: 1.5}},
	}
	o, _ := LeaderOrientation(specs[0].Pos, specs[1].Pos, 0)
	specs[0].Orient = o
	return Config{Env: channel.Dock(), Devices: specs, Seed: seed}
}

// captureRound runs one full protocol round and serializes the result.
// chunk overrides the ingest buffer size (0 = default).
func captureRound(t *testing.T, seed int64, chunk int) string {
	t.Helper()
	cfg := threeDeviceDock(seed)
	cfg.IngestChunk = chunk
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return dumpRound(res)
}

// captureRanging runs one RangeOnce exchange per method and serializes
// the outcomes.
func captureRanging(t *testing.T, seed int64) string {
	t.Helper()
	var b strings.Builder
	for _, m := range []RangingMethod{MethodDualMic, MethodBottomMicOnly, MethodTopMicOnly, MethodBeepBeep, MethodCAT} {
		nw, err := NewNetwork(TwoDeviceConfig(channel.Dock(), 10, 2.5, 2.5, seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.RangeOnce(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s: detected=%v est=%s true=%s\n",
			m, res.Detected, dumpF(res.EstimatedM), dumpF(res.TrueM))
	}
	return b.String()
}

func goldenPath(kind string, seed int64) string {
	return filepath.Join("testdata", fmt.Sprintf("%s_seed%d.golden", kind, seed))
}

// readGolden loads a pre-refactor capture.
func readGolden(t *testing.T, kind string, seed int64) string {
	t.Helper()
	want, err := os.ReadFile(goldenPath(kind, seed))
	if err != nil {
		t.Fatalf("missing golden (regenerate with UWPOS_WRITE_GOLDEN=1): %v", err)
	}
	return string(want)
}

// TestChunkSizeInvariance: the full RoundResult is byte-identical for
// every ingest buffer size — callback-grain buffers, huge buffers, or the
// entire stream in one push — and equal to the pre-refactor independent-
// scan capture. This is the partition-exactness of the shared scan
// observed end to end through calibration, detection and report-back.
func TestChunkSizeInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic rounds are expensive")
	}
	for _, seed := range []int64{1, 7} {
		want := readGolden(t, "round", seed)
		for _, chunk := range []int{1024, 16384, 1 << 30} {
			if got := captureRound(t, seed, chunk); got != want {
				t.Errorf("seed %d chunk %d: round result differs from golden", seed, chunk)
			}
		}
	}
}

// TestWorkerCountInvariance: rounds dispatched through the parallel trial
// engine serialize identically at 1 and 8 workers — the ingest pipelines
// share nothing across trials.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic rounds are expensive")
	}
	const trials = 2
	run := func(workers int) []string {
		return engine.Map(engine.Config{Workers: workers}, trials, func(trial int, rng *rand.Rand) string {
			cfg := threeDeviceDock(0)
			cfg.Rng = rng
			nw, err := NewNetwork(cfg)
			if err != nil {
				t.Error(err)
				return ""
			}
			res, err := nw.RunRound(context.Background())
			if err != nil {
				t.Error(err)
				return ""
			}
			return dumpRound(res)
		})
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] == "" || serial[i] != parallel[i] {
			t.Errorf("trial %d: result differs between 1 and 8 workers", i)
		}
	}
}

// TestGoldenCaptures compares the current audio path against the checked
// in pre-refactor captures. Regenerate (only after verifying the change
// is intentional) with UWPOS_WRITE_GOLDEN=1.
func TestGoldenCaptures(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic rounds are expensive")
	}
	write := os.Getenv("UWPOS_WRITE_GOLDEN") != ""
	for _, seed := range []int64{1, 7} {
		for kind, capture := range map[string]func(*testing.T, int64) string{
			"round":   func(t *testing.T, seed int64) string { return captureRound(t, seed, 0) },
			"ranging": captureRanging,
		} {
			got := capture(t, seed)
			path := goldenPath(kind, seed)
			if write {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (regenerate with UWPOS_WRITE_GOLDEN=1): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("%s seed %d: output differs from pre-refactor capture", kind, seed)
			}
		}
	}
}
