package sim

import (
	"context"
	"math"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/geom"
)

func TestPairKeyNormalizes(t *testing.T) {
	if pairKey(3, 1) != pairKey(1, 3) {
		t.Error("pair key must be order-free")
	}
	if pairKey(0, 2) == pairKey(0, 1) {
		t.Error("distinct pairs must differ")
	}
}

func TestMicOffsetSamples(t *testing.T) {
	// 16 cm at 44.1 kHz with the conservative 1400 m/s: ceil(5.04)+1 = 7.
	if got := micOffsetSamples(0.16, 44100); got != 7 {
		t.Errorf("micOffsetSamples = %d, want 7", got)
	}
	// Watch-scale separation is much tighter.
	if got := micOffsetSamples(0.037, 44100); got > 3 {
		t.Errorf("watch offset %d too large", got)
	}
}

func TestFinishDepths(t *testing.T) {
	d := []float64{2.0, math.NaN(), 3.0, math.NaN()}
	finishDepths(d)
	// Median of {2,3} (upper) = 3.
	if d[1] != 3 || d[3] != 3 {
		t.Errorf("median fallback wrong: %v", d)
	}
	if d[0] != 2 || d[2] != 3 {
		t.Error("known depths must be preserved")
	}
	// All unknown: zeros.
	all := []float64{math.NaN(), math.NaN()}
	finishDepths(all)
	if all[0] != 0 || all[1] != 0 {
		t.Errorf("all-unknown fallback: %v", all)
	}
}

func TestStreamDurationCoversProtocolAndReports(t *testing.T) {
	cfg := fiveDeviceDock(1)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := nw.streamDuration()
	// Must cover query + worst-case slots + report phase.
	min := queryAt + nw.proto.RoundTime(false) + nw.reportDuration(nw.N())
	if dur < min {
		t.Errorf("duration %.2f below minimum %.2f", dur, min)
	}
	// Lossless mode is shorter.
	cfg2 := fiveDeviceDock(1)
	cfg2.DisableReportBack = true
	nw2, _ := NewNetwork(cfg2)
	if nw2.streamDuration() >= dur {
		t.Error("lossless streams should be shorter")
	}
}

func TestSoundSpeedAssumedBias(t *testing.T) {
	cfg := TwoDeviceConfig(channel.Dock(), 10, 2, 2, 1)
	nw, _ := NewNetwork(cfg)
	base := nw.SoundSpeedAssumed()
	cfg.SoundSpeedBias = 15
	nw2, _ := NewNetwork(cfg)
	if got := nw2.SoundSpeedAssumed(); math.Abs(got-base-15) > 1e-9 {
		t.Errorf("bias not applied: %g vs %g", got, base)
	}
}

func TestMessageWaveLayout(t *testing.T) {
	cfg := fiveDeviceDock(1)
	nw, _ := NewNetwork(cfg)
	w := nw.messageWave(2, 0)
	wantLen := nw.params.PreambleLen() + nw.idLen
	if len(w) != wantLen {
		t.Errorf("message length %d, want %d", len(w), wantLen)
	}
	// T_packet check: ≈278 ms at 44.1 kHz.
	if dur := float64(len(w)) / nw.params.SampleRate; math.Abs(dur-0.278) > 0.002 {
		t.Errorf("packet duration %.3f s, want ≈0.278", dur)
	}
}

func TestLinkGainComposition(t *testing.T) {
	cfg := TwoDeviceConfig(channel.Dock(), 10, 2, 2, 1)
	nw, _ := NewNetwork(cfg)
	if err := nw.setupDevices(1); err != nil {
		t.Fatal(err)
	}
	a, b := nw.devices[0], nw.devices[1]
	posA := geom.Vec3{X: 0, Y: 0, Z: 2}
	posB := geom.Vec3{X: 10, Y: 0, Z: 2}
	g := nw.linkGain(a, b, 0, posA, posB)
	if g <= 0 {
		t.Fatalf("gain %g", g)
	}
	// A weaker TX model scales the gain down proportionally.
	watch := device.WatchUltra()
	a.spec.Model = watch
	g2 := nw.linkGain(a, b, 0, posA, posB)
	if math.Abs(g2/g-watch.TXEfficiency/device.GalaxyS9().TXEfficiency) > 1e-9 {
		t.Errorf("TX efficiency not applied: ratio %g", g2/g)
	}
}

func TestOcclusionCreatesDistanceOutlier(t *testing.T) {
	if testing.Short() {
		t.Skip("acoustic exchange")
	}
	// With the shallow-occlusion model, the earliest audible path is a
	// bottom bounce: the measured distance must overshoot by metres,
	// not merely lose SNR (Fig. 19a's premise).
	env := channel.Dock()
	cfg := TwoDeviceConfig(env, 6.2, 1.5, 1.5, 5)
	cfg.Faults = []LinkFault{{A: 0, B: 1, DirectAtt: 0.02}}
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RangeOnce(context.Background(), MethodDualMic)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Skip("occluded exchange undetected at this seed")
	}
	if res.EstimatedM < res.TrueM+2 {
		t.Errorf("occlusion should inflate distance: est %.2f vs true %.2f",
			res.EstimatedM, res.TrueM)
	}
}
