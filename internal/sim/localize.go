package sim

import (
	"context"
	"math"

	"uwpos/internal/core"
	"uwpos/internal/device"
	"uwpos/internal/geom"
)

// LeaderOrientation returns the orientation the leader device adopts when
// pointing at device 1: the phone is held with its microphone axis
// perpendicular to the pointing direction (landscape, facing the diver),
// so the two microphones straddle the pointing line as left/right ears —
// the geometry §2.1.4's flipping vote relies on.
//
// pointErrRad adds aiming error (ε_θ, from the Fig. 16 study).
func LeaderOrientation(leaderPos, pointedPos geom.Vec3, pointErrRad float64) (device.Orientation, float64) {
	bearing := pointedPos.Sub(leaderPos).XY().Angle() + pointErrRad
	return device.Orientation{AzimuthRad: bearing - math.Pi/2}, bearing
}

// LocalizeResult pairs the core output with per-device errors.
type LocalizeResult struct {
	Core *core.Result
	// Err2D[i] is the horizontal-plane error vs ground truth (leader-
	// relative frame); the leader's own entry is 0.
	Err2D []float64
	// Err3D[i] includes the depth component.
	Err3D []float64
}

// LocalizeRound feeds a protocol round into the topology pipeline and
// scores it against ground truth. bearing is the leader's pointing bearing
// in the world frame (from LeaderOrientation); cfg zero-value uses the
// paper defaults. ctx bounds the topology solve's outlier search.
func (nw *Network) LocalizeRound(ctx context.Context, res *RoundResult, bearing float64, cfg core.Config) (*LocalizeResult, error) {
	if cfg.StressAccept == 0 {
		cfg = core.DefaultConfig()
	}
	in := core.Input{
		D:               res.D,
		W:               res.W,
		Depths:          res.Depths,
		MicSigns:        res.MicSigns,
		PointingBearing: bearing,
	}
	cr, err := core.Localize(ctx, in, cfg)
	if err != nil {
		return nil, err
	}
	truth := nw.TruePositions(queryAt)
	out := &LocalizeResult{
		Core:  cr,
		Err2D: make([]float64, nw.N()),
		Err3D: make([]float64, nw.N()),
	}
	for i := range truth {
		wantXY := truth[i].Sub(truth[0]).XY()
		out.Err2D[i] = cr.Planar[i].Dist(wantXY)
		want3 := geom.Vec3{X: wantXY.X, Y: wantXY.Y, Z: truth[i].Z}
		got3 := cr.Positions[i]
		out.Err3D[i] = got3.Sub(want3).Norm()
	}
	return out, nil
}
