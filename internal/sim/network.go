// Package sim is the end-to-end testbed: it places simulated smart devices
// in an underwater environment and runs the complete system — calibration,
// the distributed timestamp protocol, waveform rendering through the
// multipath channel into per-microphone sample streams with independent
// skewed clocks, the full receiver pipeline, the FSK report-back, and
// finally topology localization — exactly the loop the paper deploys at
// the dock and boathouse (Fig. 17).
//
// Nothing in the receive path is oracle-fed: timestamps come out of
// cross-correlation, channel estimation and the dual-mic search over
// rendered audio.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"uwpos/internal/audio"
	"uwpos/internal/channel"
	"uwpos/internal/depth"
	"uwpos/internal/device"
	"uwpos/internal/dsp"
	"uwpos/internal/geom"
	"uwpos/internal/ingest"
	"uwpos/internal/protocol"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
)

// Trajectory gives a device's position over time. Nil means static.
type Trajectory func(t float64) geom.Vec3

// Linear returns a constant-velocity trajectory from start.
func Linear(start, vel geom.Vec3) Trajectory {
	return func(t float64) geom.Vec3 { return start.Add(vel.Scale(t)) }
}

// Oscillate returns a back-and-forth trajectory around start along dir
// with the given amplitude (m) and speed (m/s) — how the paper moved a
// device "forward and backward around its original position" (§3.2).
func Oscillate(start geom.Vec3, dir geom.Vec3, amplitude, speed float64) Trajectory {
	u := dir.Normalize()
	if amplitude <= 0 || speed <= 0 {
		return func(float64) geom.Vec3 { return start }
	}
	period := 4 * amplitude / speed
	return func(t float64) geom.Vec3 {
		phase := math.Mod(t, period) / period // 0..1
		var off float64
		switch {
		case phase < 0.25:
			off = speed * phase * period
		case phase < 0.75:
			off = amplitude - speed*(phase-0.25)*period
		default:
			off = -amplitude + speed*(phase-0.75)*period
		}
		return start.Add(u.Scale(off))
	}
}

// DeviceSpec configures one simulated device.
type DeviceSpec struct {
	Model      *device.Model
	Pos        geom.Vec3
	Traj       Trajectory // optional mobility
	Orient     device.Orientation
	WatchGauge bool // use the dive-gauge depth sensor instead of the barometer
}

// LinkFault describes a degraded pair: occlusion attenuates the direct ray
// (outlier-producing) while Drop removes the link entirely.
type LinkFault struct {
	A, B      int
	DirectAtt float64 // linear gain on the direct ray (e.g. 0.03); 0 means unset
	Drop      bool    // no energy passes at all
}

// Config assembles a network scenario.
type Config struct {
	Env     *channel.Environment
	Devices []DeviceSpec
	// TxAmplitude is the source amplitude at 1 m for a TXEfficiency-1
	// device (speaker at max volume).
	TxAmplitude float64
	// Faults lists degraded links.
	Faults []LinkFault
	// Seed drives all randomness in the scenario.
	Seed int64
	// Rng, when non-nil, overrides Seed as the scenario's randomness
	// source. The parallel trial engine threads a per-trial RNG through
	// here (see internal/engine's seeding contract); a Network never
	// touches any other random state, so trials sharing nothing but
	// read-only config can run concurrently.
	Rng *rand.Rand
	// SoundSpeedBias (m/s) offsets the receiver's assumed sound speed
	// from the true one (temperature misconfiguration studies).
	SoundSpeedBias float64
	// DisableReportBack short-circuits the FSK report phase and hands the
	// leader the remote timestamp tables losslessly. The default (false)
	// runs the full §2.4 communication system.
	DisableReportBack bool
	// MaxReflections bounds the image-method order (default 3).
	MaxReflections int
	// IngestChunk is the audio-buffer size (samples) every receiver-side
	// ingest pipeline of a round is fed with; 0 means the default OpenSL
	// ES-like grain (4096, ~93 ms at 44.1 kHz). Round results are
	// invariant to this value — ingest correlation runs on a fixed
	// absolute block grid — so it only shapes buffer cadence and memory
	// traffic.
	IngestChunk int
	// IngestMeter, when non-nil, aggregates per-buffer deadline headroom
	// (real-time factors) across every ingest pipeline of the scenario's
	// rounds. Metering reads the monotonic clock per buffer and the meter
	// is not safe for concurrent use, so it is meant for single-worker
	// profiling runs; leave nil otherwise.
	IngestMeter *ingest.Meter
}

// Network is an instantiated scenario.
type Network struct {
	cfg    Config
	env    *channel.Environment
	params sig.Params
	proto  protocol.Params
	rng    *rand.Rand
	// count wraps the Seed-built random source to make the stream
	// position observable for checkpointing (see snapshot.go); nil when
	// the caller supplied Config.Rng.
	count   *countingSource
	devices []*simDevice
	idLen   int       // samples of the MFSK ID section
	pre     []float64 // cached preamble waveform (shared, read-only)
	faults  map[[2]int]LinkFault
	// sensorDepths holds device-side depth readings for the round (what
	// each device would report; the leader only sees them via comms).
	sensorDepths []float64
}

type simDevice struct {
	id     int
	spec   DeviceSpec
	stack  *audio.Stack
	ranger *ranging.Ranger
	sensor *depth.Sensor
	// txIndex is the speaker index of this round's protocol transmission
	// (−1 before scheduling).
	txIndex int
	// syncSource records what the device synchronized to.
	sync protocol.SyncSource
	// heard collects refined arrivals (and announced sync sources) per
	// sender id.
	heard map[int]heardMsg
}

// NewNetwork validates and instantiates a scenario.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("sim: nil environment")
	}
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Devices)
	if n < 2 {
		return nil, fmt.Errorf("sim: need at least 2 devices, got %d", n)
	}
	if cfg.TxAmplitude == 0 {
		// Calibrated so phone speakers at max volume are comfortably
		// detectable at dive-group ranges but genuinely marginal at the
		// 35–45 m edge of Fig. 11 — matching the paper's SNR regime
		// (Fig. 22: ~30 dB at 10 m, ~10-20 dB at 28 m in-band).
		cfg.TxAmplitude = 0.8
	}
	if cfg.MaxReflections == 0 {
		cfg.MaxReflections = 3
	}
	for i, d := range cfg.Devices {
		if d.Model == nil {
			return nil, fmt.Errorf("sim: device %d has no model", i)
		}
		if err := d.Model.Validate(); err != nil {
			return nil, err
		}
		if d.Pos.Z < 0 || d.Pos.Z > cfg.Env.BottomDepthM {
			return nil, fmt.Errorf("sim: device %d depth %.2f outside water column [0, %.2f]", i, d.Pos.Z, cfg.Env.BottomDepthM)
		}
	}
	params := sig.DefaultParams()
	proto := protocol.DefaultParams(n)
	rng := cfg.Rng
	var count *countingSource
	if rng == nil {
		// Seed-built scenarios draw through a counting wrapper whose
		// output is bit-identical to the raw source, so the stream
		// position — the Network's only cross-round mutable state — can
		// be checkpointed and replayed (snapshot.go).
		count = newCountingSource(cfg.Seed)
		rng = rand.New(count)
	}
	nw := &Network{
		cfg:    cfg,
		env:    cfg.Env,
		params: params,
		proto:  proto,
		rng:    rng,
		count:  count,
		idLen:  int(0.055 * params.SampleRate), // preamble 223 ms + ID 55 ms = T_packet
		pre:    sig.SharedPreamble(params),
		faults: make(map[[2]int]LinkFault),
	}
	for _, f := range cfg.Faults {
		if f.A == f.B || f.A < 0 || f.B < 0 || f.A >= n || f.B >= n {
			return nil, fmt.Errorf("sim: fault on invalid pair (%d,%d)", f.A, f.B)
		}
		nw.faults[pairKey(f.A, f.B)] = f
	}
	return nw, nil
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Params exposes the preamble numerology in use.
func (nw *Network) Params() sig.Params { return nw.params }

// Proto exposes the protocol timing in use.
func (nw *Network) Proto() protocol.Params { return nw.proto }

// N returns the device count.
func (nw *Network) N() int { return len(nw.cfg.Devices) }

// TruePositions returns ground-truth positions at time t.
func (nw *Network) TruePositions(t float64) []geom.Vec3 {
	out := make([]geom.Vec3, nw.N())
	for i, d := range nw.cfg.Devices {
		if d.Traj != nil {
			out[i] = d.Traj(t)
		} else {
			out[i] = d.Pos
		}
	}
	return out
}

// SoundSpeedAssumed is the speed the receiver-side arithmetic uses
// (true environment speed at mid-depth plus the configured bias).
func (nw *Network) SoundSpeedAssumed() float64 {
	var zSum float64
	for _, d := range nw.cfg.Devices {
		zSum += d.Pos.Z
	}
	return nw.env.SoundSpeed(zSum/float64(nw.N())) + nw.cfg.SoundSpeedBias
}

// messageWave builds the on-air packet: ranging preamble followed by two
// MFSK bursts — the sender's ID and its sync-source ID. The second field
// is the §2.3 mechanism ("device i transmits its ID and the ID for device
// j") that tells everyone which clock the sender's slot was derived from;
// it also lets the leader compute D(0,i) for leader-synced devices purely
// from slot arithmetic, without waiting for the report phase.
// The buffer comes from the shared dsp scratch pool; callers release it
// with releaseWave once it has been written to the speaker stream and
// rendered through the channel (both copy).
func (nw *Network) messageWave(id, syncID int) []float64 {
	pre := nw.pre
	mfsk := sig.NewMFSK(nw.N(), nw.params.SampleRate)
	half := nw.idLen / 2
	idw := mfsk.EncodeID(id, half)
	sw := mfsk.EncodeID(syncID, nw.idLen-half)
	out := dsp.GetF64(len(pre) + nw.idLen)
	copy(out, pre)
	copy(out[len(pre):], idw)
	copy(out[len(pre)+half:], sw)
	return out
}

// releaseWave hands a messageWave buffer back to the scratch pool.
func releaseWave(w []float64) { dsp.PutF64(w) }

// linkGain returns the combined TX/RX scalar gain for a transmission from
// a to b, folding speaker efficiency, directivity at both ends and the
// per-mic sensitivity. micIdx selects b's microphone.
func (nw *Network) linkGain(a, b *simDevice, micIdx int, posA, posB geom.Vec3) float64 {
	dir := posB.Sub(posA).Normalize()
	g := nw.cfg.TxAmplitude
	g *= a.spec.Model.TXEfficiency
	g *= a.spec.Orient.DirectivityGain(dir)
	g *= b.spec.Orient.DirectivityGain(dir.Scale(-1))
	g *= b.spec.Model.RXSensitivity[micIdx]
	return g
}

// renderTransmission pushes wave (transmitted by dev from speaker index
// txIdx) through the channel into every other device's microphone streams.
func (nw *Network) renderTransmission(tx *simDevice, txIdx int, wave []float64, tTx float64) {
	posTx := nw.posAt(tx, tTx)
	spk := tx.spec.Model.SpeakerWorldPosition(posTx, tx.spec.Orient)
	for _, rx := range nw.devices {
		if rx.id == tx.id {
			nw.renderSelfLoopback(tx, txIdx, wave)
			continue
		}
		fault, hasFault := nw.faults[pairKey(tx.id, rx.id)]
		if hasFault && fault.Drop {
			continue
		}
		directGain := 1.0
		occludeShallow := false
		if hasFault && fault.DirectAtt > 0 {
			directGain = fault.DirectAtt
			occludeShallow = true
		}
		// Receiver position at approximate arrival time.
		nominalDelay := nw.env.DirectDelay(posTx, nw.posAt(rx, tTx))
		posRx := nw.posAt(rx, tTx+nominalDelay)
		mics := rx.spec.Model.MicWorldPositions(posRx, rx.spec.Orient)
		// One wave-state draw per transmission/receiver: both mics see
		// the same perturbed surface and the same direct-ray fade.
		jitter := nw.env.DrawSurfaceJitter(nw.rng, nw.cfg.MaxReflections, posTx.Dist(posRx))
		for mi, micPos := range mics {
			taps := nw.env.ImpulseResponse(spk, micPos, channel.ImpulseOptions{
				MaxOrder:         nw.cfg.MaxReflections,
				DirectAttenuated: directGain,
				OccludeShallow:   occludeShallow,
			})
			taps = jitter.Apply(taps)
			taps = nw.env.WithScatter(taps, nw.rng)
			gain := nw.linkGain(tx, rx, mi, posTx, posRx)
			for ti := range taps {
				taps[ti].Amplitude *= gain
			}
			nw.renderToMic(rx, mi, tx, txIdx, wave, taps)
		}
	}
}

// renderToMic maps the transmission to the receiver's mic-sample timeline
// (honouring both devices' clock skews) and adds the taps.
func (nw *Network) renderToMic(rx *simDevice, micIdx int, tx *simDevice, txIdx int, wave []float64, taps []channel.Tap) {
	tTx := tx.stack.SpeakerIndexToTime(float64(txIdx))
	dst := rx.stack.Mic(micIdx)
	fs := nw.params.SampleRate
	for _, tap := range taps {
		tArr := tTx + tap.DelaySec
		idxF := rx.stack.TimeToMicIndex(tArr)
		renderAtFractional(dst, wave, idxF, tap.Amplitude, fs)
	}
}

// renderSelfLoopback adds the near-field speaker→own-mic path (δ₂): a
// strong direct tap with centimetre delay, used by self-calibration.
func (nw *Network) renderSelfLoopback(d *simDevice, txIdx int, wave []float64) {
	tTx := d.stack.SpeakerIndexToTime(float64(txIdx))
	c := nw.env.SoundSpeed(d.spec.Pos.Z)
	for mi := 0; mi < d.stack.NumMics(); mi++ {
		micOff := d.spec.Model.MicOffsets[mi].Sub(d.spec.Model.SpeakerOffset).Norm()
		if micOff < 0.01 {
			micOff = 0.01
		}
		delay := micOff / c
		idxF := d.stack.TimeToMicIndex(tTx + delay)
		// Near field: loud but bounded.
		renderAtFractional(d.stack.Mic(mi), wave, idxF, 0.9, nw.params.SampleRate)
	}
}

// renderAtFractional adds amp·wave into dst starting at fractional index.
func renderAtFractional(dst, wave []float64, idxF, amp, fs float64) {
	taps := []channel.Tap{{DelaySec: 0, Amplitude: amp}}
	whole := int(math.Floor(idxF))
	frac := idxF - float64(whole)
	taps[0].DelaySec = frac / fs
	channel.Render(dst, wave, taps, whole, fs)
}

// releaseAudio hands every device's stream buffers back to the dsp scratch
// pool. It runs at trial end — after all receiver processing — and the
// round's outputs (timestamp tables, distances, depths, TOA indices) hold
// no references into the streams, so release is safe. setupDevices builds
// fresh stacks for the next round.
func (nw *Network) releaseAudio() {
	for _, d := range nw.devices {
		if d.stack != nil {
			d.stack.Release()
		}
	}
}

func (nw *Network) posAt(d *simDevice, t float64) geom.Vec3 {
	if d.spec.Traj != nil {
		return d.spec.Traj(t)
	}
	return d.spec.Pos
}
