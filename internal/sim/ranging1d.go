package sim

import (
	"context"
	"fmt"
	"math"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/dsp"
	"uwpos/internal/geom"
	"uwpos/internal/ingest"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
)

// RangingMethod selects the 1D time-of-arrival estimator under test.
type RangingMethod int

// Methods compared in Fig. 11b and Fig. 12.
const (
	MethodDualMic RangingMethod = iota // ours: §2.2 full pipeline
	MethodBottomMicOnly
	MethodTopMicOnly
	MethodBeepBeep // chirp auto-correlation baseline [75]
	MethodCAT      // FMCW mixing baseline [64]
)

// String names the method.
func (m RangingMethod) String() string {
	switch m {
	case MethodDualMic:
		return "ours-dual-mic"
	case MethodBottomMicOnly:
		return "bottom-only"
	case MethodTopMicOnly:
		return "top-only"
	case MethodBeepBeep:
		return "beepbeep"
	case MethodCAT:
		return "cat-fmcw"
	default:
		return "unknown"
	}
}

// RangeTrialResult is one two-way ranging exchange.
type RangeTrialResult struct {
	EstimatedM float64
	TrueM      float64
	Detected   bool // both directions detected
}

// AbsError returns |estimate − truth| (Inf when undetected).
func (r RangeTrialResult) AbsError() float64 {
	if !r.Detected {
		return math.Inf(1)
	}
	return math.Abs(r.EstimatedM - r.TrueM)
}

// RangeOnce runs one two-way 1D ranging exchange between the scenario's
// first two devices with the chosen method. The exchange is the standard
// two-way scheme: A transmits, B replies a fixed interval after *its own*
// arrival estimate, and A converts the round trip to distance — so the
// method's estimation error enters at both ends, as in the paper's
// benchmarks.
//
// ctx is checked at each stage boundary (calibration, each direction's
// arrival estimation); a cancelled or expired context aborts the exchange
// with the context's error. An uncancelled ctx leaves execution — and
// every RNG draw — identical to a deadline-free run.
func (nw *Network) RangeOnce(ctx context.Context, method RangingMethod) (RangeTrialResult, error) {
	if nw.N() < 2 {
		return RangeTrialResult{}, fmt.Errorf("sim: ranging needs 2 devices")
	}
	const (
		txAt      = 0.70 // A transmits (local time)
		replyGap  = 0.50 // B's desired reply interval
		tailSlack = 0.60
	)
	wave := nw.rangingWave(method)
	dur := txAt + replyGap + tailSlack + 2*float64(len(wave))/nw.params.SampleRate
	if err := nw.setupDevices(dur); err != nil {
		return RangeTrialResult{}, err
	}
	// Trial-end release hook: the exchange's estimates are plain scalars,
	// so the audio slabs go straight back to the pool.
	defer nw.releaseAudio()
	nw.addNoise()
	if err := nw.calibrateAll(ctx); err != nil {
		return RangeTrialResult{}, err
	}
	a, b := nw.devices[0], nw.devices[1]
	fs := nw.params.SampleRate

	// A transmits.
	txIdx := int(txAt * fs)
	a.txIndex = txIdx
	a.stack.WriteSpeaker(txIdx, wave)
	nw.renderTransmission(a, txIdx, wave, a.stack.SpeakerIndexToTime(float64(txIdx)))

	// B estimates arrival and replies.
	if err := ctx.Err(); err != nil {
		return RangeTrialResult{}, err
	}
	arrB, okB := nw.estimateArrival(b, method, wave, int(calWindowEnd*fs))
	if !okB {
		return RangeTrialResult{TrueM: nw.trueRange(), Detected: false}, nil
	}
	replyIdx := b.stack.ReplyIndex(int(math.Round(arrB)), replyGap)
	b.txIndex = replyIdx
	b.stack.WriteSpeaker(replyIdx, wave)
	nw.renderTransmission(b, replyIdx, wave, b.stack.SpeakerIndexToTime(float64(replyIdx)))

	// A estimates the reply arrival, skipping its own transmission.
	if err := ctx.Err(); err != nil {
		return RangeTrialResult{}, err
	}
	searchFrom := txIdx + len(wave)
	arrA, okA := nw.estimateArrival(a, method, wave, searchFrom)
	if !okA {
		return RangeTrialResult{TrueM: nw.trueRange(), Detected: false}, nil
	}
	// Round trip in A's clock: reply arrival − own TX (via calibration).
	tOwn := a.ownTxLocalTime(fs)
	rtt := arrA/fs - tOwn
	c := nw.SoundSpeedAssumed()
	est := c * (rtt - replyGap) / 2
	return RangeTrialResult{EstimatedM: est, TrueM: nw.trueRange(), Detected: true}, nil
}

func (nw *Network) trueRange() float64 {
	pos := nw.TruePositions(0.70)
	return pos[0].Dist(pos[1])
}

// rangingWave returns the on-air waveform for the method: the ZC-OFDM
// preamble for ours, a chirp of identical duration and bandwidth for the
// baselines (the paper controls both for fairness).
func (nw *Network) rangingWave(method RangingMethod) []float64 {
	switch method {
	case MethodBeepBeep, MethodCAT:
		p := nw.params
		return sig.LinearChirp(p.BandLowHz, p.BandHighHz, p.PreambleLen(), p.SampleRate)
	default:
		return nw.pre // cached, read-only
	}
}

// estimateArrival applies the method's ToA estimator to the device's
// stream, considering only arrivals at or after searchFrom.
func (nw *Network) estimateArrival(d *simDevice, method RangingMethod, wave []float64, searchFrom int) (float64, bool) {
	mic0 := d.stack.Mic(0)
	switch method {
	case MethodDualMic, MethodBottomMicOnly, MethodTopMicOnly:
		var m1, m2 []float64
		switch method {
		case MethodDualMic:
			m1, m2 = mic0, d.stack.Mic(1)
		case MethodBottomMicOnly:
			m1, m2 = mic0, nil
		case MethodTopMicOnly:
			m1, m2 = d.stack.Mic(1), nil
		}
		results, err := d.ranger.ProcessDualMic(m1, m2)
		if err != nil {
			return 0, false
		}
		for _, r := range results {
			if r.ArrivalIdx >= float64(searchFrom) {
				return r.ArrivalIdx, true
			}
		}
		return 0, false
	case MethodBeepBeep:
		bb := ranging.NewBeepBeep(wave)
		corr, release := nw.scanTail(bb.Bank(), d, searchFrom)
		if corr == nil {
			return 0, false
		}
		defer release()
		idx, ok := bb.ArrivalFromCorr(corr)
		if !ok {
			return 0, false
		}
		return float64(searchFrom) + idx, true
	case MethodCAT:
		cat := ranging.NewCAT(wave, nw.params.SampleRate, nw.params.BandHighHz-nw.params.BandLowHz)
		corr, release := nw.scanTail(cat.Bank(), d, searchFrom)
		if corr == nil {
			return 0, false
		}
		defer release()
		idx, ok := cat.ArrivalFromCorr(corr, mic0[searchFrom:])
		if !ok {
			return 0, false
		}
		return float64(searchFrom) + idx, true
	}
	return 0, false
}

// scanTail runs one ingest pipeline over the device's mic-0 stream from
// searchFrom on — buffer by buffer, like every other receiver scan of the
// round — and collects the bank's normalized correlation of template 0
// for the baselines' peak rules. The returned slice is pool-backed; call
// release when done. A nil bank or empty tail returns nil.
func (nw *Network) scanTail(bank *dsp.MatcherBank, d *simDevice, searchFrom int) (corr []float64, release func()) {
	if bank == nil {
		return nil, nil
	}
	tail := d.stack.StreamLen() - searchFrom
	if tail <= 0 {
		return nil, nil
	}
	pipe := ingest.New(ingest.Config{
		Bank:       bank,
		Normalized: true,
		SampleRate: nw.params.SampleRate,
		Meter:      nw.cfg.IngestMeter,
	})
	col := ingest.NewCollect(0, tail)
	pipe.Register(col)
	for chunk := range d.stack.MicChunksRange(0, searchFrom, d.stack.StreamLen(), nw.ingestChunk()) {
		pipe.Push(chunk)
	}
	pipe.Close()
	return col.Corr(), col.Release
}

// TwoDeviceConfig builds the canonical two-phone benchmark scenario:
// Galaxy S9 devices at the given horizontal separation and depths in env,
// speakers and microphones facing each other as in the paper's §3.1 rig.
func TwoDeviceConfig(env *channel.Environment, sepM, depthA, depthB float64, seed int64) Config {
	return Config{
		Env: env,
		Devices: []DeviceSpec{
			{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 0, Y: 0, Z: depthA}},
			{Model: device.GalaxyS9(), Pos: geom.Vec3{X: sepM, Y: 0, Z: depthB},
				Orient: device.Orientation{AzimuthRad: math.Pi}},
		},
		Seed: seed,
	}
}
