package sim

import (
	"context"
	"math"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/device"
	"uwpos/internal/geom"
)

// TestRelaySyncWhenLeaderUnheard exercises the §2.3 out-of-range path:
// device 4 cannot hear the leader at all and must synchronize off another
// device's slot (announcing its sync source), using the wrap arithmetic
// when the first heard slot leaves no processing margin.
func TestRelaySyncWhenLeaderUnheard(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic round")
	}
	cfg := fiveDeviceDock(11)
	cfg.Faults = []LinkFault{{A: 0, B: 4, Drop: true}}
	// Lossless reports: the paper's one-hop comm cannot return device 4's
	// report through a dead leader link (§5); ranging must still work.
	cfg.DisableReportBack = true
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Silent) != 0 {
		t.Fatalf("silent devices %v", round.Silent)
	}
	d4 := nw.devices[4]
	if d4.sync.From == 0 {
		t.Fatalf("device 4 should have relay-synced, got %+v", d4.sync)
	}
	// The dead link stays unresolved.
	if round.W[0][4] != 0 {
		t.Error("0-4 should be unresolved (no acoustic path)")
	}
	// All peer links of device 4 resolve with sane errors.
	for _, j := range []int{1, 2, 3} {
		if round.W[j][4] == 0 {
			t.Errorf("link %d-4 unresolved", j)
			continue
		}
		if e := math.Abs(round.D[j][4] - round.TrueD[j][4]); e > 1.5 {
			t.Errorf("link %d-4 error %.2f m", j, e)
		}
	}
	// Localization still possible: the graph without 0-4 is uniquely
	// realizable for 5 nodes.
	_, bearing := LeaderOrientation(cfg.Devices[0].Pos, cfg.Devices[1].Pos, 0)
	loc, err := nw.LocalizeRound(context.Background(), round, bearing, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range loc.Err2D {
		if e > 3 {
			t.Errorf("device %d 2D error %.2f m", i, e)
		}
	}
}

// TestThreeDeviceMinimum runs the smallest localizable group (§5: "our
// approach necessitates at least three divers").
func TestThreeDeviceMinimum(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic round")
	}
	s9 := device.GalaxyS9
	specs := []DeviceSpec{
		{Model: s9(), Pos: geom.Vec3{X: 0, Y: 0, Z: 2.0}},
		{Model: s9(), Pos: geom.Vec3{X: 7, Y: 1, Z: 2.5}},
		{Model: s9(), Pos: geom.Vec3{X: 11, Y: -6, Z: 1.5}},
	}
	o, bearing := LeaderOrientation(specs[0].Pos, specs[1].Pos, 0)
	specs[0].Orient = o
	nw, err := NewNetwork(Config{Env: channel.Dock(), Devices: specs, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	round, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if round.Latency < 1.0 || round.Latency > 1.5 {
		t.Errorf("N=3 latency %.2f s, want ≈1.24", round.Latency)
	}
	loc, err := nw.LocalizeRound(context.Background(), round, bearing, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range loc.Err2D {
		if e > 2 {
			t.Errorf("device %d error %.2f m", i, e)
		}
	}
}

// TestWatchInTheGroup mixes an Apple Watch Ultra (3-mic, weak speaker,
// dive gauge) into a phone group.
func TestWatchInTheGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic round")
	}
	cfg := fiveDeviceDock(31)
	cfg.Devices[3].Model = device.WatchUltra()
	cfg.Devices[3].WatchGauge = true
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The watch's weak TX may lose some long links, but it must be ranged
	// by the leader (13 m).
	if round.W[0][3] == 0 {
		t.Error("leader could not range the watch")
	} else if e := math.Abs(round.D[0][3] - round.TrueD[0][3]); e > 1.5 {
		t.Errorf("watch ranging error %.2f m", e)
	}
	// Its dive-gauge depth is tighter than the phones' barometers.
	if e := math.Abs(round.Depths[3] - round.TrueDepths[3]); e > 0.6 {
		t.Errorf("watch depth error %.2f m", e)
	}
}
