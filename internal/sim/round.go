package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"uwpos/internal/audio"
	"uwpos/internal/comm"
	"uwpos/internal/depth"
	"uwpos/internal/dsp"
	"uwpos/internal/ingest"
	"uwpos/internal/protocol"
	"uwpos/internal/ranging"
	"uwpos/internal/sig"
)

// Scenario-local timeline constants (seconds, device-local time).
const (
	calWriteAt   = 0.10 // when each device plays its calibration chirp
	calWindowEnd = 0.50 // self-calibration search window
	queryAt      = 0.70 // leader query transmit time (leader-local)
	reportMargin = 0.25 // gap between the last possible slot and reports
	tailMargin   = 0.40 // stream slack after the report phase
)

// RoundResult is the outcome of one full protocol round.
type RoundResult struct {
	// Table holds the leader-side reconstructed timestamps (s).
	Table *protocol.Table
	// D and W are the pairwise distance estimates and link weights.
	D, W [][]float64
	// TrueD is the ground-truth distance matrix at query time.
	TrueD [][]float64
	// Depths are the depths available to the leader (sensor + protocol
	// quantization for remote devices). TrueDepths is ground truth.
	Depths, TrueDepths []float64
	// MicSigns are the leader's dual-mic side observations per device.
	MicSigns []int
	// Latency is the observed protocol time: leader TX → last ranging
	// packet arrival at the leader.
	Latency float64
	// Silent lists devices that never transmitted (heard nothing).
	Silent []int
}

// RunRound executes calibration, the timestamp protocol, receiver
// processing, the report-back phase and distance computation.
//
// ctx is checked at stage boundaries — after setup, per device during
// calibration and final receiver processing, and before the report
// decode — so a server-imposed deadline or cancellation aborts the round
// within roughly one device's processing latency. When ctx is never
// cancelled the execution (and every RNG draw) is identical to a run
// without a deadline, keeping trial results byte-reproducible.
func (nw *Network) RunRound(ctx context.Context) (*RoundResult, error) {
	n := nw.N()
	dur := nw.streamDuration()
	if err := nw.setupDevices(dur); err != nil {
		return nil, err
	}
	// Audio streams are the round's dominant allocation; everything the
	// caller receives (tables, distances, depths) is index/time arithmetic
	// with no references into them, so they go back to the pool at round
	// end and the next trial on this worker reuses the slabs.
	defer nw.releaseAudio()
	nw.addNoise()
	if err := nw.calibrateAll(ctx); err != nil {
		return nil, err
	}

	// Leader query.
	leader := nw.devices[0]
	queryIdx := int(queryAt * nw.params.SampleRate)
	queryWave := nw.messageWave(0, 0)
	leader.txIndex = queryIdx
	leader.stack.WriteSpeaker(queryIdx, queryWave)
	nw.renderTransmission(leader, queryIdx, queryWave, leader.stack.SpeakerIndexToTime(float64(queryIdx)))
	releaseWave(queryWave)

	// Slot-order scheduling; devices that hear nothing yet retry in a
	// wrap pass (§2.3's "not all devices are in leader's range").
	var deferred []*simDevice
	for i := 1; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !nw.scheduleReply(nw.devices[i]) {
			deferred = append(deferred, nw.devices[i])
		}
	}
	var silent []int
	for _, d := range deferred {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !nw.scheduleReply(d) {
			silent = append(silent, d.id)
		}
	}

	// Final receiver processing on complete streams.
	for _, d := range nw.devices {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := nw.processArrivals(d); err != nil {
			return nil, fmt.Errorf("sim: device %d processing: %w", d.id, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &RoundResult{
		TrueD:      nw.trueDistances(),
		TrueDepths: nw.trueDepths(),
		Silent:     silent,
	}
	nw.fillDepths(res)
	nw.fillMicSigns(res)
	table, err := nw.assembleTable(res)
	if err != nil {
		return nil, err
	}
	finishDepths(res.Depths)
	res.Table = table
	res.D, res.W = table.Distances(nw.SoundSpeedAssumed())
	res.Latency = nw.measureLatency()
	return res, nil
}

func (nw *Network) streamDuration() float64 {
	n := nw.N()
	return queryAt + nw.proto.RoundTime(false) + reportMargin +
		nw.reportDuration(n) + tailMargin
}

func (nw *Network) reportDuration(n int) float64 {
	if nw.cfg.DisableReportBack {
		return 0
	}
	return comm.NewModem(n, nw.params.SampleRate).ReportDuration()
}

// reportAt is the rebased local time (zero at leader-message arrival) when
// every device transmits its report.
func (nw *Network) reportAt() float64 {
	return nw.proto.RoundTime(false) + reportMargin
}

func (nw *Network) setupDevices(dur float64) error {
	nw.devices = nw.devices[:0]
	for i, spec := range nw.cfg.Devices {
		ppm := spec.Model.ClockSkewPPM * 1e-6
		cfg := audio.Config{
			SampleRate:   nw.params.SampleRate,
			SpeakerSkew:  ppm * (2*nw.rng.Float64() - 1),
			MicSkew:      ppm * (2*nw.rng.Float64() - 1),
			SpeakerStart: 0.05 * nw.rng.Float64(),
			MicStart:     0.05 * nw.rng.Float64(),
			NumMics:      len(spec.Model.MicOffsets),
			Duration:     dur,
		}
		stack, err := audio.NewStack(cfg)
		if err != nil {
			return err
		}
		var sensor *depth.Sensor
		if spec.WatchGauge {
			sensor = depth.NewWatchGauge(nw.rng)
		} else {
			sensor = depth.NewPhoneBarometer(nw.rng)
		}
		nw.devices = append(nw.devices, &simDevice{
			id:    i,
			spec:  spec,
			stack: stack,
			ranger: ranging.NewRanger(nw.params, ranging.DetectorConfig{}, ranging.DirectPathConfig{
				MaxMicOffset: micOffsetSamples(spec.Model.MicSeparation(), nw.params.SampleRate),
			}),
			sensor:  sensor,
			txIndex: -1,
			heard:   make(map[int]heardMsg),
		})
	}
	return nil
}

func micOffsetSamples(sepM, fs float64) int {
	return int(math.Ceil(sepM*fs/1400)) + 1 // conservative c = 1400 m/s
}

func (nw *Network) addNoise() {
	for _, d := range nw.devices {
		for mi := 0; mi < d.stack.NumMics(); mi++ {
			stream := d.stack.Mic(mi)
			nw.env.AddNoise(stream, nw.params.SampleRate, nw.rng)
			// Per-mic hardware self-noise (§2.2: each microphone has its
			// own noise profile).
			rms := d.spec.Model.MicNoiseRMS[mi]
			for i := range stream {
				stream[i] += rms * nw.rng.NormFloat64()
			}
		}
	}
}

// calibrateAll plays and detects the self-calibration chirp on every
// device (appendix, Fig. 21). ctx is checked once per device scan.
func (nw *Network) calibrateAll(ctx context.Context) error {
	bank := calibrationBank(nw.params)
	wave := bank.Matcher(0).Template() // shared, read-only; WriteSpeaker and rendering copy
	fs := nw.params.SampleRate
	// All devices write, then all detect (cross-talk is rendered too:
	// remote calibrations are far weaker than the near-field loopback).
	idxs := make([]int, len(nw.devices))
	for i, d := range nw.devices {
		idx := int(calWriteAt * fs)
		idxs[i] = idx
		d.stack.WriteSpeaker(idx, wave)
		nw.renderTransmission(d, idx, wave, d.stack.SpeakerIndexToTime(float64(idx)))
	}
	for i, d := range nw.devices {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := int(calWindowEnd * fs)
		// The chirp scan runs as an ingest pipeline with an online argmax
		// consumer: correlation lags are consumed as each audio buffer
		// arrives and scratch stays bounded at one FFT block, instead of
		// materializing a window-sized correlation slab.
		pipe := ingest.New(ingest.Config{
			Bank:       bank,
			Normalized: true,
			SampleRate: fs,
			Meter:      nw.cfg.IngestMeter,
		})
		argmax := ingest.NewArgMax(0)
		pipe.Register(argmax)
		for chunk := range d.stack.MicChunksRange(0, 0, end, nw.ingestChunk()) {
			pipe.Push(chunk)
		}
		pipe.Close()
		if argmax.Count() == 0 {
			return fmt.Errorf("sim: calibration window too short on device %d", d.id)
		}
		bestIdx, _ := argmax.Best()
		if bestIdx < 0 {
			return fmt.Errorf("sim: calibration not detected on device %d", d.id)
		}
		d.stack.Calibrate(idxs[i], bestIdx)
	}
	return nil
}

// scheduleReply lets device d sync to the first message it can currently
// hear and schedules + renders its protocol reply. Returns false when the
// device hears nothing yet.
func (nw *Network) scheduleReply(d *simDevice) bool {
	if d.txIndex >= 0 {
		return true
	}
	first, senderID, ok := nw.firstDetectedMessage(d)
	if !ok {
		return false
	}
	offset, src := nw.proto.TransmitOffset(d.id, senderID)
	d.sync = src
	m2 := int(math.Round(first.ArrivalIdx))
	txIdx := d.stack.ReplyIndex(m2, offset)
	wave := nw.messageWave(d.id, src.From)
	d.txIndex = txIdx
	d.stack.WriteSpeaker(txIdx, wave)
	nw.renderTransmission(d, txIdx, wave, d.stack.SpeakerIndexToTime(float64(txIdx)))
	releaseWave(wave)
	return true
}

// heardMsg pairs an arrival with the sync-source ID the sender announced.
type heardMsg struct {
	toa      ranging.TOAResult
	syncFrom int // announced sync source; −1 when the field was undecodable
}

// firstDetectedMessage runs the receiver pipeline and returns the earliest
// foreign message currently in the stream.
func (nw *Network) firstDetectedMessage(d *simDevice) (ranging.TOAResult, int, bool) {
	results := nw.detectMessages(d)
	bestIdx := -1
	bestArrival := math.Inf(1)
	for k, r := range results {
		if r.sender == d.id {
			continue
		}
		if r.toa.ArrivalIdx < bestArrival {
			bestArrival = r.toa.ArrivalIdx
			bestIdx = k
		}
	}
	if bestIdx < 0 {
		return ranging.TOAResult{}, 0, false
	}
	return results[bestIdx].toa, results[bestIdx].sender, true
}

type detected struct {
	toa      ranging.TOAResult
	sender   int
	syncFrom int
}

// detectChunk is the default audio-buffer size the receiver pipelines
// consume at a time, matching typical OpenSL ES buffer grain (~93 ms at
// 44.1 kHz). Round results are invariant to this value — every ingest
// pipeline correlates on a fixed absolute block grid, proven
// chunk-partition-exact by the equivalence harnesses — so it only shapes
// memory traffic. Config.IngestChunk overrides it.
const detectChunk = 4096

// ingestChunk returns the audio-buffer size every ingest pipeline of the
// round is fed with.
func (nw *Network) ingestChunk() int {
	if nw.cfg.IngestChunk > 0 {
		return nw.cfg.IngestChunk
	}
	return detectChunk
}

// detectMessages runs detection + refinement + MFSK decoding (sender ID,
// then sync-source ID) over the device's current streams. Detection runs
// on the streaming pipeline exactly as a phone would run it — buffer by
// buffer as the OS delivers audio; refinement then revisits the complete
// streams (channel estimation needs the raw samples around each
// detection anyway).
func (nw *Network) detectMessages(d *simDevice) []detected {
	mic0 := d.stack.Mic(0)
	var mic1 []float64
	if d.stack.NumMics() > 1 {
		mic1 = d.stack.Mic(1)
	}
	sd := d.ranger.Detector.StreamWith(nw.cfg.IngestMeter)
	for chunk := range d.stack.MicChunks(0, nw.ingestChunk()) {
		sd.Feed(chunk)
	}
	toas, err := d.ranger.Refine(mic0, mic1, sd.Flush())
	if err != nil {
		return nil
	}
	mfsk := sig.NewMFSK(nw.N(), nw.params.SampleRate)
	half := nw.idLen / 2
	var out []detected
	for _, toa := range toas {
		idStart := toa.Detection.CoarseIndex + nw.params.PreambleLen()
		idEnd := idStart + nw.idLen
		if idEnd > len(mic0) {
			continue
		}
		id, conf := mfsk.DecodeID(mic0[idStart : idStart+half])
		if conf < 1.2 {
			continue // ambiguous ID: treat as lost
		}
		syncID, sconf := mfsk.DecodeID(mic0[idStart+half : idEnd])
		if sconf < 1.2 {
			syncID = -1
		}
		out = append(out, detected{toa: toa, sender: id, syncFrom: syncID})
	}
	return out
}

// processArrivals populates d.heard from the final streams.
func (nw *Network) processArrivals(d *simDevice) error {
	d.heard = make(map[int]heardMsg)
	for _, det := range nw.detectMessages(d) {
		if det.sender == d.id {
			continue
		}
		// Keep the earliest arrival per sender (echo or duplicate
		// detection keeps the direct one).
		if prev, ok := d.heard[det.sender]; !ok || det.toa.ArrivalIdx < prev.toa.ArrivalIdx {
			d.heard[det.sender] = heardMsg{toa: det.toa, syncFrom: det.syncFrom}
		}
	}
	return nil
}

// localTime converts a mic-stream index to the device's local seconds.
func (nw *Network) localTime(idx float64) float64 { return idx / nw.params.SampleRate }

// ownTxLocalTime returns T^i_i: the device's own transmission expressed in
// its mic-stream clock via the calibration offset.
func (d *simDevice) ownTxLocalTime(fs float64) float64 {
	return float64(d.txIndex-d.stack.IndexOffset()) / fs
}

// rebase returns the device's local-zero (the arrival of its sync source
// minus that source's slot time), letting timestamps be expressed in the
// protocol's slot-relative convention for report compression.
func (nw *Network) rebase(d *simDevice) (float64, bool) {
	src := d.sync.From
	arr, ok := d.heard[src]
	if !ok {
		return 0, false
	}
	slot := 0.0
	if src != 0 {
		slot = nw.proto.SlotTime(src)
	}
	return nw.localTime(arr.toa.ArrivalIdx) - slot, true
}

// assembleTable builds the leader's timestamp table: its own observations
// directly, remote rows via the report-back channel (or losslessly when
// DisableReportBack).
func (nw *Network) assembleTable(res *RoundResult) (*protocol.Table, error) {
	n := nw.N()
	fs := nw.params.SampleRate
	table := protocol.NewTable(n)
	leader := nw.devices[0]
	// Leader row.
	if leader.txIndex >= 0 {
		table.Observe(0, 0, leader.ownTxLocalTime(fs))
	}
	for j, msg := range leader.heard {
		table.Observe(0, j, nw.localTime(msg.toa.ArrivalIdx))
	}
	if nw.cfg.DisableReportBack {
		for _, d := range nw.devices[1:] {
			if d.txIndex < 0 {
				continue
			}
			table.Observe(d.id, d.id, d.ownTxLocalTime(fs))
			for j, msg := range d.heard {
				table.Observe(d.id, j, nw.localTime(msg.toa.ArrivalIdx))
			}
		}
		return table, nil
	}
	// Slot arithmetic from announced sync sources: a leader-synced device
	// transmits at exactly slot_i in a clock zeroed on the leader's
	// message (§2.3), so the leader can fill Tⁱᵢ = slot_i and Tⁱ₀ = 0
	// without the report — ranging to such devices survives report loss.
	for j, msg := range leader.heard {
		if msg.syncFrom == 0 {
			table.Observe(j, j, nw.proto.SlotTime(j))
			table.Observe(j, 0, 0)
		}
	}
	// Full §2.4 report-back.
	if err := nw.reportBack(res, table); err != nil {
		return nil, err
	}
	return table, nil
}

// reportBack runs the FSK report phase and reconstructs remote rows at the
// leader from the decoded, quantized reports.
func (nw *Network) reportBack(res *RoundResult, table *protocol.Table) error {
	n := nw.N()
	fs := nw.params.SampleRate
	modem := comm.NewModem(n, fs)
	if err := modem.Validate(); err != nil {
		return err
	}
	// Each replying device transmits its report in its sub-band.
	for _, d := range nw.devices[1:] {
		if d.txIndex < 0 {
			continue
		}
		zero, ok := nw.rebase(d)
		if !ok {
			continue
		}
		rep := &comm.Report{
			DeviceID:    d.id,
			DepthM:      nw.sensorDepths[d.id],
			OffsetsSamp: make([]float64, n),
		}
		for j := 0; j < n; j++ {
			rep.OffsetsSamp[j] = math.NaN()
		}
		for j, msg := range d.heard {
			if j == 0 {
				// The leader's arrival defines the local zero: its
				// offset is identically 0, and its presence in the
				// report doubles as the heard-leader flag.
				rep.OffsetsSamp[0] = 0
				continue
			}
			diff := (nw.localTime(msg.toa.ArrivalIdx) - zero - nw.proto.SlotTime(j)) * fs
			// Near-collinear geometries make the theoretical bound
			// diff ≥ 0 brush against estimation noise; clamp small
			// negatives rather than losing the link.
			if diff < 0 && diff > -64 {
				diff = 0
			}
			if diff < 0 || diff >= comm.MaxTimestampSteps*comm.TimestampScale {
				continue // outside the representable window: drop
			}
			rep.OffsetsSamp[j] = diff
		}
		wave, err := modem.TransmitReport(rep)
		if err != nil {
			return err
		}
		// Transmit at the common report slot, local-rebased.
		syncArr := d.heard[d.sync.From]
		slot := 0.0
		if d.sync.From != 0 {
			slot = nw.proto.SlotTime(d.sync.From)
		}
		// All devices report simultaneously in disjoint FSK sub-bands
		// (§2.4), so the report slot is common.
		offset := nw.reportAt() - slot
		txIdx := d.stack.ReplyIndex(int(math.Round(syncArr.toa.ArrivalIdx)), offset)
		d.stack.WriteSpeaker(txIdx, wave)
		nw.renderTransmission(d, txIdx, wave, d.stack.SpeakerIndexToTime(float64(txIdx)))
	}
	// Leader demodulates each device's band; alignment is predicted from
	// the device's ranging arrival plus the slot arithmetic.
	leader := nw.devices[0]
	mic := leader.stack.Mic(0)
	for _, d := range nw.devices[1:] {
		if d.txIndex < 0 {
			continue
		}
		msg, ok := leader.heard[d.id]
		if !ok {
			continue // cannot align (nor would the link matter: no ranging)
		}
		start := msg.toa.ArrivalIdx + (nw.reportAt()-nw.proto.SlotTime(d.id))*fs
		rep, err := modem.ReceiveReport(mic, int(math.Round(start)), d.id)
		if err != nil {
			continue // corrupted report: row stays missing
		}
		res.Depths[d.id] = rep.DepthM
		// Reconstruct the row in slot-relative local time.
		table.Observe(d.id, d.id, nw.proto.SlotTime(d.id))
		if rep.HeardBitmask&1 != 0 && !math.IsNaN(rep.OffsetsSamp[0]) {
			table.Observe(d.id, 0, 0)
		}
		for j := 1; j < n; j++ {
			if j == d.id || math.IsNaN(rep.OffsetsSamp[j]) {
				continue
			}
			table.Observe(d.id, j, nw.proto.SlotTime(j)+rep.OffsetsSamp[j]/fs)
		}
	}
	return nil
}

// fillDepths draws every device's sensor reading; whether the leader
// learns a remote value depends on the report path, so sensorDepths keeps
// the device-side readings and res.Depths starts with only the leader's
// own (remote entries are NaN until reports arrive; NaN survivors fall
// back to the group median in finishDepths).
func (nw *Network) fillDepths(res *RoundResult) {
	n := nw.N()
	res.Depths = make([]float64, n)
	nw.sensorDepths = make([]float64, n)
	for i, d := range nw.devices {
		reading := d.sensor.Read(res.TrueDepths[i], nw.rng)
		q, err := depth.Quantize(reading)
		if err != nil {
			q = reading
		}
		nw.sensorDepths[i] = q
		if i == 0 || nw.cfg.DisableReportBack {
			res.Depths[i] = q
		} else {
			res.Depths[i] = math.NaN()
		}
	}
}

// finishDepths replaces any depth the leader never learned with the median
// of the known ones — a graceful-degradation heuristic for lost reports.
func finishDepths(depths []float64) {
	var known []float64
	for _, v := range depths {
		if !math.IsNaN(v) {
			known = append(known, v)
		}
	}
	if len(known) == 0 {
		for i := range depths {
			depths[i] = 0
		}
		return
	}
	sort.Float64s(known)
	med := known[len(known)/2]
	for i := range depths {
		if math.IsNaN(depths[i]) {
			depths[i] = med
		}
	}
}

func (nw *Network) fillMicSigns(res *RoundResult) {
	res.MicSigns = make([]int, nw.N())
	leader := nw.devices[0]
	for j, msg := range leader.heard {
		if msg.toa.DualMicOK {
			res.MicSigns[j] = msg.toa.MicSign
		}
	}
}

func (nw *Network) trueDistances() [][]float64 {
	n := nw.N()
	tQuery := queryAt
	pos := nw.TruePositions(tQuery)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = pos[i].Dist(pos[j])
		}
	}
	return d
}

func (nw *Network) trueDepths() []float64 {
	pos := nw.TruePositions(queryAt)
	out := make([]float64, len(pos))
	for i, p := range pos {
		out[i] = p.Z
	}
	return out
}

func (nw *Network) measureLatency() float64 {
	leader := nw.devices[0]
	if leader.txIndex < 0 {
		return 0
	}
	t0 := leader.ownTxLocalTime(nw.params.SampleRate)
	last := t0
	for _, msg := range leader.heard {
		if t := nw.localTime(msg.toa.ArrivalIdx); t > last {
			last = t
		}
	}
	return last - t0 + nw.proto.TPacket
}

// calibrationMatcher returns the process-wide matched filter for the
// self-calibration chirp: the waveform and its spectra are pure functions
// of the Params, so every trial and every engine worker share one
// precomputed matcher instead of re-transforming the chirp per round.
func calibrationMatcher(p sig.Params) *dsp.Matcher {
	return sig.SharedMatcher("calibration", p, func(p sig.Params) []float64 {
		return p.CalibrationSignal(0)
	})
}

// calibrationBanks caches the process-wide single-template MatcherBank
// around calibrationMatcher per numerology; calibrateAll opens one cheap
// streaming session per device round against it.
var calibrationBanks sync.Map // sig.Params.Key() -> *dsp.MatcherBank

func calibrationBank(p sig.Params) *dsp.MatcherBank {
	k := p.Key()
	if v, ok := calibrationBanks.Load(k); ok {
		return v.(*dsp.MatcherBank)
	}
	v, _ := calibrationBanks.LoadOrStore(k, dsp.NewMatcherBank(calibrationMatcher(p)))
	return v.(*dsp.MatcherBank)
}
