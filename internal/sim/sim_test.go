package sim

import (
	"context"
	"math"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/core"
	"uwpos/internal/device"
	"uwpos/internal/geom"
)

func TestNewNetworkValidation(t *testing.T) {
	env := channel.Dock()
	if _, err := NewNetwork(Config{}); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := NewNetwork(Config{Env: env}); err == nil {
		t.Error("no devices should fail")
	}
	bad := Config{Env: env, Devices: []DeviceSpec{
		{Model: device.GalaxyS9(), Pos: geom.Vec3{Z: 2}},
		{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 5, Z: 50}}, // below bottom
	}}
	if _, err := NewNetwork(bad); err == nil {
		t.Error("device below the bottom should fail")
	}
	badFault := Config{Env: env, Devices: []DeviceSpec{
		{Model: device.GalaxyS9(), Pos: geom.Vec3{Z: 2}},
		{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 5, Z: 2}},
	}, Faults: []LinkFault{{A: 0, B: 9}}}
	if _, err := NewNetwork(badFault); err == nil {
		t.Error("fault on unknown pair should fail")
	}
}

func TestTrajectories(t *testing.T) {
	lin := Linear(geom.Vec3{X: 1}, geom.Vec3{X: 2})
	if p := lin(3); math.Abs(p.X-7) > 1e-12 {
		t.Errorf("linear(3) = %+v", p)
	}
	osc := Oscillate(geom.Vec3{}, geom.Vec3{X: 1}, 2, 0.5)
	// Period = 4*2/0.5 = 16 s; at t=4 (quarter+...) position bounded.
	for _, tt := range []float64{0, 1, 4, 7.9, 8, 12, 16, 23} {
		p := osc(tt)
		if p.X < -2.001 || p.X > 2.001 {
			t.Errorf("oscillate(%g) = %g outside ±2", tt, p.X)
		}
	}
	if p := osc(0); p.X != 0 {
		t.Errorf("oscillate(0) = %g", p.X)
	}
	// Degenerate parameters freeze in place.
	frozen := Oscillate(geom.Vec3{X: 5}, geom.Vec3{X: 1}, 0, 1)
	if p := frozen(9); p.X != 5 {
		t.Error("degenerate oscillation should stay put")
	}
}

func TestRangeOnceDualMic10m(t *testing.T) {
	cfg := TwoDeviceConfig(channel.Dock(), 10, 2.5, 2.5, 42)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.RangeOnce(context.Background(), MethodDualMic)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("exchange not detected")
	}
	if e := res.AbsError(); e > 1.0 {
		t.Errorf("10 m ranging error %.2f m", e)
	}
}

func TestRangeOnceAllMethodsDetect(t *testing.T) {
	for _, m := range []RangingMethod{MethodDualMic, MethodBottomMicOnly, MethodTopMicOnly, MethodBeepBeep, MethodCAT} {
		cfg := TwoDeviceConfig(channel.Dock(), 12, 2.0, 2.5, 7)
		nw, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.RangeOnce(context.Background(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Detected {
			t.Errorf("%v: not detected", m)
			continue
		}
		if e := res.AbsError(); e > 5 {
			t.Errorf("%v: error %.2f m implausibly large", m, e)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	names := map[RangingMethod]string{
		MethodDualMic: "ours-dual-mic", MethodBottomMicOnly: "bottom-only",
		MethodTopMicOnly: "top-only", MethodBeepBeep: "beepbeep",
		MethodCAT: "cat-fmcw", RangingMethod(99): "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d: %q != %q", int(m), got, want)
		}
	}
}

// fiveDeviceDock mirrors the Fig. 17a testbed: five phones at 3–25 m from
// the leader at mixed depths.
func fiveDeviceDock(seed int64) Config {
	s9 := device.GalaxyS9
	specs := []DeviceSpec{
		{Model: s9(), Pos: geom.Vec3{X: 0, Y: 0, Z: 2.0}},
		{Model: s9(), Pos: geom.Vec3{X: 6, Y: 1.5, Z: 2.5}},
		{Model: s9(), Pos: geom.Vec3{X: 13, Y: -5, Z: 1.5}},
		{Model: s9(), Pos: geom.Vec3{X: 10, Y: 8, Z: 3.5}},
		{Model: s9(), Pos: geom.Vec3{X: 20, Y: 2, Z: 2.5}},
	}
	// Leader points at device 1.
	o, _ := LeaderOrientation(specs[0].Pos, specs[1].Pos, 0)
	specs[0].Orient = o
	return Config{Env: channel.Dock(), Devices: specs, Seed: seed}
}

func TestFullRoundFiveDevices(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic round is expensive")
	}
	cfg := fiveDeviceDock(1)
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Silent) != 0 {
		t.Fatalf("silent devices: %v", round.Silent)
	}
	// Every pair should resolve with sub-metre-ish error.
	n := nw.N()
	resolved := 0
	var worst float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if round.W[i][j] > 0 {
				resolved++
				if e := math.Abs(round.D[i][j] - round.TrueD[i][j]); e > worst {
					worst = e
				}
			}
		}
	}
	if resolved < 9 {
		t.Errorf("only %d/10 links resolved", resolved)
	}
	if worst > 1.5 {
		t.Errorf("worst pairwise error %.2f m", worst)
	}
	// Latency should be near the paper's 1.9 s for N=5.
	if round.Latency < 1.5 || round.Latency > 2.3 {
		t.Errorf("latency %.2f s, want ≈1.9", round.Latency)
	}

	// Localize and score.
	_, bearing := LeaderOrientation(cfg.Devices[0].Pos, cfg.Devices[1].Pos, 0)
	loc, err := nw.LocalizeRound(context.Background(), round, bearing, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var worst2D float64
	for i, e := range loc.Err2D {
		if e > worst2D {
			worst2D = e
		}
		t.Logf("device %d: 2D err %.2f m, 3D err %.2f m", i, e, loc.Err3D[i])
	}
	if worst2D > 3.0 {
		t.Errorf("worst 2D localization error %.2f m", worst2D)
	}
}

func TestRoundWithDroppedLink(t *testing.T) {
	if testing.Short() {
		t.Skip("full acoustic round is expensive")
	}
	cfg := fiveDeviceDock(3)
	cfg.Faults = []LinkFault{{A: 2, B: 4, Drop: true}}
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	round, err := nw.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if round.W[2][4] != 0 {
		t.Error("dropped link should be unresolved")
	}
	_, bearing := LeaderOrientation(cfg.Devices[0].Pos, cfg.Devices[1].Pos, 0)
	loc, err := nw.LocalizeRound(context.Background(), round, bearing, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range loc.Err2D {
		if e > 3.5 {
			t.Errorf("device %d error %.2f m with missing link", i, e)
		}
	}
}

func TestLeaderOrientationConvention(t *testing.T) {
	leader := geom.Vec3{X: 0, Y: 0, Z: 2}
	pointed := geom.Vec3{X: 10, Y: 0, Z: 2}
	o, bearing := LeaderOrientation(leader, pointed, 0)
	if math.Abs(bearing) > 1e-12 {
		t.Errorf("bearing %g, want 0", bearing)
	}
	// Mic axis perpendicular: mic 1 (top) should be on the LEFT (+y).
	mics := device.GalaxyS9().MicWorldPositions(leader, o)
	if mics[1].Y < mics[0].Y {
		t.Errorf("top mic at %+v should be left of bottom mic %+v", mics[1], mics[0])
	}
	// Pointing error rotates the bearing.
	_, b2 := LeaderOrientation(leader, pointed, 0.1)
	if math.Abs(b2-0.1) > 1e-12 {
		t.Errorf("bearing with error %g", b2)
	}
}
