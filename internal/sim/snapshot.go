// Session persistence support: the simulator's contribution to a
// crash-safe uwposd is the observation that a Network's entire mutable
// cross-round state is the position of its random stream. Devices, audio
// stacks, sensors and channel taps are rebuilt every round as pure
// functions of the (immutable) Config plus RNG draws, and the channel's
// cached impulse-response tables are derived data — so checkpointing a
// scenario reduces to one number: how many raw draws the source has
// produced. Restoring replays that many draws on a fresh source with the
// same seed, after which every subsequent round is byte-identical to an
// uninterrupted run.
package sim

import (
	"context"
	"fmt"
	"math/rand"
)

// countingSource wraps the scenario's rand.Source64, counting raw draws.
// Both Int63 and Uint64 advance the underlying generator state by exactly
// one step (math/rand's rngSource implements Int63 as a masked Uint64),
// so the count alone pins the stream position, and the wrapper's output
// is bit-identical to the unwrapped source — the invariant
// TestCountingSourceStreamIdentity enforces.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// RNGDraws returns the number of raw draws the scenario's random source
// has produced — the complete mutable state of the Network between
// rounds. The second return is false when the Network was built with an
// externally supplied Config.Rng (the parallel trial engine's path),
// whose position the Network cannot observe; such scenarios are not
// checkpointable.
func (nw *Network) RNGDraws() (uint64, bool) {
	if nw.count == nil {
		return 0, false
	}
	return nw.count.draws, true
}

// advanceChunk is how many raw draws AdvanceRNG burns between context
// checks. Draws cost ~2 ns each, so a chunk is ~130 µs of work.
const advanceChunk = 1 << 16

// AdvanceRNG fast-forwards the scenario's random source until exactly
// draws raw values have been produced since construction, restoring the
// stream position recorded by RNGDraws. It fails on an external-Rng
// network, or when the source is already past the target (a snapshot can
// only be restored into a Network that has run fewer draws — in practice
// a freshly built one). A session's worth of rounds is tens of millions
// of draws (noise synthesis dominates: a few per rendered sample), which
// replays in tens of milliseconds; ctx is checked every 64Ki draws so a
// boot deadline can abandon a pathological snapshot.
func (nw *Network) AdvanceRNG(ctx context.Context, draws uint64) error {
	if nw.count == nil {
		return fmt.Errorf("sim: network built with an external Rng; RNG state is not restorable")
	}
	if nw.count.draws > draws {
		return fmt.Errorf("sim: RNG already at %d draws, past snapshot at %d", nw.count.draws, draws)
	}
	for nw.count.draws < draws {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := draws - nw.count.draws
		if n > advanceChunk {
			n = advanceChunk
		}
		for i := uint64(0); i < n; i++ {
			nw.count.src.Uint64()
		}
		nw.count.draws += n
	}
	return nil
}
