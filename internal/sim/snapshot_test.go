package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"uwpos/internal/channel"
	"uwpos/internal/device"
	"uwpos/internal/geom"
)

// TestCountingSourceStreamIdentity pins the checkpointing premise: the
// counting wrapper must not perturb the random stream in any draw mode
// math/rand can route through it.
func TestCountingSourceStreamIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 12345} {
		plain := rand.New(rand.NewSource(seed))
		cs := newCountingSource(seed)
		counted := rand.New(cs)
		for i := 0; i < 10000; i++ {
			switch i % 4 {
			case 0:
				if a, b := plain.Float64(), counted.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, a, b)
				}
			case 1:
				if a, b := plain.NormFloat64(), counted.NormFloat64(); a != b {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, a, b)
				}
			case 2:
				if a, b := plain.Uint64(), counted.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, a, b)
				}
			case 3:
				if a, b := plain.Intn(997), counted.Intn(997); a != b {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, a, b)
				}
			}
		}
		if cs.draws == 0 {
			t.Fatalf("seed %d: no draws counted", seed)
		}
	}
}

// TestNetworkAdvanceRNG proves the replay invariant at the source level:
// a fresh network advanced by N raw draws continues bit-identically to
// one that produced those N draws through arbitrary Rand methods.
func TestNetworkAdvanceRNG(t *testing.T) {
	build := func() *Network {
		nw, err := NewNetwork(testConfigSnapshot(7))
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	a := build()
	// Consume a mixed sequence through the live Rand.
	for i := 0; i < 5000; i++ {
		switch i % 3 {
		case 0:
			a.rng.Float64()
		case 1:
			a.rng.NormFloat64()
		case 2:
			a.rng.Intn(100)
		}
	}
	draws, ok := a.RNGDraws()
	if !ok {
		t.Fatal("seed-built network must be checkpointable")
	}
	if draws == 0 {
		t.Fatal("no draws recorded")
	}

	b := build()
	if err := b.AdvanceRNG(context.Background(), draws); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.rng.Uint64(), b.rng.Uint64(); x != y {
			t.Fatalf("diverged at post-restore draw %d: %d != %d", i, x, y)
		}
	}

	// Rewinding is not a thing.
	if err := b.AdvanceRNG(context.Background(), 1); err == nil {
		t.Fatal("expected error advancing backwards")
	}
	// Cancellation aborts a long fast-forward.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := build()
	if err := c.AdvanceRNG(ctx, 1<<30); err == nil {
		t.Fatal("expected context error")
	}
}

// TestExternalRngNotCheckpointable: the engine's per-trial Rng path must
// report itself non-restorable rather than silently miscounting.
func TestExternalRngNotCheckpointable(t *testing.T) {
	cfg := testConfigSnapshot(1)
	cfg.Rng = rand.New(rand.NewSource(1))
	nw, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nw.RNGDraws(); ok {
		t.Fatal("external-Rng network claimed to be checkpointable")
	}
	if err := nw.AdvanceRNG(context.Background(), 10); err == nil {
		t.Fatal("expected AdvanceRNG error on external-Rng network")
	}
}

// TestRoundReplayAfterRestore is the simulator half of the byte-identical
// replay invariant: run k rounds, record the draw count, run the rest;
// then rebuild from config, fast-forward, and re-run the remaining rounds
// — every RoundResult must serialize identically.
func TestRoundReplayAfterRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol rounds")
	}
	for _, seed := range []int64{1, 7} {
		nw, err := NewNetwork(testConfigSnapshot(seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		const k, n = 1, 3
		for i := 0; i < k; i++ {
			if _, err := nw.RunRound(ctx); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, i, err)
			}
		}
		draws, ok := nw.RNGDraws()
		if !ok {
			t.Fatal("not checkpointable")
		}
		var want []string
		for i := k; i < n; i++ {
			res, err := nw.RunRound(ctx)
			if err != nil {
				t.Fatalf("seed %d round %d: %v", seed, i, err)
			}
			want = append(want, roundFingerprint(t, res))
		}

		re, err := NewNetwork(testConfigSnapshot(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := re.AdvanceRNG(ctx, draws); err != nil {
			t.Fatal(err)
		}
		for i := k; i < n; i++ {
			res, err := re.RunRound(ctx)
			if err != nil {
				t.Fatalf("seed %d restored round %d: %v", seed, i, err)
			}
			if got := roundFingerprint(t, res); got != want[i-k] {
				t.Errorf("seed %d round %d: restored replay differs from uninterrupted run", seed, i)
			}
		}
	}
}

// roundFingerprint renders every numeric field of a RoundResult as exact
// IEEE-754 bit patterns (the matrices carry NaN for missing links, which
// JSON cannot; bit equality is also stricter than any decimal format).
func roundFingerprint(t *testing.T, res *RoundResult) string {
	t.Helper()
	var sb strings.Builder
	mat := func(name string, m [][]float64) {
		fmt.Fprintf(&sb, "%s:", name)
		for _, row := range m {
			for _, v := range row {
				fmt.Fprintf(&sb, " %x", math.Float64bits(v))
			}
			sb.WriteByte(';')
		}
		sb.WriteByte('\n')
	}
	vec := func(name string, v []float64) {
		fmt.Fprintf(&sb, "%s:", name)
		for _, x := range v {
			fmt.Fprintf(&sb, " %x", math.Float64bits(x))
		}
		sb.WriteByte('\n')
	}
	mat("D", res.D)
	mat("W", res.W)
	mat("TrueD", res.TrueD)
	vec("Depths", res.Depths)
	vec("TrueDepths", res.TrueDepths)
	fmt.Fprintf(&sb, "MicSigns: %v\nSilent: %v\nLatency: %x\n",
		res.MicSigns, res.Silent, math.Float64bits(res.Latency))
	return sb.String()
}

// testConfigSnapshot is a small 3-device pool scenario for snapshot tests.
func testConfigSnapshot(seed int64) Config {
	return Config{
		Env: channel.Pool(),
		Devices: []DeviceSpec{
			{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 0, Y: 0, Z: 1.5}},
			{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 5, Y: 1, Z: 2.0}},
			{Model: device.GalaxyS9(), Pos: geom.Vec3{X: 8, Y: -3, Z: 1.0}},
		},
		Seed: seed,
	}
}
